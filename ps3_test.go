package ps3_test

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"ps3"
)

// buildSalesTable creates the README quickstart table: prices with a
// region-dependent distribution so partition selection has signal.
func buildSalesTable(t testing.TB, rows, rowsPerPart int) *ps3.Table {
	t.Helper()
	schema := ps3.MustSchema(
		ps3.Column{Name: "price", Kind: ps3.Numeric, Positive: true},
		ps3.Column{Name: "qty", Kind: ps3.Numeric, Positive: true},
		ps3.Column{Name: "region", Kind: ps3.Categorical},
	)
	b, err := ps3.NewBuilder(schema, rowsPerPart)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	regions := []string{"east", "west", "north", "south"}
	for i := 0; i < rows; i++ {
		region := regions[(i/rowsPerPart)%len(regions)] // region correlates with layout
		price := rng.Float64() * 100
		if region == "east" {
			price *= 3 // east is disproportionately valuable
		}
		qty := 1 + float64(rng.Intn(10))
		if err := b.Append([]float64{price, qty, 0}, []string{"", "", region}); err != nil {
			t.Fatal(err)
		}
	}
	return b.Finish()
}

func newTrainedSystem(t testing.TB, tbl *ps3.Table) *ps3.System {
	t.Helper()
	sys, err := ps3.Open(tbl, ps3.Options{Workload: ps3.Workload{
		GroupableCols: []string{"region"},
		PredicateCols: []string{"price", "qty", "region"},
		AggCols:       []string{"price", "qty"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := ps3.NewGenerator(sys.Opts.Workload, tbl, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Train(gen.SampleN(40), nil); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestPublicAPIEndToEnd(t *testing.T) {
	tbl := buildSalesTable(t, 8_000, 200) // 40 partitions
	sys := newTrainedSystem(t, tbl)

	q := &ps3.Query{
		Aggs: []ps3.Aggregate{
			{Kind: ps3.Sum, Expr: ps3.Col("price")},
			{Kind: ps3.Count},
		},
		Pred:    &ps3.Clause{Col: "price", Op: ps3.OpGt, Num: 50},
		GroupBy: []string{"region"},
	}

	exact, err := sys.RunExact(q)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := sys.Run(q, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if approx.PartsRead > 10 {
		t.Fatalf("budget 25%% of 40 parts read %d partitions", approx.PartsRead)
	}
	if approx.FracRead > 0.26 {
		t.Fatalf("FracRead = %v", approx.FracRead)
	}
	e := ps3.CompareAnswers(exact.Values, approx.Values)
	if e.MissedGroups > 0 {
		t.Fatalf("missed %v of groups at 25%% budget on an easy query", e.MissedGroups)
	}
	if e.AvgRelErr > 0.35 {
		t.Fatalf("avg relative error %v too high at 25%% budget", e.AvgRelErr)
	}
	// Labels decode group keys into readable text.
	for g := range approx.Values {
		if approx.Labels[g] == "" {
			t.Fatal("missing group label")
		}
	}
}

func TestPublicAPIErrorShrinksWithBudget(t *testing.T) {
	tbl := buildSalesTable(t, 6_000, 150)
	sys := newTrainedSystem(t, tbl)
	q := &ps3.Query{
		Aggs:    []ps3.Aggregate{{Kind: ps3.Sum, Expr: ps3.Col("price")}},
		GroupBy: []string{"region"},
	}
	exact, err := sys.RunExact(q)
	if err != nil {
		t.Fatal(err)
	}
	errAt := func(budget float64) float64 {
		res, err := sys.Run(q, budget)
		if err != nil {
			t.Fatal(err)
		}
		return ps3.CompareAnswers(exact.Values, res.Values).AvgRelErr
	}
	lo, hi := errAt(0.1), errAt(0.8)
	if hi > lo+0.02 {
		t.Fatalf("error grew with budget: %v at 10%% vs %v at 80%%", lo, hi)
	}
}

func TestPublicAPIRunBeforeTrainFails(t *testing.T) {
	tbl := buildSalesTable(t, 1_000, 100)
	sys, err := ps3.Open(tbl, ps3.Options{Workload: ps3.Workload{
		GroupableCols: []string{"region"},
		PredicateCols: []string{"price"},
		AggCols:       []string{"price"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	q := &ps3.Query{Aggs: []ps3.Aggregate{{Kind: ps3.Count}}}
	if _, err := sys.Run(q, 0.1); err == nil {
		t.Fatal("Run before Train should fail")
	}
}

func TestPublicAPITableSerializationRoundTrip(t *testing.T) {
	tbl := buildSalesTable(t, 1_000, 100)
	var buf bytes.Buffer
	if _, err := tbl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ps3.ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != tbl.NumRows() || back.NumParts() != tbl.NumParts() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
			back.NumRows(), back.NumParts(), tbl.NumRows(), tbl.NumParts())
	}
}

func TestPublicAPISketches(t *testing.T) {
	m := ps3.NewMeasures(true)
	for _, v := range []float64{1, 2, 3, 4} {
		m.Add(v)
	}
	if m.Min != 1 || m.Max != 4 || math.Abs(m.Mean()-2.5) > 1e-12 {
		t.Fatalf("measures: min %v max %v mean %v", m.Min, m.Max, m.Mean())
	}

	h := ps3.NewHistogram(4)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	h.Finalize()

	a := ps3.NewAKMV(16)
	for i := 0; i < 1000; i++ {
		a.Add(ps3.Hash64(uint64(i % 50)))
	}
	est := a.DistinctEstimate()
	if est < 25 || est > 100 {
		t.Fatalf("AKMV estimate %v for 50 distinct", est)
	}

	hh := ps3.NewHeavyHitter(0.01)
	for i := 0; i < 1000; i++ {
		hh.Add(uint64(i % 3))
	}
	hh.Finalize()
	if n, _, _ := hh.Stats(); n != 3 {
		t.Fatalf("heavy hitters = %d, want 3", n)
	}
}

func TestPublicAPIPredicateBuilders(t *testing.T) {
	p := ps3.NewAnd(
		&ps3.Clause{Col: "price", Op: ps3.OpGt, Num: 10},
		ps3.NewOr(
			&ps3.Clause{Col: "region", Op: ps3.OpEq, Strs: []string{"east"}},
			&ps3.Clause{Col: "region", Op: ps3.OpIn, Strs: []string{"west", "north"}},
		),
	)
	if p.String() == "" {
		t.Fatal("predicate did not render")
	}
	tbl := buildSalesTable(t, 500, 100)
	sys := newTrainedSystem(t, tbl)
	q := &ps3.Query{Aggs: []ps3.Aggregate{{Kind: ps3.Count}}, Pred: p}
	if _, err := sys.Run(q, 0.5); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIStatsPersistenceRoundTrip(t *testing.T) {
	tbl := buildSalesTable(t, 2_000, 100)
	sys, err := ps3.Open(tbl, ps3.Options{Workload: ps3.Workload{
		GroupableCols: []string{"region"},
		PredicateCols: []string{"price", "region"},
		AggCols:       []string{"price"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := sys.Stats.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ps3.ReadStats(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sys2, err := ps3.OpenWithStats(tbl, restored, sys.Opts)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := ps3.NewGenerator(sys.Opts.Workload, tbl, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys2.Train(gen.SampleN(25), nil); err != nil {
		t.Fatal(err)
	}
	q := &ps3.Query{
		Aggs:    []ps3.Aggregate{{Kind: ps3.Sum, Expr: ps3.Col("price")}},
		GroupBy: []string{"region"},
	}
	res, err := sys2.Run(q, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) == 0 {
		t.Fatal("no groups from restored-stats system")
	}
}

func TestPublicAPIOpenWithStatsValidatesShape(t *testing.T) {
	tblA := buildSalesTable(t, 1_000, 100) // 10 parts
	tblB := buildSalesTable(t, 1_000, 50)  // 20 parts
	sysA, err := ps3.Open(tblA, ps3.Options{Workload: ps3.Workload{
		GroupableCols: []string{"region"},
		PredicateCols: []string{"price"},
		AggCols:       []string{"price"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ps3.OpenWithStats(tblB, sysA.Stats, sysA.Opts); err == nil {
		t.Fatal("want error binding stats to a table with a different partition count")
	}
}

func TestPublicAPIDiagnostics(t *testing.T) {
	tbl := buildSalesTable(t, 2_000, 100)
	sys, err := ps3.Open(tbl, ps3.Options{Workload: ps3.Workload{
		GroupableCols: []string{"region"},
		PredicateCols: []string{"price", "region"},
		AggCols:       []string{"price"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// qty is outside the trained workload → a warn-level finding.
	q := &ps3.Query{Aggs: []ps3.Aggregate{{Kind: ps3.Sum, Expr: ps3.Col("qty")}}}
	fs := ps3.DiagnoseQuery(q, sys.Stats, sys.Opts.Workload)
	if len(fs) == 0 {
		t.Fatal("untrained column not diagnosed")
	}
	if fs[0].Severity != ps3.DiagWarn {
		t.Fatalf("severity = %v, want warn", fs[0].Severity)
	}
	// The region-sorted layout is informative for this workload.
	if fs := ps3.DiagnoseLayout(sys.Stats, sys.Opts.Workload); len(fs) != 0 {
		t.Fatalf("informative layout flagged: %v", fs)
	}
}
