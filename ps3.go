// Package ps3 is the public API of this repository: a from-scratch Go
// reproduction of "Approximate Partition Selection for Big-Data Workloads
// using Summary Statistics" (Rong et al., VLDB 2020).
//
// PS3 answers single-table aggregation queries approximately by reading only
// a subset of data partitions and combining the partial answers with
// weights. The selection is driven entirely by lightweight per-partition
// summary statistics — measures, equi-depth histograms, AKMV distinct-value
// sketches and lossy-counting heavy hitters — plus a learned importance
// funnel, similarity clustering and heavy-hitter-bitmap outlier detection.
//
// # Quick start
//
//	schema := ps3.MustSchema(
//	    ps3.Column{Name: "price", Kind: ps3.Numeric, Positive: true},
//	    ps3.Column{Name: "region", Kind: ps3.Categorical},
//	)
//	b, _ := ps3.NewBuilder(schema, 1000) // 1000 rows per partition
//	// ... b.Append(...) for every row ...
//	tbl := b.Finish()
//
//	sys, _ := ps3.Open(tbl, ps3.Options{Workload: ps3.Workload{
//	    GroupableCols: []string{"region"},
//	    PredicateCols: []string{"price", "region"},
//	    AggCols:       []string{"price"},
//	}})
//	gen, _ := ps3.NewGenerator(sys.Opts.Workload, tbl, 42)
//	_ = sys.Train(gen.SampleN(200), nil) // offline, once per workload
//
//	q := &ps3.Query{
//	    Aggs:    []ps3.Aggregate{{Kind: ps3.Sum, Expr: ps3.Col("price")}},
//	    GroupBy: []string{"region"},
//	}
//	res, _ := sys.Run(q, 0.01) // read ~1% of partitions
//
// The sub-packages live under internal/ and are re-exported here; see
// DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every table and figure.
package ps3

import (
	"io"

	"ps3/internal/core"
	"ps3/internal/diagnose"
	"ps3/internal/metrics"
	"ps3/internal/picker"
	"ps3/internal/query"
	"ps3/internal/serve"
	"ps3/internal/sketch"
	sqlparse "ps3/internal/sql"
	"ps3/internal/stats"
	"ps3/internal/store"
	"ps3/internal/table"
)

// --- Storage substrate (internal/table) ---

// Table is a partitioned columnar dataset with partition-granular access and
// I/O accounting.
type Table = table.Table

// Schema is an ordered list of columns.
type Schema = table.Schema

// Column describes one column of a schema.
type Column = table.Column

// ColumnKind enumerates column storage types.
type ColumnKind = table.Kind

// Column kinds.
const (
	Numeric     = table.Numeric
	Categorical = table.Categorical
	Date        = table.Date
)

// Builder ingests rows and seals them into fixed-size partitions.
type Builder = table.Builder

// Dict is the shared dictionary encoding categorical values.
type Dict = table.Dict

// Partition is one immutable chunk of rows.
type Partition = table.Partition

// NewSchema builds a schema, validating column-name uniqueness.
func NewSchema(cols ...Column) (*Schema, error) { return table.NewSchema(cols...) }

// MustSchema is NewSchema that panics on error; for static schemas.
func MustSchema(cols ...Column) *Schema { return table.MustSchema(cols...) }

// NewBuilder returns a table builder producing partitions of rowsPerPart
// rows.
func NewBuilder(s *Schema, rowsPerPart int) (*Builder, error) {
	return table.NewBuilder(s, rowsPerPart)
}

// ReadTable deserializes a table written with Table.WriteTo.
var ReadTable = table.ReadTable

// PartitionSource is the seam between query execution and partition
// storage: a fully resident *Table, or a paged StoreReader that faults
// picked partitions in from disk through a bounded cache.
type PartitionSource = table.PartitionSource

// --- Out-of-core paged store (internal/store) ---

// StoreReader serves partitions lazily from a paged store file through a
// concurrency-safe, byte-budgeted LRU cache. It implements PartitionSource,
// so a store can back Compile, Estimate, OpenSnapshot and NewServer
// directly: serving memory scales with the cache budget plus the picked
// partitions, not the dataset.
type StoreReader = store.Reader

// StoreOptions configures a StoreReader (cache budget in bytes).
type StoreOptions = store.Options

// StoreCacheStats snapshots a store's partition-cache counters: hits,
// misses, evictions, physical bytes loaded and resident bytes vs budget.
type StoreCacheStats = store.CacheStats

// OpenedTable is a table data file opened by OpenTableFile, either format.
type OpenedTable = store.OpenedTable

// WriteStore streams t to w in the paged store format: header, one
// CRC32-checksummed block per partition, and a footer index of
// offsets/lengths/row counts.
func WriteStore(w io.Writer, t *Table) (int64, error) { return store.Write(w, t) }

// WriteStoreFile writes t to path in the paged store format.
func WriteStoreFile(path string, t *Table) (int64, error) { return store.WriteFile(path, t) }

// OpenStore opens a paged store file for on-demand partition serving.
func OpenStore(path string, o StoreOptions) (*StoreReader, error) { return store.Open(path, o) }

// OpenTableFile opens a table data file of either format — the paged store
// or the legacy gob encoding — sniffing the header magic, so old files keep
// working while new ones open paged.
func OpenTableFile(path string, o StoreOptions) (*OpenedTable, error) {
	return store.OpenTableFile(path, o)
}

// --- Query model (internal/query) ---

// Query is a single-table aggregation query within PS3's scope (§2.2 of the
// paper): SUM/COUNT/AVG aggregates over linear column expressions, an
// optional predicate tree, and an optional GROUP BY.
type Query = query.Query

// Aggregate is one aggregate in the SELECT list; a non-nil Filter restricts
// it to matching rows (the CASE-condition rewrite of §2.2).
type Aggregate = query.Aggregate

// AggKind enumerates aggregate functions.
type AggKind = query.AggKind

// Aggregate kinds.
const (
	Sum   = query.Sum
	Count = query.Count
	Avg   = query.Avg
)

// LinearExpr is a ±-linear combination of numeric columns plus a constant.
type LinearExpr = query.LinearExpr

// Col returns the expression consisting of one column.
func Col(name string) LinearExpr { return query.Col(name) }

// Pred is a predicate tree node: And, Or, Not or Clause.
type Pred = query.Pred

// Clause is a single-column comparison (c op v).
type Clause = query.Clause

// And, Or, Not are predicate combinators.
type (
	And = query.And
	Or  = query.Or
	Not = query.Not
)

// Comparison operators for clauses.
const (
	OpEq = query.OpEq
	OpNe = query.OpNe
	OpLt = query.OpLt
	OpLe = query.OpLe
	OpGt = query.OpGt
	OpGe = query.OpGe
	OpIn = query.OpIn
)

// NewAnd returns the conjunction of preds, simplifying singletons.
func NewAnd(preds ...Pred) Pred { return query.NewAnd(preds...) }

// NewOr returns the disjunction of preds, simplifying singletons.
func NewOr(preds ...Pred) Pred { return query.NewOr(preds...) }

// Workload declares the aggregate functions, predicate columns and group-by
// columnsets PS3 is trained for.
type Workload = query.Workload

// Generator samples random queries from a workload over a concrete table.
type Generator = query.Generator

// NewGenerator validates the workload against the source's schema and
// returns a seeded query sampler; constants are drawn from actual rows of
// src, which may be a resident table or a paged store.
func NewGenerator(w Workload, src PartitionSource, seed int64) (*Generator, error) {
	return query.NewGenerator(w, src, seed)
}

// WeightedPartition is one (partition, weight) choice in a sample; partial
// answers combine as Σ wᵢ·Aᵢ (paper §2.4).
type WeightedPartition = query.WeightedPartition

// ParseSQL parses SQL text within the paper's query scope into a Query,
// also returning the table name from the FROM clause:
//
//	q, _, err := ps3.ParseSQL(`SELECT region, SUM(price) FROM sales
//	                           WHERE price > 10 GROUP BY region`)
//
// Supported: SUM/COUNT(*)/AVG over ±-linear expressions, FILTER (WHERE ...)
// aggregates, AND/OR/NOT predicates over =, !=, <>, <, <=, >, >=, IN,
// BETWEEN, and GROUP BY.
func ParseSQL(src string) (*Query, string, error) { return sqlparse.Parse(src) }

// MustParseSQL is ParseSQL that panics on error; for static queries.
func MustParseSQL(src string) *Query { return sqlparse.MustParse(src) }

// --- System facade (internal/core) ---

// System is a PS3 instance bound to one table and workload: statistics
// builder + trained partition picker + weighted executor. Partition picking
// runs on a batched inference path: per-query features fill a pooled
// row-major scratch matrix (in parallel across partition blocks) and the
// learned funnel evaluates whole partition batches on flat struct-of-arrays
// tree ensembles — bit-identical to the retained reference pipeline, several
// times faster, and allocation-free per partition.
type System = core.System

// Options configures a System. Options.Parallelism bounds the worker
// goroutines of the shared partition-scan engine (internal/exec) used by
// Run, RunExact, and Train's example preparation; 0 means GOMAXPROCS, and
// answers are bit-identical at every setting.
type Options = core.Options

// Result is the outcome of an approximate query execution. Its PickTime and
// ScanTime fields split the latency between partition selection and the
// weighted scan; the serving layer aggregates the same split into its
// /stats metrics.
type Result = core.Result

// Open builds the summary statistics for t (the offline "stats builder"
// pass); call Train before Run.
func Open(t *Table, opts Options) (*System, error) { return core.New(t, opts) }

// OpenWithStats binds a System to t using a pre-built statistics store
// (e.g. restored via ReadStats), skipping the sketch-building pass.
func OpenWithStats(t *Table, ts *TableStats, opts Options) (*System, error) {
	return core.NewFromStats(t, ts, opts)
}

// OpenSnapshot restores a trained System from a snapshot written with
// System.WriteTo and binds it to src — a resident *Table, or a StoreReader
// for out-of-core serving where only picked partitions are ever loaded. A
// snapshot bundles the statistics store, the trained picker (and LSS
// baseline, if fitted) and the options, so a fresh process cold-starts with
// zero retraining and produces bit-identical selections and answers to the
// process that trained.
func OpenSnapshot(r io.Reader, src PartitionSource) (*System, error) {
	return core.OpenSnapshot(r, src)
}

// --- Serving layer (internal/serve) ---

// Server is a long-lived, concurrency-safe query service over a trained
// System: compiled-query LRU cache, per-request RNG derivation, bounded
// in-flight scans, and request/latency counters. Its Handler method exposes
// the HTTP/JSON API that cmd/ps3serve listens on.
type Server = serve.Server

// ServeConfig tunes a Server (default budget, cache size, max in-flight).
type ServeConfig = serve.Config

// ServeMetrics is a point-in-time snapshot of a Server's counters,
// including the pick-time vs scan-time latency breakdown (AvgPickMs,
// AvgScanMs, PickFrac) and, on store-backed systems, partition-cache
// counters.
type ServeMetrics = serve.Metrics

// NewServer returns a serving layer over a trained (typically
// snapshot-restored) system.
func NewServer(sys *System, cfg ServeConfig) (*Server, error) { return serve.New(sys, cfg) }

// --- Statistics and metrics ---

// StatsOptions configures the statistics builder (histogram buckets, AKMV
// k, heavy-hitter support, bitmap width).
type StatsOptions = stats.Options

// TableStats is the per-partition summary-statistics store.
type TableStats = stats.TableStats

// BuildStats constructs all sketches for every partition of t directly,
// without the System facade.
func BuildStats(t *Table, opts StatsOptions) (*TableStats, error) { return stats.Build(t, opts) }

// ReadStats deserializes a statistics store written with TableStats.WriteTo.
// The store is fully usable for feature extraction and partition picking
// without access to the original data — the paper's deployment model, where
// sketches live separately from partitions (§2.3.1).
var ReadStats = stats.ReadStats

// Errors summarizes estimate quality: missed groups, average relative error
// and absolute-error-over-true (paper §5.1.4).
type Errors = metrics.Errors

// CompareAnswers scores an estimated answer against the truth.
func CompareAnswers(truth, est map[string][]float64) Errors { return metrics.Compare(truth, est) }

// --- Sketches (internal/sketch), exposed for standalone use ---

// Measures tracks min/max/moments (and log moments for positive columns).
type Measures = sketch.Measures

// Histogram is a one-pass equi-depth histogram.
type Histogram = sketch.Histogram

// AKMV is a K-minimum-values distinct-count sketch with frequencies.
type AKMV = sketch.AKMV

// HeavyHitter tracks frequent items via lossy counting.
type HeavyHitter = sketch.HeavyHitter

// NewMeasures returns a measures sketch; positive enables log moments.
func NewMeasures(positive bool) *Measures { return sketch.NewMeasures(positive) }

// NewHistogram returns an equi-depth histogram with the given bucket count.
func NewHistogram(buckets int) *Histogram { return sketch.NewHistogram(buckets) }

// NewAKMV returns an AKMV sketch keeping the k minimum hashes. Values must
// be hashed (e.g. with Hash64) before Add: the distinct estimate assumes
// uniformly distributed inputs.
func NewAKMV(k int) *AKMV { return sketch.NewAKMV(k) }

// Hash64 is the 64-bit mix PS3 uses to hash values into sketch space.
func Hash64(x uint64) uint64 { return sketch.Hash64(x) }

// --- Diagnostics (paper §7 "diagnostic procedures for failure cases") ---

// Finding is one diagnostic result: a known PS3 failure mode that applies
// to the query or layout under inspection.
type Finding = diagnose.Finding

// Diagnostic severities.
const (
	DiagInfo     = diagnose.Info
	DiagWarn     = diagnose.Warn
	DiagCritical = diagnose.Critical
)

// DiagnoseQuery flags the failure modes the paper documents for a query:
// high-cardinality GROUP BY (§2.2), complex predicates (Appendix B.1),
// highly selective predicates (§4.2), and columns outside the trained
// workload (§2.1).
func DiagnoseQuery(q *Query, ts *TableStats, wl Workload) []Finding {
	return diagnose.Query(q, ts, wl, diagnose.Options{})
}

// DiagnoseLayout reports whether the data layout is effectively random for
// the workload, in which case uniform sampling is already optimal and PS3
// should not be used (§5.5.1, Fig 8).
func DiagnoseLayout(ts *TableStats, wl Workload) []Finding {
	return diagnose.Layout(ts, wl)
}

// --- Variance analysis (Appendix D) ---

// HTVariance estimates the Horvitz–Thompson estimator's variance for a
// total under uniform Poisson sampling at rate p, from the sampled units'
// contributions (Appendix D.2, Eq 3).
func HTVariance(values []float64, p float64) float64 { return picker.HTVariance(values, p) }

// PartitionVsRowVariance compares the true estimator variance of uniform
// partition-level vs row-level Poisson sampling at the same sampling
// fraction (Appendix D.2, Eq 4–5): partition-level is larger by the cross
// terms of rows sharing a partition.
func PartitionVsRowVariance(partitionTotals []float64, rowValues [][]float64, p float64) (partVar, rowVar float64) {
	return picker.PartitionVsRowVariance(partitionTotals, rowValues, p)
}

// NewHeavyHitter returns a lossy-counting sketch with the given support
// threshold (e.g. 0.01 tracks items above 1% frequency).
func NewHeavyHitter(support float64) *HeavyHitter { return sketch.NewHeavyHitter(support) }
