// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5) at laptop scale, one Benchmark per artifact, plus micro-benchmarks of
// the core components. Run everything with:
//
//	go test -bench=. -benchmem
//
// The per-artifact benchmarks report, via b.ReportMetric, the headline
// number of the artifact they reproduce (e.g. PS3's average relative error
// at the smallest budget for Fig 3) so that `-bench` output doubles as a
// compact experimental record; the full harness with aligned tables is
// cmd/ps3bench.
package ps3

import (
	"io"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"ps3/internal/dataset"
	"ps3/internal/exec"
	"ps3/internal/experiments"
	"ps3/internal/picker"
	"ps3/internal/query"
)

// benchCfg is deliberately small: each artifact regenerates in seconds. Use
// cmd/ps3bench -rows/-parts/-train to scale toward paper-sized runs.
func benchCfg() experiments.Config {
	return experiments.Config{
		Rows:         6_000,
		Parts:        40,
		TrainQueries: 30,
		TestQueries:  8,
		Budgets:      []float64{0.05, 0.1, 0.2, 0.4},
		Runs:         2,
		Seed:         42,
	}
}

// benchEnvs caches one trained environment per dataset across benchmarks so
// that per-artifact benchmarks measure the experiment, not repeated setup.
var benchEnvs sync.Map

func benchEnv(b *testing.B, name string) *experiments.Env {
	b.Helper()
	if v, ok := benchEnvs.Load(name); ok {
		return v.(*experiments.Env)
	}
	cfg := benchCfg()
	ds, err := dataset.ByName(name, dataset.Config{Rows: cfg.Rows, Parts: cfg.Parts, Seed: cfg.Seed})
	if err != nil {
		b.Fatal(err)
	}
	env, err := experiments.NewEnv(ds, cfg)
	if err != nil {
		b.Fatal(err)
	}
	benchEnvs.Store(name, env)
	return env
}

// --- Fig 3: error vs budget, four methods, four datasets ---

func benchmarkFig3(b *testing.B, ds string) {
	env := benchEnv(b, ds)
	var last experiments.Curve
	for i := 0; i < b.N; i++ {
		last = env.ErrorCurve(experiments.MethodPS3, env.TestEx)
	}
	b.ReportMetric(last.Errs[0].AvgRelErr, "relerr@5%")
}

func BenchmarkFig3TPCH(b *testing.B)  { benchmarkFig3(b, "tpch") }
func BenchmarkFig3TPCDS(b *testing.B) { benchmarkFig3(b, "tpcds") }
func BenchmarkFig3Aria(b *testing.B)  { benchmarkFig3(b, "aria") }
func BenchmarkFig3KDD(b *testing.B)   { benchmarkFig3(b, "kdd") }

// --- Table 3: latency / compute speedups under the cluster cost model ---

func BenchmarkTable3Speedups(b *testing.B) {
	var rows []experiments.Table3Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunTable3(io.Discard, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) > 0 {
		b.ReportMetric(rows[0].TotalComputeSpeedup, "compute-speedup@1%")
	}
}

// --- Table 4: per-partition statistics storage ---

func BenchmarkTable4StatsSize(b *testing.B) {
	var rows []experiments.Table4Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunTable4(io.Discard, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) > 0 {
		b.ReportMetric(rows[0].Total, "KB/part")
	}
}

// --- Table 5: picker latency ---

// BenchmarkTable5PickerLatency measures the production pick path — batched
// featurization plus the flat-ensemble funnel — against the retained
// reference pipeline on the same query and budget.
func BenchmarkTable5PickerLatency(b *testing.B) {
	env := benchEnv(b, "aria")
	ex := env.TestEx[0]
	rng := rand.New(rand.NewSource(1))
	n := env.DS.Table.NumParts() / 10
	b.Run("reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			env.Sys.Picker.PickReference(ex.Query, env.Sys.Stats.Features(ex.Query), n, rng)
		}
	})
	b.Run("batch", func(b *testing.B) {
		eo := exec.Options{Parallelism: 1}
		for i := 0; i < b.N; i++ {
			env.Sys.Picker.PickBatch(ex.Query, n, rng, eo)
		}
	})
}

// --- Fig 4: lesion study and factor analysis ---

func BenchmarkFig4Lesion(b *testing.B) {
	env := benchEnv(b, "aria")
	var lesion experiments.Curve
	for i := 0; i < b.N; i++ {
		lesion = env.ErrorCurve(experiments.MethodNoCluster, env.TestEx)
	}
	b.ReportMetric(lesion.Errs[0].AvgRelErr, "relerr-w/o-cluster@5%")
}

// --- Fig 5: regressor feature importance by sketch family ---

func BenchmarkFig5FeatureImportance(b *testing.B) {
	env := benchEnv(b, "kdd")
	var imp map[string]float64
	for i := 0; i < b.N; i++ {
		imp = experiments.CategoryImportance(env)
	}
	b.ReportMetric(imp["selectivity"], "selectivity-share-%")
}

// --- Fig 6: alternative data layouts ---

func BenchmarkFig6AltLayout(b *testing.B) {
	cfg := benchCfg()
	ds, err := dataset.ByName("aria", dataset.Config{Rows: cfg.Rows, Parts: cfg.Parts, Seed: cfg.Seed})
	if err != nil {
		b.Fatal(err)
	}
	alt, err := ds.WithLayout(ds.AltLayouts[0])
	if err != nil {
		b.Fatal(err)
	}
	var env *experiments.Env
	for i := 0; i < b.N; i++ {
		env, err = experiments.NewEnv(alt, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	c := env.ErrorCurve(experiments.MethodPS3, env.TestEx)
	b.ReportMetric(c.Errs[0].AvgRelErr, "relerr@5%")
}

// --- Fig 7: error by query selectivity ---

func BenchmarkFig7SelectivityBreakdown(b *testing.B) {
	cfg := benchCfg()
	cfg.TestQueries = 20
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig7(io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig 8: random layout + partition-count sweep ---

func BenchmarkFig8PartitionCount(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig8(io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig 9 / Fig 11: generalization to TPC-H template queries ---

func BenchmarkFig9Generalization(b *testing.B) {
	cfg := benchCfg()
	var res *experiments.GeneralizationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunFig9(io.Discard, cfg, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	if res != nil && len(res.Average) > 1 {
		b.ReportMetric(res.Average[1].Errs[0].AvgRelErr, "ps3-relerr@5%")
	}
}

// --- Fig 10: decay rate α sweep, learned vs oracle ---

func BenchmarkFig10AlphaSweep(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig10(io.Discard, "kdd", cfg, []float64{1, 2, 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig 12: biased vs unbiased exemplar estimator ---

func BenchmarkFig12EstimatorComparison(b *testing.B) {
	env := benchEnv(b, "tpcds")
	var biased, unbiased experiments.Curve
	for i := 0; i < b.N; i++ {
		biased = env.ErrorCurve(experiments.MethodPS3, env.TestEx)
		unbiased = env.ErrorCurve(experiments.MethodPS3Unbiased, env.TestEx)
	}
	b.ReportMetric(biased.Errs[0].AvgRelErr, "biased@5%")
	b.ReportMetric(unbiased.Errs[0].AvgRelErr, "unbiased@5%")
}

// --- Table 6: clustering algorithm comparison ---

func BenchmarkTable6ClusteringAlgos(b *testing.B) {
	cfg := benchCfg()
	cfg.TrainQueries = 16
	cfg.TestQueries = 5
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable6(io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 7: feature-selection effect on clustering ---

func BenchmarkTable7FeatureSelection(b *testing.B) {
	cfg := benchCfg()
	cfg.TrainQueries = 16
	cfg.TestQueries = 5
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable7(io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 8: LSS strata-size sweep ---

func BenchmarkTable8LSSStrata(b *testing.B) {
	env := benchEnv(b, "kdd")
	for i := 0; i < b.N; i++ {
		if _, err := picker.TrainLSS(env.Sys.Stats, env.TrainEx, env.Cfg.Budgets, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Component micro-benchmarks ---

func BenchmarkStatsBuild(b *testing.B) {
	cfg := benchCfg()
	ds, err := dataset.ByName("aria", dataset.Config{Rows: cfg.Rows, Parts: cfg.Parts, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildStats(ds.Table, StatsOptions{GroupableCols: ds.Workload.GroupableCols}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFeatureMatrix(b *testing.B) {
	env := benchEnv(b, "aria")
	q := env.TestEx[0].Query
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.Sys.Stats.Features(q)
	}
}

func BenchmarkEndToEndRun(b *testing.B) {
	env := benchEnv(b, "aria")
	q := env.TestEx[0].Query
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Sys.Run(q, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Parallel scan engine: speedup over the sequential baseline ---

// scanFixture builds a table large enough that partition scanning dominates
// setup, plus a compiled group-by query over it.
func scanFixture(b *testing.B) (*Table, *query.Compiled) {
	b.Helper()
	ds, err := dataset.ByName("aria", dataset.Config{Rows: 120_000, Parts: 96, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	gen, err := query.NewGenerator(ds.Workload, ds.Table, 17)
	if err != nil {
		b.Fatal(err)
	}
	c, err := query.Compile(gen.Sample(), ds.Table)
	if err != nil {
		b.Fatal(err)
	}
	return ds.Table, c
}

// BenchmarkGroundTruthSequential is the single-worker baseline for the
// speedup metric below.
func BenchmarkGroundTruthSequential(b *testing.B) {
	tbl, c := scanFixture(b)
	c.Exec = exec.Options{Parallelism: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.GroundTruth(tbl)
	}
}

// BenchmarkGroundTruthParallel scans with GOMAXPROCS workers and reports
// the speedup over a sequential scan of the same table measured in-run.
func BenchmarkGroundTruthParallel(b *testing.B) {
	tbl, c := scanFixture(b)
	c.Exec = exec.Options{Parallelism: 1}
	const seqIters = 3
	seqStart := time.Now()
	for i := 0; i < seqIters; i++ {
		c.GroundTruth(tbl)
	}
	seqPer := time.Since(seqStart) / seqIters
	c.Exec = exec.Options{Parallelism: 0} // GOMAXPROCS
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.GroundTruth(tbl)
	}
	b.StopTimer()
	parPer := b.Elapsed() / time.Duration(b.N)
	b.ReportMetric(float64(seqPer)/float64(parPer), "speedup")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
}

// --- Vectorized execution: selection-vector kernels vs row-at-a-time ---

// vecFixture builds the acceptance case for the vectorized engine: a
// multi-clause-predicate GROUP BY query over the skewed TPC-H* table.
func vecFixture(b *testing.B) (*Table, *query.Compiled) {
	b.Helper()
	ds, err := dataset.ByName("tpch", dataset.Config{Rows: 120_000, Parts: 24, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	q := &query.Query{
		GroupBy: []string{"L_RETURNFLAG"},
		Pred: query.NewAnd(
			&query.Clause{Col: "L_QUANTITY", Op: query.OpGe, Num: 3},
			&query.Clause{Col: "L_QUANTITY", Op: query.OpLe, Num: 47},
			&query.Clause{Col: "L_SHIPDATE", Op: query.OpGe, Num: 200},
			&query.Clause{Col: "L_SHIPDATE", Op: query.OpLt, Num: 2300},
			&query.Clause{Col: "L_SHIPMODE", Op: query.OpIn, Strs: []string{"AIR", "RAIL", "SHIP", "TRUCK"}},
		),
		Aggs: []query.Aggregate{
			{Kind: query.Sum, Expr: query.Col("L_EXTENDEDPRICE")},
			{Kind: query.Avg, Expr: query.Col("L_QUANTITY")},
			{Kind: query.Count},
		},
	}
	c, err := query.Compile(q, ds.Table)
	if err != nil {
		b.Fatal(err)
	}
	return ds.Table, c
}

// BenchmarkEvalPartition compares the retained row-at-a-time reference
// evaluator against the vectorized kernel path on the same partitions; the
// vectorized sub-benchmark also reports its in-run speedup over the
// reference.
func BenchmarkEvalPartition(b *testing.B) {
	tbl, c := vecFixture(b)
	parts := tbl.Parts
	b.Run("row", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.EvalPartitionReference(parts[i%len(parts)])
		}
	})
	b.Run("vectorized", func(b *testing.B) {
		b.ReportAllocs()
		const refIters = 48
		refStart := time.Now()
		for i := 0; i < refIters; i++ {
			c.EvalPartitionReference(parts[i%len(parts)])
		}
		refPer := time.Since(refStart) / refIters
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.EvalPartition(parts[i%len(parts)])
		}
		b.StopTimer()
		vecPer := b.Elapsed() / time.Duration(b.N)
		b.ReportMetric(float64(refPer)/float64(vecPer), "speedup")
	})
}

// BenchmarkSelectivity compares predicate evaluation row-at-a-time vs as
// selection kernels over the whole table. Both run sequentially so the
// comparison isolates the kernel effect from parallelism.
func BenchmarkSelectivity(b *testing.B) {
	tbl, c := vecFixture(b)
	c.Exec = exec.Options{Parallelism: 1}
	b.Run("row", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.SelectivityReference(tbl)
		}
	})
	b.Run("vectorized", func(b *testing.B) {
		b.ReportAllocs()
		const refIters = 3
		refStart := time.Now()
		for i := 0; i < refIters; i++ {
			c.SelectivityReference(tbl)
		}
		refPer := time.Since(refStart) / refIters
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Selectivity(tbl)
		}
		b.StopTimer()
		vecPer := b.Elapsed() / time.Duration(b.N)
		b.ReportMetric(float64(refPer)/float64(vecPer), "speedup")
	})
}

// trainFixture returns an untrained system and training queries for the
// MakeExamples (offline pass) benchmarks.
func trainFixture(b *testing.B, parallelism int) (*System, []*Query) {
	b.Helper()
	ds, err := dataset.ByName("aria", dataset.Config{Rows: 40_000, Parts: 64, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	sys, err := Open(ds.Table, Options{Workload: ds.Workload, Seed: 5, Parallelism: parallelism})
	if err != nil {
		b.Fatal(err)
	}
	gen, err := NewGenerator(ds.Workload, ds.Table, 23)
	if err != nil {
		b.Fatal(err)
	}
	return sys, gen.SampleN(24)
}

// BenchmarkTrainSequential is the single-worker baseline of the offline
// example-preparation pass (one full scan per training query).
func BenchmarkTrainSequential(b *testing.B) {
	sys, qs := trainFixture(b, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.MakeExamples(qs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainParallel fans MakeExamples out across queries and reports
// the speedup over the sequential pass measured in-run.
func BenchmarkTrainParallel(b *testing.B) {
	seq, qs := trainFixture(b, 1)
	seqStart := time.Now()
	if _, err := seq.MakeExamples(qs); err != nil {
		b.Fatal(err)
	}
	seqPer := time.Since(seqStart)
	sys, _ := trainFixture(b, 0) // GOMAXPROCS
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.MakeExamples(qs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	parPer := b.Elapsed() / time.Duration(b.N)
	b.ReportMetric(float64(seqPer)/float64(parPer), "speedup")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
}

func BenchmarkExactRun(b *testing.B) {
	env := benchEnv(b, "aria")
	q := env.TestEx[0].Query
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Sys.RunExact(q); err != nil {
			b.Fatal(err)
		}
	}
}
