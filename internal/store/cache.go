package store

import (
	"container/list"
	"sync"

	"ps3/internal/table"
)

// CacheStats is a point-in-time snapshot of the partition cache counters.
type CacheStats struct {
	// Hits counts reads served from resident partitions, including reads
	// that coalesced onto another request's in-flight load (they waited,
	// but cost no extra disk I/O).
	Hits int64 `json:"hits"`
	// Misses counts reads that went to disk.
	Misses int64 `json:"misses"`
	// Evictions counts partitions dropped to stay inside the byte budget.
	Evictions int64 `json:"evictions"`
	// LoadedBytes is the cumulative admitted (resident-encoded) bytes
	// faulted in from disk — the physical footprint the cache paid for, as
	// opposed to the logical decoded-width reads the Reader's IOStats
	// accountant charges. For raw (v1) stores the two coincide; for encoded
	// stores LoadedBytes is smaller by the compression ratio. Lazily
	// decoded columns are tracked by the reader's EncodingStats, not here.
	LoadedBytes int64 `json:"loaded_bytes"`
	// ResidentBytes and ResidentParts describe what the cache holds now.
	ResidentBytes int64 `json:"resident_bytes"`
	ResidentParts int   `json:"resident_parts"`
	// BudgetBytes is the configured budget (0 = unbounded).
	BudgetBytes int64 `json:"budget_bytes"`
}

// partCache is a concurrency-safe, byte-budgeted LRU over decoded
// partitions with single-flight loading: concurrent reads of one absent
// partition trigger exactly one disk load, and the rest wait for it.
type partCache struct {
	budget int64 // <= 0 means unbounded

	mu      sync.Mutex
	entries map[int]*list.Element
	recency *list.List // front = most recently used
	pending map[int]*inflightLoad

	resident    int64
	hits        int64
	misses      int64
	evictions   int64
	loadedBytes int64
}

// cacheEntry is one resident partition.
type cacheEntry struct {
	part int
	p    *table.Partition
	size int64
}

// inflightLoad tracks one in-progress disk load; waiters block on done.
type inflightLoad struct {
	done chan struct{}
	p    *table.Partition
	err  error
}

func newPartCache(budget int64) *partCache {
	return &partCache{
		budget:  budget,
		entries: make(map[int]*list.Element),
		recency: list.New(),
		pending: make(map[int]*inflightLoad),
	}
}

// get returns partition i, calling load to fetch it on a miss. load runs
// outside the cache lock, so slow disk reads of different partitions
// proceed in parallel. Load errors are returned to every waiter but never
// cached: a transient read failure is retried on the next request.
func (c *partCache) get(i int, load func() (*table.Partition, int64, error)) (*table.Partition, error) {
	c.mu.Lock()
	if el, ok := c.entries[i]; ok {
		c.recency.MoveToFront(el)
		c.hits++
		p := el.Value.(*cacheEntry).p //lint:panicfree-ok recency list holds only cacheEntry values the cache itself inserted, never wire data
		c.mu.Unlock()
		return p, nil
	}
	if fl, ok := c.pending[i]; ok {
		c.hits++
		c.mu.Unlock()
		<-fl.done
		return fl.p, fl.err
	}
	c.misses++
	fl := &inflightLoad{done: make(chan struct{})}
	c.pending[i] = fl
	c.mu.Unlock()

	p, size, err := load()

	c.mu.Lock()
	delete(c.pending, i)
	if err == nil {
		c.loadedBytes += size
		c.insertLocked(i, p, size)
	}
	c.mu.Unlock()
	fl.p, fl.err = p, err
	close(fl.done)
	return p, err
}

// insertLocked admits a freshly loaded partition and evicts from the LRU
// tail until the budget holds again. The newest entry is never evicted:
// a single partition larger than the whole budget still gets served (and
// stays resident until the next admission).
func (c *partCache) insertLocked(i int, p *table.Partition, size int64) {
	c.entries[i] = c.recency.PushFront(&cacheEntry{part: i, p: p, size: size})
	c.resident += size
	if c.budget <= 0 {
		return
	}
	for c.resident > c.budget && c.recency.Len() > 1 {
		last := c.recency.Back()
		e := last.Value.(*cacheEntry) //lint:panicfree-ok recency list holds only cacheEntry values the cache itself inserted, never wire data
		c.recency.Remove(last)
		delete(c.entries, e.part)
		c.resident -= e.size
		c.evictions++
	}
}

// stats snapshots the counters.
func (c *partCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		LoadedBytes:   c.loadedBytes,
		ResidentBytes: c.resident,
		ResidentParts: c.recency.Len(),
		BudgetBytes:   c.budget,
	}
}
