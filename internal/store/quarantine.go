package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// errCorruptBlock marks a block-load failure as data corruption — a CRC
// mismatch or a structural decode failure on bytes that matched their
// checksum — as opposed to a transient I/O error. Corruption is what the
// quarantine machinery acts on: the bytes on disk are wrong, so retrying
// forever would melt the read path for a partition that will never load.
// Transient I/O errors are deliberately NOT marked: they stay retryable on
// the next request (and the single-flight cache never caches errors).
var errCorruptBlock = errors.New("corrupt block")

// ErrQuarantined is the sentinel matched (via errors.Is) against errors
// returned for partitions the reader has quarantined. The concrete error is
// always a *QuarantineError carrying the partition index and root cause.
var ErrQuarantined = errors.New("store: partition quarantined")

// QuarantineError reports a read of a quarantined partition: the block
// failed its CRC or decode twice in a row, so the reader has fenced it off.
// Degraded-mode callers (core.RunSelectionCtx) use Part to drop the
// partition from the selection and serve the rest with an explicit
// degraded flag instead of a silent wrong answer.
type QuarantineError struct {
	Part int   // partition index within this reader
	Err  error // the corruption error that triggered quarantine
}

func (e *QuarantineError) Error() string {
	return fmt.Sprintf("store: partition %d quarantined: %v", e.Part, e.Err)
}

func (e *QuarantineError) Unwrap() error { return e.Err }

// Is makes errors.Is(err, ErrQuarantined) hold for every QuarantineError.
func (e *QuarantineError) Is(target error) bool { return target == ErrQuarantined }

// HealthStats is a reader's degradation report: which partitions are
// fenced off and how many corrupt loads were retried. Zero values mean a
// fully healthy reader.
type HealthStats struct {
	// QuarantinedParts lists quarantined partition indices in ascending
	// order (source-local indices; multi-segment sources renumber).
	QuarantinedParts []int `json:"quarantined_parts,omitempty"`
	// CorruptRetries counts block loads that failed as corrupt and were
	// retried. A retry that succeeds (transient bit-flip between the disk
	// and the checksum) leaves the partition healthy.
	CorruptRetries int64 `json:"corrupt_retries"`
}

// quarantineSet is the reader's fence: partitions whose blocks failed as
// corrupt twice. Sticky for the life of the reader — snapshot swaps share
// readers, so a quarantined partition stays quarantined across swaps until
// the operator replaces the file.
type quarantineSet struct {
	mu    sync.RWMutex
	parts map[int]error
}

// check returns the quarantine error for partition i, or nil.
func (q *quarantineSet) check(i int) error {
	q.mu.RLock()
	cause, ok := q.parts[i]
	q.mu.RUnlock()
	if !ok {
		return nil
	}
	return &QuarantineError{Part: i, Err: cause}
}

// add fences partition i with the given root cause. First cause wins.
func (q *quarantineSet) add(i int, cause error) {
	q.mu.Lock()
	if q.parts == nil {
		q.parts = make(map[int]error)
	}
	if _, ok := q.parts[i]; !ok {
		q.parts[i] = cause
	}
	q.mu.Unlock()
}

// list returns the fenced partition indices in ascending order.
func (q *quarantineSet) list() []int {
	q.mu.RLock()
	out := make([]int, 0, len(q.parts))
	for i := range q.parts {
		out = append(out, i)
	}
	q.mu.RUnlock()
	sort.Ints(out)
	return out
}
