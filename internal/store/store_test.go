package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"ps3/internal/query"
	"ps3/internal/table"
)

// buildTable returns a deterministic fixture with one numeric, one
// categorical and one date column.
func buildTable(t testing.TB, rows, rowsPerPart int) *table.Table {
	t.Helper()
	s := table.MustSchema(
		table.Column{Name: "x", Kind: table.Numeric},
		table.Column{Name: "cat", Kind: table.Categorical},
		table.Column{Name: "d", Kind: table.Date},
	)
	b, err := table.NewBuilder(s, rowsPerPart)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		num := []float64{float64(i) * 1.5, 0, float64(i % 11)}
		cat := []string{"", fmt.Sprintf("c%d", i%7), ""}
		if err := b.Append(num, cat); err != nil {
			t.Fatal(err)
		}
	}
	return b.Finish()
}

// writeStore serializes tbl with the default (encoded) writer and returns
// the store bytes.
func writeStore(t testing.TB, tbl *table.Table) []byte {
	return writeStoreWith(t, tbl, WriteOptions{})
}

// writeStoreRaw serializes tbl in the frozen v1 raw layout.
func writeStoreRaw(t testing.TB, tbl *table.Table) []byte {
	return writeStoreWith(t, tbl, WriteOptions{Raw: true})
}

func writeStoreWith(t testing.TB, tbl *table.Table, opts WriteOptions) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := WriteWith(&buf, tbl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("Write reported %d bytes, wrote %d", n, buf.Len())
	}
	return buf.Bytes()
}

// encodedPartSize returns the resident-encoded footprint of partition i as
// the cache will charge it, by decoding the block outside the cache.
func encodedPartSize(t testing.TB, r *Reader, i int) int64 {
	t.Helper()
	p, err := r.loadBlock(i)
	if err != nil {
		t.Fatal(err)
	}
	return int64(p.EncodedSizeBytes())
}

// openStore opens store bytes with the given cache budget.
func openStore(t testing.TB, data []byte, cacheBytes int64) *Reader {
	t.Helper()
	r, err := NewReaderAt(bytes.NewReader(data), int64(len(data)), Options{CacheBytes: cacheBytes})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// requireSamePartition asserts bit-identical column data.
func requireSamePartition(t *testing.T, want, got *table.Partition, pi int) {
	t.Helper()
	if want.Rows() != got.Rows() {
		t.Fatalf("partition %d: %d rows, want %d", pi, got.Rows(), want.Rows())
	}
	for c := 0; c < want.Cols(); c++ {
		wn, gn := want.NumCol(c), got.NumCol(c)
		wc, gc := want.CatCol(c), got.CatCol(c)
		if len(wn) != len(gn) || len(wc) != len(gc) {
			t.Fatalf("partition %d column %d: slice shapes differ", pi, c)
		}
		for r, v := range wn {
			if gn[r] != v {
				t.Fatalf("partition %d column %d row %d: %v, want %v", pi, c, r, gn[r], v)
			}
		}
		for r, v := range wc {
			if gc[r] != v {
				t.Fatalf("partition %d column %d row %d: code %d, want %d", pi, c, r, gc[r], v)
			}
		}
	}
}

func TestRoundTrip(t *testing.T) {
	tbl := buildTable(t, 530, 60) // 8 full partitions + 1 partial
	r := openStore(t, writeStore(t, tbl), -1)
	if r.NumParts() != tbl.NumParts() || r.NumRows() != tbl.NumRows() {
		t.Fatalf("reader sees %d parts / %d rows, want %d / %d",
			r.NumParts(), r.NumRows(), tbl.NumParts(), tbl.NumRows())
	}
	if r.TotalBytes() != tbl.TotalBytes() {
		t.Fatalf("TotalBytes = %d, want %d", r.TotalBytes(), tbl.TotalBytes())
	}
	if r.TableDict().Len() != tbl.Dict.Len() {
		t.Fatalf("dictionary has %d values, want %d", r.TableDict().Len(), tbl.Dict.Len())
	}
	for pi := range tbl.Parts {
		got, err := r.Read(pi)
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != pi {
			t.Fatalf("partition %d decoded with ID %d", pi, got.ID)
		}
		requireSamePartition(t, tbl.Parts[pi], got, pi)
	}
}

func TestRoundTripEmptyTable(t *testing.T) {
	empty := &table.Table{
		Schema: table.MustSchema(table.Column{Name: "x", Kind: table.Numeric}),
		Dict:   table.NewDict(),
	}
	r := openStore(t, writeStore(t, empty), 0)
	if r.NumParts() != 0 || r.NumRows() != 0 || r.TotalBytes() != 0 {
		t.Fatalf("empty store: %d parts / %d rows / %d bytes", r.NumParts(), r.NumRows(), r.TotalBytes())
	}
	if _, err := r.Read(0); err == nil {
		t.Fatal("Read(0) on empty store should fail")
	}
}

func TestMaterializeEqualsOriginal(t *testing.T) {
	tbl := buildTable(t, 200, 30)
	r := openStore(t, writeStore(t, tbl), 1) // 1-byte budget: materialize must bypass the cache
	got, err := r.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if got.NumParts() != tbl.NumParts() || got.NumRows() != tbl.NumRows() {
		t.Fatalf("materialized %d parts / %d rows, want %d / %d",
			got.NumParts(), got.NumRows(), tbl.NumParts(), tbl.NumRows())
	}
	for pi := range tbl.Parts {
		requireSamePartition(t, tbl.Parts[pi], got.Parts[pi], pi)
	}
	if st := r.CacheStats(); st.Misses != 0 || st.ResidentParts != 0 {
		t.Fatalf("Materialize touched the cache: %+v", st)
	}
}

func TestReadOutOfRange(t *testing.T) {
	r := openStore(t, writeStore(t, buildTable(t, 60, 20)), 0)
	if _, err := r.Read(-1); err == nil {
		t.Error("Read(-1) should fail")
	}
	if _, err := r.Read(r.NumParts()); err == nil {
		t.Error("Read past the end should fail")
	}
}

func TestIOAccountingIsLogical(t *testing.T) {
	tbl := buildTable(t, 300, 100)
	r := openStore(t, writeStore(t, tbl), -1)
	for _, pi := range []int{0, 1, 0, 0} { // 2 physical loads, 4 logical reads
		if _, err := r.Read(pi); err != nil {
			t.Fatal(err)
		}
	}
	parts, bytesRead := r.IOStats()
	if parts != 4 {
		t.Errorf("logical reads = %d, want 4", parts)
	}
	want := int64(3*tbl.Parts[0].SizeBytes() + tbl.Parts[1].SizeBytes())
	if bytesRead != want {
		t.Errorf("logical bytes = %d, want %d", bytesRead, want)
	}
	st := r.CacheStats()
	if st.Misses != 2 || st.Hits != 2 {
		t.Errorf("cache saw %d misses / %d hits, want 2 / 2", st.Misses, st.Hits)
	}
	wantLoaded := encodedPartSize(t, r, 0) + encodedPartSize(t, r, 1)
	if st.LoadedBytes != wantLoaded {
		t.Errorf("physical bytes = %d, want %d (admitted encoded bytes)", st.LoadedBytes, wantLoaded)
	}
	r.ResetIO()
	if p, b := r.IOStats(); p != 0 || b != 0 {
		t.Error("ResetIO did not clear counters")
	}
}

func TestCacheEvictsToBudget(t *testing.T) {
	tbl := buildTable(t, 400, 100) // 4 equal partitions
	data := writeStore(t, tbl)
	partSize := encodedPartSize(t, openStore(t, data, -1), 0)
	budget := 2*partSize + partSize/2 // room for two partitions
	r := openStore(t, data, budget)
	for pi := 0; pi < 4; pi++ {
		if _, err := r.Read(pi); err != nil {
			t.Fatal(err)
		}
	}
	st := r.CacheStats()
	if st.Misses != 4 {
		t.Errorf("misses = %d, want 4", st.Misses)
	}
	if st.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", st.Evictions)
	}
	if st.ResidentBytes > budget {
		t.Errorf("resident %d bytes exceeds budget %d", st.ResidentBytes, budget)
	}
	if st.ResidentParts != 2 {
		t.Errorf("resident parts = %d, want 2", st.ResidentParts)
	}
	// LRU order: 2 and 3 are resident, 0 and 1 were evicted.
	if _, err := r.Read(3); err != nil {
		t.Fatal(err)
	}
	if got := r.CacheStats(); got.Hits != 1 {
		t.Errorf("re-reading a resident partition: hits = %d, want 1", got.Hits)
	}
	if _, err := r.Read(0); err != nil {
		t.Fatal(err)
	}
	if got := r.CacheStats(); got.Misses != 5 {
		t.Errorf("re-reading an evicted partition: misses = %d, want 5", got.Misses)
	}
}

func TestCacheServesPartitionLargerThanBudget(t *testing.T) {
	tbl := buildTable(t, 100, 100)
	r := openStore(t, writeStore(t, tbl), 10) // far below one partition
	p, err := r.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rows() != 100 {
		t.Fatalf("rows = %d, want 100", p.Rows())
	}
	if st := r.CacheStats(); st.ResidentParts != 1 {
		t.Fatalf("oversized partition must stay resident until the next admission: %+v", st)
	}
}

func TestSingleFlightLoads(t *testing.T) {
	tbl := buildTable(t, 500, 500)
	r := openStore(t, writeStore(t, tbl), -1)
	const goroutines = 16
	var wg sync.WaitGroup
	parts := make([]*table.Partition, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p, err := r.Read(0)
			if err != nil {
				t.Error(err)
				return
			}
			parts[g] = p
		}(g)
	}
	wg.Wait()
	st := r.CacheStats()
	if st.Misses != 1 {
		t.Errorf("%d concurrent reads of one partition caused %d loads, want 1", goroutines, st.Misses)
	}
	if want := encodedPartSize(t, r, 0); st.LoadedBytes != want {
		t.Errorf("physical bytes = %d, want one block (%d)", st.LoadedBytes, want)
	}
	for g := 1; g < goroutines; g++ {
		if parts[g] != parts[0] {
			t.Fatal("concurrent readers got distinct partition copies")
		}
	}
}

func TestConcurrentReadsUnderTinyBudget(t *testing.T) {
	tbl := buildTable(t, 600, 50) // 12 partitions
	data := writeStore(t, tbl)
	partSize := encodedPartSize(t, openStore(t, data, -1), 0)
	r := openStore(t, data, partSize+1) // thrash: one partition fits
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for n := 0; n < 50; n++ {
				pi := rng.Intn(tbl.NumParts())
				p, err := r.Read(pi)
				if err != nil {
					t.Error(err)
					return
				}
				if p.NumCol(0)[0] != tbl.Parts[pi].NumCol(0)[0] {
					t.Errorf("partition %d decoded wrong data under eviction pressure", pi)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if st := r.CacheStats(); st.ResidentBytes > partSize+1 {
		t.Errorf("resident %d bytes exceeds budget %d", st.ResidentBytes, partSize+1)
	}
}

// rebuildFooter re-encodes a mutated footer into valid store bytes, with a
// correct trailer, so corruption tests exercise exactly one invariant.
func rebuildFooter(t testing.TB, data []byte, mutate func(*footerWire)) []byte {
	t.Helper()
	size := int64(len(data))
	footerLen := binary.LittleEndian.Uint64(data[size-int64(trailerSize):])
	footerStart := size - int64(trailerSize) - int64(footerLen)
	var footer footerWire
	if err := gob.NewDecoder(bytes.NewReader(data[footerStart : size-int64(trailerSize)])).Decode(&footer); err != nil {
		t.Fatal(err)
	}
	mutate(&footer)
	var fbuf bytes.Buffer
	if err := gob.NewEncoder(&fbuf).Encode(&footer); err != nil {
		t.Fatal(err)
	}
	out := append([]byte(nil), data[:footerStart]...)
	out = append(out, fbuf.Bytes()...)
	var trailer [trailerSize]byte
	binary.LittleEndian.PutUint64(trailer[:8], uint64(fbuf.Len()))
	binary.LittleEndian.PutUint32(trailer[8:12], crc32.Checksum(fbuf.Bytes(), crcTable))
	copy(trailer[12:], trailerMagic)
	return append(out, trailer[:]...)
}

func TestOpenRejectsCorruptFooter(t *testing.T) {
	// The rows/length cross-check is a v1 invariant (v2 block lengths vary
	// with the data), so these cases run against the raw layout; v2-only
	// footer validation is covered by TestOpenRejectsCorruptFooterEncoded.
	valid := writeStoreRaw(t, buildTable(t, 140, 40))
	cases := []struct {
		name   string
		mutate func(*footerWire)
		msg    string
	}{
		{"no columns", func(f *footerWire) { f.Cols = nil }, "no columns"},
		{"duplicate column names", func(f *footerWire) { f.Cols[1].Name = f.Cols[0].Name }, "duplicate"},
		{"duplicate dictionary values", func(f *footerWire) { f.DictVals[1] = f.DictVals[0] }, "distinct values"},
		{"negative rows", func(f *footerWire) { f.Blocks[0].Rows = -4 }, "row count"},
		{"absurd rows", func(f *footerWire) { f.Blocks[0].Rows = 1 << 40 }, "row count"},
		{"length does not match rows", func(f *footerWire) { f.Blocks[1].Rows++ }, "require"},
		{"offset before data section", func(f *footerWire) {
			f.Blocks[0].Offset = 2
		}, "outside the data section"},
		{"block overlaps footer", func(f *footerWire) {
			f.Blocks[2].Offset += 1 << 30
		}, "outside the data section"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			data := rebuildFooter(t, valid, c.mutate)
			_, err := NewReaderAt(bytes.NewReader(data), int64(len(data)), Options{})
			if err == nil {
				t.Fatal("want error for corrupt footer")
			}
			if !strings.Contains(err.Error(), c.msg) {
				t.Fatalf("error %q does not mention %q", err, c.msg)
			}
		})
	}
}

func TestOpenRejectsCorruptFooterEncoded(t *testing.T) {
	valid := writeStore(t, buildTable(t, 140, 40))
	cases := []struct {
		name   string
		mutate func(*footerWire)
		msg    string
	}{
		{"no columns", func(f *footerWire) { f.Cols = nil }, "no columns"},
		{"negative rows", func(f *footerWire) { f.Blocks[0].Rows = -4 }, "row count"},
		{"block shorter than column headers", func(f *footerWire) { f.Blocks[1].Length = 3 }, "column headers require"},
		{"block overlaps footer", func(f *footerWire) { f.Blocks[2].Offset += 1 << 30 }, "outside the data section"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			data := rebuildFooter(t, valid, c.mutate)
			_, err := NewReaderAt(bytes.NewReader(data), int64(len(data)), Options{})
			if err == nil {
				t.Fatal("want error for corrupt footer")
			}
			if !strings.Contains(err.Error(), c.msg) {
				t.Fatalf("error %q does not mention %q", err, c.msg)
			}
		})
	}
}

func TestOpenRejectsStructuralCorruption(t *testing.T) {
	valid := writeStore(t, buildTable(t, 80, 40))
	run := func(name string, data []byte, msg string) {
		t.Run(name, func(t *testing.T) {
			_, err := NewReaderAt(bytes.NewReader(data), int64(len(data)), Options{})
			if err == nil {
				t.Fatal("want error")
			}
			if !strings.Contains(err.Error(), msg) {
				t.Fatalf("error %q does not mention %q", err, msg)
			}
		})
	}
	tiny := []byte("short")
	run("too small", tiny, "too small")

	badMagic := append([]byte(nil), valid...)
	badMagic[0] = 'X'
	run("bad header magic", badMagic, "not a store file")

	badVersion := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(badVersion[len(headerMagic):], 99)
	run("bad version", badVersion, "version")

	truncated := append([]byte(nil), valid[:len(valid)-3]...)
	run("truncated trailer", truncated, "trailer")

	badFooterLen := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(badFooterLen[len(badFooterLen)-trailerSize:], 1<<40)
	run("footer length past file", badFooterLen, "footer length")

	badFooterCRC := append([]byte(nil), valid...)
	badFooterCRC[len(badFooterCRC)-trailerSize-1] ^= 0xff
	run("footer checksum", badFooterCRC, "checksum")
}

func TestBlockCorruptionFailsOnRead(t *testing.T) {
	tbl := buildTable(t, 120, 40)
	data := writeStore(t, tbl)
	// Flip one byte inside partition 1's block: open must still succeed
	// (the footer is intact) and only Read(1) fails its CRC.
	probe := openStore(t, data, 0)
	data[probe.blocks[1].Offset+5] ^= 0xff
	r := openStore(t, data, 0)
	if _, err := r.Read(0); err != nil {
		t.Fatalf("intact partition: %v", err)
	}
	_, err := r.Read(1)
	if err == nil {
		t.Fatal("corrupted block must fail checksum")
	}
	if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("error %q does not mention checksum", err)
	}
	if _, err := r.Read(2); err != nil {
		t.Fatalf("partition after the corrupt one: %v", err)
	}
}

func TestOpenTableFileSniffsFormats(t *testing.T) {
	tbl := buildTable(t, 90, 30)
	dir := t.TempDir()

	storePath := filepath.Join(dir, "data.ps3")
	if _, err := WriteFile(storePath, tbl); err != nil {
		t.Fatal(err)
	}
	gobPath := filepath.Join(dir, "data.gob")
	gf, err := os.Create(gobPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.WriteTo(gf); err != nil {
		t.Fatal(err)
	}
	if err := gf.Close(); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		path string
		want Format
	}{{storePath, FormatStore}, {gobPath, FormatGob}} {
		ot, err := OpenTableFile(tc.path, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if ot.Format != tc.want {
			t.Fatalf("%s sniffed as %q, want %q", tc.path, ot.Format, tc.want)
		}
		if ot.Source.NumRows() != tbl.NumRows() || ot.Source.NumParts() != tbl.NumParts() {
			t.Fatalf("%s: %d rows / %d parts", tc.path, ot.Source.NumRows(), ot.Source.NumParts())
		}
		mat, err := ot.Materialize()
		if err != nil {
			t.Fatal(err)
		}
		for pi := range tbl.Parts {
			requireSamePartition(t, tbl.Parts[pi], mat.Parts[pi], pi)
		}
		if err := ot.Close(); err != nil {
			t.Fatal(err)
		}
	}

	garbage := filepath.Join(dir, "garbage")
	if err := os.WriteFile(garbage, []byte("definitely not a table"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenTableFile(garbage, Options{}); err == nil {
		t.Fatal("garbage file should not open")
	}
	if _, err := OpenTableFile(filepath.Join(dir, "missing"), Options{}); err == nil {
		t.Fatal("missing file should not open")
	}
}

// TestOpenTableFileShortFile: files too short to hold any header — empty,
// or a byte-level prefix of either format's magic — must fail with the
// typed ErrShortFile, so probing callers (ingest recovery) can tell
// "nothing written yet" from corruption inside a recognized format.
func TestOpenTableFileShortFile(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"one-byte", []byte{'P'}},
		{"magic-prefix", []byte(headerMagic[:len(headerMagic)-1])},
	} {
		path := filepath.Join(dir, tc.name)
		if err := os.WriteFile(path, tc.data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := OpenTableFile(path, Options{})
		if err == nil {
			t.Fatalf("%s: opened a %d-byte file", tc.name, len(tc.data))
		}
		if !errors.Is(err, ErrShortFile) {
			t.Fatalf("%s: error %v, want errors.Is ErrShortFile", tc.name, err)
		}
	}
	// A file exactly as long as the magic but with different bytes is a
	// sniffable (failed) gob candidate, not a short file.
	full := filepath.Join(dir, "wrong-magic")
	if err := os.WriteFile(full, []byte("XXXXXXXX")[:len(headerMagic)], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenTableFile(full, Options{}); err == nil || errors.Is(err, ErrShortFile) {
		t.Fatalf("wrong-magic file: error %v, want a non-short-file failure", err)
	}
}

// TestQueryEquivalenceStoreVsResident is the subsystem-level half of the
// acceptance contract: the same compiled query over the same weighted
// selection must produce bit-identical answers whether partitions come from
// RAM or are faulted in through a thrashing page cache.
func TestQueryEquivalenceStoreVsResident(t *testing.T) {
	tbl := buildTable(t, 700, 50) // 14 partitions
	partSize := int64(tbl.Parts[0].SizeBytes())
	r := openStore(t, writeStore(t, tbl), 3*partSize) // forces eviction mid-scan
	q := &query.Query{
		Aggs: []query.Aggregate{
			{Kind: query.Sum, Expr: query.Col("x")},
			{Kind: query.Count},
			{Kind: query.Avg, Expr: query.Col("d")},
		},
		Pred:    &query.Clause{Col: "x", Op: query.OpGt, Num: 100},
		GroupBy: []string{"cat"},
	}
	cr, err := query.Compile(q, tbl)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := query.Compile(q, r)
	if err != nil {
		t.Fatal(err)
	}
	sel := []query.WeightedPartition{
		{Part: 0, Weight: 2.5}, {Part: 3, Weight: 1.25}, {Part: 7, Weight: 3},
		{Part: 8, Weight: 0.5}, {Part: 13, Weight: 7},
	}
	want, err := cr.Estimate(tbl, sel)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cs.Estimate(r, sel)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Groups) == 0 || len(want.Groups) != len(got.Groups) {
		t.Fatalf("group counts differ: %d vs %d", len(want.Groups), len(got.Groups))
	}
	for g, wv := range want.Groups {
		gv, ok := got.Groups[g]
		if !ok {
			t.Fatalf("store-backed answer is missing group %q", cr.GroupLabel(g))
		}
		for i := range wv {
			if wv[i] != gv[i] {
				t.Fatalf("group %q accumulator %d: %v vs %v", cr.GroupLabel(g), i, wv[i], gv[i])
			}
		}
	}
	parts, bytesRead := r.IOStats()
	if parts != int64(len(sel)) {
		t.Errorf("store charged %d logical reads, want %d", parts, len(sel))
	}
	if bytesRead <= 0 {
		t.Error("no logical bytes charged")
	}
	if st := r.CacheStats(); st.LoadedBytes > int64(len(sel))*partSize {
		t.Errorf("loaded %d physical bytes for %d picked partitions", st.LoadedBytes, len(sel))
	}
}
