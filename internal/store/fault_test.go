package store

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"ps3/internal/fault"
	"ps3/internal/table"
)

// faultFixture writes a small store to disk and reopens it through an
// injector so tests can script block-read faults. Returns the reader and
// the injector (rules can be added or cleared mid-test).
func faultFixture(t *testing.T, rules ...*fault.Rule) (*Reader, *fault.Injector) {
	t.Helper()
	tbl := buildTable(t, 600, 100)
	path := filepath.Join(t.TempDir(), "t.ps3")
	if _, err := WriteFile(path, tbl); err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(fault.OS, 1, rules...)
	r, err := OpenFS(inj, path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r, inj
}

// TestTransientReadErrorIsRetryable: an injected I/O error on a block read
// fails that read without quarantining; the next read succeeds and the
// cache caches nothing in between.
func TestTransientReadErrorIsRetryable(t *testing.T) {
	// Rules match OpRead; the footer reads during open must succeed, so
	// fire starting at the first post-open read.
	r, inj := faultFixture(t)
	inj.AddRule(&fault.Rule{Op: fault.OpRead, FailAt: 1, MaxFires: 1})

	if _, err := r.Read(2); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("faulted read: err = %v, want ErrInjected", err)
	}
	if errors.Is(err0(r.Read(2)), ErrQuarantined) {
		t.Fatal("transient I/O error quarantined the partition")
	}
	p, err := r.Read(2)
	if err != nil {
		t.Fatalf("retry after transient fault: %v", err)
	}
	if p.Rows() != 100 {
		t.Fatalf("retry returned %d rows, want 100", p.Rows())
	}
	if h := r.Health(); len(h.QuarantinedParts) != 0 || h.CorruptRetries != 0 {
		t.Fatalf("health after transient fault = %+v, want clean", h)
	}
}

func err0(_ any, err error) error { return err }

// TestCorruptBlockQuarantines: two corrupt reads in a row quarantine the
// partition; later reads fail fast with ErrQuarantined (no disk I/O),
// other partitions keep serving, and Health reports the fence.
func TestCorruptBlockQuarantines(t *testing.T) {
	r, inj := faultFixture(t)
	// Corrupt every block read from here on: the load and its retry both
	// see damaged bytes, which is the quarantine trigger.
	inj.AddRule(&fault.Rule{Op: fault.OpRead, FailAt: 1, Corrupt: true})

	_, err := r.Read(3)
	var qe *QuarantineError
	if !errors.As(err, &qe) || !errors.Is(err, ErrQuarantined) {
		t.Fatalf("corrupt read: err = %v, want *QuarantineError matching ErrQuarantined", err)
	}
	if qe.Part != 3 {
		t.Fatalf("quarantined part %d, want 3", qe.Part)
	}

	// Fast-fail path: clear the rules; the partition must STILL be fenced
	// (quarantine is sticky) without touching the disk.
	inj.ClearRules()
	opsBefore, _ := inj.Stats()
	if _, err := r.Read(3); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("read after quarantine: err = %v, want ErrQuarantined", err)
	}
	if _, err := r.ReadUncached(3); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("ReadUncached after quarantine: err = %v, want ErrQuarantined", err)
	}
	if opsAfter, _ := inj.Stats(); opsAfter != opsBefore {
		t.Fatalf("quarantined reads performed %d disk ops, want 0", opsAfter-opsBefore)
	}

	// Healthy partitions are unaffected.
	if _, err := r.Read(0); err != nil {
		t.Fatalf("healthy partition after quarantine: %v", err)
	}

	h := r.Health()
	if len(h.QuarantinedParts) != 1 || h.QuarantinedParts[0] != 3 {
		t.Fatalf("Health.QuarantinedParts = %v, want [3]", h.QuarantinedParts)
	}
	if h.CorruptRetries < 1 {
		t.Fatalf("Health.CorruptRetries = %d, want >= 1", h.CorruptRetries)
	}
}

// TestCorruptOnceRecoversOnRetry: corruption that clears before the retry
// (a transient flip on the wire, not on the platter) serves the partition
// and leaves nothing quarantined — only the retry counter moves.
func TestCorruptOnceRecoversOnRetry(t *testing.T) {
	r, inj := faultFixture(t)
	inj.AddRule(&fault.Rule{Op: fault.OpRead, FailAt: 1, MaxFires: 1, Corrupt: true})

	p, err := r.Read(1)
	if err != nil {
		t.Fatalf("read with one corrupt attempt: %v", err)
	}
	if p.Rows() != 100 {
		t.Fatalf("rows = %d, want 100", p.Rows())
	}
	h := r.Health()
	if len(h.QuarantinedParts) != 0 {
		t.Fatalf("QuarantinedParts = %v, want none", h.QuarantinedParts)
	}
	if h.CorruptRetries != 1 {
		t.Fatalf("CorruptRetries = %d, want 1", h.CorruptRetries)
	}
}

// TestSingleFlightLoadErrorConsistency is the satellite-2 contract: when a
// partition load fails, (1) the error is not cached — a later read
// retries the disk; (2) every concurrent waiter coalesced onto the failed
// load sees the error; (3) once the fault clears, a retry succeeds and the
// partition caches normally. Run with -race, this also shakes out
// lock-ordering bugs between the cache lock and the in-flight channel.
func TestSingleFlightLoadErrorConsistency(t *testing.T) {
	r, inj := faultFixture(t)

	const waiters = 8
	for round := 0; round < 3; round++ {
		// Every read attempt in this round fails (loads are single-flight,
		// but under contention the loser of the race may start a second
		// load after the first one's error — fail them all).
		inj.ClearRules()
		inj.AddRule(&fault.Rule{Op: fault.OpRead, FailAt: 1})

		var wg sync.WaitGroup
		errs := make([]error, waiters)
		for w := 0; w < waiters; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				_, errs[w] = r.Read(4)
			}(w)
		}
		wg.Wait()
		for w, err := range errs {
			if !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("round %d waiter %d: err = %v, want ErrInjected", round, w, err)
			}
		}
		if cs := r.CacheStats(); cs.ResidentParts != 0 {
			t.Fatalf("round %d: %d partitions resident after failed loads, want 0 (errors must not be cached)",
				round, cs.ResidentParts)
		}
	}

	// Fault clears: the same partition loads, serves every waiter the same
	// partition pointer, and caches.
	inj.ClearRules()
	var wg sync.WaitGroup
	ptrs := make([]*table.Partition, waiters)
	for w := 0; w < waiters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p, err := r.Read(4)
			if err != nil {
				t.Errorf("waiter %d after fault cleared: %v", w, err)
				return
			}
			ptrs[w] = p
		}(w)
	}
	wg.Wait()
	for w := 1; w < waiters; w++ {
		if ptrs[w] != ptrs[0] {
			t.Fatalf("waiters got different partition instances (%p vs %p)", ptrs[w], ptrs[0])
		}
	}
	cs := r.CacheStats()
	if cs.ResidentParts != 1 {
		t.Fatalf("ResidentParts = %d after successful retry, want 1", cs.ResidentParts)
	}
	if h := r.Health(); len(h.QuarantinedParts) != 0 {
		t.Fatalf("transient-fault rounds quarantined %v, want none", h.QuarantinedParts)
	}
}

// TestWriteFileFSFaults: a scripted create failure and a torn-write
// failure both surface as errors from WriteFileFS (nothing acknowledged),
// and the resulting partial file is rejected at open.
func TestWriteFileFSFaults(t *testing.T) {
	tbl := buildTable(t, 200, 100)
	dir := t.TempDir()

	inj := fault.NewInjector(fault.OS, 3,
		&fault.Rule{Op: fault.OpCreate, FailAt: 1, MaxFires: 1})
	path := filepath.Join(dir, "w1.ps3")
	if _, err := WriteFileFS(inj, path, tbl, WriteOptions{}); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("create fault: err = %v, want ErrInjected", err)
	}

	inj2 := fault.NewInjector(fault.OS, 3,
		&fault.Rule{Op: fault.OpWrite, FailAt: 3, Torn: true})
	path2 := filepath.Join(dir, "w2.ps3")
	if _, err := WriteFileFS(inj2, path2, tbl, WriteOptions{}); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("torn write: err = %v, want ErrInjected", err)
	}
	if _, err := Open(path2, Options{}); err == nil {
		t.Fatal("torn store file opened cleanly, want validation failure")
	}
}
