package store

import "ps3/internal/stats"

// HintsFromStats adapts a table's per-partition column sketches into
// encoding hints for WriteWith: exact min/max from the numeric measures and
// exact distinct counts from the categorical dictionaries. The sketches are
// built at ingest time anyway, so the encoding chooser gets its pruning
// information for free instead of re-scanning every block. Hints only skip
// provably fruitless scans — the chosen encodings are identical with or
// without them (asserted by TestChooserHintConsistency).
func HintsFromStats(ts *stats.TableStats) func(part, col int) (ColHint, bool) {
	if ts == nil {
		return nil
	}
	return func(part, col int) (ColHint, bool) {
		if part < 0 || part >= len(ts.Parts) {
			return ColHint{}, false
		}
		ps := ts.Parts[part]
		if col < 0 || col >= len(ps.Cols) {
			return ColHint{}, false
		}
		cs := ps.Cols[col]
		var h ColHint
		if m := cs.Measures; m != nil && m.Count > 0 {
			h.Min, h.Max, h.HasRange = m.Min, m.Max, true
		}
		if d := cs.Dict; d != nil {
			if n, ok := d.Distinct(); ok {
				h.Distinct, h.HasDistinct = n, true
			}
		}
		return h, h.HasRange || h.HasDistinct
	}
}
