// Package store is PS3's out-of-core partition storage: a self-describing
// paged file format plus a Reader that serves individual partitions on
// demand through a bounded cache, so a serving process's memory scales with
// the picked set instead of the dataset.
//
// The file layout is block storage in the Parquet spirit — column data in
// per-partition blocks addressed by a footer index:
//
//	header   (16 bytes)  magic "PS3STOR1" | version u32 | reserved u32
//	blocks   one per partition: each column's raw values back to back in
//	         schema order (numeric float64 bits LE, categorical code u32 LE)
//	footer   gob(footerWire): schema columns, dictionary values, and one
//	         {offset, length, rows, crc32} index entry per block
//	trailer  (20 bytes)  footer length u64 | footer crc32 | magic "PS3STEND"
//
// A reader seeks to the trailer, validates and decodes the footer as
// untrusted input, and can then fetch any partition with one ReadAt. Every
// block and the footer carry CRC32-C checksums, so corruption surfaces as a
// per-partition error instead of a panic inside the vectorized kernels.
// Writing is a single forward stream: no seeks, so the writer works on
// pipes and object-store uploads too.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"ps3/internal/table"
)

const (
	headerMagic  = "PS3STOR1"
	trailerMagic = "PS3STEND"

	formatVersion = 1

	headerSize  = len(headerMagic) + 4 + 4  // magic + version + reserved
	trailerSize = 8 + 4 + len(trailerMagic) // footer length + footer CRC + magic
)

// crcTable is the CRC32-C (Castagnoli) polynomial, hardware-accelerated on
// current CPUs.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// footerWire is the gob-encoded footer: everything needed to open the store
// and address any partition without touching block data.
type footerWire struct {
	Cols     []table.Column
	DictVals []string
	Blocks   []blockWire
}

// blockWire is one partition's index entry.
type blockWire struct {
	// Offset and Length locate the block in the file.
	Offset int64
	Length int64
	// Rows is the partition's row count; together with the schema it fully
	// determines Length (see blockSize), which the open path verifies.
	Rows int64
	// CRC is the CRC32-C of the block bytes.
	CRC uint32
}

// bytesPerRow returns the encoded size of one row under s: 8 bytes per
// numeric column, 4 per categorical.
func bytesPerRow(s *table.Schema) int64 {
	var n int64
	for _, c := range s.Cols {
		if c.IsNumeric() {
			n += 8
		} else {
			n += 4
		}
	}
	return n
}

// blockSize returns the encoded byte length of a partition with the given
// row count. Cell encodings are fixed-width, so the encoded block is exactly
// the partition's decoded SizeBytes — TotalBytes agrees between a resident
// table and its store file.
func blockSize(s *table.Schema, rows int64) int64 {
	return bytesPerRow(s) * rows
}

// encodeBlock appends partition p's column data to dst in the block layout.
func encodeBlock(dst []byte, s *table.Schema, p *table.Partition) []byte {
	for c, col := range s.Cols {
		if col.IsNumeric() {
			for _, v := range p.NumCol(c) {
				dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
			}
		} else {
			for _, code := range p.CatCol(c) {
				dst = binary.LittleEndian.AppendUint32(dst, code)
			}
		}
	}
	return dst
}

// decodeBlock parses one block into a partition, validating every
// dictionary code against dictLen. data's length must already equal
// blockSize(s, rows) — the open path rejects index entries where it
// doesn't.
func decodeBlock(data []byte, s *table.Schema, dictLen uint32, id, rows int) (*table.Partition, error) {
	num := make([][]float64, s.NumCols())
	cat := make([][]uint32, s.NumCols())
	for c, col := range s.Cols {
		if col.IsNumeric() {
			vals := make([]float64, rows)
			for r := range vals {
				vals[r] = math.Float64frombits(binary.LittleEndian.Uint64(data))
				data = data[8:]
			}
			num[c] = vals
			continue
		}
		codes := make([]uint32, rows)
		for r := range codes {
			code := binary.LittleEndian.Uint32(data)
			data = data[4:]
			if code >= dictLen {
				return nil, fmt.Errorf("store: partition %d column %q row %d has dictionary code %d, dictionary holds %d values",
					id, col.Name, r, code, dictLen)
			}
			codes[r] = code
		}
		cat[c] = codes
	}
	return table.MakePartition(s, id, rows, num, cat)
}
