package store

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"

	"ps3/internal/table"
)

// Format version 2: encoded column blocks. A v2 block is, per schema column
// in order:
//
//	[tag u8][payload length u32 LE][payload]
//
// with per-tag payloads:
//
//	tagRawNum   rows × float64 bits LE — the v1 numeric layout
//	tagRawCat   rows × code u32 LE — the v1 categorical layout
//	tagBitPack  [width u8][ceil(rows·width/8) packed bytes] — dictionary
//	            codes at the width of the block's largest code
//	tagRLE      [runs u32 LE][runs × value u32 LE][runs × cumulative end
//	            u32 LE] — runs cover [prevEnd, end), ends strictly
//	            increasing, last end == rows
//	tagFoR      [min float64 bits LE][width u8][packed deltas] — integral
//	            numerics as unsigned deltas from the block minimum
//
// The encoding is chosen per block per column by exact encoded-size
// comparison (see chooseNumeric/chooseCat), so the writer is deterministic:
// the same block bytes always produce the same file bytes. Blocks remain
// CRC-checked as a unit; the per-column payloads are additionally validated
// structurally at decode time (lengths, widths, run monotonicity, dictionary
// range) so that lazy materialization inside table.Partition can never fail.
const (
	formatVersionEncoded = 2

	tagRawNum  = 0
	tagRawCat  = 1
	tagBitPack = 2
	tagRLE     = 3
	tagFoR     = 4

	// colHeaderSize is the per-column [tag][length] prefix.
	colHeaderSize = 1 + 4
)

// maxExactInt is the largest magnitude (2^53) at which float64 represents
// every integer exactly — the applicability bound for frame-of-reference.
const maxExactInt = float64(1 << 53)

// ColHint carries pre-computed column statistics for one block, letting the
// encoding chooser skip scans whose outcome the stats already determine.
// Hints must be exact for the block (true min/max, true distinct count);
// they are only ever used to prune work, never to override the scan, so an
// absent hint yields the identical encoding choice.
type ColHint struct {
	// Min and Max are the column's exact value range within the block
	// (numeric columns), valid when HasRange is set.
	Min, Max float64
	HasRange bool
	// Distinct is the exact number of distinct dictionary codes within the
	// block (categorical columns), valid when HasDistinct is set. It lower-
	// bounds the RLE run count.
	Distinct    int
	HasDistinct bool
}

// appendPacked bit-packs rows values of the given width onto dst. get(r)
// must fit in width bits; width+7 must be <= 64 so each value lands with one
// 8-byte store.
func appendPacked(dst []byte, rows int, width uint8, get func(r int) uint64) []byte {
	n := (rows*int(width) + 7) / 8
	start := len(dst)
	// Work in a buffer padded for whole-word stores, then keep the payload.
	buf := append(dst, make([]byte, n+8)...)
	for r := 0; r < rows; r++ {
		bit := r * int(width)
		at := start + bit>>3
		cur := binary.LittleEndian.Uint64(buf[at:])
		binary.LittleEndian.PutUint64(buf[at:], cur|get(r)<<(bit&7))
	}
	return buf[:start+n]
}

// numPlan is the chooser's decision for a numeric column.
type numPlan struct {
	tag   uint8
	min   float64
	width uint8
}

// chooseNumeric picks the encoding for a numeric column: frame-of-reference
// when every value is an integral float64 within 2^53, the delta range fits
// 53 bits, and the FoR payload is strictly smaller than raw; raw otherwise.
// The hint, when present, can only rule FoR out early (non-integral or
// too-wide range), never rule it in, so hinted and unhinted choices match.
func chooseNumeric(vals []float64, hint ColHint, hintOK bool) numPlan {
	raw := numPlan{tag: tagRawNum}
	rows := len(vals)
	if rows == 0 {
		return raw
	}
	if hintOK && hint.HasRange && !forFeasible(hint.Min, hint.Max, rows) {
		return raw
	}
	min, max := vals[0], vals[0]
	for _, v := range vals {
		if v != math.Trunc(v) || math.Abs(v) > maxExactInt {
			// Covers NaN and infinities: Trunc(NaN) != NaN, Abs(Inf) > 2^53.
			return raw
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if !forFeasible(min, max, rows) {
		return raw
	}
	return numPlan{tag: tagFoR, min: min, width: deltaWidth(min, max)}
}

// forFeasible reports whether a block with the given exact value range could
// profit from frame-of-reference encoding: integral bounds within 2^53, a
// delta range of at most 53 bits, and a packed payload strictly smaller
// than raw.
func forFeasible(min, max float64, rows int) bool {
	if min != math.Trunc(min) || max != math.Trunc(max) {
		return false
	}
	if math.Abs(min) > maxExactInt || math.Abs(max) > maxExactInt {
		return false
	}
	if max < min || max-min > maxExactInt {
		return false
	}
	w := deltaWidth(min, max)
	return forPayloadLen(rows, w) < 8*rows
}

// deltaWidth returns the packed bits per delta for the range [min, max].
func deltaWidth(min, max float64) uint8 {
	return uint8(bits.Len64(uint64(max - min)))
}

// forPayloadLen is the FoR payload size: base + width byte + packed deltas.
func forPayloadLen(rows int, width uint8) int {
	return 8 + 1 + (rows*int(width)+7)/8
}

// catPlan is the chooser's decision for a categorical column.
type catPlan struct {
	tag   uint8
	width uint8 // tagBitPack
	runs  int   // tagRLE
}

// chooseCat picks the encoding for a categorical column by exact payload
// size: raw (4·rows), bit-packed (width byte + packed codes), or RLE
// (4 + 8·runs), smallest wins with ties broken RLE > BitPack > raw. The
// distinct-count hint lower-bounds the run count and can only skip the
// run-counting pass when RLE provably cannot win or tie, so hinted and
// unhinted choices match.
func chooseCat(codes []uint32, hint ColHint, hintOK bool) catPlan {
	rows := len(codes)
	if rows == 0 {
		return catPlan{tag: tagRawCat}
	}
	var maxCode uint32
	for _, c := range codes {
		if c > maxCode {
			maxCode = c
		}
	}
	width := uint8(bits.Len32(maxCode))
	rawLen := 4 * rows
	bpLen := 1 + (rows*int(width)+7)/8

	best := catPlan{tag: tagRawCat}
	bestLen := rawLen
	if bpLen <= bestLen {
		best, bestLen = catPlan{tag: tagBitPack, width: width}, bpLen
	}
	countRuns := true
	if hintOK && hint.HasDistinct && rlePayloadLen(hint.Distinct) > bestLen {
		countRuns = false // runs >= distinct, so RLE cannot reach bestLen
	}
	if countRuns {
		runs := 1
		for r := 1; r < rows; r++ {
			if codes[r] != codes[r-1] {
				runs++
			}
		}
		if rleLen := rlePayloadLen(runs); rleLen <= bestLen {
			best = catPlan{tag: tagRLE, runs: runs}
		}
	}
	return best
}

// rlePayloadLen is the RLE payload size for the given run count.
func rlePayloadLen(runs int) int {
	return 4 + 8*runs
}

// appendColHeader writes one column's [tag][payload length] prefix.
func appendColHeader(dst []byte, tag uint8, payloadLen int) []byte {
	dst = append(dst, tag)
	return binary.LittleEndian.AppendUint32(dst, uint32(payloadLen))
}

// encodeBlockV2 appends partition p in the v2 tagged-column layout,
// consulting hint (when non-nil) to prune encoding-choice scans.
func encodeBlockV2(dst []byte, s *table.Schema, p *table.Partition, hint func(col int) (ColHint, bool)) []byte {
	rows := p.Rows()
	for c, col := range s.Cols {
		var h ColHint
		var hOK bool
		if hint != nil {
			h, hOK = hint(c)
		}
		if col.IsNumeric() {
			vals := p.NumCol(c)
			plan := chooseNumeric(vals, h, hOK)
			if plan.tag == tagRawNum {
				dst = appendColHeader(dst, tagRawNum, 8*rows)
				for _, v := range vals {
					dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
				}
				continue
			}
			dst = appendColHeader(dst, tagFoR, forPayloadLen(rows, plan.width))
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(plan.min))
			dst = append(dst, plan.width)
			min := plan.min
			dst = appendPacked(dst, rows, plan.width, func(r int) uint64 {
				return uint64(vals[r] - min)
			})
			continue
		}
		codes := p.CatCol(c)
		plan := chooseCat(codes, h, hOK)
		switch plan.tag {
		case tagBitPack:
			dst = appendColHeader(dst, tagBitPack, 1+(rows*int(plan.width)+7)/8)
			dst = append(dst, plan.width)
			dst = appendPacked(dst, rows, plan.width, func(r int) uint64 {
				return uint64(codes[r])
			})
		case tagRLE:
			dst = appendColHeader(dst, tagRLE, rlePayloadLen(plan.runs))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(plan.runs))
			for r := 0; r < rows; r++ {
				if r == 0 || codes[r] != codes[r-1] {
					dst = binary.LittleEndian.AppendUint32(dst, codes[r])
				}
			}
			for r := 1; r <= rows; r++ {
				if r == rows || codes[r] != codes[r-1] {
					dst = binary.LittleEndian.AppendUint32(dst, uint32(r))
				}
			}
		default:
			dst = appendColHeader(dst, tagRawCat, 4*rows)
			for _, code := range codes {
				dst = binary.LittleEndian.AppendUint32(dst, code)
			}
		}
	}
	return dst
}

// decodeBlockV2 parses one v2 block into a partition, treating the bytes as
// untrusted input: every payload length, pack width, run structure and
// dictionary code is validated here so that the partition's lazy
// materialization is infallible. Compressible columns stay encoded inside
// the partition; ds (shared per reader) is charged if they are later
// materialized.
func decodeBlockV2(data []byte, s *table.Schema, dictLen uint32, id, rows int, ds *table.DecodeStats) (*table.Partition, error) {
	num := make([][]float64, s.NumCols())
	cat := make([][]uint32, s.NumCols())
	enc := make([]*table.EncodedCol, s.NumCols())
	for c, col := range s.Cols {
		if len(data) < colHeaderSize {
			return nil, fmt.Errorf("store: partition %d column %q: block truncated at column header", id, col.Name)
		}
		tag := data[0]
		plen := int64(binary.LittleEndian.Uint32(data[1:]))
		data = data[colHeaderSize:]
		if plen > int64(len(data)) {
			return nil, fmt.Errorf("store: partition %d column %q: payload of %d bytes overruns block (%d left)",
				id, col.Name, plen, len(data))
		}
		payload := data[:plen]
		data = data[plen:]

		e, decNum, decCat, err := decodeColumn(tag, payload, col, dictLen, rows)
		if err != nil {
			return nil, fmt.Errorf("store: partition %d column %q: %w", id, col.Name, err)
		}
		enc[c], num[c], cat[c] = e, decNum, decCat
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("store: partition %d: %d trailing bytes after last column", id, len(data))
	}
	return table.MakeEncodedPartition(s, id, rows, num, cat, enc, ds)
}

// decodeColumn validates and decodes one tagged column payload. Raw tags
// decode to slices; packed tags return a validated EncodedCol.
func decodeColumn(tag uint8, payload []byte, col table.Column, dictLen uint32, rows int) (*table.EncodedCol, []float64, []uint32, error) {
	switch tag {
	case tagRawNum:
		if !col.IsNumeric() {
			return nil, nil, nil, fmt.Errorf("numeric payload on a %s column", col.Kind)
		}
		if int64(len(payload)) != 8*int64(rows) {
			return nil, nil, nil, fmt.Errorf("raw numeric payload is %d bytes, %d rows need %d", len(payload), rows, 8*rows)
		}
		vals := make([]float64, rows)
		for r := range vals {
			vals[r] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*r:]))
		}
		return nil, vals, nil, nil

	case tagRawCat:
		if col.IsNumeric() {
			return nil, nil, nil, fmt.Errorf("categorical payload on a %s column", col.Kind)
		}
		if int64(len(payload)) != 4*int64(rows) {
			return nil, nil, nil, fmt.Errorf("raw categorical payload is %d bytes, %d rows need %d", len(payload), rows, 4*rows)
		}
		codes := make([]uint32, rows)
		for r := range codes {
			code := binary.LittleEndian.Uint32(payload[4*r:])
			if code >= dictLen {
				return nil, nil, nil, fmt.Errorf("row %d has dictionary code %d, dictionary holds %d values", r, code, dictLen)
			}
			codes[r] = code
		}
		return nil, nil, codes, nil

	case tagBitPack:
		if col.IsNumeric() {
			return nil, nil, nil, fmt.Errorf("bit-packed codes on a %s column", col.Kind)
		}
		if len(payload) < 1 {
			return nil, nil, nil, fmt.Errorf("bit-packed payload missing width byte")
		}
		e, err := table.NewBitPackedCol(rows, payload[0], payload[1:])
		if err != nil {
			return nil, nil, nil, err
		}
		if max := e.MaxCode(); rows > 0 && max >= dictLen {
			return nil, nil, nil, fmt.Errorf("packed dictionary code %d out of range, dictionary holds %d values", max, dictLen)
		}
		return e, nil, nil, nil

	case tagRLE:
		if col.IsNumeric() {
			return nil, nil, nil, fmt.Errorf("RLE codes on a %s column", col.Kind)
		}
		if len(payload) < 4 {
			return nil, nil, nil, fmt.Errorf("RLE payload missing run count")
		}
		runs := int64(binary.LittleEndian.Uint32(payload))
		if want := 4 + 8*runs; int64(len(payload)) != want {
			return nil, nil, nil, fmt.Errorf("RLE payload is %d bytes, %d runs need %d", len(payload), runs, want)
		}
		vals := make([]uint32, runs)
		ends := make([]int32, runs)
		for i := range vals {
			vals[i] = binary.LittleEndian.Uint32(payload[4+4*i:])
		}
		endBase := 4 + 4*runs
		for i := range ends {
			end := binary.LittleEndian.Uint32(payload[endBase+4*int64(i):])
			if end > uint32(rows) {
				return nil, nil, nil, fmt.Errorf("RLE run %d ends at %d, column has %d rows", i, end, rows)
			}
			ends[i] = int32(end)
		}
		e, err := table.NewRLECol(rows, vals, ends)
		if err != nil {
			return nil, nil, nil, err
		}
		if max := e.MaxCode(); rows > 0 && max >= dictLen {
			return nil, nil, nil, fmt.Errorf("RLE dictionary code %d out of range, dictionary holds %d values", max, dictLen)
		}
		return e, nil, nil, nil

	case tagFoR:
		if !col.IsNumeric() {
			return nil, nil, nil, fmt.Errorf("frame-of-reference payload on a %s column", col.Kind)
		}
		if len(payload) < 9 {
			return nil, nil, nil, fmt.Errorf("FoR payload missing base and width")
		}
		min := math.Float64frombits(binary.LittleEndian.Uint64(payload))
		e, err := table.NewFoRCol(rows, min, payload[8], payload[9:])
		if err != nil {
			return nil, nil, nil, err
		}
		return e, nil, nil, nil

	default:
		return nil, nil, nil, fmt.Errorf("unknown column encoding tag %d", tag)
	}
}
