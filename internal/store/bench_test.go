package store

import (
	"path/filepath"
	"testing"

	"ps3/internal/query"
	"ps3/internal/table"
)

// benchStore writes a ~4 MB fixture (64 partitions) to a temp file and
// opens it with the given cache budget.
func benchStore(b *testing.B, cacheBytes int64) (*Reader, *table.Table) {
	b.Helper()
	tbl := buildTable(b, 64*3200, 3200)
	path := filepath.Join(b.TempDir(), "bench.ps3")
	if _, err := WriteFile(path, tbl); err != nil {
		b.Fatal(err)
	}
	r, err := Open(path, Options{CacheBytes: cacheBytes})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { r.Close() })
	return r, tbl
}

// BenchmarkStoreColdScan measures faulting every partition in from disk:
// the cache holds one partition, so each read pays ReadAt + CRC + decode.
func BenchmarkStoreColdScan(b *testing.B) {
	r, tbl := benchStore(b, int64(tbl0Size(b)))
	b.SetBytes(int64(r.TotalBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for pi := 0; pi < r.NumParts(); pi++ {
			if _, err := r.Read(pi); err != nil {
				b.Fatal(err)
			}
		}
	}
	_ = tbl
}

// tbl0Size returns the fixture's per-partition byte size without keeping a
// second table alive in the benchmark.
func tbl0Size(b *testing.B) int {
	b.Helper()
	return 3200 * (2*8 + 4)
}

// BenchmarkStoreWarmScan is the same scan with an unbounded cache: after
// the first lap every read is a cache hit, isolating the cache overhead.
func BenchmarkStoreWarmScan(b *testing.B) {
	r, _ := benchStore(b, -1)
	for pi := 0; pi < r.NumParts(); pi++ { // warm the cache
		if _, err := r.Read(pi); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(r.TotalBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for pi := 0; pi < r.NumParts(); pi++ {
			if _, err := r.Read(pi); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkStorePagedEstimate runs a weighted 6%-of-partitions scan — the
// serving shape — against a cache sized for just the picked set, far below
// TotalBytes: steady-state serving cost when the picker's choices fit the
// budget.
func BenchmarkStorePagedEstimate(b *testing.B) {
	partSize := int64(tbl0Size(b))
	sel := []query.WeightedPartition{
		{Part: 3, Weight: 16}, {Part: 17, Weight: 16}, {Part: 31, Weight: 16}, {Part: 60, Weight: 16},
	}
	r, _ := benchStore(b, int64(len(sel))*partSize)
	q := &query.Query{
		Aggs:    []query.Aggregate{{Kind: query.Sum, Expr: query.Col("x")}, {Kind: query.Count}},
		Pred:    &query.Clause{Col: "x", Op: query.OpGt, Num: 50},
		GroupBy: []string{"cat"},
	}
	c, err := query.Compile(q, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Estimate(r, sel); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := r.CacheStats(); st.LoadedBytes > int64(len(sel))*partSize {
		b.Fatalf("paged estimate loaded %d bytes, picked set is %d", st.LoadedBytes, int64(len(sel))*partSize)
	}
}
