package store

import (
	"errors"
	"fmt"
	"io"

	"ps3/internal/fault"
	"ps3/internal/table"
)

// ErrShortFile reports a table data file too short to hold either format's
// header: an empty or truncated file, not a decodable table in any
// encoding. Callers that probe for optional files — ingest recovery
// deciding whether a segment exists yet — match it with errors.Is to
// distinguish "nothing written" from genuine corruption inside a
// recognized format.
var ErrShortFile = errors.New("file is shorter than any table header")

// Format identifies a table data file's on-disk encoding.
type Format string

const (
	// FormatStore is the paged block format this package writes.
	FormatStore Format = "store"
	// FormatGob is the legacy fully-resident gob encoding
	// (table.Table.WriteTo), kept readable for old files.
	FormatGob Format = "gob"
)

// OpenedTable is a table data file opened by OpenTableFile: one
// PartitionSource regardless of which format was on disk, plus the
// format-specific handle for callers that need it.
type OpenedTable struct {
	// Source serves the data: the Reader for a store file, the resident
	// Table for a legacy gob file.
	Source table.PartitionSource
	// Reader is non-nil when the file is in the paged store format.
	Reader *Reader
	// Table is non-nil when the file was legacy gob and is fully resident.
	Table *table.Table
	// Format records which encoding was sniffed.
	Format Format
}

// Close releases the underlying file handle of a paged open; resident
// opens hold no handle.
func (o *OpenedTable) Close() error {
	if o.Reader != nil {
		return o.Reader.Close()
	}
	return nil
}

// Materialize returns the data as a fully resident table regardless of
// format — the bridge to offline workflows (training, relayout) that scan
// everything repeatedly.
func (o *OpenedTable) Materialize() (*table.Table, error) {
	if o.Table != nil {
		return o.Table, nil
	}
	return o.Reader.Materialize()
}

// OpenTableFile opens a table data file of either format, sniffing the
// store header magic versus the legacy gob stream. It is the one open path
// shared by ps3gen, ps3train and ps3serve: old files keep working, new
// files open paged. opts applies only to the paged format.
func OpenTableFile(path string, opts Options) (*OpenedTable, error) {
	return OpenTableFileFS(fault.OS, path, opts)
}

// OpenTableFileFS is OpenTableFile over an explicit filesystem seam
// (ingest recovery reopens flushed segments through its injectable FS).
func OpenTableFileFS(fsys fault.FS, path string, opts Options) (*OpenedTable, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	var magic [len(headerMagic)]byte
	_, err = io.ReadFull(f, magic[:])
	switch {
	case err == io.EOF || err == io.ErrUnexpectedEOF:
		// Shorter than the magic: there is nothing to sniff, in either
		// format. Report the typed error instead of falling through to a
		// generic gob decode failure.
		f.Close()
		return nil, fmt.Errorf("store: open %s: %w", path, ErrShortFile)
	case err != nil:
		f.Close()
		return nil, fmt.Errorf("store: sniff %s: %w", path, err)
	}

	if string(magic[:]) == headerMagic {
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		r, err := NewReaderAt(f, st.Size(), opts)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("store: open %s: %w", path, err)
		}
		r.closer = f
		return &OpenedTable{Source: r, Reader: r, Format: FormatStore}, nil
	}

	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	t, err := table.ReadTable(f)
	closeErr := f.Close()
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", path, err)
	}
	if closeErr != nil {
		return nil, closeErr
	}
	return &OpenedTable{Source: t, Table: t, Format: FormatGob}, nil
}
