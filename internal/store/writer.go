package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"ps3/internal/table"
)

// Write streams t to w in the paged store format and returns the number of
// bytes written. The stream is written strictly forward — header, one block
// per partition, footer, trailer — so w needs no seeking.
func Write(w io.Writer, t *table.Table) (int64, error) {
	cw := &countingWriter{w: w}

	var header [headerSize]byte
	copy(header[:], headerMagic)
	binary.LittleEndian.PutUint32(header[len(headerMagic):], formatVersion)
	if _, err := cw.Write(header[:]); err != nil {
		return cw.n, fmt.Errorf("store: write header: %w", err)
	}

	footer := footerWire{
		Cols:     t.Schema.Cols,
		DictVals: t.Dict.Values(),
		Blocks:   make([]blockWire, 0, len(t.Parts)),
	}
	var buf []byte
	for _, p := range t.Parts {
		buf = encodeBlock(buf[:0], t.Schema, p)
		footer.Blocks = append(footer.Blocks, blockWire{
			Offset: cw.n,
			Length: int64(len(buf)),
			Rows:   int64(p.Rows()),
			CRC:    crc32.Checksum(buf, crcTable),
		})
		if _, err := cw.Write(buf); err != nil {
			return cw.n, fmt.Errorf("store: write partition %d: %w", p.ID, err)
		}
	}

	var fbuf bytes.Buffer
	if err := gob.NewEncoder(&fbuf).Encode(&footer); err != nil {
		return cw.n, fmt.Errorf("store: encode footer: %w", err)
	}
	if _, err := cw.Write(fbuf.Bytes()); err != nil {
		return cw.n, fmt.Errorf("store: write footer: %w", err)
	}

	var trailer [trailerSize]byte
	binary.LittleEndian.PutUint64(trailer[:8], uint64(fbuf.Len()))
	binary.LittleEndian.PutUint32(trailer[8:12], crc32.Checksum(fbuf.Bytes(), crcTable))
	copy(trailer[12:], trailerMagic)
	if _, err := cw.Write(trailer[:]); err != nil {
		return cw.n, fmt.Errorf("store: write trailer: %w", err)
	}
	return cw.n, nil
}

// WriteFile writes t to path in the paged store format.
func WriteFile(path string, t *table.Table) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	n, err := Write(f, t)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return n, err
}

// countingWriter tracks bytes written.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
