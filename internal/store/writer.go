package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"

	"ps3/internal/fault"
	"ps3/internal/table"
)

// WriteOptions configures the store writer.
type WriteOptions struct {
	// Raw writes the frozen v1 layout: fixed-width column data, no
	// per-column encoding. The v1 writer is byte-for-byte the original
	// format and serves as the bit-identity reference for the encoded
	// path.
	Raw bool
	// Hints, when non-nil, supplies pre-computed per-partition column
	// statistics (from internal/stats) to the encoding chooser so it can
	// skip scans. Hints must be exact for the block; they prune work but
	// never change the chosen encoding. part is the partition's index in
	// t.Parts, col the schema column index.
	Hints func(part, col int) (ColHint, bool)
}

// Write streams t to w in the paged store format (encoded column blocks)
// and returns the number of bytes written. The stream is written strictly
// forward — header, one block per partition, footer, trailer — so w needs
// no seeking.
func Write(w io.Writer, t *table.Table) (int64, error) {
	return WriteWith(w, t, WriteOptions{})
}

// WriteWith is Write with explicit options.
func WriteWith(w io.Writer, t *table.Table, opts WriteOptions) (int64, error) {
	cw := &countingWriter{w: w}

	version := uint32(formatVersionEncoded)
	if opts.Raw {
		version = formatVersion
	}
	var header [headerSize]byte
	copy(header[:], headerMagic)
	binary.LittleEndian.PutUint32(header[len(headerMagic):], version)
	if _, err := cw.Write(header[:]); err != nil {
		return cw.n, fmt.Errorf("store: write header: %w", err)
	}

	footer := footerWire{
		Cols:     t.Schema.Cols,
		DictVals: t.Dict.Values(),
		Blocks:   make([]blockWire, 0, len(t.Parts)),
	}
	var buf []byte
	for pi, p := range t.Parts {
		if opts.Raw {
			buf = encodeBlock(buf[:0], t.Schema, p)
		} else {
			var hint func(col int) (ColHint, bool)
			if opts.Hints != nil {
				part := pi
				hint = func(col int) (ColHint, bool) { return opts.Hints(part, col) }
			}
			buf = encodeBlockV2(buf[:0], t.Schema, p, hint)
		}
		footer.Blocks = append(footer.Blocks, blockWire{
			Offset: cw.n,
			Length: int64(len(buf)),
			Rows:   int64(p.Rows()),
			CRC:    crc32.Checksum(buf, crcTable),
		})
		if _, err := cw.Write(buf); err != nil {
			return cw.n, fmt.Errorf("store: write partition %d: %w", p.ID, err)
		}
	}

	var fbuf bytes.Buffer
	if err := gob.NewEncoder(&fbuf).Encode(&footer); err != nil {
		return cw.n, fmt.Errorf("store: encode footer: %w", err)
	}
	if _, err := cw.Write(fbuf.Bytes()); err != nil {
		return cw.n, fmt.Errorf("store: write footer: %w", err)
	}

	var trailer [trailerSize]byte
	binary.LittleEndian.PutUint64(trailer[:8], uint64(fbuf.Len()))
	binary.LittleEndian.PutUint32(trailer[8:12], crc32.Checksum(fbuf.Bytes(), crcTable))
	copy(trailer[12:], trailerMagic)
	if _, err := cw.Write(trailer[:]); err != nil {
		return cw.n, fmt.Errorf("store: write trailer: %w", err)
	}
	return cw.n, nil
}

// WriteFile writes t to path in the paged store format.
func WriteFile(path string, t *table.Table) (int64, error) {
	return WriteFileWith(path, t, WriteOptions{})
}

// WriteFileWith is WriteFile with explicit options.
func WriteFileWith(path string, t *table.Table, opts WriteOptions) (int64, error) {
	return WriteFileFS(fault.OS, path, t, opts)
}

// WriteFileFS is WriteFileWith over an explicit filesystem seam, so chaos
// tests can fail or tear the writes.
func WriteFileFS(fsys fault.FS, path string, t *table.Table, opts WriteOptions) (int64, error) {
	f, err := fsys.Create(path)
	if err != nil {
		return 0, err
	}
	n, err := WriteWith(f, t, opts)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return n, err
}

// countingWriter tracks bytes written.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
