package store

import (
	"bytes"
	"encoding/binary"
	"testing"

	"ps3/internal/table"
)

// FuzzOpenStore drives the footer/index decode path — the part of the
// format that parses fully untrusted input — plus block reads and full lazy
// materialization on whatever opens successfully. Any input may fail with an
// error; none may panic. Seeds cover both format versions and, for v2, the
// structural hazards of the per-column payloads: truncated packs,
// out-of-range dictionary codes and RLE overruns (each with a fixed-up block
// CRC so the corruption reaches decode instead of the checksum).
func FuzzOpenStore(f *testing.F) {
	valid := writeStoreRaw(f, buildTable(f, 90, 30))
	f.Add(valid)
	empty := &table.Table{
		Schema: table.MustSchema(table.Column{Name: "x", Kind: table.Numeric}),
		Dict:   table.NewDict(),
	}
	f.Add(writeStore(f, empty))
	f.Add([]byte{})
	f.Add([]byte(headerMagic))
	truncated := append([]byte(nil), valid[:len(valid)/2]...)
	f.Add(append(truncated, valid[len(valid)-trailerSize:]...))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-trailerSize-10] ^= 0x41
	f.Add(flipped)

	// v2 seeds: a valid encoded store with raw, FoR, bit-packed and RLE
	// columns, plus targeted corruptions of each encoding's payload.
	encTbl := encFixture(f, 320, 100, 11)
	encValid := writeStore(f, encTbl)
	f.Add(encValid)
	numCols := encTbl.Schema.NumCols()
	for _, mutate := range []func(block []byte){
		func(block []byte) { // unknown tag
			block[v2ColOffsets(f, block, numCols)[0]] = 99
		},
		func(block []byte) { // payload length overruns the block
			off := v2ColOffsets(f, block, numCols)[0]
			binary.LittleEndian.PutUint32(block[off+1:], 1<<30)
		},
		func(block []byte) { // truncated FoR pack (declared width too wide)
			off := v2ColOffsets(f, block, numCols)[1]
			block[off+colHeaderSize+8]++
		},
		func(block []byte) { // truncated bit pack
			off := v2ColOffsets(f, block, numCols)[2]
			block[off+colHeaderSize]++
		},
		func(block []byte) { // out-of-range packed dictionary codes
			off := v2ColOffsets(f, block, numCols)[2]
			plen := int(binary.LittleEndian.Uint32(block[off+1:]))
			for i := off + colHeaderSize + 1; i < off+colHeaderSize+plen; i++ {
				block[i] = 0xff
			}
		},
		func(block []byte) { // RLE value out of dictionary range
			off := v2ColOffsets(f, block, numCols)[3]
			binary.LittleEndian.PutUint32(block[off+colHeaderSize+4:], 1<<31)
		},
		func(block []byte) { // RLE run overruns the row count
			off := v2ColOffsets(f, block, numCols)[3]
			runs := int(binary.LittleEndian.Uint32(block[off+colHeaderSize:]))
			lastEnd := off + colHeaderSize + 4 + 4*runs + 4*(runs-1)
			binary.LittleEndian.PutUint32(block[lastEnd:], 1<<20)
		},
		func(block []byte) { // RLE run count inconsistent with payload size
			off := v2ColOffsets(f, block, numCols)[3]
			binary.LittleEndian.PutUint32(block[off+colHeaderSize:], 1<<24)
		},
	} {
		f.Add(corruptBlock(f, encValid, 1, mutate))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReaderAt(bytes.NewReader(data), int64(len(data)), Options{CacheBytes: 1 << 20})
		if err != nil {
			return
		}
		_ = r.NumRows()
		_ = r.TotalBytes()
		_ = r.EncodingStats()
		s := r.TableSchema()
		n := r.NumParts()
		if n > 64 {
			n = 64
		}
		for i := 0; i < n; i++ {
			p, err := r.Read(i)
			if err != nil {
				continue
			}
			// Force lazy materialization of every column: decode of a block
			// that passed validation must never fail or read out of bounds,
			// and every produced code must resolve against the dictionary.
			for c := range s.Cols {
				if vals := p.NumCol(c); len(vals) > 0 {
					_ = vals[len(vals)-1]
				}
				if codes := p.CatCol(c); len(codes) > 0 {
					_ = r.TableDict().Value(codes[0])
					_ = r.TableDict().Value(codes[len(codes)-1])
				}
			}
		}
	})
}
