package store

import (
	"bytes"
	"testing"

	"ps3/internal/table"
)

// FuzzOpenStore drives the footer/index decode path — the part of the
// format that parses fully untrusted input — plus block reads on whatever
// opens successfully. Any input may fail with an error; none may panic.
func FuzzOpenStore(f *testing.F) {
	valid := writeStore(f, buildTable(f, 90, 30))
	f.Add(valid)
	empty := &table.Table{
		Schema: table.MustSchema(table.Column{Name: "x", Kind: table.Numeric}),
		Dict:   table.NewDict(),
	}
	f.Add(writeStore(f, empty))
	f.Add([]byte{})
	f.Add([]byte(headerMagic))
	truncated := append([]byte(nil), valid[:len(valid)/2]...)
	f.Add(append(truncated, valid[len(valid)-trailerSize:]...))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-trailerSize-10] ^= 0x41
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReaderAt(bytes.NewReader(data), int64(len(data)), Options{CacheBytes: 1 << 20})
		if err != nil {
			return
		}
		_ = r.NumRows()
		_ = r.TotalBytes()
		n := r.NumParts()
		if n > 64 {
			n = 64
		}
		for i := 0; i < n; i++ {
			p, err := r.Read(i)
			if err != nil {
				continue
			}
			for _, codes := range p.Cat {
				if len(codes) > 0 {
					_ = r.TableDict().Value(codes[0])
				}
			}
		}
	})
}
