package store

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"hash/crc32"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"ps3/internal/exec"
	"ps3/internal/query"
	"ps3/internal/stats"
	"ps3/internal/table"
)

var updateGolden = flag.Bool("update-golden", false, "regenerate the checked-in golden store files")

// encFixture builds a table that makes the chooser exercise every encoding:
// "f" is noisy fractional floats (stays raw), "n" is small integers (FoR),
// "cat" is a low-cardinality shuffled categorical (bit-packed), and "run" is
// a clustered categorical (RLE).
func encFixture(t testing.TB, rows, rowsPerPart int, seed int64) *table.Table {
	t.Helper()
	s := table.MustSchema(
		table.Column{Name: "f", Kind: table.Numeric},
		table.Column{Name: "n", Kind: table.Numeric},
		table.Column{Name: "cat", Kind: table.Categorical},
		table.Column{Name: "run", Kind: table.Categorical},
	)
	b, err := table.NewBuilder(s, rowsPerPart)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	cats := []string{"c0", "c1", "c2", "c3", "c4", "c5", "c6", "c7", "c8"}
	runs := []string{"r0", "r1", "r2"}
	for i := 0; i < rows; i++ {
		num := []float64{
			rng.NormFloat64()*1e3 + 0.5, // fractional: defeats FoR
			float64(rng.Intn(4096)),     // integral, 12-bit range: FoR
			0, 0,
		}
		cat := []string{"", "", cats[rng.Intn(len(cats))], runs[(i/64)%len(runs)]}
		if err := b.Append(num, cat); err != nil {
			t.Fatal(err)
		}
	}
	return b.Finish()
}

// materialize loads every partition of r as a table, keeping encoded columns
// encoded (Materialize preserves the partitions the reader decodes).
func materialize(t testing.TB, r *Reader) *table.Table {
	t.Helper()
	tbl, err := r.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// TestEncFixtureCoversAllEncodings guards the equivalence suite against
// becoming vacuous: the fixture must actually produce raw, FoR, bit-packed
// and RLE columns, or a chooser regression could silently fall back to raw
// everywhere and every "equivalence" below would be trivially true.
func TestEncFixtureCoversAllEncodings(t *testing.T) {
	// 100-row partitions straddle the 64-row run boundaries, so the run
	// column has 2-3 runs per partition and RLE beats bit-packing; with
	// run-aligned partitions every block would be constant and bit-packing's
	// 1-byte-width representation would win instead.
	tbl := encFixture(t, 1600, 100, 17)
	r := openStore(t, writeStore(t, tbl), -1)
	s := r.TableSchema()
	kinds := make(map[string]table.EncKind)
	for pi := 0; pi < r.NumParts(); pi++ {
		p, err := r.loadBlock(pi)
		if err != nil {
			t.Fatal(err)
		}
		for c, col := range s.Cols {
			if e := p.EncCol(c); e != nil {
				kinds[col.Name] = e.Kind
			}
		}
	}
	if _, ok := kinds["f"]; ok {
		t.Errorf("fractional column %q should stay raw, got %v", "f", kinds["f"])
	}
	if kinds["n"] != table.EncFoR {
		t.Errorf("column n encoded as %v, want for", kinds["n"])
	}
	if kinds["cat"] != table.EncBitPack {
		t.Errorf("column cat encoded as %v, want bitpack", kinds["cat"])
	}
	if kinds["run"] != table.EncRLE {
		t.Errorf("column run encoded as %v, want rle", kinds["run"])
	}
}

// handQueries covers every predicate shape the encoded kernels dispatch on:
// all six comparison ops against the FoR column (including non-representable
// and out-of-frame constants), equality/IN/negation on the bit-packed and
// RLE columns, and combinations that force partial decode.
func handQueries() []*query.Query {
	count := []query.Aggregate{{Kind: query.Count}}
	sumF := []query.Aggregate{{Kind: query.Sum, Expr: query.Col("f")}}
	qs := []*query.Query{
		{Aggs: sumF}, // no predicate at all
		{Aggs: count, Pred: &query.Clause{Col: "n", Op: query.OpEq, Num: 1024}},
		{Aggs: count, Pred: &query.Clause{Col: "n", Op: query.OpNe, Num: 7}},
		{Aggs: count, Pred: &query.Clause{Col: "n", Op: query.OpLt, Num: 100}},
		{Aggs: count, Pred: &query.Clause{Col: "n", Op: query.OpLe, Num: 99.5}},
		{Aggs: count, Pred: &query.Clause{Col: "n", Op: query.OpGt, Num: 4000}},
		{Aggs: count, Pred: &query.Clause{Col: "n", Op: query.OpGe, Num: -3}},
		// Constants the frame cannot represent: fractional, negative, huge.
		{Aggs: count, Pred: &query.Clause{Col: "n", Op: query.OpEq, Num: 10.5}},
		{Aggs: count, Pred: &query.Clause{Col: "n", Op: query.OpEq, Num: -2}},
		{Aggs: count, Pred: &query.Clause{Col: "n", Op: query.OpEq, Num: 1e18}},
		{Aggs: count, Pred: &query.Clause{Col: "cat", Op: query.OpEq, Strs: []string{"c3"}}},
		{Aggs: count, Pred: &query.Clause{Col: "cat", Op: query.OpNe, Strs: []string{"c0"}}},
		{Aggs: count, Pred: &query.Clause{Col: "cat", Op: query.OpIn, Strs: []string{"c1", "c5", "c8"}}},
		{Aggs: count, Pred: &query.Clause{Col: "cat", Op: query.OpEq, Strs: []string{"absent"}}},
		{Aggs: count, Pred: &query.Clause{Col: "run", Op: query.OpEq, Strs: []string{"r1"}}},
		{Aggs: count, Pred: &query.Clause{Col: "run", Op: query.OpIn, Strs: []string{"r0", "r2"}}},
		{Aggs: count, Pred: &query.Not{Child: &query.Clause{Col: "run", Op: query.OpEq, Strs: []string{"r2"}}}},
		// Conjunctions and disjunctions that mix encodings, plus aggregates
		// that force the raw column (and only it) to materialize.
		{
			Aggs: []query.Aggregate{{Kind: query.Sum, Expr: query.Col("f").Add(query.Col("n"))}},
			Pred: query.NewAnd(
				&query.Clause{Col: "n", Op: query.OpGe, Num: 1000},
				&query.Clause{Col: "cat", Op: query.OpIn, Strs: []string{"c2", "c4"}},
			),
		},
		{
			Aggs: []query.Aggregate{{Kind: query.Avg, Expr: query.Col("n")}, {Kind: query.Count}},
			Pred: query.NewOr(
				&query.Clause{Col: "f", Op: query.OpLt, Num: 0},
				&query.Clause{Col: "run", Op: query.OpEq, Strs: []string{"r0"}},
			),
			GroupBy: []string{"cat"},
		},
		{
			Aggs: []query.Aggregate{
				{Kind: query.Sum, Expr: query.Col("f")},
				{Kind: query.Count, Filter: &query.Clause{Col: "cat", Op: query.OpEq, Strs: []string{"c6"}}},
			},
			Pred:    &query.Clause{Col: "n", Op: query.OpLt, Num: 2048},
			GroupBy: []string{"run"},
		},
	}
	return qs
}

func requireSameAnswer(t *testing.T, label string, want, got *query.Answer) {
	t.Helper()
	if len(got.Groups) != len(want.Groups) {
		t.Fatalf("%s: %d groups, want %d", label, len(got.Groups), len(want.Groups))
	}
	for g, wv := range want.Groups {
		gv, ok := got.Groups[g]
		if !ok {
			t.Fatalf("%s: missing group %x", label, g)
		}
		for j := range wv {
			if math.Float64bits(gv[j]) != math.Float64bits(wv[j]) {
				t.Fatalf("%s: group %x comp %d: %v (bits %x) != %v (bits %x)",
					label, g, j, gv[j], math.Float64bits(gv[j]), wv[j], math.Float64bits(wv[j]))
			}
		}
	}
}

// TestEncodedVsRawQueryEquivalence is the acceptance suite for the encoded
// kernels: the same table written raw (v1) and encoded (v2) must produce
// bit-identical Estimate, GroundTruth and Selectivity results for hand-
// written and generator-sampled queries, across parallelism levels, with
// both readers thrashing their caches so decode happens mid-scan. Runs
// under -race via `make race`.
func TestEncodedVsRawQueryEquivalence(t *testing.T) {
	tbl := encFixture(t, 1600, 100, 17)
	rawData := writeStoreRaw(t, tbl)
	encData := writeStore(t, tbl)
	rawSize := encodedPartSize(t, openStore(t, rawData, -1), 0)
	encSize := encodedPartSize(t, openStore(t, encData, -1), 0)
	rawR := openStore(t, rawData, 3*rawSize) // thrash: evictions mid-scan
	encR := openStore(t, encData, 3*encSize)
	rawTbl := materialize(t, rawR) // decoded partitions: the frozen reference
	encTbl := materialize(t, encR) // encoded partitions: encoded kernels run

	queries := handQueries()
	gen, err := query.NewGenerator(query.Workload{
		GroupableCols: []string{"cat", "run"},
		PredicateCols: []string{"f", "n", "cat", "run"},
		AggCols:       []string{"f", "n"},
	}, tbl, 99)
	if err != nil {
		t.Fatal(err)
	}
	queries = append(queries, gen.SampleN(25)...)

	sel := []query.WeightedPartition{
		{Part: 0, Weight: 2.5}, {Part: 3, Weight: 1.25}, {Part: 7, Weight: 3},
		{Part: 9, Weight: 0.5}, {Part: 15, Weight: 7},
	}
	levels := []int{1, 3, runtime.GOMAXPROCS(0)}
	base := query.EncodedKernelEvals()
	for qi, q := range queries {
		cRaw, err := query.Compile(q, rawR)
		if err != nil {
			t.Fatalf("query %d (%s): %v", qi, q, err)
		}
		cEnc, err := query.Compile(q, encR)
		if err != nil {
			t.Fatalf("query %d (%s): %v", qi, q, err)
		}
		if sv, ev := cRaw.Selectivity(rawTbl), cEnc.Selectivity(encTbl); math.Float64bits(sv) != math.Float64bits(ev) {
			t.Fatalf("query %d (%s): selectivity %v raw vs %v encoded", qi, q, sv, ev)
		}
		for _, par := range levels {
			label := fmt.Sprintf("query %d (%s) par %d", qi, q, par)
			cRaw.Exec = exec.Options{Parallelism: par}
			cEnc.Exec = exec.Options{Parallelism: par}
			want, err := cRaw.Estimate(rawR, sel)
			if err != nil {
				t.Fatal(err)
			}
			got, err := cEnc.Estimate(encR, sel)
			if err != nil {
				t.Fatal(err)
			}
			requireSameAnswer(t, label+" estimate", want, got)

			wantTotal, wantPer := cRaw.GroundTruth(rawTbl)
			gotTotal, gotPer := cEnc.GroundTruth(encTbl)
			requireSameAnswer(t, label+" ground truth", wantTotal, gotTotal)
			if len(wantPer) != len(gotPer) {
				t.Fatalf("%s: %d per-partition answers, want %d", label, len(gotPer), len(wantPer))
			}
			for pi := range wantPer {
				requireSameAnswer(t, fmt.Sprintf("%s part %d", label, pi), wantPer[pi], gotPer[pi])
			}
		}
	}
	if query.EncodedKernelEvals() == base {
		t.Fatal("equivalence suite never dispatched an encoded kernel — the encoded path went untested")
	}
}

// TestCatPredicateEvaluatesWithoutDecode is the no-decode proof from the
// acceptance contract: a dictionary-equality (and IN) predicate under a
// Count aggregate must answer correctly from the encoded representation with
// zero lazy column materializations, observed via the reader's decode
// counter; the encoded-kernel counter must advance.
func TestCatPredicateEvaluatesWithoutDecode(t *testing.T) {
	tbl := encFixture(t, 800, 100, 5)
	r := openStore(t, writeStore(t, tbl), -1)
	sel := make([]query.WeightedPartition, tbl.NumParts())
	for i := range sel {
		sel[i] = query.WeightedPartition{Part: i, Weight: 1}
	}
	for _, q := range []*query.Query{
		{Aggs: []query.Aggregate{{Kind: query.Count}},
			Pred: &query.Clause{Col: "cat", Op: query.OpEq, Strs: []string{"c3"}}},
		{Aggs: []query.Aggregate{{Kind: query.Count}},
			Pred: &query.Clause{Col: "run", Op: query.OpIn, Strs: []string{"r0", "r2"}}},
	} {
		base := query.EncodedKernelEvals()
		c, err := query.Compile(q, r)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Estimate(r, sel)
		if err != nil {
			t.Fatal(err)
		}
		// With unit weights the estimate over all partitions is the exact
		// count; compute the expectation from the resident original.
		cr, err := query.Compile(q, tbl)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := cr.GroundTruth(tbl)
		requireSameAnswer(t, q.String(), want, got)
		if evals := query.EncodedKernelEvals(); evals == base {
			t.Fatalf("%s: encoded kernel counter did not advance", q)
		}
		if es := r.EncodingStats(); es.LazyDecodeCols != 0 {
			t.Fatalf("%s: %d columns were materialized; the predicate must run on encoded data", q, es.LazyDecodeCols)
		}
	}
	// Control: touching a numeric aggregate on the FoR column does decode,
	// and the same counter sees it — proving the zero above is meaningful.
	q := &query.Query{Aggs: []query.Aggregate{{Kind: query.Sum, Expr: query.Col("n")}}}
	c, err := query.Compile(q, r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Estimate(r, sel[:1]); err != nil {
		t.Fatal(err)
	}
	if es := r.EncodingStats(); es.LazyDecodeCols == 0 {
		t.Fatal("aggregating the FoR column should have materialized it")
	}
}

// TestChooserDeterministicBytes pins writer determinism: the same table
// produces byte-identical v2 files on every write, and re-encoding a block
// from a decoded partition (raw round-trip) picks the same encodings.
func TestChooserDeterministicBytes(t *testing.T) {
	tbl := encFixture(t, 640, 64, 3)
	a := writeStore(t, tbl)
	b := writeStore(t, tbl)
	if !bytes.Equal(a, b) {
		t.Fatal("two writes of the same table differ")
	}
	// Round-trip through the raw format and re-encode: the chooser sees
	// decoded slices instead of the builder's originals and must still make
	// identical choices.
	rawTbl := materialize(t, openStore(t, writeStoreRaw(t, tbl), -1))
	c := writeStore(t, rawTbl)
	if !bytes.Equal(a, c) {
		t.Fatal("re-encoding a decoded round-trip changed the file bytes")
	}
}

// TestChooserHintConsistency asserts the satellite contract for hints: they
// prune chooser scans but never change its decision, so a hinted write is
// byte-identical to an unhinted one.
func TestChooserHintConsistency(t *testing.T) {
	tbl := encFixture(t, 640, 64, 23)
	ts, err := stats.Build(tbl, stats.Options{GroupableCols: []string{"cat", "run"}})
	if err != nil {
		t.Fatal(err)
	}
	plain := writeStore(t, tbl)
	hinted := writeStoreWith(t, tbl, WriteOptions{Hints: HintsFromStats(ts)})
	if !bytes.Equal(plain, hinted) {
		t.Fatal("hinted write differs from unhinted write")
	}
}

// TestChooserHintsPruneOnly unit-tests chooseNumeric/chooseCat directly:
// for blocks on both sides of every selection boundary, an exact hint must
// yield the same plan as a full scan.
func TestChooserHintsPruneOnly(t *testing.T) {
	numBlocks := map[string][]float64{
		"integral small range": {5, 9, 5, 100, 42, 7},
		"constant":             {3, 3, 3, 3},
		"fractional":           {1.5, 2, 3},
		"negative frame":       {-1000, -500, -998},
		"wide range":           {0, float64(1 << 54)},
		"with NaN":             {1, 2, math.NaN()},
		"with Inf":             {1, 2, math.Inf(1)},
		"huge magnitude":       {0, maxExactInt + 2},
		"empty":                {},
	}
	for name, vals := range numBlocks {
		t.Run("num/"+name, func(t *testing.T) {
			unhinted := chooseNumeric(vals, ColHint{}, false)
			var h ColHint
			if len(vals) > 0 {
				h.Min, h.Max, h.HasRange = vals[0], vals[0], true
				for _, v := range vals {
					h.Min = math.Min(h.Min, v)
					h.Max = math.Max(h.Max, v)
				}
			}
			hinted := chooseNumeric(vals, h, len(vals) > 0)
			if unhinted != hinted {
				t.Fatalf("hinted plan %+v != unhinted %+v", hinted, unhinted)
			}
		})
	}
	catBlocks := map[string][]uint32{
		"shuffled low card": {0, 3, 1, 2, 0, 3, 2, 1, 0, 1},
		"single run":        {5, 5, 5, 5, 5, 5, 5, 5},
		"two runs":          {1, 1, 1, 1, 2, 2, 2, 2},
		"alternating":       {0, 1, 0, 1, 0, 1},
		"wide codes":        {1 << 20, 1<<20 + 1, 1 << 19},
		"empty":             {},
	}
	for name, codes := range catBlocks {
		t.Run("cat/"+name, func(t *testing.T) {
			unhinted := chooseCat(codes, ColHint{}, false)
			distinct := map[uint32]bool{}
			for _, c := range codes {
				distinct[c] = true
			}
			hinted := chooseCat(codes, ColHint{Distinct: len(distinct), HasDistinct: true}, len(codes) > 0)
			if unhinted != hinted {
				t.Fatalf("hinted plan %+v != unhinted %+v", hinted, unhinted)
			}
		})
	}
}

// mixedFixture builds a table whose partitions are byte-identical to each
// other (content depends only on the row's offset within its partition) and
// mix raw and encoded columns, so cache-accounting arithmetic is exact.
func mixedFixture(t testing.TB, parts, rowsPerPart int) *table.Table {
	t.Helper()
	s := table.MustSchema(
		table.Column{Name: "f", Kind: table.Numeric},       // fractional: raw
		table.Column{Name: "n", Kind: table.Numeric},       // integral: FoR
		table.Column{Name: "run", Kind: table.Categorical}, // low width: bit-packed
	)
	b, err := table.NewBuilder(s, rowsPerPart)
	if err != nil {
		t.Fatal(err)
	}
	runs := []string{"a", "b", "c"}
	for i := 0; i < parts*rowsPerPart; i++ {
		j := i % rowsPerPart
		num := []float64{float64(j) + 0.25, float64(j % 50), 0}
		cat := []string{"", "", runs[(j/16)%len(runs)]}
		if err := b.Append(num, cat); err != nil {
			t.Fatal(err)
		}
	}
	return b.Finish()
}

// TestCacheAccountingMixedEncodedRaw pins the cache's byte-accounting
// semantics for partitions that mix raw and encoded columns: the budget is
// enforced in resident-encoded bytes, eviction stays LRU, and LoadedBytes is
// the cumulative admitted encoded footprint — it grows again when an evicted
// partition is re-faulted and is smaller than the decoded footprint by the
// compression ratio.
func TestCacheAccountingMixedEncodedRaw(t *testing.T) {
	tbl := mixedFixture(t, 6, 200)
	data := writeStore(t, tbl)

	probe := openStore(t, data, -1)
	size := encodedPartSize(t, probe, 0)
	for pi := 1; pi < 6; pi++ {
		if got := encodedPartSize(t, probe, pi); got != size {
			t.Fatalf("fixture partitions are not uniform: part %d is %d bytes, part 0 is %d", pi, got, size)
		}
	}
	p0, err := probe.loadBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	if p0.EncCol(0) != nil || !p0.Decoded(0) {
		t.Fatal("column f must be raw")
	}
	if p0.EncCol(1) == nil || p0.EncCol(2) == nil {
		t.Fatal("columns n and run must be encoded")
	}
	decoded := int64(p0.SizeBytes())
	if size >= decoded {
		t.Fatalf("mixed partition: encoded %d bytes >= decoded %d", size, decoded)
	}

	budget := 2*size + size/2 // room for exactly two partitions
	r := openStore(t, data, budget)
	for pi := 0; pi < 6; pi++ {
		if _, err := r.Read(pi); err != nil {
			t.Fatal(err)
		}
	}
	st := r.CacheStats()
	if st.Misses != 6 || st.Evictions != 4 || st.ResidentParts != 2 {
		t.Fatalf("after 6 cold reads: %+v, want 6 misses / 4 evictions / 2 resident", st)
	}
	if st.ResidentBytes != 2*size {
		t.Fatalf("resident %d bytes, want %d (two encoded partitions)", st.ResidentBytes, 2*size)
	}
	if st.LoadedBytes != 6*size {
		t.Fatalf("LoadedBytes = %d, want %d (cumulative admitted encoded bytes)", st.LoadedBytes, 6*size)
	}
	// LRU: 4 and 5 are resident; 4 hits, 0 re-faults and charges again.
	if _, err := r.Read(4); err != nil {
		t.Fatal(err)
	}
	if got := r.CacheStats(); got.Hits != 1 || got.LoadedBytes != 6*size {
		t.Fatalf("hit on resident partition: %+v", got)
	}
	if _, err := r.Read(0); err != nil {
		t.Fatal(err)
	}
	st = r.CacheStats()
	if st.Misses != 7 {
		t.Fatalf("re-reading an evicted partition: misses = %d, want 7", st.Misses)
	}
	if st.LoadedBytes != 7*size {
		t.Fatalf("LoadedBytes = %d, want %d after re-fault", st.LoadedBytes, 7*size)
	}
	if st.ResidentBytes > budget {
		t.Fatalf("resident %d bytes exceeds budget %d", st.ResidentBytes, budget)
	}
	// Equal hit rate at a fraction of the bytes: the same budget expressed
	// in decoded bytes would have held zero partitions fewer — check the
	// stronger claim directly: two encoded partitions fit where only one
	// decoded-width partition would have.
	if 2*decoded <= budget {
		t.Fatalf("fixture too compressible for the claim: 2 decoded partitions (%d) fit budget %d", 2*decoded, budget)
	}
}

// goldenTable is the deterministic fixture behind the checked-in golden
// files. Purely arithmetic — no RNG — so it cannot drift across Go versions.
func goldenTable(t testing.TB) *table.Table {
	t.Helper()
	s := table.MustSchema(
		table.Column{Name: "f", Kind: table.Numeric},
		table.Column{Name: "n", Kind: table.Numeric},
		table.Column{Name: "cat", Kind: table.Categorical},
		table.Column{Name: "run", Kind: table.Categorical},
	)
	b, err := table.NewBuilder(s, 40)
	if err != nil {
		t.Fatal(err)
	}
	cats := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	runs := []string{"x", "y"}
	for i := 0; i < 130; i++ {
		num := []float64{float64(i)*0.375 - 20, float64((i * 7) % 97), 0, 0}
		cat := []string{"", "", cats[(i*3)%len(cats)], runs[(i/25)%len(runs)]}
		if err := b.Append(num, cat); err != nil {
			t.Fatal(err)
		}
	}
	return b.Finish()
}

// TestGoldenFiles freezes both wire formats: the checked-in v1 and v2 files
// must decode bit-identically to the in-memory fixture (backward
// compatibility), and today's writer must reproduce them byte for byte
// (format stability). Regenerate with `go test ./internal/store -run
// TestGoldenFiles -update-golden` — only when a format change is deliberate.
func TestGoldenFiles(t *testing.T) {
	tbl := goldenTable(t)
	cases := []struct {
		path    string
		data    []byte
		version int
	}{
		{filepath.Join("testdata", "v1_golden.ps3"), writeStoreRaw(t, tbl), 1},
		{filepath.Join("testdata", "v2_golden.ps3"), writeStore(t, tbl), 2},
	}
	if *updateGolden {
		for _, c := range cases {
			if err := os.MkdirAll(filepath.Dir(c.path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(c.path, c.data, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s (%d bytes)", c.path, len(c.data))
		}
		return
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("v%d", c.version), func(t *testing.T) {
			golden, err := os.ReadFile(c.path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update-golden)", err)
			}
			if !bytes.Equal(golden, c.data) {
				t.Fatalf("writer output differs from %s: format changed without a version bump", c.path)
			}
			r := openStore(t, golden, -1)
			if es := r.EncodingStats(); es.FormatVersion != c.version {
				t.Fatalf("format version %d, want %d", es.FormatVersion, c.version)
			}
			if r.NumRows() != tbl.NumRows() || r.NumParts() != tbl.NumParts() {
				t.Fatalf("golden decodes to %d rows / %d parts", r.NumRows(), r.NumParts())
			}
			for pi := range tbl.Parts {
				got, err := r.Read(pi)
				if err != nil {
					t.Fatal(err)
				}
				requireSamePartition(t, tbl.Parts[pi], got, pi)
			}
		})
	}
}

// v2ColOffsets walks a v2 block's [tag][len][payload] headers and returns the
// offset of each column's header within the block.
func v2ColOffsets(t testing.TB, block []byte, numCols int) []int {
	t.Helper()
	offs := make([]int, numCols)
	at := 0
	for c := 0; c < numCols; c++ {
		if at+colHeaderSize > len(block) {
			t.Fatalf("column %d header at %d overruns %d-byte block", c, at, len(block))
		}
		offs[c] = at
		at += colHeaderSize + int(binary.LittleEndian.Uint32(block[at+1:]))
	}
	return offs
}

// corruptBlock applies mutate to partition pi's block bytes in place and
// fixes up the footer CRC, so the corruption reaches the structural decode
// validation instead of tripping the checksum.
func corruptBlock(t testing.TB, data []byte, pi int, mutate func(block []byte)) []byte {
	t.Helper()
	out := append([]byte(nil), data...)
	probe := openStore(t, data, 0)
	b := probe.blocks[pi]
	mutate(out[b.Offset : b.Offset+b.Length])
	crc := crc32.Checksum(out[b.Offset:b.Offset+b.Length], crcTable)
	return rebuildFooter(t, out, func(f *footerWire) { f.Blocks[pi].CRC = crc })
}

// TestReadRejectsCorruptV2Blocks drives the per-column structural validation
// of encoded blocks: truncated packs, bad widths, out-of-range dictionary
// codes and RLE overruns must fail the corrupted partition's Read with a
// descriptive error while the file still opens and other partitions decode.
func TestReadRejectsCorruptV2Blocks(t *testing.T) {
	tbl := encFixture(t, 320, 100, 11)
	valid := writeStore(t, tbl)
	numCols := tbl.Schema.NumCols()
	// Column order in encFixture: 0 f (raw num), 1 n (FoR), 2 cat (bitpack),
	// 3 run (RLE); TestEncFixtureCoversAllEncodings guards this layout.
	cases := []struct {
		name   string
		mutate func(t *testing.T, block []byte)
		msg    string
	}{
		{"unknown tag", func(t *testing.T, block []byte) {
			block[v2ColOffsets(t, block, numCols)[0]] = 99
		}, "unknown column encoding tag"},
		{"payload overruns block", func(t *testing.T, block []byte) {
			off := v2ColOffsets(t, block, numCols)[0]
			binary.LittleEndian.PutUint32(block[off+1:], 1<<30)
		}, "overruns block"},
		{"FoR width over exactness bound", func(t *testing.T, block []byte) {
			off := v2ColOffsets(t, block, numCols)[1]
			block[off+colHeaderSize+8] = 60
		}, "53-bit"},
		{"truncated FoR pack", func(t *testing.T, block []byte) {
			// Bump the declared width without growing the payload: the pack
			// is now too short for rows*width bits.
			off := v2ColOffsets(t, block, numCols)[1]
			block[off+colHeaderSize+8]++
		}, "payload"},
		{"bit-pack width over 32", func(t *testing.T, block []byte) {
			off := v2ColOffsets(t, block, numCols)[2]
			block[off+colHeaderSize] = 40
		}, "width <= 32"},
		{"truncated bit pack", func(t *testing.T, block []byte) {
			off := v2ColOffsets(t, block, numCols)[2]
			block[off+colHeaderSize]++
		}, "payload"},
		{"RLE code out of dictionary range", func(t *testing.T, block []byte) {
			off := v2ColOffsets(t, block, numCols)[3]
			// First run value sits right after the run count.
			binary.LittleEndian.PutUint32(block[off+colHeaderSize+4:], 1<<31)
		}, "out of range"},
		{"RLE run overruns rows", func(t *testing.T, block []byte) {
			off := v2ColOffsets(t, block, numCols)[3]
			runs := int(binary.LittleEndian.Uint32(block[off+colHeaderSize:]))
			lastEnd := off + colHeaderSize + 4 + 4*runs + 4*(runs-1)
			binary.LittleEndian.PutUint32(block[lastEnd:], 1<<20)
		}, "ends at"},
		{"RLE run count mismatch", func(t *testing.T, block []byte) {
			off := v2ColOffsets(t, block, numCols)[3]
			binary.LittleEndian.PutUint32(block[off+colHeaderSize:], 1<<24)
		}, "runs need"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			data := corruptBlock(t, valid, 1, func(block []byte) { c.mutate(t, block) })
			r := openStore(t, data, 0)
			if _, err := r.Read(0); err != nil {
				t.Fatalf("intact partition: %v", err)
			}
			_, err := r.Read(1)
			if err == nil {
				t.Fatal("corrupted partition must fail to decode")
			}
			if !strings.Contains(err.Error(), c.msg) {
				t.Fatalf("error %q does not mention %q", err, c.msg)
			}
			if _, err := r.Read(2); err != nil {
				t.Fatalf("partition after the corrupt one: %v", err)
			}
		})
	}
}

// TestEncodingStatsRatio sanity-checks the /stats surface: an encoded store
// reports FileBytes below LogicalBytes with the matching ratio, a raw store
// reports exactly 1.0, and lazy-decode counters start at zero.
func TestEncodingStatsRatio(t *testing.T) {
	tbl := encFixture(t, 640, 64, 29)
	enc := openStore(t, writeStore(t, tbl), -1)
	raw := openStore(t, writeStoreRaw(t, tbl), -1)

	es := enc.EncodingStats()
	if es.FormatVersion != 2 || es.FileBytes >= es.LogicalBytes {
		t.Fatalf("encoded store stats: %+v", es)
	}
	if want := float64(es.LogicalBytes) / float64(es.FileBytes); es.Ratio != want || es.Ratio <= 1 {
		t.Fatalf("ratio = %v, want %v (> 1)", es.Ratio, want)
	}
	if es.LazyDecodeCols != 0 || es.LazyDecodeBytes != 0 {
		t.Fatalf("fresh reader reports decode work: %+v", es)
	}
	rs := raw.EncodingStats()
	if rs.FormatVersion != 1 || rs.Ratio != 1 || rs.FileBytes != rs.LogicalBytes {
		t.Fatalf("raw store stats: %+v", rs)
	}
	if rs.LogicalBytes != es.LogicalBytes {
		t.Fatalf("logical bytes differ between formats: %d vs %d", rs.LogicalBytes, es.LogicalBytes)
	}
}
