package store

import (
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"ps3/internal/dataset"
	"ps3/internal/table"
)

// benchDatasets are the evaluation datasets the encoding benchmarks sweep:
// aria is a modestly compressible mixed schema; kdd is dominated by small
// integral counters and low-cardinality categoricals and compresses hard.
// tpch sits in between. Sizes match the recorded BENCH_store.json run.
var benchDatasets = []string{"aria", "tpch", "kdd"}

// benchDatasetTable memoizes dataset generation across benchmarks — the
// generators cost far more than a benchmark iteration.
var (
	benchTblMu    sync.Mutex
	benchTblCache = map[string]*table.Table{}
)

func benchDatasetTable(b *testing.B, name string) *table.Table {
	b.Helper()
	benchTblMu.Lock()
	defer benchTblMu.Unlock()
	if t, ok := benchTblCache[name]; ok {
		return t
	}
	ds, err := dataset.ByName(name, dataset.Config{Rows: 20_000, Parts: 40, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	benchTblCache[name] = ds.Table
	return ds.Table
}

// benchOpenFile writes tbl once per (name, raw) pair into the benchmark's
// temp dir and opens it with the given budget.
func benchOpenFile(b *testing.B, tbl *table.Table, raw bool, cacheBytes int64) *Reader {
	b.Helper()
	path := filepath.Join(b.TempDir(), "bench.ps3")
	if _, err := WriteFileWith(path, tbl, WriteOptions{Raw: raw}); err != nil {
		b.Fatal(err)
	}
	r, err := Open(path, Options{CacheBytes: cacheBytes})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { r.Close() })
	return r
}

// BenchmarkStoreEncodedColdScan faults every partition in from disk with a
// one-partition cache, raw layout vs encoded, per dataset. SetBytes charges
// the decoded (logical) volume on both, so MB/s is directly comparable: the
// encoded side reads fewer file bytes but pays bit-unpacking, and the
// acceptance bar is that it lands no worse than raw. The encoded runs also
// report the file-level compression ratio.
func BenchmarkStoreEncodedColdScan(b *testing.B) {
	for _, name := range benchDatasets {
		tbl := benchDatasetTable(b, name)
		partSize := int64(tbl.Parts[0].SizeBytes())
		for _, layout := range []struct {
			label string
			raw   bool
		}{{"raw", true}, {"enc", false}} {
			b.Run(name+"/"+layout.label, func(b *testing.B) {
				r := benchOpenFile(b, tbl, layout.raw, partSize)
				b.SetBytes(int64(r.TotalBytes()))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for pi := 0; pi < r.NumParts(); pi++ {
						if _, err := r.Read(pi); err != nil {
							b.Fatal(err)
						}
					}
				}
				b.StopTimer()
				if !layout.raw {
					b.ReportMetric(r.EncodingStats().Ratio, "compression-x")
				}
			})
		}
	}
}

// BenchmarkStoreEncodedHitRate measures the cache hit rate of a uniform
// random-read workload at fixed byte budgets: raw at 25% of the dataset's
// logical bytes, encoded at the same budget, and encoded at a third of it.
// The reported hit-frac makes the headline claim measurable: on kdd the
// encoded store at budget/3 still beats raw at the full budget, i.e. >= 3x
// fewer cache bytes at equal (better) hit rate. On aria the honest result is
// that its ~2.2x ratio is not enough for the 3x budget cut to win.
func BenchmarkStoreEncodedHitRate(b *testing.B) {
	for _, name := range benchDatasets {
		tbl := benchDatasetTable(b, name)
		logical := int64(tbl.TotalBytes())
		budget := logical / 4
		for _, cfg := range []struct {
			label string
			raw   bool
			bytes int64
		}{
			{"raw-budget25pct", true, budget},
			{"enc-budget25pct", false, budget},
			{"enc-budget8pct", false, budget / 3},
		} {
			b.Run(name+"/"+cfg.label, func(b *testing.B) {
				r := benchOpenFile(b, tbl, cfg.raw, cfg.bytes)
				rng := rand.New(rand.NewSource(7))
				// Warm: two uniform laps so the resident set reaches its
				// steady state before measurement.
				for i := 0; i < 2*r.NumParts(); i++ {
					if _, err := r.Read(rng.Intn(r.NumParts())); err != nil {
						b.Fatal(err)
					}
				}
				start := r.CacheStats()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := r.Read(rng.Intn(r.NumParts())); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				st := r.CacheStats()
				hits := st.Hits - start.Hits
				misses := st.Misses - start.Misses
				if total := hits + misses; total > 0 {
					b.ReportMetric(float64(hits)/float64(total), "hit-frac")
				}
				b.ReportMetric(float64(st.ResidentParts), "resident-parts")
			})
		}
	}
}
