package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync/atomic"

	"ps3/internal/exec"
	"ps3/internal/fault"
	"ps3/internal/table"
)

// DefaultCacheBytes is the partition cache budget when Options.CacheBytes
// is zero: 256 MiB, small enough to matter on a laptop, large enough to
// hold the working set of a typical picked-partition workload.
const DefaultCacheBytes int64 = 256 << 20

// Options configures a Reader.
type Options struct {
	// CacheBytes bounds the resident-encoded partition bytes held by the
	// cache (decoded width for raw columns, wire size for encoded ones —
	// see Partition.EncodedSizeBytes). 0 means DefaultCacheBytes; negative
	// means unbounded (the whole dataset may end up cached, which turns
	// the reader into a lazily-populated resident table).
	CacheBytes int64
}

func (o Options) budget() int64 {
	switch {
	case o.CacheBytes == 0:
		return DefaultCacheBytes
	case o.CacheBytes < 0:
		return 0 // partCache treats <=0 as unbounded
	default:
		return o.CacheBytes
	}
}

// Reader serves partitions from a store file on demand. It implements
// table.PartitionSource: opening costs one footer read, and partition data
// is fetched lazily through a byte-budgeted LRU cache, so memory tracks the
// cache budget plus in-flight scans rather than the dataset. All methods
// are safe for concurrent use.
type Reader struct {
	src    io.ReaderAt
	closer io.Closer // set when the reader owns the underlying file

	schema  *table.Schema
	dict    *table.Dict
	blocks  []blockWire
	version uint32
	rows    int
	// totalBytes is the decoded (logical) footprint; fileBytes the encoded
	// bytes actually stored in blocks. Equal for v1 files.
	totalBytes int64
	fileBytes  int64
	// perRow is the decoded bytes per row under the schema.
	perRow int64

	cache *partCache
	// decStats counts lazy materializations of encoded columns across every
	// partition this reader has served.
	decStats table.DecodeStats

	// quarantine fences partitions whose blocks failed as corrupt twice;
	// corruptRetries counts the retry attempts (see loadBlockRetry).
	quarantine     quarantineSet
	corruptRetries atomic.Int64

	// Logical I/O accounting (see table.PartitionSource): every Read
	// charges here, cache hit or not; the cache's own stats track the
	// physical loads.
	readCount atomic.Int64
	readBytes atomic.Int64
}

// Open opens the store file at path. The returned Reader keeps the file
// handle until Close.
func Open(path string, o Options) (*Reader, error) {
	return OpenFS(fault.OS, path, o)
}

// OpenFS is Open over an explicit filesystem seam. Production callers use
// fault.OS (what Open passes); chaos tests hand in a fault.Injector so
// block reads can be failed or corrupted on schedule.
func OpenFS(fsys fault.FS, path string, o Options) (*Reader, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	r, err := NewReaderAt(f, st.Size(), o)
	if err != nil {
		f.Close()
		return nil, err
	}
	r.closer = f
	return r, nil
}

// NewReaderAt opens a store held in any random-access source of the given
// size. The footer is read and validated eagerly — as untrusted input, like
// every other decode path — so a corrupted index fails here; block data is
// only validated when a partition is actually read.
func NewReaderAt(src io.ReaderAt, size int64, o Options) (*Reader, error) {
	if size < int64(headerSize+trailerSize) {
		return nil, fmt.Errorf("store: file of %d bytes is too small to be a store", size)
	}
	var header [headerSize]byte
	if _, err := src.ReadAt(header[:], 0); err != nil {
		return nil, fmt.Errorf("store: read header: %w", err)
	}
	if string(header[:len(headerMagic)]) != headerMagic {
		return nil, fmt.Errorf("store: not a store file (magic %q)", header[:len(headerMagic)])
	}
	version := binary.LittleEndian.Uint32(header[len(headerMagic):])
	if version != formatVersion && version != formatVersionEncoded {
		return nil, fmt.Errorf("store: format version %d, this build reads %d and %d",
			version, formatVersion, formatVersionEncoded)
	}

	var trailer [trailerSize]byte
	if _, err := src.ReadAt(trailer[:], size-int64(trailerSize)); err != nil {
		return nil, fmt.Errorf("store: read trailer: %w", err)
	}
	if string(trailer[12:]) != trailerMagic {
		return nil, fmt.Errorf("store: truncated or corrupt file (trailer magic %q)", trailer[12:])
	}
	footerLen := binary.LittleEndian.Uint64(trailer[:8])
	maxFooter := uint64(size) - uint64(headerSize) - uint64(trailerSize)
	if footerLen > maxFooter {
		return nil, fmt.Errorf("store: corrupt file: footer length %d exceeds the %d bytes between header and trailer", footerLen, maxFooter)
	}
	footerStart := size - int64(trailerSize) - int64(footerLen)
	fbuf := make([]byte, footerLen)
	if _, err := src.ReadAt(fbuf, footerStart); err != nil {
		return nil, fmt.Errorf("store: read footer: %w", err)
	}
	if got, want := crc32.Checksum(fbuf, crcTable), binary.LittleEndian.Uint32(trailer[8:12]); got != want {
		return nil, fmt.Errorf("store: corrupt file: footer checksum %08x, want %08x", got, want)
	}
	var footer footerWire
	if err := gob.NewDecoder(bytes.NewReader(fbuf)).Decode(&footer); err != nil {
		return nil, fmt.Errorf("store: decode footer: %w", err)
	}

	if len(footer.Cols) == 0 {
		return nil, fmt.Errorf("store: corrupt file: footer has no columns")
	}
	schema, err := table.NewSchema(footer.Cols...)
	if err != nil {
		return nil, err
	}
	dict, err := table.DictFromValues(footer.DictVals)
	if err != nil {
		return nil, err
	}

	r := &Reader{
		src:     src,
		schema:  schema,
		dict:    dict,
		blocks:  footer.Blocks,
		version: version,
		cache:   newPartCache(o.budget()),
	}
	// perRow is hoisted out of the loop: a corrupt footer can declare
	// thousands of columns and thousands of blocks, and re-walking the
	// schema per block would make open quadratic in the footer size.
	r.perRow = bytesPerRow(schema)
	// v2 blocks carry a [tag][length] prefix per column; their payload
	// length varies with the data, so only a lower bound is checkable from
	// the footer (full structural validation happens at block decode).
	minV2 := int64(colHeaderSize * schema.NumCols())
	for i, b := range footer.Blocks {
		if b.Rows < 0 || b.Rows > math.MaxInt32 {
			return nil, fmt.Errorf("store: corrupt file: partition %d has row count %d", i, b.Rows)
		}
		if version == formatVersion {
			if want := r.perRow * b.Rows; b.Length != want {
				return nil, fmt.Errorf("store: corrupt file: partition %d block is %d bytes, %d rows require %d",
					i, b.Length, b.Rows, want)
			}
		} else if b.Length < minV2 {
			return nil, fmt.Errorf("store: corrupt file: partition %d block is %d bytes, %d column headers require %d",
				i, b.Length, schema.NumCols(), minV2)
		}
		if b.Offset < int64(headerSize) || b.Offset > footerStart || footerStart-b.Offset < b.Length {
			return nil, fmt.Errorf("store: corrupt file: partition %d block [%d, %d+%d) falls outside the data section [%d, %d)",
				i, b.Offset, b.Offset, b.Length, headerSize, footerStart)
		}
		r.rows += int(b.Rows)
		r.totalBytes += r.perRow * b.Rows
		r.fileBytes += b.Length
	}
	return r, nil
}

// Close releases the underlying file when the Reader owns one.
func (r *Reader) Close() error {
	if r.closer != nil {
		return r.closer.Close()
	}
	return nil
}

// TableSchema returns the schema decoded from the footer.
func (r *Reader) TableSchema() *table.Schema { return r.schema }

// TableDict returns the dictionary decoded from the footer.
func (r *Reader) TableDict() *table.Dict { return r.dict }

// NumParts returns the number of partitions in the store.
func (r *Reader) NumParts() int { return len(r.blocks) }

// NumRows returns the total row count across partitions, from the footer
// index alone.
func (r *Reader) NumRows() int { return r.rows }

// TotalBytes returns the decoded footprint of the full dataset. Cell
// encodings are fixed-width, so this equals the resident table's
// TotalBytes.
func (r *Reader) TotalBytes() int { return int(r.totalBytes) }

// Read returns partition i, charging one logical partition read to the I/O
// accountant and faulting the block in through the cache if it is not
// resident. Concurrent reads of one absent partition share a single disk
// load.
func (r *Reader) Read(i int) (*table.Partition, error) {
	if i < 0 || i >= len(r.blocks) {
		return nil, fmt.Errorf("store: partition %d out of range [0, %d)", i, len(r.blocks))
	}
	if err := r.quarantine.check(i); err != nil {
		return nil, err
	}
	r.readCount.Add(1)
	r.readBytes.Add(r.perRow * r.blocks[i].Rows)
	return r.cache.get(i, func() (*table.Partition, int64, error) {
		p, err := r.loadBlockRetry(i)
		if err != nil {
			return nil, 0, err
		}
		// The cache charges the resident-encoded footprint, not the decoded
		// width: a compressed partition takes a proportionally smaller bite
		// out of the budget, which is the point of encoding.
		return p, int64(p.EncodedSizeBytes()), nil
	})
}

// ReadUncached returns partition i without touching the partition cache,
// still charging the logical I/O accountant. Full-scan paths (core's
// RunExact) read through it so that one exact scan cannot evict the
// approximate-serving working set — the same reason Materialize bypasses
// the cache.
func (r *Reader) ReadUncached(i int) (*table.Partition, error) {
	if i < 0 || i >= len(r.blocks) {
		return nil, fmt.Errorf("store: partition %d out of range [0, %d)", i, len(r.blocks))
	}
	if err := r.quarantine.check(i); err != nil {
		return nil, err
	}
	r.readCount.Add(1)
	r.readBytes.Add(r.perRow * r.blocks[i].Rows)
	return r.loadBlockRetry(i)
}

// loadBlock reads, checksums and decodes partition i from disk, bypassing
// the cache. Failures on bad bytes — CRC mismatch, or a decode error on
// bytes that matched their checksum — are marked with errCorruptBlock;
// read errors are not, so transient I/O stays retryable.
func (r *Reader) loadBlock(i int) (*table.Partition, error) {
	b := r.blocks[i]
	data := make([]byte, b.Length)
	if _, err := r.src.ReadAt(data, b.Offset); err != nil {
		return nil, fmt.Errorf("store: read partition %d: %w", i, err)
	}
	if got := crc32.Checksum(data, crcTable); got != b.CRC {
		return nil, fmt.Errorf("store: partition %d failed checksum: block CRC %08x, footer says %08x: %w",
			i, got, b.CRC, errCorruptBlock)
	}
	var p *table.Partition
	var err error
	if r.version == formatVersionEncoded {
		p, err = decodeBlockV2(data, r.schema, uint32(r.dict.Len()), i, int(b.Rows), &r.decStats)
	} else {
		p, err = decodeBlock(data, r.schema, uint32(r.dict.Len()), i, int(b.Rows))
	}
	if err != nil {
		return nil, fmt.Errorf("%w: %w", err, errCorruptBlock)
	}
	return p, nil
}

// loadBlockRetry is loadBlock with the quarantine policy: a corrupt load
// is retried once (the corruption may have happened between the platter
// and the checksum, not on it); corrupt twice in a row quarantines the
// partition so every later read fails fast with a *QuarantineError
// instead of re-reading bytes that will never verify. Transient I/O
// errors pass through unmarked and unquarantined.
func (r *Reader) loadBlockRetry(i int) (*table.Partition, error) {
	p, err := r.loadBlock(i)
	if err == nil || !errors.Is(err, errCorruptBlock) {
		return p, err
	}
	r.corruptRetries.Add(1)
	p, err = r.loadBlock(i)
	if err == nil || !errors.Is(err, errCorruptBlock) {
		return p, err
	}
	r.quarantine.add(i, err)
	return nil, &QuarantineError{Part: i, Err: err}
}

// Health reports the reader's quarantine state.
func (r *Reader) Health() HealthStats {
	return HealthStats{
		QuarantinedParts: r.quarantine.list(),
		CorruptRetries:   r.corruptRetries.Load(),
	}
}

// ResetIO clears the logical I/O counters.
func (r *Reader) ResetIO() {
	r.readCount.Store(0)
	r.readBytes.Store(0)
}

// IOStats reports logical partition reads since the last ResetIO — what
// the query plan asked for, whether or not the cache absorbed it.
func (r *Reader) IOStats() (parts int64, bytes int64) {
	return r.readCount.Load(), r.readBytes.Load()
}

// CacheStats snapshots the partition cache counters: physical loads,
// hits, evictions and resident bytes.
func (r *Reader) CacheStats() CacheStats { return r.cache.stats() }

// EncodingStats describes how much the store's block encodings compress the
// dataset and how often encoded columns had to be materialized anyway.
type EncodingStats struct {
	// FormatVersion is the file's format: 1 (raw) or 2 (encoded).
	FormatVersion int
	// FileBytes is the total encoded block bytes on disk; LogicalBytes the
	// decoded-width equivalent. Equal for v1 files.
	FileBytes    int64
	LogicalBytes int64
	// Ratio is LogicalBytes / FileBytes (1.0 for raw files).
	Ratio float64
	// LazyDecodeCols / LazyDecodeBytes count encoded columns materialized
	// after load — the decode work predicates could not avoid.
	LazyDecodeCols  int64
	LazyDecodeBytes int64
}

// EncodingStats reports the reader's compression and lazy-decode counters.
func (r *Reader) EncodingStats() EncodingStats {
	cols, bytes := r.decStats.Snapshot()
	es := EncodingStats{
		FormatVersion:   int(r.version),
		FileBytes:       r.fileBytes,
		LogicalBytes:    r.totalBytes,
		LazyDecodeCols:  cols,
		LazyDecodeBytes: bytes,
	}
	if es.FileBytes > 0 {
		es.Ratio = float64(es.LogicalBytes) / float64(es.FileBytes)
	}
	return es
}

// Materialize loads every partition into a fully resident *table.Table
// sharing the reader's schema and dictionary. It bypasses the cache — a
// full materialization must not evict a serving working set — and is the
// bridge for workflows that need resident data, like training. Blocks are
// independent, so they load and decode in parallel (ReadAt is
// concurrency-safe); the partition list stays in index order.
func (r *Reader) Materialize() (*table.Table, error) {
	parts, err := exec.MapErr(len(r.blocks), exec.Options{}, r.loadBlock)
	if err != nil {
		return nil, err
	}
	return &table.Table{Schema: r.schema, Dict: r.dict, Parts: parts}, nil
}
