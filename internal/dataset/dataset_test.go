package dataset

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"ps3/internal/table"
)

func genAll(t *testing.T, cfg Config) map[string]*Dataset {
	t.Helper()
	out := make(map[string]*Dataset)
	for _, name := range Names() {
		d, err := ByName(name, cfg)
		if err != nil {
			t.Fatalf("generating %s: %v", name, err)
		}
		out[name] = d
	}
	return out
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("bogus", Config{}); err == nil {
		t.Fatal("want error for unknown dataset")
	}
}

func TestNamesMatchPaperOrder(t *testing.T) {
	want := []string{"tpch", "tpcds", "aria", "kdd"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestGeneratorsProduceRequestedShape(t *testing.T) {
	cfg := Config{Rows: 5_000, Parts: 25, Seed: 1}
	for name, d := range genAll(t, cfg) {
		if got := d.Table.NumRows(); got != cfg.Rows {
			t.Errorf("%s: %d rows, want %d", name, got, cfg.Rows)
		}
		if got := d.Table.NumParts(); got != cfg.Parts {
			t.Errorf("%s: %d parts, want %d", name, got, cfg.Parts)
		}
		if d.Name == "" {
			t.Errorf("%s: empty Name", name)
		}
		if len(d.SortCols) == 0 {
			t.Errorf("%s: no default sort layout", name)
		}
		if len(d.AltLayouts) < 2 {
			t.Errorf("%s: %d alternative layouts, want ≥2 (Fig 6 needs two)", name, len(d.AltLayouts))
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	cfg := Config{Rows: 2_000, Parts: 10, Seed: 42}
	for _, name := range Names() {
		a, err := ByName(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ByName(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !tablesEqual(a.Table, b.Table) {
			t.Errorf("%s: same seed produced different tables", name)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, err := Aria(Config{Rows: 2_000, Parts: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Aria(Config{Rows: 2_000, Parts: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tablesEqual(a.Table, b.Table) {
		t.Error("different seeds produced identical tables")
	}
}

func tablesEqual(a, b *table.Table) bool {
	if a.NumParts() != b.NumParts() || a.NumRows() != b.NumRows() {
		return false
	}
	for pi := range a.Parts {
		pa, pb := a.Parts[pi], b.Parts[pi]
		if pa.Rows() != pb.Rows() {
			return false
		}
		for c := range a.Schema.Cols {
			if a.Schema.Cols[c].IsNumeric() {
				na, nb := pa.NumCol(c), pb.NumCol(c)
				for r := 0; r < pa.Rows(); r++ {
					if na[r] != nb[r] {
						return false
					}
				}
				continue
			}
			ca, cb := pa.CatCol(c), pb.CatCol(c)
			for r := 0; r < pa.Rows(); r++ {
				if a.Dict.Value(ca[r]) != b.Dict.Value(cb[r]) {
					return false
				}
			}
		}
	}
	return true
}

func TestDefaultLayoutIsSorted(t *testing.T) {
	cfg := Config{Rows: 3_000, Parts: 15, Seed: 3}
	for name, d := range genAll(t, cfg) {
		ci := d.Table.Schema.ColIndex(d.SortCols[0])
		if ci < 0 {
			t.Fatalf("%s: sort column %q not in schema", name, d.SortCols[0])
		}
		col := d.Table.Schema.Col(ci)
		var prev float64 = math.Inf(-1)
		var prevStr string
		for _, p := range d.Table.Parts {
			if col.IsNumeric() {
				nums := p.NumCol(ci)
				for r := 0; r < p.Rows(); r++ {
					if nums[r] < prev {
						t.Fatalf("%s: layout not sorted by %s at partition %d", name, col.Name, p.ID)
					}
					prev = nums[r]
				}
			} else {
				cats := p.CatCol(ci)
				for r := 0; r < p.Rows(); r++ {
					v := d.Table.Dict.Value(cats[r])
					if v < prevStr {
						t.Fatalf("%s: layout not sorted by %s at partition %d", name, col.Name, p.ID)
					}
					prevStr = v
				}
			}
		}
	}
}

func TestWorkloadColumnsExistInSchema(t *testing.T) {
	cfg := Config{Rows: 1_000, Parts: 5, Seed: 4}
	for name, d := range genAll(t, cfg) {
		all := append([]string{}, d.Workload.GroupableCols...)
		all = append(all, d.Workload.PredicateCols...)
		all = append(all, d.Workload.AggCols...)
		for _, c := range all {
			if d.Table.Schema.ColIndex(c) < 0 {
				t.Errorf("%s: workload references unknown column %q", name, c)
			}
		}
		// Agg columns must be numeric.
		for _, c := range d.Workload.AggCols {
			ci := d.Table.Schema.ColIndex(c)
			if ci >= 0 && !d.Table.Schema.Col(ci).IsNumeric() {
				t.Errorf("%s: agg column %q is categorical", name, c)
			}
		}
	}
}

func TestAltLayoutColumnsExist(t *testing.T) {
	cfg := Config{Rows: 1_000, Parts: 5, Seed: 5}
	for name, d := range genAll(t, cfg) {
		for _, layout := range d.AltLayouts {
			for _, c := range layout {
				if d.Table.Schema.ColIndex(c) < 0 {
					t.Errorf("%s: alt layout references unknown column %q", name, c)
				}
			}
		}
	}
}

func TestWithLayoutPreservesRowsAndParts(t *testing.T) {
	d, err := KDD(Config{Rows: 3_000, Parts: 12, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, layout := range d.AltLayouts {
		alt, err := d.WithLayout(layout)
		if err != nil {
			t.Fatal(err)
		}
		if alt.Table.NumRows() != d.Table.NumRows() {
			t.Fatalf("layout %v changed row count", layout)
		}
		if alt.Table.NumParts() != d.Table.NumParts() {
			t.Fatalf("layout %v changed partition count", layout)
		}
	}
}

func TestWithLayoutEmptyShuffles(t *testing.T) {
	d, err := Aria(Config{Rows: 2_000, Parts: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	shuf, err := d.WithLayout(nil)
	if err != nil {
		t.Fatal(err)
	}
	if tablesEqual(d.Table, shuf.Table) {
		t.Fatal("random layout identical to sorted layout")
	}
	if shuf.Table.NumRows() != d.Table.NumRows() {
		t.Fatal("shuffle changed row count")
	}
}

func TestWithPartitionsRechunks(t *testing.T) {
	d, err := TPCHStar(Config{Rows: 3_000, Parts: 10, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{5, 30} {
		re, err := d.WithPartitions(n)
		if err != nil {
			t.Fatal(err)
		}
		if re.Table.NumParts() != n {
			t.Fatalf("WithPartitions(%d) produced %d parts", n, re.Table.NumParts())
		}
		if re.Table.NumRows() != d.Table.NumRows() {
			t.Fatalf("WithPartitions(%d) changed row count", n)
		}
	}
}

func TestAriaSkewTopVersionDominates(t *testing.T) {
	// §1: in Aria, the most popular app version accounts for ~half the data.
	d, err := Aria(Config{Rows: 20_000, Parts: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ci := d.Table.Schema.ColIndex("AppInfo_Version")
	if ci < 0 {
		t.Fatal("AppInfo_Version missing")
	}
	counts := map[uint32]int{}
	for _, p := range d.Table.Parts {
		for _, c := range p.CatCol(ci) {
			counts[c]++
		}
	}
	var freqs []int
	for _, n := range counts {
		freqs = append(freqs, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	top := float64(freqs[0]) / float64(d.Table.NumRows())
	if top < 0.25 || top > 0.75 {
		t.Fatalf("top app version covers %.0f%% of rows; want Zipf-dominant (~50%%)", top*100)
	}
	if len(counts) < 20 {
		t.Fatalf("only %d distinct versions; want many (paper: 167)", len(counts))
	}
}

func TestTPCHZipfSkewInQuantity(t *testing.T) {
	d, err := TPCHStar(Config{Rows: 20_000, Parts: 20, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Zipfian generator: L_QUANTITY should be right-skewed — mean well above
	// median.
	ci := d.Table.Schema.ColIndex("L_QUANTITY")
	var vals []float64
	for _, p := range d.Table.Parts {
		vals = append(vals, p.NumCol(ci)...)
	}
	sort.Float64s(vals)
	med := vals[len(vals)/2]
	var mean float64
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	if mean <= med {
		t.Fatalf("L_QUANTITY mean %v ≤ median %v; want right skew", mean, med)
	}
}

func TestKDDBinaryColumnsAreBinary(t *testing.T) {
	d, err := KDD(Config{Rows: 5_000, Parts: 10, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// KDD has flag-style binary numeric columns (the paper notes its small
	// AKMV sizes come from binary columns). Find at least one.
	binary := 0
	for ci, col := range d.Table.Schema.Cols {
		if !col.IsNumeric() {
			continue
		}
		distinct := map[float64]bool{}
		for _, p := range d.Table.Parts {
			for _, v := range p.NumCol(ci) {
				distinct[v] = true
			}
		}
		if len(distinct) <= 2 {
			binary++
		}
	}
	if binary == 0 {
		t.Fatal("KDD has no binary numeric columns; paper's Table 4 depends on them")
	}
}

func TestSortColumnCorrelatesWithOtherColumns(t *testing.T) {
	// The evaluation depends on sorted layouts producing heterogeneous
	// partitions: per-partition means of some non-sort column must vary
	// substantially more than under a random layout.
	d, err := TPCHStar(Config{Rows: 10_000, Parts: 20, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	shuf, err := d.WithLayout(nil)
	if err != nil {
		t.Fatal(err)
	}
	ci := d.Table.Schema.ColIndex("O_ORDERDATE") // correlated with L_SHIPDATE
	spread := func(t2 *table.Table) float64 {
		var means []float64
		for _, p := range t2.Parts {
			var m float64
			nums := p.NumCol(ci)
			for _, v := range nums {
				m += v
			}
			means = append(means, m/float64(len(nums)))
		}
		var lo, hi = math.Inf(1), math.Inf(-1)
		for _, m := range means {
			lo = math.Min(lo, m)
			hi = math.Max(hi, m)
		}
		return hi - lo
	}
	if s, r := spread(d.Table), spread(shuf.Table); s < 2*r {
		t.Fatalf("sorted-layout spread %v not ≫ random-layout spread %v; partitions look homogeneous", s, r)
	}
}

func TestTPCDSDatasetBasics(t *testing.T) {
	d, err := TPCDSStar(Config{Rows: 4_000, Parts: 16, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	// Date-sorted layout per the paper (year, month, day).
	if d.SortCols[0] != "d_year" {
		t.Fatalf("TPCDS sort key = %v", d.SortCols)
	}
	// Promo key column exists for the Fig 6 alternative layout.
	if d.Table.Schema.ColIndex("p_promo_sk") < 0 {
		t.Fatal("p_promo_sk missing from TPCDS schema")
	}
}

func TestZipferSmallN(t *testing.T) {
	z := newZipfer(randNew(1), 1)
	for i := 0; i < 10; i++ {
		if r := z.rank(); r != 0 {
			t.Fatalf("zipfer over n=1 returned %d", r)
		}
	}
}

func TestZipferSkew(t *testing.T) {
	z := newZipfer(randNew(2), 100)
	counts := make([]int, 100)
	for i := 0; i < 10_000; i++ {
		counts[z.rank()]++
	}
	if counts[0] < counts[50]*5 {
		t.Fatalf("rank 0 count %d not ≫ rank 50 count %d; insufficient skew", counts[0], counts[50])
	}
}

func randNew(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
