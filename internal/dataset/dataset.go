// Package dataset provides seeded synthetic stand-ins for the paper's four
// evaluation datasets (§5.1.1). The real datasets (multi-TB TPC-H with Zipf
// skew on SCOPE, Microsoft's Aria production log, TPC-DS, KDD Cup'99) are
// not reproducible here, so each generator recreates the properties the
// evaluation depends on:
//
//   - matching column schemas (numeric + categorical mix),
//   - Zipfian skew in categorical and measure columns (Aria's most popular
//     app version covers ~half the dataset, as in the paper's §1 example),
//   - correlations between the sort column and other columns so sorted
//     layouts produce heterogeneous partitions,
//   - the paper's default and alternative sort layouts (Fig 6, Fig 8).
package dataset

import (
	"fmt"
	"math/rand"

	"ps3/internal/query"
	"ps3/internal/table"
)

// Config sizes a generated dataset.
type Config struct {
	// Rows is the total row count (default 100_000).
	Rows int
	// Parts is the partition count (default 200).
	Parts int
	// Seed drives generation.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Rows <= 0 {
		c.Rows = 100_000
	}
	if c.Parts <= 0 {
		c.Parts = 200
	}
	return c
}

// Dataset bundles a generated table with its workload specification and
// layout metadata.
type Dataset struct {
	Name string
	// Table is laid out by SortCols (the paper's default layout).
	Table *table.Table
	// Workload is the query distribution for training and testing.
	Workload query.Workload
	// SortCols is the default layout's sort key.
	SortCols []string
	// AltLayouts are the alternative sort keys evaluated in Fig 6.
	AltLayouts [][]string
	cfg        Config
	raw        *table.Table // ingest-order table, pre-layout
}

// WithLayout returns a copy of the dataset re-sorted by the given columns
// (or randomly shuffled if cols is empty) into the same partition count.
func (d *Dataset) WithLayout(cols []string) (*Dataset, error) {
	var t *table.Table
	var err error
	if len(cols) == 0 {
		t, err = d.raw.Shuffled(d.cfg.Parts, rand.New(rand.NewSource(d.cfg.Seed+12345)))
	} else {
		t, err = d.raw.SortBy(d.cfg.Parts, cols...)
	}
	if err != nil {
		return nil, err
	}
	out := *d
	out.Table = t
	out.SortCols = cols
	return &out, nil
}

// WithPartitions returns a copy of the dataset re-chunked to numParts
// partitions keeping the current layout order (Fig 8's partition-count
// sweep).
func (d *Dataset) WithPartitions(numParts int) (*Dataset, error) {
	t, err := d.Table.Repartition(numParts)
	if err != nil {
		return nil, err
	}
	out := *d
	out.Table = t
	out.cfg.Parts = numParts
	return &out, nil
}

// ByName builds a dataset by its experiment name.
func ByName(name string, cfg Config) (*Dataset, error) {
	switch name {
	case "tpch":
		return TPCHStar(cfg)
	case "tpcds":
		return TPCDSStar(cfg)
	case "aria":
		return Aria(cfg)
	case "kdd":
		return KDD(cfg)
	default:
		return nil, fmt.Errorf("dataset: unknown dataset %q (want tpch|tpcds|aria|kdd)", name)
	}
}

// Names lists the available datasets in the paper's order.
func Names() []string { return []string{"tpch", "tpcds", "aria", "kdd"} }

// finish sorts the raw ingest table into the default layout.
func finish(d *Dataset, cfg Config, b *table.Builder) (*Dataset, error) {
	raw := b.Finish()
	d.raw = raw
	d.cfg = cfg
	t, err := raw.SortBy(cfg.Parts, d.SortCols...)
	if err != nil {
		return nil, err
	}
	d.Table = t
	return d, nil
}

// zipfFloat draws a Zipf-distributed rank in [0, n) with skew ~1 (matching
// the paper's skewed TPC-H generator) and deterministic behavior.
type zipfer struct{ z *rand.Zipf }

func newZipfer(rng *rand.Rand, n int) *zipfer {
	if n < 1 {
		n = 1
	}
	// s must be > 1 for math/rand's bounded Zipf; 1.07 approximates the
	// paper's z=1 skew over finite domains.
	return &zipfer{z: rand.NewZipf(rng, 1.07, 1, uint64(n-1))}
}

func (z *zipfer) rank() int { return int(z.z.Uint64()) }
