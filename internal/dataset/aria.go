package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"ps3/internal/query"
	"ps3/internal/table"
)

// Aria generates a stand-in for Microsoft's Aria production service request
// log (§5.1.1, also used in DIFF and CoopStore). The paper highlights its
// skew: "the most popular application version out of the 167 distinct
// versions accounts for almost half of the dataset" — the generator
// reproduces exactly that (Zipf over 167 versions with ~45% top mass).
// The default layout sorts by TenantId; Fig 6's alternatives sort by
// AppInfo_Version and PipelineInfo_IngestionTime.
func Aria(cfg Config) (*Dataset, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 3))

	schema := table.MustSchema(
		table.Column{Name: "records_received_count", Kind: table.Numeric, Positive: true},
		table.Column{Name: "records_tried_to_send_count", Kind: table.Numeric, Positive: true},
		table.Column{Name: "records_sent_count", Kind: table.Numeric},
		table.Column{Name: "olsize", Kind: table.Numeric, Positive: true},
		table.Column{Name: "ol_w", Kind: table.Numeric, Positive: true},
		table.Column{Name: "infl", Kind: table.Numeric},
		table.Column{Name: "PipelineInfo_IngestionTime", Kind: table.Date},
		table.Column{Name: "TenantId", Kind: table.Categorical},
		table.Column{Name: "AppInfo_Version", Kind: table.Categorical},
		table.Column{Name: "UserInfo_TimeZone", Kind: table.Categorical},
		table.Column{Name: "DeviceInfo_NetworkType", Kind: table.Categorical},
	)
	idx := func(name string) int { return schema.ColIndex(name) }

	b, err := table.NewBuilder(schema, max(cfg.Rows/cfg.Parts, 1))
	if err != nil {
		return nil, err
	}

	const nVersions = 167
	// Version popularity: top version ≈ 45% of rows, geometric tail.
	versionWeights := make([]float64, nVersions)
	versionWeights[0] = 0.45
	rest := 0.55
	for i := 1; i < nVersions; i++ {
		w := rest * 0.08 * math.Pow(0.925, float64(i-1))
		versionWeights[i] = w
	}
	// Normalize.
	var sum float64
	for _, w := range versionWeights {
		sum += w
	}
	cum := make([]float64, nVersions)
	acc := 0.0
	for i, w := range versionWeights {
		acc += w / sum
		cum[i] = acc
	}
	pickVersion := func() int {
		r := rng.Float64()
		lo, hi := 0, nVersions-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < r {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}

	nTenants := 200
	tenantZ := newZipfer(rng, nTenants)
	timezones := []string{"UTC", "PST", "EST", "CST", "MST", "GMT", "CET", "EET",
		"IST", "JST", "KST", "AEST", "BRT", "ART", "WAT", "EAT", "MSK", "HKT",
		"SGT", "NZST", "PDT", "EDT", "CDT", "MDT", "AKST", "HST", "AST", "NST",
		"WET", "CAT"}
	networks := []string{"Wifi", "Wired", "Cellular", "Unknown"}

	num := make([]float64, schema.NumCols())
	cat := make([]string, schema.NumCols())
	const days = 30 // one month of telemetry
	for r := 0; r < cfg.Rows; r++ {
		tenant := tenantZ.rank()
		// Tenants skew their version mix: big tenants run fresher builds,
		// so the TenantId layout creates version-heterogeneous partitions.
		var version int
		if tenant < 5 && rng.Float64() < 0.7 {
			version = rng.Intn(3)
		} else {
			version = pickVersion()
		}
		ingest := float64(rng.Intn(days * 24 * 60)) // minutes within the month

		// Telemetry volumes: heavy-tailed, correlated with tenant size.
		base := math.Exp(rng.NormFloat64()*1.2 + 3 - float64(tenant)*0.005)
		received := math.Ceil(base) + 1
		tried := math.Ceil(received * (0.7 + 0.3*rng.Float64()))
		sent := math.Floor(tried * (0.8 + 0.2*rng.Float64()))
		olsize := math.Exp(rng.NormFloat64()*0.8+5) + 1
		olw := 1 + rng.Float64()*10
		infl := rng.NormFloat64() * 2

		num[idx("records_received_count")] = received
		num[idx("records_tried_to_send_count")] = tried
		num[idx("records_sent_count")] = sent
		num[idx("olsize")] = olsize
		num[idx("ol_w")] = olw
		num[idx("infl")] = infl
		num[idx("PipelineInfo_IngestionTime")] = ingest

		cat[idx("TenantId")] = fmt.Sprintf("tenant-%03d", tenant)
		cat[idx("AppInfo_Version")] = fmt.Sprintf("v2.%d.%d", version/10, version%10)
		cat[idx("UserInfo_TimeZone")] = timezones[(tenant+version)%len(timezones)]
		cat[idx("DeviceInfo_NetworkType")] = networks[rng.Intn(len(networks))]

		if err := b.Append(num, cat); err != nil {
			return nil, err
		}
	}

	d := &Dataset{
		Name:     "aria",
		SortCols: []string{"TenantId"},
		AltLayouts: [][]string{
			{"AppInfo_Version"},
			{"PipelineInfo_IngestionTime"},
		},
		Workload: query.Workload{
			GroupableCols: []string{"AppInfo_Version", "UserInfo_TimeZone",
				"DeviceInfo_NetworkType"},
			PredicateCols: []string{"records_received_count", "records_sent_count",
				"olsize", "PipelineInfo_IngestionTime", "TenantId", "AppInfo_Version",
				"DeviceInfo_NetworkType", "UserInfo_TimeZone"},
			AggCols: []string{"records_received_count", "records_tried_to_send_count",
				"records_sent_count", "olsize", "ol_w"},
		},
	}
	return finish(d, cfg, b)
}
