package dataset

import (
	"fmt"
	"math/rand"

	"ps3/internal/query"
)

// TPCHTemplate is one TPC-H query template adapted to the denormalized
// TPCH* schema and PS3's query scope (§5.5.4 / Appendix C.3). Each call to
// Instantiate draws fresh random substitution parameters, matching the
// paper's "20 random test queries per TPC-H query template".
type TPCHTemplate struct {
	Name        string
	Instantiate func(rng *rand.Rand) *query.Query
}

// TPCHTemplates returns the ten templates used in the generalization test
// (Q1,5,6,7,8,9,12,14,17,18,19 minus Q4 which needs the orders table; Q8 and
// Q14 use the CASE-as-filtered-aggregate rewrite; multiplicative aggregates
// are linearized to stay in scope).
func TPCHTemplates() []TPCHTemplate {
	nations := []string{"FRANCE", "GERMANY", "INDIA", "JAPAN", "BRAZIL", "CANADA",
		"CHINA", "RUSSIA", "EGYPT", "PERU"}
	regions := []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	modes := []string{"AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB", "REG AIR"}
	brand := func(rng *rand.Rand) string {
		return fmt.Sprintf("Brand#%d%d", rng.Intn(5)+1, rng.Intn(5)+1)
	}
	day := func(rng *rand.Rand, loYear, hiYear int) float64 {
		y := loYear + rng.Intn(hiYear-loYear+1)
		return float64((y-1992)*365 + rng.Intn(365))
	}

	return []TPCHTemplate{
		{Name: "Q1", Instantiate: func(rng *rand.Rand) *query.Query {
			cutoff := float64(6*365 + rng.Intn(300))
			return &query.Query{
				GroupBy: []string{"L_RETURNFLAG", "L_LINESTATUS"},
				Pred:    &query.Clause{Col: "L_SHIPDATE", Op: query.OpLe, Num: cutoff},
				Aggs: []query.Aggregate{
					{Kind: query.Sum, Expr: query.Col("L_QUANTITY"), Name: "sum_qty"},
					{Kind: query.Sum, Expr: query.Col("L_EXTENDEDPRICE"), Name: "sum_base_price"},
					{Kind: query.Avg, Expr: query.Col("L_DISCOUNT"), Name: "avg_disc"},
					{Kind: query.Count, Name: "count_order"},
				},
			}
		}},
		{Name: "Q5", Instantiate: func(rng *rand.Rand) *query.Query {
			lo := day(rng, 1993, 1996)
			return &query.Query{
				GroupBy: []string{"N1_NAME"},
				Pred: query.NewAnd(
					&query.Clause{Col: "R1_NAME", Op: query.OpEq, Strs: []string{regions[rng.Intn(len(regions))]}},
					&query.Clause{Col: "O_ORDERDATE", Op: query.OpGe, Num: lo},
					&query.Clause{Col: "O_ORDERDATE", Op: query.OpLt, Num: lo + 365},
				),
				Aggs: []query.Aggregate{
					{Kind: query.Sum, Expr: query.Col("L_EXTENDEDPRICE"), Name: "revenue"},
				},
			}
		}},
		{Name: "Q6", Instantiate: func(rng *rand.Rand) *query.Query {
			lo := day(rng, 1993, 1996)
			disc := 0.02 + float64(rng.Intn(7))/100
			return &query.Query{
				Pred: query.NewAnd(
					&query.Clause{Col: "L_SHIPDATE", Op: query.OpGe, Num: lo},
					&query.Clause{Col: "L_SHIPDATE", Op: query.OpLt, Num: lo + 365},
					&query.Clause{Col: "L_DISCOUNT", Op: query.OpGe, Num: disc - 0.01},
					&query.Clause{Col: "L_DISCOUNT", Op: query.OpLe, Num: disc + 0.01},
					&query.Clause{Col: "L_QUANTITY", Op: query.OpLt, Num: float64(24 + rng.Intn(10))},
				),
				Aggs: []query.Aggregate{
					{Kind: query.Sum, Expr: query.Col("L_EXTENDEDPRICE"), Name: "revenue"},
				},
			}
		}},
		{Name: "Q7", Instantiate: func(rng *rand.Rand) *query.Query {
			n1 := nations[rng.Intn(len(nations))]
			n2 := nations[rng.Intn(len(nations))]
			for n2 == n1 {
				n2 = nations[rng.Intn(len(nations))]
			}
			return &query.Query{
				GroupBy: []string{"N1_NAME", "N2_NAME", "L_YEAR"},
				Pred: query.NewAnd(
					query.NewOr(
						query.NewAnd(
							&query.Clause{Col: "N1_NAME", Op: query.OpEq, Strs: []string{n1}},
							&query.Clause{Col: "N2_NAME", Op: query.OpEq, Strs: []string{n2}},
						),
						query.NewAnd(
							&query.Clause{Col: "N1_NAME", Op: query.OpEq, Strs: []string{n2}},
							&query.Clause{Col: "N2_NAME", Op: query.OpEq, Strs: []string{n1}},
						),
					),
					&query.Clause{Col: "L_SHIPDATE", Op: query.OpGe, Num: float64(3 * 365)},
					&query.Clause{Col: "L_SHIPDATE", Op: query.OpLe, Num: float64(5 * 365)},
				),
				Aggs: []query.Aggregate{
					{Kind: query.Sum, Expr: query.Col("L_EXTENDEDPRICE"), Name: "revenue"},
				},
			}
		}},
		{Name: "Q8", Instantiate: func(rng *rand.Rand) *query.Query {
			nation := nations[rng.Intn(len(nations))]
			region := regions[rng.Intn(len(regions))]
			// Market-share rewrite: filtered SUM over the nation vs total
			// SUM, grouped by order year (CASE → aggregate over predicate).
			return &query.Query{
				GroupBy: []string{"O_YEAR"},
				Pred: query.NewAnd(
					&query.Clause{Col: "R1_NAME", Op: query.OpEq, Strs: []string{region}},
					&query.Clause{Col: "O_ORDERDATE", Op: query.OpGe, Num: float64(3 * 365)},
					&query.Clause{Col: "O_ORDERDATE", Op: query.OpLe, Num: float64(5 * 365)},
				),
				Aggs: []query.Aggregate{
					{Kind: query.Sum, Expr: query.Col("L_EXTENDEDPRICE"), Name: "total_volume"},
					{Kind: query.Sum, Expr: query.Col("L_EXTENDEDPRICE"),
						Filter: &query.Clause{Col: "N2_NAME", Op: query.OpEq, Strs: []string{nation}},
						Name:   "nation_volume"},
				},
			}
		}},
		{Name: "Q9", Instantiate: func(rng *rand.Rand) *query.Query {
			// Profit per supplier nation and year; P_TYPE LIKE '%X%'
			// approximated by an IN over matching generated types.
			part := []string{"STANDARD ANODIZED", "SMALL BURNISHED", "MEDIUM PLATED",
				"LARGE POLISHED", "ECONOMY BRUSHED", "PROMO ANODIZED"}[rng.Intn(6)]
			return &query.Query{
				GroupBy: []string{"N2_NAME", "O_YEAR"},
				Pred:    &query.Clause{Col: "P_TYPE", Op: query.OpEq, Strs: []string{part}},
				Aggs: []query.Aggregate{
					{Kind: query.Sum, Expr: query.Col("L_EXTENDEDPRICE").Sub(query.Col("L_QUANTITY")), Name: "profit"},
				},
			}
		}},
		{Name: "Q12", Instantiate: func(rng *rand.Rand) *query.Query {
			m1 := modes[rng.Intn(len(modes))]
			m2 := modes[rng.Intn(len(modes))]
			for m2 == m1 {
				m2 = modes[rng.Intn(len(modes))]
			}
			lo := day(rng, 1993, 1996)
			highPrio := &query.Clause{Col: "O_ORDERPRIORITY", Op: query.OpIn,
				Strs: []string{"1-URGENT", "2-HIGH"}}
			return &query.Query{
				GroupBy: []string{"L_SHIPMODE"},
				Pred: query.NewAnd(
					&query.Clause{Col: "L_SHIPMODE", Op: query.OpIn, Strs: []string{m1, m2}},
					&query.Clause{Col: "L_RECEIPTDATE", Op: query.OpGe, Num: lo},
					&query.Clause{Col: "L_RECEIPTDATE", Op: query.OpLt, Num: lo + 365},
				),
				Aggs: []query.Aggregate{
					{Kind: query.Count, Filter: highPrio, Name: "high_line_count"},
					{Kind: query.Count, Filter: &query.Not{Child: highPrio}, Name: "low_line_count"},
				},
			}
		}},
		{Name: "Q14", Instantiate: func(rng *rand.Rand) *query.Query {
			lo := day(rng, 1993, 1996)
			promoTypes := []string{"PROMO ANODIZED", "PROMO BURNISHED", "PROMO PLATED",
				"PROMO POLISHED", "PROMO BRUSHED"}
			return &query.Query{
				Pred: query.NewAnd(
					&query.Clause{Col: "L_SHIPDATE", Op: query.OpGe, Num: lo},
					&query.Clause{Col: "L_SHIPDATE", Op: query.OpLt, Num: lo + 30},
				),
				Aggs: []query.Aggregate{
					{Kind: query.Sum, Expr: query.Col("L_EXTENDEDPRICE"),
						Filter: &query.Clause{Col: "P_TYPE", Op: query.OpIn, Strs: promoTypes},
						Name:   "promo_revenue"},
					{Kind: query.Sum, Expr: query.Col("L_EXTENDEDPRICE"), Name: "total_revenue"},
				},
			}
		}},
		{Name: "Q17", Instantiate: func(rng *rand.Rand) *query.Query {
			containers := []string{"SM BOX", "MED BAG", "LG JAR", "JUMBO CAN", "WRAP BOX"}
			return &query.Query{
				Pred: query.NewAnd(
					&query.Clause{Col: "P_BRAND", Op: query.OpEq, Strs: []string{brand(rng)}},
					&query.Clause{Col: "P_CONTAINER", Op: query.OpEq,
						Strs: []string{containers[rng.Intn(len(containers))]}},
				),
				Aggs: []query.Aggregate{
					{Kind: query.Avg, Expr: query.Col("L_QUANTITY"), Name: "avg_qty"},
					{Kind: query.Sum, Expr: query.Col("L_EXTENDEDPRICE"), Name: "avg_yearly_base"},
				},
			}
		}},
		{Name: "Q18", Instantiate: func(rng *rand.Rand) *query.Query {
			// Large-order customers, flattened: totals per market segment
			// over high-quantity lines.
			return &query.Query{
				GroupBy: []string{"C_MKTSEGMENT"},
				Pred:    &query.Clause{Col: "L_QUANTITY", Op: query.OpGt, Num: float64(42 + rng.Intn(8))},
				Aggs: []query.Aggregate{
					{Kind: query.Sum, Expr: query.Col("L_QUANTITY"), Name: "sum_qty"},
					{Kind: query.Sum, Expr: query.Col("O_TOTALPRICE"), Name: "sum_total"},
				},
			}
		}},
		{Name: "Q19", Instantiate: func(rng *rand.Rand) *query.Query {
			// Three brand/container/quantity disjuncts — 21 clauses, which
			// triggers PS3's complex-predicate fallback (Appendix B.1).
			disjunct := func(b string, qlo float64, containers []string, sizeHi float64) query.Pred {
				return query.NewAnd(
					&query.Clause{Col: "P_BRAND", Op: query.OpEq, Strs: []string{b}},
					&query.Clause{Col: "P_CONTAINER", Op: query.OpIn, Strs: containers},
					&query.Clause{Col: "L_QUANTITY", Op: query.OpGe, Num: qlo},
					&query.Clause{Col: "L_QUANTITY", Op: query.OpLe, Num: qlo + 10},
					&query.Clause{Col: "P_SIZE", Op: query.OpGe, Num: 1},
					&query.Clause{Col: "P_SIZE", Op: query.OpLe, Num: sizeHi},
					&query.Clause{Col: "L_SHIPMODE", Op: query.OpIn, Strs: []string{"AIR", "REG AIR"}},
				)
			}
			return &query.Query{
				Pred: query.NewOr(
					disjunct(brand(rng), float64(1+rng.Intn(10)), []string{"SM BOX", "SM BAG", "SM JAR", "SM CAN"}, 5),
					disjunct(brand(rng), float64(10+rng.Intn(10)), []string{"MED BAG", "MED BOX", "MED JAR", "MED CAN"}, 10),
					disjunct(brand(rng), float64(20+rng.Intn(10)), []string{"LG BOX", "LG BAG", "LG JAR", "LG CAN"}, 15),
				),
				Aggs: []query.Aggregate{
					{Kind: query.Sum, Expr: query.Col("L_EXTENDEDPRICE"), Name: "revenue"},
				},
			}
		}},
	}
}
