package dataset

import (
	"fmt"
	"math/rand"

	"ps3/internal/query"
	"ps3/internal/table"
)

// TPCDSStar generates the denormalized catalog_sales table of §5.1.1
// (catalog_sales ⋈ item ⋈ date_dim ⋈ promotion ⋈ customer_demographics).
// The default layout sorts by (d_year, d_moy, d_dom); Fig 6's alternatives
// sort by p_promo_sk and cs_net_profit.
func TPCDSStar(cfg Config) (*Dataset, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 2))

	schema := table.MustSchema(
		table.Column{Name: "cs_quantity", Kind: table.Numeric, Positive: true},
		table.Column{Name: "cs_wholesale_cost", Kind: table.Numeric, Positive: true},
		table.Column{Name: "cs_list_price", Kind: table.Numeric, Positive: true},
		table.Column{Name: "cs_sales_price", Kind: table.Numeric, Positive: true},
		table.Column{Name: "cs_ext_discount_amt", Kind: table.Numeric},
		table.Column{Name: "cs_ext_sales_price", Kind: table.Numeric, Positive: true},
		table.Column{Name: "cs_ext_wholesale_cost", Kind: table.Numeric, Positive: true},
		table.Column{Name: "cs_ext_tax", Kind: table.Numeric},
		table.Column{Name: "cs_coupon_amt", Kind: table.Numeric},
		table.Column{Name: "cs_net_paid", Kind: table.Numeric},
		table.Column{Name: "cs_net_profit", Kind: table.Numeric},
		table.Column{Name: "p_promo_sk", Kind: table.Numeric, Positive: true},
		table.Column{Name: "p_cost", Kind: table.Numeric, Positive: true},
		table.Column{Name: "i_current_price", Kind: table.Numeric, Positive: true},
		table.Column{Name: "i_wholesale_cost", Kind: table.Numeric, Positive: true},
		table.Column{Name: "cd_dep_count", Kind: table.Numeric},
		table.Column{Name: "cd_dep_employed_count", Kind: table.Numeric},
		table.Column{Name: "d_year", Kind: table.Numeric, Positive: true},
		table.Column{Name: "d_moy", Kind: table.Numeric, Positive: true},
		table.Column{Name: "d_dom", Kind: table.Numeric, Positive: true},
		table.Column{Name: "d_date", Kind: table.Date},
		table.Column{Name: "i_category", Kind: table.Categorical},
		table.Column{Name: "i_class", Kind: table.Categorical},
		table.Column{Name: "i_brand", Kind: table.Categorical},
		table.Column{Name: "i_color", Kind: table.Categorical},
		table.Column{Name: "i_size", Kind: table.Categorical},
		table.Column{Name: "p_channel_email", Kind: table.Categorical},
		table.Column{Name: "p_channel_tv", Kind: table.Categorical},
		table.Column{Name: "p_channel_catalog", Kind: table.Categorical},
		table.Column{Name: "cd_gender", Kind: table.Categorical},
		table.Column{Name: "cd_marital_status", Kind: table.Categorical},
		table.Column{Name: "cd_education_status", Kind: table.Categorical},
		table.Column{Name: "cd_credit_rating", Kind: table.Categorical},
		table.Column{Name: "d_day_name", Kind: table.Categorical},
		table.Column{Name: "d_quarter_name", Kind: table.Categorical},
	)
	idx := func(name string) int { return schema.ColIndex(name) }

	b, err := table.NewBuilder(schema, max(cfg.Rows/cfg.Parts, 1))
	if err != nil {
		return nil, err
	}

	categories := []string{"Books", "Children", "Electronics", "Home", "Jewelry",
		"Men", "Music", "Shoes", "Sports", "Women"}
	classes := make([]string, 30)
	for i := range classes {
		classes[i] = fmt.Sprintf("class-%02d", i)
	}
	brandNames := make([]string, 50)
	for i := range brandNames {
		brandNames[i] = fmt.Sprintf("brand-%02d", i)
	}
	colors := []string{"almond", "azure", "beige", "black", "blue", "brown", "coral",
		"cream", "cyan", "gold", "green", "grey", "indigo", "ivory", "khaki",
		"lace", "lemon", "magenta", "maroon", "navy"}
	sizes := []string{"petite", "small", "medium", "large", "extra large", "N/A"}
	yn := []string{"Y", "N"}
	genders := []string{"M", "F"}
	marital := []string{"S", "M", "D", "W", "U"}
	education := []string{"Primary", "Secondary", "College", "2 yr Degree",
		"4 yr Degree", "Advanced Degree", "Unknown"}
	credit := []string{"Low Risk", "Good", "High Risk", "Unknown"}
	dayNames := []string{"Sunday", "Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday"}

	nItems := max(cfg.Rows/60, 120)
	itemZ := newZipfer(rng, nItems)
	nPromos := 300
	promoZ := newZipfer(rng, nPromos)

	num := make([]float64, schema.NumCols())
	cat := make([]string, schema.NumCols())
	for r := 0; r < cfg.Rows; r++ {
		// 5 years of daily sales; seasonality scales quantity.
		day := rng.Intn(5 * 365)
		year := 1998 + day/365
		moy := (day%365)/31 + 1
		dom := (day % 31) + 1
		item := itemZ.rank()
		promo := promoZ.rank() + 1

		price := 1 + float64(item%300) + rng.Float64()*20
		wholesale := price * (0.4 + 0.3*rng.Float64())
		qty := float64(1 + rng.Intn(100))
		salesPrice := price * (0.5 + 0.5*rng.Float64())
		ext := salesPrice * qty
		discount := 0.0
		if rng.Float64() < 0.3 {
			discount = ext * rng.Float64() * 0.3
		}
		coupon := 0.0
		if promo < 40 && rng.Float64() < 0.5 { // popular promos carry coupons
			coupon = ext * rng.Float64() * 0.2
		}
		tax := (ext - discount) * 0.08
		netPaid := ext - discount - coupon
		// Net profit correlates with item and promo: some items sell at a
		// loss, giving Fig 6's cs_net_profit layout a near-uniform spread.
		profit := netPaid - wholesale*qty

		num[idx("cs_quantity")] = qty
		num[idx("cs_wholesale_cost")] = wholesale
		num[idx("cs_list_price")] = price
		num[idx("cs_sales_price")] = salesPrice
		num[idx("cs_ext_discount_amt")] = discount
		num[idx("cs_ext_sales_price")] = ext
		num[idx("cs_ext_wholesale_cost")] = wholesale * qty
		num[idx("cs_ext_tax")] = tax
		num[idx("cs_coupon_amt")] = coupon
		num[idx("cs_net_paid")] = netPaid
		num[idx("cs_net_profit")] = profit
		num[idx("p_promo_sk")] = float64(promo)
		num[idx("p_cost")] = 500 + float64(promo%100)*10
		num[idx("i_current_price")] = price
		num[idx("i_wholesale_cost")] = wholesale
		num[idx("cd_dep_count")] = float64(rng.Intn(7))
		num[idx("cd_dep_employed_count")] = float64(rng.Intn(5))
		num[idx("d_year")] = float64(year)
		num[idx("d_moy")] = float64(moy)
		num[idx("d_dom")] = float64(dom)
		num[idx("d_date")] = float64(day)

		cat[idx("i_category")] = categories[item%len(categories)]
		cat[idx("i_class")] = classes[item%len(classes)]
		cat[idx("i_brand")] = brandNames[item%len(brandNames)]
		cat[idx("i_color")] = colors[item%len(colors)]
		cat[idx("i_size")] = sizes[item%len(sizes)]
		cat[idx("p_channel_email")] = yn[promo%2]
		cat[idx("p_channel_tv")] = yn[(promo/2)%2]
		cat[idx("p_channel_catalog")] = yn[(promo/4)%2]
		cat[idx("cd_gender")] = genders[rng.Intn(2)]
		cat[idx("cd_marital_status")] = marital[rng.Intn(len(marital))]
		cat[idx("cd_education_status")] = education[rng.Intn(len(education))]
		cat[idx("cd_credit_rating")] = credit[rng.Intn(len(credit))]
		cat[idx("d_day_name")] = dayNames[day%7]
		cat[idx("d_quarter_name")] = fmt.Sprintf("%dQ%d", year, (moy-1)/3+1)

		if err := b.Append(num, cat); err != nil {
			return nil, err
		}
	}

	d := &Dataset{
		Name:     "tpcds",
		SortCols: []string{"d_year", "d_moy", "d_dom"},
		AltLayouts: [][]string{
			{"p_promo_sk"},
			{"cs_net_profit"},
		},
		Workload: query.Workload{
			GroupableCols: []string{"i_category", "i_class", "cd_gender",
				"cd_marital_status", "cd_education_status", "d_year", "d_day_name"},
			PredicateCols: []string{"cs_quantity", "cs_sales_price", "cs_net_profit",
				"p_promo_sk", "d_year", "d_moy", "d_date", "i_category", "i_color",
				"cd_gender", "cd_education_status", "cd_credit_rating", "p_channel_email"},
			AggCols: []string{"cs_quantity", "cs_ext_sales_price", "cs_net_paid",
				"cs_net_profit", "cs_ext_discount_amt", "cs_coupon_amt"},
		},
	}
	return finish(d, cfg, b)
}
