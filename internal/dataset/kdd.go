package dataset

import (
	"math"
	"math/rand"

	"ps3/internal/query"
	"ps3/internal/table"
)

// KDD generates a stand-in for the KDD Cup'99 network intrusion dataset
// (§5.1.1): heavily skewed attack labels (smurf and neptune dominate, as in
// the real data), per-attack traffic signatures (smurf = high count ICMP
// echo floods, neptune = SYN floods with error rates ~1), and many binary
// columns (keeping AKMV sketches small, as the paper notes for KDD in
// Table 4). The default layout sorts by the `count` column; Fig 6's
// alternatives sort by (service, flag) and (src_bytes, dst_bytes).
func KDD(cfg Config) (*Dataset, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 4))

	schema := table.MustSchema(
		table.Column{Name: "duration", Kind: table.Numeric},
		table.Column{Name: "src_bytes", Kind: table.Numeric},
		table.Column{Name: "dst_bytes", Kind: table.Numeric},
		table.Column{Name: "wrong_fragment", Kind: table.Numeric},
		table.Column{Name: "urgent", Kind: table.Numeric},
		table.Column{Name: "hot", Kind: table.Numeric},
		table.Column{Name: "num_failed_logins", Kind: table.Numeric},
		table.Column{Name: "logged_in", Kind: table.Numeric},
		table.Column{Name: "num_compromised", Kind: table.Numeric},
		table.Column{Name: "root_shell", Kind: table.Numeric},
		table.Column{Name: "num_root", Kind: table.Numeric},
		table.Column{Name: "num_file_creations", Kind: table.Numeric},
		table.Column{Name: "num_shells", Kind: table.Numeric},
		table.Column{Name: "num_access_files", Kind: table.Numeric},
		table.Column{Name: "is_guest_login", Kind: table.Numeric},
		table.Column{Name: "count", Kind: table.Numeric},
		table.Column{Name: "srv_count", Kind: table.Numeric},
		table.Column{Name: "serror_rate", Kind: table.Numeric},
		table.Column{Name: "srv_serror_rate", Kind: table.Numeric},
		table.Column{Name: "rerror_rate", Kind: table.Numeric},
		table.Column{Name: "srv_rerror_rate", Kind: table.Numeric},
		table.Column{Name: "same_srv_rate", Kind: table.Numeric},
		table.Column{Name: "diff_srv_rate", Kind: table.Numeric},
		table.Column{Name: "dst_host_count", Kind: table.Numeric},
		table.Column{Name: "dst_host_srv_count", Kind: table.Numeric},
		table.Column{Name: "dst_host_same_srv_rate", Kind: table.Numeric},
		table.Column{Name: "dst_host_diff_srv_rate", Kind: table.Numeric},
		table.Column{Name: "protocol_type", Kind: table.Categorical},
		table.Column{Name: "service", Kind: table.Categorical},
		table.Column{Name: "flag", Kind: table.Categorical},
		table.Column{Name: "label", Kind: table.Categorical},
	)
	idx := func(name string) int { return schema.ColIndex(name) }

	b, err := table.NewBuilder(schema, max(cfg.Rows/cfg.Parts, 1))
	if err != nil {
		return nil, err
	}

	services := []string{"http", "smtp", "ftp", "ftp_data", "telnet", "ecr_i",
		"private", "domain_u", "pop_3", "finger", "auth", "eco_i", "other",
		"ntp_u", "IRC", "X11", "ssh", "time", "domain", "login", "imap4",
		"whois", "mtp", "gopher", "rje", "ctf", "uucp", "supdup", "link",
		"systat", "discard", "echo", "daytime", "netstat", "nntp"}
	flags := []string{"SF", "S0", "REJ", "RSTR", "RSTO", "SH", "S1", "S2", "S3", "OTH", "RSTOS0"}

	// Attack mix roughly matching KDD'99: smurf ~57%, neptune ~22%,
	// normal ~19%, tail of rare attacks.
	type attack struct {
		name string
		p    float64
	}
	attacks := []attack{
		{"smurf", 0.57}, {"neptune", 0.22}, {"normal", 0.19},
		{"back", 0.004}, {"satan", 0.003}, {"ipsweep", 0.002},
		{"portsweep", 0.002}, {"warezclient", 0.002}, {"teardrop", 0.002},
		{"pod", 0.001}, {"nmap", 0.001}, {"guess_passwd", 0.0008},
		{"buffer_overflow", 0.0005}, {"land", 0.0004}, {"warezmaster", 0.0004},
		{"imap", 0.0003}, {"rootkit", 0.0002}, {"loadmodule", 0.0002},
		{"ftp_write", 0.0002}, {"multihop", 0.0001}, {"phf", 0.0001},
		{"perl", 0.0001}, {"spy", 0.0001},
	}
	var cumP []float64
	acc := 0.0
	for _, a := range attacks {
		acc += a.p
	}
	run := 0.0
	for _, a := range attacks {
		run += a.p / acc
		cumP = append(cumP, run)
	}
	pickAttack := func() attack {
		r := rng.Float64()
		for i, c := range cumP {
			if r <= c {
				return attacks[i]
			}
		}
		return attacks[len(attacks)-1]
	}

	num := make([]float64, schema.NumCols())
	cat := make([]string, schema.NumCols())
	for r := 0; r < cfg.Rows; r++ {
		for i := range num {
			num[i] = 0
		}
		a := pickAttack()
		var service, flag, proto string
		switch a.name {
		case "smurf":
			// ICMP echo flood: high count, tiny fixed payloads.
			proto, service, flag = "icmp", "ecr_i", "SF"
			num[idx("count")] = 400 + float64(rng.Intn(112))
			num[idx("srv_count")] = num[idx("count")]
			num[idx("src_bytes")] = 1032
			num[idx("same_srv_rate")] = 1
			num[idx("dst_host_count")] = 255
			num[idx("dst_host_srv_count")] = 255
			num[idx("dst_host_same_srv_rate")] = 1
		case "neptune":
			// SYN flood: S0 flags, full error rates.
			proto, service, flag = "tcp", services[rng.Intn(8)], "S0"
			num[idx("count")] = 100 + float64(rng.Intn(400))
			num[idx("srv_count")] = math.Ceil(num[idx("count")] * (0.02 + rng.Float64()*0.1))
			num[idx("serror_rate")] = 1
			num[idx("srv_serror_rate")] = 1
			num[idx("diff_srv_rate")] = 0.05 + rng.Float64()*0.03
			num[idx("dst_host_count")] = 255
		case "normal":
			proto = []string{"tcp", "tcp", "udp", "icmp"}[rng.Intn(4)]
			service = services[rng.Intn(len(services))]
			flag = "SF"
			num[idx("duration")] = math.Floor(math.Exp(rng.NormFloat64()*1.5 + 1))
			num[idx("src_bytes")] = math.Floor(math.Exp(rng.NormFloat64()*1.8 + 5))
			num[idx("dst_bytes")] = math.Floor(math.Exp(rng.NormFloat64()*2 + 6))
			num[idx("logged_in")] = 1
			num[idx("count")] = 1 + float64(rng.Intn(30))
			num[idx("srv_count")] = 1 + float64(rng.Intn(20))
			num[idx("same_srv_rate")] = 0.7 + rng.Float64()*0.3
			num[idx("dst_host_count")] = float64(1 + rng.Intn(255))
			num[idx("dst_host_srv_count")] = float64(1 + rng.Intn(255))
			num[idx("dst_host_same_srv_rate")] = rng.Float64()
		default:
			// Rare attacks: diverse signatures with suspicious fields set.
			proto = []string{"tcp", "udp", "icmp"}[rng.Intn(3)]
			service = services[rng.Intn(len(services))]
			flag = flags[rng.Intn(len(flags))]
			num[idx("duration")] = float64(rng.Intn(2000))
			num[idx("src_bytes")] = math.Floor(math.Exp(rng.NormFloat64()*2.5 + 4))
			num[idx("dst_bytes")] = math.Floor(math.Exp(rng.NormFloat64()*2.5 + 3))
			num[idx("hot")] = float64(rng.Intn(10))
			num[idx("num_failed_logins")] = float64(rng.Intn(5))
			num[idx("num_compromised")] = float64(rng.Intn(4))
			num[idx("root_shell")] = float64(rng.Intn(2))
			num[idx("num_root")] = float64(rng.Intn(5))
			num[idx("num_file_creations")] = float64(rng.Intn(4))
			num[idx("num_shells")] = float64(rng.Intn(2))
			num[idx("num_access_files")] = float64(rng.Intn(3))
			num[idx("is_guest_login")] = float64(rng.Intn(2))
			num[idx("wrong_fragment")] = float64(rng.Intn(3))
			num[idx("urgent")] = float64(rng.Intn(2))
			num[idx("count")] = 1 + float64(rng.Intn(100))
			num[idx("srv_count")] = 1 + float64(rng.Intn(50))
			num[idx("rerror_rate")] = rng.Float64()
			num[idx("srv_rerror_rate")] = rng.Float64()
			num[idx("same_srv_rate")] = rng.Float64()
			num[idx("diff_srv_rate")] = rng.Float64()
			num[idx("dst_host_count")] = float64(1 + rng.Intn(255))
			num[idx("dst_host_srv_count")] = float64(1 + rng.Intn(255))
			num[idx("dst_host_diff_srv_rate")] = rng.Float64()
		}

		cat[idx("protocol_type")] = proto
		cat[idx("service")] = service
		cat[idx("flag")] = flag
		cat[idx("label")] = a.name

		if err := b.Append(num, cat); err != nil {
			return nil, err
		}
	}

	d := &Dataset{
		Name:     "kdd",
		SortCols: []string{"count"},
		AltLayouts: [][]string{
			{"service", "flag"},
			{"src_bytes", "dst_bytes"},
		},
		Workload: query.Workload{
			GroupableCols: []string{"protocol_type", "service", "flag", "label"},
			PredicateCols: []string{"duration", "src_bytes", "dst_bytes", "count",
				"srv_count", "serror_rate", "same_srv_rate", "dst_host_count",
				"logged_in", "protocol_type", "service", "flag", "label"},
			AggCols: []string{"duration", "src_bytes", "dst_bytes", "count",
				"srv_count", "dst_host_count", "dst_host_srv_count"},
		},
	}
	return finish(d, cfg, b)
}
