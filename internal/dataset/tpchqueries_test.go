package dataset

import (
	"math/rand"
	"testing"

	"ps3/internal/query"
)

func TestTPCHTemplatesCount(t *testing.T) {
	tpls := TPCHTemplates()
	// Appendix C.3 lists Q1,5,6,7,8,9,12,14,17,18,19 — eleven templates.
	if len(tpls) != 11 {
		t.Fatalf("%d templates, want 11 (paper Appendix A.1/C.3)", len(tpls))
	}
	seen := map[string]bool{}
	for _, tpl := range tpls {
		if tpl.Name == "" {
			t.Fatal("template with empty name")
		}
		if seen[tpl.Name] {
			t.Fatalf("duplicate template %q", tpl.Name)
		}
		seen[tpl.Name] = true
	}
}

func TestTPCHTemplatesCompileOnSchema(t *testing.T) {
	d, err := TPCHStar(Config{Rows: 2_000, Parts: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for _, tpl := range TPCHTemplates() {
		for trial := 0; trial < 5; trial++ {
			q := tpl.Instantiate(rng)
			if q == nil {
				t.Fatalf("%s: nil query", tpl.Name)
			}
			c, err := query.Compile(q, d.Table)
			if err != nil {
				t.Fatalf("%s: %v (query %v)", tpl.Name, err, q)
			}
			// Evaluating must not panic and must produce finite answers.
			total, _ := c.GroundTruth(d.Table)
			for g, vals := range c.FinalValues(total) {
				for _, v := range vals {
					if v != v { // NaN
						t.Fatalf("%s: NaN aggregate in group %q", tpl.Name, g)
					}
				}
			}
		}
	}
}

func TestTPCHTemplateInstantiationVaries(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tpl := range TPCHTemplates() {
		a := tpl.Instantiate(rng).String()
		varies := false
		for trial := 0; trial < 10; trial++ {
			if tpl.Instantiate(rng).String() != a {
				varies = true
				break
			}
		}
		if !varies {
			t.Errorf("%s: instantiation never varies; paper draws 20 random instances per template", tpl.Name)
		}
	}
}

func TestTPCHTemplatesMatchWorkloadScope(t *testing.T) {
	// Template group-by columnsets must be drawn from the TPCH* workload's
	// groupable columns (§5.5.4: "the set of aggregate functions and group by
	// columnsets are shared between the train and test set").
	d, err := TPCHStar(Config{Rows: 1_000, Parts: 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	groupable := map[string]bool{}
	for _, c := range d.Workload.GroupableCols {
		groupable[c] = true
	}
	rng := rand.New(rand.NewSource(5))
	for _, tpl := range TPCHTemplates() {
		q := tpl.Instantiate(rng)
		for _, g := range q.GroupBy {
			if !groupable[g] {
				t.Errorf("%s groups by %q which is not in the training workload", tpl.Name, g)
			}
		}
	}
}

func TestTPCHTemplateQ1HasRareGroupStructure(t *testing.T) {
	// Q1 (returnflag/linestatus groups) is the paper's best case: a small
	// number of partitions should contain rare groups. Verify the groups are
	// few and skewed on the generated data.
	d, err := TPCHStar(Config{Rows: 10_000, Parts: 25, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	var q1 *TPCHTemplate
	for i := range TPCHTemplates() {
		tpls := TPCHTemplates()
		if tpls[i].Name == "Q1" {
			q1 = &tpls[i]
			break
		}
	}
	if q1 == nil {
		t.Fatal("Q1 template missing")
	}
	q := q1.Instantiate(rand.New(rand.NewSource(7)))
	c, err := query.Compile(q, d.Table)
	if err != nil {
		t.Fatal(err)
	}
	total, _ := c.GroundTruth(d.Table)
	n := total.NumGroups()
	if n < 2 || n > 20 {
		t.Fatalf("Q1 produced %d groups; want a small grouped answer", n)
	}
}
