package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"ps3/internal/query"
	"ps3/internal/table"
)

// TPCHStar generates the denormalized, Zipf-skewed TPC-H lineitem table of
// §5.1.1 (scaled down). It reproduces the structural properties the paper's
// evaluation relies on: dates spanning seven years (sorted layout by
// L_SHIPDATE gives temporally homogeneous partitions), Zipf-skewed part and
// supplier popularity, price columns correlated with quantity and part, and
// derived year columns for TPC-H's group-bys.
func TPCHStar(cfg Config) (*Dataset, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 1))

	schema := table.MustSchema(
		table.Column{Name: "L_QUANTITY", Kind: table.Numeric, Positive: true},
		table.Column{Name: "L_EXTENDEDPRICE", Kind: table.Numeric, Positive: true},
		table.Column{Name: "L_DISCOUNT", Kind: table.Numeric},
		table.Column{Name: "L_TAX", Kind: table.Numeric},
		table.Column{Name: "L_SHIPDATE", Kind: table.Date},
		table.Column{Name: "L_COMMITDATE", Kind: table.Date},
		table.Column{Name: "L_RECEIPTDATE", Kind: table.Date},
		table.Column{Name: "O_ORDERDATE", Kind: table.Date},
		table.Column{Name: "O_TOTALPRICE", Kind: table.Numeric, Positive: true},
		table.Column{Name: "P_RETAILPRICE", Kind: table.Numeric, Positive: true},
		table.Column{Name: "P_SIZE", Kind: table.Numeric, Positive: true},
		table.Column{Name: "S_ACCTBAL", Kind: table.Numeric},
		table.Column{Name: "C_ACCTBAL", Kind: table.Numeric},
		table.Column{Name: "L_YEAR", Kind: table.Numeric, Positive: true},
		table.Column{Name: "O_YEAR", Kind: table.Numeric, Positive: true},
		table.Column{Name: "L_RETURNFLAG", Kind: table.Categorical},
		table.Column{Name: "L_LINESTATUS", Kind: table.Categorical},
		table.Column{Name: "L_SHIPMODE", Kind: table.Categorical},
		table.Column{Name: "L_SHIPINSTRUCT", Kind: table.Categorical},
		table.Column{Name: "O_ORDERSTATUS", Kind: table.Categorical},
		table.Column{Name: "O_ORDERPRIORITY", Kind: table.Categorical},
		table.Column{Name: "P_BRAND", Kind: table.Categorical},
		table.Column{Name: "P_TYPE", Kind: table.Categorical},
		table.Column{Name: "P_CONTAINER", Kind: table.Categorical},
		table.Column{Name: "C_MKTSEGMENT", Kind: table.Categorical},
		table.Column{Name: "N1_NAME", Kind: table.Categorical},
		table.Column{Name: "N2_NAME", Kind: table.Categorical},
		table.Column{Name: "R1_NAME", Kind: table.Categorical},
		table.Column{Name: "R2_NAME", Kind: table.Categorical},
	)
	idx := func(name string) int { return schema.ColIndex(name) }

	b, err := table.NewBuilder(schema, max(cfg.Rows/cfg.Parts, 1))
	if err != nil {
		return nil, err
	}

	shipModes := []string{"AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB", "REG AIR"}
	shipInstr := []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	priorities := []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	segments := []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	nations := []string{"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
		"FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN",
		"KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA",
		"VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"}
	regionOf := func(nation int) string {
		return []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}[nation%5]
	}
	brands := make([]string, 25)
	for i := range brands {
		brands[i] = fmt.Sprintf("Brand#%d%d", i/5+1, i%5+1)
	}
	types := make([]string, 30)
	syl1 := []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	syl2 := []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	for i := range types {
		types[i] = syl1[i%6] + " " + syl2[i%5]
	}
	containers := make([]string, 20)
	c1 := []string{"SM", "MED", "LG", "JUMBO", "WRAP"}
	c2 := []string{"BOX", "BAG", "JAR", "CAN"}
	for i := range containers {
		containers[i] = c1[i%5] + " " + c2[i%4]
	}

	// Zipf-skewed latent entities: parts, suppliers, customers.
	nParts := max(cfg.Rows/50, 100)
	partZ := newZipfer(rng, nParts)
	nCust := max(cfg.Rows/100, 50)
	custZ := newZipfer(rng, nCust)

	const days = 7 * 365 // 1992-01-01 .. 1998-12-31, like TPC-H
	num := make([]float64, schema.NumCols())
	cat := make([]string, schema.NumCols())
	for r := 0; r < cfg.Rows; r++ {
		// Order date uniform over the first ~6.5 years; ship within 120
		// days, commit/receipt shortly after.
		oDate := float64(rng.Intn(days - 150))
		ship := oDate + 1 + float64(rng.Intn(120))
		commit := ship + float64(rng.Intn(30)) - 15
		receipt := ship + 1 + float64(rng.Intn(30))

		part := partZ.rank()
		cust := custZ.rank()
		nation1 := cust % len(nations)
		nation2 := part % len(nations)

		qty := 1 + float64(rng.Intn(50))
		// Retail price depends on the part (skewed part popularity induces
		// price skew across partitions), grows ~12%/year, and spikes each
		// December — so the shipdate layout yields partitions of very
		// different importance to SUM aggregates, as in the paper's skewed
		// TPC-H* generator.
		growth := math.Pow(1.12, oDate/365)
		dayOfYear := oDate - 365*math.Floor(oDate/365)
		season := 1.0
		if dayOfYear > 330 {
			season = 1.8
		}
		retail := (900 + float64(part%2000) + rng.Float64()*100) * growth * season
		extPrice := qty * retail / 10
		disc := float64(rng.Intn(11)) / 100
		tax := float64(rng.Intn(9)) / 100

		// Return flag correlates with ship date, as in TPC-H: older lines
		// are resolved (R/A), recent ones pending (N).
		var retFlag, lineStatus, orderStatus string
		if ship > float64(days-400) {
			retFlag, lineStatus, orderStatus = "N", "O", "O"
		} else if rng.Float64() < 0.25 {
			retFlag, lineStatus, orderStatus = "R", "F", "F"
		} else {
			retFlag, lineStatus, orderStatus = "A", "F", "F"
		}

		num[idx("L_QUANTITY")] = qty
		num[idx("L_EXTENDEDPRICE")] = extPrice
		num[idx("L_DISCOUNT")] = disc
		num[idx("L_TAX")] = tax
		num[idx("L_SHIPDATE")] = ship
		num[idx("L_COMMITDATE")] = commit
		num[idx("L_RECEIPTDATE")] = receipt
		num[idx("O_ORDERDATE")] = oDate
		num[idx("O_TOTALPRICE")] = extPrice * (1 + rng.Float64()*3)
		num[idx("P_RETAILPRICE")] = retail
		num[idx("P_SIZE")] = 1 + float64(part%50)
		num[idx("S_ACCTBAL")] = -999 + rng.Float64()*10998
		num[idx("C_ACCTBAL")] = -999 + rng.Float64()*10998
		num[idx("L_YEAR")] = 1992 + math.Floor(ship/365)
		num[idx("O_YEAR")] = 1992 + math.Floor(oDate/365)

		cat[idx("L_RETURNFLAG")] = retFlag
		cat[idx("L_LINESTATUS")] = lineStatus
		cat[idx("L_SHIPMODE")] = shipModes[rng.Intn(len(shipModes))]
		cat[idx("L_SHIPINSTRUCT")] = shipInstr[rng.Intn(len(shipInstr))]
		cat[idx("O_ORDERSTATUS")] = orderStatus
		cat[idx("O_ORDERPRIORITY")] = priorities[rng.Intn(len(priorities))]
		cat[idx("P_BRAND")] = brands[part%len(brands)]
		cat[idx("P_TYPE")] = types[part%len(types)]
		cat[idx("P_CONTAINER")] = containers[part%len(containers)]
		cat[idx("C_MKTSEGMENT")] = segments[cust%len(segments)]
		cat[idx("N1_NAME")] = nations[nation1]
		cat[idx("N2_NAME")] = nations[nation2]
		cat[idx("R1_NAME")] = regionOf(nation1)
		cat[idx("R2_NAME")] = regionOf(nation2)

		if err := b.Append(num, cat); err != nil {
			return nil, err
		}
	}

	d := &Dataset{
		Name:     "tpch",
		SortCols: []string{"L_SHIPDATE"},
		AltLayouts: [][]string{
			{"O_ORDERDATE"},
			{"P_RETAILPRICE"},
		},
		Workload: query.Workload{
			GroupableCols: []string{"L_RETURNFLAG", "L_LINESTATUS", "L_SHIPMODE",
				"O_ORDERPRIORITY", "C_MKTSEGMENT", "N1_NAME", "N2_NAME", "R1_NAME",
				"L_YEAR", "O_YEAR"},
			PredicateCols: []string{"L_QUANTITY", "L_DISCOUNT", "L_SHIPDATE", "L_COMMITDATE",
				"O_ORDERDATE", "P_SIZE", "P_RETAILPRICE", "L_SHIPMODE", "P_BRAND",
				"C_MKTSEGMENT", "N1_NAME", "R1_NAME", "P_CONTAINER"},
			AggCols: []string{"L_QUANTITY", "L_EXTENDEDPRICE", "L_DISCOUNT", "L_TAX",
				"O_TOTALPRICE", "P_RETAILPRICE"},
		},
	}
	return finish(d, cfg, b)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
