// Package testutil holds shared test-only helpers. Nothing here is
// imported by production code.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// VerifyNoLeaks snapshots the live goroutine count and registers a cleanup
// that fails the test if the count has not settled back to the baseline
// before the grace period ends. Call it first thing in any test that
// exercises worker pools, servers, or shutdown paths:
//
//	func TestShutdown(t *testing.T) {
//		testutil.VerifyNoLeaks(t)
//		...
//	}
//
// The check polls rather than comparing instantaneously — goroutines
// legitimately take a few scheduler ticks to unwind after a Wait returns —
// and dumps all stacks on failure so the leaked goroutine is identifiable.
// Tests using it must not run in parallel with tests that spawn background
// goroutines, since the baseline is process-global.
func VerifyNoLeaks(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= base {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutine leak: %d live after grace period, baseline %d\n%s", n, base, buf)
	})
}
