package table

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Lightweight per-column block encodings. A partition loaded from an encoded
// store block keeps compressible columns in their encoded form and decodes a
// column only when something actually touches its values (NumCol/CatCol);
// predicate kernels in internal/query evaluate directly on the encoded
// representation, so a column used only for filtering is never materialized.
//
// Three encodings cover the cheap, exactness-preserving wins:
//
//   - EncBitPack (categorical): dictionary codes bit-packed at the width of
//     the block's largest code. Dictionary codes are dense, so most blocks
//     need a handful of bits instead of 32.
//   - EncRLE (categorical): run-length (value, cumulative end) pairs, chosen
//     when the block is sorted or clustered. Runs let kernels emit whole
//     selection-vector spans without touching rows.
//   - EncFoR (numeric): frame-of-reference + bit-packing. Applicable when
//     every value is an integer with |v| <= 2^53 and the block's range fits
//     53 bits: each value is stored as an unsigned delta from the block
//     minimum. Under those bounds v - min, min + delta and the packed
//     comparison constants are all exact in float64, so decoding is
//     bit-identical to the raw path by construction.
//
// Exactness argument for EncFoR: min and every value are integers of
// magnitude <= 2^53, so they are exactly representable; the delta v - min is
// an integer in [0, 2^53], also exactly representable, and IEEE-754
// subtraction of exactly-representable operands with a representable exact
// result is exact. The same holds for min + delta on decode. There is no
// rounding anywhere, which is what lets the raw path remain the frozen
// bit-identity reference.

// EncKind tags an encoded column's representation.
type EncKind uint8

const (
	// EncBitPack stores categorical dictionary codes bit-packed at a fixed
	// width.
	EncBitPack EncKind = iota + 1
	// EncRLE stores categorical codes as (value, cumulative end) runs.
	EncRLE
	// EncFoR stores integral numeric values as bit-packed deltas from the
	// block minimum (frame of reference).
	EncFoR
)

func (k EncKind) String() string {
	switch k {
	case EncBitPack:
		return "bitpack"
	case EncRLE:
		return "rle"
	case EncFoR:
		return "for"
	default:
		return fmt.Sprintf("EncKind(%d)", uint8(k))
	}
}

// MaxPackWidth bounds the bits-per-value of packed encodings so that every
// extraction is a single aligned-enough 8-byte load: width + 7 shift bits
// must fit in 64.
const MaxPackWidth = 56

// packPad is the zero padding appended to packed buffers so At can always
// load 8 bytes starting at any payload byte.
const packPad = 8

// EncodedCol is one column of a partition in encoded form. Values are
// immutable after construction; all methods are safe for concurrent use.
type EncodedCol struct {
	// Kind selects the representation.
	Kind EncKind
	// Rows is the column's row count.
	Rows int
	// Width is the bits per packed value (EncBitPack, EncFoR). May be 0 for
	// a constant column (all deltas / codes are 0).
	Width uint8
	// Min is the frame-of-reference base (EncFoR only), an integer with
	// |Min| <= 2^53.
	Min float64
	// Packed holds the bit-packed values (EncBitPack, EncFoR), padded with
	// at least packPad zero bytes beyond the payload so per-row extraction
	// is one 8-byte load.
	Packed []byte
	// RunVals / RunEnds are the RLE runs (EncRLE): RunVals[i] repeats for
	// rows [RunEnds[i-1], RunEnds[i]). RunEnds is strictly increasing and
	// ends at Rows.
	RunVals []uint32
	RunEnds []int32

	// mask selects Width bits.
	mask uint64
	// encBytes is the wire-equivalent footprint used for cache accounting.
	encBytes int
}

// packedLen returns the payload byte length of rows values at width bits.
func packedLen(rows int, width uint8) int {
	return (rows*int(width) + 7) / 8
}

// padPacked copies payload into a buffer with packPad trailing zero bytes so
// extraction loads never run past the slice.
func padPacked(payload []byte) []byte {
	out := make([]byte, len(payload)+packPad)
	copy(out, payload)
	return out
}

// NewBitPackedCol builds a bit-packed categorical column. packed must hold
// exactly packedLen(rows, width) payload bytes; it is copied.
func NewBitPackedCol(rows int, width uint8, packed []byte) (*EncodedCol, error) {
	if rows < 0 {
		return nil, fmt.Errorf("table: bit-packed column with %d rows", rows)
	}
	if width > 32 {
		return nil, fmt.Errorf("table: bit-packed dictionary codes need width <= 32, got %d", width)
	}
	if want := packedLen(rows, width); len(packed) != want {
		return nil, fmt.Errorf("table: bit-packed payload is %d bytes, %d rows at %d bits need %d",
			len(packed), rows, width, want)
	}
	e := &EncodedCol{
		Kind:     EncBitPack,
		Rows:     rows,
		Width:    width,
		Packed:   padPacked(packed),
		mask:     widthMask(width),
		encBytes: 1 + len(packed),
	}
	return e, nil
}

// NewRLECol builds a run-length categorical column. ends must be strictly
// increasing and end at rows; vals and ends must have equal length (zero
// only when rows is zero). Both slices are retained.
func NewRLECol(rows int, vals []uint32, ends []int32) (*EncodedCol, error) {
	if rows < 0 {
		return nil, fmt.Errorf("table: RLE column with %d rows", rows)
	}
	if len(vals) != len(ends) {
		return nil, fmt.Errorf("table: RLE column has %d values for %d run ends", len(vals), len(ends))
	}
	if rows == 0 {
		if len(ends) != 0 {
			return nil, fmt.Errorf("table: RLE column has %d runs for 0 rows", len(ends))
		}
	} else if len(ends) == 0 {
		return nil, fmt.Errorf("table: RLE column has no runs for %d rows", rows)
	}
	prev := int32(0)
	for i, end := range ends {
		if end <= prev {
			return nil, fmt.Errorf("table: RLE run %d ends at %d, not after %d", i, end, prev)
		}
		prev = end
	}
	if rows > 0 && int(prev) != rows {
		return nil, fmt.Errorf("table: RLE runs cover %d rows, column has %d", prev, rows)
	}
	return &EncodedCol{
		Kind:     EncRLE,
		Rows:     rows,
		RunVals:  vals,
		RunEnds:  ends,
		encBytes: 4 + 8*len(vals),
	}, nil
}

// NewFoRCol builds a frame-of-reference numeric column. min must be an
// integer with |min| <= 2^53 and width <= 53 so that every delta and
// reconstruction is exact; packed must hold exactly packedLen(rows, width)
// payload bytes and is copied.
func NewFoRCol(rows int, min float64, width uint8, packed []byte) (*EncodedCol, error) {
	if rows < 0 {
		return nil, fmt.Errorf("table: FoR column with %d rows", rows)
	}
	if width > 53 {
		return nil, fmt.Errorf("table: FoR width %d exceeds the 53-bit exactness bound", width)
	}
	if min != math.Trunc(min) || math.Abs(min) > 1<<53 {
		return nil, fmt.Errorf("table: FoR base %v is not an integer within 2^53", min)
	}
	if want := packedLen(rows, width); len(packed) != want {
		return nil, fmt.Errorf("table: FoR payload is %d bytes, %d rows at %d bits need %d",
			len(packed), rows, width, want)
	}
	return &EncodedCol{
		Kind:     EncFoR,
		Rows:     rows,
		Width:    width,
		Min:      min,
		Packed:   padPacked(packed),
		mask:     widthMask(width),
		encBytes: 1 + 8 + len(packed),
	}, nil
}

// widthMask returns a mask of width low bits.
func widthMask(width uint8) uint64 {
	if width == 0 {
		return 0
	}
	return math.MaxUint64 >> (64 - uint(width))
}

// IsNumeric reports whether the encoding carries numeric (float64) values.
func (e *EncodedCol) IsNumeric() bool { return e.Kind == EncFoR }

// EncodedBytes returns the wire-equivalent footprint of the encoded column —
// what the cache charges for keeping it resident.
func (e *EncodedCol) EncodedBytes() int { return e.encBytes }

// Mask returns the packed-value mask ((1 << Width) - 1).
func (e *EncodedCol) Mask() uint64 { return e.mask }

// At extracts the packed value of row r (EncBitPack: the dictionary code;
// EncFoR: the delta from Min). r must be in [0, Rows).
func (e *EncodedCol) At(r int) uint64 {
	bit := uint64(r) * uint64(e.Width)
	word := binary.LittleEndian.Uint64(e.Packed[bit>>3:])
	return (word >> (bit & 7)) & e.mask
}

// DecodeNum materializes an EncFoR column as float64 values.
func (e *EncodedCol) DecodeNum() []float64 {
	out := make([]float64, e.Rows)
	min := e.Min
	for r := range out {
		out[r] = min + float64(e.At(r))
	}
	return out
}

// DecodeCat materializes an EncBitPack or EncRLE column as dictionary codes.
func (e *EncodedCol) DecodeCat() []uint32 {
	out := make([]uint32, e.Rows)
	if e.Kind == EncRLE {
		start := int32(0)
		for i, v := range e.RunVals {
			end := e.RunEnds[i]
			for r := start; r < end; r++ {
				out[r] = v
			}
			start = end
		}
		return out
	}
	for r := range out {
		out[r] = uint32(e.At(r))
	}
	return out
}

// MaxCode returns the largest dictionary code a categorical encoding can
// yield, scanning the packed values (EncBitPack) or runs (EncRLE). Decoders
// use it to validate untrusted blocks against the dictionary without
// materializing the column.
func (e *EncodedCol) MaxCode() uint32 {
	var max uint32
	switch e.Kind {
	case EncRLE:
		for _, v := range e.RunVals {
			if v > max {
				max = v
			}
		}
	case EncBitPack:
		for r := 0; r < e.Rows; r++ {
			if v := uint32(e.At(r)); v > max {
				max = v
			}
		}
	}
	return max
}

// DecodeStats counts lazy column materializations — the decode work the
// encoded-space kernels exist to avoid. A store reader shares one across
// every partition it serves.
type DecodeStats struct {
	cols  atomic.Int64
	bytes atomic.Int64
}

// Add records one column materialization of the given decoded size.
func (d *DecodeStats) Add(bytes int) {
	d.cols.Add(1)
	d.bytes.Add(int64(bytes))
}

// Snapshot returns the materialized column count and decoded bytes.
func (d *DecodeStats) Snapshot() (cols, bytes int64) {
	return d.cols.Load(), d.bytes.Load()
}

// lazyCol memoizes one encoded column's materialization. The decoded slice
// is written exactly once inside the sync.Once, so concurrent NumCol/CatCol
// calls are race-free.
type lazyCol struct {
	once sync.Once
	num  []float64
	cat  []uint32
}

// MakeEncodedPartition assembles a partition whose columns are a mix of
// decoded slices and encoded columns: the decode path for store blocks that
// keep compressible columns packed. For each schema column exactly one of
// {num[c], cat[c], enc[c]} must be populated, on the side matching the
// column kind, covering exactly rows values. Encoded payloads must already
// be validated (codes in dictionary range): materialization through
// NumCol/CatCol cannot fail. ds, when non-nil, is charged for every lazy
// materialization.
func MakeEncodedPartition(s *Schema, id, rows int, num [][]float64, cat [][]uint32, enc []*EncodedCol, ds *DecodeStats) (*Partition, error) {
	if rows < 0 {
		return nil, fmt.Errorf("table: partition %d has negative row count %d", id, rows)
	}
	if len(num) != s.NumCols() || len(cat) != s.NumCols() || len(enc) != s.NumCols() {
		return nil, fmt.Errorf("table: partition %d has %d/%d/%d column entries, schema has %d",
			id, len(num), len(cat), len(enc), s.NumCols())
	}
	anyEnc := false
	for c, col := range s.Cols {
		e := enc[c]
		if e != nil {
			if len(num[c]) != 0 || len(cat[c]) != 0 {
				return nil, fmt.Errorf("table: partition %d column %q is both encoded and decoded", id, col.Name)
			}
			if e.IsNumeric() != col.IsNumeric() {
				return nil, fmt.Errorf("table: partition %d column %q: %s encoding on a %s column",
					id, col.Name, e.Kind, col.Kind)
			}
			if e.Rows != rows {
				return nil, fmt.Errorf("table: partition %d column %q encodes %d rows, partition has %d",
					id, col.Name, e.Rows, rows)
			}
			anyEnc = true
			continue
		}
		want, got := rows, len(num[c])
		other := len(cat[c])
		if !col.IsNumeric() {
			got, other = len(cat[c]), len(num[c])
		}
		if got != want || other != 0 {
			return nil, fmt.Errorf("table: partition %d column %q has %d values for %d rows",
				id, col.Name, got, want)
		}
	}
	p := &Partition{ID: id, Num: num, Cat: cat, rows: rows}
	if anyEnc {
		p.enc = enc
		p.lazy = make([]lazyCol, s.NumCols())
		p.decStats = ds
	}
	return p, nil
}
