package table

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func testSchema(t *testing.T) *Schema {
	if t != nil {
		t.Helper()
	}
	return MustSchema(
		Column{Name: "x", Kind: Numeric},
		Column{Name: "cat", Kind: Categorical},
		Column{Name: "d", Kind: Date},
	)
}

func buildTestTable(t *testing.T, rows, rowsPerPart int) *Table {
	if t != nil {
		t.Helper()
	}
	fatal := func(err error) {
		if err == nil {
			return
		}
		if t != nil {
			t.Fatal(err)
		}
		panic(err)
	}
	b, err := NewBuilder(testSchema(t), rowsPerPart)
	fatal(err)
	for i := 0; i < rows; i++ {
		num := []float64{float64(i), 0, float64(i % 7)}
		cat := []string{"", fmt.Sprintf("c%d", i%5), ""}
		fatal(b.Append(num, cat))
	}
	return b.Finish()
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(Column{Name: "a"}, Column{Name: "a"}); err == nil {
		t.Error("duplicate column names should be rejected")
	}
	if _, err := NewSchema(Column{Name: ""}); err == nil {
		t.Error("empty column name should be rejected")
	}
	s := testSchema(t)
	if got := s.ColIndex("cat"); got != 1 {
		t.Errorf("ColIndex(cat) = %d, want 1", got)
	}
	if got := s.ColIndex("nope"); got != -1 {
		t.Errorf("ColIndex(nope) = %d, want -1", got)
	}
	if got := len(s.NumericCols()); got != 2 {
		t.Errorf("NumericCols = %d, want 2 (numeric + date)", got)
	}
	if got := len(s.CategoricalCols()); got != 1 {
		t.Errorf("CategoricalCols = %d, want 1", got)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Numeric: "numeric", Categorical: "categorical", Date: "date"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestDictRoundTrip(t *testing.T) {
	d := NewDict()
	c1 := d.Code("alpha")
	c2 := d.Code("beta")
	if c1 == c2 {
		t.Fatal("distinct values got the same code")
	}
	if d.Code("alpha") != c1 {
		t.Error("re-encoding a value must return its original code")
	}
	if got := d.Value(c2); got != "beta" {
		t.Errorf("Value(%d) = %q, want beta", c2, got)
	}
	if _, ok := d.Lookup("gamma"); ok {
		t.Error("Lookup of unseen value must report absence")
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
}

func TestBuilderPartitionSizes(t *testing.T) {
	tbl := buildTestTable(t, 1050, 100)
	if got := tbl.NumParts(); got != 11 {
		t.Fatalf("NumParts = %d, want 11 (10 full + 1 partial)", got)
	}
	if got := tbl.NumRows(); got != 1050 {
		t.Fatalf("NumRows = %d, want 1050", got)
	}
	if got := tbl.Parts[10].Rows(); got != 50 {
		t.Errorf("last partition has %d rows, want 50", got)
	}
	for i, p := range tbl.Parts {
		if p.ID != i {
			t.Errorf("partition %d has ID %d", i, p.ID)
		}
	}
}

func TestBuilderRejectsBadWidth(t *testing.T) {
	b, err := NewBuilder(testSchema(t), 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Append([]float64{1}, []string{"a"}); err == nil {
		t.Error("Append with wrong row width should fail")
	}
	if _, err := NewBuilder(testSchema(t), 0); err == nil {
		t.Error("NewBuilder with non-positive rowsPerPart should fail")
	}
}

func TestReadAccounting(t *testing.T) {
	tbl := buildTestTable(t, 300, 100)
	tbl.ResetIO()
	if _, err := tbl.Read(0); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Read(2); err != nil {
		t.Fatal(err)
	}
	parts, bytesRead := tbl.IOStats()
	if parts != 2 {
		t.Errorf("IOStats parts = %d, want 2", parts)
	}
	want := int64(tbl.Parts[0].SizeBytes() + tbl.Parts[2].SizeBytes())
	if bytesRead != want {
		t.Errorf("IOStats bytes = %d, want %d", bytesRead, want)
	}
	tbl.ResetIO()
	if p, b := tbl.IOStats(); p != 0 || b != 0 {
		t.Error("ResetIO did not clear counters")
	}
	if _, err := tbl.Read(-1); err == nil {
		t.Error("Read(-1) should fail, not panic")
	}
	if _, err := tbl.Read(tbl.NumParts()); err == nil {
		t.Error("Read past the last partition should fail, not panic")
	}
}

func TestDictValueOutOfRange(t *testing.T) {
	d := NewDict()
	d.Code("only")
	if got := d.Value(7); got != "<bad code 7>" {
		t.Errorf("Value(7) = %q, want diagnostic value", got)
	}
	if got := d.Value(0); got != "only" {
		t.Errorf("Value(0) = %q, want %q", got, "only")
	}
}

func TestSizeBytes(t *testing.T) {
	tbl := buildTestTable(t, 100, 100)
	// 2 numeric cols × 8 bytes + 1 categorical × 4 bytes per row.
	want := 100 * (2*8 + 4)
	if got := tbl.Parts[0].SizeBytes(); got != want {
		t.Errorf("SizeBytes = %d, want %d", got, want)
	}
	if got := tbl.TotalBytes(); got != want {
		t.Errorf("TotalBytes = %d, want %d", got, want)
	}
}

func TestSortByNumeric(t *testing.T) {
	b, _ := NewBuilder(testSchema(t), 10)
	vals := []float64{5, 3, 9, 1, 7, 2, 8, 0, 6, 4}
	for _, v := range vals {
		_ = b.Append([]float64{v, 0, 0}, []string{"", "k", ""})
	}
	tbl := b.Finish()
	sorted, err := tbl.SortBy(2, "x")
	if err != nil {
		t.Fatal(err)
	}
	if sorted.NumParts() != 2 {
		t.Fatalf("NumParts = %d, want 2", sorted.NumParts())
	}
	var got []float64
	for _, p := range sorted.Parts {
		got = append(got, p.NumCol(0)...)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("not sorted: %v", got)
		}
	}
	if tbl.Parts[0].NumCol(0)[0] != 5 {
		t.Error("SortBy must not mutate the source table")
	}
}

func TestSortByCategorical(t *testing.T) {
	b, _ := NewBuilder(testSchema(t), 10)
	cats := []string{"pear", "apple", "mango", "apple", "fig"}
	for i, c := range cats {
		_ = b.Append([]float64{float64(i), 0, 0}, []string{"", c, ""})
	}
	tbl := b.Finish()
	sorted, err := tbl.SortBy(1, "cat")
	if err != nil {
		t.Fatal(err)
	}
	prev := ""
	for r := 0; r < sorted.Parts[0].Rows(); r++ {
		v := sorted.Dict.Value(sorted.Parts[0].CatCol(1)[r])
		if v < prev {
			t.Fatalf("categorical sort broken at row %d: %q < %q", r, v, prev)
		}
		prev = v
	}
}

func TestSortByUnknownColumn(t *testing.T) {
	tbl := buildTestTable(t, 10, 5)
	if _, err := tbl.SortBy(2, "missing"); err == nil {
		t.Error("SortBy on a missing column should fail")
	}
}

func TestShuffledPreservesMultiset(t *testing.T) {
	tbl := buildTestTable(t, 500, 50)
	shuf, err := tbl.Shuffled(7, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if shuf.NumRows() != 500 {
		t.Fatalf("shuffled table has %d rows, want 500", shuf.NumRows())
	}
	if shuf.NumParts() != 7 {
		t.Fatalf("shuffled table has %d parts, want 7", shuf.NumParts())
	}
	sumOrig, sumShuf := 0.0, 0.0
	for _, p := range tbl.Parts {
		for _, v := range p.NumCol(0) {
			sumOrig += v
		}
	}
	for _, p := range shuf.Parts {
		for _, v := range p.NumCol(0) {
			sumShuf += v
		}
	}
	if sumOrig != sumShuf {
		t.Errorf("shuffle changed content: sum %f vs %f", sumOrig, sumShuf)
	}
}

func TestRepartitionKeepsOrder(t *testing.T) {
	tbl := buildTestTable(t, 100, 10)
	re, err := tbl.Repartition(4)
	if err != nil {
		t.Fatal(err)
	}
	if re.NumParts() != 4 {
		t.Fatalf("NumParts = %d, want 4", re.NumParts())
	}
	var got []float64
	for _, p := range re.Parts {
		got = append(got, p.NumCol(0)...)
	}
	for i, v := range got {
		if v != float64(i) {
			t.Fatalf("row order changed at %d: got %v", i, v)
		}
	}
}

func TestRelayoutInvalidParts(t *testing.T) {
	tbl := buildTestTable(t, 10, 5)
	if _, err := tbl.Repartition(0); err == nil {
		t.Error("Repartition(0) should fail")
	}
	if _, err := tbl.Repartition(-3); err == nil {
		t.Error("Repartition(-3) should fail")
	}
}

func TestRelayoutEmptyTable(t *testing.T) {
	empty := &Table{Schema: testSchema(t), Dict: NewDict()}
	for name, op := range map[string]func() (*Table, error){
		"Repartition": func() (*Table, error) { return empty.Repartition(4) },
		"SortBy":      func() (*Table, error) { return empty.SortBy(4, "x") },
		"Shuffled":    func() (*Table, error) { return empty.Shuffled(4, rand.New(rand.NewSource(1))) },
	} {
		got, err := op()
		if err != nil {
			t.Fatalf("%s on empty table: %v", name, err)
		}
		if got.NumParts() != 0 || got.NumRows() != 0 {
			t.Errorf("%s on empty table: %d parts / %d rows, want 0/0", name, got.NumParts(), got.NumRows())
		}
	}
}

func TestRepartitionMorePartsThanRows(t *testing.T) {
	tbl := buildTestTable(t, 5, 5)
	re, err := tbl.Repartition(10)
	if err != nil {
		t.Fatal(err)
	}
	// Only 5 rows exist: gather drops size-zero partitions, so the result
	// has 5 single-row partitions with dense IDs.
	if re.NumParts() != 5 {
		t.Fatalf("NumParts = %d, want 5 (no empty partitions)", re.NumParts())
	}
	for i, p := range re.Parts {
		if p.Rows() != 1 {
			t.Errorf("partition %d has %d rows, want 1", i, p.Rows())
		}
		if p.ID != i {
			t.Errorf("partition %d has ID %d, want dense IDs", i, p.ID)
		}
		if p.NumCol(0)[0] != float64(i) {
			t.Errorf("partition %d holds row %v, want %d (order preserved)", i, p.NumCol(0)[0], i)
		}
	}
}

func TestSortByMorePartsThanRows(t *testing.T) {
	b, _ := NewBuilder(testSchema(t), 10)
	for _, v := range []float64{3, 1, 2} {
		_ = b.Append([]float64{v, 0, 0}, []string{"", "k", ""})
	}
	sorted, err := b.Finish().SortBy(7, "x")
	if err != nil {
		t.Fatal(err)
	}
	if sorted.NumParts() != 3 || sorted.NumRows() != 3 {
		t.Fatalf("got %d parts / %d rows, want 3/3", sorted.NumParts(), sorted.NumRows())
	}
	for i, want := range []float64{1, 2, 3} {
		if got := sorted.Parts[i].NumCol(0)[0]; got != want {
			t.Errorf("sorted partition %d = %v, want %v", i, got, want)
		}
	}
}

func TestRelayoutSingleRowPartitions(t *testing.T) {
	// Source table already at one row per partition: every relayout op must
	// survive the minimal-partition shape.
	tbl := buildTestTable(t, 6, 1)
	if tbl.NumParts() != 6 {
		t.Fatalf("fixture has %d parts, want 6", tbl.NumParts())
	}
	re, err := tbl.Repartition(2)
	if err != nil {
		t.Fatal(err)
	}
	if re.NumParts() != 2 || re.Parts[0].Rows() != 3 {
		t.Fatalf("Repartition(2) = %d parts × %d rows, want 2 × 3", re.NumParts(), re.Parts[0].Rows())
	}
	sorted, err := tbl.SortBy(6, "x")
	if err != nil {
		t.Fatal(err)
	}
	for i := range sorted.Parts {
		if got := sorted.Parts[i].NumCol(0)[0]; got != float64(i) {
			t.Errorf("sorted single-row partition %d = %v, want %d", i, got, i)
		}
	}
	shuf, err := tbl.Shuffled(6, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if shuf.NumRows() != 6 || shuf.NumParts() != 6 {
		t.Fatalf("Shuffled kept %d rows / %d parts, want 6/6", shuf.NumRows(), shuf.NumParts())
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	tbl := buildTestTable(t, 230, 60)
	var buf bytes.Buffer
	if _, err := tbl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != tbl.NumRows() || got.NumParts() != tbl.NumParts() {
		t.Fatalf("round trip: %d rows/%d parts, want %d/%d",
			got.NumRows(), got.NumParts(), tbl.NumRows(), tbl.NumParts())
	}
	for pi := range tbl.Parts {
		for r := 0; r < tbl.Parts[pi].Rows(); r++ {
			if tbl.Parts[pi].NumCol(0)[r] != got.Parts[pi].NumCol(0)[r] {
				t.Fatalf("numeric mismatch at part %d row %d", pi, r)
			}
			a := tbl.Dict.Value(tbl.Parts[pi].CatCol(1)[r])
			b := got.Dict.Value(got.Parts[pi].CatCol(1)[r])
			if a != b {
				t.Fatalf("categorical mismatch at part %d row %d: %q vs %q", pi, r, a, b)
			}
		}
	}
}

func TestWriteCSV(t *testing.T) {
	tbl := buildTestTable(t, 3, 3)
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV has %d lines, want 4 (header+3)", len(lines))
	}
	if lines[0] != "x,cat,d" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "0,c0,0" {
		t.Errorf("row 1 = %q", lines[1])
	}
}

// Property: relayout by any permutation preserves the multiset of rows.
func TestRelayoutPropertyPreservesRows(t *testing.T) {
	f := func(seed int64, partsIn uint8) bool {
		numParts := int(partsIn%20) + 1
		tbl := buildTestTable(nil, 200, 20)
		shuf, err := tbl.Shuffled(numParts, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		if shuf.NumRows() != 200 {
			return false
		}
		seen := make(map[float64]int)
		for _, p := range shuf.Parts {
			for _, v := range p.NumCol(0) {
				seen[v]++
			}
		}
		for i := 0; i < 200; i++ {
			if seen[float64(i)] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: dictionary codes round-trip for arbitrary strings.
func TestDictProperty(t *testing.T) {
	d := NewDict()
	f := func(s string) bool {
		c := d.Code(s)
		return d.Value(c) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
