package table

import (
	"encoding/gob"
	"fmt"
	"io"
	"strconv"
)

// tableWire is the serialized form of a Table.
type tableWire struct {
	Cols      []Column
	DictVals  []string
	PartsNum  [][][]float64
	PartsCat  [][][]uint32
	PartsRows []int
}

// WriteTo serializes the table to w in a self-describing binary format.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	wire := tableWire{Cols: t.Schema.Cols, DictVals: t.Dict.vals}
	for _, p := range t.Parts {
		wire.PartsNum = append(wire.PartsNum, p.Num)
		wire.PartsCat = append(wire.PartsCat, p.Cat)
		wire.PartsRows = append(wire.PartsRows, p.rows)
	}
	cw := &countingWriter{w: w}
	if err := gob.NewEncoder(cw).Encode(&wire); err != nil {
		return cw.n, fmt.Errorf("table: encode: %w", err)
	}
	return cw.n, nil
}

// ReadTable deserializes a table previously written with WriteTo.
func ReadTable(r io.Reader) (*Table, error) {
	var wire tableWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("table: decode: %w", err)
	}
	s, err := NewSchema(wire.Cols...)
	if err != nil {
		return nil, err
	}
	d := NewDict()
	for _, v := range wire.DictVals {
		d.Code(v)
	}
	t := &Table{Schema: s, Dict: d}
	for i := range wire.PartsNum {
		p := &Partition{ID: i, Num: wire.PartsNum[i], Cat: wire.PartsCat[i], rows: wire.PartsRows[i]}
		t.Parts = append(t.Parts, p)
	}
	return t, nil
}

// countingWriter tracks bytes written.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// WriteCSV emits the table as CSV (header + rows) for interop and debugging.
// Dates are written as integer day offsets.
func (t *Table) WriteCSV(w io.Writer) error {
	for i, c := range t.Schema.Cols {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, c.Name); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	buf := make([]byte, 0, 256)
	for _, p := range t.Parts {
		for r := 0; r < p.Rows(); r++ {
			buf = buf[:0]
			for ci, col := range t.Schema.Cols {
				if ci > 0 {
					buf = append(buf, ',')
				}
				if col.IsNumeric() {
					buf = strconv.AppendFloat(buf, p.Num[ci][r], 'g', -1, 64)
				} else {
					buf = append(buf, t.Dict.Value(p.Cat[ci][r])...)
				}
			}
			buf = append(buf, '\n')
			if _, err := w.Write(buf); err != nil {
				return err
			}
		}
	}
	return nil
}
