package table

import (
	"encoding/gob"
	"fmt"
	"io"
	"strconv"
)

// tableWire is the serialized form of a Table.
type tableWire struct {
	Cols      []Column
	DictVals  []string
	PartsNum  [][][]float64
	PartsCat  [][][]uint32
	PartsRows []int
}

// WriteTo serializes the table to w in a self-describing binary format.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	wire := tableWire{Cols: t.Schema.Cols, DictVals: t.Dict.vals}
	for _, p := range t.Parts {
		// DecodedCols materializes any encoded columns so the wire form
		// always carries decoded slices.
		num, cat := p.DecodedCols()
		wire.PartsNum = append(wire.PartsNum, num)
		wire.PartsCat = append(wire.PartsCat, cat)
		wire.PartsRows = append(wire.PartsRows, p.rows)
	}
	cw := &countingWriter{w: w}
	if err := gob.NewEncoder(cw).Encode(&wire); err != nil {
		return cw.n, fmt.Errorf("table: encode: %w", err)
	}
	return cw.n, nil
}

// ReadTable deserializes a table previously written with WriteTo. The wire
// data is untrusted: every partition is validated against the decoded schema
// (slice counts match the schema width, slice lengths match the row count,
// dictionary codes are in range) so a truncated or corrupted file fails here
// with an error instead of panicking later inside the vectorized kernels.
func ReadTable(r io.Reader) (*Table, error) {
	var wire tableWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("table: decode: %w", err)
	}
	s, err := NewSchema(wire.Cols...)
	if err != nil {
		return nil, err
	}
	if len(wire.PartsCat) != len(wire.PartsNum) || len(wire.PartsRows) != len(wire.PartsNum) {
		return nil, fmt.Errorf("table: corrupt file: %d numeric / %d categorical / %d row-count partition entries",
			len(wire.PartsNum), len(wire.PartsCat), len(wire.PartsRows))
	}
	d, err := DictFromValues(wire.DictVals)
	if err != nil {
		return nil, err
	}
	dictLen := uint32(d.Len())
	t := &Table{Schema: s, Dict: d}
	for i := range wire.PartsNum {
		rows := wire.PartsRows[i]
		if rows < 0 {
			return nil, fmt.Errorf("table: corrupt file: partition %d has negative row count %d", i, rows)
		}
		num, cat := wire.PartsNum[i], wire.PartsCat[i]
		if len(num) != s.NumCols() || len(cat) != s.NumCols() {
			return nil, fmt.Errorf("table: corrupt file: partition %d has %d numeric / %d categorical columns, schema has %d",
				i, len(num), len(cat), s.NumCols())
		}
		for c, col := range s.Cols {
			if col.IsNumeric() {
				if len(num[c]) != rows {
					return nil, fmt.Errorf("table: corrupt file: partition %d column %q has %d values for %d rows",
						i, col.Name, len(num[c]), rows)
				}
				if len(cat[c]) != 0 {
					return nil, fmt.Errorf("table: corrupt file: partition %d numeric column %q carries %d categorical codes",
						i, col.Name, len(cat[c]))
				}
				continue
			}
			if len(cat[c]) != rows {
				return nil, fmt.Errorf("table: corrupt file: partition %d column %q has %d codes for %d rows",
					i, col.Name, len(cat[c]), rows)
			}
			if len(num[c]) != 0 {
				return nil, fmt.Errorf("table: corrupt file: partition %d categorical column %q carries %d numeric values",
					i, col.Name, len(num[c]))
			}
			for r, code := range cat[c] {
				if code >= dictLen {
					return nil, fmt.Errorf("table: corrupt file: partition %d column %q row %d has dictionary code %d, dictionary holds %d values",
						i, col.Name, r, code, dictLen)
				}
			}
		}
		p, err := MakePartition(s, i, rows, num, cat)
		if err != nil {
			return nil, fmt.Errorf("table: corrupt file: %w", err)
		}
		t.Parts = append(t.Parts, p)
	}
	return t, nil
}

// countingWriter tracks bytes written.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// WriteCSV emits the table as CSV (header + rows) for interop and debugging.
// Dates are written as integer day offsets.
func (t *Table) WriteCSV(w io.Writer) error {
	for i, c := range t.Schema.Cols {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, c.Name); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	buf := make([]byte, 0, 256)
	for _, p := range t.Parts {
		for r := 0; r < p.Rows(); r++ {
			buf = buf[:0]
			for ci, col := range t.Schema.Cols {
				if ci > 0 {
					buf = append(buf, ',')
				}
				if col.IsNumeric() {
					buf = strconv.AppendFloat(buf, p.NumCol(ci)[r], 'g', -1, 64)
				} else {
					buf = append(buf, t.Dict.Value(p.CatCol(ci)[r])...)
				}
			}
			buf = append(buf, '\n')
			if _, err := w.Write(buf); err != nil {
				return err
			}
		}
	}
	return nil
}
