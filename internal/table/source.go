package table

import "fmt"

// PartitionSource is the seam between query execution and partition storage:
// everything a scan needs to compile queries against a dataset and fetch the
// partitions a picker selected. A *Table is the fully-resident
// implementation; internal/store's Reader is the paged, out-of-core one,
// where Read faults individual partitions in from disk through a bounded
// cache. The query layer holds sources, not tables, so serving memory scales
// with the picked set instead of the dataset.
//
// Implementations must be safe for concurrent Read calls: the parallel scan
// engine fans partition fetches out across workers.
type PartitionSource interface {
	// TableSchema returns the schema shared by every partition.
	TableSchema() *Schema
	// TableDict returns the dictionary encoding categorical columns.
	TableDict() *Dict
	// NumParts returns the number of partitions.
	NumParts() int
	// NumRows returns the total row count across partitions.
	NumRows() int
	// TotalBytes returns the full decoded storage footprint of the dataset.
	TotalBytes() int
	// Read returns partition i, charging one partition read to the I/O
	// accountant. Resident sources cannot fail; paged sources surface disk
	// and corruption errors here instead of panicking mid-scan.
	Read(i int) (*Partition, error)
	// ResetIO clears the I/O counters.
	ResetIO()
	// IOStats reports partitions and bytes read since the last ResetIO.
	IOStats() (parts int64, bytes int64)
}

// TableSchema returns the table's schema, satisfying PartitionSource (the
// Schema field itself occupies the method name).
func (t *Table) TableSchema() *Schema { return t.Schema }

// TableDict returns the table's dictionary, satisfying PartitionSource.
func (t *Table) TableDict() *Dict { return t.Dict }

// Read returns partition i, charging one partition read to the accountant.
// Query execution must access partitions through Read so that experiments
// can attribute I/O. An out-of-range index is an error, not a panic: the
// index may come from a stale or corrupted partition selection.
func (t *Table) Read(i int) (*Partition, error) {
	if i < 0 || i >= len(t.Parts) {
		return nil, fmt.Errorf("table: partition %d out of range [0, %d)", i, len(t.Parts))
	}
	p := t.Parts[i]
	t.readCount.Add(1)
	t.readBytes.Add(int64(p.SizeBytes()))
	return p, nil
}
