package table

import (
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
)

// Table is a partitioned dataset: an ordered list of immutable partitions
// sharing one schema and one categorical dictionary.
type Table struct {
	Schema *Schema
	Dict   *Dict
	Parts  []*Partition

	// readCount tracks partition reads for I/O accounting.
	readCount atomic.Int64
	readBytes atomic.Int64
}

// NumParts returns the number of partitions.
func (t *Table) NumParts() int { return len(t.Parts) }

// NumRows returns the total row count across partitions.
func (t *Table) NumRows() int {
	n := 0
	for _, p := range t.Parts {
		n += p.Rows()
	}
	return n
}

// ResetIO clears the I/O counters.
func (t *Table) ResetIO() {
	t.readCount.Store(0)
	t.readBytes.Store(0)
}

// IOStats reports partitions and bytes read since the last ResetIO.
func (t *Table) IOStats() (parts int64, bytes int64) {
	return t.readCount.Load(), t.readBytes.Load()
}

// TotalBytes returns the full storage footprint of the table.
func (t *Table) TotalBytes() int {
	n := 0
	for _, p := range t.Parts {
		n += p.SizeBytes()
	}
	return n
}

// rowRef addresses one row for re-layout operations.
type rowRef struct {
	part, row int
}

// numAt returns the numeric value of column c at row r (0 for categorical).
func numAt(p *Partition, c, r int) float64 {
	if col := p.NumCol(c); col != nil {
		return col[r]
	}
	return 0
}

// Relayout produces a new table with the same rows re-ordered by less and
// re-partitioned into numParts near-equal partitions. It is how the dataset
// generators realize the paper's "sorted by column X" and "random" layouts.
// less compares two rows given (partition, row) coordinates.
func (t *Table) Relayout(numParts int, less func(a, b rowRef) bool, shuffle *rand.Rand) (*Table, error) {
	if numParts <= 0 {
		return nil, fmt.Errorf("table: numParts must be positive, got %d", numParts)
	}
	refs := make([]rowRef, 0, t.NumRows())
	for pi, p := range t.Parts {
		for r := 0; r < p.Rows(); r++ {
			refs = append(refs, rowRef{pi, r})
		}
	}
	switch {
	case shuffle != nil:
		shuffle.Shuffle(len(refs), func(i, j int) { refs[i], refs[j] = refs[j], refs[i] })
	case less != nil:
		sort.SliceStable(refs, func(i, j int) bool { return less(refs[i], refs[j]) })
	}
	return t.gather(refs, numParts), nil
}

// SortBy returns a copy of the table sorted by the named columns (ascending,
// ties broken by later columns) and split into numParts partitions.
func (t *Table) SortBy(numParts int, cols ...string) (*Table, error) {
	idx := make([]int, 0, len(cols))
	for _, name := range cols {
		ci := t.Schema.ColIndex(name)
		if ci < 0 {
			return nil, fmt.Errorf("table: sort column %q not in schema", name)
		}
		idx = append(idx, ci)
	}
	less := func(a, b rowRef) bool {
		pa, pb := t.Parts[a.part], t.Parts[b.part]
		for _, c := range idx {
			if t.Schema.Cols[c].IsNumeric() {
				va, vb := numAt(pa, c, a.row), numAt(pb, c, b.row)
				if va != vb {
					return va < vb
				}
			} else {
				va, vb := t.Dict.Value(pa.CatCol(c)[a.row]), t.Dict.Value(pb.CatCol(c)[b.row])
				if va != vb {
					return va < vb
				}
			}
		}
		return false
	}
	return t.Relayout(numParts, less, nil)
}

// Shuffled returns a randomly re-ordered copy of the table split into
// numParts partitions, using rng for reproducibility.
func (t *Table) Shuffled(numParts int, rng *rand.Rand) (*Table, error) {
	return t.Relayout(numParts, nil, rng)
}

// Repartition keeps the current row order but re-chunks into numParts
// partitions.
func (t *Table) Repartition(numParts int) (*Table, error) {
	return t.Relayout(numParts, nil, nil)
}

// gather materializes a new table from an ordered list of row references.
func (t *Table) gather(refs []rowRef, numParts int) *Table {
	out := &Table{Schema: t.Schema, Dict: t.Dict}
	total := len(refs)
	base := total / numParts
	extra := total % numParts
	start := 0
	for pi := 0; pi < numParts && start < total; pi++ {
		size := base
		if pi < extra {
			size++
		}
		if size == 0 {
			continue
		}
		num := make([][]float64, t.Schema.NumCols())
		cat := make([][]uint32, t.Schema.NumCols())
		for c, col := range t.Schema.Cols {
			if col.IsNumeric() {
				num[c] = make([]float64, size)
			} else {
				cat[c] = make([]uint32, size)
			}
		}
		for i := 0; i < size; i++ {
			ref := refs[start+i]
			src := t.Parts[ref.part]
			for c, col := range t.Schema.Cols {
				if col.IsNumeric() {
					num[c][i] = src.NumCol(c)[ref.row]
				} else {
					cat[c][i] = src.CatCol(c)[ref.row]
				}
			}
		}
		np, err := MakePartition(t.Schema, len(out.Parts), size, num, cat)
		if err != nil {
			// Unreachable: the slices above are built to the schema's shape.
			panic(err)
		}
		out.Parts = append(out.Parts, np)
		start += size
	}
	return out
}
