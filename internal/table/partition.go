package table

import "fmt"

// Partition holds a horizontal slice of a table in columnar form. All rows of
// a partition are read together; PS3 never inspects partition contents during
// planning, only during (sampled) execution.
type Partition struct {
	// ID is the partition's position in the table's partition list.
	ID int
	// Num holds per-column numeric data; Num[c] is nil for categorical
	// columns and for encoded columns (see enc). All non-nil slices have
	// equal length. Readers that need values must go through NumCol, which
	// materializes encoded columns on demand.
	Num [][]float64
	// Cat holds per-column dictionary codes; Cat[c] is nil for numeric
	// columns and for encoded columns. Readers must go through CatCol.
	Cat [][]uint32
	// rows caches the row count.
	rows int

	// enc holds per-column encoded data for partitions built by
	// MakeEncodedPartition; enc[c] is nil for decoded columns. Num[c] and
	// Cat[c] stay permanently nil for encoded columns — the decoded slices
	// live only in lazy[c], so unsynchronized reads of the public fields
	// never race with materialization.
	enc []*EncodedCol
	// lazy memoizes per-column materialization (one sync.Once each).
	lazy []lazyCol
	// decStats, when non-nil, is charged for every lazy materialization.
	decStats *DecodeStats
}

// NewPartition allocates an empty partition for the given schema.
func NewPartition(s *Schema) *Partition {
	p := &Partition{
		Num: make([][]float64, s.NumCols()),
		Cat: make([][]uint32, s.NumCols()),
	}
	return p
}

// Rows returns the number of rows stored in the partition.
func (p *Partition) Rows() int { return p.rows }

// NumCol returns the numeric data of column c, or nil for categorical
// columns. Encoded columns are materialized on first access and memoized;
// materialization cannot fail because encoded payloads are validated at
// construction. The slice is the partition's backing store: callers (such as
// the query layer's vectorized kernels) must treat it as read-only.
func (p *Partition) NumCol(c int) []float64 {
	if v := p.Num[c]; v != nil {
		return v
	}
	if p.enc == nil {
		return nil
	}
	e := p.enc[c]
	if e == nil || !e.IsNumeric() {
		return nil
	}
	lc := &p.lazy[c]
	lc.once.Do(func() {
		lc.num = e.DecodeNum()
		if p.decStats != nil {
			p.decStats.Add(8 * len(lc.num))
		}
	})
	return lc.num
}

// CatCol returns the dictionary codes of column c, or nil for numeric
// columns, materializing encoded columns on demand like NumCol. The slice is
// the partition's backing store: callers must treat it as read-only.
func (p *Partition) CatCol(c int) []uint32 {
	if v := p.Cat[c]; v != nil {
		return v
	}
	if p.enc == nil {
		return nil
	}
	e := p.enc[c]
	if e == nil || e.IsNumeric() {
		return nil
	}
	lc := &p.lazy[c]
	lc.once.Do(func() {
		lc.cat = e.DecodeCat()
		if p.decStats != nil {
			p.decStats.Add(4 * len(lc.cat))
		}
	})
	return lc.cat
}

// Cols returns the number of columns the partition holds (equal to the
// schema's column count, counting both numeric and categorical sides).
func (p *Partition) Cols() int { return len(p.Num) }

// Decoded reports whether column c is currently held in decoded form. It is
// the sanctioned way to assert on the physical representation (tests of the
// store and the encoder care) without touching the raw fields, which stay
// nil for encoded columns until NumCol/CatCol materialize them.
func (p *Partition) Decoded(c int) bool {
	return p.Num[c] != nil || p.Cat[c] != nil
}

// DecodedCols returns the partition's columns fully decoded, one slice per
// schema column with data on the matching side: the wire form used by the
// gob serializer and by tests comparing logical contents. Encoded columns
// are materialized through the lazy accessors; decoded columns are returned
// as-is (the partition's backing store — treat as read-only).
func (p *Partition) DecodedCols() (num [][]float64, cat [][]uint32) {
	if p.enc == nil {
		return p.Num, p.Cat
	}
	num = make([][]float64, len(p.Num))
	cat = make([][]uint32, len(p.Cat))
	for c := range num {
		if e := p.enc[c]; e != nil {
			if e.IsNumeric() {
				num[c] = p.NumCol(c)
			} else {
				cat[c] = p.CatCol(c)
			}
			continue
		}
		num[c], cat[c] = p.Num[c], p.Cat[c]
	}
	return num, cat
}

// EncCol returns column c's encoded form, or nil if the column is held
// decoded. Kernels use it to evaluate predicates without materializing.
func (p *Partition) EncCol(c int) *EncodedCol {
	if p.enc == nil {
		return nil
	}
	return p.enc[c]
}

// SizeBytes estimates the decoded (logical) footprint of the partition:
// 8 bytes per numeric cell and 4 per categorical cell, whether or not a
// column is currently held encoded. Used by the logical I/O accountant so
// raw and encoded stores report comparable scan volumes.
func (p *Partition) SizeBytes() int {
	n := 0
	for _, col := range p.Num {
		n += 8 * len(col)
	}
	for _, col := range p.Cat {
		n += 4 * len(col)
	}
	for _, e := range p.enc {
		if e == nil {
			continue
		}
		if e.IsNumeric() {
			n += 8 * e.Rows
		} else {
			n += 4 * e.Rows
		}
	}
	return n
}

// EncodedSizeBytes is the resident footprint the partition cache charges:
// decoded columns at full width plus encoded columns at their wire size.
// Lazily decoded side-car slices are not re-charged; DecodeStats tracks
// them separately.
func (p *Partition) EncodedSizeBytes() int {
	n := 0
	for _, col := range p.Num {
		n += 8 * len(col)
	}
	for _, col := range p.Cat {
		n += 4 * len(col)
	}
	for _, e := range p.enc {
		if e != nil {
			n += e.EncodedBytes()
		}
	}
	return n
}

// MakePartition assembles a partition directly from decoded column data,
// validating it against the schema: the decode path for external storage
// formats (internal/store) that reconstruct partitions outside this
// package. num and cat must each have one entry per schema column, with
// data only on the matching side and every populated slice holding exactly
// rows values.
func MakePartition(s *Schema, id, rows int, num [][]float64, cat [][]uint32) (*Partition, error) {
	if rows < 0 {
		return nil, fmt.Errorf("table: partition %d has negative row count %d", id, rows)
	}
	if len(num) != s.NumCols() || len(cat) != s.NumCols() {
		return nil, fmt.Errorf("table: partition %d has %d numeric / %d categorical columns, schema has %d",
			id, len(num), len(cat), s.NumCols())
	}
	for c, col := range s.Cols {
		want, got := rows, len(num[c])
		other := len(cat[c])
		if !col.IsNumeric() {
			got, other = len(cat[c]), len(num[c])
		}
		if got != want || other != 0 {
			return nil, fmt.Errorf("table: partition %d column %q has %d values for %d rows",
				id, col.Name, got, want)
		}
	}
	return &Partition{ID: id, Num: num, Cat: cat, rows: rows}, nil
}

// checkWidth verifies the row slice matches the schema width.
func checkWidth(s *Schema, numVals []float64, catVals []uint32) error {
	if len(numVals) != s.NumCols() || len(catVals) != s.NumCols() {
		return fmt.Errorf("table: row width %d/%d does not match schema width %d",
			len(numVals), len(catVals), s.NumCols())
	}
	return nil
}

// Builder accumulates rows into partitions of a fixed target size and
// produces a Table. It is the ingest path: datasets append rows in arrival
// order, and a partition is sealed (and becomes immutable) when it reaches
// rowsPerPart rows.
type Builder struct {
	schema      *Schema
	dict        *Dict
	rowsPerPart int
	parts       []*Partition
	cur         *Partition
}

// NewBuilder returns a Builder producing partitions of rowsPerPart rows.
func NewBuilder(s *Schema, rowsPerPart int) (*Builder, error) {
	if rowsPerPart <= 0 {
		return nil, fmt.Errorf("table: rowsPerPart must be positive, got %d", rowsPerPart)
	}
	return &Builder{schema: s, dict: NewDict(), rowsPerPart: rowsPerPart}, nil
}

// Dict exposes the builder's dictionary so generators can pre-encode values.
func (b *Builder) Dict() *Dict { return b.dict }

// Schema returns the schema rows must conform to.
func (b *Builder) Schema() *Schema { return b.schema }

// Append adds one row. num[c] is consulted for numeric columns and cat[c]
// (a string) for categorical columns; the other entry is ignored.
func (b *Builder) Append(num []float64, cat []string) error {
	if len(num) != b.schema.NumCols() || len(cat) != b.schema.NumCols() {
		return fmt.Errorf("table: row width %d/%d does not match schema width %d",
			len(num), len(cat), b.schema.NumCols())
	}
	if b.cur == nil {
		b.cur = NewPartition(b.schema)
		b.cur.ID = len(b.parts)
	}
	p := b.cur
	for c, col := range b.schema.Cols {
		if col.IsNumeric() {
			p.Num[c] = append(p.Num[c], num[c])
		} else {
			p.Cat[c] = append(p.Cat[c], b.dict.Code(cat[c]))
		}
	}
	p.rows++
	if p.rows >= b.rowsPerPart {
		b.parts = append(b.parts, p)
		b.cur = nil
	}
	return nil
}

// Finish seals any pending partition and returns the completed Table. The
// builder must not be reused afterwards.
func (b *Builder) Finish() *Table {
	if b.cur != nil && b.cur.rows > 0 {
		b.parts = append(b.parts, b.cur)
		b.cur = nil
	}
	return &Table{Schema: b.schema, Dict: b.dict, Parts: b.parts}
}
