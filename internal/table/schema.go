// Package table implements the partitioned columnar storage substrate that
// PS3 runs on. It models a big-data store (SCOPE/Spark-style) where data is
// split into coarse partitions that are read all-or-nothing: the unit of I/O
// is a partition, and the engine keeps an account of how many partitions each
// query touched so experiments can report "fraction of data read".
//
// Columns are either numeric (float64; dates are stored as numeric day
// offsets) or categorical (dictionary-encoded strings). Partitions store
// columns contiguously, matching the columnar layouts the paper targets.
package table

import "fmt"

// Kind describes the storage class of a column.
type Kind uint8

const (
	// Numeric columns store float64 values (integers, floats, money).
	Numeric Kind = iota
	// Categorical columns store dictionary-encoded strings.
	Categorical
	// Date columns store day offsets as float64 but are semantically dates;
	// predicates may compare them like numerics.
	Date
)

func (k Kind) String() string {
	switch k {
	case Numeric:
		return "numeric"
	case Categorical:
		return "categorical"
	case Date:
		return "date"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Column describes one column of a schema.
type Column struct {
	Name string
	Kind Kind
	// Positive reports that a numeric column never stores values <= 0, which
	// enables the log-transformed measures of Table 2 in the paper.
	Positive bool
}

// IsNumeric reports whether the column stores float64 values (Numeric or Date).
func (c Column) IsNumeric() bool { return c.Kind == Numeric || c.Kind == Date }

// Schema is an ordered list of columns.
type Schema struct {
	Cols  []Column
	index map[string]int
}

// NewSchema builds a schema and its name index. Column names must be unique.
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{Cols: cols, index: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("table: column %d has empty name", i)
		}
		if _, dup := s.index[c.Name]; dup {
			return nil, fmt.Errorf("table: duplicate column %q", c.Name)
		}
		s.index[c.Name] = i
	}
	return s, nil
}

// MustSchema is like NewSchema but panics on error; for use in tests and
// dataset generators with static schemas.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumCols returns the number of columns.
func (s *Schema) NumCols() int { return len(s.Cols) }

// ColIndex returns the index of the named column, or -1 if absent.
func (s *Schema) ColIndex(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Col returns the column at index i.
func (s *Schema) Col(i int) Column { return s.Cols[i] }

// NumericCols returns the indexes of all numeric (incl. date) columns.
func (s *Schema) NumericCols() []int {
	var out []int
	for i, c := range s.Cols {
		if c.IsNumeric() {
			out = append(out, i)
		}
	}
	return out
}

// CategoricalCols returns the indexes of all categorical columns.
func (s *Schema) CategoricalCols() []int {
	var out []int
	for i, c := range s.Cols {
		if c.Kind == Categorical {
			out = append(out, i)
		}
	}
	return out
}
