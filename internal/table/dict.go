package table

import "fmt"

// Dict is a table-global string dictionary used to encode categorical
// columns. Codes are dense uint32 values assigned in first-seen order, so
// equality tests on categorical values reduce to integer comparisons and the
// per-partition storage is a compact []uint32.
type Dict struct {
	codes map[string]uint32
	vals  []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{codes: make(map[string]uint32)}
}

// DictFromValues rebuilds a dictionary from a decoded value list, assigning
// codes in list order. The list is untrusted wire data: duplicates are
// rejected, since a dictionary never assigns two codes to one value and
// silently deduplicating would shift every later code's meaning.
func DictFromValues(vals []string) (*Dict, error) {
	d := NewDict()
	for _, v := range vals {
		d.Code(v)
	}
	if d.Len() != len(vals) {
		return nil, fmt.Errorf("table: corrupt file: dictionary has %d entries but only %d distinct values",
			len(vals), d.Len())
	}
	return d, nil
}

// Code returns the code for v, assigning a new one if v is unseen.
func (d *Dict) Code(v string) uint32 {
	if c, ok := d.codes[v]; ok {
		return c
	}
	c := uint32(len(d.vals))
	d.codes[v] = c
	d.vals = append(d.vals, v)
	return c
}

// Lookup returns the code for v and whether it exists, without inserting.
func (d *Dict) Lookup(v string) (uint32, bool) {
	c, ok := d.codes[v]
	return c, ok
}

// Value returns the string for code c. Out-of-range codes — which can only
// come from a corrupted file or partition block — yield a bounds-checked
// diagnostic value instead of panicking, mirroring the query layer's
// GroupLabel handling: a bad code in one block must not crash a serving
// process that renders values into labels or CSV.
func (d *Dict) Value(c uint32) string {
	if int(c) >= len(d.vals) {
		return fmt.Sprintf("<bad code %d>", c)
	}
	return d.vals[c]
}

// Len returns the number of distinct values in the dictionary.
func (d *Dict) Len() int { return len(d.vals) }

// Values returns every dictionary value in code order. The slice is the
// dictionary's backing store: callers (such as the store writer persisting
// the dictionary) must treat it as read-only.
func (d *Dict) Values() []string { return d.vals }
