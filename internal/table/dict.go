package table

// Dict is a table-global string dictionary used to encode categorical
// columns. Codes are dense uint32 values assigned in first-seen order, so
// equality tests on categorical values reduce to integer comparisons and the
// per-partition storage is a compact []uint32.
type Dict struct {
	codes map[string]uint32
	vals  []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{codes: make(map[string]uint32)}
}

// Code returns the code for v, assigning a new one if v is unseen.
func (d *Dict) Code(v string) uint32 {
	if c, ok := d.codes[v]; ok {
		return c
	}
	c := uint32(len(d.vals))
	d.codes[v] = c
	d.vals = append(d.vals, v)
	return c
}

// Lookup returns the code for v and whether it exists, without inserting.
func (d *Dict) Lookup(v string) (uint32, bool) {
	c, ok := d.codes[v]
	return c, ok
}

// Value returns the string for code c. It panics on out-of-range codes,
// which indicates a corrupted table.
func (d *Dict) Value(c uint32) string { return d.vals[c] }

// Len returns the number of distinct values in the dictionary.
func (d *Dict) Len() int { return len(d.vals) }
