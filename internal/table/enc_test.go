package table

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// packValues bit-packs vals at the given width, mirroring the store writer's
// layout so constructor round-trips can be checked against known inputs.
func packValues(vals []uint64, width uint8) []byte {
	n := packedLen(len(vals), width)
	buf := make([]byte, n+8)
	for r, v := range vals {
		bit := r * int(width)
		at := bit >> 3
		cur := uint64(0)
		for i := 0; i < 8; i++ {
			cur |= uint64(buf[at+i]) << (8 * i)
		}
		cur |= v << (bit & 7)
		for i := 0; i < 8; i++ {
			buf[at+i] = byte(cur >> (8 * i))
		}
	}
	return buf[:n]
}

func TestBitPackedColRoundTrip(t *testing.T) {
	vals := []uint64{0, 5, 3, 7, 7, 1, 0, 6, 2}
	e, err := NewBitPackedCol(len(vals), 3, packValues(vals, 3))
	if err != nil {
		t.Fatal(err)
	}
	for r, v := range vals {
		if got := e.At(r); got != v {
			t.Fatalf("At(%d) = %d, want %d", r, got, v)
		}
	}
	codes := e.DecodeCat()
	for r, v := range vals {
		if codes[r] != uint32(v) {
			t.Fatalf("DecodeCat[%d] = %d, want %d", r, codes[r], v)
		}
	}
	if got := e.MaxCode(); got != 7 {
		t.Fatalf("MaxCode = %d, want 7", got)
	}
	if want := 1 + packedLen(len(vals), 3); e.EncodedBytes() != want {
		t.Fatalf("EncodedBytes = %d, want %d", e.EncodedBytes(), want)
	}
}

func TestBitPackedColZeroWidth(t *testing.T) {
	// A constant-zero column packs at width 0: no payload at all.
	e, err := NewBitPackedCol(100, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 100; r++ {
		if e.At(r) != 0 {
			t.Fatalf("At(%d) = %d, want 0", r, e.At(r))
		}
	}
	if e.MaxCode() != 0 {
		t.Fatalf("MaxCode = %d, want 0", e.MaxCode())
	}
}

func TestBitPackedColRejects(t *testing.T) {
	cases := []struct {
		name   string
		rows   int
		width  uint8
		packed []byte
		msg    string
	}{
		{"negative rows", -1, 4, nil, "rows"},
		{"width over 32", 4, 33, make([]byte, 17), "width <= 32"},
		{"payload too short", 8, 8, make([]byte, 7), "payload"},
		{"payload too long", 8, 8, make([]byte, 9), "payload"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewBitPackedCol(c.rows, c.width, c.packed)
			if err == nil {
				t.Fatal("want error")
			}
			if !strings.Contains(err.Error(), c.msg) {
				t.Fatalf("error %q does not mention %q", err, c.msg)
			}
		})
	}
}

func TestRLEColRoundTrip(t *testing.T) {
	// codes: 4 4 4 9 2 2
	e, err := NewRLECol(6, []uint32{4, 9, 2}, []int32{3, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{4, 4, 4, 9, 2, 2}
	got := e.DecodeCat()
	for r := range want {
		if got[r] != want[r] {
			t.Fatalf("DecodeCat[%d] = %d, want %d", r, got[r], want[r])
		}
	}
	if e.MaxCode() != 9 {
		t.Fatalf("MaxCode = %d, want 9", e.MaxCode())
	}
	if want := 4 + 8*3; e.EncodedBytes() != want {
		t.Fatalf("EncodedBytes = %d, want %d", e.EncodedBytes(), want)
	}
}

func TestRLEColRejects(t *testing.T) {
	cases := []struct {
		name string
		rows int
		vals []uint32
		ends []int32
		msg  string
	}{
		{"negative rows", -1, nil, nil, "rows"},
		{"length mismatch", 6, []uint32{1, 2}, []int32{6}, "values for"},
		{"runs on empty column", 0, []uint32{1}, []int32{1}, "runs for 0 rows"},
		{"no runs", 6, nil, nil, "no runs"},
		{"non-increasing ends", 6, []uint32{1, 2, 3}, []int32{3, 3, 6}, "not after"},
		{"zero first end", 6, []uint32{1, 2}, []int32{0, 6}, "not after"},
		{"runs underrun rows", 6, []uint32{1, 2}, []int32{2, 5}, "cover"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewRLECol(c.rows, c.vals, c.ends)
			if err == nil {
				t.Fatal("want error")
			}
			if !strings.Contains(err.Error(), c.msg) {
				t.Fatalf("error %q does not mention %q", err, c.msg)
			}
		})
	}
}

func TestFoRColRoundTrip(t *testing.T) {
	// Values 1000 1001 1000 1017 1004: min 1000, deltas fit 5 bits.
	deltas := []uint64{0, 1, 0, 17, 4}
	e, err := NewFoRCol(len(deltas), 1000, 5, packValues(deltas, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !e.IsNumeric() {
		t.Fatal("FoR column must report numeric")
	}
	want := []float64{1000, 1001, 1000, 1017, 1004}
	got := e.DecodeNum()
	for r := range want {
		if math.Float64bits(got[r]) != math.Float64bits(want[r]) {
			t.Fatalf("DecodeNum[%d] = %v, want %v", r, got[r], want[r])
		}
	}
}

// TestFoRColExactAtBounds pins the exactness argument at its extremes: a
// negative base, a 53-bit delta range, and values at ±2^53 all decode
// bit-identically.
func TestFoRColExactAtBounds(t *testing.T) {
	min := -float64(1 << 53)
	deltas := []uint64{0, 1, 1<<53 - 1, 1 << 53}
	// width 54 would break the bound; 1<<53 needs 54 bits, so drop it.
	deltas = deltas[:3]
	e, err := NewFoRCol(len(deltas), min, 53, packValues(deltas, 53))
	if err != nil {
		t.Fatal(err)
	}
	for r, d := range deltas {
		want := min + float64(d)
		if got := min + float64(e.At(r)); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("row %d: %v, want %v", r, got, want)
		}
	}
}

func TestFoRColRejects(t *testing.T) {
	cases := []struct {
		name   string
		rows   int
		min    float64
		width  uint8
		packed []byte
		msg    string
	}{
		{"negative rows", -1, 0, 0, nil, "rows"},
		{"width over 53", 2, 0, 54, make([]byte, 14), "53-bit"},
		{"fractional base", 2, 1.5, 4, make([]byte, 1), "integer"},
		{"base beyond 2^53", 2, float64(1 << 54), 4, make([]byte, 1), "integer"},
		{"NaN base", 2, math.NaN(), 4, make([]byte, 1), "integer"},
		{"payload too short", 8, 0, 8, make([]byte, 7), "payload"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewFoRCol(c.rows, c.min, c.width, c.packed)
			if err == nil {
				t.Fatal("want error")
			}
			if !strings.Contains(err.Error(), c.msg) {
				t.Fatalf("error %q does not mention %q", err, c.msg)
			}
		})
	}
}

func encTestSchema(t *testing.T) *Schema {
	t.Helper()
	return MustSchema(
		Column{Name: "n", Kind: Numeric},
		Column{Name: "c", Kind: Categorical},
	)
}

func TestMakeEncodedPartitionRejects(t *testing.T) {
	s := encTestSchema(t)
	forCol, err := NewFoRCol(4, 0, 2, packValues([]uint64{0, 1, 2, 3}, 2))
	if err != nil {
		t.Fatal(err)
	}
	bpCol, err := NewBitPackedCol(4, 2, packValues([]uint64{3, 0, 1, 2}, 2))
	if err != nil {
		t.Fatal(err)
	}
	shortBP, err := NewBitPackedCol(3, 2, packValues([]uint64{0, 1, 2}, 2))
	if err != nil {
		t.Fatal(err)
	}
	nums := []float64{1, 2, 3, 4}
	codes := []uint32{0, 1, 0, 1}

	cases := []struct {
		name string
		num  [][]float64
		cat  [][]uint32
		enc  []*EncodedCol
		msg  string
	}{
		{"wrong column count", [][]float64{nums}, [][]uint32{nil}, []*EncodedCol{nil}, "column entries"},
		{"both encoded and decoded", [][]float64{nums, nil}, [][]uint32{nil, nil},
			[]*EncodedCol{forCol, bpCol}, "both encoded and decoded"},
		{"numeric encoding on cat column", [][]float64{nums, nil}, [][]uint32{nil, nil},
			[]*EncodedCol{nil, forCol}, "for encoding on a categorical"},
		{"cat encoding on numeric column", [][]float64{nil, nil}, [][]uint32{nil, codes},
			[]*EncodedCol{bpCol, nil}, "bitpack encoding on a numeric"},
		{"row count mismatch", [][]float64{nums, nil}, [][]uint32{nil, nil},
			[]*EncodedCol{nil, shortBP}, "encodes 3 rows"},
		{"decoded slice too short", [][]float64{nums[:2], nil}, [][]uint32{nil, nil},
			[]*EncodedCol{nil, bpCol}, "2 values for 4 rows"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := MakeEncodedPartition(s, 0, 4, c.num, c.cat, c.enc, nil)
			if err == nil {
				t.Fatal("want error")
			}
			if !strings.Contains(err.Error(), c.msg) {
				t.Fatalf("error %q does not mention %q", err, c.msg)
			}
		})
	}
}

// TestLazyDecodeMemoizedAndCounted asserts the lazy-materialization contract:
// encoded columns stay nil in the public slices, NumCol/CatCol decode once
// (same backing slice on every call, DecodeStats charged once), and
// concurrent first touches are race-free.
func TestLazyDecodeMemoizedAndCounted(t *testing.T) {
	s := encTestSchema(t)
	const rows = 64
	deltas := make([]uint64, rows)
	codes := make([]uint64, rows)
	for r := range deltas {
		deltas[r] = uint64(r % 13)
		codes[r] = uint64(r % 5)
	}
	forCol, err := NewFoRCol(rows, 100, 4, packValues(deltas, 4))
	if err != nil {
		t.Fatal(err)
	}
	bpCol, err := NewBitPackedCol(rows, 3, packValues(codes, 3))
	if err != nil {
		t.Fatal(err)
	}
	var ds DecodeStats
	p, err := MakeEncodedPartition(s, 7, rows,
		[][]float64{nil, nil}, [][]uint32{nil, nil},
		[]*EncodedCol{forCol, bpCol}, &ds)
	if err != nil {
		t.Fatal(err)
	}
	if p.Decoded(0) || p.Decoded(1) {
		t.Fatal("encoded columns must stay nil in the public slices")
	}
	if p.EncCol(0) != forCol || p.EncCol(1) != bpCol {
		t.Fatal("EncCol must expose the encoded representation")
	}

	const goroutines = 8
	var wg sync.WaitGroup
	numViews := make([][]float64, goroutines)
	catViews := make([][]uint32, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			numViews[g] = p.NumCol(0)
			catViews[g] = p.CatCol(1)
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if &numViews[g][0] != &numViews[0][0] || &catViews[g][0] != &catViews[0][0] {
			t.Fatal("concurrent decoders got distinct materializations")
		}
	}
	for r := 0; r < rows; r++ {
		if numViews[0][r] != 100+float64(r%13) {
			t.Fatalf("NumCol[%d] = %v", r, numViews[0][r])
		}
		if catViews[0][r] != uint32(r%5) {
			t.Fatalf("CatCol[%d] = %d", r, catViews[0][r])
		}
	}
	cols, bytes := ds.Snapshot()
	if cols != 2 {
		t.Fatalf("DecodeStats cols = %d, want 2 (one per column, memoized)", cols)
	}
	if want := int64(8*rows + 4*rows); bytes != want {
		t.Fatalf("DecodeStats bytes = %d, want %d", bytes, want)
	}
	if p.NumCol(1) != nil || p.CatCol(0) != nil {
		t.Fatal("wrong-kind accessors must return nil")
	}
	// SizeBytes reports the decoded footprint; EncodedSizeBytes the resident
	// wire footprint the cache charges.
	if want := 8*rows + 4*rows; p.SizeBytes() != want {
		t.Fatalf("SizeBytes = %d, want %d", p.SizeBytes(), want)
	}
	if want := forCol.EncodedBytes() + bpCol.EncodedBytes(); p.EncodedSizeBytes() != want {
		t.Fatalf("EncodedSizeBytes = %d, want %d", p.EncodedSizeBytes(), want)
	}
}
