package table

import (
	"bytes"
	"encoding/gob"
	"io"
	"strings"
	"testing"
)

// encodeWire gob-encodes a hand-built tableWire, for corrupted-input tests.
func encodeWire(t *testing.T, wire tableWire) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&wire); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// validWire captures the wire form of a small valid table.
func validWire(t *testing.T) tableWire {
	t.Helper()
	tbl := buildTestTable(t, 20, 7)
	return tableWire{
		Cols:     tbl.Schema.Cols,
		DictVals: tbl.Dict.vals,
		PartsNum: func() [][][]float64 {
			var out [][][]float64
			for _, p := range tbl.Parts {
				num, _ := p.DecodedCols()
				out = append(out, num)
			}
			return out
		}(),
		PartsCat: func() [][][]uint32 {
			var out [][][]uint32
			for _, p := range tbl.Parts {
				_, cat := p.DecodedCols()
				out = append(out, cat)
			}
			return out
		}(),
		PartsRows: func() []int {
			var out []int
			for _, p := range tbl.Parts {
				out = append(out, p.rows)
			}
			return out
		}(),
	}
}

func TestReadTableRejectsCorruption(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*tableWire)
		msg    string
	}{
		{"partition list lengths disagree", func(w *tableWire) {
			w.PartsRows = w.PartsRows[:len(w.PartsRows)-1]
		}, "row-count partition entries"},
		{"negative rows", func(w *tableWire) {
			w.PartsRows[0] = -3
		}, "negative row count"},
		{"column count below schema width", func(w *tableWire) {
			w.PartsNum[0] = w.PartsNum[0][:1]
		}, "schema has"},
		{"numeric column truncated", func(w *tableWire) {
			w.PartsNum[0][0] = w.PartsNum[0][0][:2]
		}, "values for"},
		{"categorical column truncated", func(w *tableWire) {
			w.PartsCat[0][1] = w.PartsCat[0][1][:3]
		}, "codes for"},
		{"dictionary code out of range", func(w *tableWire) {
			w.PartsCat[0][1][0] = uint32(len(w.DictVals)) + 9
		}, "dictionary"},
		{"categorical data on numeric column", func(w *tableWire) {
			w.PartsCat[0][0] = []uint32{0, 0, 0, 0, 0, 0, 0}
		}, "carries"},
		{"numeric data on categorical column", func(w *tableWire) {
			w.PartsNum[0][1] = []float64{1, 2, 3, 4, 5, 6, 7}
		}, "carries"},
		{"duplicate column names", func(w *tableWire) {
			w.Cols[1].Name = w.Cols[0].Name
		}, "duplicate"},
		{"duplicate dictionary values", func(w *tableWire) {
			w.DictVals = append([]string(nil), w.DictVals...)
			w.DictVals[1] = w.DictVals[0]
		}, "distinct values"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			wire := validWire(t)
			c.mutate(&wire)
			_, err := ReadTable(bytes.NewReader(encodeWire(t, wire)))
			if err == nil {
				t.Fatal("want error for corrupted table file")
			}
			if !strings.Contains(err.Error(), c.msg) {
				t.Fatalf("error %q does not mention %q", err, c.msg)
			}
		})
	}
}

func TestReadTableTruncatedStream(t *testing.T) {
	tbl := buildTestTable(t, 30, 10)
	var buf bytes.Buffer
	if _, err := tbl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, n := range []int{0, 1, len(full) / 2, len(full) - 1} {
		if _, err := ReadTable(bytes.NewReader(full[:n])); err == nil {
			t.Fatalf("want error for stream truncated to %d of %d bytes", n, len(full))
		}
	}
}

func TestReadTableValidStillWorks(t *testing.T) {
	tbl := buildTestTable(t, 25, 10)
	var buf bytes.Buffer
	if _, err := tbl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != tbl.NumRows() || got.NumParts() != tbl.NumParts() {
		t.Fatalf("round trip changed shape: %d/%d rows, %d/%d parts",
			got.NumRows(), tbl.NumRows(), got.NumParts(), tbl.NumParts())
	}
}

// FuzzReadTable feeds arbitrary bytes to the decoder: it must either return
// an error or produce a table whose invariants hold — validated decode means
// full scans (WriteCSV touches every cell, including dictionary lookups)
// cannot panic.
func FuzzReadTable(f *testing.F) {
	tbl := buildTestTable(nil, 20, 7)
	var buf bytes.Buffer
	if _, err := tbl.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("not a table"))
	f.Add([]byte{})
	// A corrupted variant: flip bytes in the middle of the payload.
	mut := append([]byte(nil), valid...)
	for i := len(mut) / 2; i < len(mut)/2+8 && i < len(mut); i++ {
		mut[i] ^= 0xff
	}
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadTable(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := got.WriteCSV(io.Discard); err != nil {
			t.Fatalf("decoded table fails a full scan: %v", err)
		}
		for _, p := range got.Parts {
			_ = p.SizeBytes()
		}
	})
}
