package picker

import (
	"bytes"
	"math/rand"
	"testing"

	"ps3/internal/query"
	"ps3/internal/stats"
)

// pickAll runs one deterministic pick per example at a few budgets and
// returns the selections, for equivalence comparisons.
func pickAll(p *Picker, exs []Example, budgets []int, seed int64) [][]query.WeightedPartition {
	var out [][]query.WeightedPartition
	for qi, ex := range exs {
		for _, n := range budgets {
			rng := rand.New(rand.NewSource(seed + int64(qi)))
			out = append(out, p.Pick(ex.Query, ex.Features, n, rng))
		}
	}
	return out
}

func sameSelections(t *testing.T, a, b [][]query.WeightedPartition) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("selection counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("pick %d: %d vs %d partitions selected", i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("pick %d entry %d differs: %+v vs %+v", i, j, a[i][j], b[i][j])
			}
		}
	}
}

func TestPickerRoundTripBitIdenticalPicks(t *testing.T) {
	env := newTestEnv(t, 14, 20, Config{K: 2, Seed: 5, FeatureSelection: true, FeatureSelRestarts: 2})
	var buf bytes.Buffer
	n, err := env.p.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	back, err := ReadPicker(&buf, env.ts)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Regs) != len(env.p.Regs) {
		t.Fatalf("round trip: %d funnel stages, want %d", len(back.Regs), len(env.p.Regs))
	}
	if len(back.Excluded) != len(env.p.Excluded) {
		t.Fatalf("round trip: %d excluded kinds, want %d", len(back.Excluded), len(env.p.Excluded))
	}
	for k := range env.p.Excluded {
		if env.p.Excluded[k] != back.Excluded[k] {
			t.Fatalf("excluded kind %v lost in round trip", k)
		}
	}
	budgets := []int{2, 5, 9}
	sameSelections(t, pickAll(env.p, env.exs[:8], budgets, 41), pickAll(back, env.exs[:8], budgets, 41))
}

func TestReadPickerRejectsWrongStore(t *testing.T) {
	env := newTestEnv(t, 10, 20, Config{K: 2, Seed: 6})
	var buf bytes.Buffer
	if _, err := env.p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// An empty store has no feature space at all.
	if _, err := ReadPicker(bytes.NewReader(buf.Bytes()), &stats.TableStats{}); err == nil {
		t.Fatal("want error restoring against an empty store")
	}
	env2 := newTestEnv(t, 10, 20, Config{K: 2, Seed: 6})
	// Same schema → same dimension → accepted.
	if _, err := ReadPicker(bytes.NewReader(buf.Bytes()), env2.ts); err != nil {
		t.Fatalf("rebinding to an equal-dimension store should work: %v", err)
	}
}

func TestReadPickerRejectsGarbage(t *testing.T) {
	env := newTestEnv(t, 8, 15, Config{K: 1, Seed: 7})
	if _, err := ReadPicker(bytes.NewReader([]byte("junk")), env.ts); err == nil {
		t.Fatal("want error decoding garbage")
	}
}

func TestLSSRoundTripBitIdenticalPicks(t *testing.T) {
	env := newTestEnv(t, 12, 20, Config{Seed: 8})
	l, err := TrainLSS(env.ts, env.exs, []float64{0.1, 0.3}, 17)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := l.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLSS(&buf, env.ts)
	if err != nil {
		t.Fatal(err)
	}
	if back.DefaultStrataSize != l.DefaultStrataSize || back.Seed != l.Seed {
		t.Fatalf("round trip changed config: %+v vs %+v", back, l)
	}
	if len(back.StrataSize) != len(l.StrataSize) {
		t.Fatalf("round trip: %d strata entries, want %d", len(back.StrataSize), len(l.StrataSize))
	}
	for _, ex := range env.exs[:5] {
		for _, frac := range []float64{0.1, 0.3, 0.5} {
			a := l.Pick(ex.Features, frac, rand.New(rand.NewSource(3)))
			b := back.Pick(ex.Features, frac, rand.New(rand.NewSource(3)))
			if len(a) != len(b) {
				t.Fatalf("lss pick lengths differ: %d vs %d", len(a), len(b))
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("lss pick entry %d differs: %+v vs %+v", j, a[j], b[j])
				}
			}
		}
	}
}
