package picker

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"ps3/internal/gbt"
	"ps3/internal/stats"
)

// This file persists trained pickers. The paper trains the picker once
// offline (§2.3.1) and serves approximate queries online; persisting the
// funnel regressors, feature-selection result and LSS strata alongside the
// statistics store means a serving process cold-starts without repaying the
// one-full-scan-per-training-query offline pass. The format is versioned,
// self-describing gob, like stats/io.go.
//
// A picker is bound to a statistics store (Picker.TS); the store is
// persisted separately (stats.TableStats.WriteTo), so restore takes the
// already-restored store and re-binds to it. core.System.WriteTo bundles
// both.

// pickerWireVersion is bumped on incompatible changes to pickerWire.
const pickerWireVersion = 1

// lssWireVersion is bumped on incompatible changes to lssWire.
const lssWireVersion = 1

// pickerWire is the serialized form of a trained Picker. Excluded kinds are
// stored as a sorted slice: gob decodes empty maps as nil, and a slice keeps
// the encoding deterministic.
type pickerWire struct {
	Version    int
	Cfg        Config
	Regs       []gbt.ModelSnapshot
	Thresholds []float64
	Excluded   []stats.Kind
}

// WriteTo serializes the trained picker (config, funnel regressors with
// thresholds, and the feature-selection exclusion set) to w.
func (p *Picker) WriteTo(w io.Writer) (int64, error) {
	wire := pickerWire{
		Version:    pickerWireVersion,
		Cfg:        p.Cfg,
		Thresholds: p.Thresholds,
	}
	for _, m := range p.Regs {
		wire.Regs = append(wire.Regs, m.Snapshot())
	}
	//lint:mapiter-ok collected keys are fully sorted below before encoding
	for k := range p.Excluded {
		if p.Excluded[k] {
			wire.Excluded = append(wire.Excluded, k)
		}
	}
	sort.Slice(wire.Excluded, func(a, b int) bool { return wire.Excluded[a] < wire.Excluded[b] })
	cw := &countingWriter{w: w}
	if err := gob.NewEncoder(cw).Encode(&wire); err != nil {
		return cw.n, fmt.Errorf("picker: encode: %w", err)
	}
	return cw.n, nil
}

// ReadPicker deserializes a picker written with WriteTo and binds it to ts,
// the statistics store it was trained against. Funnel models are validated
// against the store's feature dimension, so a picker cannot be rebound to a
// store with a different feature space.
func ReadPicker(r io.Reader, ts *stats.TableStats) (*Picker, error) {
	if ts == nil || ts.Space == nil {
		return nil, fmt.Errorf("picker: cannot restore against a nil or spaceless statistics store")
	}
	var wire pickerWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("picker: decode: %w", err)
	}
	if wire.Version != pickerWireVersion {
		return nil, fmt.Errorf("picker: snapshot version %d, this build reads %d", wire.Version, pickerWireVersion)
	}
	if len(wire.Thresholds) != len(wire.Regs) {
		return nil, fmt.Errorf("picker: corrupt snapshot: %d thresholds for %d funnel stages",
			len(wire.Thresholds), len(wire.Regs))
	}
	p := &Picker{Cfg: wire.Cfg, TS: ts, Thresholds: wire.Thresholds, Excluded: map[stats.Kind]bool{}}
	for stage, ms := range wire.Regs {
		m, err := gbt.FromSnapshot(ms)
		if err != nil {
			return nil, fmt.Errorf("picker: funnel stage %d: %w", stage, err)
		}
		if m.Dim() != ts.Space.Dim() {
			return nil, fmt.Errorf("picker: funnel stage %d was trained on %d features, store has %d",
				stage, m.Dim(), ts.Space.Dim())
		}
		p.Regs = append(p.Regs, m)
	}
	for _, k := range wire.Excluded {
		if !k.Valid() {
			return nil, fmt.Errorf("picker: corrupt snapshot: unknown excluded feature kind %d", k)
		}
		p.Excluded[k] = true
	}
	return p, nil
}

// lssWire is the serialized form of a trained LSS baseline. The per-budget
// strata sizes are stored as sorted parallel slices for a deterministic
// encoding.
type lssWire struct {
	Version           int
	Model             gbt.ModelSnapshot
	BudgetKeys        []int
	StrataSizes       []int
	DefaultStrataSize int
	Seed              int64
}

// WriteTo serializes the trained LSS baseline (contribution regressor and
// swept per-budget strata sizes) to w.
func (l *LSS) WriteTo(w io.Writer) (int64, error) {
	wire := lssWire{
		Version:           lssWireVersion,
		Model:             l.Model.Snapshot(),
		DefaultStrataSize: l.DefaultStrataSize,
		Seed:              l.Seed,
	}
	for k := range l.StrataSize { //lint:mapiter-ok collected keys are fully sorted below before encoding
		wire.BudgetKeys = append(wire.BudgetKeys, k)
	}
	sort.Ints(wire.BudgetKeys)
	for _, k := range wire.BudgetKeys {
		wire.StrataSizes = append(wire.StrataSizes, l.StrataSize[k])
	}
	cw := &countingWriter{w: w}
	if err := gob.NewEncoder(cw).Encode(&wire); err != nil {
		return cw.n, fmt.Errorf("picker: encode lss: %w", err)
	}
	return cw.n, nil
}

// ReadLSS deserializes an LSS baseline written with WriteTo and binds it to
// ts, the statistics store it was trained against.
func ReadLSS(r io.Reader, ts *stats.TableStats) (*LSS, error) {
	if ts == nil || ts.Space == nil {
		return nil, fmt.Errorf("picker: cannot restore lss against a nil or spaceless statistics store")
	}
	var wire lssWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("picker: decode lss: %w", err)
	}
	if wire.Version != lssWireVersion {
		return nil, fmt.Errorf("picker: lss snapshot version %d, this build reads %d", wire.Version, lssWireVersion)
	}
	if len(wire.BudgetKeys) != len(wire.StrataSizes) {
		return nil, fmt.Errorf("picker: corrupt lss snapshot: %d budget keys for %d strata sizes",
			len(wire.BudgetKeys), len(wire.StrataSizes))
	}
	m, err := gbt.FromSnapshot(wire.Model)
	if err != nil {
		return nil, fmt.Errorf("picker: lss regressor: %w", err)
	}
	if m.Dim() != ts.Space.Dim() {
		return nil, fmt.Errorf("picker: lss regressor was trained on %d features, store has %d",
			m.Dim(), ts.Space.Dim())
	}
	l := &LSS{
		TS:                ts,
		Model:             m,
		StrataSize:        make(map[int]int, len(wire.BudgetKeys)),
		DefaultStrataSize: wire.DefaultStrataSize,
		Seed:              wire.Seed,
	}
	for i, k := range wire.BudgetKeys {
		l.StrataSize[k] = wire.StrataSizes[i]
	}
	return l, nil
}

// countingWriter tracks bytes written.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
