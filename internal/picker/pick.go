package picker

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"ps3/internal/cluster"
	"ps3/internal/query"
	"ps3/internal/stats"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// clusterGreedy adapts cluster.GreedyFeatureSelection for the trainer.
func clusterGreedy(candidates []int, eval func(map[int]bool) float64, restarts int, rng *rand.Rand) []int {
	return cluster.GreedyFeatureSelection(candidates, eval, restarts, rng)
}

// PickStats reports where picking time went (Table 5's overhead metrics).
type PickStats struct {
	Total   time.Duration
	Cluster time.Duration
}

// Pick runs Algorithm 1: outliers → importance funnel → α-decayed budget
// allocation → per-group clustering selection. features is the raw N×M
// matrix for q from stats.TableStats.Features; budget n is the number of
// partitions to read. The returned weights combine per §2.4.
func (p *Picker) Pick(q *query.Query, features [][]float64, n int, rng *rand.Rand) []query.WeightedPartition {
	sel, _ := p.PickWithStats(q, features, n, rng)
	return sel
}

// PickWithStats is Pick with timing instrumentation.
func (p *Picker) PickWithStats(q *query.Query, features [][]float64, n int, rng *rand.Rand) ([]query.WeightedPartition, PickStats) {
	var st PickStats
	start := time.Now()
	sel := p.pick(q, features, n, rng, &st)
	st.Total = time.Since(start)
	return sel, st
}

func (p *Picker) pick(q *query.Query, features [][]float64, n int, rng *rand.Rand, st *PickStats) []query.WeightedPartition {
	total := len(features)
	if n >= total {
		// Budget covers everything: exact answer, weight 1 each.
		sel := make([]query.WeightedPartition, total)
		for i := range sel {
			sel[i] = query.WeightedPartition{Part: i, Weight: 1}
		}
		return sel
	}
	if n <= 0 {
		return nil
	}
	if rng == nil {
		rng = newRand(p.Cfg.Seed)
	}

	var selection []query.WeightedPartition

	// 1. Outliers (§4.4): partitions with rare group-by bitmap signatures
	// are evaluated exactly, weight 1, consuming up to OutlierBudgetFrac of
	// the budget.
	inliers := allParts(total)
	if !p.Cfg.DisableOutlier {
		outliers, rest := p.findOutliers(q, total)
		budgetCap := int(math.Floor(p.Cfg.OutlierBudgetFrac * float64(n)))
		if len(outliers) > budgetCap {
			outliers = outliers[:budgetCap]
			rest = nil // recompute below
		}
		if rest == nil {
			inOut := make(map[int]bool, len(outliers))
			for _, o := range outliers {
				inOut[o] = true
			}
			rest = rest[:0]
			for i := 0; i < total; i++ {
				if !inOut[i] {
					rest = append(rest, i)
				}
			}
		}
		for _, o := range outliers {
			selection = append(selection, query.WeightedPartition{Part: o, Weight: 1})
		}
		inliers = rest
	}
	budget := n - len(selection)
	if budget <= 0 {
		return selection
	}

	// 2. Predicate filter: keep only partitions that may contain matching
	// rows (selectivity_upper > 0; perfect recall per §3.2). Filtered-out
	// partitions contribute nothing and are skipped entirely.
	upSlot, _, _, _ := p.TS.Space.SelectivitySlots()
	var candidates []int
	for _, i := range inliers {
		if features[i][upSlot] > 0 {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return selection
	}
	if budget >= len(candidates) {
		for _, i := range candidates {
			selection = append(selection, query.WeightedPartition{Part: i, Weight: 1})
		}
		return selection
	}

	// 3. Importance funnel (Algorithm 2), least-important group first.
	groups := p.importanceGroups(features, candidates)

	// 4. Allocate budget across groups with rate decaying by α from more to
	// less important groups.
	alloc := allocateSamples(groups, budget, p.Cfg.Alpha)

	// 5. Select within each group via clustering (or random fallback).
	for gi, g := range groups {
		ni := alloc[gi]
		if ni <= 0 || len(g) == 0 {
			continue
		}
		if ni >= len(g) {
			for _, i := range g {
				selection = append(selection, query.WeightedPartition{Part: i, Weight: 1})
			}
			continue
		}
		if p.Cfg.DisableCluster || tooComplex(q, p.Cfg.MaxPredClauses) {
			selection = append(selection, randomSelect(g, ni, rng)...)
			continue
		}
		cstart := time.Now()
		selection = append(selection, p.clusterSelect(features, g, ni, p.Excluded, rng)...)
		st.Cluster += time.Since(cstart)
	}
	return selection
}

// tooComplex reports whether the predicate exceeds the clause budget beyond
// which clustering features stop being representative (Appendix B.1).
func tooComplex(q *query.Query, maxClauses int) bool {
	return len(query.Clauses(q.Pred)) > maxClauses
}

// findOutliers groups partitions by their group-by-column occurrence
// bitmaps and flags partitions in small groups (absolute < OutlierAbsSize
// and relative < OutlierRelSize × largest). Returns (outliers sorted by
// ascending group size, remaining partitions).
func (p *Picker) findOutliers(q *query.Query, total int) (outliers, rest []int) {
	if len(q.GroupBy) == 0 {
		return nil, allParts(total)
	}
	// Bitmap-bearing group-by columns.
	var cols []int
	for _, name := range q.GroupBy {
		ci := p.TS.Schema.ColIndex(name)
		if ci < 0 {
			continue
		}
		if _, ok := p.TS.GlobalHH[ci]; ok {
			cols = append(cols, ci)
		}
	}
	if len(cols) == 0 {
		return nil, allParts(total)
	}
	type groupInfo struct {
		parts []int
	}
	groupsBySig := make(map[uint64]*groupInfo)
	for i := 0; i < total; i++ {
		var sig uint64
		for _, ci := range cols {
			sig = sig*1000003 + uint64(p.TS.Parts[i].Bitmap[ci]) + 1
		}
		g, ok := groupsBySig[sig]
		if !ok {
			g = &groupInfo{}
			groupsBySig[sig] = g
		}
		g.parts = append(g.parts, i)
	}
	largest := 0
	for _, g := range groupsBySig {
		if len(g.parts) > largest {
			largest = len(g.parts)
		}
	}
	var outGroups [][]int
	for _, g := range groupsBySig {
		if len(g.parts) < p.Cfg.OutlierAbsSize &&
			float64(len(g.parts)) < p.Cfg.OutlierRelSize*float64(largest) {
			outGroups = append(outGroups, g.parts)
		}
	}
	sort.Slice(outGroups, func(a, b int) bool {
		if len(outGroups[a]) != len(outGroups[b]) {
			return len(outGroups[a]) < len(outGroups[b])
		}
		return outGroups[a][0] < outGroups[b][0]
	})
	isOutlier := make(map[int]bool)
	for _, g := range outGroups {
		for _, i := range g {
			outliers = append(outliers, i)
			isOutlier[i] = true
		}
	}
	for i := 0; i < total; i++ {
		if !isOutlier[i] {
			rest = append(rest, i)
		}
	}
	return outliers, rest
}

// importanceGroups runs the funnel (Algorithm 2): candidates that pass more
// regressors advance further. The result is ordered least → most important.
func (p *Picker) importanceGroups(features [][]float64, candidates []int) [][]int {
	if p.Cfg.DisableRegressor || len(p.Regs) == 0 {
		return [][]int{candidates}
	}
	groups := [][]int{candidates}
	for stage, reg := range p.Regs {
		last := groups[len(groups)-1]
		var stay, advance []int
		for _, i := range last {
			if reg.Predict(features[i]) > p.Thresholds[stage] {
				advance = append(advance, i)
			} else {
				stay = append(stay, i)
			}
		}
		if len(advance) == 0 {
			break
		}
		groups[len(groups)-1] = stay
		groups = append(groups, advance)
	}
	// Drop empty groups.
	out := groups[:0]
	for _, g := range groups {
		if len(g) > 0 {
			out = append(out, g)
		}
	}
	return out
}

// allocateSamples splits budget across importance groups so the sampling
// rate of group i+1 (more important) is α × that of group i, capped at 1,
// with leftover budget redistributed. groups are ordered least → most
// important.
func allocateSamples(groups [][]int, budget int, alpha float64) []int {
	k := len(groups)
	alloc := make([]int, k)
	if k == 0 || budget <= 0 {
		return alloc
	}
	// Binary search the base rate r so Σ min(1, r·α^i)·|g_i| ≈ budget.
	need := func(r float64) float64 {
		var s float64
		for i, g := range groups {
			rate := r * math.Pow(alpha, float64(i))
			if rate > 1 {
				rate = 1
			}
			s += rate * float64(len(g))
		}
		return s
	}
	lo, hi := 0.0, 1.0
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		if need(mid) < float64(budget) {
			lo = mid
		} else {
			hi = mid
		}
	}
	r := hi
	used := 0
	// Assign floor allocations, most-important first so high-value groups
	// don't starve on rounding.
	type frac struct {
		idx int
		f   float64
	}
	var fracs []frac
	for i := k - 1; i >= 0; i-- {
		rate := r * math.Pow(alpha, float64(i))
		if rate > 1 {
			rate = 1
		}
		exact := rate * float64(len(groups[i]))
		a := int(exact)
		if a > len(groups[i]) {
			a = len(groups[i])
		}
		alloc[i] = a
		used += a
		fracs = append(fracs, frac{i, exact - float64(a)})
	}
	// Distribute the remainder by largest fractional part (ties favor more
	// important groups, which come first in fracs).
	sort.SliceStable(fracs, func(a, b int) bool { return fracs[a].f > fracs[b].f })
	for _, fr := range fracs {
		if used >= budget {
			break
		}
		if alloc[fr.idx] < len(groups[fr.idx]) {
			alloc[fr.idx]++
			used++
		}
	}
	// Any remaining budget (groups saturated) goes to whoever has room.
	for i := k - 1; i >= 0 && used < budget; i-- {
		for alloc[i] < len(groups[i]) && used < budget {
			alloc[i]++
			used++
		}
	}
	return alloc
}

// compressActive drops feature dimensions that are zero across all rows
// (masked columns, excluded kinds). Euclidean distances are unchanged, but
// clustering cost shrinks from the full feature dimension to the handful of
// columns the query actually uses.
func compressActive(rows [][]float64) [][]float64 {
	if len(rows) == 0 {
		return rows
	}
	m := len(rows[0])
	var active []int
	for j := 0; j < m; j++ {
		for _, r := range rows {
			if r[j] != 0 {
				active = append(active, j)
				break
			}
		}
	}
	if len(active) == m {
		return rows
	}
	out := make([][]float64, len(rows))
	for i, r := range rows {
		c := make([]float64, len(active))
		for k, j := range active {
			c[k] = r[j]
		}
		out[i] = c
	}
	return out
}

// randomSelect samples ni partitions uniformly without replacement; each
// carries weight |group|/ni so the estimator stays unbiased.
func randomSelect(group []int, ni int, rng *rand.Rand) []query.WeightedPartition {
	perm := rng.Perm(len(group))
	w := float64(len(group)) / float64(ni)
	out := make([]query.WeightedPartition, 0, ni)
	for _, pi := range perm[:ni] {
		out = append(out, query.WeightedPartition{Part: group[pi], Weight: w})
	}
	return out
}

// clusterSelect clusters the group's feature vectors into ni clusters and
// returns one weighted exemplar per cluster (§4.2).
func (p *Picker) clusterSelect(features [][]float64, group []int, ni int, excluded map[stats.Kind]bool, rng *rand.Rand) []query.WeightedPartition {
	rows := make([][]float64, len(group))
	for i, g := range group {
		rows[i] = p.TS.Space.Normalize(features[g])
	}
	rows = maskKinds(p.TS.Space, rows, excluded)
	rows = compressActive(rows)
	asg := p.Cfg.clusterize(rows, ni, rng)
	exs := p.Cfg.exemplars(rows, asg, rng)
	out := make([]query.WeightedPartition, 0, len(exs))
	for _, e := range exs {
		out = append(out, query.WeightedPartition{Part: group[e.Point], Weight: e.Weight})
	}
	return out
}
