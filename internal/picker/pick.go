package picker

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"ps3/internal/cluster"
	"ps3/internal/exec"
	"ps3/internal/gbt"
	"ps3/internal/query"
	"ps3/internal/stats"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// clusterGreedy adapts cluster.GreedyFeatureSelection for the trainer.
func clusterGreedy(candidates []int, eval func(map[int]bool) float64, restarts int, rng *rand.Rand) []int {
	return cluster.GreedyFeatureSelection(candidates, eval, restarts, rng)
}

// PickStats reports where picking time went (Table 5's overhead metrics).
type PickStats struct {
	Total   time.Duration
	Cluster time.Duration
	// Featurize is the time spent building the partition feature matrix;
	// only populated by PickBatch, where featurization is part of the pick.
	Featurize time.Duration
	// KMeans accumulates the bounded k-means distance-work counters across
	// the pick's per-group clusterings; only populated by PickBatch (the
	// reference paths run exact sweeps and count nothing).
	KMeans cluster.KMeansStats
}

// funnelEval selects which evaluator the importance funnel runs on.
type funnelEval uint8

const (
	// evalFlat predicts row-at-a-time on the compiled flat ensembles (the
	// path behind the legacy Pick signature).
	evalFlat funnelEval = iota
	// evalReference predicts on the retained pointer-tree evaluator; the
	// baseline the batch path is equivalence-tested against.
	evalReference
	// evalBatch predicts each funnel group in one PredictBatch sweep over
	// pooled scratch, allocating nothing per partition.
	evalBatch
)

// pickScratch is the reusable per-Pick working set: the row-major feature
// matrix, per-row slice views into it, and the funnel's prediction/gather
// buffers. Scratches are pooled package-wide so sustained serving reaches a
// steady state of zero per-pick matrix allocations regardless of how many
// Picker values (or copies — the experiment harness copies pickers to apply
// lesion flags) are live.
type pickScratch struct {
	x      []float64
	rows   [][]float64
	preds  []float64
	gather [][]float64
	// Cluster-preparation scratch: the per-pick excluded-slot mask, the
	// active-slot list of the group being clustered, and the compact
	// normalized matrix handed to the clustering algorithm.
	excluded []bool
	active   []int32
	normBuf  []float64
	normRows [][]float64
	// Funnel scratch: the per-pick masked-slot lookup and one specialized
	// scorer per funnel stage (masked features hold the same zero in every
	// row, so their split conditions fold into the scorers at bind time).
	masked  []bool
	scorers []gbt.BatchScorer
}

var pickScratchPool sync.Pool

// getPickScratch returns a scratch sized for an n-partition, m-feature pick,
// growing the pooled buffers only when a larger table is seen.
func getPickScratch(n, m int) *pickScratch {
	sc, _ := pickScratchPool.Get().(*pickScratch)
	if sc == nil {
		sc = &pickScratch{}
	}
	if cap(sc.x) < n*m {
		sc.x = make([]float64, n*m)
	}
	sc.x = sc.x[:n*m]
	if cap(sc.rows) < n {
		sc.rows = make([][]float64, n)
	}
	sc.rows = sc.rows[:n]
	for i := 0; i < n; i++ {
		sc.rows[i] = sc.x[i*m : (i+1)*m : (i+1)*m]
	}
	if cap(sc.preds) < n {
		sc.preds = make([]float64, n)
	}
	sc.preds = sc.preds[:n]
	if cap(sc.gather) < n {
		sc.gather = make([][]float64, n)
	}
	sc.gather = sc.gather[:n]
	if cap(sc.excluded) < m {
		sc.excluded = make([]bool, m)
	}
	sc.excluded = sc.excluded[:m]
	if cap(sc.masked) < m {
		sc.masked = make([]bool, m)
	}
	sc.masked = sc.masked[:m]
	return sc
}

func putPickScratch(sc *pickScratch) { pickScratchPool.Put(sc) }

// Pick runs Algorithm 1: outliers → importance funnel → α-decayed budget
// allocation → per-group clustering selection. features is the raw N×M
// matrix for q from stats.TableStats.Features; budget n is the number of
// partitions to read. The returned weights combine per §2.4.
//
// Callers that do not already hold a feature matrix should prefer PickBatch,
// which featurizes into pooled scratch (in parallel) instead of allocating
// an N×M matrix per query.
func (p *Picker) Pick(q *query.Query, features [][]float64, n int, rng *rand.Rand) []query.WeightedPartition {
	sel, _ := p.PickWithStats(q, features, n, rng)
	return sel
}

// PickWithStats is Pick with timing instrumentation.
func (p *Picker) PickWithStats(q *query.Query, features [][]float64, n int, rng *rand.Rand) ([]query.WeightedPartition, PickStats) {
	var st PickStats
	start := time.Now()
	sel := p.pick(q, features, n, rng, &st, evalFlat, nil, exec.Options{})
	st.Total = time.Since(start)
	return sel, st
}

// PickReference is Pick evaluated end to end on the reference
// implementations: per-partition feature rows and the pointer-tree funnel
// evaluator. It exists as the equivalence baseline for PickBatch; serving
// paths never call it.
func (p *Picker) PickReference(q *query.Query, features [][]float64, n int, rng *rand.Rand) []query.WeightedPartition {
	var st PickStats
	return p.pick(q, features, n, rng, &st, evalReference, nil, exec.Options{})
}

// PickBatch is the batched fast path of Algorithm 1: it featurizes every
// partition into a pooled row-major scratch matrix (in parallel over
// partition blocks on the shared exec pool, bounded by eo.Parallelism) and
// runs the importance funnel as whole-group PredictBatch sweeps over the
// compiled flat ensembles. Zero allocations per partition in the steady
// state. The selection is bit-identical to
// Pick(q, p.TS.Features(q), n, rng) — and to PickReference — at every
// parallelism setting: features are filled into disjoint rows indexed by
// partition, and the selection logic consumes them in partition order.
func (p *Picker) PickBatch(q *query.Query, n int, rng *rand.Rand, eo exec.Options) []query.WeightedPartition {
	sel, _ := p.PickBatchWithStats(q, n, rng, eo)
	return sel
}

// pickFillBlock is the partition-block granularity of parallel
// featurization: big enough to amortize work distribution, small enough to
// load-balance uneven selectivity estimates.
const pickFillBlock = 32

// PickBatchWithStats is PickBatch with timing instrumentation.
func (p *Picker) PickBatchWithStats(q *query.Query, n int, rng *rand.Rand, eo exec.Options) ([]query.WeightedPartition, PickStats) {
	var st PickStats
	start := time.Now()
	total := len(p.TS.Parts)
	if n >= total {
		// Budget covers everything (mirrors pick's first branch without
		// featurizing): exact answer, weight 1 each.
		sel := make([]query.WeightedPartition, total)
		for i := range sel {
			sel[i] = query.WeightedPartition{Part: i, Weight: 1}
		}
		st.Total = time.Since(start)
		return sel, st
	}
	if n <= 0 {
		st.Total = time.Since(start)
		return nil, st
	}
	plan := p.TS.NewFeaturePlan(q)
	m := plan.Dim()
	sc := getPickScratch(total, m)
	defer putPickScratch(sc)
	// Slot masks (scratch is pooled across pickers, so both are rebuilt per
	// pick): the feature-selection exclusion set and the query's masked
	// columns.
	for j, meta := range p.TS.Space.Meta {
		sc.excluded[j] = p.Excluded[meta.Kind]
		sc.masked[j] = false
	}
	for _, j := range plan.MaskSlots() {
		sc.masked[j] = true
	}
	blocks := (total + pickFillBlock - 1) / pickFillBlock
	exec.ForEach(blocks, eo, func(b int) {
		lo := b * pickFillBlock
		hi := lo + pickFillBlock
		if hi > total {
			hi = total
		}
		for i := lo; i < hi; i++ {
			plan.FillRow(sc.x[i*m:(i+1)*m], i)
		}
	})
	st.Featurize = time.Since(start)
	sel := p.pick(q, sc.rows, n, rng, &st, evalBatch, sc, eo)
	st.Total = time.Since(start)
	return sel, st
}

func (p *Picker) pick(q *query.Query, features [][]float64, n int, rng *rand.Rand, st *PickStats, ev funnelEval, sc *pickScratch, eo exec.Options) []query.WeightedPartition {
	total := len(features)
	if n >= total {
		// Budget covers everything: exact answer, weight 1 each.
		sel := make([]query.WeightedPartition, total)
		for i := range sel {
			sel[i] = query.WeightedPartition{Part: i, Weight: 1}
		}
		return sel
	}
	if n <= 0 {
		return nil
	}
	if rng == nil {
		rng = newRand(p.Cfg.Seed)
	}

	var selection []query.WeightedPartition

	// 1. Outliers (§4.4): partitions with rare group-by bitmap signatures
	// are evaluated exactly, weight 1, consuming up to OutlierBudgetFrac of
	// the budget.
	inliers := allParts(total)
	if !p.Cfg.DisableOutlier {
		outliers, rest := p.findOutliers(q, total)
		budgetCap := int(math.Floor(p.Cfg.OutlierBudgetFrac * float64(n)))
		if len(outliers) > budgetCap {
			outliers = outliers[:budgetCap]
			rest = nil // recompute below
		}
		if rest == nil {
			inOut := make(map[int]bool, len(outliers))
			for _, o := range outliers {
				inOut[o] = true
			}
			rest = rest[:0]
			for i := 0; i < total; i++ {
				if !inOut[i] {
					rest = append(rest, i)
				}
			}
		}
		for _, o := range outliers {
			selection = append(selection, query.WeightedPartition{Part: o, Weight: 1})
		}
		inliers = rest
	}
	budget := n - len(selection)
	if budget <= 0 {
		return selection
	}

	// 2. Predicate filter: keep only partitions that may contain matching
	// rows (selectivity_upper > 0; perfect recall per §3.2). Filtered-out
	// partitions contribute nothing and are skipped entirely.
	upSlot, _, _, _ := p.TS.Space.SelectivitySlots()
	var candidates []int
	for _, i := range inliers {
		if features[i][upSlot] > 0 {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return selection
	}
	if budget >= len(candidates) {
		for _, i := range candidates {
			selection = append(selection, query.WeightedPartition{Part: i, Weight: 1})
		}
		return selection
	}

	// 3. Importance funnel (Algorithm 2), least-important group first.
	groups := p.importanceGroups(features, candidates, ev, sc)

	// 4. Allocate budget across groups with rate decaying by α from more to
	// less important groups.
	alloc := allocateSamples(groups, budget, p.Cfg.Alpha)

	// 5. Select within each group via clustering (or random fallback).
	for gi, g := range groups {
		ni := alloc[gi]
		if ni <= 0 || len(g) == 0 {
			continue
		}
		if ni >= len(g) {
			for _, i := range g {
				selection = append(selection, query.WeightedPartition{Part: i, Weight: 1})
			}
			continue
		}
		if p.Cfg.DisableCluster || tooComplex(q, p.Cfg.MaxPredClauses) {
			selection = append(selection, randomSelect(g, ni, rng)...)
			continue
		}
		cstart := time.Now()
		if sc != nil {
			selection = append(selection, p.clusterSelectFast(features, g, ni, rng, sc, eo, &st.KMeans)...)
		} else {
			selection = append(selection, p.clusterSelect(features, g, ni, p.Excluded, rng)...)
		}
		st.Cluster += time.Since(cstart)
	}
	return selection
}

// tooComplex reports whether the predicate exceeds the clause budget beyond
// which clustering features stop being representative (Appendix B.1).
func tooComplex(q *query.Query, maxClauses int) bool {
	return len(query.Clauses(q.Pred)) > maxClauses
}

// findOutliers groups partitions by their group-by-column occurrence
// bitmaps and flags partitions in small groups (absolute < OutlierAbsSize
// and relative < OutlierRelSize × largest). Returns (outliers sorted by
// ascending group size, remaining partitions).
func (p *Picker) findOutliers(q *query.Query, total int) (outliers, rest []int) {
	if len(q.GroupBy) == 0 {
		return nil, allParts(total)
	}
	// Bitmap-bearing group-by columns.
	var cols []int
	for _, name := range q.GroupBy {
		ci := p.TS.Schema.ColIndex(name)
		if ci < 0 {
			continue
		}
		if _, ok := p.TS.GlobalHH[ci]; ok {
			cols = append(cols, ci)
		}
	}
	if len(cols) == 0 {
		return nil, allParts(total)
	}
	// Group partitions by bitmap signature with one sort instead of a map:
	// pairs ordered by (signature, partition) make each group a contiguous
	// run with ascending members, exactly the membership and order the
	// map-based grouping produced.
	type sigPart struct {
		sig  uint64
		part int
	}
	pairs := make([]sigPart, total)
	for i := 0; i < total; i++ {
		var sig uint64
		for _, ci := range cols {
			sig = sig*1000003 + uint64(p.TS.Parts[i].Bitmap[ci]) + 1
		}
		pairs[i] = sigPart{sig, i}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].sig != pairs[b].sig {
			return pairs[a].sig < pairs[b].sig
		}
		return pairs[a].part < pairs[b].part
	})
	type span struct{ lo, hi int } // pairs[lo:hi] is one signature group
	var groups []span
	largest := 0
	for lo := 0; lo < total; {
		hi := lo + 1
		for hi < total && pairs[hi].sig == pairs[lo].sig {
			hi++
		}
		groups = append(groups, span{lo, hi})
		if hi-lo > largest {
			largest = hi - lo
		}
		lo = hi
	}
	var outGroups []span
	for _, g := range groups {
		if n := g.hi - g.lo; n < p.Cfg.OutlierAbsSize &&
			float64(n) < p.Cfg.OutlierRelSize*float64(largest) {
			outGroups = append(outGroups, g)
		}
	}
	sort.Slice(outGroups, func(a, b int) bool {
		na, nb := outGroups[a].hi-outGroups[a].lo, outGroups[b].hi-outGroups[b].lo
		if na != nb {
			return na < nb
		}
		return pairs[outGroups[a].lo].part < pairs[outGroups[b].lo].part
	})
	isOutlier := make([]bool, total)
	for _, g := range outGroups {
		for _, pr := range pairs[g.lo:g.hi] {
			outliers = append(outliers, pr.part)
			isOutlier[pr.part] = true
		}
	}
	for i := 0; i < total; i++ {
		if !isOutlier[i] {
			rest = append(rest, i)
		}
	}
	return outliers, rest
}

// importanceGroups runs the funnel (Algorithm 2): candidates that pass more
// regressors advance further. The result is ordered least → most important.
// All three evaluators visit the same rows in the same order and score with
// bit-identical ensemble outputs, so grouping is evaluator-independent.
func (p *Picker) importanceGroups(features [][]float64, candidates []int, ev funnelEval, sc *pickScratch) [][]int {
	if p.Cfg.DisableRegressor || len(p.Regs) == 0 {
		return [][]int{candidates}
	}
	groups := [][]int{candidates}
	var rangeOf func(j int) (float64, float64, bool)
	if ev == evalBatch && sc != nil {
		if cap(sc.scorers) < len(p.Regs) {
			sc.scorers = make([]gbt.BatchScorer, len(p.Regs))
		}
		// Per-feature value guarantees for scorer binding: masked slots are
		// exactly zero in every row, selectivity slots lie in [0, 1] by
		// construction, and every other slot equals its partition's base
		// feature, bounded by the store's cached per-slot ranges.
		baseLo, baseHi, baseOK := p.TS.BaseRanges()
		upper, indep, minS, maxS := p.TS.Space.SelectivitySlots()
		rangeOf = func(j int) (float64, float64, bool) {
			if sc.masked[j] {
				return 0, 0, true
			}
			if j == upper || j == indep || j == minS || j == maxS {
				return 0, 1, true
			}
			return baseLo[j], baseHi[j], baseOK[j]
		}
	}
	for stage, reg := range p.Regs {
		last := groups[len(groups)-1]
		var preds []float64
		if ev == evalBatch && sc != nil {
			// One batch-table sweep per stage over the advancing group: the
			// gather slice only copies row headers (views into the scratch
			// matrix), never feature values, and the stage scorer resolves
			// every range-decidable condition at bind time.
			sc.scorers = sc.scorers[:cap(sc.scorers)]
			scorer := &sc.scorers[stage]
			scorer.Bind(reg, rangeOf)
			gather := sc.gather[:len(last)]
			for k, i := range last {
				gather[k] = features[i]
			}
			preds = sc.preds[:len(last)]
			scorer.Predict(preds, gather)
		}
		var stay, advance []int
		for k, i := range last {
			var pred float64
			switch {
			case preds != nil:
				pred = preds[k]
			case ev == evalReference:
				pred = reg.PredictReference(features[i])
			default:
				pred = reg.Predict(features[i])
			}
			if pred > p.Thresholds[stage] {
				advance = append(advance, i)
			} else {
				stay = append(stay, i)
			}
		}
		if len(advance) == 0 {
			break
		}
		groups[len(groups)-1] = stay
		groups = append(groups, advance)
	}
	// Drop empty groups.
	out := groups[:0]
	for _, g := range groups {
		if len(g) > 0 {
			out = append(out, g)
		}
	}
	return out
}

// allocateSamples splits budget across importance groups so the sampling
// rate of group i+1 (more important) is α × that of group i, capped at 1,
// with leftover budget redistributed. groups are ordered least → most
// important.
func allocateSamples(groups [][]int, budget int, alpha float64) []int {
	k := len(groups)
	alloc := make([]int, k)
	if k == 0 || budget <= 0 {
		return alloc
	}
	// Binary search the base rate r so Σ min(1, r·α^i)·|g_i| ≈ budget.
	need := func(r float64) float64 {
		var s float64
		for i, g := range groups {
			rate := r * math.Pow(alpha, float64(i))
			if rate > 1 {
				rate = 1
			}
			s += rate * float64(len(g))
		}
		return s
	}
	lo, hi := 0.0, 1.0
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		if need(mid) < float64(budget) {
			lo = mid
		} else {
			hi = mid
		}
	}
	r := hi
	used := 0
	// Assign floor allocations, most-important first so high-value groups
	// don't starve on rounding.
	type frac struct {
		idx int
		f   float64
	}
	var fracs []frac
	for i := k - 1; i >= 0; i-- {
		rate := r * math.Pow(alpha, float64(i))
		if rate > 1 {
			rate = 1
		}
		exact := rate * float64(len(groups[i]))
		a := int(exact)
		if a > len(groups[i]) {
			a = len(groups[i])
		}
		alloc[i] = a
		used += a
		fracs = append(fracs, frac{i, exact - float64(a)})
	}
	// Distribute the remainder by largest fractional part (ties favor more
	// important groups, which come first in fracs).
	sort.SliceStable(fracs, func(a, b int) bool { return fracs[a].f > fracs[b].f })
	for _, fr := range fracs {
		if used >= budget {
			break
		}
		if alloc[fr.idx] < len(groups[fr.idx]) {
			alloc[fr.idx]++
			used++
		}
	}
	// Any remaining budget (groups saturated) goes to whoever has room.
	for i := k - 1; i >= 0 && used < budget; i-- {
		for alloc[i] < len(groups[i]) && used < budget {
			alloc[i]++
			used++
		}
	}
	return alloc
}

// compressActive drops feature dimensions that are zero across all rows
// (masked columns, excluded kinds). Euclidean distances are unchanged, but
// clustering cost shrinks from the full feature dimension to the handful of
// columns the query actually uses.
func compressActive(rows [][]float64) [][]float64 {
	if len(rows) == 0 {
		return rows
	}
	m := len(rows[0])
	var active []int
	for j := 0; j < m; j++ {
		for _, r := range rows {
			if r[j] != 0 {
				active = append(active, j)
				break
			}
		}
	}
	if len(active) == m {
		return rows
	}
	out := make([][]float64, len(rows))
	for i, r := range rows {
		c := make([]float64, len(active))
		for k, j := range active {
			c[k] = r[j]
		}
		out[i] = c
	}
	return out
}

// randomSelect samples ni partitions uniformly without replacement; each
// carries weight |group|/ni so the estimator stays unbiased.
func randomSelect(group []int, ni int, rng *rand.Rand) []query.WeightedPartition {
	perm := rng.Perm(len(group))
	w := float64(len(group)) / float64(ni)
	out := make([]query.WeightedPartition, 0, ni)
	for _, pi := range perm[:ni] {
		out = append(out, query.WeightedPartition{Part: group[pi], Weight: w})
	}
	return out
}

// clusterSelect clusters the group's feature vectors into ni clusters and
// returns one weighted exemplar per cluster (§4.2). This is the reference
// implementation — full-width normalization, kind masking and active-column
// compression as separate allocating passes — retained for training-time
// feature selection and the equivalence baseline; the batched pick path
// runs clusterSelectFast instead.
func (p *Picker) clusterSelect(features [][]float64, group []int, ni int, excluded map[stats.Kind]bool, rng *rand.Rand) []query.WeightedPartition {
	rows := make([][]float64, len(group))
	for i, g := range group {
		rows[i] = p.TS.Space.Normalize(features[g])
	}
	rows = maskKinds(p.TS.Space, rows, excluded)
	rows = compressActive(rows)
	asg := p.Cfg.clusterizeRef(rows, ni, rng)
	exs := p.Cfg.exemplars(rows, asg, rng)
	out := make([]query.WeightedPartition, 0, len(exs))
	for _, e := range exs {
		out = append(out, query.WeightedPartition{Part: group[e.Point], Weight: e.Weight})
	}
	return out
}

// clusterSelectFast is clusterSelect fused into one scratch-backed pass. It
// exploits two invariants of rows produced by a FeaturePlan: masked slots
// are exactly zero in every row (so they can never be active), and every
// non-selectivity slot equals the partition's base feature (so its
// normalized value is a lookup in the precomputed TableStats.NormBase
// matrix instead of a transform + division). The compact matrix it hands to
// the clustering algorithm is bit-identical to the reference pipeline's:
// active-slot detection on raw values matches detection on normalized
// values because the transform is zero exactly at zero — and in the
// underflow corner where a normalized value rounds to zero while its raw
// value is not, the cached NormBase entry rounds identically, contributing
// an all-zero column that no distance or median can observe.
func (p *Picker) clusterSelectFast(features [][]float64, group []int, ni int, rng *rand.Rand, sc *pickScratch, eo exec.Options, ks *cluster.KMeansStats) []query.WeightedPartition {
	m := p.TS.Space.Dim()
	active := sc.active[:0]
	for j := 0; j < m; j++ {
		if sc.excluded[j] {
			continue
		}
		for _, g := range group {
			if features[g][j] != 0 {
				active = append(active, int32(j))
				break
			}
		}
	}
	sc.active = active
	na := len(active)
	if cap(sc.normBuf) < len(group)*na {
		sc.normBuf = make([]float64, len(group)*na)
	}
	buf := sc.normBuf[:len(group)*na]
	if cap(sc.normRows) < len(group) {
		sc.normRows = make([][]float64, len(group))
	}
	rows := sc.normRows[:len(group)]
	nb := p.TS.NormBase()
	upper, indep, minS, maxS := p.TS.Space.SelectivitySlots()
	for k, g := range group {
		row := buf[k*na : (k+1)*na : (k+1)*na]
		raw := features[g]
		base := nb[g*m : (g+1)*m]
		for a, j := range active {
			if int(j) == upper || int(j) == indep || int(j) == minS || int(j) == maxS {
				row[a] = p.TS.Space.NormalizeValue(int(j), raw[j])
			} else {
				row[a] = base[j]
			}
		}
		rows[k] = row
	}
	asg := p.Cfg.clusterize(rows, ni, rng, eo, ks)
	exs := p.Cfg.exemplars(rows, asg, rng)
	out := make([]query.WeightedPartition, 0, len(exs))
	for _, e := range exs {
		out = append(out, query.WeightedPartition{Part: group[e.Point], Weight: e.Weight})
	}
	return out
}
