package picker

import (
	"fmt"
	"math"
	"sort"

	"ps3/internal/gbt"
	"ps3/internal/metrics"
	"ps3/internal/query"
	"ps3/internal/stats"
)

// Example is one training query with everything the trainer needs: the raw
// feature matrix, per-partition contributions (§4.3), and the per-partition
// answers so candidate selections can be scored without touching the table.
type Example struct {
	Query    *query.Query
	Compiled *query.Compiled
	Features [][]float64 // N×M raw features from stats.TableStats.Features
	// Contrib[i] = max over groups g and aggregates j of A_{g,i}[j]/A_g[j].
	Contrib []float64
	PerPart []*query.Answer
	// TruthVals are the final per-group aggregate values of the exact
	// answer.
	TruthVals map[string][]float64
}

// Contribution computes the paper's partition-contribution definition from
// per-partition and total answers: the largest relative contribution of the
// partition to any aggregate of any group.
func Contribution(c *query.Compiled, perPart []*query.Answer, total *query.Answer) []float64 {
	out := make([]float64, len(perPart))
	for i, pa := range perPart {
		var best float64
		//lint:mapiter-ok max over per-group ratios is order-free
		for g, vals := range pa.Groups {
			tot, ok := total.Groups[g]
			if !ok {
				continue
			}
			for j, v := range vals {
				if tot[j] == 0 {
					continue
				}
				r := math.Abs(v) / math.Abs(tot[j])
				if r > best {
					best = r
				}
			}
		}
		out[i] = best
	}
	return out
}

// EstimateFromPerPart combines cached per-partition answers under a weighted
// selection and returns final aggregate values; used to score candidate
// selections during training without re-reading data.
func EstimateFromPerPart(c *query.Compiled, perPart []*query.Answer, sel []query.WeightedPartition) map[string][]float64 {
	ans := c.NewAnswer()
	for _, wp := range sel {
		ans.AddWeighted(perPart[wp.Part], wp.Weight)
	}
	return c.FinalValues(ans)
}

// Picker is a trained PS3 partition picker for one table + workload.
type Picker struct {
	Cfg  Config
	TS   *stats.TableStats
	Regs []*gbt.Model
	// Thresholds[i] is the prediction cutoff of funnel stage i (0 in the
	// paper; kept explicit for testing).
	Thresholds []float64
	// Excluded is the feature-kind exclusion set found by feature
	// selection (empty when disabled).
	Excluded map[stats.Kind]bool
}

// Train fits the funnel regressors (Algorithm 4 labels, exponentially
// spaced contribution bins) and optionally runs clustering feature
// selection, returning a ready Picker.
func Train(ts *stats.TableStats, examples []Example, cfg Config) (*Picker, error) {
	cfg = cfg.withDefaults()
	if len(examples) == 0 {
		return nil, fmt.Errorf("picker: no training examples")
	}
	p := &Picker{Cfg: cfg, TS: ts, Excluded: map[stats.Kind]bool{}}

	// Fit feature normalization on the training features (Appendix B).
	var allRows [][]float64
	for _, ex := range examples {
		allRows = append(allRows, ex.Features...)
	}
	ts.Space.Fit(allRows)

	if !cfg.DisableRegressor {
		if err := p.trainFunnel(examples); err != nil {
			return nil, err
		}
	}
	if cfg.FeatureSelection && !cfg.DisableCluster {
		p.selectFeatures(examples)
	}
	return p, nil
}

// trainFunnel builds cfg.K regressors. Stage i targets a positive fraction
// that shrinks geometrically from "all partitions with nonzero contribution"
// (stage 0) down to the top TopFrac (stage K-1), per §4.3. Labels follow
// Algorithm 4: positives get +sqrt(1/positives), negatives
// -sqrt(1/negatives), per query, so each query contributes equal weight
// regardless of class balance.
func (p *Picker) trainFunnel(examples []Example) error {
	k := p.Cfg.K
	n := len(examples[0].Features)
	var xs [][]float64
	for _, ex := range examples {
		if len(ex.Features) != n || len(ex.Contrib) != n {
			return fmt.Errorf("picker: example has %d features / %d contribs, want %d",
				len(ex.Features), len(ex.Contrib), n)
		}
		xs = append(xs, ex.Features...)
	}

	for stage := 0; stage < k; stage++ {
		ys := make([]float64, 0, len(xs))
		for _, ex := range examples {
			labels := stageLabels(ex.Contrib, stage, k, p.Cfg.TopFrac)
			ys = append(ys, labels...)
		}
		model, err := gbt.Train(xs, ys, gbt.Params{
			Trees:        40,
			MaxDepth:     4,
			LearningRate: 0.25,
			Subsample:    0.9,
			ColSample:    0.9,
			Seed:         p.Cfg.Seed + int64(stage),
		})
		if err != nil {
			return fmt.Errorf("picker: training funnel stage %d: %w", stage, err)
		}
		p.Regs = append(p.Regs, model)
		p.Thresholds = append(p.Thresholds, 0)
	}
	return nil
}

// stageLabels computes Algorithm 4 labels for one query at one funnel stage.
func stageLabels(contrib []float64, stage, k int, topFrac float64) []float64 {
	n := len(contrib)
	labels := make([]float64, n)
	thresh := stageThreshold(contrib, stage, k, topFrac)
	pos := 0
	for _, c := range contrib {
		if c > thresh {
			pos++
		}
	}
	neg := n - pos
	for i, c := range contrib {
		if c > thresh {
			labels[i] = math.Sqrt(1 / float64(max(pos, 1)))
		} else {
			labels[i] = -math.Sqrt(1 / float64(max(neg, 1)))
		}
	}
	return labels
}

// stageThreshold returns the contribution cutoff for a funnel stage: stage 0
// separates zero from nonzero contribution; the last stage keeps the top
// topFrac of partitions; intermediate stages interpolate the kept fraction
// geometrically.
func stageThreshold(contrib []float64, stage, k int, topFrac float64) float64 {
	if stage == 0 {
		return 0
	}
	nz := 0
	for _, c := range contrib {
		if c > 0 {
			nz++
		}
	}
	n := len(contrib)
	if nz == 0 || n == 0 {
		return 0
	}
	fracNZ := float64(nz) / float64(n)
	if fracNZ <= topFrac {
		return 0
	}
	// Geometric interpolation of target kept-fraction between fracNZ (stage
	// 0) and topFrac (stage k-1).
	t := float64(stage) / float64(k-1)
	frac := fracNZ * math.Pow(topFrac/fracNZ, t)
	keep := int(math.Ceil(frac * float64(n)))
	if keep < 1 {
		keep = 1
	}
	sorted := append([]float64(nil), contrib...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	th := sorted[keep-1]
	// The threshold is exclusive (contribution > th passes); nudge down so
	// the keep-th partition passes, but never below zero.
	if th <= 0 {
		return 0
	}
	return th * (1 - 1e-12)
}

// selectFeatures runs Algorithm 3 over the clustering feature kinds, scoring
// each exclusion set by the mean relative error of clustering-only selection
// on probe training queries at two probe budgets. Every evaluation re-seeds
// its RNG identically so that feature subsets are compared on *paired*
// clusterings — without pairing, k-means seeding noise drowns the signal of
// removing a single feature kind.
func (p *Picker) selectFeatures(examples []Example) {
	candidates := clusteringKindIDs()
	probe := len(examples)
	if probe > 20 {
		probe = 20 // cap evaluation cost; Algorithm 3 calls eval O(restarts × features) times
	}
	exs := examples[:probe]
	n := len(examples[0].Features)
	budgets := []int{max(n/20, 2), max(n/8, 3)}
	rng := newRand(p.Cfg.Seed + 977)

	eval := func(excluded map[int]bool) float64 {
		exSet := make(map[stats.Kind]bool, len(excluded))
		for id := range excluded { //lint:mapiter-ok map-to-set copy; key set is order-free
			exSet[stats.Kind(id)] = true
		}
		var sum float64
		cnt := 0
		for qi, ex := range exs {
			for bi, budget := range budgets {
				pairedRng := newRand(p.Cfg.Seed + int64(qi*17+bi))
				sel := p.clusterSelect(ex.Features, allParts(n), budget, exSet, pairedRng)
				est := EstimateFromPerPart(ex.Compiled, ex.PerPart, sel)
				sum += metrics.Compare(ex.TruthVals, est).AvgRelErr
				cnt++
			}
		}
		return sum / float64(cnt)
	}

	best := clusterGreedy(candidates, eval, p.Cfg.FeatureSelRestarts, rng)
	p.Excluded = make(map[stats.Kind]bool, len(best))
	for _, id := range best {
		p.Excluded[stats.Kind(id)] = true
	}
}

// clusteringKindIDs returns the feature kinds eligible for exclusion — the
// feature list of Algorithm 3 (everything; the selectivity features are
// individually excludable).
func clusteringKindIDs() []int {
	kinds := stats.AllKinds()
	ids := make([]int, len(kinds))
	for i, k := range kinds {
		ids[i] = int(k)
	}
	return ids
}

func allParts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
