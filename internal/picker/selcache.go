package picker

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"ps3/internal/query"
)

// SelectionKey identifies one cached pick decision: the canonical query text
// (query.Query.String(), which the picker's randomness is also derived from)
// and the resolved partition budget. The third key component — which trained
// snapshot produced the selection — is the cache's internal version, bumped
// by Invalidate, so entries from a replaced snapshot can never be returned.
type SelectionKey struct {
	Query string
	N     int
}

// SelectionCacheStats is a point-in-time snapshot of a cache's counters.
type SelectionCacheStats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
	Entries       int   `json:"entries"`
	// AvgHitAgeMs is the mean age (time since the entry was computed) of
	// served hits — how stale the reused decisions are in practice.
	AvgHitAgeMs float64 `json:"avg_hit_age_ms"`
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s SelectionCacheStats) HitRate() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// SelectionCache memoizes pick results — the weighted partition selections
// the picker computes for (query, budget) — across requests. Picking is
// deterministic per (system seed, query text, budget), so a cached selection
// is byte-identical to what a cold pick would return; the cache only saves
// the work, never changes an answer.
//
// Concurrency: lookups are single-flight. The first request for a missing
// key becomes the leader and computes; concurrent requests for the same key
// wait for the leader and share its result (counted as hits) instead of
// duplicating the pick. Capacity is bounded with LRU eviction over completed
// entries (in-flight computations are not evictable). Invalidate atomically
// empties the cache and bumps the version: selections computed against a
// replaced snapshot are dropped even when their computation is still in
// flight, and waiters re-run against the new version rather than adopt a
// stale result.
//
// Cached selections are shared, not copied: callers must treat them as
// immutable.
type SelectionCache struct {
	capacity int

	mu      sync.Mutex
	version int64
	entries map[SelectionKey]*selEntry
	recency *list.List // completed entries only; front = most recently used

	hits          atomic.Int64
	misses        atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64
	hitAgeNs      atomic.Int64
}

// selEntry is one cache slot. done closes when the leader's computation
// finishes; sel/err are written before the close and only read after it.
type selEntry struct {
	key     SelectionKey
	version int64
	born    time.Time
	sel     []query.WeightedPartition
	err     error
	done    chan struct{}
	el      *list.Element // non-nil once completed and resident
}

// NewSelectionCache returns a cache holding at most capacity completed
// selections (capacity <= 0 defaults to 256).
func NewSelectionCache(capacity int) *SelectionCache {
	if capacity <= 0 {
		capacity = 256
	}
	return &SelectionCache{
		capacity: capacity,
		entries:  make(map[SelectionKey]*selEntry, capacity),
		recency:  list.New(),
	}
}

// GetOrCompute returns the cached selection for key, computing it via
// compute on a miss. hit reports whether the selection came from the cache
// (including joining another request's in-flight computation). A compute
// error is returned to the leader and every waiter of that flight, and
// nothing is cached.
func (c *SelectionCache) GetOrCompute(key SelectionKey, compute func() ([]query.WeightedPartition, error)) (sel []query.WeightedPartition, hit bool, err error) {
	for {
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			if e.el != nil {
				// Completed entry: serve it.
				c.recency.MoveToFront(e.el)
				age := time.Since(e.born)
				c.mu.Unlock()
				c.hits.Add(1)
				c.hitAgeNs.Add(int64(age))
				return e.sel, true, nil
			}
			c.mu.Unlock()
			// In-flight: wait for the leader. Adopt its result only if no
			// invalidation happened since the flight began — a selection
			// computed against a replaced snapshot must not be served, so
			// retry (and likely become the new leader) instead. Leader
			// errors propagate to every waiter of the flight.
			<-e.done
			c.mu.Lock()
			stale := c.version != e.version
			c.mu.Unlock()
			if stale {
				continue
			}
			if e.err != nil {
				return nil, false, e.err
			}
			c.hits.Add(1)
			c.hitAgeNs.Add(int64(time.Since(e.born)))
			return e.sel, true, nil
		}

		// Miss: become the leader for this key.
		e := &selEntry{key: key, version: c.version, born: time.Now(), done: make(chan struct{})}
		c.entries[key] = e
		c.mu.Unlock()
		c.misses.Add(1)

		e.sel, e.err = compute()

		c.mu.Lock()
		if c.entries[key] == e {
			if e.err != nil || c.version != e.version {
				// Failed, or invalidated mid-flight: never cache.
				delete(c.entries, key)
			} else {
				e.el = c.recency.PushFront(e)
				if c.recency.Len() > c.capacity {
					last := c.recency.Back()
					c.recency.Remove(last)
					delete(c.entries, last.Value.(*selEntry).key)
					c.evictions.Add(1)
				}
			}
		}
		c.mu.Unlock()
		close(e.done)
		return e.sel, false, e.err
	}
}

// Invalidate atomically empties the cache and bumps the version. Selections
// still being computed when Invalidate runs are discarded on completion
// (their version no longer matches), so after Invalidate returns no lookup
// can ever observe a pre-invalidation selection. Called on snapshot swap.
func (c *SelectionCache) Invalidate() {
	c.mu.Lock()
	c.version++
	clear(c.entries)
	c.recency.Init()
	c.mu.Unlock()
	c.invalidations.Add(1)
}

// Len returns the number of completed resident entries.
func (c *SelectionCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.recency.Len()
}

// Stats snapshots the counters.
func (c *SelectionCache) Stats() SelectionCacheStats {
	s := SelectionCacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		Entries:       c.Len(),
	}
	if s.Hits > 0 {
		s.AvgHitAgeMs = float64(c.hitAgeNs.Load()) / float64(s.Hits) / float64(time.Millisecond)
	}
	return s
}
