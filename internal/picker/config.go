// Package picker implements PS3's partition picker (paper §4): given a
// query, per-partition summary-statistic feature vectors and a sampling
// budget, it returns a weighted set of partitions whose combined partial
// answers approximate the query (Algorithm 1). It combines:
//
//   - outlier detection over heavy-hitter occurrence bitmaps (§4.4),
//   - a learned importance funnel of k boosted regressors that sorts
//     partitions into importance groups (§4.3, Algorithm 2),
//   - budget allocation with sampling rates decaying by α per group,
//   - similarity-aware selection via clustering with exemplar weights
//     (§4.2), falling back to random sampling for very complex predicates.
//
// The package also provides the evaluation baselines: uniform random
// sampling, random sampling with the selectivity filter, and the modified
// Learned Stratified Sampling of Appendix C.1.
package picker

import (
	"math/rand"

	"ps3/internal/cluster"
	"ps3/internal/exec"
	"ps3/internal/stats"
)

// ClusterAlgo selects the clustering algorithm for sample selection.
type ClusterAlgo uint8

const (
	// AlgoKMeans uses k-means++ (the default; Table 6 shows it matches
	// HAC-ward).
	AlgoKMeans ClusterAlgo = iota
	// AlgoHACWard uses agglomerative clustering with Ward linkage.
	AlgoHACWard
	// AlgoHACSingle uses agglomerative clustering with single linkage.
	AlgoHACSingle
)

func (a ClusterAlgo) String() string {
	switch a {
	case AlgoKMeans:
		return "kmeans"
	case AlgoHACWard:
		return "hac-ward"
	default:
		return "hac-single"
	}
}

// Config holds the picker's tunables; zero values take the paper defaults
// noted on each field.
type Config struct {
	// K is the number of funnel regressors (paper default 4).
	K int
	// Alpha is the sampling-rate decay between adjacent importance groups
	// (paper default 2; α=1 disables importance weighting).
	Alpha float64
	// OutlierBudgetFrac caps the share of the budget spent on outlier
	// partitions (paper default 10%).
	OutlierBudgetFrac float64
	// OutlierAbsSize: bitmap groups smaller than this are outlier
	// candidates (paper default 10).
	OutlierAbsSize int
	// OutlierRelSize: ... and smaller than this fraction of the largest
	// bitmap group (paper default 10%).
	OutlierRelSize float64
	// MaxPredClauses: predicates with more clauses fall back from
	// clustering to random selection (paper default 10, Appendix B.1).
	MaxPredClauses int
	// Algo selects the clustering algorithm.
	Algo ClusterAlgo
	// UnbiasedExemplar picks a random cluster member instead of the
	// closest-to-median member (Appendix D).
	UnbiasedExemplar bool
	// FeatureSelection enables Algorithm 3's greedy leave-one-out feature
	// selection during training.
	FeatureSelection bool
	// FeatureSelRestarts is the number of random restarts (paper: 10).
	FeatureSelRestarts int
	// Lesion switches (§5.4.1): disable one component while keeping the
	// others.
	DisableCluster   bool
	DisableOutlier   bool
	DisableRegressor bool
	// TopFrac is the positive fraction targeted by the most selective
	// funnel model (paper: top 1%).
	TopFrac float64
	// Seed drives all randomized choices.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.K <= 0 {
		c.K = 4
	}
	if c.Alpha <= 0 {
		c.Alpha = 2
	}
	if c.OutlierBudgetFrac <= 0 {
		c.OutlierBudgetFrac = 0.10
	}
	if c.OutlierAbsSize <= 0 {
		c.OutlierAbsSize = 10
	}
	if c.OutlierRelSize <= 0 {
		c.OutlierRelSize = 0.10
	}
	if c.MaxPredClauses <= 0 {
		c.MaxPredClauses = 10
	}
	if c.FeatureSelRestarts <= 0 {
		c.FeatureSelRestarts = 10
	}
	if c.TopFrac <= 0 {
		c.TopFrac = 0.01
	}
	return c
}

// clusterize runs the configured clustering algorithm on the production
// path: triangle-inequality-bounded k-means with the scan engine's
// parallelism threaded into its assignment sweeps and distance-work
// counters accumulated into st (when non-nil). The HAC algorithms have no
// bounded variant and ignore both.
func (c Config) clusterize(points [][]float64, k int, rng *rand.Rand, eo exec.Options, st *cluster.KMeansStats) cluster.Assignment {
	switch c.Algo {
	case AlgoHACWard:
		return cluster.HAC(points, k, cluster.Ward)
	case AlgoHACSingle:
		return cluster.HAC(points, k, cluster.Single)
	default:
		return cluster.KMeansBounded(points, k, rng, cluster.KMeansOpts{
			Parallelism: eo.Parallelism,
			Stats:       st,
		})
	}
}

// clusterizeRef runs the configured clustering algorithm on the frozen
// reference path (exact k-means sweeps); training-time feature selection
// and the equivalence baselines use it so their outputs stay bit-stable
// regardless of how the bounded path evolves.
func (c Config) clusterizeRef(points [][]float64, k int, rng *rand.Rand) cluster.Assignment {
	switch c.Algo {
	case AlgoHACWard:
		return cluster.HAC(points, k, cluster.Ward)
	case AlgoHACSingle:
		return cluster.HAC(points, k, cluster.Single)
	default:
		return cluster.KMeansReference(points, k, rng, 0)
	}
}

// exemplars picks one weighted representative per cluster.
func (c Config) exemplars(points [][]float64, a cluster.Assignment, rng *rand.Rand) []cluster.Exemplar {
	if c.UnbiasedExemplar {
		return cluster.RandomExemplars(points, a, rng)
	}
	return cluster.MedianExemplars(points, a)
}

// maskKinds zeroes the feature slots whose kind is in excluded; used to
// apply the feature-selection result before clustering.
func maskKinds(space *stats.FeatureSpace, rows [][]float64, excluded map[stats.Kind]bool) [][]float64 {
	if len(excluded) == 0 {
		return rows
	}
	out := make([][]float64, len(rows))
	for i, r := range rows {
		m := append([]float64(nil), r...)
		for j, meta := range space.Meta {
			if excluded[meta.Kind] {
				m[j] = 0
			}
		}
		out[i] = m
	}
	return out
}
