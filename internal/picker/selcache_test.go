package picker

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"ps3/internal/query"
)

// sel builds a distinguishable selection.
func sel(parts ...int) []query.WeightedPartition {
	out := make([]query.WeightedPartition, len(parts))
	for i, p := range parts {
		out[i] = query.WeightedPartition{Part: p, Weight: float64(i + 1)}
	}
	return out
}

func TestSelectionCacheHitMissAndIdentity(t *testing.T) {
	c := NewSelectionCache(8)
	key := SelectionKey{Query: "SELECT COUNT(*) FROM t", N: 4}
	calls := 0
	compute := func() ([]query.WeightedPartition, error) {
		calls++
		return sel(3, 1, 4), nil
	}
	got, hit, err := c.GetOrCompute(key, compute)
	if err != nil || hit {
		t.Fatalf("first lookup: hit=%v err=%v, want miss", hit, err)
	}
	again, hit, err := c.GetOrCompute(key, compute)
	if err != nil || !hit {
		t.Fatalf("second lookup: hit=%v err=%v, want hit", hit, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	// A hit returns the identical selection a cold pick computed — same
	// backing array, so necessarily byte-identical.
	if &got[0] != &again[0] || !reflect.DeepEqual(got, again) {
		t.Fatal("hit returned a different selection than the cold compute")
	}
	// Distinct budgets are distinct keys.
	_, hit, err = c.GetOrCompute(SelectionKey{Query: key.Query, N: 5}, compute)
	if err != nil || hit {
		t.Fatalf("different budget: hit=%v err=%v, want miss", hit, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 hit / 2 misses / 2 entries", st)
	}
	if got, want := st.HitRate(), 1.0/3; got != want {
		t.Fatalf("hit rate = %v, want %v", got, want)
	}
}

func TestSelectionCacheErrorNotCached(t *testing.T) {
	c := NewSelectionCache(8)
	key := SelectionKey{Query: "q", N: 1}
	boom := errors.New("boom")
	if _, _, err := c.GetOrCompute(key, func() ([]query.WeightedPartition, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Fatal("failed compute was cached")
	}
	got, hit, err := c.GetOrCompute(key, func() ([]query.WeightedPartition, error) { return sel(7), nil })
	if err != nil || hit || len(got) != 1 {
		t.Fatalf("recovery lookup: sel=%v hit=%v err=%v", got, hit, err)
	}
}

func TestSelectionCacheLRUEviction(t *testing.T) {
	c := NewSelectionCache(2)
	get := func(q string) bool {
		t.Helper()
		_, hit, err := c.GetOrCompute(SelectionKey{Query: q, N: 1}, func() ([]query.WeightedPartition, error) { return sel(1), nil })
		if err != nil {
			t.Fatal(err)
		}
		return hit
	}
	get("a")
	get("b")
	get("a") // touch a: b is now LRU
	get("c") // evicts b
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if !get("a") || !get("c") {
		t.Fatal("resident entries a/c missed")
	}
	if get("b") {
		t.Fatal("evicted entry b hit")
	}
	if ev := c.Stats().Evictions; ev != 2 {
		// b evicted by c's insert, then a or c evicted by b's re-insert.
		t.Fatalf("evictions = %d, want 2", ev)
	}
}

func TestSelectionCacheInvalidate(t *testing.T) {
	c := NewSelectionCache(8)
	key := SelectionKey{Query: "q", N: 3}
	if _, _, err := c.GetOrCompute(key, func() ([]query.WeightedPartition, error) { return sel(1, 2), nil }); err != nil {
		t.Fatal(err)
	}
	c.Invalidate()
	if c.Len() != 0 {
		t.Fatal("invalidate left entries resident")
	}
	_, hit, err := c.GetOrCompute(key, func() ([]query.WeightedPartition, error) { return sel(9), nil })
	if err != nil || hit {
		t.Fatalf("post-invalidate lookup: hit=%v err=%v, want miss", hit, err)
	}
	if st := c.Stats(); st.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", st.Invalidations)
	}
}

// TestSelectionCacheInvalidateDropsInFlight pins the swap guarantee: a
// selection whose computation began before Invalidate is never cached and
// never adopted by waiters that arrive after the invalidation.
func TestSelectionCacheInvalidateDropsInFlight(t *testing.T) {
	c := NewSelectionCache(8)
	key := SelectionKey{Query: "q", N: 2}
	started := make(chan struct{})
	release := make(chan struct{})
	var leaderDone sync.WaitGroup
	leaderDone.Add(1)
	go func() {
		defer leaderDone.Done()
		_, hit, err := c.GetOrCompute(key, func() ([]query.WeightedPartition, error) {
			close(started)
			<-release
			return sel(1), nil // stale: computed against the "old snapshot"
		})
		// The leader itself still gets its own result (its request began
		// before the swap), as a miss.
		if hit || err != nil {
			t.Errorf("leader: hit=%v err=%v, want miss", hit, err)
		}
	}()
	<-started
	c.Invalidate()
	release <- struct{}{}
	leaderDone.Wait()
	if c.Len() != 0 {
		t.Fatal("mid-flight selection survived invalidation")
	}
	// A fresh lookup recomputes: the stale flight is invisible.
	got, hit, err := c.GetOrCompute(key, func() ([]query.WeightedPartition, error) { return sel(5, 6), nil })
	if err != nil || hit || len(got) != 2 {
		t.Fatalf("post-invalidate lookup: sel=%v hit=%v err=%v, want fresh miss", got, hit, err)
	}
}

// TestSelectionCacheSingleFlight drives many concurrent lookups of one key
// and requires exactly one compute; everyone shares its result.
func TestSelectionCacheSingleFlight(t *testing.T) {
	c := NewSelectionCache(8)
	key := SelectionKey{Query: "hot", N: 7}
	var calls atomic.Int32
	gate := make(chan struct{})
	want := sel(2, 4, 6)
	const workers = 16
	results := make([][]query.WeightedPartition, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-gate
			got, _, err := c.GetOrCompute(key, func() ([]query.WeightedPartition, error) {
				calls.Add(1)
				return want, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[w] = got
		}(w)
	}
	close(gate)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times under concurrency, want 1", n)
	}
	for w, got := range results {
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("worker %d got %v, want %v", w, got, want)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != workers-1 {
		t.Fatalf("stats = %+v, want 1 miss / %d hits", st, workers-1)
	}
}

// TestSelectionCacheConcurrentChurn hammers lookups, invalidations and
// distinct keys together (run under -race in CI).
func TestSelectionCacheConcurrentChurn(t *testing.T) {
	c := NewSelectionCache(4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := SelectionKey{Query: fmt.Sprintf("q%d", (w+i)%6), N: i % 3}
				got, _, err := c.GetOrCompute(key, func() ([]query.WeightedPartition, error) {
					parts := make([]int, key.N+1)
					for j := range parts {
						parts[j] = j
					}
					return sel(parts...), nil
				})
				if err != nil || len(got) != key.N+1 {
					t.Errorf("lookup %v: sel=%v err=%v", key, got, err)
					return
				}
				if i%50 == 0 && w == 0 {
					c.Invalidate()
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 4 {
		t.Fatalf("cache grew to %d entries, cap is 4", c.Len())
	}
}
