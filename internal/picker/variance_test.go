package picker

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHTVarianceBasics(t *testing.T) {
	// p = 1 → census → zero variance.
	if v := HTVariance([]float64{1, 2, 3}, 1); v != 0 {
		t.Fatalf("census variance = %v, want 0", v)
	}
	// Invalid p → NaN.
	if v := HTVariance([]float64{1}, 0); !math.IsNaN(v) {
		t.Fatalf("p=0 variance = %v, want NaN", v)
	}
	// Variance grows as p shrinks.
	vals := []float64{5, 5, 5}
	if v1, v2 := HTVariance(vals, 0.5), HTVariance(vals, 0.1); v2 <= v1 {
		t.Fatalf("variance at p=0.1 (%v) not above p=0.5 (%v)", v2, v1)
	}
}

func TestHTVarianceMatchesEmpiricalPoisson(t *testing.T) {
	// Simulate Poisson sampling of a fixed population and compare the
	// empirical variance of the HT estimator against the analytic Eq 1
	// (true) value Σ (1-p)/p · y².
	rng := rand.New(rand.NewSource(1))
	population := make([]float64, 60)
	for i := range population {
		population[i] = rng.Float64() * 10
	}
	p := 0.3
	var trueVar float64
	for _, y := range population {
		trueVar += (1 - p) / p * y * y
	}
	runs := 20000
	var sum, sumSq float64
	for r := 0; r < runs; r++ {
		var est float64
		for _, y := range population {
			if rng.Float64() < p {
				est += y / p
			}
		}
		sum += est
		sumSq += est * est
	}
	mean := sum / float64(runs)
	empVar := sumSq/float64(runs) - mean*mean
	if math.Abs(empVar-trueVar)/trueVar > 0.1 {
		t.Fatalf("empirical variance %v vs analytic %v", empVar, trueVar)
	}
}

func TestPartitionVarianceExceedsRowVariance(t *testing.T) {
	// Appendix D.2: with rows of the same sign sharing partitions,
	// partition-level sampling has strictly larger variance.
	rowValues := [][]float64{
		{1, 2, 3},
		{4, 5},
		{6},
	}
	var partitionTotals []float64
	for _, rows := range rowValues {
		var s float64
		for _, v := range rows {
			s += v
		}
		partitionTotals = append(partitionTotals, s)
	}
	pv, rv := PartitionVsRowVariance(partitionTotals, rowValues, 0.2)
	if pv <= rv {
		t.Fatalf("partition variance %v not above row variance %v", pv, rv)
	}
	// Single-row partitions → identical variance (the limit the paper
	// notes: one-row partitions make partition sampling = row sampling).
	single := [][]float64{{1}, {4}, {6}}
	pv2, rv2 := PartitionVsRowVariance([]float64{1, 4, 6}, single, 0.2)
	if math.Abs(pv2-rv2) > 1e-12 {
		t.Fatalf("one-row partitions: %v vs %v, want equal", pv2, rv2)
	}
}

func TestPartitionVarianceProperty(t *testing.T) {
	// For non-negative rows, partition variance ≥ row variance at any p.
	f := func(seed int64, pRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := (float64(pRaw%90) + 5) / 100
		nParts := rng.Intn(8) + 1
		rows := make([][]float64, nParts)
		totals := make([]float64, nParts)
		for i := range rows {
			n := rng.Intn(6) + 1
			rows[i] = make([]float64, n)
			for j := range rows[i] {
				rows[i][j] = rng.Float64() * 5
				totals[i] += rows[i][j]
			}
		}
		pv, rv := PartitionVsRowVariance(totals, rows, p)
		return pv >= rv-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestVarianceEstimateHomogeneousStrataZero(t *testing.T) {
	// Identical values within every cluster → zero estimated variance: the
	// stratified estimator is exact.
	members := [][]int{{0, 1, 2}, {3, 4}, {5}}
	values := []float64{7, 7, 7, 3, 3, 9}
	rep := VarianceEstimate(members, func(p int) float64 { return values[p] }, 2, rand.New(rand.NewSource(1)))
	if rep.TotalVar != 0 {
		t.Fatalf("homogeneous strata variance = %v, want 0", rep.TotalVar)
	}
	if rep.CI95() != 0 {
		t.Fatalf("CI = %v, want 0", rep.CI95())
	}
}

func TestVarianceEstimateSingletonStrataAreCensus(t *testing.T) {
	members := [][]int{{0}, {1}, {2}}
	rep := VarianceEstimate(members, func(p int) float64 { return float64(p) * 100 }, 3, rand.New(rand.NewSource(2)))
	if rep.TotalVar != 0 || rep.ExtraReads != 0 {
		t.Fatalf("singleton strata: var %v, extra reads %d; want 0/0", rep.TotalVar, rep.ExtraReads)
	}
}

func TestVarianceEstimateHeterogeneousStrataPositive(t *testing.T) {
	members := [][]int{{0, 1, 2, 3}}
	values := []float64{0, 10, 20, 30}
	rep := VarianceEstimate(members, func(p int) float64 { return values[p] }, 4, rand.New(rand.NewSource(3)))
	if rep.TotalVar <= 0 {
		t.Fatalf("heterogeneous stratum variance = %v, want > 0", rep.TotalVar)
	}
	// With all 4 probed, s² is the exact within-stratum sample variance:
	// mean 15, s² = (225+25+25+225)/3.
	wantS2 := 500.0 / 3
	if math.Abs(rep.Strata[0].S2-wantS2) > 1e-9 {
		t.Fatalf("s² = %v, want %v", rep.Strata[0].S2, wantS2)
	}
	if want := 4 * 3 * wantS2; math.Abs(rep.TotalVar-want) > 1e-9 {
		t.Fatalf("Var = %v, want N(N-1)s² = %v", rep.TotalVar, want)
	}
}

func TestVarianceEstimateAccountsProbeReads(t *testing.T) {
	members := [][]int{{0, 1, 2, 3, 4}, {5, 6}}
	rep := VarianceEstimate(members, func(p int) float64 { return float64(p) }, 3, rand.New(rand.NewSource(4)))
	// First stratum probes 3 (2 extra), second probes 2 (1 extra).
	if rep.ExtraReads != 3 {
		t.Fatalf("extra reads = %d, want 3", rep.ExtraReads)
	}
}

func TestVarianceEstimateCoversTrueValue(t *testing.T) {
	// End-to-end calibration: strata with known within-stratum variance;
	// the 95% CI from the estimated variance should cover the true total
	// for most random draws of the estimator.
	rng := rand.New(rand.NewSource(5))
	nStrata, per := 10, 8
	values := make([]float64, nStrata*per)
	members := make([][]int, nStrata)
	var truth float64
	for s := 0; s < nStrata; s++ {
		base := rng.Float64() * 100
		for j := 0; j < per; j++ {
			id := s*per + j
			values[id] = base + rng.NormFloat64()*5
			truth += values[id]
			members[s] = append(members[s], id)
		}
	}
	value := func(p int) float64 { return values[p] }
	covered := 0
	trials := 200
	for trial := 0; trial < trials; trial++ {
		trng := rand.New(rand.NewSource(int64(trial)))
		// One random exemplar per stratum, weighted by stratum size.
		var est float64
		for _, m := range members {
			est += float64(len(m)) * values[m[trng.Intn(len(m))]]
		}
		rep := VarianceEstimate(members, value, 4, trng)
		if math.Abs(est-truth) <= rep.CI95() {
			covered++
		}
	}
	if frac := float64(covered) / float64(trials); frac < 0.85 {
		t.Fatalf("95%% CI covered truth in only %.0f%% of trials", frac*100)
	}
}
