package picker

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ps3/internal/metrics"
	"ps3/internal/query"
	"ps3/internal/stats"
	"ps3/internal/table"
)

// testEnv bundles a small synthetic table, its statistics and a trained
// picker for use across tests.
type testEnv struct {
	tbl *table.Table
	ts  *stats.TableStats
	p   *Picker
	exs []Example
}

// newTestEnv builds a table where partition importance is learnable: the
// numeric column "v" is sorted so later partitions carry larger values, and
// the categorical column "g" has a rare group confined to one partition.
func newTestEnv(t testing.TB, parts, rowsPer int, cfg Config) *testEnv {
	t.Helper()
	schema := table.MustSchema(
		table.Column{Name: "v", Kind: table.Numeric, Positive: true},
		table.Column{Name: "w", Kind: table.Numeric},
		table.Column{Name: "g", Kind: table.Categorical},
	)
	b, err := table.NewBuilder(schema, rowsPer)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	total := parts * rowsPer
	for i := 0; i < total; i++ {
		part := i / rowsPer
		v := float64(part+1) * (1 + rng.Float64()) // increasing with partition
		w := rng.NormFloat64()
		g := "common"
		if part == parts-1 && i%4 == 0 {
			g = "rare"
		} else if i%2 == 0 {
			g = "even"
		}
		if err := b.Append([]float64{v, w, 0}, []string{"", "", g}); err != nil {
			t.Fatal(err)
		}
	}
	tbl := b.Finish()
	ts, err := stats.Build(tbl, stats.Options{GroupableCols: []string{"g"}})
	if err != nil {
		t.Fatal(err)
	}

	gen, err := query.NewGenerator(query.Workload{
		GroupableCols: []string{"g"},
		PredicateCols: []string{"v", "w", "g"},
		AggCols:       []string{"v", "w"},
	}, tbl, 23)
	if err != nil {
		t.Fatal(err)
	}
	var exs []Example
	for _, q := range gen.SampleN(25) {
		c, err := query.Compile(q, tbl)
		if err != nil {
			t.Fatal(err)
		}
		totalAns, perPart := c.GroundTruth(tbl)
		exs = append(exs, Example{
			Query:     q,
			Compiled:  c,
			Features:  ts.Features(q),
			Contrib:   Contribution(c, perPart, totalAns),
			PerPart:   perPart,
			TruthVals: c.FinalValues(totalAns),
		})
	}
	p, err := Train(ts, exs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &testEnv{tbl: tbl, ts: ts, p: p, exs: exs}
}

func TestTrainRequiresExamples(t *testing.T) {
	if _, err := Train(&stats.TableStats{}, nil, Config{}); err == nil {
		t.Fatal("want error with no training examples")
	}
}

func TestTrainBuildsKRegressors(t *testing.T) {
	env := newTestEnv(t, 12, 25, Config{K: 3, Seed: 1})
	if len(env.p.Regs) != 3 {
		t.Fatalf("got %d regressors, want 3", len(env.p.Regs))
	}
	if len(env.p.Thresholds) != 3 {
		t.Fatalf("got %d thresholds, want 3", len(env.p.Thresholds))
	}
}

func TestPickRespectsBudget(t *testing.T) {
	env := newTestEnv(t, 15, 20, Config{Seed: 2})
	for _, ex := range env.exs[:5] {
		for _, n := range []int{1, 3, 7, 14} {
			sel := env.p.Pick(ex.Query, ex.Features, n, rand.New(rand.NewSource(3)))
			if len(sel) > n {
				t.Fatalf("budget %d, selected %d partitions", n, len(sel))
			}
			seen := map[int]bool{}
			for _, wp := range sel {
				if wp.Part < 0 || wp.Part >= 15 {
					t.Fatalf("selected partition %d out of range", wp.Part)
				}
				if seen[wp.Part] {
					t.Fatalf("partition %d selected twice", wp.Part)
				}
				seen[wp.Part] = true
				if wp.Weight < 1 {
					t.Fatalf("partition %d has weight %v < 1", wp.Part, wp.Weight)
				}
			}
		}
	}
}

func TestPickFullBudgetIsExact(t *testing.T) {
	env := newTestEnv(t, 10, 20, Config{Seed: 3})
	ex := env.exs[0]
	sel := env.p.Pick(ex.Query, ex.Features, 10, rand.New(rand.NewSource(1)))
	if len(sel) != 10 {
		t.Fatalf("full budget selected %d of 10", len(sel))
	}
	for _, wp := range sel {
		if wp.Weight != 1 {
			t.Fatalf("full budget weight %v, want 1", wp.Weight)
		}
	}
	est := EstimateFromPerPart(ex.Compiled, ex.PerPart, sel)
	e := metrics.Compare(ex.TruthVals, est)
	if e.AvgRelErr > 1e-9 {
		t.Fatalf("full-budget estimate has error %v", e.AvgRelErr)
	}
}

func TestPickZeroBudget(t *testing.T) {
	env := newTestEnv(t, 8, 15, Config{Seed: 4})
	ex := env.exs[0]
	if sel := env.p.Pick(ex.Query, ex.Features, 0, rand.New(rand.NewSource(1))); len(sel) != 0 {
		t.Fatalf("zero budget selected %d partitions", len(sel))
	}
}

func TestPickerWeightsCoverFilteredPopulation(t *testing.T) {
	// For a COUNT(*) query with no predicate, the weighted sample should
	// roughly reproduce the total row count (weights act as inverse
	// inclusion probabilities / cluster sizes).
	env := newTestEnv(t, 20, 25, Config{Seed: 5})
	q := &query.Query{Aggs: []query.Aggregate{{Kind: query.Count}}}
	c, err := query.Compile(q, env.tbl)
	if err != nil {
		t.Fatal(err)
	}
	features := env.ts.Features(q)
	sel := env.p.Pick(q, features, 8, rand.New(rand.NewSource(6)))
	est, err := c.Estimate(env.tbl, sel)
	if err != nil {
		t.Fatal(err)
	}
	vals := c.FinalValues(est)
	var got float64
	for _, v := range vals {
		got = v[0]
	}
	want := float64(env.tbl.NumRows())
	if got < want*0.5 || got > want*1.5 {
		t.Fatalf("weighted COUNT estimate %v, true %v — weights are off", got, want)
	}
}

func TestContributionDefinition(t *testing.T) {
	// Synthetic per-partition answers: partition 0 contributes 100% of group
	// "a", partition 1 contributes half of each.
	tbl := buildTinyTable(t)
	q := &query.Query{Aggs: []query.Aggregate{{Kind: query.Sum, Expr: query.Col("v")}}}
	c, err := query.Compile(q, tbl)
	if err != nil {
		t.Fatal(err)
	}
	total := c.NewAnswer()
	total.Groups["a"] = []float64{10}
	total.Groups["b"] = []float64{40}
	p0 := c.NewAnswer()
	p0.Groups["a"] = []float64{10}
	p1 := c.NewAnswer()
	p1.Groups["a"] = []float64{0}
	p1.Groups["b"] = []float64{20}
	contrib := Contribution(c, []*query.Answer{p0, p1}, total)
	if contrib[0] != 1 {
		t.Fatalf("partition 0 contribution %v, want 1 (owns all of group a)", contrib[0])
	}
	if contrib[1] != 0.5 {
		t.Fatalf("partition 1 contribution %v, want 0.5 (max ratio over groups)", contrib[1])
	}
}

func buildTinyTable(t *testing.T) *table.Table {
	t.Helper()
	schema := table.MustSchema(table.Column{Name: "v", Kind: table.Numeric})
	b, err := table.NewBuilder(schema, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := b.Append([]float64{float64(i)}, []string{""}); err != nil {
			t.Fatal(err)
		}
	}
	return b.Finish()
}

func TestStageThresholdMonotone(t *testing.T) {
	contrib := []float64{0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.8, 0.9, 1.0}
	k := 4
	prev := -1.0
	for stage := 0; stage < k; stage++ {
		th := stageThreshold(contrib, stage, k, 0.1)
		if th < prev {
			t.Fatalf("stage %d threshold %v below stage %d's %v", stage, th, stage-1, prev)
		}
		prev = th
	}
	// Stage 0 separates zero from nonzero.
	if th := stageThreshold(contrib, 0, k, 0.1); th != 0 {
		t.Fatalf("stage 0 threshold %v, want 0", th)
	}
}

func TestStageLabelsBalanceQueries(t *testing.T) {
	// Algorithm 4: positive labels scale with 1/sqrt(positives) so each
	// query carries equal total weight.
	contrib := []float64{0, 0, 0, 0.5, 0.9}
	labels := stageLabels(contrib, 0, 4, 0.1)
	if len(labels) != 5 {
		t.Fatalf("got %d labels", len(labels))
	}
	wantPos := math.Sqrt(1.0 / 2)
	wantNeg := -math.Sqrt(1.0 / 3)
	for i, c := range contrib {
		if c > 0 && math.Abs(labels[i]-wantPos) > 1e-12 {
			t.Fatalf("positive label %v, want %v", labels[i], wantPos)
		}
		if c == 0 && math.Abs(labels[i]-wantNeg) > 1e-12 {
			t.Fatalf("negative label %v, want %v", labels[i], wantNeg)
		}
	}
}

func TestAllocateSamplesRespectsBudgetAndDecay(t *testing.T) {
	groups := [][]int{
		make([]int, 40), // least important
		make([]int, 30),
		make([]int, 20), // most important
	}
	budget := 30
	alloc := allocateSamples(groups, budget, 2)
	total := 0
	for i, a := range alloc {
		if a < 0 || a > len(groups[i]) {
			t.Fatalf("alloc[%d] = %d out of range", i, a)
		}
		total += a
	}
	if total != budget {
		t.Fatalf("allocated %d, want %d", total, budget)
	}
	// Sampling *rate* must not decrease with importance.
	prevRate := -1.0
	for i, a := range alloc {
		rate := float64(a) / float64(len(groups[i]))
		if rate+1e-9 < prevRate {
			t.Fatalf("rate decreased with importance: %v after %v", rate, prevRate)
		}
		prevRate = rate
	}
}

func TestAllocateSamplesBudgetExceedsPopulation(t *testing.T) {
	groups := [][]int{make([]int, 3), make([]int, 2)}
	alloc := allocateSamples(groups, 10, 2)
	if alloc[0] != 3 || alloc[1] != 2 {
		t.Fatalf("alloc = %v, want full groups", alloc)
	}
}

func TestAllocateSamplesAlphaOneIsProportional(t *testing.T) {
	groups := [][]int{make([]int, 60), make([]int, 40)}
	alloc := allocateSamples(groups, 50, 1)
	// α=1 → uniform rate ⇒ 30/20 split.
	if alloc[0] != 30 || alloc[1] != 20 {
		t.Fatalf("alloc = %v, want [30 20]", alloc)
	}
}

func TestAllocateSamplesProperty(t *testing.T) {
	f := func(seed int64, gRaw, bRaw uint8, alphaRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(gRaw%4) + 1
		groups := make([][]int, k)
		pop := 0
		for i := range groups {
			n := rng.Intn(30) + 1
			groups[i] = make([]int, n)
			pop += n
		}
		budget := int(bRaw) % (pop + 5)
		alpha := 1 + float64(alphaRaw%40)/10
		alloc := allocateSamples(groups, budget, alpha)
		total := 0
		for i, a := range alloc {
			if a < 0 || a > len(groups[i]) {
				return false
			}
			total += a
		}
		want := budget
		if want > pop {
			want = pop
		}
		return total == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sel := Uniform(50, 10, rng)
	if len(sel) != 10 {
		t.Fatalf("selected %d, want 10", len(sel))
	}
	seen := map[int]bool{}
	for _, wp := range sel {
		if wp.Weight != 5 {
			t.Fatalf("uniform weight %v, want 50/10=5", wp.Weight)
		}
		if seen[wp.Part] {
			t.Fatalf("duplicate partition %d", wp.Part)
		}
		seen[wp.Part] = true
	}
}

func TestUniformIsUnbiasedForCounts(t *testing.T) {
	// Over many runs, the weighted partition count should match the total.
	var sum float64
	runs := 500
	for r := 0; r < runs; r++ {
		sel := Uniform(40, 8, rand.New(rand.NewSource(int64(r))))
		for _, wp := range sel {
			_ = wp.Part
			sum += wp.Weight // Σ weights estimates N
		}
	}
	avg := sum / float64(runs)
	if math.Abs(avg-40) > 1e-9 {
		t.Fatalf("E[Σ weights] = %v, want exactly 40 (uniform w/o replacement)", avg)
	}
}

func TestFunnelOrdersByContribution(t *testing.T) {
	// The most important funnel group should have higher average true
	// contribution than the least important group, on training queries.
	env := newTestEnv(t, 20, 25, Config{Seed: 7})
	better, worse, cnt := 0.0, 0.0, 0
	for _, ex := range env.exs {
		upSlot, _, _, _ := env.ts.Space.SelectivitySlots()
		var candidates []int
		for i := range ex.Features {
			if ex.Features[i][upSlot] > 0 {
				candidates = append(candidates, i)
			}
		}
		groups := env.p.importanceGroups(ex.Features, candidates, evalFlat, nil)
		if len(groups) < 2 {
			continue
		}
		lo, hi := groups[0], groups[len(groups)-1]
		var loAvg, hiAvg float64
		for _, i := range lo {
			loAvg += ex.Contrib[i]
		}
		for _, i := range hi {
			hiAvg += ex.Contrib[i]
		}
		loAvg /= float64(len(lo))
		hiAvg /= float64(len(hi))
		worse += loAvg
		better += hiAvg
		cnt++
	}
	if cnt == 0 {
		t.Skip("no multi-group queries in sample")
	}
	if better <= worse {
		t.Fatalf("funnel's top group avg contribution %v not above bottom group %v", better/float64(cnt), worse/float64(cnt))
	}
}

func TestOutlierDetectionFindsRareBitmapGroup(t *testing.T) {
	env := newTestEnv(t, 20, 25, Config{Seed: 8})
	q := &query.Query{
		Aggs:    []query.Aggregate{{Kind: query.Count}},
		GroupBy: []string{"g"},
	}
	outliers, rest := env.p.findOutliers(q, env.tbl.NumParts())
	if len(outliers)+len(rest) != env.tbl.NumParts() {
		t.Fatalf("outliers %d + rest %d != %d parts", len(outliers), len(rest), env.tbl.NumParts())
	}
	// The last partition holds the unique "rare" group → it should be an
	// outlier candidate.
	found := false
	for _, o := range outliers {
		if o == env.tbl.NumParts()-1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("rare-group partition not flagged as outlier; outliers = %v", outliers)
	}
}

func TestNoGroupByNoOutliers(t *testing.T) {
	env := newTestEnv(t, 10, 20, Config{Seed: 9})
	q := &query.Query{Aggs: []query.Aggregate{{Kind: query.Count}}}
	outliers, rest := env.p.findOutliers(q, 10)
	if len(outliers) != 0 || len(rest) != 10 {
		t.Fatalf("no-group-by query produced %d outliers", len(outliers))
	}
}

func TestLesionVariantsStillPick(t *testing.T) {
	env := newTestEnv(t, 15, 20, Config{Seed: 10})
	ex := env.exs[0]
	for _, mutate := range []func(*Config){
		func(c *Config) { c.DisableCluster = true },
		func(c *Config) { c.DisableOutlier = true },
		func(c *Config) { c.DisableRegressor = true },
		func(c *Config) { c.UnbiasedExemplar = true },
	} {
		p := *env.p
		cfg := p.Cfg
		mutate(&cfg)
		p.Cfg = cfg
		sel := p.Pick(ex.Query, ex.Features, 5, rand.New(rand.NewSource(1)))
		if len(sel) == 0 || len(sel) > 5 {
			t.Fatalf("lesion variant selected %d partitions for budget 5", len(sel))
		}
	}
}

func TestOraclePickBeatsRandomOnAverage(t *testing.T) {
	// The oracle funnel (true contributions) with α-decayed allocation should
	// beat uniform random sampling on average across queries; individual
	// queries are noisy since both select randomly within groups.
	env := newTestEnv(t, 20, 25, Config{Seed: 12})
	n := 5
	var oracleErr, randErr float64
	runs := 10
	for _, ex := range env.exs {
		if len(ex.TruthVals) == 0 {
			continue
		}
		for r := 0; r < runs; r++ {
			rng := rand.New(rand.NewSource(int64(r)))
			oSel := env.p.PickWithOracle(ex.Query, ex.Features, ex.Contrib, n, rng)
			oracleErr += metrics.Compare(ex.TruthVals, EstimateFromPerPart(ex.Compiled, ex.PerPart, oSel)).AvgRelErr
			rSel := Uniform(20, n, rand.New(rand.NewSource(int64(r)+500)))
			randErr += metrics.Compare(ex.TruthVals, EstimateFromPerPart(ex.Compiled, ex.PerPart, rSel)).AvgRelErr
		}
	}
	if oracleErr >= randErr {
		t.Fatalf("oracle picking (total err %v) did not beat uniform (total err %v) on average", oracleErr, randErr)
	}
}

func TestLSSTrainAndPick(t *testing.T) {
	env := newTestEnv(t, 15, 20, Config{Seed: 13})
	budgets := []float64{0.2, 0.4}
	l, err := TrainLSS(env.ts, env.exs, budgets, 3)
	if err != nil {
		t.Fatal(err)
	}
	ex := env.exs[0]
	for _, b := range budgets {
		sel := l.Pick(ex.Features, b, rand.New(rand.NewSource(2)))
		want := int(b*15 + 0.5)
		if len(sel) == 0 || len(sel) > want+1 {
			t.Fatalf("LSS budget %v selected %d, want ≈%d", b, len(sel), want)
		}
	}
	// PickN at arbitrary budget not in the sweep uses nearest strata size.
	sel := l.PickN(ex.Features, 7, rand.New(rand.NewSource(3)))
	if len(sel) == 0 || len(sel) > 7 {
		t.Fatalf("LSS PickN(7) selected %d", len(sel))
	}
}

func TestEstimateFromPerPartMatchesDirectEval(t *testing.T) {
	env := newTestEnv(t, 10, 20, Config{Seed: 14})
	ex := env.exs[0]
	sel := []query.WeightedPartition{{Part: 2, Weight: 3}, {Part: 7, Weight: 1.5}}
	got := EstimateFromPerPart(ex.Compiled, ex.PerPart, sel)
	direct, err := ex.Compiled.Estimate(env.tbl, sel)
	if err != nil {
		t.Fatal(err)
	}
	want := ex.Compiled.FinalValues(direct)
	if len(got) != len(want) {
		t.Fatalf("group counts differ: %d vs %d", len(got), len(want))
	}
	for g, wv := range want {
		gv, ok := got[g]
		if !ok {
			t.Fatalf("missing group %q", g)
		}
		for j := range wv {
			if math.Abs(gv[j]-wv[j]) > 1e-9 {
				t.Fatalf("group %q agg %d: %v vs %v", g, j, gv[j], wv[j])
			}
		}
	}
}

func TestPickerErrorDecreasesWithBudget(t *testing.T) {
	env := newTestEnv(t, 20, 25, Config{Seed: 15})
	budgets := []int{2, 6, 12, 18}
	var prev float64 = math.Inf(1)
	violations := 0
	for _, n := range budgets {
		var errSum float64
		cnt := 0
		for _, ex := range env.exs {
			if len(ex.TruthVals) == 0 {
				continue
			}
			sel := env.p.Pick(ex.Query, ex.Features, n, rand.New(rand.NewSource(int64(n))))
			est := EstimateFromPerPart(ex.Compiled, ex.PerPart, sel)
			errSum += metrics.Compare(ex.TruthVals, est).AvgRelErr
			cnt++
		}
		cur := errSum / float64(cnt)
		if cur > prev*1.1 { // allow small noise
			violations++
		}
		prev = cur
	}
	if violations > 1 {
		t.Fatalf("error not trending down with budget (%d violations)", violations)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.K != 4 || c.Alpha != 2 || c.OutlierBudgetFrac != 0.10 {
		t.Fatalf("defaults = K%d α%v outlier %v, want paper values 4/2/0.10", c.K, c.Alpha, c.OutlierBudgetFrac)
	}
	if c.MaxPredClauses != 10 {
		t.Fatalf("MaxPredClauses default %d, want 10", c.MaxPredClauses)
	}
}

func TestComplexPredicateFallsBackToRandom(t *testing.T) {
	// Build a predicate with > MaxPredClauses clauses; picker must still
	// produce a valid selection (via the random fallback of Appendix B.1).
	env := newTestEnv(t, 15, 20, Config{Seed: 16, MaxPredClauses: 2})
	clauses := []query.Pred{
		&query.Clause{Col: "v", Op: query.OpGt, Num: 1},
		&query.Clause{Col: "v", Op: query.OpLt, Num: 100},
		&query.Clause{Col: "w", Op: query.OpGt, Num: -10},
	}
	q := &query.Query{
		Aggs: []query.Aggregate{{Kind: query.Count}},
		Pred: query.NewAnd(clauses...),
	}
	feats := env.ts.Features(q)
	sel := env.p.Pick(q, feats, 5, rand.New(rand.NewSource(1)))
	if len(sel) == 0 || len(sel) > 5 {
		t.Fatalf("complex-predicate fallback selected %d", len(sel))
	}
}
