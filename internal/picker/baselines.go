package picker

import (
	"math/rand"

	"ps3/internal/query"
	"ps3/internal/stats"
)

// Uniform samples n partitions uniformly at random out of total, scaling
// weights by total/n (§5.1.3 "Random Sampling").
func Uniform(total, n int, rng *rand.Rand) []query.WeightedPartition {
	if n >= total {
		sel := make([]query.WeightedPartition, total)
		for i := range sel {
			sel[i] = query.WeightedPartition{Part: i, Weight: 1}
		}
		return sel
	}
	if n <= 0 {
		return nil
	}
	return randomSelect(allParts(total), n, rng)
}

// UniformFilter samples uniformly among partitions that pass the
// selectivity filter (selectivity_upper > 0), which requires summary
// statistics (§5.1.3 "Random+Filter"). Weights scale by the filtered
// population size.
func UniformFilter(ts *stats.TableStats, features [][]float64, n int, rng *rand.Rand) []query.WeightedPartition {
	upSlot, _, _, _ := ts.Space.SelectivitySlots()
	var candidates []int
	for i, f := range features {
		if f[upSlot] > 0 {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	if n >= len(candidates) {
		sel := make([]query.WeightedPartition, 0, len(candidates))
		for _, i := range candidates {
			sel = append(sel, query.WeightedPartition{Part: i, Weight: 1})
		}
		return sel
	}
	if n <= 0 {
		return nil
	}
	return randomSelect(candidates, n, rng)
}
