package picker

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ps3/internal/gbt"
	"ps3/internal/metrics"
	"ps3/internal/query"
	"ps3/internal/stats"
)

// LSS is the modified Learned Stratified Sampling baseline of Appendix C.1:
// a single offline regressor predicts partition contribution; at query time
// partitions passing the selectivity filter are stratified into equi-width
// strata over the prediction range, budget is allocated proportionally to
// stratum size, and samples are drawn uniformly within strata. The target
// stratum *size* per sampling budget is selected by exhaustively sweeping on
// the training set (Table 8).
type LSS struct {
	TS    *stats.TableStats
	Model *gbt.Model
	// StrataSize maps a budget fraction key (percent, rounded) to the
	// chosen stratum size; 0 falls back to DefaultStrataSize.
	StrataSize map[int]int
	// DefaultStrataSize is used for unswept budgets.
	DefaultStrataSize int
	Seed              int64
}

// TrainLSS fits the LSS regressor on partition contributions and sweeps
// stratum sizes per budget on the training examples.
func TrainLSS(ts *stats.TableStats, examples []Example, budgets []float64, seed int64) (*LSS, error) {
	if len(examples) == 0 {
		return nil, fmt.Errorf("picker: no training examples for LSS")
	}
	var xs [][]float64
	var ys []float64
	for _, ex := range examples {
		xs = append(xs, ex.Features...)
		ys = append(ys, ex.Contrib...)
	}
	model, err := gbt.Train(xs, ys, gbt.Params{
		Trees: 40, MaxDepth: 4, LearningRate: 0.25,
		Subsample: 0.9, ColSample: 0.9, Seed: seed,
	})
	if err != nil {
		return nil, fmt.Errorf("picker: training LSS regressor: %w", err)
	}
	l := &LSS{TS: ts, Model: model, StrataSize: map[int]int{}, DefaultStrataSize: 0, Seed: seed}

	n := len(examples[0].Features)
	candSizes := strataSizeCandidates(n)
	l.DefaultStrataSize = candSizes[len(candSizes)/2]
	probe := examples
	if len(probe) > 30 {
		probe = probe[:30]
	}
	rng := newRand(seed + 31)
	for _, b := range budgets {
		budget := int(math.Round(b * float64(n)))
		if budget < 1 {
			budget = 1
		}
		bestSize, bestErr := l.DefaultStrataSize, math.Inf(1)
		for _, size := range candSizes {
			var sum float64
			for _, ex := range probe {
				sel := l.pickWithStrataSize(ex.Features, budget, size, rng)
				est := EstimateFromPerPart(ex.Compiled, ex.PerPart, sel)
				sum += metrics.Compare(ex.TruthVals, est).AvgRelErr
			}
			if avg := sum / float64(len(probe)); avg < bestErr {
				bestErr, bestSize = avg, size
			}
		}
		l.StrataSize[budgetKey(b)] = bestSize
	}
	return l, nil
}

// strataSizeCandidates returns the stratum sizes to sweep, scaled to the
// partition count (the paper sweeps 10..820 for 1000 partitions).
func strataSizeCandidates(n int) []int {
	var out []int
	for _, frac := range []float64{0.01, 0.02, 0.05, 0.08, 0.12, 0.2, 0.3, 0.5, 0.8} {
		s := int(math.Round(frac * float64(n)))
		if s < 1 {
			s = 1
		}
		if len(out) == 0 || s != out[len(out)-1] {
			out = append(out, s)
		}
	}
	return out
}

func budgetKey(b float64) int { return int(math.Round(b * 100)) }

// Pick selects a weighted partition sample at the given budget fraction.
func (l *LSS) Pick(features [][]float64, budgetFrac float64, rng *rand.Rand) []query.WeightedPartition {
	n := len(features)
	budget := int(math.Round(budgetFrac * float64(n)))
	if budget < 1 {
		budget = 1
	}
	size, ok := l.StrataSize[budgetKey(budgetFrac)]
	if !ok || size <= 0 {
		size = l.DefaultStrataSize
	}
	return l.pickWithStrataSize(features, budget, size, rng)
}

// PickN selects a weighted sample with an absolute partition budget.
func (l *LSS) PickN(features [][]float64, budget int, rng *rand.Rand) []query.WeightedPartition {
	frac := float64(budget) / float64(len(features))
	size, ok := l.StrataSize[budgetKey(frac)]
	if !ok || size <= 0 {
		size = l.DefaultStrataSize
	}
	return l.pickWithStrataSize(features, budget, size, rng)
}

func (l *LSS) pickWithStrataSize(features [][]float64, budget, strataSize int, rng *rand.Rand) []query.WeightedPartition {
	upSlot, _, _, _ := l.TS.Space.SelectivitySlots()
	var candidates []int
	for i, f := range features {
		if f[upSlot] > 0 {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	if budget >= len(candidates) {
		sel := make([]query.WeightedPartition, 0, len(candidates))
		for _, i := range candidates {
			sel = append(sel, query.WeightedPartition{Part: i, Weight: 1})
		}
		return sel
	}

	// Rank candidates by predicted contribution, then cut the prediction
	// range into equi-width strata targeting ~strataSize partitions each.
	preds := make([]float64, len(candidates))
	for i, c := range candidates {
		preds[i] = l.Model.Predict(features[c])
	}
	order := make([]int, len(candidates))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return preds[order[a]] < preds[order[b]] })

	numStrata := (len(candidates) + strataSize - 1) / strataSize
	if numStrata < 1 {
		numStrata = 1
	}
	if numStrata > budget {
		numStrata = budget
	}
	lo, hi := preds[order[0]], preds[order[len(order)-1]]
	var strata [][]int
	if hi <= lo {
		strata = [][]int{candidates}
	} else {
		strata = make([][]int, numStrata)
		w := (hi - lo) / float64(numStrata)
		for i, c := range candidates {
			s := int((preds[i] - lo) / w)
			if s >= numStrata {
				s = numStrata - 1
			}
			strata[s] = append(strata[s], c)
		}
	}

	// Proportional allocation, ≥1 sample per non-empty stratum when budget
	// allows.
	var nonEmpty [][]int
	for _, s := range strata {
		if len(s) > 0 {
			nonEmpty = append(nonEmpty, s)
		}
	}
	alloc := proportionalAlloc(nonEmpty, budget)
	var sel []query.WeightedPartition
	for si, s := range nonEmpty {
		ni := alloc[si]
		if ni <= 0 {
			continue
		}
		if ni >= len(s) {
			for _, i := range s {
				sel = append(sel, query.WeightedPartition{Part: i, Weight: 1})
			}
			continue
		}
		sel = append(sel, randomSelect(s, ni, rng)...)
	}
	return sel
}

// proportionalAlloc splits budget across strata proportionally to their
// sizes with largest-remainder rounding.
func proportionalAlloc(strata [][]int, budget int) []int {
	total := 0
	for _, s := range strata {
		total += len(s)
	}
	alloc := make([]int, len(strata))
	if total == 0 || budget <= 0 {
		return alloc
	}
	type frac struct {
		idx int
		f   float64
	}
	used := 0
	var fracs []frac
	for i, s := range strata {
		exact := float64(budget) * float64(len(s)) / float64(total)
		a := int(exact)
		if a > len(s) {
			a = len(s)
		}
		alloc[i] = a
		used += a
		fracs = append(fracs, frac{i, exact - float64(a)})
	}
	sort.SliceStable(fracs, func(a, b int) bool { return fracs[a].f > fracs[b].f })
	for _, fr := range fracs {
		if used >= budget {
			break
		}
		if alloc[fr.idx] < len(strata[fr.idx]) {
			alloc[fr.idx]++
			used++
		}
	}
	for i := range strata {
		for used < budget && alloc[i] < len(strata[i]) {
			alloc[i]++
			used++
		}
	}
	return alloc
}
