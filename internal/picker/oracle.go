package picker

import (
	"math/rand"

	"ps3/internal/query"
)

// PickWithOracle is Pick with the learned funnel replaced by an oracle that
// groups partitions by their *true* contributions using the same
// exponentially spaced thresholds the funnel targets. It upper-bounds the
// benefit of importance-style sampling (Fig 10, right).
func (p *Picker) PickWithOracle(q *query.Query, features [][]float64, contrib []float64, n int, rng *rand.Rand) []query.WeightedPartition {
	total := len(features)
	if n >= total {
		sel := make([]query.WeightedPartition, total)
		for i := range sel {
			sel[i] = query.WeightedPartition{Part: i, Weight: 1}
		}
		return sel
	}
	if n <= 0 {
		return nil
	}
	if rng == nil {
		rng = newRand(p.Cfg.Seed)
	}
	var selection []query.WeightedPartition
	inliers := allParts(total)
	budget := n

	upSlot, _, _, _ := p.TS.Space.SelectivitySlots()
	var candidates []int
	for _, i := range inliers {
		if features[i][upSlot] > 0 {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return selection
	}
	if budget >= len(candidates) {
		for _, i := range candidates {
			selection = append(selection, query.WeightedPartition{Part: i, Weight: 1})
		}
		return selection
	}

	// Oracle funnel: thresholds from true contributions over the candidate
	// set, identical spacing to trainFunnel.
	sub := make([]float64, len(candidates))
	for i, c := range candidates {
		sub[i] = contrib[c]
	}
	groups := [][]int{candidates}
	for stage := 0; stage < p.Cfg.K; stage++ {
		th := stageThreshold(sub, stage, p.Cfg.K, p.Cfg.TopFrac)
		last := groups[len(groups)-1]
		var stay, advance []int
		for _, i := range last {
			if contrib[i] > th {
				advance = append(advance, i)
			} else {
				stay = append(stay, i)
			}
		}
		if len(advance) == 0 {
			break
		}
		groups[len(groups)-1] = stay
		groups = append(groups, advance)
	}
	nonEmpty := groups[:0]
	for _, g := range groups {
		if len(g) > 0 {
			nonEmpty = append(nonEmpty, g)
		}
	}
	groups = nonEmpty

	alloc := allocateSamples(groups, budget, p.Cfg.Alpha)
	for gi, g := range groups {
		ni := alloc[gi]
		if ni <= 0 {
			continue
		}
		if ni >= len(g) {
			for _, i := range g {
				selection = append(selection, query.WeightedPartition{Part: i, Weight: 1})
			}
			continue
		}
		selection = append(selection, randomSelect(g, ni, rng)...)
	}
	return selection
}
