package picker

import (
	"math/rand"
	"testing"
	"time"

	"ps3/internal/cluster"
	"ps3/internal/exec"
	"ps3/internal/query"
	"ps3/internal/stats"
	"ps3/internal/table"
)

// selectionsEqual compares weighted selections bit for bit (order, partition
// ids, float weights).
func selectionsEqual(a, b []query.WeightedPartition) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Part != b[i].Part || a[i].Weight != b[i].Weight {
			return false
		}
	}
	return true
}

// TestPickBatchMatchesReference is the end-to-end bit-identity contract of
// the batched pick path: for every test query, every budget and every
// parallelism setting, PickBatch must return exactly the selection of the
// legacy Pick (reference feature matrix + flat per-row funnel) and of
// PickReference (reference features + pointer-tree funnel), with identical
// RNG streams.
func TestPickBatchMatchesReference(t *testing.T) {
	env := newTestEnv(t, 20, 25, Config{Seed: 5})
	budgets := []int{1, 2, 4, 7, 12, 19, 20, 25}
	for qi, ex := range env.exs {
		for _, n := range budgets {
			ref := env.p.PickReference(ex.Query, ex.Features, n, rand.New(rand.NewSource(int64(qi*100+n))))
			legacy := env.p.Pick(ex.Query, ex.Features, n, rand.New(rand.NewSource(int64(qi*100+n))))
			if !selectionsEqual(ref, legacy) {
				t.Fatalf("query %d budget %d: flat per-row pick diverges from pointer-tree reference", qi, n)
			}
			for _, par := range []int{1, 2, 0} {
				got := env.p.PickBatch(ex.Query, n, rand.New(rand.NewSource(int64(qi*100+n))), exec.Options{Parallelism: par})
				if !selectionsEqual(ref, got) {
					t.Fatalf("query %d budget %d parallelism %d: PickBatch diverges from reference\nref: %v\ngot: %v",
						qi, n, par, ref, got)
				}
			}
		}
	}
}

// TestPickBatchMatchesReferenceLesions re-runs the bit-identity check with
// each pipeline component disabled, so the batch path is exercised through
// every branch of Algorithm 1 (no outliers, no funnel, no clustering, random
// fallback under complex predicates).
func TestPickBatchMatchesReferenceLesions(t *testing.T) {
	lesions := []Config{
		{Seed: 6, DisableOutlier: true},
		{Seed: 6, DisableRegressor: true},
		{Seed: 6, DisableCluster: true},
		{Seed: 6, MaxPredClauses: 1}, // force the random-fallback branch
		{Seed: 6, Alpha: 1},
	}
	for li, cfg := range lesions {
		env := newTestEnv(t, 14, 20, cfg)
		for qi, ex := range env.exs[:8] {
			for _, n := range []int{2, 5, 9} {
				ref := env.p.PickReference(ex.Query, ex.Features, n, rand.New(rand.NewSource(int64(qi*31+n))))
				got := env.p.PickBatch(ex.Query, n, rand.New(rand.NewSource(int64(qi*31+n))), exec.Options{Parallelism: 0})
				if !selectionsEqual(ref, got) {
					t.Fatalf("lesion %d query %d budget %d: PickBatch diverges from reference", li, qi, n)
				}
			}
		}
	}
}

// TestPickBatchConcurrent hammers one picker from many goroutines (each
// query picked concurrently with itself and others) and checks every result
// against the sequential reference; run under -race this also proves the
// scratch pool and feature plans are data-race free.
func TestPickBatchConcurrent(t *testing.T) {
	env := newTestEnv(t, 18, 22, Config{Seed: 8})
	type job struct{ qi, n, rep int }
	var jobs []job
	for qi := range env.exs[:6] {
		for _, n := range []int{3, 8} {
			for rep := 0; rep < 3; rep++ {
				jobs = append(jobs, job{qi, n, rep})
			}
		}
	}
	want := make([][]query.WeightedPartition, len(jobs))
	for ji, j := range jobs {
		ex := env.exs[j.qi]
		want[ji] = env.p.PickReference(ex.Query, ex.Features, j.n, rand.New(rand.NewSource(int64(j.qi*7+j.n))))
	}
	got := make([][]query.WeightedPartition, len(jobs))
	done := make(chan struct{}, len(jobs))
	for ji, j := range jobs {
		go func(ji int, j job) {
			ex := env.exs[j.qi]
			got[ji] = env.p.PickBatch(ex.Query, j.n, rand.New(rand.NewSource(int64(j.qi*7+j.n))), exec.Options{Parallelism: 2})
			done <- struct{}{}
		}(ji, j)
	}
	for range jobs {
		<-done
	}
	for ji := range jobs {
		if !selectionsEqual(want[ji], got[ji]) {
			t.Fatalf("concurrent PickBatch job %d diverges from sequential reference", ji)
		}
	}
}

// TestPickBatchDegenerateBudgets covers the no-featurization early exits.
func TestPickBatchDegenerateBudgets(t *testing.T) {
	env := newTestEnv(t, 10, 20, Config{Seed: 9})
	ex := env.exs[0]
	if sel := env.p.PickBatch(ex.Query, 0, rand.New(rand.NewSource(1)), exec.Options{}); len(sel) != 0 {
		t.Fatalf("budget 0 selected %d partitions", len(sel))
	}
	sel := env.p.PickBatch(ex.Query, 10, rand.New(rand.NewSource(1)), exec.Options{})
	if len(sel) != 10 {
		t.Fatalf("full budget selected %d partitions, want 10", len(sel))
	}
	for i, wp := range sel {
		if wp.Part != i || wp.Weight != 1 {
			t.Fatalf("full budget selection[%d] = %+v, want {Part:%d Weight:1}", i, wp, i)
		}
	}
	if sel := env.p.PickBatch(ex.Query, 50, rand.New(rand.NewSource(1)), exec.Options{}); len(sel) != 10 {
		t.Fatalf("over-budget selected %d partitions, want 10", len(sel))
	}
}

// TestPickBatchStatsPopulated checks the timing breakdown fields.
func TestPickBatchStatsPopulated(t *testing.T) {
	env := newTestEnv(t, 16, 20, Config{Seed: 10})
	ex := env.exs[0]
	_, st := env.p.PickBatchWithStats(ex.Query, 5, rand.New(rand.NewSource(2)), exec.Options{Parallelism: 1})
	if st.Total <= 0 {
		t.Fatalf("PickStats.Total = %v, want > 0", st.Total)
	}
	if st.Featurize <= 0 || st.Featurize > st.Total {
		t.Fatalf("PickStats.Featurize = %v outside (0, %v]", st.Featurize, st.Total)
	}
}

// TestPickBatchKMeansSkipsDistances: the bounded k-means inside the pick
// path must skip a meaningful share of distance computations. Pick-time
// clusterings are small (tens of points, a couple of Lloyd iterations), so
// the skip fraction here is structurally lower than on the larger
// internal/cluster bench fixture, where the ≥70% bound is asserted; this
// pins the production path at a floor that catches a silently disabled
// pruning pass.
func TestPickBatchKMeansSkipsDistances(t *testing.T) {
	env := newBenchEnv(t, 128, 40)
	var agg cluster.KMeansStats
	clustered := 0
	for _, ex := range env.exs {
		_, st := env.p.PickBatchWithStats(ex.Query, 13, rand.New(rand.NewSource(2)), exec.Options{Parallelism: 1})
		if st.KMeans.PossibleDists == 0 {
			// Some queries take non-clustering branches (random fallback on
			// complex predicates, groups smaller than the budget).
			continue
		}
		clustered++
		agg.Iterations += st.KMeans.Iterations
		agg.PointDists += st.KMeans.PointDists
		agg.PossibleDists += st.KMeans.PossibleDists
	}
	if clustered < 4 {
		t.Fatalf("only %d of %d bench queries reached the clustering stage", clustered, len(env.exs))
	}
	if frac := agg.SkippedFrac(); frac < 0.30 {
		t.Fatalf("pick-path bounded k-means skipped only %.1f%% of distances (%d of %d possible), want >= 30%%",
			100*frac, agg.PossibleDists-agg.PointDists, agg.PossibleDists)
	} else {
		t.Logf("pick-path skip fraction: %.3f over %d iterations", frac, agg.Iterations)
	}
}

// newBenchEnv builds a serving-representative environment: a wide table
// (eight numeric + two categorical columns, so the feature space has the
// couple-hundred dimensions real datasets produce) with learnable partition
// importance, and a trained picker.
func newBenchEnv(b testing.TB, parts, rowsPer int) *testEnv {
	b.Helper()
	cols := []table.Column{
		{Name: "g", Kind: table.Categorical},
		{Name: "h", Kind: table.Categorical},
	}
	for _, name := range []string{"c0", "c1", "c2", "c3", "c4", "c5", "c6", "c7"} {
		cols = append(cols, table.Column{Name: name, Kind: table.Numeric, Positive: true})
	}
	schema := table.MustSchema(cols...)
	bld, err := table.NewBuilder(schema, rowsPer)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(19))
	gVals := []string{"alpha", "beta", "gamma", "delta"}
	for i := 0; i < parts*rowsPer; i++ {
		part := i / rowsPer
		nums := make([]float64, len(cols))
		strs := make([]string, len(cols))
		strs[0] = gVals[(part+i%3)%len(gVals)]
		strs[1] = gVals[i%2]
		for c := 2; c < len(cols); c++ {
			nums[c] = float64(part+1)*float64(c) + rng.Float64()*10
		}
		if err := bld.Append(nums, strs); err != nil {
			b.Fatal(err)
		}
	}
	tbl := bld.Finish()
	ts, err := stats.Build(tbl, stats.Options{GroupableCols: []string{"g", "h"}})
	if err != nil {
		b.Fatal(err)
	}
	gen, err := query.NewGenerator(query.Workload{
		GroupableCols: []string{"g", "h"},
		PredicateCols: []string{"c0", "c1", "c2", "c3", "g"},
		AggCols:       []string{"c4", "c5"},
	}, tbl, 29)
	if err != nil {
		b.Fatal(err)
	}
	var exs []Example
	for _, q := range gen.SampleN(16) {
		c, err := query.Compile(q, tbl)
		if err != nil {
			b.Fatal(err)
		}
		totalAns, perPart := c.GroundTruth(tbl)
		exs = append(exs, Example{
			Query:     q,
			Compiled:  c,
			Features:  ts.Features(q),
			Contrib:   Contribution(c, perPart, totalAns),
			PerPart:   perPart,
			TruthVals: c.FinalValues(totalAns),
		})
	}
	p, err := Train(ts, exs, Config{Seed: 12})
	if err != nil {
		b.Fatal(err)
	}
	return &testEnv{tbl: tbl, ts: ts, p: p, exs: exs}
}

// BenchmarkPick is the acceptance benchmark of the batched pick path,
// swept over the serving budget regime (the paper serves at 1–10%; the
// server default is 5%). Per budget, `reference` is the pointer-tree
// baseline — fresh feature matrix + per-row funnel walk + allocating
// cluster pipeline, exactly what core.System.Pick ran before the flat
// engine — and the batch sub-benchmarks run PickBatch at Parallelism=1 and
// GOMAXPROCS. Each batch case reports its in-run speedup over the
// reference.
//
// The full pick mixes the rebuilt inference path (featurization + funnel,
// where this PR's work lives and the speedup is >3x — see
// BenchmarkPickInference) with the clustering tail, whose exact k-means
// arithmetic is shared by both paths and dilutes the end-to-end ratio as
// the budget (and with it the exemplar count) grows.
func BenchmarkPick(b *testing.B) {
	env := newBenchEnv(b, 128, 40)
	qs := make([]*query.Query, len(env.exs))
	for i, ex := range env.exs {
		qs[i] = ex.Query
	}
	rng := rand.New(rand.NewSource(3))
	for _, bc := range []struct {
		name string
		n    int
	}{
		{"budget1pct", 2},
		{"budget5pct", 6},
		{"budget10pct", 13},
	} {
		n := bc.n
		reference := func(q *query.Query) []query.WeightedPartition {
			return env.p.PickReference(q, env.ts.Features(q), n, rng)
		}
		b.Run(bc.name+"/reference", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				reference(qs[i%len(qs)])
			}
		})
		b.Run(bc.name+"/batch", func(b *testing.B) {
			b.ReportAllocs()
			eo := exec.Options{Parallelism: 1}
			for i := 0; i < b.N; i++ {
				env.p.PickBatch(qs[i%len(qs)], n, rng, eo)
			}
		})
		b.Run(bc.name+"/paired", func(b *testing.B) {
			// Interleaved A/B measurement: each iteration times one reference
			// pick and one batch pick back to back, so both sides see the
			// same machine noise and the reported speedup is a fair per-op
			// ratio even on a loaded host (ns/op here is the cost of the
			// pair, not of either side).
			eo := exec.Options{Parallelism: 1}
			var refNs, batchNs int64
			for i := 0; i < b.N; i++ {
				q := qs[i%len(qs)]
				t0 := time.Now()
				reference(q)
				t1 := time.Now()
				env.p.PickBatch(q, n, rng, eo)
				refNs += int64(t1.Sub(t0))
				batchNs += int64(time.Since(t1))
			}
			if batchNs > 0 {
				b.ReportMetric(float64(refNs)/float64(batchNs), "speedup")
			}
		})
		b.Run(bc.name+"/batch-parallel", func(b *testing.B) {
			b.ReportAllocs()
			eo := exec.Options{Parallelism: 0} // GOMAXPROCS
			for i := 0; i < b.N; i++ {
				env.p.PickBatch(qs[i%len(qs)], n, rng, eo)
			}
		})
	}
}

// BenchmarkPickInference isolates the learned-picker inference path this
// PR rebuilt — featurization, predicate filter, and the full importance
// funnel — by running the paper's "w/o cluster" lesion (§5.4.1), which
// replaces only the final within-group exemplar clustering with weighted
// random draws. The reference is the same lesion on the pointer-tree
// baseline, so the ratio measures exactly the flattened-inference work.
func BenchmarkPickInference(b *testing.B) {
	env := newBenchEnv(b, 128, 40)
	lesioned := *env.p
	cfg := lesioned.Cfg
	cfg.DisableCluster = true
	lesioned.Cfg = cfg
	p := &lesioned
	qs := make([]*query.Query, len(env.exs))
	for i, ex := range env.exs {
		qs[i] = ex.Query
	}
	rng := rand.New(rand.NewSource(3))
	n := 6 // the server-default 5% budget
	reference := func(q *query.Query) []query.WeightedPartition {
		return p.PickReference(q, env.ts.Features(q), n, rng)
	}
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			reference(qs[i%len(qs)])
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		const refIters = 30
		refStart := time.Now()
		for i := 0; i < refIters; i++ {
			reference(qs[i%len(qs)])
		}
		refPer := time.Since(refStart) / refIters
		eo := exec.Options{Parallelism: 1}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.PickBatch(qs[i%len(qs)], n, rng, eo)
		}
		b.StopTimer()
		batchPer := b.Elapsed() / time.Duration(b.N)
		b.ReportMetric(float64(refPer)/float64(batchPer), "speedup")
	})
}
