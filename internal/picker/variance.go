package picker

import (
	"math"
	"math/rand"
	"sort"

	"ps3/internal/query"
)

// This file implements the variance analysis of paper Appendix D:
//
//   - D.1 — the unbiased (random-exemplar) clustering estimator analyzed as
//     stratified SRSWoR with one draw per stratum, plus a practical
//     variance estimator that spends extra probe reads per stratum;
//   - D.2 — Horvitz–Thompson variance estimators for uniform partition-
//     and row-level Poisson sampling, demonstrating that partition-level
//     sampling has strictly larger variance at equal sampling fraction
//     (Eq 3–5).

// HTVariance estimates the variance of the Horvitz–Thompson estimator for a
// SUM/COUNT total under Poisson sampling where every unit is included
// independently with probability p (Eq 3 of Appendix D.2). values are the
// per-unit contributions y_i of the *sampled* units only.
func HTVariance(values []float64, p float64) float64 {
	if p <= 0 || p > 1 {
		return math.NaN()
	}
	f := 1/(p*p) - 1/p
	var v float64
	for _, y := range values {
		v += f * y * y
	}
	return v
}

// PartitionVsRowVariance compares, for one group total, the estimated
// variance of uniform partition-level Poisson sampling against row-level
// Poisson sampling at the same sampling fraction p (Appendix D.2, Eq 4–5).
// partitionTotals[i] is the group's total on partition i; rowValues are the
// per-row contributions. Both variances are computed over the full
// population (the census version of the estimators, i.e. the true variance
// rather than its sampled estimate). The partition-level variance exceeds
// the row-level one by the cross terms of rows sharing a partition.
func PartitionVsRowVariance(partitionTotals []float64, rowValues [][]float64, p float64) (partVar, rowVar float64) {
	if p <= 0 || p > 1 {
		return math.NaN(), math.NaN()
	}
	f := (1 - p) / p
	for _, y := range partitionTotals {
		partVar += f * y * y
	}
	for _, rows := range rowValues {
		for _, t := range rows {
			rowVar += f * t * t
		}
	}
	return partVar, rowVar
}

// StratumVariance holds one cluster's contribution to the unbiased
// estimator's variance.
type StratumVariance struct {
	// Size is the number of partitions in the stratum (cluster).
	Size int
	// Probes is how many partitions were evaluated to estimate s².
	Probes int
	// S2 is the sample variance of the per-partition values within the
	// stratum (per aggregate of the first group dimension aggregated; see
	// VarianceEstimate for the reduction used).
	S2 float64
	// Var is the stratum's variance contribution N(N-n)/n · s² with n = 1
	// draw: N(N-1)·s².
	Var float64
}

// VarianceReport is the result of estimating the unbiased estimator's
// variance for one query.
type VarianceReport struct {
	Strata []StratumVariance
	// TotalVar is Σ stratum variances — the variance of the stratified
	// estimator for the scalar reduction described in VarianceEstimate.
	TotalVar float64
	// ExtraReads is the number of additional partition evaluations spent on
	// probing beyond the one exemplar per stratum.
	ExtraReads int
}

// CI95 returns the ± half-width of the 95% confidence interval implied by
// the variance estimate (±1.96·σ, Appendix D.1), assuming the CLT holds.
func (r VarianceReport) CI95() float64 { return 1.96 * math.Sqrt(r.TotalVar) }

// VarianceEstimate estimates the variance of the unbiased clustering
// estimator (Appendix D.1) for one scalar query statistic: the first
// aggregate summed over all groups. members lists the partition ids of each
// cluster; value(p) evaluates the statistic on partition p (charging I/O if
// the caller wires it to a real read). probesPerStratum ≥ 2 partitions are
// evaluated in each stratum of size ≥ 2 to form the sample variance s²
// (strata of size 1 contribute zero variance — their draw is a census).
func VarianceEstimate(members [][]int, value func(part int) float64, probesPerStratum int, rng *rand.Rand) VarianceReport {
	if probesPerStratum < 2 {
		probesPerStratum = 2
	}
	var rep VarianceReport
	for _, m := range members {
		sv := StratumVariance{Size: len(m)}
		if len(m) >= 2 {
			probes := probesPerStratum
			if probes > len(m) {
				probes = len(m)
			}
			perm := rng.Perm(len(m))[:probes]
			vals := make([]float64, probes)
			var mean float64
			for i, pi := range perm {
				vals[i] = value(m[pi])
				mean += vals[i]
			}
			mean /= float64(probes)
			var s2 float64
			for _, v := range vals {
				d := v - mean
				s2 += d * d
			}
			s2 /= float64(probes - 1)
			sv.Probes = probes
			sv.S2 = s2
			// SRSWoR with n=1 draw from N: Var = N(N-n)/n · s² = N(N-1)·s².
			N := float64(len(m))
			sv.Var = N * (N - 1) * s2
			rep.ExtraReads += probes - 1
		}
		rep.Strata = append(rep.Strata, sv)
		rep.TotalVar += sv.Var
	}
	return rep
}

// UnbiasedSelectionVariance wires VarianceEstimate to a concrete compiled
// query and cached per-partition answers: the scalar statistic is the first
// aggregate's accumulator summed over groups. sel must come from the
// unbiased (random-exemplar) picker so strata match the weights.
func UnbiasedSelectionVariance(c *query.Compiled, perPart []*query.Answer, members [][]int, probes int, rng *rand.Rand) VarianceReport {
	value := func(part int) float64 {
		// Fold groups in sorted key order: float accumulation over raw map
		// order would leave low-order bits dependent on iteration order.
		gs := perPart[part].Groups
		keys := make([]string, 0, len(gs))
		for g := range gs {
			keys = append(keys, g)
		}
		sort.Strings(keys)
		var s float64
		for _, g := range keys {
			s += gs[g][0]
		}
		return s
	}
	return VarianceEstimate(members, value, probes, rng)
}
