// Package exec is PS3's shared parallel scan engine: a bounded worker pool
// that maps a function over a set of work indices — typically partition ids,
// whose immutable, read-only chunks are embarrassingly parallel to scan —
// with per-worker accumulators and a deterministic merge.
//
// Every primitive is deterministic by construction: Map and MapErr return
// results in index order regardless of which worker computed what, and
// Reduce splits work into contiguous blocks whose boundaries depend only on
// the item count and the resolved worker count, merging block accumulators
// in ascending order. Callers that need results bit-identical to a
// sequential loop (floating-point merges are not associative) use Map and
// fold the ordered results themselves; callers with exact merges (integer
// counts) use Reduce and skip the per-item result allocation.
package exec

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Options configures a parallel execution.
type Options struct {
	// Parallelism bounds worker goroutines (0 = GOMAXPROCS), following the
	// knob convention of stats.Options.
	Parallelism int
}

// Workers resolves the worker count for n work items: Parallelism (or
// GOMAXPROCS when zero), clamped to [1, n].
func (o Options) Workers(n int) int {
	w := o.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach calls fn(i) for every i in [0, n) from at most o.Workers(n)
// goroutines. Indices are handed out dynamically, so uneven per-item cost
// does not idle workers. fn must be safe for concurrent invocation. A panic
// in any fn is re-raised on the caller's goroutine after all workers stop.
func ForEach(n int, o Options, fn func(i int)) {
	ForEachWith(n, o, func() struct{} { return struct{}{} }, func(_ struct{}, i int) { fn(i) })
}

// ForEachWith is ForEach with per-worker state: every worker goroutine
// creates one W via newW and passes it to each fn call it executes, so
// scratch buffers are allocated once per worker instead of once per item.
// fn owns w exclusively for the worker's lifetime and never needs to lock
// it; newW and fn must be safe for concurrent invocation across workers.
func ForEachWith[W any](n int, o Options, newW func() W, fn func(w W, i int)) {
	forEachCtx(nil, n, o, newW, fn)
}

// forEachCtx is the one worker-pool implementation behind ForEachWith and
// ForEachWithCtx. A nil ctx disables cancellation entirely (the check
// degenerates to a nil compare, so the context-free entry points pay
// nothing). With a non-nil ctx, workers poll ctx.Err() after claiming an
// index and before running it: an item that started always completes (the
// scan kernels hold no interior cancellation points), and the pool stops
// claiming new items once the context is done. Returns ctx.Err() when at
// least one claimed item was skipped, nil when every index ran.
func forEachCtx[W any](ctx context.Context, n int, o Options, newW func() W, fn func(w W, i int)) error {
	workers := o.Workers(n)
	if workers == 1 {
		st := newW()
		for i := 0; i < n; i++ {
			if ctx != nil && ctx.Err() != nil {
				return ctx.Err()
			}
			fn(st, i)
		}
		return nil
	}
	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		panicked  atomic.Bool
		cancelled atomic.Bool
		once      sync.Once
		pval      any
	)
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					once.Do(func() { pval = r })
					panicked.Store(true)
				}
			}()
			st := newW()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || panicked.Load() {
					return
				}
				if ctx != nil && ctx.Err() != nil {
					// Claimed but not run: the caller must learn the scan
					// is incomplete.
					cancelled.Store(true)
					return
				}
				fn(st, i)
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		panic(pval)
	}
	if cancelled.Load() {
		return ctx.Err()
	}
	return nil
}

// Map computes fn(i) for every i in [0, n) in parallel and returns the
// results in index order, so a sequential fold over the returned slice
// reproduces the merge order of a plain loop exactly.
func Map[T any](n int, o Options, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, o, func(i int) { out[i] = fn(i) })
	return out
}

// MapWith is Map with per-worker state (see ForEachWith): each worker
// allocates one W and reuses it for every item it computes. Results are
// returned in index order, preserving Map's determinism guarantee.
func MapWith[W, T any](n int, o Options, newW func() W, fn func(w W, i int) T) []T {
	out := make([]T, n)
	ForEachWith(n, o, newW, func(w W, i int) { out[i] = fn(w, i) })
	return out
}

// MapErr is Map for fallible functions. All indices are attempted (errors do
// not cancel in-flight work) and the error with the lowest index wins, so
// the returned error matches what a sequential loop would have reported.
func MapErr[T any](n int, o Options, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	ForEach(n, o, func(i int) { out[i], errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// MapErrWith is MapErr with per-worker state (see ForEachWith): each worker
// allocates one W and reuses it for every item it computes. Like MapErr, all
// indices are attempted and the lowest-index error wins, matching what a
// sequential loop would have reported.
func MapErrWith[W, T any](n int, o Options, newW func() W, fn func(w W, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	ForEachWith(n, o, newW, func(w W, i int) { out[i], errs[i] = fn(w, i) })
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Reduce folds step over [0, n) with one accumulator per contiguous block of
// indices and merges the block accumulators in ascending block order. Block
// boundaries depend only on n and o.Workers(n) — never on scheduling — so
// the result is reproducible for fixed Options. For non-associative merges
// the result may still differ across worker counts; use Map plus an ordered
// fold when bit-identity across parallelism levels is required.
func Reduce[A any](n int, o Options, newAcc func() A, step func(acc A, i int) A, merge func(dst, src A) A) A {
	w := o.Workers(n)
	if w == 1 {
		acc := newAcc()
		for i := 0; i < n; i++ {
			acc = step(acc, i)
		}
		return acc
	}
	accs := Map(w, o, func(b int) A {
		lo, hi := blockBounds(n, w, b)
		acc := newAcc()
		for i := lo; i < hi; i++ {
			acc = step(acc, i)
		}
		return acc
	})
	total := accs[0]
	for _, a := range accs[1:] {
		total = merge(total, a)
	}
	return total
}

// blockBounds returns the half-open index range of block b when n items are
// split into w near-equal contiguous blocks (earlier blocks take the
// remainder).
func blockBounds(n, w, b int) (lo, hi int) {
	base := n / w
	extra := n % w
	lo = b*base + min(b, extra)
	hi = lo + base
	if b < extra {
		hi++
	}
	return lo, hi
}
