package exec

import "context"

// This file holds the context-aware entry points of the pool. Cancellation
// granularity is the work item: a partition scan that has started runs to
// completion (kernels hold no interior checks), and the pool stops
// claiming further items once the context is done. That bounds
// cancellation latency by the cost of one partition — milliseconds — which
// is the right trade for deadline-driven serving: a finer granularity
// would put branch checks inside the vectorized kernels.

// ForEachWithCtx is ForEachWith under a context. It returns ctx.Err() when
// cancellation prevented at least one index from running, nil when every
// index ran. Determinism is unaffected on the nil-error path: if the
// function returns nil, every fn(i) executed exactly once.
func ForEachWithCtx[W any](ctx context.Context, n int, o Options, newW func() W, fn func(w W, i int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return forEachCtx(ctx, n, o, newW, fn)
}

// MapErrWithCtx is MapErrWith under a context. On the nil-error path the
// returned slice is complete and index-ordered — bit-identical to the
// context-free variant. On cancellation some indices were never attempted,
// so no partial results are returned. Error priority follows the
// sequential-loop convention: the lowest-index item error wins; a
// cancellation with no item errors returns ctx.Err().
func MapErrWithCtx[W, T any](ctx context.Context, n int, o Options, newW func() W, fn func(w W, i int) (T, error)) ([]T, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]T, n)
	errs := make([]error, n)
	ctxErr := forEachCtx(ctx, n, o, newW, func(w W, i int) { out[i], errs[i] = fn(w, i) })
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if ctxErr != nil {
		return nil, ctxErr
	}
	return out, nil
}
