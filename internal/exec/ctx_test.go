package exec

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"ps3/internal/testutil"
)

// TestForEachWithPanicRepanics: a panic in one worker is re-raised on the
// caller's goroutine with its original value, after every worker has
// stopped — no leak, no deadlock, regardless of worker count.
func TestForEachWithPanicRepanics(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("panic did not propagate to the caller")
				}
				if s, ok := r.(string); !ok || s != "boom" {
					t.Fatalf("recovered %v, want \"boom\"", r)
				}
			}()
			ForEachWith(64, Options{Parallelism: workers},
				func() struct{} { return struct{}{} },
				func(_ struct{}, i int) {
					if i == 13 {
						panic("boom")
					}
				})
			t.Fatal("ForEachWith returned normally despite a panicking item")
		})
	}
}

// TestMapErrWithPanicDoesNotDeadlockMerge: the ordered merge sits after
// wg.Wait — a panic mid-map must tear the pool down and re-raise, never
// leave the merge waiting on results that will not come.
func TestMapErrWithPanicDoesNotDeadlockMerge(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	done := make(chan any, 1)
	go func() { //lint:nakedgo-ok test watchdog: bounds the deadlock check, joined via the done channel below
		defer func() { done <- recover() }()
		_, _ = MapErrWith(128, Options{Parallelism: 4},
			func() int { return 0 },
			func(_ int, i int) (int, error) {
				if i == 50 {
					panic("mid-map")
				}
				return i, nil
			})
	}()
	select {
	case r := <-done:
		if r == nil {
			t.Fatal("MapErrWith returned normally despite a panicking item")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("MapErrWith deadlocked after worker panic")
	}
}

// TestForEachWithCtxCancelMidScan: cancelling mid-scan stops the pool
// before all items run, returns ctx.Err(), and leaks nothing. Items that
// started still complete (item-granular cancellation).
func TestForEachWithCtxCancelMidScan(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			const n = 1000
			var ran atomic.Int64
			err := ForEachWithCtx(ctx, n, Options{Parallelism: workers},
				func() struct{} { return struct{}{} },
				func(_ struct{}, i int) {
					if ran.Add(1) == 10 {
						cancel()
					}
				})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if got := ran.Load(); got >= n {
				t.Fatalf("all %d items ran despite cancellation", got)
			}
		})
	}
}

// TestForEachWithCtxCompleteRunsEverything: an un-cancelled context is
// invisible — every index runs exactly once and the error is nil.
func TestForEachWithCtxCompleteRunsEverything(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	const n = 500
	counts := make([]atomic.Int32, n)
	err := ForEachWithCtx(context.Background(), n, Options{Parallelism: 4},
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int) { counts[i].Add(1) })
	if err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d ran %d times, want 1", i, c)
		}
	}
}

// TestForEachWithCtxPreCancelled: a context already done at entry runs
// nothing on the sequential path and at most a handful of items on the
// parallel one (each worker may claim one index before its first check is
// observed — the contract is "stops promptly", not "runs zero").
func TestForEachWithCtxPreCancelled(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := ForEachWithCtx(ctx, 1000, Options{Parallelism: 4},
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int) { ran.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != 0 {
		t.Fatalf("pre-cancelled context ran %d items, want 0", got)
	}
}

// TestMapErrWithCtxMatchesContextFree: on the nil-error path the ctx
// variant is bit-identical to MapErrWith — same values, same order.
func TestMapErrWithCtxMatchesContextFree(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	fn := func(_ struct{}, i int) (int, error) { return i * i, nil }
	newW := func() struct{} { return struct{}{} }
	want, err := MapErrWith(300, Options{Parallelism: 4}, newW, fn)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MapErrWithCtx(context.Background(), 300, Options{Parallelism: 4}, newW, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("index %d: ctx variant = %d, context-free = %d", i, got[i], want[i])
		}
	}
}

// TestMapErrWithCtxItemErrorBeatsCancellation: a real item error at a low
// index wins over the cancellation error, matching the sequential-loop
// error convention.
func TestMapErrWithCtxItemErrorBeatsCancellation(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	itemErr := errors.New("item 2 failed")
	_, err := MapErrWithCtx(ctx, 100, Options{Parallelism: 2},
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int) (int, error) {
			if i == 2 {
				cancel()
				return 0, itemErr
			}
			return i, nil
		})
	if !errors.Is(err, itemErr) {
		t.Fatalf("err = %v, want the item error to win over cancellation", err)
	}
}

// TestForEachWithCtxCancelDuringSlowItems: workers blocked inside items
// when the cancel lands still finish their item and exit; wg.Wait joins
// them all — the test would leak (and fail VerifyNoLeaks) otherwise.
func TestForEachWithCtxCancelDuringSlowItems(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 8)
	err := ForEachWithCtx(ctx, 64, Options{Parallelism: 4},
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int) {
			select {
			case started <- struct{}{}:
				if len(started) == 4 {
					cancel()
				}
			default:
			}
			time.Sleep(time.Millisecond)
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
