package exec

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	cases := []struct {
		par, n, want int
	}{
		{0, 100, runtime.GOMAXPROCS(0)},
		{4, 100, 4},
		{4, 2, 2},
		{1, 100, 1},
		{8, 0, 1},
		{-3, 5, min(5, runtime.GOMAXPROCS(0))},
	}
	for _, c := range cases {
		if got := (Options{Parallelism: c.par}).Workers(c.n); got != c.want {
			t.Errorf("Workers(par=%d, n=%d) = %d, want %d", c.par, c.n, got, c.want)
		}
	}
}

func TestMapOrdering(t *testing.T) {
	for _, par := range []int{1, 2, 3, 0} {
		out := Map(100, Options{Parallelism: par}, func(i int) int { return i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("par=%d: out[%d] = %d, want %d", par, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if out := Map(0, Options{}, func(i int) int { return i }); len(out) != 0 {
		t.Fatalf("Map(0) returned %d results", len(out))
	}
}

func TestForEachVisitsEachIndexOnce(t *testing.T) {
	const n = 1000
	var counts [n]atomic.Int32
	ForEach(n, Options{Parallelism: 8}, func(i int) { counts[i].Add(1) })
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("index %d visited %d times", i, got)
		}
	}
}

func TestMapErrReturnsLowestIndexError(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	for _, par := range []int{1, 4} {
		_, err := MapErr(50, Options{Parallelism: par}, func(i int) (int, error) {
			switch i {
			case 7:
				return 0, errLow
			case 30:
				return 0, errHigh
			}
			return i, nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("par=%d: err = %v, want %v", par, err, errLow)
		}
	}
}

func TestMapErrSuccess(t *testing.T) {
	out, err := MapErr(10, Options{Parallelism: 3}, func(i int) (int, error) { return i + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestReduceExactCounts(t *testing.T) {
	// Integer sums are associative: Reduce must agree with the sequential
	// fold at every worker count.
	want := 0
	for i := 0; i < 997; i++ {
		want += i
	}
	for _, par := range []int{1, 2, 3, 7, 0} {
		got := Reduce(997, Options{Parallelism: par},
			func() int { return 0 },
			func(acc, i int) int { return acc + i },
			func(a, b int) int { return a + b })
		if got != want {
			t.Fatalf("par=%d: Reduce = %d, want %d", par, got, want)
		}
	}
}

func TestReduceReproducible(t *testing.T) {
	// Same Options → byte-identical result, even for an order-sensitive
	// merge (string concatenation exposes any scheduling dependence).
	run := func() string {
		return Reduce(64, Options{Parallelism: 4},
			func() string { return "" },
			func(acc string, i int) string { return acc + fmt.Sprint(i, ",") },
			func(a, b string) string { return a + b })
	}
	first := run()
	for k := 0; k < 10; k++ {
		if got := run(); got != first {
			t.Fatalf("run %d differs:\n%s\nvs\n%s", k, got, first)
		}
	}
}

func TestBlockBoundsCoverage(t *testing.T) {
	for n := 0; n <= 20; n++ {
		for w := 1; w <= 6; w++ {
			prev := 0
			for b := 0; b < w; b++ {
				lo, hi := blockBounds(n, w, b)
				if lo != prev {
					t.Fatalf("n=%d w=%d b=%d: lo=%d, want %d", n, w, b, lo, prev)
				}
				if hi < lo {
					t.Fatalf("n=%d w=%d b=%d: hi=%d < lo=%d", n, w, b, hi, lo)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("n=%d w=%d: blocks cover %d items", n, w, prev)
			}
		}
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic to propagate")
		}
		if s, ok := r.(string); !ok || s != "boom" {
			t.Fatalf("unexpected panic value %v", r)
		}
	}()
	ForEach(100, Options{Parallelism: 4}, func(i int) {
		if i == 13 {
			panic("boom")
		}
	})
}

func TestMapWithOrdering(t *testing.T) {
	for _, par := range []int{1, 2, 3, 0} {
		out := MapWith(100, Options{Parallelism: par},
			func() *int { return new(int) },
			func(w *int, i int) int { *w++; return i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("par=%d: out[%d] = %d, want %d", par, i, v, i*i)
			}
		}
	}
}

// TestMapWithPerWorkerState verifies each worker gets exactly one state
// value and the states collectively see every index exactly once.
func TestMapWithPerWorkerState(t *testing.T) {
	const n, par = 500, 4
	var mu sync.Mutex
	var states []*[]int
	MapWith(n, Options{Parallelism: par},
		func() *[]int {
			s := new([]int)
			mu.Lock()
			states = append(states, s)
			mu.Unlock()
			return s
		},
		func(w *[]int, i int) struct{} {
			*w = append(*w, i)
			return struct{}{}
		})
	if len(states) > par {
		t.Fatalf("newW ran %d times for %d workers", len(states), par)
	}
	visited := make([]int, n)
	for _, s := range states {
		for _, i := range *s {
			visited[i]++
		}
	}
	for i, v := range visited {
		if v != 1 {
			t.Fatalf("index %d visited %d times across worker states", i, v)
		}
	}
}

// TestForEachWithSequentialSingleState: with one worker, a single state is
// threaded through every call in index order.
func TestForEachWithSequentialSingleState(t *testing.T) {
	var made int
	var seen []int
	ForEachWith(10, Options{Parallelism: 1},
		func() *[]int { made++; return &seen },
		func(w *[]int, i int) { *w = append(*w, i) })
	if made != 1 {
		t.Fatalf("newW ran %d times, want 1", made)
	}
	for i, v := range seen {
		if v != i {
			t.Fatalf("seen[%d] = %d, want %d (sequential order)", i, v, i)
		}
	}
	if len(seen) != 10 {
		t.Fatalf("visited %d indices, want 10", len(seen))
	}
}
