package query

import (
	"fmt"
	"strings"

	"ps3/internal/table"
)

// Op enumerates comparison operators for predicate clauses.
type Op uint8

const (
	// OpEq is equality (numeric or categorical).
	OpEq Op = iota
	// OpNe is inequality.
	OpNe
	// OpLt is numeric <.
	OpLt
	// OpLe is numeric <=.
	OpLe
	// OpGt is numeric >.
	OpGt
	// OpGe is numeric >=.
	OpGe
	// OpIn is categorical membership in a value list.
	OpIn
)

func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpIn:
		return "IN"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Pred is a predicate tree node: And, Or, Not, or Clause.
type Pred interface {
	fmt.Stringer
	// Walk visits every node, depth-first.
	Walk(func(Pred))
}

// And is a conjunction of child predicates.
type And struct{ Children []Pred }

// Or is a disjunction of child predicates.
type Or struct{ Children []Pred }

// Not negates its child predicate.
type Not struct{ Child Pred }

// Clause is a single-column comparison: Col Op value. Numeric comparisons
// use Num; categorical equality/IN use Strs.
type Clause struct {
	Col  string
	Op   Op
	Num  float64
	Strs []string
}

// NewAnd returns the conjunction of preds, simplifying singletons.
func NewAnd(preds ...Pred) Pred {
	if len(preds) == 1 {
		return preds[0]
	}
	return &And{Children: preds}
}

// NewOr returns the disjunction of preds, simplifying singletons.
func NewOr(preds ...Pred) Pred {
	if len(preds) == 1 {
		return preds[0]
	}
	return &Or{Children: preds}
}

func (a *And) Walk(f func(Pred)) {
	f(a)
	for _, c := range a.Children {
		c.Walk(f)
	}
}

func (o *Or) Walk(f func(Pred)) {
	f(o)
	for _, c := range o.Children {
		c.Walk(f)
	}
}

func (n *Not) Walk(f func(Pred)) {
	f(n)
	n.Child.Walk(f)
}

func (c *Clause) Walk(f func(Pred)) { f(c) }

func (a *And) String() string {
	parts := make([]string, len(a.Children))
	for i, c := range a.Children {
		parts[i] = c.String()
	}
	return "(" + strings.Join(parts, " AND ") + ")"
}

func (o *Or) String() string {
	parts := make([]string, len(o.Children))
	for i, c := range o.Children {
		parts[i] = c.String()
	}
	return "(" + strings.Join(parts, " OR ") + ")"
}

func (n *Not) String() string { return "NOT " + n.Child.String() }

func (c *Clause) String() string {
	if c.Op == OpIn {
		return fmt.Sprintf("%s IN (%s)", c.Col, strings.Join(c.Strs, ", "))
	}
	if len(c.Strs) == 1 {
		return fmt.Sprintf("%s %s %q", c.Col, c.Op, c.Strs[0])
	}
	return fmt.Sprintf("%s %s %g", c.Col, c.Op, c.Num)
}

// Clauses returns all leaf clauses of the predicate tree.
func Clauses(p Pred) []*Clause {
	if p == nil {
		return nil
	}
	var out []*Clause
	p.Walk(func(n Pred) {
		if c, ok := n.(*Clause); ok {
			out = append(out, c)
		}
	})
	return out
}

// Columns returns the distinct column names referenced by the predicate.
func Columns(p Pred) []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range Clauses(p) {
		if !seen[c.Col] {
			seen[c.Col] = true
			out = append(out, c.Col)
		}
	}
	return out
}

// rowFn evaluates a compiled predicate on one row of a partition.
type rowFn func(p *table.Partition, r int) bool

// compilePred resolves a predicate tree against a schema and dictionary.
func compilePred(pred Pred, s *table.Schema, d *table.Dict) (rowFn, error) {
	if pred == nil {
		return func(*table.Partition, int) bool { return true }, nil
	}
	switch n := pred.(type) {
	case *And:
		fns := make([]rowFn, len(n.Children))
		for i, c := range n.Children {
			fn, err := compilePred(c, s, d)
			if err != nil {
				return nil, err
			}
			fns[i] = fn
		}
		return func(p *table.Partition, r int) bool {
			for _, fn := range fns {
				if !fn(p, r) {
					return false
				}
			}
			return true
		}, nil
	case *Or:
		fns := make([]rowFn, len(n.Children))
		for i, c := range n.Children {
			fn, err := compilePred(c, s, d)
			if err != nil {
				return nil, err
			}
			fns[i] = fn
		}
		return func(p *table.Partition, r int) bool {
			for _, fn := range fns {
				if fn(p, r) {
					return true
				}
			}
			return false
		}, nil
	case *Not:
		fn, err := compilePred(n.Child, s, d)
		if err != nil {
			return nil, err
		}
		return func(p *table.Partition, r int) bool { return !fn(p, r) }, nil
	case *Clause:
		return compileClause(n, s, d)
	default:
		return nil, fmt.Errorf("query: unknown predicate node %T", pred)
	}
}

func compileClause(c *Clause, s *table.Schema, d *table.Dict) (rowFn, error) {
	ci := s.ColIndex(c.Col)
	if ci < 0 {
		return nil, fmt.Errorf("query: unknown column %q in predicate", c.Col)
	}
	col := s.Col(ci)
	if col.IsNumeric() {
		v := c.Num
		switch c.Op {
		case OpEq:
			return func(p *table.Partition, r int) bool { return p.NumCol(ci)[r] == v }, nil
		case OpNe:
			return func(p *table.Partition, r int) bool { return p.NumCol(ci)[r] != v }, nil
		case OpLt:
			return func(p *table.Partition, r int) bool { return p.NumCol(ci)[r] < v }, nil
		case OpLe:
			return func(p *table.Partition, r int) bool { return p.NumCol(ci)[r] <= v }, nil
		case OpGt:
			return func(p *table.Partition, r int) bool { return p.NumCol(ci)[r] > v }, nil
		case OpGe:
			return func(p *table.Partition, r int) bool { return p.NumCol(ci)[r] >= v }, nil
		default:
			return nil, fmt.Errorf("query: operator %s not supported on numeric column %q", c.Op, c.Col)
		}
	}
	// Categorical: resolve value strings to dictionary codes. Unseen values
	// match no rows.
	switch c.Op {
	case OpEq, OpNe, OpIn:
	default:
		return nil, fmt.Errorf("query: operator %s not supported on categorical column %q", c.Op, c.Col)
	}
	codes := make(map[uint32]bool, len(c.Strs))
	for _, v := range c.Strs {
		if code, ok := d.Lookup(v); ok {
			codes[code] = true
		}
	}
	if c.Op == OpNe {
		return func(p *table.Partition, r int) bool { return !codes[p.CatCol(ci)[r]] }, nil
	}
	return func(p *table.Partition, r int) bool { return codes[p.CatCol(ci)[r]] }, nil
}
