// Package query defines the query model PS3 supports (paper §2.2) and the
// execution engine that evaluates queries on partitions:
//
//   - Aggregates: SUM and COUNT(*) (hence AVG) over linear (+,-) projections
//     of numeric columns, plus CASE-conditioned aggregates expressed as an
//     aggregate over a predicate filter.
//   - Predicates: conjunctions, disjunctions and negations of single-column
//     clauses (=, !=, <, <=, >, >= on numeric/date columns; =, !=, IN on
//     categorical columns).
//   - GROUP BY on one or more stored columns of moderate distinctness.
//
// Per-partition answers are combined with weights per §2.4:
// Ã_g = Σ_j w_j · A_{g,p_j}.
package query

import (
	"fmt"
	"strings"

	"ps3/internal/table"
)

// Term is one coefficient*column term of a linear expression.
type Term struct {
	Col  string
	Coef float64
}

// LinearExpr is a linear projection over numeric columns:
// Const + Σ Coef_i · col_i. It covers the paper's "+,-" arithmetic on one or
// more columns (coefficients ±1 in generated workloads; arbitrary here).
type LinearExpr struct {
	Terms []Term
	Const float64
}

// Col returns an expression selecting a single column.
func Col(name string) LinearExpr { return LinearExpr{Terms: []Term{{Col: name, Coef: 1}}} }

// Add returns e + other.
func (e LinearExpr) Add(other LinearExpr) LinearExpr {
	out := LinearExpr{Const: e.Const + other.Const}
	out.Terms = append(out.Terms, e.Terms...)
	out.Terms = append(out.Terms, other.Terms...)
	return out
}

// Sub returns e - other.
func (e LinearExpr) Sub(other LinearExpr) LinearExpr {
	out := LinearExpr{Const: e.Const - other.Const}
	out.Terms = append(out.Terms, e.Terms...)
	for _, t := range other.Terms {
		out.Terms = append(out.Terms, Term{Col: t.Col, Coef: -t.Coef})
	}
	return out
}

// Columns returns the distinct column names used by the expression.
func (e LinearExpr) Columns() []string {
	seen := map[string]bool{}
	var out []string
	for _, t := range e.Terms {
		if !seen[t.Col] {
			seen[t.Col] = true
			out = append(out, t.Col)
		}
	}
	return out
}

// String renders the expression in SQL-ish form.
func (e LinearExpr) String() string {
	if len(e.Terms) == 0 {
		return fmt.Sprintf("%g", e.Const)
	}
	var sb strings.Builder
	for i, t := range e.Terms {
		switch {
		case i == 0 && t.Coef == 1:
			sb.WriteString(t.Col)
		case i == 0:
			fmt.Fprintf(&sb, "%g*%s", t.Coef, t.Col)
		case t.Coef == 1:
			fmt.Fprintf(&sb, " + %s", t.Col)
		case t.Coef == -1:
			fmt.Fprintf(&sb, " - %s", t.Col)
		case t.Coef < 0:
			fmt.Fprintf(&sb, " - %g*%s", -t.Coef, t.Col)
		default:
			fmt.Fprintf(&sb, " + %g*%s", t.Coef, t.Col)
		}
	}
	if e.Const != 0 {
		fmt.Fprintf(&sb, " + %g", e.Const)
	}
	return sb.String()
}

// cterm is one compiled expression term: resolved column index + coefficient.
type cterm struct {
	col  int
	coef float64
}

// exprKernel is a LinearExpr resolved against a schema, evaluable either
// row-at-a-time (the reference path) or vectorized into a scratch buffer.
type exprKernel struct {
	terms []cterm
	konst float64
}

// compile resolves column names to indexes, validating that every term
// references a numeric column.
func (e LinearExpr) compile(s *table.Schema) (*exprKernel, error) {
	k := &exprKernel{terms: make([]cterm, 0, len(e.Terms)), konst: e.Const}
	for _, t := range e.Terms {
		ci := s.ColIndex(t.Col)
		if ci < 0 {
			return nil, fmt.Errorf("query: unknown column %q in expression", t.Col)
		}
		if !s.Col(ci).IsNumeric() {
			return nil, fmt.Errorf("query: column %q is categorical; cannot aggregate", t.Col)
		}
		k.terms = append(k.terms, cterm{ci, t.Coef})
	}
	return k, nil
}

// evalRow evaluates the expression on one row.
func (k *exprKernel) evalRow(p *table.Partition, r int) float64 {
	v := k.konst
	for _, t := range k.terms {
		v += t.coef * p.NumCol(t.col)[r]
	}
	return v
}

// evalInto fills dst[i] with the expression value at row sel[i], one tight
// column loop per term. Each dst entry is built as constant first, then
// terms in declaration order — the same addition sequence as evalRow — so
// per-row results are bit-identical to the row-at-a-time path.
func (k *exprKernel) evalInto(p *table.Partition, sel []int32, dst []float64) {
	for i := range dst {
		dst[i] = k.konst
	}
	for _, t := range k.terms {
		col := p.NumCol(t.col)
		coef := t.coef
		for i, r := range sel {
			dst[i] += coef * col[r]
		}
	}
}

// AggKind enumerates supported aggregate functions.
type AggKind uint8

const (
	// Sum is SUM(expr).
	Sum AggKind = iota
	// Count is COUNT(*).
	Count
	// Avg is AVG(expr), computed as SUM(expr)/COUNT(*) so that weighted
	// partition combination stays linear.
	Avg
)

func (k AggKind) String() string {
	switch k {
	case Sum:
		return "SUM"
	case Count:
		return "COUNT"
	case Avg:
		return "AVG"
	default:
		return fmt.Sprintf("AggKind(%d)", uint8(k))
	}
}

// Aggregate is one aggregate in the SELECT list. Filter, when non-nil,
// restricts the aggregate to rows matching it — the rewrite of CASE
// conditions as "an aggregate over a predicate" (§2.2).
type Aggregate struct {
	Kind   AggKind
	Expr   LinearExpr // ignored for Count
	Filter Pred
	Name   string
}

// components returns how many linear accumulator slots the aggregate needs:
// SUM and COUNT need one, AVG needs two (sum and count).
func (a Aggregate) components() int {
	if a.Kind == Avg {
		return 2
	}
	return 1
}

// String renders the aggregate in SQL-ish form.
func (a Aggregate) String() string {
	body := ""
	switch a.Kind {
	case Count:
		body = "COUNT(*)"
	case Sum:
		body = fmt.Sprintf("SUM(%s)", a.Expr)
	case Avg:
		body = fmt.Sprintf("AVG(%s)", a.Expr)
	}
	if a.Filter != nil {
		body += fmt.Sprintf(" FILTER (WHERE %s)", a.Filter)
	}
	if a.Name != "" {
		body += " AS " + a.Name
	}
	return body
}
