package query

import "ps3/internal/table"

// This file retains the original row-at-a-time evaluator as the engine's
// reference implementation. It interprets the compiled rowFn closure tree
// one row at a time — slow, but trivially auditable against the paper's
// semantics — and serves as the oracle for the vectorized path: equivalence
// tests require EvalPartition to be bit-identical to it on randomized
// query/partition corpora, and benchmarks use it as the speedup baseline.

// EvalPartitionReference computes the query's accumulators on one partition
// row-at-a-time. Its answers are bit-identical to EvalPartition: the
// vectorized path preserves row-order accumulation per accumulator slot, so
// the float sums see the same additions in the same order.
func (c *Compiled) EvalPartitionReference(p *table.Partition) *Answer {
	ans := c.NewAnswer()
	var keyBuf []byte
	rows := p.Rows()
	for r := 0; r < rows; r++ {
		if !c.pred(p, r) {
			continue
		}
		keyBuf = c.appendKey(keyBuf[:0], p, r)
		acc, ok := ans.Groups[string(keyBuf)]
		if !ok {
			acc = make([]float64, c.comps)
			ans.Groups[string(keyBuf)] = acc
		}
		for _, s := range c.slots {
			if s.filter != nil && !s.filter(p, r) {
				continue
			}
			switch s.kind {
			case Sum:
				acc[s.at] += s.expr.evalRow(p, r)
			case Count:
				acc[s.at]++
			case Avg:
				acc[s.at] += s.expr.evalRow(p, r)
				acc[s.at+1]++
			}
		}
	}
	return ans
}

// SelectivityReference is the row-at-a-time counterpart of Selectivity: a
// sequential scan evaluating the predicate closure per row. Counts are
// integers, so it returns exactly the same value as the kernel path.
func (c *Compiled) SelectivityReference(t *table.Table) float64 {
	pass, rows := 0, 0
	for _, p := range t.Parts {
		n := p.Rows()
		rows += n
		for r := 0; r < n; r++ {
			if c.pred(p, r) {
				pass++
			}
		}
	}
	if rows == 0 {
		return 0
	}
	return float64(pass) / float64(rows)
}
