package query

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"ps3/internal/exec"
	"ps3/internal/table"
)

// randomTable builds a table with numeric, date and categorical columns and
// deliberately duplicated/skewed values so that equality predicates and
// group-bys hit real collisions.
func randomTable(t *testing.T, seed int64, rows, rowsPerPart int) *table.Table {
	t.Helper()
	s := table.MustSchema(
		table.Column{Name: "a", Kind: table.Numeric},
		table.Column{Name: "b", Kind: table.Numeric},
		table.Column{Name: "d", Kind: table.Date},
		table.Column{Name: "cat", Kind: table.Categorical},
		table.Column{Name: "city", Kind: table.Categorical},
	)
	b, err := table.NewBuilder(s, rowsPerPart)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	cats := []string{"red", "green", "blue"}
	cities := []string{"ams", "ber", "cdg", "del", "eze", "fra", "gig", "hnd"}
	for i := 0; i < rows; i++ {
		num := []float64{
			math.Floor(rng.Float64() * 50), // a: coarse values, equality-friendly
			rng.NormFloat64() * 10,         // b: continuous
			float64(rng.Intn(30)),          // d: date-ish day offsets
			0, 0,
		}
		cat := []string{"", "", "", cats[rng.Intn(len(cats))], cities[rng.Intn(len(cities))]}
		if err := b.Append(num, cat); err != nil {
			t.Fatal(err)
		}
	}
	return b.Finish()
}

// answersBitDiff reports how got differs from want, or "" when the two
// answers contain the same groups with bit-for-bit equal accumulators.
func answersBitDiff(got, want *Answer) string {
	if len(got.Groups) != len(want.Groups) {
		return fmt.Sprintf("%d groups, reference has %d", len(got.Groups), len(want.Groups))
	}
	for g, wv := range want.Groups {
		gv, ok := got.Groups[g]
		if !ok {
			return fmt.Sprintf("missing group %x", g)
		}
		if len(gv) != len(wv) {
			return fmt.Sprintf("group %x has %d comps, reference %d", g, len(gv), len(wv))
		}
		for j := range wv {
			if math.Float64bits(gv[j]) != math.Float64bits(wv[j]) {
				return fmt.Sprintf("group %x comp %d: %v (bits %x) vs reference %v (bits %x)",
					g, j, gv[j], math.Float64bits(gv[j]), wv[j], math.Float64bits(wv[j]))
			}
		}
	}
	return ""
}

// requireBitIdentical fails unless got and want contain the same groups with
// accumulators equal bit-for-bit.
func requireBitIdentical(t *testing.T, ctx string, got, want *Answer) {
	t.Helper()
	if diff := answersBitDiff(got, want); diff != "" {
		t.Fatalf("%s: %s", ctx, diff)
	}
}

// checkQueryEquivalence compares the vectorized and reference paths for one
// query across every partition, plus Selectivity.
func checkQueryEquivalence(t *testing.T, c *Compiled, tbl *table.Table) {
	t.Helper()
	q := c.Q.String()
	for _, p := range tbl.Parts {
		requireBitIdentical(t, q, c.EvalPartition(p), c.EvalPartitionReference(p))
	}
	if got, want := c.Selectivity(tbl), c.SelectivityReference(tbl); got != want {
		t.Fatalf("%s: Selectivity %v != reference %v", q, got, want)
	}
}

// TestVectorizedMatchesReferenceRandomized is the main equivalence contract:
// on a randomized query corpus over a randomized table, the vectorized
// evaluator must be bit-identical to the row-at-a-time reference.
func TestVectorizedMatchesReferenceRandomized(t *testing.T) {
	tbl := randomTable(t, 7, 4_000, 256)
	gen, err := NewGenerator(Workload{
		GroupableCols:  []string{"cat", "city", "d"},
		PredicateCols:  []string{"a", "b", "d", "cat", "city"},
		AggCols:        []string{"a", "b", "d"},
		MaxGroupCols:   3,
		MaxPredClauses: 6,
	}, tbl, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range gen.SampleN(120) {
		checkQueryEquivalence(t, mustCompile(t, q, tbl), tbl)
	}
}

// TestVectorizedMatchesReferenceConstructed covers predicate and aggregate
// shapes the generator rarely (or never) emits: deep NOT/OR nesting, FILTER
// aggregates including always-false filters, IN lists with dictionary-unseen
// values, constant expressions, and multi-column group-bys.
func TestVectorizedMatchesReferenceConstructed(t *testing.T) {
	tbl := randomTable(t, 19, 1_500, 128)
	lt := func(col string, v float64) Pred { return &Clause{Col: col, Op: OpLt, Num: v} }
	ge := func(col string, v float64) Pred { return &Clause{Col: col, Op: OpGe, Num: v} }
	eq := func(col, v string) Pred { return &Clause{Col: col, Op: OpEq, Strs: []string{v}} }
	queries := []*Query{
		// Nested OR of ANDs under a NOT.
		{
			Aggs: []Aggregate{{Kind: Count}, {Kind: Sum, Expr: Col("a")}},
			Pred: &Not{Child: NewOr(
				NewAnd(ge("a", 10), lt("a", 20)),
				NewAnd(eq("cat", "red"), &Not{Child: eq("city", "ams")}),
			)},
		},
		// OR with an always-empty branch (unseen IN values).
		{
			Aggs:    []Aggregate{{Kind: Avg, Expr: Col("b")}},
			GroupBy: []string{"cat"},
			Pred: NewOr(
				&Clause{Col: "city", Op: OpIn, Strs: []string{"zzz", "yyy"}},
				lt("b", 0),
			),
		},
		// != against a dictionary-unseen value passes everything.
		{
			Aggs: []Aggregate{{Kind: Count}},
			Pred: &Clause{Col: "cat", Op: OpNe, Strs: []string{"nope"}},
		},
		// FILTER aggregates: one selective, one rejecting every row.
		{
			GroupBy: []string{"city"},
			Aggs: []Aggregate{
				{Kind: Count, Filter: eq("cat", "green")},
				{Kind: Sum, Expr: Col("a").Add(Col("d")), Filter: lt("a", -1)},
				{Kind: Avg, Expr: Col("b"), Filter: NewOr(eq("cat", "red"), eq("cat", "blue"))},
				{Kind: Count},
			},
			Pred: ge("d", 3),
		},
		// Multi-column group-by mixing categorical and numeric keys.
		{
			GroupBy: []string{"cat", "d", "city"},
			Aggs:    []Aggregate{{Kind: Sum, Expr: Col("b").Sub(Col("a"))}, {Kind: Count}},
			Pred:    lt("d", 20),
		},
		// Single numeric group-by (generic path, 8-byte keys).
		{
			GroupBy: []string{"d"},
			Aggs:    []Aggregate{{Kind: Avg, Expr: Col("a")}},
		},
		// Constant-only expression.
		{
			Aggs: []Aggregate{{Kind: Sum, Expr: LinearExpr{Const: 2.5}}},
			Pred: ge("b", 0),
		},
		// No predicate, no group-by: pure fast path.
		{
			Aggs: []Aggregate{{Kind: Sum, Expr: Col("a")}, {Kind: Avg, Expr: Col("d")}, {Kind: Count}},
		},
	}
	for _, q := range queries {
		c := mustCompile(t, q, tbl)
		checkQueryEquivalence(t, c, tbl)
		// Cross-check GroundTruth at several worker counts against a
		// reference fold in partition order.
		want := c.NewAnswer()
		for _, p := range tbl.Parts {
			want.Merge(c.EvalPartitionReference(p))
		}
		for _, par := range []int{1, 3, 8} {
			c.Exec = exec.Options{Parallelism: par}
			got, _ := c.GroundTruth(tbl)
			requireBitIdentical(t, q.String(), got, want)
		}
	}
}

// TestVectorizedEmptyPartition checks the kernel path on a partition with no
// rows: both evaluators must return an empty answer without touching any
// column slice.
func TestVectorizedEmptyPartition(t *testing.T) {
	tbl := randomTable(t, 3, 100, 50)
	empty := table.NewPartition(tbl.Schema)
	q := &Query{
		GroupBy: []string{"cat"},
		Aggs:    []Aggregate{{Kind: Sum, Expr: Col("a")}, {Kind: Count}},
		Pred:    &Clause{Col: "a", Op: OpGe, Num: 0},
	}
	c := mustCompile(t, q, tbl)
	if got := c.EvalPartition(empty); got.NumGroups() != 0 {
		t.Errorf("EvalPartition(empty) has %d groups, want 0", got.NumGroups())
	}
	if got := c.EvalPartitionReference(empty); got.NumGroups() != 0 {
		t.Errorf("EvalPartitionReference(empty) has %d groups, want 0", got.NumGroups())
	}
}

// TestEvalPartitionConcurrentScratchReuse hammers one Compiled from many
// goroutines through the public (pool-backed) entry point; with -race this
// verifies scratch recycling never shares buffers across evaluations.
func TestEvalPartitionConcurrentScratchReuse(t *testing.T) {
	tbl := randomTable(t, 23, 2_000, 128)
	q := &Query{
		GroupBy: []string{"cat", "d"},
		Aggs: []Aggregate{
			{Kind: Sum, Expr: Col("a").Add(Col("b"))},
			{Kind: Count, Filter: &Clause{Col: "city", Op: OpIn, Strs: []string{"ams", "ber", "cdg"}}},
		},
		Pred: NewOr(
			&Clause{Col: "a", Op: OpLt, Num: 25},
			&Not{Child: &Clause{Col: "cat", Op: OpEq, Strs: []string{"red"}}},
		),
	}
	c := mustCompile(t, q, tbl)
	want := make([]*Answer, len(tbl.Parts))
	for i, p := range tbl.Parts {
		want[i] = c.EvalPartitionReference(p)
	}
	errs := make(chan string, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, p := range tbl.Parts {
				if diff := answersBitDiff(c.EvalPartition(p), want[i]); diff != "" {
					errs <- fmt.Sprintf("partition %d: %s", i, diff)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for diff := range errs {
		t.Error(diff)
	}
}
