package query

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"ps3/internal/table"
)

// fixture builds a small table:
//
//	x: 0..99, cat: a/b cycling, d: x/10, y: 2x
func fixture(t *testing.T, rowsPerPart int) *table.Table {
	t.Helper()
	s := table.MustSchema(
		table.Column{Name: "x", Kind: table.Numeric},
		table.Column{Name: "y", Kind: table.Numeric},
		table.Column{Name: "cat", Kind: table.Categorical},
		table.Column{Name: "d", Kind: table.Date},
	)
	b, err := table.NewBuilder(s, rowsPerPart)
	if err != nil {
		t.Fatal(err)
	}
	cats := []string{"a", "b"}
	for i := 0; i < 100; i++ {
		num := []float64{float64(i), float64(2 * i), 0, math.Floor(float64(i) / 10)}
		cat := []string{"", "", cats[i%2], ""}
		if err := b.Append(num, cat); err != nil {
			t.Fatal(err)
		}
	}
	return b.Finish()
}

func mustCompile(t *testing.T, q *Query, tbl *table.Table) *Compiled {
	t.Helper()
	c, err := Compile(q, tbl)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCountStar(t *testing.T) {
	tbl := fixture(t, 25)
	c := mustCompile(t, &Query{Aggs: []Aggregate{{Kind: Count}}}, tbl)
	total, perPart := c.GroundTruth(tbl)
	vals := c.FinalValues(total)
	if len(vals) != 1 {
		t.Fatalf("ungrouped query has %d groups, want 1", len(vals))
	}
	for _, v := range vals {
		if v[0] != 100 {
			t.Errorf("COUNT(*) = %g, want 100", v[0])
		}
	}
	if len(perPart) != 4 {
		t.Fatalf("perPart has %d answers, want 4", len(perPart))
	}
}

func TestSumWithPredicate(t *testing.T) {
	tbl := fixture(t, 25)
	q := &Query{
		Aggs: []Aggregate{{Kind: Sum, Expr: Col("x")}},
		Pred: &Clause{Col: "x", Op: OpLt, Num: 10},
	}
	c := mustCompile(t, q, tbl)
	total, _ := c.GroundTruth(tbl)
	for _, v := range c.FinalValues(total) {
		if v[0] != 45 { // 0+1+...+9
			t.Errorf("SUM(x) WHERE x<10 = %g, want 45", v[0])
		}
	}
}

func TestAvgIsWeightedCorrectly(t *testing.T) {
	tbl := fixture(t, 25)
	q := &Query{Aggs: []Aggregate{{Kind: Avg, Expr: Col("x")}}}
	c := mustCompile(t, q, tbl)
	_, perPart := c.GroundTruth(tbl)
	// Estimate from two partitions with weight 2 each: AVG must still be
	// the ratio of weighted sums, not the average of averages.
	ans := c.NewAnswer()
	ans.AddWeighted(perPart[0], 2) // rows 0..24
	ans.AddWeighted(perPart[3], 2) // rows 75..99
	for _, v := range c.FinalValues(ans) {
		want := (2*(24.0*25/2) + 2*(75.0+99)*25/2) / 100
		if math.Abs(v[0]-want) > 1e-9 {
			t.Errorf("weighted AVG = %g, want %g", v[0], want)
		}
	}
}

func TestGroupBy(t *testing.T) {
	tbl := fixture(t, 25)
	q := &Query{
		GroupBy: []string{"cat"},
		Aggs:    []Aggregate{{Kind: Count}},
	}
	c := mustCompile(t, q, tbl)
	total, _ := c.GroundTruth(tbl)
	vals := c.FinalValues(total)
	if len(vals) != 2 {
		t.Fatalf("got %d groups, want 2", len(vals))
	}
	for g, v := range vals {
		if v[0] != 50 {
			t.Errorf("group %s count = %g, want 50", c.GroupLabel(g), v[0])
		}
		if !strings.HasPrefix(c.GroupLabel(g), "cat=") {
			t.Errorf("label %q should start with cat=", c.GroupLabel(g))
		}
	}
}

func TestGroupByNumericColumn(t *testing.T) {
	tbl := fixture(t, 25)
	q := &Query{
		GroupBy: []string{"d"},
		Aggs:    []Aggregate{{Kind: Sum, Expr: Col("y")}},
	}
	c := mustCompile(t, q, tbl)
	total, _ := c.GroundTruth(tbl)
	vals := c.FinalValues(total)
	if len(vals) != 10 {
		t.Fatalf("got %d groups, want 10 decades", len(vals))
	}
}

func TestLinearExpression(t *testing.T) {
	tbl := fixture(t, 50)
	q := &Query{Aggs: []Aggregate{{Kind: Sum, Expr: Col("y").Sub(Col("x"))}}}
	c := mustCompile(t, q, tbl)
	total, _ := c.GroundTruth(tbl)
	for _, v := range c.FinalValues(total) {
		// y - x = x, so SUM = 0+1+...+99 = 4950.
		if v[0] != 4950 {
			t.Errorf("SUM(y-x) = %g, want 4950", v[0])
		}
	}
}

func TestFilteredAggregate(t *testing.T) {
	tbl := fixture(t, 50)
	q := &Query{Aggs: []Aggregate{
		{Kind: Count, Filter: &Clause{Col: "cat", Op: OpEq, Strs: []string{"a"}}},
		{Kind: Count},
	}}
	c := mustCompile(t, q, tbl)
	total, _ := c.GroundTruth(tbl)
	for _, v := range c.FinalValues(total) {
		if v[0] != 50 || v[1] != 100 {
			t.Errorf("filtered/unfiltered counts = %g/%g, want 50/100", v[0], v[1])
		}
	}
}

func TestPredicateOperators(t *testing.T) {
	tbl := fixture(t, 50)
	cases := []struct {
		pred Pred
		want float64
	}{
		{&Clause{Col: "x", Op: OpEq, Num: 5}, 1},
		{&Clause{Col: "x", Op: OpNe, Num: 5}, 99},
		{&Clause{Col: "x", Op: OpLe, Num: 5}, 6},
		{&Clause{Col: "x", Op: OpGt, Num: 95}, 4},
		{&Clause{Col: "x", Op: OpGe, Num: 95}, 5},
		{&Clause{Col: "cat", Op: OpEq, Strs: []string{"a"}}, 50},
		{&Clause{Col: "cat", Op: OpNe, Strs: []string{"a"}}, 50},
		{&Clause{Col: "cat", Op: OpIn, Strs: []string{"a", "b"}}, 100},
		{&Clause{Col: "cat", Op: OpIn, Strs: []string{"zzz"}}, 0},
		{&Not{Child: &Clause{Col: "x", Op: OpLt, Num: 10}}, 90},
		{NewAnd(&Clause{Col: "x", Op: OpGe, Num: 10}, &Clause{Col: "x", Op: OpLt, Num: 20}), 10},
		{NewOr(&Clause{Col: "x", Op: OpLt, Num: 5}, &Clause{Col: "x", Op: OpGe, Num: 95}), 10},
	}
	for _, tc := range cases {
		q := &Query{Aggs: []Aggregate{{Kind: Count}}, Pred: tc.pred}
		c := mustCompile(t, q, tbl)
		total, _ := c.GroundTruth(tbl)
		vals := c.FinalValues(total)
		if tc.want == 0 {
			if len(vals) != 0 {
				t.Errorf("pred %s: expected empty answer", tc.pred)
			}
			continue
		}
		for _, v := range vals {
			if v[0] != tc.want {
				t.Errorf("pred %s: count = %g, want %g", tc.pred, v[0], tc.want)
			}
		}
	}
}

func TestSelectivity(t *testing.T) {
	tbl := fixture(t, 25)
	q := &Query{
		Aggs: []Aggregate{{Kind: Count}},
		Pred: &Clause{Col: "x", Op: OpLt, Num: 25},
	}
	c := mustCompile(t, q, tbl)
	if got := c.Selectivity(tbl); got != 0.25 {
		t.Errorf("Selectivity = %g, want 0.25", got)
	}
}

func TestSelectivityZeroRowTable(t *testing.T) {
	empty := &table.Table{Schema: fixture(t, 25).Schema, Dict: table.NewDict()}
	q := &Query{
		Aggs: []Aggregate{{Kind: Count}},
		Pred: &Clause{Col: "x", Op: OpLt, Num: 25},
	}
	c := mustCompile(t, q, empty)
	if got := c.Selectivity(empty); got != 0 {
		t.Errorf("Selectivity on zero-row table = %g, want 0", got)
	}
	total, perPart := c.GroundTruth(empty)
	if total.NumGroups() != 0 || len(perPart) != 0 {
		t.Errorf("GroundTruth on zero-row table: %d groups / %d partitions, want 0/0",
			total.NumGroups(), len(perPart))
	}
}

func TestUnseenCategoricalPredicates(t *testing.T) {
	tbl := fixture(t, 25)
	cases := []struct {
		pred Pred
		want float64 // selectivity
	}{
		{&Clause{Col: "cat", Op: OpEq, Strs: []string{"zzz"}}, 0},
		{&Clause{Col: "cat", Op: OpNe, Strs: []string{"zzz"}}, 1},
		{&Clause{Col: "cat", Op: OpIn, Strs: []string{"zzz", "a"}}, 0.5},
		{&Not{Child: &Clause{Col: "cat", Op: OpIn, Strs: []string{"zzz"}}}, 1},
	}
	for _, tc := range cases {
		q := &Query{Aggs: []Aggregate{{Kind: Count}}, Pred: tc.pred}
		c := mustCompile(t, q, tbl)
		if got := c.Selectivity(tbl); got != tc.want {
			t.Errorf("pred %s: selectivity = %g, want %g", tc.pred, got, tc.want)
		}
		if got, want := c.Selectivity(tbl), c.SelectivityReference(tbl); got != want {
			t.Errorf("pred %s: vectorized selectivity %g != reference %g", tc.pred, got, want)
		}
	}
}

func TestFilterRejectsAllSelectedRows(t *testing.T) {
	tbl := fixture(t, 25)
	q := &Query{
		GroupBy: []string{"cat"},
		Aggs: []Aggregate{
			{Kind: Count, Filter: &Clause{Col: "x", Op: OpLt, Num: -1}},
			{Kind: Sum, Expr: Col("x"), Filter: &Clause{Col: "x", Op: OpLt, Num: -1}},
			{Kind: Avg, Expr: Col("x"), Filter: &Clause{Col: "x", Op: OpLt, Num: -1}},
			{Kind: Count},
		},
	}
	c := mustCompile(t, q, tbl)
	total, _ := c.GroundTruth(tbl)
	vals := c.FinalValues(total)
	if len(vals) != 2 {
		t.Fatalf("got %d groups, want 2 (groups exist even when filters reject all rows)", len(vals))
	}
	for g, v := range vals {
		if v[0] != 0 || v[1] != 0 || v[2] != 0 {
			t.Errorf("group %s: filtered aggs = %v, want zeros", c.GroupLabel(g), v[:3])
		}
		if v[3] != 50 {
			t.Errorf("group %s: unfiltered count = %g, want 50", c.GroupLabel(g), v[3])
		}
	}
}

func TestGroupLabelMalformedKey(t *testing.T) {
	tbl := fixture(t, 25)
	q := &Query{
		GroupBy: []string{"cat", "x"},
		Aggs:    []Aggregate{{Kind: Count}},
	}
	c := mustCompile(t, q, tbl)
	// A well-formed key is 4 (categorical code) + 8 (numeric) bytes.
	for _, key := range []string{"", "xx", "0123456789a", "0123456789abcdef0"} {
		if got := c.GroupLabel(key); !strings.Contains(got, "malformed") {
			t.Errorf("GroupLabel(%d bytes) = %q, want diagnostic label", len(key), got)
		}
	}
	// A key carrying an out-of-range dictionary code must not panic.
	bad := string([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 0, 0, 0, 0})
	if got := c.GroupLabel(bad); !strings.Contains(got, "bad code") {
		t.Errorf("GroupLabel(bad code) = %q, want bad-code diagnostic", got)
	}
	// Ungrouped queries keep the sentinel label.
	c2 := mustCompile(t, &Query{Aggs: []Aggregate{{Kind: Count}}}, tbl)
	if got := c2.GroupLabel(""); got != "<all>" {
		t.Errorf("ungrouped GroupLabel = %q, want <all>", got)
	}
}

func TestCompileErrors(t *testing.T) {
	tbl := fixture(t, 50)
	cases := []*Query{
		{Aggs: []Aggregate{{Kind: Sum, Expr: Col("missing")}}},
		{Aggs: []Aggregate{{Kind: Sum, Expr: Col("cat")}}}, // categorical aggregate
		{Aggs: []Aggregate{{Kind: Count}}, GroupBy: []string{"nope"}},
		{Aggs: []Aggregate{{Kind: Count}}, Pred: &Clause{Col: "nope", Op: OpEq, Num: 1}},
		{Aggs: []Aggregate{{Kind: Count}}, Pred: &Clause{Col: "cat", Op: OpLt, Num: 1}}, // < on categorical
		{Aggs: []Aggregate{{Kind: Count}}, Pred: &Clause{Col: "x", Op: OpIn, Strs: []string{"a"}}},
		{}, // no aggregates
	}
	for i, q := range cases {
		if _, err := Compile(q, tbl); err == nil {
			t.Errorf("case %d: Compile should have failed for %s", i, q)
		}
	}
}

func TestEstimateChargesIO(t *testing.T) {
	tbl := fixture(t, 25)
	q := &Query{Aggs: []Aggregate{{Kind: Count}}}
	c := mustCompile(t, q, tbl)
	tbl.ResetIO()
	ans, err := c.Estimate(tbl, []WeightedPartition{{Part: 0, Weight: 4}, {Part: 2, Weight: 4}})
	if err != nil {
		t.Fatal(err)
	}
	parts, _ := tbl.IOStats()
	if parts != 2 {
		t.Errorf("Estimate read %d partitions, want 2", parts)
	}
	for _, v := range c.FinalValues(ans) {
		if v[0] != 200 { // 2 partitions × 25 rows × weight 4
			t.Errorf("weighted COUNT = %g, want 200", v[0])
		}
	}
}

func TestWeightedCombinationLinearity(t *testing.T) {
	tbl := fixture(t, 20)
	q := &Query{
		GroupBy: []string{"cat"},
		Aggs:    []Aggregate{{Kind: Sum, Expr: Col("x")}, {Kind: Count}},
	}
	c := mustCompile(t, q, tbl)
	total, perPart := c.GroundTruth(tbl)
	// Reconstructing with all weights 1 must equal ground truth exactly.
	ans := c.NewAnswer()
	for i := range perPart {
		ans.AddWeighted(perPart[i], 1)
	}
	want := c.FinalValues(total)
	got := c.FinalValues(ans)
	if len(want) != len(got) {
		t.Fatalf("group count mismatch: %d vs %d", len(got), len(want))
	}
	for g, wv := range want {
		for j := range wv {
			if math.Abs(got[g][j]-wv[j]) > 1e-9 {
				t.Errorf("group %s agg %d: %g vs %g", c.GroupLabel(g), j, got[g][j], wv[j])
			}
		}
	}
}

func TestQueryString(t *testing.T) {
	q := &Query{
		GroupBy: []string{"cat"},
		Aggs: []Aggregate{
			{Kind: Sum, Expr: Col("x"), Name: "s"},
			{Kind: Count},
			{Kind: Avg, Expr: Col("y")},
		},
		Pred: NewAnd(
			&Clause{Col: "x", Op: OpGt, Num: 1},
			&Clause{Col: "cat", Op: OpIn, Strs: []string{"a", "b"}},
		),
	}
	s := q.String()
	for _, want := range []string{"SELECT", "SUM(x) AS s", "COUNT(*)", "AVG(y)", "WHERE", "GROUP BY cat", "IN (a, b)"} {
		if !strings.Contains(s, want) {
			t.Errorf("query string %q missing %q", s, want)
		}
	}
}

func TestQueryColumns(t *testing.T) {
	q := &Query{
		GroupBy: []string{"cat"},
		Aggs: []Aggregate{
			{Kind: Sum, Expr: Col("x"), Filter: &Clause{Col: "d", Op: OpGt, Num: 1}},
		},
		Pred: &Clause{Col: "y", Op: OpGt, Num: 1},
	}
	cols := q.Columns()
	want := map[string]bool{"x": true, "d": true, "y": true, "cat": true}
	if len(cols) != len(want) {
		t.Fatalf("Columns() = %v, want 4 distinct", cols)
	}
	for _, c := range cols {
		if !want[c] {
			t.Errorf("unexpected column %q", c)
		}
	}
}

func TestGeneratorProducesValidQueries(t *testing.T) {
	tbl := fixture(t, 25)
	wl := Workload{
		GroupableCols: []string{"cat", "d"},
		PredicateCols: []string{"x", "y", "cat", "d"},
		AggCols:       []string{"x", "y"},
	}
	gen, err := NewGenerator(wl, tbl, 7)
	if err != nil {
		t.Fatal(err)
	}
	qs := gen.SampleN(50)
	if len(qs) != 50 {
		t.Fatalf("SampleN(50) produced %d queries", len(qs))
	}
	seen := map[string]bool{}
	for _, q := range qs {
		if seen[q.String()] {
			t.Errorf("duplicate query: %s", q)
		}
		seen[q.String()] = true
		if _, err := Compile(q, tbl); err != nil {
			t.Errorf("generated query does not compile: %s: %v", q, err)
		}
		if len(q.Aggs) < 1 || len(q.Aggs) > 3 {
			t.Errorf("query has %d aggregates, want 1..3", len(q.Aggs))
		}
		if len(Clauses(q.Pred)) > wl.MaxPredClauses+5 {
			t.Errorf("query has too many clauses: %s", q)
		}
	}
}

func TestGeneratorValidation(t *testing.T) {
	tbl := fixture(t, 25)
	if _, err := NewGenerator(Workload{AggCols: []string{"cat"}}, tbl, 1); err == nil {
		t.Error("categorical aggregate column should be rejected")
	}
	if _, err := NewGenerator(Workload{AggCols: []string{"x"}, GroupableCols: []string{"zzz"}}, tbl, 1); err == nil {
		t.Error("unknown groupable column should be rejected")
	}
	if _, err := NewGenerator(Workload{}, tbl, 1); err == nil {
		t.Error("empty aggregate columns should be rejected")
	}
}

// Property: for any weights, the weighted combination of per-partition
// counts equals the weighted sum of partition row counts (linearity, §2.4).
func TestWeightedCountProperty(t *testing.T) {
	tbl := fixture(t, 10)
	q := &Query{Aggs: []Aggregate{{Kind: Count}}}
	c := mustCompile(t, q, tbl)
	_, perPart := c.GroundTruth(tbl)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ans := c.NewAnswer()
		var want float64
		for i := range perPart {
			w := rng.Float64() * 5
			ans.AddWeighted(perPart[i], w)
			want += w * 10 // 10 rows per partition
		}
		for _, v := range c.FinalValues(ans) {
			if math.Abs(v[0]-want) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestExprString(t *testing.T) {
	e := Col("a").Add(Col("b")).Sub(Col("c"))
	if got := e.String(); got != "a + b - c" {
		t.Errorf("expr string = %q, want %q", got, "a + b - c")
	}
	if got := (LinearExpr{Const: 3}).String(); got != "3" {
		t.Errorf("const expr = %q", got)
	}
}
