package query

import (
	"fmt"
	"math/rand"

	"ps3/internal/table"
)

// Workload specifies the query distribution PS3 is trained for (paper §2.1:
// the aggregate functions and group-by columnsets are known a priori;
// predicates vary freely within the scope). Sample draws random queries per
// the §5.1.2 recipe: 0..MaxGroupCols group-by columns, 0..MaxPredClauses
// predicate clauses with random column/operator/constant, and 1..MaxAggs
// aggregates.
type Workload struct {
	// GroupableCols may appear in GROUP BY (moderate distinctness).
	GroupableCols []string
	// PredicateCols may appear in predicate clauses.
	PredicateCols []string
	// AggCols are numeric columns usable inside aggregate expressions.
	AggCols []string
	// MaxGroupCols bounds group-by width (default 2; paper uses up to 8).
	MaxGroupCols int
	// MaxPredClauses bounds predicate clauses (default 5, as in the paper).
	MaxPredClauses int
	// MaxAggs bounds the aggregate count (default 3, as in the paper).
	MaxAggs int
}

func (w Workload) withDefaults() Workload {
	if w.MaxGroupCols <= 0 {
		w.MaxGroupCols = 2
	}
	if w.MaxPredClauses <= 0 {
		w.MaxPredClauses = 5
	}
	if w.MaxAggs <= 0 {
		w.MaxAggs = 3
	}
	return w
}

// Generator samples random queries from a workload over a concrete dataset
// (constants are drawn from actual data values so predicates are
// satisfiable with realistic selectivities). Any PartitionSource works:
// over a paged store the constant sampling reads random partitions through
// the source's cache.
type Generator struct {
	w      Workload
	src    table.PartitionSource
	schema *table.Schema
	dict   *table.Dict
	rng    *rand.Rand
}

// NewGenerator validates the workload spec against the source's schema.
func NewGenerator(w Workload, src table.PartitionSource, seed int64) (*Generator, error) {
	w = w.withDefaults()
	schema := src.TableSchema()
	check := func(names []string, what string, wantNumeric bool) error {
		for _, name := range names {
			ci := schema.ColIndex(name)
			if ci < 0 {
				return fmt.Errorf("query: workload %s column %q not in schema", what, name)
			}
			if wantNumeric && !schema.Col(ci).IsNumeric() {
				return fmt.Errorf("query: workload %s column %q must be numeric", what, name)
			}
		}
		return nil
	}
	if err := check(w.GroupableCols, "group-by", false); err != nil {
		return nil, err
	}
	if err := check(w.PredicateCols, "predicate", false); err != nil {
		return nil, err
	}
	if err := check(w.AggCols, "aggregate", true); err != nil {
		return nil, err
	}
	if len(w.AggCols) == 0 {
		return nil, fmt.Errorf("query: workload needs at least one aggregate column")
	}
	return &Generator{w: w, src: src, schema: schema, dict: src.TableDict(), rng: rand.New(rand.NewSource(seed))}, nil
}

// Sample draws one random query.
func (g *Generator) Sample() *Query {
	q := &Query{}
	q.GroupBy = g.sampleGroupBy()
	q.Pred = g.samplePredicate()
	q.Aggs = g.sampleAggregates()
	return q
}

// SampleN draws n distinct queries (by SQL rendering), plus up to n extra
// attempts to resolve collisions.
func (g *Generator) SampleN(n int) []*Query {
	seen := make(map[string]bool, n)
	out := make([]*Query, 0, n)
	for attempts := 0; len(out) < n && attempts < 20*n; attempts++ {
		q := g.Sample()
		key := q.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, q)
	}
	return out
}

func (g *Generator) sampleGroupBy() []string {
	if len(g.w.GroupableCols) == 0 || g.rng.Float64() < 0.25 {
		return nil
	}
	k := 1 + g.rng.Intn(g.w.MaxGroupCols)
	if k > len(g.w.GroupableCols) {
		k = len(g.w.GroupableCols)
	}
	perm := g.rng.Perm(len(g.w.GroupableCols))
	cols := make([]string, 0, k)
	for _, i := range perm[:k] {
		cols = append(cols, g.w.GroupableCols[i])
	}
	return cols
}

func (g *Generator) sampleAggregates() []Aggregate {
	n := 1 + g.rng.Intn(g.w.MaxAggs)
	aggs := make([]Aggregate, 0, n)
	for i := 0; i < n; i++ {
		aggs = append(aggs, g.sampleAggregate(i))
	}
	return aggs
}

func (g *Generator) sampleAggregate(i int) Aggregate {
	r := g.rng.Float64()
	a := Aggregate{Name: fmt.Sprintf("agg%d", i)}
	switch {
	case r < 0.2:
		a.Kind = Count
	case r < 0.35:
		a.Kind = Avg
		a.Expr = Col(g.pick(g.w.AggCols))
	default:
		a.Kind = Sum
		a.Expr = g.sampleExpr()
	}
	// Occasionally attach a CASE-style filter (§2.2).
	if g.rng.Float64() < 0.1 && len(g.w.PredicateCols) > 0 {
		if cl := g.sampleClause(); cl != nil {
			a.Filter = cl
		}
	}
	return a
}

// sampleExpr draws a linear projection: single column, sum, or difference.
func (g *Generator) sampleExpr() LinearExpr {
	r := g.rng.Float64()
	e := Col(g.pick(g.w.AggCols))
	switch {
	case r < 0.7 || len(g.w.AggCols) < 2:
		return e
	case r < 0.88:
		return e.Add(Col(g.pick(g.w.AggCols)))
	default:
		return e.Sub(Col(g.pick(g.w.AggCols)))
	}
}

func (g *Generator) samplePredicate() Pred {
	if len(g.w.PredicateCols) == 0 {
		return nil
	}
	n := g.rng.Intn(g.w.MaxPredClauses + 1)
	if n == 0 {
		return nil
	}
	// Sample clause columns without replacement where possible, so
	// conjunctions don't stack contradictory equality clauses on one
	// categorical column. Numeric columns may repeat (range predicates).
	perm := g.rng.Perm(len(g.w.PredicateCols))
	clauses := make([]Pred, 0, n)
	for i := 0; i < n; i++ {
		col := g.w.PredicateCols[perm[i%len(perm)]]
		cl := g.sampleClauseFor(col)
		if cl == nil {
			continue
		}
		// Occasional negation (§2.2).
		if g.rng.Float64() < 0.08 {
			clauses = append(clauses, &Not{Child: cl})
		} else {
			clauses = append(clauses, cl)
		}
	}
	if len(clauses) == 0 {
		return nil
	}
	if len(clauses) == 1 {
		return clauses[0]
	}
	// Mostly conjunctions; sometimes a disjunctive pair nested inside.
	if g.rng.Float64() < 0.25 && len(clauses) >= 2 {
		or := NewOr(clauses[0], clauses[1])
		rest := append([]Pred{or}, clauses[2:]...)
		return NewAnd(rest...)
	}
	return NewAnd(clauses...)
}

// sampleClause picks a random predicate column, operator and constant; the
// constant is a value from a random row so selectivities are realistic.
func (g *Generator) sampleClause() Pred {
	return g.sampleClauseFor(g.pick(g.w.PredicateCols))
}

// sampleClauseFor samples an operator and constant for the given column.
func (g *Generator) sampleClauseFor(col string) Pred {
	ci := g.schema.ColIndex(col)
	if g.schema.Col(ci).IsNumeric() {
		v := g.sampleNumeric(ci)
		ops := []Op{OpLt, OpLe, OpGt, OpGe, OpGe, OpLe} // inequality-heavy
		if g.rng.Float64() < 0.08 {
			return &Clause{Col: col, Op: OpEq, Num: v}
		}
		return &Clause{Col: col, Op: ops[g.rng.Intn(len(ops))], Num: v}
	}
	// Categorical: equality or IN over 2-3 sampled values. Attempts are
	// bounded because low-cardinality columns may not have k distinct
	// values to offer.
	if g.rng.Float64() < 0.35 {
		k := 2 + g.rng.Intn(2)
		vals := make([]string, 0, k)
		seen := map[string]bool{}
		for attempts := 0; len(vals) < k && attempts < 20*k; attempts++ {
			v := g.sampleCategorical(ci)
			if !seen[v] {
				seen[v] = true
				vals = append(vals, v)
			}
		}
		return &Clause{Col: col, Op: OpIn, Strs: vals}
	}
	return &Clause{Col: col, Op: OpEq, Strs: []string{g.sampleCategorical(ci)}}
}

// sampleNumeric returns the value of column ci at a uniformly random row,
// or 0 when no row can be read (empty source, failed partition read).
func (g *Generator) sampleNumeric(ci int) float64 {
	p := g.samplePartition()
	if p == nil {
		return 0
	}
	return p.NumCol(ci)[g.rng.Intn(p.Rows())]
}

// sampleCategorical returns the value of column ci at a random row, or ""
// when no row can be read.
func (g *Generator) sampleCategorical(ci int) string {
	p := g.samplePartition()
	if p == nil {
		return ""
	}
	return g.dict.Value(p.CatCol(ci)[g.rng.Intn(p.Rows())])
}

// samplePartition reads a uniformly random non-empty partition, or nil when
// the source is empty or the read fails.
func (g *Generator) samplePartition() *table.Partition {
	n := g.src.NumParts()
	if n == 0 {
		return nil
	}
	p, err := g.src.Read(g.rng.Intn(n))
	if err != nil || p.Rows() == 0 {
		return nil
	}
	return p
}

func (g *Generator) pick(names []string) string {
	return names[g.rng.Intn(len(names))]
}
