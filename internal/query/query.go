package query

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"strings"
	"sync"

	"ps3/internal/exec"
	"ps3/internal/table"
)

// Query is a single-table aggregation query within PS3's scope (§2.2):
// SELECT <GroupBy...>, <Aggs...> FROM t WHERE <Pred> GROUP BY <GroupBy...>.
type Query struct {
	Aggs    []Aggregate
	Pred    Pred
	GroupBy []string
}

// String renders the query in SQL-ish form for logs and docs.
func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	for i, g := range q.GroupBy {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(g)
	}
	for i, a := range q.Aggs {
		if i > 0 || len(q.GroupBy) > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(a.String())
	}
	sb.WriteString(" FROM t")
	if q.Pred != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(q.Pred.String())
	}
	if len(q.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		sb.WriteString(strings.Join(q.GroupBy, ", "))
	}
	return sb.String()
}

// Columns returns all distinct columns the query references (aggregates,
// filters, predicate, group by) — the set used for query-dependent feature
// masking.
func (q *Query) Columns() []string {
	seen := map[string]bool{}
	var out []string
	add := func(name string) {
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	for _, a := range q.Aggs {
		for _, c := range a.Expr.Columns() {
			add(c)
		}
		for _, c := range Columns(a.Filter) {
			add(c)
		}
	}
	for _, c := range Columns(q.Pred) {
		add(c)
	}
	for _, g := range q.GroupBy {
		add(g)
	}
	return out
}

// aggSlot maps an aggregate to its accumulator slots.
type aggSlot struct {
	kind AggKind
	expr *exprKernel
	// filter / filterKern are the row-at-a-time and vectorized compilations
	// of the aggregate's FILTER predicate (both nil when unfiltered).
	filter     rowFn
	filterKern kernel
	// first accumulator index; AVG uses two consecutive slots (sum, count).
	at int
}

// Compiled is a query bound to a schema and dictionary, ready to evaluate on
// partitions.
type Compiled struct {
	Q      *Query
	schema *table.Schema
	dict   *table.Dict
	// pred is the row-at-a-time predicate (reference path). The vectorized
	// hot path runs predSeed (fills the selection from the first clause's
	// column scan, nil when the tree can't seed) then predKern (narrows the
	// selection, nil when nothing remains to apply). Both nil = no
	// predicate.
	pred     rowFn
	predSeed seedKernel
	predKern kernel
	groupIdx []int
	slots    []aggSlot
	comps    int

	// scratch recycles evaluation buffers for the public single-partition
	// entry points; parallel scans thread one scratch per worker instead.
	scratch *sync.Pool

	// Exec configures the parallel scans (GroundTruth, Estimate,
	// Selectivity). The zero value uses GOMAXPROCS workers; Parallelism 1
	// forces a sequential scan. Results are bit-identical at every worker
	// count: partitions are evaluated in parallel but always merged in
	// partition order.
	Exec exec.Options
}

// Compile binds q against the source's schema and dictionary, validating all
// column references. Any PartitionSource works — a resident *table.Table or
// a paged store reader — since compilation touches only metadata, never
// partition data.
func Compile(q *Query, src table.PartitionSource) (*Compiled, error) {
	schema, dict := src.TableSchema(), src.TableDict()
	c := &Compiled{Q: q, schema: schema, dict: dict}
	var err error
	c.pred, err = compilePred(q.Pred, schema, dict)
	if err != nil {
		return nil, err
	}
	c.predSeed, c.predKern, err = compilePredSeed(q.Pred, schema, dict)
	if err != nil {
		return nil, err
	}
	for _, g := range q.GroupBy {
		gi := schema.ColIndex(g)
		if gi < 0 {
			return nil, fmt.Errorf("query: unknown group-by column %q", g)
		}
		c.groupIdx = append(c.groupIdx, gi)
	}
	if len(q.Aggs) == 0 {
		return nil, fmt.Errorf("query: at least one aggregate is required")
	}
	at := 0
	for _, a := range q.Aggs {
		slot := aggSlot{kind: a.Kind, at: at}
		if a.Kind != Count {
			ek, err := a.Expr.compile(schema)
			if err != nil {
				return nil, err
			}
			slot.expr = ek
		}
		if a.Filter != nil {
			fn, err := compilePred(a.Filter, schema, dict)
			if err != nil {
				return nil, err
			}
			slot.filter = fn
			kern, err := compileKernel(a.Filter, schema, dict)
			if err != nil {
				return nil, err
			}
			slot.filterKern = kern
		}
		c.slots = append(c.slots, slot)
		at += a.components()
	}
	c.comps = at
	c.scratch = &sync.Pool{New: func() any { return &scratch{} }}
	return c, nil
}

// NumAggs returns d, the number of aggregates in the answer.
func (c *Compiled) NumAggs() int { return len(c.Q.Aggs) }

// Answer holds per-group accumulator vectors. The accumulators are linear
// (sums and counts), so answers from different partitions combine by
// weighted addition (§2.4).
type Answer struct {
	comps  int
	Groups map[string][]float64
}

// NewAnswer returns an empty answer for the compiled query.
func (c *Compiled) NewAnswer() *Answer {
	return &Answer{comps: c.comps, Groups: make(map[string][]float64)}
}

// NumGroups returns the number of groups in the answer.
func (a *Answer) NumGroups() int { return len(a.Groups) }

// AddWeighted accumulates w * other into a.
func (a *Answer) AddWeighted(other *Answer, w float64) {
	//lint:mapiter-ok per-group accumulators are disjoint map keys: each group's float sum is unaffected by visit order
	for g, vals := range other.Groups {
		acc, ok := a.Groups[g]
		if !ok {
			acc = make([]float64, a.comps)
			a.Groups[g] = acc
		}
		for i, v := range vals {
			acc[i] += w * v
		}
	}
}

// Merge accumulates other into a with weight 1 — the exact-scan combine
// step (1*v == v in IEEE-754, so this is bit-identical to a plain sum).
func (a *Answer) Merge(other *Answer) { a.AddWeighted(other, 1) }

// EvalPartition computes the query's accumulators on one partition. It runs
// the vectorized kernel path: the predicate narrows a selection vector with
// one column loop per clause, then aggregates accumulate column-at-a-time
// over the surviving rows. Results are bit-identical to the retained
// row-at-a-time EvalPartitionReference (enforced by equivalence tests).
func (c *Compiled) EvalPartition(p *table.Partition) *Answer {
	sc := c.scratch.Get().(*scratch)
	ans := c.evalPartition(p, sc)
	c.scratch.Put(sc)
	return ans
}

// evalPartition is EvalPartition with caller-supplied scratch, the entry
// point parallel scans use with per-worker buffers.
func (c *Compiled) evalPartition(p *table.Partition, sc *scratch) *Answer {
	ans := c.NewAnswer()
	rows := p.Rows()
	if rows == 0 {
		return ans
	}
	var sel []int32
	if c.predSeed != nil {
		sel = c.predSeed(p, rows, sc.selBuf(rows))
	} else {
		sel = sc.fullSel(rows)
	}
	if c.predKern != nil && len(sel) > 0 {
		sel = c.predKern(p, sel, sc)
	}
	if len(sel) == 0 {
		return ans
	}
	switch {
	case len(c.groupIdx) == 0:
		// Single-group fast path: no key encoding, one accumulator vector.
		acc := make([]float64, c.comps)
		c.accumulate(p, sel, nil, acc, sc)
		ans.Groups[""] = acc
	case len(c.groupIdx) == 1 && !c.schema.Col(c.groupIdx[0]).IsNumeric():
		c.evalSingleCatGroup(p, sel, sc, ans)
	default:
		c.evalGenericGroups(p, sel, sc, ans)
	}
	return ans
}

// evalSingleCatGroup is the single-categorical-GROUP-BY fast path: group
// slots are resolved through a dense dictionary-code-indexed table, skipping
// key encoding and map probes entirely; keys are materialized only once per
// group when the answer is built.
func (c *Compiled) evalSingleCatGroup(p *table.Partition, sel []int32, sc *scratch, ans *Answer) {
	codes := p.CatCol(c.groupIdx[0])
	lut := sc.codeLutGrown(c.dict.Len())
	gidx := sc.gidxBuf(len(sel))
	order := sc.codes[:0]
	// Codes the dictionary never assigned (possible only on corrupted
	// partitions) fall back to a map so a huge rogue code can't balloon the
	// dense table; they still group correctly, matching the reference path.
	var overflow map[uint32]int32
	for i, r := range sel {
		code := codes[r]
		var id int32
		if int(code) < len(lut) {
			id = lut[code]
			if id < 0 {
				id = int32(len(order))
				lut[code] = id
				order = append(order, code)
			}
		} else {
			var ok bool
			id, ok = overflow[code]
			if !ok {
				if overflow == nil {
					overflow = make(map[uint32]int32)
				}
				id = int32(len(order))
				overflow[code] = id
				order = append(order, code)
			}
		}
		gidx[i] = id
	}
	flat := make([]float64, len(order)*c.comps)
	c.accumulate(p, sel, gidx, flat, sc)
	for g, code := range order {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], code)
		ans.Groups[string(b[:])] = flat[g*c.comps : (g+1)*c.comps : (g+1)*c.comps]
		if int(code) < len(lut) {
			lut[code] = -1 // restore the all-(-1) invariant
		}
	}
	sc.codes = order[:0]
}

// evalGenericGroups handles arbitrary GROUP BY lists: keys are encoded per
// selected row (only for rows that survived the predicate) and resolved to
// dense slots through a reusable map, then accumulation runs column-at-a-time
// like every other path.
func (c *Compiled) evalGenericGroups(p *table.Partition, sel []int32, sc *scratch, ans *Answer) {
	lut := sc.groupLut()
	gidx := sc.gidxBuf(len(sel))
	keys := sc.keys[:0]
	kb := sc.keyBuf
	for i, r := range sel {
		kb = c.appendKey(kb[:0], p, int(r))
		id, ok := lut[string(kb)]
		if !ok {
			id = int32(len(keys))
			key := string(kb)
			lut[key] = id
			keys = append(keys, key)
		}
		gidx[i] = id
	}
	sc.keyBuf = kb
	flat := make([]float64, len(keys)*c.comps)
	c.accumulate(p, sel, gidx, flat, sc)
	for g, key := range keys {
		ans.Groups[key] = flat[g*c.comps : (g+1)*c.comps : (g+1)*c.comps]
	}
	sc.keys = keys[:0]
}

// accumulate adds each selected row's contribution to its group's
// accumulators. accs is a flat [group][comps] buffer; gidx maps selected
// rows to group slots (nil means one group at slot 0). Work is slot-major —
// one pass over the selection per aggregate component — but row-ordered
// within each slot, and distinct slots write distinct accumulator indices,
// so every accumulator sees the same additions in the same order as the
// row-at-a-time reference: results are bit-identical.
func (c *Compiled) accumulate(p *table.Partition, sel, gidx []int32, accs []float64, sc *scratch) {
	stride := c.comps
	for _, s := range c.slots {
		rows, idx := sel, gidx
		if s.filterKern != nil {
			rows, idx = filterSelection(s.filterKern, p, sel, gidx, sc)
			if len(rows) == 0 {
				continue
			}
		}
		at := s.at
		switch s.kind {
		case Count:
			if idx == nil {
				// One integral add equals len(rows) repeated ++s exactly
				// (counts stay far below 2^53).
				accs[at] += float64(len(rows))
			} else {
				for _, g := range idx {
					accs[int(g)*stride+at]++
				}
			}
		case Sum:
			buf := sc.exprBuf(len(rows))
			s.expr.evalInto(p, rows, buf)
			if idx == nil {
				for _, v := range buf {
					accs[at] += v
				}
			} else {
				for i, v := range buf {
					accs[int(idx[i])*stride+at] += v
				}
			}
		case Avg:
			buf := sc.exprBuf(len(rows))
			s.expr.evalInto(p, rows, buf)
			if idx == nil {
				for _, v := range buf {
					accs[at] += v
				}
				accs[at+1] += float64(len(rows))
			} else {
				for i, v := range buf {
					base := int(idx[i]) * stride
					accs[base+at] += v
					accs[base+at+1]++
				}
			}
		}
	}
}

// filterSelection narrows (sel, gidx) to the rows passing a FILTER
// aggregate's predicate, keeping the two vectors aligned. The kernel runs on
// a scratch copy so the main selection survives for the remaining slots.
func filterSelection(k kernel, p *table.Partition, sel, gidx []int32, sc *scratch) ([]int32, []int32) {
	tmp := sc.getSel(len(sel))
	copy(tmp, sel)
	passed := k(p, tmp, sc)
	switch len(passed) {
	case len(sel):
		sc.putSel(tmp)
		return sel, gidx
	case 0:
		sc.putSel(tmp)
		return nil, nil
	}
	// passed is an ascending subset of sel (kernel contract), so a linear
	// merge re-aligns the group slots — no marks buffer needed.
	fsel, fidx := sc.filterBufs(len(passed))
	if gidx == nil {
		copy(fsel, passed)
		sc.putSel(tmp)
		return fsel, nil
	}
	j := 0
	for i, r := range sel {
		if j == len(passed) {
			break
		}
		if r == passed[j] {
			fsel[j] = r
			fidx[j] = gidx[i]
			j++
		}
	}
	sc.putSel(tmp)
	return fsel, fidx
}

// appendKey encodes the group-by values of row r into buf.
func (c *Compiled) appendKey(buf []byte, p *table.Partition, r int) []byte {
	for _, gi := range c.groupIdx {
		if c.schema.Cols[gi].IsNumeric() {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(p.NumCol(gi)[r]))
			buf = append(buf, b[:]...)
		} else {
			var b [4]byte
			binary.LittleEndian.PutUint32(b[:], p.CatCol(gi)[r])
			buf = append(buf, b[:]...)
		}
	}
	return buf
}

// GroupLabel decodes a group key into human-readable column=value parts.
// Keys that don't match the query's group-by encoding (too short, trailing
// bytes, or a dictionary code the table never assigned) yield a diagnostic
// label instead of panicking, since labels are rendered in logs and error
// reports where the key may come from an untrusted or stale source.
func (c *Compiled) GroupLabel(key string) string {
	if len(c.groupIdx) == 0 {
		return "<all>"
	}
	var parts []string
	b := []byte(key)
	for _, gi := range c.groupIdx {
		col := c.schema.Col(gi)
		if col.IsNumeric() {
			if len(b) < 8 {
				return malformedKeyLabel(key, len(c.groupIdx))
			}
			v := math.Float64frombits(binary.LittleEndian.Uint64(b[:8]))
			b = b[8:]
			parts = append(parts, fmt.Sprintf("%s=%g", col.Name, v))
		} else {
			if len(b) < 4 {
				return malformedKeyLabel(key, len(c.groupIdx))
			}
			code := binary.LittleEndian.Uint32(b[:4])
			b = b[4:]
			if int(code) >= c.dict.Len() {
				parts = append(parts, fmt.Sprintf("%s=<bad code %d>", col.Name, code))
				continue
			}
			parts = append(parts, fmt.Sprintf("%s=%s", col.Name, c.dict.Value(code)))
		}
	}
	if len(b) != 0 {
		return malformedKeyLabel(key, len(c.groupIdx))
	}
	return strings.Join(parts, ",")
}

// malformedKeyLabel is the diagnostic label for group keys whose length does
// not match the query's group-by encoding.
func malformedKeyLabel(key string, groupCols int) string {
	return fmt.Sprintf("<malformed key: %d bytes for %d group-by column(s)>", len(key), groupCols)
}

// FinalValues converts an answer's accumulators into the d final aggregate
// values per group (AVG = sum/count; empty AVG groups yield 0).
func (c *Compiled) FinalValues(a *Answer) map[string][]float64 {
	out := make(map[string][]float64, len(a.Groups))
	//lint:mapiter-ok independent per-key map-to-map transform; no accumulation across keys
	for g, acc := range a.Groups {
		vals := make([]float64, len(c.slots))
		for i, s := range c.slots {
			switch s.kind {
			case Sum, Count:
				vals[i] = acc[s.at]
			case Avg:
				if acc[s.at+1] != 0 {
					vals[i] = acc[s.at] / acc[s.at+1]
				}
			}
		}
		out[g] = vals
	}
	return out
}

// GroundTruth evaluates the query exactly over every partition of the table
// (without charging the I/O accountant — it models the offline oracle used
// to score experiments) and also returns the per-partition answers, which
// both training-label generation and error evaluation reuse.
func (c *Compiled) GroundTruth(t *table.Table) (total *Answer, perPart []*Answer) {
	// Partitions are scanned in parallel with one scratch per worker (no
	// per-partition allocation); the fold over per-partition answers stays
	// sequential in partition order so the accumulator sums are
	// bit-identical to a single-threaded scan at any worker count.
	perPart = exec.MapWith(len(t.Parts), c.Exec,
		func() *scratch { return &scratch{} },
		func(sc *scratch, i int) *Answer { return c.evalPartition(t.Parts[i], sc) })
	total = c.NewAnswer()
	for _, pa := range perPart {
		total.Merge(pa)
	}
	return total, perPart
}

// Selectivity returns the exact fraction of the table's rows that satisfy
// the query's predicate. The predicate runs as a selection kernel per
// partition; the passing count is the surviving selection's length.
func (c *Compiled) Selectivity(t *table.Table) float64 {
	// Integer counts merge exactly, so per-worker accumulators suffice; the
	// scratch rides in the accumulator, giving one per block.
	type counts struct {
		pass, rows int
		sc         *scratch
	}
	total := exec.Reduce(len(t.Parts), c.Exec,
		//lint:scratchescape-ok counts is exec.Reduce's per-worker accumulator: each worker builds and exclusively owns one
		func() counts { return counts{sc: &scratch{}} },
		func(acc counts, i int) counts {
			p := t.Parts[i]
			n := p.Rows()
			acc.rows += n
			if n == 0 {
				return acc
			}
			var sel []int32
			switch {
			case c.predSeed != nil:
				sel = c.predSeed(p, n, acc.sc.selBuf(n))
			case c.predKern != nil:
				sel = acc.sc.fullSel(n)
			default:
				acc.pass += n
				return acc
			}
			if c.predKern != nil && len(sel) > 0 {
				sel = c.predKern(p, sel, acc.sc)
			}
			acc.pass += len(sel)
			return acc
		},
		func(a, b counts) counts {
			a.pass += b.pass
			a.rows += b.rows
			return a
		})
	if total.rows == 0 {
		return 0
	}
	return float64(total.pass) / float64(total.rows)
}

// Estimate evaluates the query on a weighted selection of partition ids,
// reading each selected partition from src through its I/O accountant, and
// returns the combined approximate answer. Selected partitions are scanned
// in parallel; the weighted combine runs in selection order, keeping the
// answer bit-identical to a sequential evaluation. With a paged source a
// read can fail (disk error, corrupted block); the error reported matches
// what a sequential loop would have hit first.
func (c *Compiled) Estimate(src table.PartitionSource, sel []WeightedPartition) (*Answer, error) {
	return c.EstimateCtx(context.Background(), src, sel)
}

// EstimateCtx is Estimate under a context: the scan pool stops claiming
// partitions once ctx is done and returns ctx.Err(), so a request deadline
// bounds scan work at partition granularity. On the nil-error path the
// answer is bit-identical to Estimate.
func (c *Compiled) EstimateCtx(ctx context.Context, src table.PartitionSource, sel []WeightedPartition) (*Answer, error) {
	parts, err := exec.MapErrWithCtx(ctx, len(sel), c.Exec,
		func() *scratch { return &scratch{} },
		func(sc *scratch, i int) (*Answer, error) {
			p, err := src.Read(sel[i].Part)
			if err != nil {
				return nil, err
			}
			return c.evalPartition(p, sc), nil
		})
	if err != nil {
		return nil, err
	}
	ans := c.NewAnswer()
	for i, pa := range parts {
		ans.AddWeighted(pa, sel[i].Weight)
	}
	return ans, nil
}

// WeightedPartition is one (partition, weight) choice in a sample (§2.4).
type WeightedPartition struct {
	Part   int
	Weight float64
}
