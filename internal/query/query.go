package query

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"

	"ps3/internal/exec"
	"ps3/internal/table"
)

// Query is a single-table aggregation query within PS3's scope (§2.2):
// SELECT <GroupBy...>, <Aggs...> FROM t WHERE <Pred> GROUP BY <GroupBy...>.
type Query struct {
	Aggs    []Aggregate
	Pred    Pred
	GroupBy []string
}

// String renders the query in SQL-ish form for logs and docs.
func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	for i, g := range q.GroupBy {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(g)
	}
	for i, a := range q.Aggs {
		if i > 0 || len(q.GroupBy) > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(a.String())
	}
	sb.WriteString(" FROM t")
	if q.Pred != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(q.Pred.String())
	}
	if len(q.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		sb.WriteString(strings.Join(q.GroupBy, ", "))
	}
	return sb.String()
}

// Columns returns all distinct columns the query references (aggregates,
// filters, predicate, group by) — the set used for query-dependent feature
// masking.
func (q *Query) Columns() []string {
	seen := map[string]bool{}
	var out []string
	add := func(name string) {
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	for _, a := range q.Aggs {
		for _, c := range a.Expr.Columns() {
			add(c)
		}
		for _, c := range Columns(a.Filter) {
			add(c)
		}
	}
	for _, c := range Columns(q.Pred) {
		add(c)
	}
	for _, g := range q.GroupBy {
		add(g)
	}
	return out
}

// aggSlot maps an aggregate to its accumulator slots.
type aggSlot struct {
	kind   AggKind
	expr   func(p *table.Partition, r int) float64
	filter rowFn
	// first accumulator index; AVG uses two consecutive slots (sum, count).
	at int
}

// Compiled is a query bound to a schema and dictionary, ready to evaluate on
// partitions.
type Compiled struct {
	Q        *Query
	schema   *table.Schema
	dict     *table.Dict
	pred     rowFn
	groupIdx []int
	slots    []aggSlot
	comps    int

	// Exec configures the parallel scans (GroundTruth, Estimate,
	// Selectivity). The zero value uses GOMAXPROCS workers; Parallelism 1
	// forces a sequential scan. Results are bit-identical at every worker
	// count: partitions are evaluated in parallel but always merged in
	// partition order.
	Exec exec.Options
}

// Compile binds q against the table's schema and dictionary, validating all
// column references.
func Compile(q *Query, t *table.Table) (*Compiled, error) {
	c := &Compiled{Q: q, schema: t.Schema, dict: t.Dict}
	var err error
	c.pred, err = compilePred(q.Pred, t.Schema, t.Dict)
	if err != nil {
		return nil, err
	}
	for _, g := range q.GroupBy {
		gi := t.Schema.ColIndex(g)
		if gi < 0 {
			return nil, fmt.Errorf("query: unknown group-by column %q", g)
		}
		c.groupIdx = append(c.groupIdx, gi)
	}
	if len(q.Aggs) == 0 {
		return nil, fmt.Errorf("query: at least one aggregate is required")
	}
	at := 0
	for _, a := range q.Aggs {
		slot := aggSlot{kind: a.Kind, at: at}
		if a.Kind != Count {
			fn, err := a.Expr.compile(t.Schema)
			if err != nil {
				return nil, err
			}
			slot.expr = fn
		}
		if a.Filter != nil {
			fn, err := compilePred(a.Filter, t.Schema, t.Dict)
			if err != nil {
				return nil, err
			}
			slot.filter = fn
		}
		c.slots = append(c.slots, slot)
		at += a.components()
	}
	c.comps = at
	return c, nil
}

// NumAggs returns d, the number of aggregates in the answer.
func (c *Compiled) NumAggs() int { return len(c.Q.Aggs) }

// Answer holds per-group accumulator vectors. The accumulators are linear
// (sums and counts), so answers from different partitions combine by
// weighted addition (§2.4).
type Answer struct {
	comps  int
	Groups map[string][]float64
}

// NewAnswer returns an empty answer for the compiled query.
func (c *Compiled) NewAnswer() *Answer {
	return &Answer{comps: c.comps, Groups: make(map[string][]float64)}
}

// NumGroups returns the number of groups in the answer.
func (a *Answer) NumGroups() int { return len(a.Groups) }

// AddWeighted accumulates w * other into a.
func (a *Answer) AddWeighted(other *Answer, w float64) {
	for g, vals := range other.Groups {
		acc, ok := a.Groups[g]
		if !ok {
			acc = make([]float64, a.comps)
			a.Groups[g] = acc
		}
		for i, v := range vals {
			acc[i] += w * v
		}
	}
}

// Merge accumulates other into a with weight 1 — the exact-scan combine
// step (1*v == v in IEEE-754, so this is bit-identical to a plain sum).
func (a *Answer) Merge(other *Answer) { a.AddWeighted(other, 1) }

// EvalPartition computes the query's accumulators on one partition.
func (c *Compiled) EvalPartition(p *table.Partition) *Answer {
	ans := c.NewAnswer()
	var keyBuf []byte
	rows := p.Rows()
	for r := 0; r < rows; r++ {
		if !c.pred(p, r) {
			continue
		}
		keyBuf = c.appendKey(keyBuf[:0], p, r)
		acc, ok := ans.Groups[string(keyBuf)]
		if !ok {
			acc = make([]float64, c.comps)
			ans.Groups[string(keyBuf)] = acc
		}
		for _, s := range c.slots {
			if s.filter != nil && !s.filter(p, r) {
				continue
			}
			switch s.kind {
			case Sum:
				acc[s.at] += s.expr(p, r)
			case Count:
				acc[s.at]++
			case Avg:
				acc[s.at] += s.expr(p, r)
				acc[s.at+1]++
			}
		}
	}
	return ans
}

// appendKey encodes the group-by values of row r into buf.
func (c *Compiled) appendKey(buf []byte, p *table.Partition, r int) []byte {
	for _, gi := range c.groupIdx {
		if p.Num[gi] != nil {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(p.Num[gi][r]))
			buf = append(buf, b[:]...)
		} else {
			var b [4]byte
			binary.LittleEndian.PutUint32(b[:], p.Cat[gi][r])
			buf = append(buf, b[:]...)
		}
	}
	return buf
}

// GroupLabel decodes a group key into human-readable column=value parts.
func (c *Compiled) GroupLabel(key string) string {
	if len(c.groupIdx) == 0 {
		return "<all>"
	}
	var parts []string
	b := []byte(key)
	for _, gi := range c.groupIdx {
		col := c.schema.Col(gi)
		if col.IsNumeric() {
			v := math.Float64frombits(binary.LittleEndian.Uint64(b[:8]))
			b = b[8:]
			parts = append(parts, fmt.Sprintf("%s=%g", col.Name, v))
		} else {
			code := binary.LittleEndian.Uint32(b[:4])
			b = b[4:]
			parts = append(parts, fmt.Sprintf("%s=%s", col.Name, c.dict.Value(code)))
		}
	}
	return strings.Join(parts, ",")
}

// FinalValues converts an answer's accumulators into the d final aggregate
// values per group (AVG = sum/count; empty AVG groups yield 0).
func (c *Compiled) FinalValues(a *Answer) map[string][]float64 {
	out := make(map[string][]float64, len(a.Groups))
	for g, acc := range a.Groups {
		vals := make([]float64, len(c.slots))
		for i, s := range c.slots {
			switch s.kind {
			case Sum, Count:
				vals[i] = acc[s.at]
			case Avg:
				if acc[s.at+1] != 0 {
					vals[i] = acc[s.at] / acc[s.at+1]
				}
			}
		}
		out[g] = vals
	}
	return out
}

// GroundTruth evaluates the query exactly over every partition of the table
// (without charging the I/O accountant — it models the offline oracle used
// to score experiments) and also returns the per-partition answers, which
// both training-label generation and error evaluation reuse.
func (c *Compiled) GroundTruth(t *table.Table) (total *Answer, perPart []*Answer) {
	// Partitions are scanned in parallel; the fold over per-partition
	// answers stays sequential in partition order so the accumulator sums
	// are bit-identical to a single-threaded scan at any worker count.
	perPart = exec.Map(len(t.Parts), c.Exec, func(i int) *Answer {
		return c.EvalPartition(t.Parts[i])
	})
	total = c.NewAnswer()
	for _, pa := range perPart {
		total.Merge(pa)
	}
	return total, perPart
}

// Selectivity returns the exact fraction of the table's rows that satisfy
// the query's predicate.
func (c *Compiled) Selectivity(t *table.Table) float64 {
	// Integer counts merge exactly, so per-worker accumulators suffice.
	type counts struct{ pass, rows int }
	total := exec.Reduce(len(t.Parts), c.Exec,
		func() counts { return counts{} },
		func(acc counts, i int) counts {
			p := t.Parts[i]
			n := p.Rows()
			acc.rows += n
			for r := 0; r < n; r++ {
				if c.pred(p, r) {
					acc.pass++
				}
			}
			return acc
		},
		func(a, b counts) counts {
			a.pass += b.pass
			a.rows += b.rows
			return a
		})
	if total.rows == 0 {
		return 0
	}
	return float64(total.pass) / float64(total.rows)
}

// Estimate evaluates the query on a weighted selection of partition ids,
// reading each selected partition through the table's I/O accountant, and
// returns the combined approximate answer. Selected partitions are scanned
// in parallel; the weighted combine runs in selection order, keeping the
// answer bit-identical to a sequential evaluation.
func (c *Compiled) Estimate(t *table.Table, sel []WeightedPartition) *Answer {
	parts := exec.Map(len(sel), c.Exec, func(i int) *Answer {
		return c.EvalPartition(t.Read(sel[i].Part))
	})
	ans := c.NewAnswer()
	for i, pa := range parts {
		ans.AddWeighted(pa, sel[i].Weight)
	}
	return ans
}

// WeightedPartition is one (partition, weight) choice in a sample (§2.4).
type WeightedPartition struct {
	Part   int
	Weight float64
}
