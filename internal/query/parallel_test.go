package query

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"ps3/internal/exec"
	"ps3/internal/table"
)

// noisyFixture builds a table of irregular floating-point values: if the
// parallel scan merged answers in any order other than the sequential one,
// non-associative float addition would change low-order bits and the
// byte-identity assertions below would catch it.
func noisyFixture(t *testing.T, rows, rowsPerPart int, seed int64) *table.Table {
	t.Helper()
	s := table.MustSchema(
		table.Column{Name: "x", Kind: table.Numeric},
		table.Column{Name: "y", Kind: table.Numeric},
		table.Column{Name: "cat", Kind: table.Categorical},
	)
	b, err := table.NewBuilder(s, rowsPerPart)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	cats := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < rows; i++ {
		num := []float64{
			rng.NormFloat64() * math.Exp(rng.NormFloat64()*8),
			rng.Float64() * 1e6,
			0,
		}
		cat := []string{"", "", cats[rng.Intn(len(cats))]}
		if err := b.Append(num, cat); err != nil {
			t.Fatal(err)
		}
	}
	return b.Finish()
}

// equivalenceQueries covers the aggregate kinds, grouping, filters, and
// predicate shapes whose accumulators must merge identically.
func equivalenceQueries() []*Query {
	return []*Query{
		{Aggs: []Aggregate{{Kind: Sum, Expr: Col("x")}}},
		{Aggs: []Aggregate{{Kind: Avg, Expr: Col("x")}, {Kind: Count}}, GroupBy: []string{"cat"}},
		{
			Aggs: []Aggregate{
				{Kind: Sum, Expr: Col("x").Add(Col("y"))},
				{Kind: Count, Filter: &Clause{Col: "cat", Op: OpIn, Strs: []string{"a", "c"}}},
			},
			Pred:    &Clause{Col: "y", Op: OpGt, Num: 2e5},
			GroupBy: []string{"cat"},
		},
		{
			Aggs: []Aggregate{{Kind: Sum, Expr: Col("y")}},
			Pred: NewOr(&Clause{Col: "x", Op: OpLt, Num: 0}, &Clause{Col: "cat", Op: OpEq, Strs: []string{"b"}}),
		},
	}
}

// parallelismLevels are the worker counts every scan must agree across.
func parallelismLevels() []int {
	return []int{1, 2, 3, runtime.GOMAXPROCS(0)}
}

// requireIdenticalAnswers asserts got and want are byte-identical: same
// groups, same accumulator bits.
func requireIdenticalAnswers(t *testing.T, label string, want, got *Answer) {
	t.Helper()
	if len(got.Groups) != len(want.Groups) {
		t.Fatalf("%s: %d groups, want %d", label, len(got.Groups), len(want.Groups))
	}
	for g, wv := range want.Groups {
		gv, ok := got.Groups[g]
		if !ok {
			t.Fatalf("%s: missing group %x", label, g)
		}
		for j := range wv {
			if math.Float64bits(gv[j]) != math.Float64bits(wv[j]) {
				t.Fatalf("%s: group %x comp %d: %v (bits %x) != %v (bits %x)",
					label, g, j, gv[j], math.Float64bits(gv[j]), wv[j], math.Float64bits(wv[j]))
			}
		}
	}
}

func TestGroundTruthParallelEquivalence(t *testing.T) {
	tbl := noisyFixture(t, 3000, 100, 11)
	for qi, q := range equivalenceQueries() {
		c := mustCompile(t, q, tbl)
		c.Exec = exec.Options{Parallelism: 1}
		wantTotal, wantPer := c.GroundTruth(tbl)
		for _, par := range parallelismLevels() {
			c.Exec = exec.Options{Parallelism: par}
			gotTotal, gotPer := c.GroundTruth(tbl)
			label := q.String()
			requireIdenticalAnswers(t, label, wantTotal, gotTotal)
			if len(gotPer) != len(wantPer) {
				t.Fatalf("q%d par=%d: %d per-part answers, want %d", qi, par, len(gotPer), len(wantPer))
			}
			for i := range wantPer {
				requireIdenticalAnswers(t, label, wantPer[i], gotPer[i])
			}
		}
	}
}

func TestEstimateParallelEquivalence(t *testing.T) {
	tbl := noisyFixture(t, 3000, 100, 12)
	rng := rand.New(rand.NewSource(5))
	var sel []WeightedPartition
	for i := 0; i < tbl.NumParts(); i += 2 {
		sel = append(sel, WeightedPartition{Part: i, Weight: 1 + rng.Float64()*3})
	}
	for _, q := range equivalenceQueries() {
		c := mustCompile(t, q, tbl)
		c.Exec = exec.Options{Parallelism: 1}
		want, err := c.Estimate(tbl, sel)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range parallelismLevels() {
			c.Exec = exec.Options{Parallelism: par}
			tbl.ResetIO()
			got, err := c.Estimate(tbl, sel)
			if err != nil {
				t.Fatal(err)
			}
			requireIdenticalAnswers(t, q.String(), want, got)
			if parts, _ := tbl.IOStats(); parts != int64(len(sel)) {
				t.Fatalf("par=%d: charged %d partition reads, want %d", par, parts, len(sel))
			}
		}
	}
}

func TestSelectivityParallelEquivalence(t *testing.T) {
	tbl := noisyFixture(t, 3000, 100, 13)
	for _, q := range equivalenceQueries() {
		c := mustCompile(t, q, tbl)
		c.Exec = exec.Options{Parallelism: 1}
		want := c.Selectivity(tbl)
		for _, par := range parallelismLevels() {
			c.Exec = exec.Options{Parallelism: par}
			if got := c.Selectivity(tbl); got != want {
				t.Fatalf("q=%s par=%d: Selectivity = %v, want %v", q, par, got, want)
			}
		}
	}
}

// Generator-sampled queries widen the shapes the equivalence property is
// checked on beyond the hand-written cases.
func TestGeneratedQueriesParallelEquivalence(t *testing.T) {
	tbl := noisyFixture(t, 2000, 80, 14)
	wl := Workload{
		GroupableCols: []string{"cat"},
		PredicateCols: []string{"x", "y", "cat"},
		AggCols:       []string{"x", "y"},
	}
	gen, err := NewGenerator(wl, tbl, 99)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range gen.SampleN(25) {
		c := mustCompile(t, q, tbl)
		c.Exec = exec.Options{Parallelism: 1}
		want, _ := c.GroundTruth(tbl)
		for _, par := range parallelismLevels() {
			c.Exec = exec.Options{Parallelism: par}
			got, _ := c.GroundTruth(tbl)
			requireIdenticalAnswers(t, q.String(), want, got)
		}
	}
}

func TestAnswerMergeMatchesAddWeighted(t *testing.T) {
	tbl := noisyFixture(t, 1000, 50, 15)
	q := &Query{Aggs: []Aggregate{{Kind: Sum, Expr: Col("x")}, {Kind: Avg, Expr: Col("y")}}, GroupBy: []string{"cat"}}
	c := mustCompile(t, q, tbl)
	_, perPart := c.GroundTruth(tbl)
	viaMerge, viaAdd := c.NewAnswer(), c.NewAnswer()
	for _, pa := range perPart {
		viaMerge.Merge(pa)
		viaAdd.AddWeighted(pa, 1)
	}
	requireIdenticalAnswers(t, "merge-vs-addweighted", viaAdd, viaMerge)
}
