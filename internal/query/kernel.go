package query

import (
	"fmt"

	"ps3/internal/table"
)

// This file is the vectorized half of the execution engine. Predicate trees
// compile into selection-vector kernels: a kernel receives the candidate row
// indices of one partition and compacts them down to the rows that pass,
// touching each column as a tight loop over its typed slice. Dispatch cost is
// one indirect call per clause per partition instead of one (or more) per
// row, which is what makes every scan in the repo run at columnar speed.
//
// Kernel contract:
//
//   - sel holds row indices in strictly ascending order.
//   - A kernel compacts passing rows into sel in place (reads at index i
//     happen before any write at i, and writes only move entries left), so
//     the input selection is consumed.
//   - The returned slice is a prefix of sel, still in ascending order —
//     selection order is row order, which is what keeps downstream float
//     accumulation bit-identical to the row-at-a-time reference evaluator.
//   - Kernels are immutable and shareable across goroutines; all mutable
//     state lives in the per-evaluation scratch.
type kernel func(p *table.Partition, sel []int32, sc *scratch) []int32

// scratch holds the reusable buffers one partition evaluation needs, so that
// steady-state scans allocate only the Answer they return. One scratch is
// owned by one goroutine at a time: parallel scans thread a scratch per
// worker (exec.MapWith); the public single-partition entry points draw from
// a sync.Pool on Compiled.
type scratch struct {
	// sel is the primary selection vector, sized to the partition's rows.
	sel []int32
	// selFree recycles temporary selection copies (OR/NOT/FILTER operands).
	// Depth is bounded by predicate nesting, so the freelist stays tiny.
	selFree [][]int32
	// markFree recycles row-mark buffers. Invariant: every buffer in the
	// freelist is all-false; users clear the marks they set before putMarks.
	markFree [][]bool
	// expr is the vectorized LinearExpr accumulation buffer.
	expr []float64
	// gidx maps each selected row to its dense group slot.
	gidx []int32
	// fsel/fidx are the compacted (rows, group-slots) pair of a FILTER
	// aggregate's sub-selection.
	fsel []int32
	fidx []int32
	// keyBuf is the group-by key encoding buffer.
	keyBuf []byte
	// lut maps group keys to dense slots (generic GROUP BY path); cleared and
	// reused across partitions.
	lut map[string]int32
	// keys lists group keys in first-seen order (generic path).
	keys []string
	// codeLut maps dictionary codes to dense slots (single-categorical
	// GROUP BY fast path). Invariant: all entries are -1 between evaluations.
	codeLut []int32
	// codes lists group dictionary codes in first-seen order (fast path).
	codes []uint32
}

// selBuf returns the primary selection buffer, uninitialized — the target a
// seed kernel fills.
func (sc *scratch) selBuf(n int) []int32 {
	if cap(sc.sel) < n {
		sc.sel = make([]int32, n)
	}
	return sc.sel[:n]
}

// fullSel returns the identity selection [0, n).
func (sc *scratch) fullSel(n int) []int32 {
	sel := sc.selBuf(n)
	for i := range sel {
		sel[i] = int32(i)
	}
	return sel
}

// getSel returns a temporary selection buffer of length n; pair with putSel.
func (sc *scratch) getSel(n int) []int32 {
	if k := len(sc.selFree); k > 0 {
		b := sc.selFree[k-1]
		sc.selFree = sc.selFree[:k-1]
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]int32, n)
}

func (sc *scratch) putSel(b []int32) {
	sc.selFree = append(sc.selFree, b[:cap(b)])
}

// getMarks returns an all-false row-mark buffer covering n rows. Callers
// must clear every mark they set before putMarks.
func (sc *scratch) getMarks(n int) []bool {
	if k := len(sc.markFree); k > 0 {
		m := sc.markFree[k-1]
		sc.markFree = sc.markFree[:k-1]
		if cap(m) >= n {
			return m[:n]
		}
	}
	return make([]bool, n)
}

func (sc *scratch) putMarks(m []bool) {
	sc.markFree = append(sc.markFree, m[:cap(m)])
}

// exprBuf returns the LinearExpr accumulation buffer, uninitialized.
func (sc *scratch) exprBuf(n int) []float64 {
	if cap(sc.expr) < n {
		sc.expr = make([]float64, n)
	}
	return sc.expr[:n]
}

// gidxBuf returns the per-selected-row group-slot buffer, uninitialized.
func (sc *scratch) gidxBuf(n int) []int32 {
	if cap(sc.gidx) < n {
		sc.gidx = make([]int32, n)
	}
	return sc.gidx[:n]
}

// filterBufs returns the (rows, group-slots) buffers a FILTER sub-selection
// compacts into. One pair suffices: slots are processed sequentially and
// each sub-selection is consumed before the next filter runs.
func (sc *scratch) filterBufs(n int) (fsel, fidx []int32) {
	if cap(sc.fsel) < n {
		sc.fsel = make([]int32, n)
		sc.fidx = make([]int32, n)
	}
	return sc.fsel[:n], sc.fidx[:n]
}

// groupLut returns the cleared key→slot map for the generic GROUP BY path.
func (sc *scratch) groupLut() map[string]int32 {
	if sc.lut == nil {
		sc.lut = make(map[string]int32)
		return sc.lut
	}
	clear(sc.lut)
	return sc.lut
}

// codeLutGrown returns the code→slot table with len >= n, filling new
// entries with -1. Existing entries keep the all-(-1) invariant.
func (sc *scratch) codeLutGrown(n int) []int32 {
	for len(sc.codeLut) < n {
		sc.codeLut = append(sc.codeLut, -1)
	}
	return sc.codeLut
}

// seedKernel is the "fill" form of a clause kernel: it scans every row of
// the partition directly, writing passing row indices into out, so that
// clause-rooted predicates never materialize the identity selection first.
type seedKernel func(p *table.Partition, rows int, out []int32) []int32

// compilePredSeed splits a predicate into an optional fill step and the
// remaining selection kernel. When the tree is a clause, or a conjunction
// whose first child is a clause, that clause seeds the selection vector and
// the rest intersect it; otherwise seed is nil and callers start from the
// identity selection. (seed, rest) == (nil, nil) means no predicate.
func compilePredSeed(pred Pred, s *table.Schema, d *table.Dict) (seedKernel, kernel, error) {
	switch n := pred.(type) {
	case *Clause:
		seed, err := compileClauseSeed(n, s, d)
		return seed, nil, err
	case *And:
		if len(n.Children) > 0 {
			first, ok := n.Children[0].(*Clause)
			if !ok {
				break
			}
			seed, err := compileClauseSeed(first, s, d)
			if err != nil {
				return nil, nil, err
			}
			if len(n.Children) == 1 {
				return seed, nil, nil
			}
			rest, err := compileKernel(&And{Children: n.Children[1:]}, s, d)
			if err != nil {
				return nil, nil, err
			}
			return seed, rest, nil
		}
	}
	k, err := compileKernel(pred, s, d)
	return nil, k, err
}

// catCodeSet validates a categorical clause's operator and resolves its
// value strings to dictionary codes. Unseen values resolve to nothing, so
// the returned set may be smaller than the value list (or empty).
func catCodeSet(c *Clause, d *table.Dict) (map[uint32]bool, error) {
	switch c.Op {
	case OpEq, OpNe, OpIn:
	default:
		return nil, fmt.Errorf("query: operator %s not supported on categorical column %q", c.Op, c.Col)
	}
	codes := make(map[uint32]bool, len(c.Strs))
	for _, v := range c.Strs {
		if code, ok := d.Lookup(v); ok {
			codes[code] = true
		}
	}
	return codes, nil
}

// singleCode returns the sole element of a one-entry code set.
func singleCode(codes map[uint32]bool) uint32 {
	//lint:mapiter-ok the set has exactly one element (callers check len==1), so order cannot exist
	for code := range codes {
		return code
	}
	panic("query: singleCode on empty set")
}

// codeTable compiles a multi-value code set to a dense code-indexed bool
// table: dictionary codes are dense, so membership costs one bounds check +
// one load per row instead of a map probe. Codes beyond the table (possible
// only on corrupted partitions) are treated as not-in-set, matching the map
// semantics of the reference path.
func codeTable(codes map[uint32]bool, d *table.Dict) []bool {
	lut := make([]bool, d.Len())
	//lint:mapiter-ok independent per-key writes into the dense table; no accumulation across keys
	for code := range codes {
		lut[code] = true
	}
	return lut
}

// compileClauseSeed lowers one clause to its fill form, scanning [0, rows)
// directly instead of filtering a materialized identity selection. The
// per-operator loop bodies deliberately mirror compileClauseKernel's —
// fusing the two ladders behind an abstraction would reintroduce a per-row
// indirect call, which is exactly what kernels exist to avoid. Keep the two
// switch ladders in sync when adding operators; the randomized equivalence
// corpus exercises both (seeds run for clause-rooted and first-of-AND
// predicates, narrowing kernels for everything else).
func compileClauseSeedRaw(c *Clause, s *table.Schema, d *table.Dict) (seedKernel, error) {
	ci := s.ColIndex(c.Col)
	if ci < 0 {
		return nil, fmt.Errorf("query: unknown column %q in predicate", c.Col)
	}
	if s.Col(ci).IsNumeric() {
		v := c.Num
		switch c.Op {
		case OpEq:
			return func(p *table.Partition, rows int, out []int32) []int32 {
				col := p.NumCol(ci)
				n := 0
				for r := 0; r < rows; r++ {
					if col[r] == v {
						out[n] = int32(r)
						n++
					}
				}
				return out[:n]
			}, nil
		case OpNe:
			return func(p *table.Partition, rows int, out []int32) []int32 {
				col := p.NumCol(ci)
				n := 0
				for r := 0; r < rows; r++ {
					if col[r] != v {
						out[n] = int32(r)
						n++
					}
				}
				return out[:n]
			}, nil
		case OpLt:
			return func(p *table.Partition, rows int, out []int32) []int32 {
				col := p.NumCol(ci)
				n := 0
				for r := 0; r < rows; r++ {
					if col[r] < v {
						out[n] = int32(r)
						n++
					}
				}
				return out[:n]
			}, nil
		case OpLe:
			return func(p *table.Partition, rows int, out []int32) []int32 {
				col := p.NumCol(ci)
				n := 0
				for r := 0; r < rows; r++ {
					if col[r] <= v {
						out[n] = int32(r)
						n++
					}
				}
				return out[:n]
			}, nil
		case OpGt:
			return func(p *table.Partition, rows int, out []int32) []int32 {
				col := p.NumCol(ci)
				n := 0
				for r := 0; r < rows; r++ {
					if col[r] > v {
						out[n] = int32(r)
						n++
					}
				}
				return out[:n]
			}, nil
		case OpGe:
			return func(p *table.Partition, rows int, out []int32) []int32 {
				col := p.NumCol(ci)
				n := 0
				for r := 0; r < rows; r++ {
					if col[r] >= v {
						out[n] = int32(r)
						n++
					}
				}
				return out[:n]
			}, nil
		default:
			return nil, fmt.Errorf("query: operator %s not supported on numeric column %q", c.Op, c.Col)
		}
	}
	codes, err := catCodeSet(c, d)
	if err != nil {
		return nil, err
	}
	neg := c.Op == OpNe
	switch len(codes) {
	case 0:
		if neg {
			return func(_ *table.Partition, rows int, out []int32) []int32 {
				out = out[:rows]
				for r := range out {
					out[r] = int32(r)
				}
				return out
			}, nil
		}
		return func(_ *table.Partition, _ int, out []int32) []int32 {
			return out[:0]
		}, nil
	case 1:
		want := singleCode(codes)
		if neg {
			return func(p *table.Partition, rows int, out []int32) []int32 {
				col := p.CatCol(ci)
				n := 0
				for r := 0; r < rows; r++ {
					if col[r] != want {
						out[n] = int32(r)
						n++
					}
				}
				return out[:n]
			}, nil
		}
		return func(p *table.Partition, rows int, out []int32) []int32 {
			col := p.CatCol(ci)
			n := 0
			for r := 0; r < rows; r++ {
				if col[r] == want {
					out[n] = int32(r)
					n++
				}
			}
			return out[:n]
		}, nil
	default:
		lut := codeTable(codes, d)
		if neg {
			return func(p *table.Partition, rows int, out []int32) []int32 {
				col := p.CatCol(ci)
				n := 0
				for r := 0; r < rows; r++ {
					if c := col[r]; int(c) >= len(lut) || !lut[c] {
						out[n] = int32(r)
						n++
					}
				}
				return out[:n]
			}, nil
		}
		return func(p *table.Partition, rows int, out []int32) []int32 {
			col := p.CatCol(ci)
			n := 0
			for r := 0; r < rows; r++ {
				if c := col[r]; int(c) < len(lut) && lut[c] {
					out[n] = int32(r)
					n++
				}
			}
			return out[:n]
		}, nil
	}
}

// compileKernel lowers a predicate tree to a selection kernel. A nil
// predicate compiles to a nil kernel, meaning "all rows pass" — callers skip
// the call instead of copying the identity selection through it.
func compileKernel(pred Pred, s *table.Schema, d *table.Dict) (kernel, error) {
	if pred == nil {
		return nil, nil
	}
	switch n := pred.(type) {
	case *And:
		kerns := make([]kernel, len(n.Children))
		for i, child := range n.Children {
			k, err := compileKernel(child, s, d)
			if err != nil {
				return nil, err
			}
			kerns[i] = k
		}
		return func(p *table.Partition, sel []int32, sc *scratch) []int32 {
			for _, k := range kerns {
				if len(sel) == 0 {
					break
				}
				sel = k(p, sel, sc)
			}
			return sel
		}, nil
	case *Or:
		kerns := make([]kernel, len(n.Children))
		for i, child := range n.Children {
			k, err := compileKernel(child, s, d)
			if err != nil {
				return nil, err
			}
			kerns[i] = k
		}
		return func(p *table.Partition, sel []int32, sc *scratch) []int32 {
			if len(sel) == 0 {
				return sel
			}
			// Run each child on a copy of the incoming selection and union
			// the survivors via row marks, then compact the original
			// selection in order (merge order = row order = bit-identity).
			marks := sc.getMarks(p.Rows())
			tmp := sc.getSel(len(sel))
			for _, k := range kerns {
				t := tmp[:len(sel)]
				copy(t, sel)
				for _, r := range k(p, t, sc) {
					marks[r] = true
				}
			}
			sc.putSel(tmp)
			n := 0
			for _, r := range sel {
				if marks[r] {
					marks[r] = false
					sel[n] = r
					n++
				}
			}
			sc.putMarks(marks)
			return sel[:n]
		}, nil
	case *Not:
		k, err := compileKernel(n.Child, s, d)
		if err != nil {
			return nil, err
		}
		return func(p *table.Partition, sel []int32, sc *scratch) []int32 {
			if len(sel) == 0 {
				return sel
			}
			marks := sc.getMarks(p.Rows())
			tmp := sc.getSel(len(sel))
			t := tmp[:len(sel)]
			copy(t, sel)
			for _, r := range k(p, t, sc) {
				marks[r] = true
			}
			sc.putSel(tmp)
			n := 0
			for _, r := range sel {
				if marks[r] {
					marks[r] = false
				} else {
					sel[n] = r
					n++
				}
			}
			sc.putMarks(marks)
			return sel[:n]
		}, nil
	case *Clause:
		return compileClauseKernel(n, s, d)
	default:
		return nil, fmt.Errorf("query: unknown predicate node %T", pred)
	}
}

// compileClauseKernelRaw lowers one comparison clause to a column kernel
// over decoded slices — the frozen reference loops the encoded dispatch in
// enckernel.go falls back to.
func compileClauseKernelRaw(c *Clause, s *table.Schema, d *table.Dict) (kernel, error) {
	ci := s.ColIndex(c.Col)
	if ci < 0 {
		return nil, fmt.Errorf("query: unknown column %q in predicate", c.Col)
	}
	if s.Col(ci).IsNumeric() {
		v := c.Num
		switch c.Op {
		case OpEq:
			return func(p *table.Partition, sel []int32, _ *scratch) []int32 {
				col := p.NumCol(ci)
				n := 0
				for _, r := range sel {
					if col[r] == v {
						sel[n] = r
						n++
					}
				}
				return sel[:n]
			}, nil
		case OpNe:
			return func(p *table.Partition, sel []int32, _ *scratch) []int32 {
				col := p.NumCol(ci)
				n := 0
				for _, r := range sel {
					if col[r] != v {
						sel[n] = r
						n++
					}
				}
				return sel[:n]
			}, nil
		case OpLt:
			return func(p *table.Partition, sel []int32, _ *scratch) []int32 {
				col := p.NumCol(ci)
				n := 0
				for _, r := range sel {
					if col[r] < v {
						sel[n] = r
						n++
					}
				}
				return sel[:n]
			}, nil
		case OpLe:
			return func(p *table.Partition, sel []int32, _ *scratch) []int32 {
				col := p.NumCol(ci)
				n := 0
				for _, r := range sel {
					if col[r] <= v {
						sel[n] = r
						n++
					}
				}
				return sel[:n]
			}, nil
		case OpGt:
			return func(p *table.Partition, sel []int32, _ *scratch) []int32 {
				col := p.NumCol(ci)
				n := 0
				for _, r := range sel {
					if col[r] > v {
						sel[n] = r
						n++
					}
				}
				return sel[:n]
			}, nil
		case OpGe:
			return func(p *table.Partition, sel []int32, _ *scratch) []int32 {
				col := p.NumCol(ci)
				n := 0
				for _, r := range sel {
					if col[r] >= v {
						sel[n] = r
						n++
					}
				}
				return sel[:n]
			}, nil
		default:
			return nil, fmt.Errorf("query: operator %s not supported on numeric column %q", c.Op, c.Col)
		}
	}
	codes, err := catCodeSet(c, d)
	if err != nil {
		return nil, err
	}
	neg := c.Op == OpNe
	switch len(codes) {
	case 0:
		// Every value is dictionary-unseen: != passes everything, =/IN
		// nothing.
		if neg {
			return func(_ *table.Partition, sel []int32, _ *scratch) []int32 {
				return sel
			}, nil
		}
		return func(_ *table.Partition, sel []int32, _ *scratch) []int32 {
			return sel[:0]
		}, nil
	case 1:
		want := singleCode(codes)
		if neg {
			return func(p *table.Partition, sel []int32, _ *scratch) []int32 {
				col := p.CatCol(ci)
				n := 0
				for _, r := range sel {
					if col[r] != want {
						sel[n] = r
						n++
					}
				}
				return sel[:n]
			}, nil
		}
		return func(p *table.Partition, sel []int32, _ *scratch) []int32 {
			col := p.CatCol(ci)
			n := 0
			for _, r := range sel {
				if col[r] == want {
					sel[n] = r
					n++
				}
			}
			return sel[:n]
		}, nil
	default:
		lut := codeTable(codes, d)
		if neg {
			return func(p *table.Partition, sel []int32, _ *scratch) []int32 {
				col := p.CatCol(ci)
				n := 0
				for _, r := range sel {
					if c := col[r]; int(c) >= len(lut) || !lut[c] {
						sel[n] = r
						n++
					}
				}
				return sel[:n]
			}, nil
		}
		return func(p *table.Partition, sel []int32, _ *scratch) []int32 {
			col := p.CatCol(ci)
			n := 0
			for _, r := range sel {
				if c := col[r]; int(c) < len(lut) && lut[c] {
					sel[n] = r
					n++
				}
			}
			return sel[:n]
		}, nil
	}
}
