package query

import (
	"fmt"
	"math"
	"sync/atomic"

	"ps3/internal/table"
)

// Encoded-space predicate evaluation. Partitions served from an encoded
// store (internal/store v2) keep compressible columns packed; the clause
// compilers here wrap the raw reference loops with a per-partition dispatch
// that evaluates directly on the encoded representation when one is present:
//
//   - Bit-packed dictionary codes compare against the clause's code(s)
//     without materializing the column.
//   - RLE runs are accepted or rejected wholesale: the seed form emits whole
//     selection spans, the narrowing form re-evaluates only on run
//     transitions.
//   - Frame-of-reference equality rebases the constant into packed delta
//     space (one integer compare per row); ordered comparisons fuse the
//     exact reconstruction min+float64(delta) into the loop, which is
//     bit-identical to comparing the decoded value.
//
// Every per-row outcome matches the raw loops exactly — the FoR
// reconstruction is exact by the encoding's 53-bit bound, and dictionary
// codes are compared as the same uint32s the decoded column would hold — so
// in-place ascending compaction (the kernel contract) yields bit-identical
// selections, and everything downstream is unchanged.
var encodedEvals atomic.Int64

// EncodedKernelEvals reports how many clause evaluations ran directly on an
// encoded column (no materialization) since process start. Tests assert it
// advances while the store's decode counters stay flat.
func EncodedKernelEvals() int64 { return encodedEvals.Load() }

// maxExactDelta is the FoR exactness bound: 2^53, above which float64 skips
// integers.
const maxExactDelta = float64(1 << 53)

// compileClauseSeed lowers one clause to its fill form with encoded-space
// dispatch layered over the raw reference loop.
func compileClauseSeed(c *Clause, s *table.Schema, d *table.Dict) (seedKernel, error) {
	raw, err := compileClauseSeedRaw(c, s, d)
	if err != nil {
		return nil, err
	}
	ci := s.ColIndex(c.Col)
	if s.Col(ci).IsNumeric() {
		op, v := c.Op, c.Num
		return func(p *table.Partition, rows int, out []int32) []int32 {
			if e := p.EncCol(ci); e != nil && e.Kind == table.EncFoR {
				encodedEvals.Add(1)
				return forSeed(e, op, v, rows, out)
			}
			return raw(p, rows, out)
		}, nil
	}
	cp, err := newCatPred(c, d)
	if err != nil {
		return nil, err
	}
	if cp == nil {
		// Constant clause (no dictionary code matches): the raw closure
		// never touches the column, so there is nothing to short-circuit.
		return raw, nil
	}
	return func(p *table.Partition, rows int, out []int32) []int32 {
		switch e := p.EncCol(ci); {
		case e == nil:
		case e.Kind == table.EncBitPack:
			encodedEvals.Add(1)
			return cp.bitpackSeed(e, rows, out)
		case e.Kind == table.EncRLE:
			encodedEvals.Add(1)
			return cp.rleSeed(e, out)
		}
		return raw(p, rows, out)
	}, nil
}

// compileClauseKernel lowers one clause to a narrowing kernel with
// encoded-space dispatch layered over the raw reference loop.
func compileClauseKernel(c *Clause, s *table.Schema, d *table.Dict) (kernel, error) {
	raw, err := compileClauseKernelRaw(c, s, d)
	if err != nil {
		return nil, err
	}
	ci := s.ColIndex(c.Col)
	if s.Col(ci).IsNumeric() {
		op, v := c.Op, c.Num
		return func(p *table.Partition, sel []int32, sc *scratch) []int32 {
			if e := p.EncCol(ci); e != nil && e.Kind == table.EncFoR {
				encodedEvals.Add(1)
				return forKern(e, op, v, sel)
			}
			return raw(p, sel, sc)
		}, nil
	}
	cp, err := newCatPred(c, d)
	if err != nil {
		return nil, err
	}
	if cp == nil {
		return raw, nil
	}
	return func(p *table.Partition, sel []int32, sc *scratch) []int32 {
		switch e := p.EncCol(ci); {
		case e == nil:
		case e.Kind == table.EncBitPack:
			encodedEvals.Add(1)
			return cp.bitpackKern(e, sel)
		case e.Kind == table.EncRLE:
			encodedEvals.Add(1)
			return cp.rleKern(e, sel)
		}
		return raw(p, sel, sc)
	}, nil
}

// forTarget rebases an equality constant into packed delta space. ok is
// false when v cannot equal any encodable value — not a non-negative
// integral delta, or the exact reconstruction check min+float64(t) == v
// fails. When v IS some block value min+delta, v-min is exact (the result is
// an integer ≤ 2^53, so IEEE subtraction cannot round), so ok never yields a
// false negative.
func forTarget(e *table.EncodedCol, v float64) (uint64, bool) {
	dv := v - e.Min
	if !(dv >= 0) || dv > maxExactDelta || dv != math.Trunc(dv) {
		return 0, false
	}
	t := uint64(dv)
	if e.Min+float64(t) != v {
		return 0, false
	}
	return t, true
}

// forSeed fills out with the rows of a frame-of-reference column passing
// (op, v), scanning packed deltas directly.
func forSeed(e *table.EncodedCol, op Op, v float64, rows int, out []int32) []int32 {
	n := 0
	switch op {
	case OpEq:
		t, ok := forTarget(e, v)
		if !ok {
			return out[:0]
		}
		for r := 0; r < rows; r++ {
			if e.At(r) == t {
				out[n] = int32(r)
				n++
			}
		}
	case OpNe:
		t, ok := forTarget(e, v)
		if !ok {
			out = out[:rows]
			for r := range out {
				out[r] = int32(r)
			}
			return out
		}
		for r := 0; r < rows; r++ {
			if e.At(r) != t {
				out[n] = int32(r)
				n++
			}
		}
	// Ordered comparisons fuse the exact reconstruction into the loop:
	// min+float64(delta) is bit-identical to the decoded value, so the
	// comparison outcome matches the raw loop row for row.
	case OpLt:
		min := e.Min
		for r := 0; r < rows; r++ {
			if min+float64(e.At(r)) < v {
				out[n] = int32(r)
				n++
			}
		}
	case OpLe:
		min := e.Min
		for r := 0; r < rows; r++ {
			if min+float64(e.At(r)) <= v {
				out[n] = int32(r)
				n++
			}
		}
	case OpGt:
		min := e.Min
		for r := 0; r < rows; r++ {
			if min+float64(e.At(r)) > v {
				out[n] = int32(r)
				n++
			}
		}
	case OpGe:
		min := e.Min
		for r := 0; r < rows; r++ {
			if min+float64(e.At(r)) >= v {
				out[n] = int32(r)
				n++
			}
		}
	default:
		panic(fmt.Sprintf("query: unreachable numeric operator %v on encoded column", op))
	}
	return out[:n]
}

// forKern narrows sel to the rows of a frame-of-reference column passing
// (op, v).
func forKern(e *table.EncodedCol, op Op, v float64, sel []int32) []int32 {
	n := 0
	switch op {
	case OpEq:
		t, ok := forTarget(e, v)
		if !ok {
			return sel[:0]
		}
		for _, r := range sel {
			if e.At(int(r)) == t {
				sel[n] = r
				n++
			}
		}
	case OpNe:
		t, ok := forTarget(e, v)
		if !ok {
			return sel
		}
		for _, r := range sel {
			if e.At(int(r)) != t {
				sel[n] = r
				n++
			}
		}
	case OpLt:
		min := e.Min
		for _, r := range sel {
			if min+float64(e.At(int(r))) < v {
				sel[n] = r
				n++
			}
		}
	case OpLe:
		min := e.Min
		for _, r := range sel {
			if min+float64(e.At(int(r))) <= v {
				sel[n] = r
				n++
			}
		}
	case OpGt:
		min := e.Min
		for _, r := range sel {
			if min+float64(e.At(int(r))) > v {
				sel[n] = r
				n++
			}
		}
	case OpGe:
		min := e.Min
		for _, r := range sel {
			if min+float64(e.At(int(r))) >= v {
				sel[n] = r
				n++
			}
		}
	default:
		panic(fmt.Sprintf("query: unreachable numeric operator %v on encoded column", op))
	}
	return sel[:n]
}

// catPred is a compiled categorical clause over dictionary codes: a single
// wanted code or a dense membership table, possibly negated. nil stands for
// the constant clause whose value set resolved empty.
type catPred struct {
	neg    bool
	single bool
	want   uint32
	lut    []bool
}

// newCatPred compiles the clause's value strings against the dictionary.
func newCatPred(c *Clause, d *table.Dict) (*catPred, error) {
	codes, err := catCodeSet(c, d)
	if err != nil {
		return nil, err
	}
	switch len(codes) {
	case 0:
		return nil, nil
	case 1:
		return &catPred{neg: c.Op == OpNe, single: true, want: singleCode(codes)}, nil
	default:
		return &catPred{neg: c.Op == OpNe, lut: codeTable(codes, d)}, nil
	}
}

// accept reports whether a dictionary code passes the clause. Used per run
// by the RLE kernels; the bit-packed loops inline the same logic.
func (cp *catPred) accept(code uint32) bool {
	var in bool
	if cp.single {
		in = code == cp.want
	} else {
		in = int(code) < len(cp.lut) && cp.lut[code]
	}
	return in != cp.neg
}

// bitpackSeed fills out with the rows of a bit-packed column passing the
// clause, comparing packed codes in place.
func (cp *catPred) bitpackSeed(e *table.EncodedCol, rows int, out []int32) []int32 {
	n := 0
	if cp.single {
		want := uint64(cp.want)
		if want > e.Mask() {
			// The wanted code cannot appear at this pack width.
			if !cp.neg {
				return out[:0]
			}
			out = out[:rows]
			for r := range out {
				out[r] = int32(r)
			}
			return out
		}
		if cp.neg {
			for r := 0; r < rows; r++ {
				if e.At(r) != want {
					out[n] = int32(r)
					n++
				}
			}
		} else {
			for r := 0; r < rows; r++ {
				if e.At(r) == want {
					out[n] = int32(r)
					n++
				}
			}
		}
		return out[:n]
	}
	lut := cp.lut
	if cp.neg {
		for r := 0; r < rows; r++ {
			if c := e.At(r); c >= uint64(len(lut)) || !lut[c] {
				out[n] = int32(r)
				n++
			}
		}
	} else {
		for r := 0; r < rows; r++ {
			if c := e.At(r); c < uint64(len(lut)) && lut[c] {
				out[n] = int32(r)
				n++
			}
		}
	}
	return out[:n]
}

// bitpackKern narrows sel against a bit-packed column.
func (cp *catPred) bitpackKern(e *table.EncodedCol, sel []int32) []int32 {
	n := 0
	if cp.single {
		want := uint64(cp.want)
		if want > e.Mask() {
			if !cp.neg {
				return sel[:0]
			}
			return sel
		}
		if cp.neg {
			for _, r := range sel {
				if e.At(int(r)) != want {
					sel[n] = r
					n++
				}
			}
		} else {
			for _, r := range sel {
				if e.At(int(r)) == want {
					sel[n] = r
					n++
				}
			}
		}
		return sel[:n]
	}
	lut := cp.lut
	if cp.neg {
		for _, r := range sel {
			if c := e.At(int(r)); c >= uint64(len(lut)) || !lut[c] {
				sel[n] = r
				n++
			}
		}
	} else {
		for _, r := range sel {
			if c := e.At(int(r)); c < uint64(len(lut)) && lut[c] {
				sel[n] = r
				n++
			}
		}
	}
	return sel[:n]
}

// rleSeed fills out with the rows of a run-length column passing the
// clause: one predicate evaluation per run, whole spans emitted wholesale.
func (cp *catPred) rleSeed(e *table.EncodedCol, out []int32) []int32 {
	n := 0
	start := int32(0)
	for i, v := range e.RunVals {
		end := e.RunEnds[i]
		if cp.accept(v) {
			for r := start; r < end; r++ {
				out[n] = r
				n++
			}
		}
		start = end
	}
	return out[:n]
}

// rleKern narrows sel against a run-length column, re-evaluating the clause
// only on run transitions. sel is ascending (kernel contract), so the run
// pointer advances monotonically.
func (cp *catPred) rleKern(e *table.EncodedCol, sel []int32) []int32 {
	n := 0
	ends := e.RunEnds
	run := 0
	cur := -1
	acc := false
	for _, r := range sel {
		for ends[run] <= r {
			run++
		}
		if run != cur {
			acc = cp.accept(e.RunVals[run])
			cur = run
		}
		if acc {
			sel[n] = r
			n++
		}
	}
	return sel[:n]
}
