// Package diagnose implements the diagnostic procedures the paper calls for
// in §7 ("Developing error guarantees and diagnostic procedures for failure
// cases will be of immediate value to practitioners"): given a query, the
// statistics store and the trained workload, it flags the failure modes the
// paper documents —
//
//   - GROUP BY on high-cardinality columns (§2.2: sampling cannot help;
//     any downsampling misses groups),
//   - predicates too complex for clustering features (Appendix B.1: the
//     picker falls back to random selection past 10 clauses),
//   - highly selective predicates (§4.2: features are computed over whole
//     partitions and stop being representative when few rows match),
//   - random-looking layouts (§5.5.1/Fig 8: uniform sampling is already
//     optimal; PS3 should not be used),
//   - queries referencing columns outside the trained workload (§2.1: the
//     picker should be retrained on workload change).
package diagnose

import (
	"fmt"
	"math"

	"ps3/internal/query"
	"ps3/internal/stats"
)

// Severity grades a finding.
type Severity uint8

const (
	// Info findings describe conditions worth knowing but not acting on.
	Info Severity = iota
	// Warn findings predict degraded accuracy.
	Warn
	// Critical findings predict PS3 performing no better than (or worse
	// than) uniform sampling; the caller should consider exact execution or
	// plain uniform samples.
	Critical
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warn:
		return "warn"
	default:
		return "critical"
	}
}

// Code identifies the failure mode a finding refers to.
type Code string

const (
	CodeHighCardinalityGroupBy Code = "high-cardinality-group-by"
	CodeComplexPredicate       Code = "complex-predicate"
	CodeHighlySelective        Code = "highly-selective-predicate"
	CodeRandomLayout           Code = "random-layout"
	CodeUntrainedColumns       Code = "untrained-columns"
	CodeNoMatchingPartitions   Code = "no-matching-partitions"
)

// Finding is one diagnostic result.
type Finding struct {
	Severity Severity
	Code     Code
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("[%s] %s: %s", f.Severity, f.Code, f.Message)
}

// Options tunes the thresholds; zero values take defaults matching the
// paper's observations.
type Options struct {
	// MaxGroups is the distinct-count above which a GROUP BY column is
	// flagged (default 1000; "moderate distinctiveness", §2.2).
	MaxGroups float64
	// MaxPredClauses mirrors the picker's clustering fallback (default 10).
	MaxPredClauses int
	// MinSelectivity is the estimated fraction of matching rows below which
	// clustering features stop being representative (default 0.001).
	MinSelectivity float64
	// LayoutSpreadRatio is the minimum ratio between the cross-partition
	// spread and the within-partition spread of a used numeric column for
	// the layout to count as informative (default 0.5).
	LayoutSpreadRatio float64
}

func (o Options) withDefaults() Options {
	if o.MaxGroups <= 0 {
		o.MaxGroups = 1000
	}
	if o.MaxPredClauses <= 0 {
		o.MaxPredClauses = 10
	}
	if o.MinSelectivity <= 0 {
		o.MinSelectivity = 0.001
	}
	if o.LayoutSpreadRatio <= 0 {
		o.LayoutSpreadRatio = 0.5
	}
	return o
}

// Query inspects one query against the statistics store and the trained
// workload, returning all findings (empty means no known failure mode
// applies).
func Query(q *query.Query, ts *stats.TableStats, wl query.Workload, opts Options) []Finding {
	opts = opts.withDefaults()
	var out []Finding
	out = append(out, checkGroupBy(q, ts, opts)...)
	out = append(out, checkPredicate(q, ts, opts)...)
	out = append(out, checkWorkload(q, wl)...)
	return out
}

// checkGroupBy flags group-by columns whose estimated distinct count is too
// high for sampling to preserve groups.
func checkGroupBy(q *query.Query, ts *stats.TableStats, opts Options) []Finding {
	var out []Finding
	for _, g := range q.GroupBy {
		ci := ts.Schema.ColIndex(g)
		if ci < 0 {
			continue
		}
		// Estimate the table-level distinct count as the max per-partition
		// AKMV estimate (a lower bound on the true table-level count, which
		// is enough to trigger the flag) scaled by the share of partitions
		// that could hold disjoint values. We use the conservative lower
		// bound: max over partitions.
		var est float64
		for _, ps := range ts.Parts {
			if e := ps.Cols[ci].AKMV.DistinctEstimate(); e > est {
				est = e
			}
		}
		if est > opts.MaxGroups {
			out = append(out, Finding{
				Severity: Critical,
				Code:     CodeHighCardinalityGroupBy,
				Message: fmt.Sprintf("column %q has ≥%.0f distinct values in a single partition; "+
					"sampling cannot preserve that many groups (§2.2) — answer exactly or drop the GROUP BY", g, est),
			})
		}
	}
	return out
}

// checkPredicate flags complex and highly selective predicates using the
// same selectivity features the picker consumes.
func checkPredicate(q *query.Query, ts *stats.TableStats, opts Options) []Finding {
	var out []Finding
	if q.Pred == nil {
		return out
	}
	if n := len(query.Clauses(q.Pred)); n > opts.MaxPredClauses {
		out = append(out, Finding{
			Severity: Warn,
			Code:     CodeComplexPredicate,
			Message: fmt.Sprintf("predicate has %d clauses (> %d); clustering features are unreliable "+
				"and the picker falls back to random selection within importance groups (Appendix B.1)",
				n, opts.MaxPredClauses),
		})
	}
	rows := ts.Features(q)
	if len(rows) == 0 {
		return out
	}
	upSlot, indepSlot, _, _ := ts.Space.SelectivitySlots()
	matching := 0
	var indepSum float64
	for _, r := range rows {
		if r[upSlot] > 0 {
			matching++
		}
		indepSum += r[indepSlot]
	}
	if matching == 0 {
		out = append(out, Finding{
			Severity: Info,
			Code:     CodeNoMatchingPartitions,
			Message:  "no partition can contain matching rows (selectivity upper bound is 0 everywhere); the exact answer is empty",
		})
		return out
	}
	if avg := indepSum / float64(len(rows)); avg < opts.MinSelectivity {
		out = append(out, Finding{
			Severity: Warn,
			Code:     CodeHighlySelective,
			Message: fmt.Sprintf("estimated selectivity ≈ %.4f%%: partition-level features are computed over "+
				"whole partitions and stop being representative when few rows match (§4.2)", avg*100),
		})
	}
	return out
}

// checkWorkload flags query columns absent from the trained workload.
func checkWorkload(q *query.Query, wl query.Workload) []Finding {
	trained := map[string]bool{}
	for _, c := range wl.GroupableCols {
		trained[c] = true
	}
	for _, c := range wl.PredicateCols {
		trained[c] = true
	}
	for _, c := range wl.AggCols {
		trained[c] = true
	}
	if len(trained) == 0 {
		return nil
	}
	var missing []string
	for _, c := range q.Columns() {
		if !trained[c] {
			missing = append(missing, c)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	return []Finding{{
		Severity: Warn,
		Code:     CodeUntrainedColumns,
		Message: fmt.Sprintf("columns %v are outside the trained workload; the importance models were never "+
			"shown them — retrain with an updated workload specification (§2.1)", missing),
	}}
}

// Layout inspects the data layout for the columns a workload uses: if no
// used numeric column separates partitions (cross-partition spread of
// per-partition means ≪ within-partition spread), the layout is effectively
// random for this workload and uniform sampling is already optimal (§5.5.1,
// Fig 8). Returns at most one finding.
func Layout(ts *stats.TableStats, wl query.Workload) []Finding {
	if len(ts.Parts) < 2 {
		return nil
	}
	used := map[string]bool{}
	for _, c := range wl.PredicateCols {
		used[c] = true
	}
	for _, c := range wl.AggCols {
		used[c] = true
	}
	informative := false
	checked := 0
	for ci, col := range ts.Schema.Cols {
		if !col.IsNumeric() || (len(used) > 0 && !used[col.Name]) {
			continue
		}
		var means []float64
		var withinStd float64
		n := 0
		for _, ps := range ts.Parts {
			m := ps.Cols[ci].Measures
			if m == nil || m.Count == 0 {
				continue
			}
			means = append(means, m.Mean())
			withinStd += m.Std()
			n++
		}
		if n < 2 {
			continue
		}
		checked++
		withinStd /= float64(n)
		var mu, ss float64
		for _, m := range means {
			mu += m
		}
		mu /= float64(len(means))
		for _, m := range means {
			ss += (m - mu) * (m - mu)
		}
		acrossStd := math.Sqrt(ss / float64(len(means)))
		if withinStd == 0 || acrossStd > 0.5*withinStd {
			informative = true
			break
		}
	}
	if checked == 0 || informative {
		return nil
	}
	return []Finding{{
		Severity: Critical,
		Code:     CodeRandomLayout,
		Message: "no workload column separates partitions (per-partition means are near-identical); the layout " +
			"is effectively random for this workload and uniform partition sampling is already optimal (Fig 8) — " +
			"PS3 adds overhead without benefit here",
	}}
}
