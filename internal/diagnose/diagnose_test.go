package diagnose

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"ps3/internal/query"
	"ps3/internal/stats"
	"ps3/internal/table"
)

// buildTable creates a table with a sorted numeric column "v" (informative
// layout), an iid column "noise", a low-cardinality categorical "g" and a
// high-cardinality categorical "id".
func buildTable(t *testing.T, parts, rowsPer int) *table.Table {
	t.Helper()
	schema := table.MustSchema(
		table.Column{Name: "v", Kind: table.Numeric, Positive: true},
		table.Column{Name: "noise", Kind: table.Numeric},
		table.Column{Name: "g", Kind: table.Categorical},
		table.Column{Name: "id", Kind: table.Categorical},
	)
	b, err := table.NewBuilder(schema, rowsPer)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	total := parts * rowsPer
	for i := 0; i < total; i++ {
		part := i / rowsPer
		v := float64(part*100) + rng.Float64()
		if err := b.Append(
			[]float64{v, rng.NormFloat64(), 0, 0},
			[]string{"", "", fmt.Sprint("g", i%4), fmt.Sprint("row-", i)},
		); err != nil {
			t.Fatal(err)
		}
	}
	return b.Finish()
}

func buildStats(t *testing.T, tbl *table.Table) *stats.TableStats {
	t.Helper()
	ts, err := stats.Build(tbl, stats.Options{GroupableCols: []string{"g", "id"}})
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func workload() query.Workload {
	return query.Workload{
		GroupableCols: []string{"g"},
		PredicateCols: []string{"v", "g"},
		AggCols:       []string{"v"},
	}
}

func findCode(fs []Finding, code Code) *Finding {
	for i := range fs {
		if fs[i].Code == code {
			return &fs[i]
		}
	}
	return nil
}

func TestCleanQueryHasNoFindings(t *testing.T) {
	tbl := buildTable(t, 10, 2000)
	ts := buildStats(t, tbl)
	q := &query.Query{
		Aggs:    []query.Aggregate{{Kind: query.Sum, Expr: query.Col("v")}},
		Pred:    &query.Clause{Col: "v", Op: query.OpGt, Num: 100},
		GroupBy: []string{"g"},
	}
	if fs := Query(q, ts, workload(), Options{}); len(fs) != 0 {
		t.Fatalf("clean query produced findings: %v", fs)
	}
}

func TestHighCardinalityGroupByFlagged(t *testing.T) {
	tbl := buildTable(t, 10, 2000)
	ts := buildStats(t, tbl)
	q := &query.Query{
		Aggs:    []query.Aggregate{{Kind: query.Count}},
		GroupBy: []string{"id"}, // 20k distinct values
	}
	f := findCode(Query(q, ts, query.Workload{}, Options{}), CodeHighCardinalityGroupBy)
	if f == nil {
		t.Fatal("high-cardinality group-by not flagged")
	}
	if f.Severity != Critical {
		t.Fatalf("severity = %v, want critical", f.Severity)
	}
}

func TestComplexPredicateFlagged(t *testing.T) {
	tbl := buildTable(t, 6, 500)
	ts := buildStats(t, tbl)
	var clauses []query.Pred
	for i := 0; i < 12; i++ {
		clauses = append(clauses, &query.Clause{Col: "v", Op: query.OpGt, Num: float64(i)})
	}
	q := &query.Query{
		Aggs: []query.Aggregate{{Kind: query.Count}},
		Pred: query.NewAnd(clauses...),
	}
	if findCode(Query(q, ts, workload(), Options{}), CodeComplexPredicate) == nil {
		t.Fatal("12-clause predicate not flagged")
	}
}

func TestHighlySelectivePredicateFlagged(t *testing.T) {
	tbl := buildTable(t, 6, 2000)
	ts := buildStats(t, tbl)
	// v spans [0, 600); a range of width 0.001 matches almost nothing.
	q := &query.Query{
		Aggs: []query.Aggregate{{Kind: query.Count}},
		Pred: query.NewAnd(
			&query.Clause{Col: "v", Op: query.OpGt, Num: 100.000},
			&query.Clause{Col: "v", Op: query.OpLt, Num: 100.001},
		),
	}
	if findCode(Query(q, ts, workload(), Options{}), CodeHighlySelective) == nil {
		t.Fatal("highly selective predicate not flagged")
	}
}

func TestNoMatchingPartitionsInfo(t *testing.T) {
	tbl := buildTable(t, 6, 500)
	ts := buildStats(t, tbl)
	q := &query.Query{
		Aggs: []query.Aggregate{{Kind: query.Count}},
		Pred: &query.Clause{Col: "v", Op: query.OpGt, Num: 1e12},
	}
	f := findCode(Query(q, ts, workload(), Options{}), CodeNoMatchingPartitions)
	if f == nil {
		t.Fatal("impossible predicate not flagged")
	}
	if f.Severity != Info {
		t.Fatalf("severity = %v, want info", f.Severity)
	}
}

func TestUntrainedColumnsFlagged(t *testing.T) {
	tbl := buildTable(t, 6, 500)
	ts := buildStats(t, tbl)
	q := &query.Query{
		Aggs: []query.Aggregate{{Kind: query.Sum, Expr: query.Col("noise")}}, // not in workload
	}
	f := findCode(Query(q, ts, workload(), Options{}), CodeUntrainedColumns)
	if f == nil {
		t.Fatal("untrained column not flagged")
	}
	if !strings.Contains(f.Message, "noise") {
		t.Fatalf("message does not name the column: %s", f.Message)
	}
}

func TestUntrainedColumnsSkippedWithEmptyWorkload(t *testing.T) {
	tbl := buildTable(t, 6, 500)
	ts := buildStats(t, tbl)
	q := &query.Query{Aggs: []query.Aggregate{{Kind: query.Sum, Expr: query.Col("noise")}}}
	if f := findCode(Query(q, ts, query.Workload{}, Options{}), CodeUntrainedColumns); f != nil {
		t.Fatalf("empty workload should not flag columns: %v", f)
	}
}

func TestLayoutInformativeNotFlagged(t *testing.T) {
	tbl := buildTable(t, 10, 1000)
	ts := buildStats(t, tbl)
	if fs := Layout(ts, workload()); len(fs) != 0 {
		t.Fatalf("sorted layout flagged as random: %v", fs)
	}
}

func TestLayoutRandomFlagged(t *testing.T) {
	tbl := buildTable(t, 10, 1000)
	shuf, err := tbl.Shuffled(10, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	ts := buildStats(t, shuf)
	fs := Layout(ts, workload())
	f := findCode(fs, CodeRandomLayout)
	if f == nil {
		t.Fatalf("random layout not flagged: %v", fs)
	}
	if f.Severity != Critical {
		t.Fatalf("severity = %v, want critical", f.Severity)
	}
}

func TestLayoutSinglePartitionNoFinding(t *testing.T) {
	tbl := buildTable(t, 1, 100)
	ts := buildStats(t, tbl)
	if fs := Layout(ts, workload()); len(fs) != 0 {
		t.Fatalf("single partition produced findings: %v", fs)
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Severity: Warn, Code: CodeComplexPredicate, Message: "m"}
	s := f.String()
	if !strings.Contains(s, "warn") || !strings.Contains(s, string(CodeComplexPredicate)) {
		t.Fatalf("rendered finding: %q", s)
	}
	if Info.String() != "info" || Critical.String() != "critical" {
		t.Fatal("severity strings")
	}
}
