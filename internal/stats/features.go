package stats

import (
	"math"

	"ps3/internal/query"
	"ps3/internal/table"
)

// Kind identifies one summary-statistic feature type (the rows of Table 2 /
// the feature list of Algorithm 3). Feature selection operates on kinds.
type Kind uint8

const (
	// Selectivity features (query-specific, §3.2).
	KSelUpper Kind = iota
	KSelIndep
	KSelMin
	KSelMax
	// Occurrence bitmap bits of global heavy hitters.
	KBitmap
	// Measure features.
	KMean
	KMeanSq
	KStd
	KMin
	KMax
	KLogMean
	KLogMeanSq
	KLogMin
	KLogMax
	// Heavy hitter features.
	KNumHH
	KAvgHH
	KMaxHH
	// Distinct value features.
	KNumDV
	KAvgDV
	KMaxDV
	KMinDV
	KSumDV
	numKinds
)

// kindNames maps kinds to the names used in Algorithm 3 of the paper.
var kindNames = [numKinds]string{
	"selectivity_upper", "selectivity_indep", "selectivity_min", "selectivity_max",
	"occurrence_bitmap",
	"x", "x2", "std", "min(x)", "max(x)",
	"log(x)", "log2(x)", "min(log(x))", "max(log(x))",
	"#hh", "avg_hh", "max_hh",
	"#dv", "avg_dv", "max_dv", "min_dv", "sum_dv",
}

func (k Kind) String() string { return kindNames[k] }

// Valid reports whether k names a defined feature kind; used to validate
// feature-selection state restored from untrusted snapshot data.
func (k Kind) Valid() bool { return k < numKinds }

// Category groups kinds into the four sketch families of Fig 5.
type Category uint8

const (
	CatSelectivity Category = iota
	CatHH
	CatDV
	CatMeasure
)

func (c Category) String() string {
	switch c {
	case CatSelectivity:
		return "selectivity"
	case CatHH:
		return "hh"
	case CatDV:
		return "dv"
	default:
		return "measure"
	}
}

// CategoryOf returns the sketch family a kind belongs to.
func CategoryOf(k Kind) Category {
	switch k {
	case KSelUpper, KSelIndep, KSelMin, KSelMax:
		return CatSelectivity
	case KBitmap, KNumHH, KAvgHH, KMaxHH:
		return CatHH
	case KNumDV, KAvgDV, KMaxDV, KMinDV, KSumDV:
		return CatDV
	default:
		return CatMeasure
	}
}

// AllKinds returns every feature kind, in order.
func AllKinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// FeatureMeta describes one slot of the feature vector.
type FeatureMeta struct {
	Kind Kind
	// Col is the column index the feature derives from, or -1 for the
	// query-level selectivity features.
	Col int
	// Bit is the bitmap bit index for KBitmap features.
	Bit int
}

// FeatureSpace is the layout of partition feature vectors for one table +
// workload: 4 selectivity slots, then per-column statistics, then occurrence
// bitmap bits for groupable columns.
type FeatureSpace struct {
	Meta []FeatureMeta
	// colSlots[c] is the offset of column c's 17 per-column stats.
	colSlots map[int]int
	// bitmapSlots[c] is the offset of column c's bitmap bits (len = bits[c]).
	bitmapSlots map[int]int
	bitmapBits  map[int]int
	// Scale holds normalization divisors fitted on training features; nil
	// until Fit is called.
	Scale []float64
}

// perColKinds are the 17 per-column feature kinds, in slot order.
var perColKinds = []Kind{
	KMean, KMeanSq, KStd, KMin, KMax,
	KLogMean, KLogMeanSq, KLogMin, KLogMax,
	KNumHH, KAvgHH, KMaxHH,
	KNumDV, KAvgDV, KMaxDV, KMinDV, KSumDV,
}

func newFeatureSpace(s *table.Schema, globalHH map[int][]uint32, _ Options) *FeatureSpace {
	fs := &FeatureSpace{
		colSlots:    make(map[int]int),
		bitmapSlots: make(map[int]int),
		bitmapBits:  make(map[int]int),
	}
	fs.Meta = append(fs.Meta,
		FeatureMeta{Kind: KSelUpper, Col: -1},
		FeatureMeta{Kind: KSelIndep, Col: -1},
		FeatureMeta{Kind: KSelMin, Col: -1},
		FeatureMeta{Kind: KSelMax, Col: -1},
	)
	for ci := range s.Cols {
		fs.colSlots[ci] = len(fs.Meta)
		for _, k := range perColKinds {
			fs.Meta = append(fs.Meta, FeatureMeta{Kind: k, Col: ci})
		}
	}
	// Deterministic order over bitmap columns.
	for ci := range s.Cols {
		codes, ok := globalHH[ci]
		if !ok || len(codes) == 0 {
			continue
		}
		fs.bitmapSlots[ci] = len(fs.Meta)
		fs.bitmapBits[ci] = len(codes)
		for b := range codes {
			fs.Meta = append(fs.Meta, FeatureMeta{Kind: KBitmap, Col: ci, Bit: b})
		}
	}
	return fs
}

// Dim returns M, the feature dimension.
func (fs *FeatureSpace) Dim() int { return len(fs.Meta) }

// SelectivitySlots returns the indexes of the four selectivity features.
func (fs *FeatureSpace) SelectivitySlots() (upper, indep, minS, maxS int) {
	return 0, 1, 2, 3
}

// buildBaseMatrix precomputes the query-independent features of every
// partition (selectivity slots left at zero) into one contiguous row-major
// matrix.
func (ts *TableStats) buildBaseMatrix() []float64 {
	m := ts.Space.Dim()
	out := make([]float64, len(ts.Parts)*m)
	for i, ps := range ts.Parts {
		ts.fillBaseRow(out[i*m:(i+1)*m], ps)
	}
	return out
}

// fillBaseRow fills one partition's query-independent feature row
// (selectivity slots left at zero). It is the per-partition half of
// buildBaseMatrix, shared with the incremental extension path
// (ExtendedWith), which appends rows for new partitions without retouching
// the existing matrix.
func (ts *TableStats) fillBaseRow(v []float64, ps *PartitionStats) {
	for ci := range ts.Schema.Cols {
		off := ts.Space.colSlots[ci]
		cs := &ps.Cols[ci]
		if cs.Measures != nil {
			mm := cs.Measures
			v[off+0] = mm.Mean()
			v[off+1] = mm.MeanSq()
			v[off+2] = mm.Std()
			if mm.Count > 0 {
				v[off+3] = mm.Min
				v[off+4] = mm.Max
			}
			if mm.HasLog && mm.Count > 0 {
				v[off+5] = mm.LogMean()
				v[off+6] = mm.LogMeanSq()
				v[off+7] = mm.LogMin
				v[off+8] = mm.LogMax
			}
		}
		nhh, avgHH, maxHH := cs.HH.Stats()
		v[off+9] = float64(nhh)
		v[off+10] = avgHH
		v[off+11] = maxHH
		v[off+12] = cs.AKMV.DistinctEstimate()
		avgDV, maxDV, minDV, sumDV := cs.AKMV.FreqStats()
		v[off+13] = avgDV
		v[off+14] = maxDV
		v[off+15] = minDV
		v[off+16] = sumDV
	}
	//lint:mapiter-ok each column writes its own disjoint dense slot range; order-free
	for ci, slot := range ts.Space.bitmapSlots {
		bm := ps.Bitmap[ci]
		bits := ts.Space.bitmapBits[ci]
		for b := 0; b < bits; b++ {
			if bm&(1<<uint(b)) != 0 {
				v[slot+b] = 1
			}
		}
	}
}

// Features builds the N×M feature matrix for query q: the precomputed base
// features with the query-dependent column mask applied (features of unused
// columns zeroed, §3.2) and the four per-partition selectivity estimates
// filled in. This is the reference featurizer — one fresh slice per
// partition, the per-partition selectivity estimator — kept as the
// implementation FeaturePlan is equivalence-tested against; hot paths build
// a FeaturePlan once per query and fill pooled scratch rows instead.
func (ts *TableStats) Features(q *query.Query) [][]float64 {
	used := make(map[int]bool)
	for _, name := range q.Columns() {
		if ci := ts.Schema.ColIndex(name); ci >= 0 {
			used[ci] = true
		}
	}
	m := ts.Space.Dim()
	out := make([][]float64, len(ts.Parts))
	est := newSelEstimator(ts, q.Pred)
	for i, ps := range ts.Parts {
		v := make([]float64, m)
		copy(v, ts.base[i*m:(i+1)*m])
		// Mask features of unused columns.
		for j, meta := range ts.Space.Meta {
			if meta.Col >= 0 && !used[meta.Col] {
				v[j] = 0
			}
		}
		upper, indep, minS, maxS := est.estimate(ps)
		v[0], v[1], v[2], v[3] = upper, indep, minS, maxS
		out[i] = v
	}
	return out
}

// FeaturePlan is the query-compiled featurizer: the query-static work of
// Features — column-mask resolution and predicate analysis (selprogram.go)
// — done once, leaving FillRow with only the partition-varying work: one
// base-row copy, a masked-slot sweep, and the four selectivity estimates.
// FillRow performs zero allocations and produces rows bit-identical to
// Features(q), so callers can featurize into reusable scratch matrices. A
// plan is immutable after construction and safe for concurrent FillRow calls
// from multiple workers.
type FeaturePlan struct {
	ts *TableStats
	// maskSlots lists the feature slots zeroed because their column is not
	// used by the query; keepSlots the complement (minus the selectivity
	// slots, which are always overwritten). FillRow uses whichever set is
	// smaller.
	maskSlots []int32
	keepSlots []int32
	prog      *selProgram
}

// NewFeaturePlan compiles q's featurization against the store.
func (ts *TableStats) NewFeaturePlan(q *query.Query) *FeaturePlan {
	used := make(map[int]bool)
	for _, name := range q.Columns() {
		if ci := ts.Schema.ColIndex(name); ci >= 0 {
			used[ci] = true
		}
	}
	p := &FeaturePlan{ts: ts, prog: ts.compileSel(q.Pred)}
	for j, meta := range ts.Space.Meta {
		if meta.Col >= 0 && !used[meta.Col] {
			p.maskSlots = append(p.maskSlots, int32(j))
		} else if j >= 4 {
			p.keepSlots = append(p.keepSlots, int32(j))
		}
	}
	return p
}

// Dim returns the feature dimension M.
func (p *FeaturePlan) Dim() int { return p.ts.Space.Dim() }

// MaskSlots returns the feature slots this plan zeroes (features of columns
// the query does not use); every filled row holds exactly zero there. The
// slice aliases plan state; callers must not mutate it.
func (p *FeaturePlan) MaskSlots() []int32 { return p.maskSlots }

// NumParts returns the partition count N.
func (p *FeaturePlan) NumParts() int { return len(p.ts.Parts) }

// FillRow writes partition part's feature vector into dst (which must have
// length ≥ Dim()); the result is bit-identical to Features(q)[part].
func (p *FeaturePlan) FillRow(dst []float64, part int) {
	m := p.ts.Space.Dim()
	base := p.ts.base[part*m : (part+1)*m]
	if len(p.keepSlots) < len(p.maskSlots) {
		// Mostly-masked query: clear the row and copy only the kept slots.
		clear(dst[:m])
		for _, j := range p.keepSlots {
			dst[j] = base[j]
		}
	} else {
		copy(dst[:m], base)
		for _, j := range p.maskSlots {
			dst[j] = 0
		}
	}
	upper, indep, minS, maxS := p.prog.estimate(p.ts.Parts[part])
	dst[0], dst[1], dst[2], dst[3] = upper, indep, minS, maxS
}

// Fit computes normalization divisors from a training feature sample
// (Appendix B): every statistic is transformed (log for magnitudes, cube
// root for selectivities) and then divided by its average value in the
// training set, the paper's normalization. The average is chosen over the
// max for robustness to outliers, and over the standard deviation because
// dividing by the std would amplify noise-only features (large mean, tiny
// spread) until they dominate the Euclidean distance. Features that are
// ~zero throughout training get scale 1 (they then contribute nothing).
// Rows are raw feature vectors as returned by Features.
func (fs *FeatureSpace) Fit(trainRows [][]float64) {
	m := fs.Dim()
	sumAbs := make([]float64, m)
	n := 0
	for _, row := range trainRows {
		if len(row) != m {
			continue
		}
		n++
		for j, x := range row {
			sumAbs[j] += math.Abs(fs.transform(j, x))
		}
	}
	scale := make([]float64, m)
	for j := range scale {
		scale[j] = 1
		if n > 0 {
			if mean := sumAbs[j] / float64(n); mean > 1e-12 {
				scale[j] = mean
			}
		}
	}
	fs.Scale = scale
}

// transform applies the skew-reducing transform of Appendix B: cube root for
// selectivity features (in [0,1]), signed log1p for everything else.
func (fs *FeatureSpace) transform(j int, x float64) float64 {
	if CategoryOf(fs.Meta[j].Kind) == CatSelectivity {
		return math.Cbrt(x)
	}
	if x >= 0 {
		return math.Log1p(x)
	}
	return -math.Log1p(-x)
}

// NormalizeValue normalizes one feature slot: transform(j, x) divided by the
// fitted scale (unit scale before Fit). Normalize(row)[j] ==
// NormalizeValue(j, row[j]) bit for bit.
func (fs *FeatureSpace) NormalizeValue(j int, x float64) float64 {
	v := fs.transform(j, x)
	if fs.Scale != nil {
		v /= fs.Scale[j]
	}
	return v
}

// Normalize maps a raw feature vector into normalized space using the fitted
// scale. Without a fit, the transform is applied with unit scale.
func (fs *FeatureSpace) Normalize(row []float64) []float64 {
	out := make([]float64, len(row))
	for j, x := range row {
		v := fs.transform(j, x)
		if fs.Scale != nil {
			v /= fs.Scale[j]
		}
		out[j] = v
	}
	return out
}

// NormalizeMatrix normalizes every row of a feature matrix.
func (fs *FeatureSpace) NormalizeMatrix(rows [][]float64) [][]float64 {
	out := make([][]float64, len(rows))
	for i, r := range rows {
		out[i] = fs.Normalize(r)
	}
	return out
}
