// Package stats implements PS3's statistics builder (paper §3): it computes
// the per-partition, per-column lightweight sketches at ingest time, derives
// the summary-statistics feature vectors of Table 2 (measures, distinct
// values, heavy hitters, occurrence bitmaps, selectivity estimates), applies
// the query-dependent column mask, and normalizes features for clustering
// and learning (Appendix B).
package stats

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"ps3/internal/exec"
	"ps3/internal/sketch"
	"ps3/internal/table"
)

// Options configures the statistics builder.
type Options struct {
	// HistogramBuckets per column histogram (0 = paper default 10).
	HistogramBuckets int
	// AKMVK is the AKMV budget (0 = paper default 128).
	AKMVK int
	// HHSupport is the heavy-hitter support threshold (0 = paper default 1%).
	HHSupport float64
	// BitmapK caps the global heavy hitters tracked per grouping column for
	// the occurrence bitmap (0 = paper default 25).
	BitmapK int
	// GroupableCols lists columns that may appear in GROUP BY clauses of the
	// workload; occurrence bitmaps are computed only for these (§3.2).
	GroupableCols []string
	// Parallelism bounds builder goroutines (0 = GOMAXPROCS).
	Parallelism int
}

func (o Options) withDefaults() Options {
	if o.HistogramBuckets <= 0 {
		o.HistogramBuckets = sketch.DefaultHistogramBuckets
	}
	if o.AKMVK <= 0 {
		o.AKMVK = sketch.DefaultAKMVK
	}
	if o.HHSupport <= 0 {
		o.HHSupport = sketch.DefaultHHSupport
	}
	if o.BitmapK <= 0 {
		o.BitmapK = 25
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// ColumnStats bundles the sketches of one column within one partition.
type ColumnStats struct {
	Measures *sketch.Measures    // numeric columns only
	Hist     *sketch.Histogram   // numeric: values; categorical: hash-derived
	AKMV     *sketch.AKMV        // all columns
	HH       *sketch.HeavyHitter // all columns (ids: code or value hash)
	Dict     *sketch.ExactDict   // categorical columns only
}

// PartitionStats holds the sketches for every column of one partition plus
// derived artifacts used by the picker.
type PartitionStats struct {
	Part int
	Rows int
	Cols []ColumnStats
	// Bitmap[c] is the occurrence bitmap of the partition for groupable
	// column c: bit i set iff global heavy hitter i of column c is also a
	// heavy hitter of this partition (§3.2). Only present for groupable
	// categorical columns.
	Bitmap map[int]uint32
}

// TableStats is the full statistics store for a table: one PartitionStats
// per partition plus the table-global artifacts (global heavy hitters per
// groupable column) and the feature space.
type TableStats struct {
	Schema *table.Schema
	Dict   *table.Dict
	Opts   Options
	Parts  []*PartitionStats
	// GlobalHH[c] lists the global heavy-hitter dictionary codes of
	// groupable column c, ranked by total count, capped at BitmapK.
	GlobalHH map[int][]uint32
	// Space describes the feature vector layout.
	Space *FeatureSpace
	// base is the precomputed query-independent feature matrix, stored
	// row-major (partition i's features at [i*M, (i+1)*M)); selectivity
	// slots are zero and filled per query. Built once at Build/ReadStats
	// time, it is the query-static half of featurization: Features and
	// FeaturePlan.FillRow only copy it and fill the query-dependent slots.
	base []float64

	// normMu guards the lazily built caches below (normalized base matrix,
	// per-slot base ranges).
	normMu sync.Mutex
	// normBase is base with the fitted normalization applied elementwise —
	// the query-independent part of FeatureSpace.Normalize, cached so
	// cluster preparation copies precomputed values instead of re-running
	// transform()/Scale division per pick. Rebuilt if the Scale it was
	// computed under changes (Fit runs once per training).
	normBase      []float64
	normBaseScale []float64
	// baseLo/baseHi/baseRangeOK hold per-slot min/max over the base matrix
	// (query-independent); baseRangeOK[j] is false when slot j holds a NaN
	// anywhere. Used to pre-decide ensemble split conditions at pick time.
	baseLo, baseHi []float64
	baseRangeOK    []bool
}

// BaseRanges returns per-slot (min, max, ok) over the query-independent
// base feature matrix: every unmasked non-selectivity feature value of
// every partition row lies inside [min[j], max[j]] whenever ok[j]. The
// slices alias a lazily built cache; callers must not mutate them. Safe for
// concurrent use.
func (ts *TableStats) BaseRanges() (lo, hi []float64, ok []bool) {
	m := ts.Space.Dim()
	ts.normMu.Lock()
	if ts.baseLo == nil {
		ts.baseLo = make([]float64, m)
		ts.baseHi = make([]float64, m)
		ts.baseRangeOK = make([]bool, m)
		for j := 0; j < m; j++ {
			ts.baseLo[j] = math.Inf(1)
			ts.baseHi[j] = math.Inf(-1)
			ts.baseRangeOK[j] = len(ts.Parts) > 0
		}
		for p := 0; p < len(ts.Parts); p++ {
			row := ts.base[p*m : (p+1)*m]
			for j, x := range row {
				if math.IsNaN(x) {
					ts.baseRangeOK[j] = false
					continue
				}
				if x < ts.baseLo[j] {
					ts.baseLo[j] = x
				}
				if x > ts.baseHi[j] {
					ts.baseHi[j] = x
				}
			}
		}
	}
	lo, hi, ok = ts.baseLo, ts.baseHi, ts.baseRangeOK
	ts.normMu.Unlock()
	return lo, hi, ok
}

// NormBase returns the normalized query-independent feature matrix,
// row-major with stride Dim(): partition i's row is exactly
// FeatureSpace.Normalize of its base row, precomputed once per fitted
// scale. Entries at the selectivity slots are the normalization of zero and
// must be recomputed by callers from per-query values. The returned slice
// aliases the cache; callers must not mutate it. Safe for concurrent use.
func (ts *TableStats) NormBase() []float64 {
	m := ts.Space.Dim()
	ts.normMu.Lock()
	if ts.normBase == nil || !sameScale(ts.normBaseScale, ts.Space.Scale) {
		nb := make([]float64, len(ts.base))
		for p := 0; p < len(ts.Parts); p++ {
			row := ts.base[p*m : (p+1)*m]
			out := nb[p*m : (p+1)*m]
			for j, x := range row {
				out[j] = ts.Space.NormalizeValue(j, x)
			}
		}
		ts.normBase = nb
		ts.normBaseScale = ts.Space.Scale
	}
	nb := ts.normBase
	ts.normMu.Unlock()
	return nb
}

// sameScale reports whether two scale slices are the same fitted scale
// (identity comparison: Fit replaces the slice wholesale).
func sameScale(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || &a[0] == &b[0]
}

// Build constructs all sketches for every partition of t, derives global
// heavy hitters and occurrence bitmaps, and assembles the feature space.
func Build(t *table.Table, opts Options) (*TableStats, error) {
	opts = opts.withDefaults()
	// Resolve groupable columns into a deduplicated index slice, keeping
	// slice order for the derivation loops below: iterating a map here cost
	// run-to-run determinism once already (fixed in PR 1's sweep).
	seen := make(map[int]bool)
	var groupCis []int
	for _, name := range opts.GroupableCols {
		ci := t.Schema.ColIndex(name)
		if ci < 0 {
			return nil, fmt.Errorf("stats: groupable column %q not in schema", name)
		}
		if !seen[ci] {
			seen[ci] = true
			groupCis = append(groupCis, ci)
		}
	}
	ts := &TableStats{
		Schema:   t.Schema,
		Dict:     t.Dict,
		Opts:     opts,
		Parts:    make([]*PartitionStats, len(t.Parts)),
		GlobalHH: make(map[int][]uint32),
	}

	// Build per-partition sketches on the shared bounded pool; each
	// partition is one pass, and results land in index order.
	exec.ForEach(len(t.Parts), exec.Options{Parallelism: opts.Parallelism}, func(i int) {
		ts.Parts[i] = buildPartition(t.Schema, t.Parts[i], opts)
	})

	// Global heavy hitters per groupable categorical column: merge
	// per-partition HH lists and rank by total count (§3.2).
	for _, ci := range groupCis {
		if t.Schema.Col(ci).Kind != table.Categorical {
			continue
		}
		totals := make(map[uint64]int64)
		for _, ps := range ts.Parts {
			for _, item := range ps.Cols[ci].HH.Items() {
				totals[item.ID] += item.Count
			}
		}
		type hhTotal struct {
			id    uint64
			count int64
		}
		ranked := make([]hhTotal, 0, len(totals))
		for id, c := range totals { //lint:mapiter-ok ranked is fully sorted by (count, id) below before use
			ranked = append(ranked, hhTotal{id, c})
		}
		sort.Slice(ranked, func(a, b int) bool {
			if ranked[a].count != ranked[b].count {
				return ranked[a].count > ranked[b].count
			}
			return ranked[a].id < ranked[b].id
		})
		if len(ranked) > opts.BitmapK {
			ranked = ranked[:opts.BitmapK]
		}
		codes := make([]uint32, len(ranked))
		for j, r := range ranked {
			codes[j] = uint32(r.id)
		}
		ts.GlobalHH[ci] = codes
	}

	// Per-partition occurrence bitmaps, in groupable-column order.
	for _, ps := range ts.Parts {
		ps.Bitmap = make(map[int]uint32)
		for _, ci := range groupCis {
			codes, ok := ts.GlobalHH[ci]
			if !ok {
				continue // non-categorical groupable column
			}
			var bm uint32
			for bit, code := range codes {
				if ps.Cols[ci].HH.Contains(uint64(code)) {
					bm |= 1 << uint(bit)
				}
			}
			ps.Bitmap[ci] = bm
		}
	}

	ts.Space = newFeatureSpace(t.Schema, ts.GlobalHH, opts)
	ts.base = ts.buildBaseMatrix()
	return ts, nil
}

// buildPartition computes every sketch for one partition in one pass per
// column.
func buildPartition(s *table.Schema, p *table.Partition, opts Options) *PartitionStats {
	ps := &PartitionStats{Part: p.ID, Rows: p.Rows(), Cols: make([]ColumnStats, s.NumCols())}
	for ci, col := range s.Cols {
		cs := ColumnStats{
			Hist: sketch.NewHistogram(opts.HistogramBuckets),
			AKMV: sketch.NewAKMV(opts.AKMVK),
			HH:   sketch.NewHeavyHitter(opts.HHSupport),
		}
		if col.IsNumeric() {
			cs.Measures = sketch.NewMeasures(col.Positive)
			vals := p.NumCol(ci)
			for _, v := range vals {
				cs.Measures.Add(v)
				cs.Hist.Add(v)
				h := sketch.Hash64(math.Float64bits(v))
				cs.AKMV.Add(h)
				cs.HH.Add(h)
			}
		} else {
			cs.Dict = sketch.NewExactDict(0)
			codes := p.CatCol(ci)
			for _, c := range codes {
				// Categorical histograms are built over value hashes mapped
				// to [0,1): they only support existence-style estimates.
				h := sketch.Hash64(uint64(c))
				cs.Hist.Add(float64(h) / float64(math.MaxUint64))
				cs.AKMV.Add(h)
				cs.HH.Add(uint64(c))
				cs.Dict.Add(c)
			}
		}
		cs.Hist.Finalize()
		cs.HH.Finalize()
		ps.Cols[ci] = cs
	}
	return ps
}

// SizeBreakdown reports the average per-partition storage of each sketch
// family in bytes: total, histogram, heavy hitter, AKMV, measures (+ exact
// dictionaries counted with heavy hitters' family? No — dictionaries are
// reported inside the AKMV/dv family since they serve distinct-value
// estimates). Reproduces Table 4.
type SizeBreakdown struct {
	Total, Histogram, HH, AKMV, Measure float64
}

// Sizes returns the average per-partition storage footprint in bytes.
func (ts *TableStats) Sizes() SizeBreakdown {
	var b SizeBreakdown
	if len(ts.Parts) == 0 {
		return b
	}
	for _, ps := range ts.Parts {
		for _, cs := range ps.Cols {
			b.Histogram += float64(cs.Hist.SizeBytes())
			b.HH += float64(cs.HH.SizeBytes())
			b.AKMV += float64(cs.AKMV.SizeBytes())
			if cs.Dict != nil {
				b.AKMV += float64(cs.Dict.SizeBytes())
			}
			if cs.Measures != nil {
				b.Measure += float64(cs.Measures.SizeBytes())
			}
		}
	}
	n := float64(len(ts.Parts))
	b.Histogram /= n
	b.HH /= n
	b.AKMV /= n
	b.Measure /= n
	b.Total = b.Histogram + b.HH + b.AKMV + b.Measure
	return b
}
