package stats

import (
	"fmt"

	"ps3/internal/exec"
	"ps3/internal/table"
)

// ExtendedWith returns a new TableStats covering every partition of ts plus
// parts, appended in order. It is the incremental half of Build, shaped for
// the live-ingest path where immutable segments arrive behind a frozen base:
//
//   - existing *PartitionStats are shared by pointer, never retouched;
//   - sketches for the new partitions are built exactly as Build would
//     (buildPartition), fanned out on the bounded pool;
//   - the global heavy-hitter lists stay frozen at the base build, so old
//     occurrence bitmaps and the feature-space layout (whose bitmap slots
//     are sized by GlobalHH) remain valid; new partitions' bitmaps are
//     computed against the frozen lists. Global-HH drift under sustained
//     ingest is by design: re-ranking would invalidate every existing
//     bitmap and feature row, which is a rebuild, not an extension;
//   - the base feature matrix is copied and extended with one row per new
//     partition; the fitted FeatureSpace (including its normalization
//     scale) is shared, so a trained picker rebinds to the result without
//     refitting.
//
// dict replaces the dictionary carried by the result (nil keeps ts's): the
// live path passes the dictionary snapshot taken when the new partitions
// were sealed, a superset of the base dictionary covering every code they
// store. Each partition's ID must equal its global position
// len(ts.Parts)+i — the stats row index and the partition index must agree
// or the picker would read the wrong sketches.
//
// ts itself is never mutated, and the result shares no mutable state with
// it, so serving reads against ts may proceed concurrently with the
// extension. Lazily built caches (normalized base, per-slot ranges) are
// not inherited; each snapshot rebuilds its own on first use.
func (ts *TableStats) ExtendedWith(dict *table.Dict, parts []*table.Partition, parallelism int) (*TableStats, error) {
	if dict == nil {
		dict = ts.Dict
	}
	if parallelism <= 0 {
		parallelism = ts.Opts.Parallelism
	}
	old := len(ts.Parts)
	for i, p := range parts {
		if p.ID != old+i {
			return nil, fmt.Errorf("stats: extension partition %d has ID %d, want global position %d", i, p.ID, old+i)
		}
	}

	newPS := make([]*PartitionStats, len(parts))
	exec.ForEach(len(parts), exec.Options{Parallelism: parallelism}, func(i int) {
		newPS[i] = buildPartition(ts.Schema, parts[i], ts.Opts)
	})

	m := ts.Space.Dim()
	out := &TableStats{
		Schema:   ts.Schema,
		Dict:     dict,
		Opts:     ts.Opts,
		Parts:    make([]*PartitionStats, old, old+len(parts)),
		GlobalHH: ts.GlobalHH,
		Space:    ts.Space,
		base:     make([]float64, (old+len(parts))*m),
	}
	copy(out.Parts, ts.Parts)
	copy(out.base, ts.base)
	for i, ps := range newPS {
		// Occurrence bitmap against the frozen global heavy hitters,
		// exactly as Build derives it (schema order keeps it
		// deterministic).
		ps.Bitmap = make(map[int]uint32)
		for ci := range ts.Schema.Cols {
			codes, ok := ts.GlobalHH[ci]
			if !ok {
				continue
			}
			var bm uint32
			for bit, code := range codes {
				if ps.Cols[ci].HH.Contains(uint64(code)) {
					bm |= 1 << uint(bit)
				}
			}
			ps.Bitmap[ci] = bm
		}
		out.Parts = append(out.Parts, ps)
		out.fillBaseRow(out.base[(old+i)*m:(old+i+1)*m], ps)
	}
	return out, nil
}
