package stats

import (
	"testing"

	"ps3/internal/query"
)

// testPreds returns a battery of predicate shapes covering every compiled
// node kind: single clauses (numeric and categorical, every operator),
// negations of both, general negations, conjunctions with multi-clause
// per-column ranges (bounds, equalities, inequalities, contradictions),
// disjunctions, nesting, unknown columns, and dictionary misses.
func testPreds() []query.Pred {
	return []query.Pred{
		nil,
		&query.Clause{Col: "x", Op: query.OpGt, Num: 15},
		&query.Clause{Col: "x", Op: query.OpLe, Num: 8},
		&query.Clause{Col: "x", Op: query.OpEq, Num: 20.5},
		&query.Clause{Col: "x", Op: query.OpNe, Num: 20.5},
		&query.Clause{Col: "cat", Op: query.OpEq, Strs: []string{"a"}},
		&query.Clause{Col: "cat", Op: query.OpIn, Strs: []string{"a", "rare"}},
		&query.Clause{Col: "cat", Op: query.OpIn, Strs: []string{"nowhere", "b"}},
		&query.Clause{Col: "cat", Op: query.OpNe, Strs: []string{"b"}},
		&query.Clause{Col: "ghost", Op: query.OpEq, Num: 1},
		&query.Not{Child: &query.Clause{Col: "x", Op: query.OpLt, Num: 12}},
		&query.Not{Child: query.NewAnd(
			&query.Clause{Col: "x", Op: query.OpGt, Num: 5},
			&query.Clause{Col: "y", Op: query.OpLt, Num: 4},
		)},
		query.NewAnd(
			&query.Clause{Col: "x", Op: query.OpGe, Num: 10},
			&query.Clause{Col: "x", Op: query.OpLt, Num: 30},
			&query.Clause{Col: "y", Op: query.OpGt, Num: 2},
		),
		query.NewAnd( // equality inside range, plus inequality point
			&query.Clause{Col: "x", Op: query.OpEq, Num: 20.2},
			&query.Clause{Col: "x", Op: query.OpGe, Num: 10},
			&query.Clause{Col: "x", Op: query.OpNe, Num: 25},
		),
		query.NewAnd( // conflicting equalities → 0
			&query.Clause{Col: "x", Op: query.OpEq, Num: 1},
			&query.Clause{Col: "x", Op: query.OpEq, Num: 2},
		),
		query.NewAnd( // equality outside the merged range → 0
			&query.Clause{Col: "x", Op: query.OpEq, Num: 50},
			&query.Clause{Col: "x", Op: query.OpLt, Num: 40},
		),
		query.NewAnd( // mixed numeric + categorical + unknown column
			&query.Clause{Col: "x", Op: query.OpGt, Num: 12},
			&query.Clause{Col: "cat", Op: query.OpIn, Strs: []string{"a", "b"}},
			&query.Clause{Col: "ghost", Op: query.OpGt, Num: 0},
		),
		query.NewOr(
			&query.Clause{Col: "x", Op: query.OpLt, Num: 5},
			&query.Clause{Col: "x", Op: query.OpGt, Num: 45},
		),
		query.NewOr(
			query.NewAnd(
				&query.Clause{Col: "x", Op: query.OpGt, Num: 10},
				&query.Clause{Col: "y", Op: query.OpLt, Num: 3},
			),
			&query.Clause{Col: "cat", Op: query.OpEq, Strs: []string{"rare"}},
			&query.Not{Child: &query.Clause{Col: "y", Op: query.OpGe, Num: 5}},
		),
	}
}

// TestSelProgramMatchesReference: the compiled selectivity program must
// reproduce the reference estimator bit for bit on every partition, for
// every predicate shape.
func TestSelProgramMatchesReference(t *testing.T) {
	tbl := buildTestTable(t, 6, 40)
	ts := buildStats(t, tbl)
	for pi, pred := range testPreds() {
		ref := newSelEstimator(ts, pred)
		prog := ts.compileSel(pred)
		for i, ps := range ts.Parts {
			ru, rind, rmin, rmax := ref.estimate(ps)
			gu, gind, gmin, gmax := prog.estimate(ps)
			if ru != gu || rind != gind || rmin != gmin || rmax != gmax {
				t.Fatalf("pred %d partition %d: program (%v,%v,%v,%v) != reference (%v,%v,%v,%v)",
					pi, i, gu, gind, gmin, gmax, ru, rind, rmin, rmax)
			}
		}
	}
}

// TestFeaturePlanMatchesFeatures: FillRow must reproduce the reference
// Features matrix bit for bit, across queries that mask different column
// subsets.
func TestFeaturePlanMatchesFeatures(t *testing.T) {
	tbl := buildTestTable(t, 6, 40)
	ts := buildStats(t, tbl)
	queries := []*query.Query{
		{Aggs: []query.Aggregate{{Kind: query.Sum, Expr: query.Col("x")}}},
		{Aggs: []query.Aggregate{{Kind: query.Count}}, GroupBy: []string{"cat"}},
		{
			Aggs:    []query.Aggregate{{Kind: query.Avg, Expr: query.Col("y")}},
			GroupBy: []string{"cat"},
			Pred: query.NewAnd(
				&query.Clause{Col: "x", Op: query.OpGt, Num: 12},
				&query.Clause{Col: "cat", Op: query.OpIn, Strs: []string{"a", "rare"}},
			),
		},
	}
	for _, pred := range testPreds() {
		queries = append(queries, &query.Query{
			Aggs:    []query.Aggregate{{Kind: query.Sum, Expr: query.Col("x")}},
			GroupBy: []string{"cat"},
			Pred:    pred,
		})
	}
	for qi, q := range queries {
		want := ts.Features(q)
		plan := ts.NewFeaturePlan(q)
		if plan.NumParts() != len(want) || plan.Dim() != ts.Space.Dim() {
			t.Fatalf("query %d: plan shape %dx%d, want %dx%d", qi, plan.NumParts(), plan.Dim(), len(want), ts.Space.Dim())
		}
		dst := make([]float64, plan.Dim())
		for i := range want {
			plan.FillRow(dst, i)
			for j := range dst {
				if dst[j] != want[i][j] {
					t.Fatalf("query %d partition %d slot %d: plan %v != Features %v", qi, i, j, dst[j], want[i][j])
				}
			}
		}
	}
}

// TestFillRowZeroAllocs: after plan compilation, featurizing a partition
// must not allocate.
func TestFillRowZeroAllocs(t *testing.T) {
	tbl := buildTestTable(t, 6, 40)
	ts := buildStats(t, tbl)
	q := &query.Query{
		Aggs:    []query.Aggregate{{Kind: query.Sum, Expr: query.Col("x")}},
		GroupBy: []string{"cat"},
		Pred: query.NewAnd(
			&query.Clause{Col: "x", Op: query.OpGt, Num: 12},
			&query.Clause{Col: "x", Op: query.OpLt, Num: 44},
			&query.Clause{Col: "cat", Op: query.OpIn, Strs: []string{"a", "b"}},
		),
	}
	plan := ts.NewFeaturePlan(q)
	dst := make([]float64, plan.Dim())
	part := 0
	allocs := testing.AllocsPerRun(50, func() {
		plan.FillRow(dst, part)
		part = (part + 1) % plan.NumParts()
	})
	if allocs != 0 {
		t.Fatalf("FillRow allocates %.0f objects per call, want 0", allocs)
	}
}

// TestFeaturePlanConcurrentFill: one plan, many goroutines filling disjoint
// rows — results must match the sequential reference (run under -race).
func TestFeaturePlanConcurrentFill(t *testing.T) {
	tbl := buildTestTable(t, 8, 30)
	ts := buildStats(t, tbl)
	q := &query.Query{
		Aggs: []query.Aggregate{{Kind: query.Sum, Expr: query.Col("x")}},
		Pred: &query.Clause{Col: "cat", Op: query.OpIn, Strs: []string{"a", "rare"}},
	}
	want := ts.Features(q)
	plan := ts.NewFeaturePlan(q)
	m := plan.Dim()
	got := make([]float64, plan.NumParts()*m)
	done := make(chan int, plan.NumParts())
	for i := 0; i < plan.NumParts(); i++ {
		go func(i int) {
			plan.FillRow(got[i*m:(i+1)*m], i)
			done <- i
		}(i)
	}
	for i := 0; i < plan.NumParts(); i++ {
		<-done
	}
	for i := range want {
		for j := range want[i] {
			if got[i*m+j] != want[i][j] {
				t.Fatalf("partition %d slot %d: concurrent fill %v != %v", i, j, got[i*m+j], want[i][j])
			}
		}
	}
}

// BenchmarkFeaturize compares the reference Features matrix build against a
// compiled plan filling a reused scratch matrix for the same query.
func BenchmarkFeaturize(b *testing.B) {
	tbl := buildTestTable(b, 64, 500)
	ts, err := Build(tbl, Options{GroupableCols: []string{"cat"}})
	if err != nil {
		b.Fatal(err)
	}
	q := &query.Query{
		Aggs:    []query.Aggregate{{Kind: query.Sum, Expr: query.Col("x")}},
		GroupBy: []string{"cat"},
		Pred: query.NewAnd(
			&query.Clause{Col: "x", Op: query.OpGt, Num: 100},
			&query.Clause{Col: "x", Op: query.OpLt, Num: 500},
			&query.Clause{Col: "cat", Op: query.OpIn, Strs: []string{"a", "b"}},
		),
	}
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ts.Features(q)
		}
	})
	b.Run("plan", func(b *testing.B) {
		b.ReportAllocs()
		plan := ts.NewFeaturePlan(q)
		scratch := make([]float64, plan.NumParts()*plan.Dim())
		m := plan.Dim()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for part := 0; part < plan.NumParts(); part++ {
				plan.FillRow(scratch[part*m:(part+1)*m], part)
			}
		}
	})
}
