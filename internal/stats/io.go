package stats

import (
	"encoding/gob"
	"fmt"
	"io"

	"ps3/internal/sketch"
	"ps3/internal/table"
)

// This file persists a TableStats store: the paper's deployment keeps the
// per-partition sketches separate from the data (§2.3.1), so a statistics
// store built once at ingest can be loaded by any query optimizer process
// without touching the partitions. The format is self-describing gob.

// colWire is the serialized sketch set of one column in one partition.
type colWire struct {
	Measures *sketch.Measures
	Hist     sketch.HistogramSnapshot
	AKMV     sketch.AKMVSnapshot
	HH       sketch.HeavyHitterSnapshot
	Dict     *sketch.ExactDictSnapshot
}

// partWire is one partition's stats.
type partWire struct {
	Part   int
	Rows   int
	Cols   []colWire
	Bitmap map[int]uint32
}

// statsWire is the full store.
type statsWire struct {
	Cols     []table.Column
	DictVals []string
	Opts     Options
	Parts    []partWire
	GlobalHH map[int][]uint32
	Scale    []float64
}

// WriteTo serializes the statistics store (sketches, bitmaps, global heavy
// hitters and fitted normalization) to w.
func (ts *TableStats) WriteTo(w io.Writer) (int64, error) {
	wire := statsWire{
		Cols:     ts.Schema.Cols,
		Opts:     ts.Opts,
		GlobalHH: ts.GlobalHH,
		Scale:    ts.Space.Scale,
	}
	for c := uint32(0); int(c) < ts.Dict.Len(); c++ {
		wire.DictVals = append(wire.DictVals, ts.Dict.Value(c))
	}
	for _, ps := range ts.Parts {
		pw := partWire{Part: ps.Part, Rows: ps.Rows, Bitmap: ps.Bitmap}
		for _, cs := range ps.Cols {
			hist, err := cs.Hist.Snapshot()
			if err != nil {
				return 0, fmt.Errorf("stats: partition %d: %w", ps.Part, err)
			}
			hh, err := cs.HH.Snapshot()
			if err != nil {
				return 0, fmt.Errorf("stats: partition %d: %w", ps.Part, err)
			}
			cw := colWire{
				Measures: cs.Measures,
				Hist:     hist,
				AKMV:     cs.AKMV.Snapshot(),
				HH:       hh,
			}
			if cs.Dict != nil {
				snap := cs.Dict.Snapshot()
				cw.Dict = &snap
			}
			pw.Cols = append(pw.Cols, cw)
		}
		wire.Parts = append(wire.Parts, pw)
	}
	cw := &countingWriter{w: w}
	if err := gob.NewEncoder(cw).Encode(&wire); err != nil {
		return cw.n, fmt.Errorf("stats: encode: %w", err)
	}
	return cw.n, nil
}

// ReadStats deserializes a statistics store written with WriteTo. The
// returned store is fully usable for feature extraction and picking; it
// does not need (and does not reference) the original table data.
//
// The wire data is untrusted and validated before the feature matrix is
// rebuilt: per-partition column counts must match the schema width, global
// heavy-hitter columns must exist, and a persisted normalization scale must
// match the rebuilt feature dimension. Gob also decodes empty maps as nil
// (partWire.Bitmap, statsWire.GlobalHH); those are re-materialized so
// downstream bitmap lookups never see a nil map.
func ReadStats(r io.Reader) (*TableStats, error) {
	var wire statsWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("stats: decode: %w", err)
	}
	schema, err := table.NewSchema(wire.Cols...)
	if err != nil {
		return nil, err
	}
	dict := table.NewDict()
	for _, v := range wire.DictVals {
		dict.Code(v)
	}
	ts := &TableStats{
		Schema:   schema,
		Dict:     dict,
		Opts:     wire.Opts,
		GlobalHH: wire.GlobalHH,
	}
	if ts.GlobalHH == nil {
		ts.GlobalHH = make(map[int][]uint32)
	}
	//lint:mapiter-ok validation only: any out-of-range key aborts with an error, no ordered output
	for ci := range ts.GlobalHH {
		if ci < 0 || ci >= schema.NumCols() {
			return nil, fmt.Errorf("stats: corrupt store: global heavy hitters for column %d, schema has %d columns",
				ci, schema.NumCols())
		}
	}
	for i, pw := range wire.Parts {
		if len(pw.Cols) != schema.NumCols() {
			return nil, fmt.Errorf("stats: corrupt store: partition entry %d has %d column sketch sets, schema has %d",
				i, len(pw.Cols), schema.NumCols())
		}
		if pw.Rows < 0 {
			return nil, fmt.Errorf("stats: corrupt store: partition entry %d has negative row count %d", i, pw.Rows)
		}
		ps := &PartitionStats{Part: pw.Part, Rows: pw.Rows, Bitmap: pw.Bitmap}
		if ps.Bitmap == nil {
			ps.Bitmap = make(map[int]uint32)
		}
		for _, cw := range pw.Cols {
			cs := ColumnStats{
				Measures: cw.Measures,
				Hist:     sketch.HistogramFromSnapshot(cw.Hist),
				AKMV:     sketch.AKMVFromSnapshot(cw.AKMV),
				HH:       sketch.HeavyHitterFromSnapshot(cw.HH),
			}
			if cw.Dict != nil {
				cs.Dict = sketch.ExactDictFromSnapshot(*cw.Dict)
			}
			ps.Cols = append(ps.Cols, cs)
		}
		ts.Parts = append(ts.Parts, ps)
	}
	ts.Space = newFeatureSpace(schema, ts.GlobalHH, ts.Opts)
	if len(wire.Scale) != 0 && len(wire.Scale) != ts.Space.Dim() {
		return nil, fmt.Errorf("stats: corrupt store: normalization scale has %d entries, feature space has %d",
			len(wire.Scale), ts.Space.Dim())
	}
	if len(wire.Scale) != 0 {
		ts.Space.Scale = wire.Scale
	}
	ts.base = ts.buildBaseMatrix()
	return ts, nil
}

// countingWriter tracks bytes written.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
