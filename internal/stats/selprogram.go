package stats

import (
	"math"
	"sort"

	"ps3/internal/query"
)

// This file is the compiled form of the selectivity estimator: the
// query-static half of featurization. selEstimator (selectivity.go) re-walks
// the predicate tree for every partition, resolving column names, building
// per-conjunction range maps and looking categorical values up in the table
// dictionary each time — all work that depends only on the query. A
// selProgram does that analysis once per query at compile time and keeps
// only the partition-varying work (histogram, dictionary-frequency and
// heavy-hitter lookups) in the per-partition eval, which runs with zero
// allocations.
//
// Determinism contract: eval mirrors selEstimator.evalNode operation for
// operation — same traversal order, same fold order (columns sorted by
// index, then remaining children in predicate order), same clamping — so the
// four selectivity features are bit-identical to the reference estimator.
// The equivalence is enforced by TestSelProgramMatchesReference.

// selKind discriminates compiled predicate nodes.
type selKind uint8

const (
	selKConst1    selKind = iota // unknown node type: selectivity 1
	selKClause                   // single clause
	selKNotClause                // NOT over a single clause
	selKNot                      // NOT over a general subtree
	selKAnd
	selKOr
)

// selProgram is a predicate compiled against one statistics store.
type selProgram struct {
	// always is set for nil predicates: every partition scores (1,1,1,1).
	always bool
	root   selCompiled
}

// selCompiled is one compiled predicate node.
type selCompiled struct {
	kind     selKind
	clause   selClauseC    // selKClause / selKNotClause
	cols     []selColRange // selKAnd: merged numeric per-column ranges
	children []selCompiled // selKAnd rest / selKOr / selKNot child
}

// selClauseC is a clause with its column resolved and categorical values
// translated to dictionary codes.
type selClauseC struct {
	ci      int // -1: unknown column, selectivity 1
	numeric bool
	op      query.Op
	num     float64
	// codes holds the dictionary code of each categorical value, or -1 for
	// values that exist nowhere in the table (frequency 0).
	codes []int64
}

// selColRange is the merged numeric constraint of one column inside a
// conjunction: bounds, equality points and inequality points, all
// query-static.
type selColRange struct {
	ci     int
	lo, hi float64
	eqs    []float64
	nes    []float64
}

// compileSel builds the program for pred; pred may be nil.
func (ts *TableStats) compileSel(pred query.Pred) *selProgram {
	if pred == nil {
		return &selProgram{always: true}
	}
	return &selProgram{root: ts.compileSelNode(pred)}
}

func (ts *TableStats) compileSelNode(p query.Pred) selCompiled {
	switch n := p.(type) {
	case *query.Clause:
		return selCompiled{kind: selKClause, clause: ts.compileSelClause(n)}
	case *query.Not:
		if c, ok := n.Child.(*query.Clause); ok {
			return selCompiled{kind: selKNotClause, clause: ts.compileSelClause(c)}
		}
		return selCompiled{kind: selKNot, children: []selCompiled{ts.compileSelNode(n.Child)}}
	case *query.And:
		return ts.compileSelAnd(n)
	case *query.Or:
		out := selCompiled{kind: selKOr, children: make([]selCompiled, 0, len(n.Children))}
		for _, c := range n.Children {
			out.children = append(out.children, ts.compileSelNode(c))
		}
		return out
	default:
		return selCompiled{kind: selKConst1}
	}
}

func (ts *TableStats) compileSelClause(c *query.Clause) selClauseC {
	cl := selClauseC{ci: ts.Schema.ColIndex(c.Col), op: c.Op, num: c.Num}
	if cl.ci < 0 {
		return cl
	}
	cl.numeric = ts.Schema.Col(cl.ci).IsNumeric()
	if !cl.numeric {
		cl.codes = make([]int64, len(c.Strs))
		for i, v := range c.Strs {
			if code, ok := ts.Dict.Lookup(v); ok {
				cl.codes[i] = int64(code)
			} else {
				cl.codes[i] = -1
			}
		}
	}
	return cl
}

// compileSelAnd mirrors selEstimator.evalAnd's query-static half: numeric
// clauses on known columns merge into per-column ranges (folded in ascending
// column order), everything else stays a child in predicate order.
func (ts *TableStats) compileSelAnd(n *query.And) selCompiled {
	out := selCompiled{kind: selKAnd}
	ranges := make(map[int]*selColRange)
	for _, child := range n.Children {
		c, ok := child.(*query.Clause)
		if !ok {
			out.children = append(out.children, ts.compileSelNode(child))
			continue
		}
		ci := ts.Schema.ColIndex(c.Col)
		if ci < 0 || !ts.Schema.Col(ci).IsNumeric() {
			out.children = append(out.children, ts.compileSelNode(child))
			continue
		}
		cr, ok := ranges[ci]
		if !ok {
			cr = &selColRange{ci: ci, lo: math.Inf(-1), hi: math.Inf(1)}
			ranges[ci] = cr
		}
		switch c.Op {
		case query.OpLt, query.OpLe:
			if c.Num < cr.hi {
				cr.hi = c.Num
			}
		case query.OpGt, query.OpGe:
			if c.Num > cr.lo {
				cr.lo = c.Num
			}
		case query.OpEq:
			cr.eqs = append(cr.eqs, c.Num)
		case query.OpNe:
			cr.nes = append(cr.nes, c.Num)
		}
	}
	cols := make([]int, 0, len(ranges))
	for ci := range ranges {
		cols = append(cols, ci)
	}
	sort.Ints(cols)
	for _, ci := range cols {
		out.cols = append(out.cols, *ranges[ci])
	}
	return out
}

// estimate returns (upper, indep, min, max) for one partition; the compiled
// counterpart of selEstimator.estimate.
func (sp *selProgram) estimate(ps *PartitionStats) (upper, indep, minS, maxS float64) {
	if sp.always {
		return 1, 1, 1, 1
	}
	node := sp.root.eval(ps)
	return node.upper, node.indep, node.minSel, node.maxSel
}

// foldAnd merges a child into a conjunction accumulator: upper = min,
// indep = product, min/max over children. Identical to the fold closure in
// selEstimator.evalAnd.
func (out *selNode) foldAnd(ch selNode) {
	if ch.upper < out.upper {
		out.upper = ch.upper
	}
	out.indep *= ch.indep
	if ch.minSel < out.minSel {
		out.minSel = ch.minSel
	}
	if ch.maxSel > out.maxSel {
		out.maxSel = ch.maxSel
	}
}

func (sc *selCompiled) eval(ps *PartitionStats) selNode {
	switch sc.kind {
	case selKClause:
		return leaf(sc.clause.sel(ps))
	case selKNotClause:
		return leaf(1 - sc.clause.sel(ps))
	case selKNot:
		child := sc.children[0].eval(ps)
		s := clamp01(1 - child.indep)
		// A sound upper bound for a general negation needs a lower bound on
		// the child, which we do not track; fall back to 1.
		return selNode{upper: 1, indep: s, minSel: s, maxSel: s}
	case selKAnd:
		return sc.evalAnd(ps)
	case selKOr:
		out := selNode{upper: 0, indep: 1, minSel: math.Inf(1), maxSel: 0}
		for i := range sc.children {
			ch := sc.children[i].eval(ps)
			out.upper += ch.upper
			if ch.indep < out.indep {
				out.indep = ch.indep
			}
			if ch.minSel < out.minSel {
				out.minSel = ch.minSel
			}
			if ch.maxSel > out.maxSel {
				out.maxSel = ch.maxSel
			}
		}
		out.upper = clamp01(out.upper)
		if math.IsInf(out.minSel, 1) {
			out.minSel = 0
		}
		if out.upper < out.maxSel {
			out.upper = out.maxSel
		}
		return out
	default:
		return leaf(1)
	}
}

func (sc *selCompiled) evalAnd(ps *PartitionStats) selNode {
	out := selNode{upper: 1, indep: 1, minSel: math.Inf(1), maxSel: 0}
	for i := range sc.cols {
		cr := &sc.cols[i]
		cs := &ps.Cols[cr.ci]
		var s float64
		switch {
		case len(cr.eqs) > 1:
			same := true
			for _, e := range cr.eqs[1:] {
				if e != cr.eqs[0] {
					same = false
					break
				}
			}
			if !same {
				s = 0
			} else if cr.eqs[0] < cr.lo || cr.eqs[0] > cr.hi {
				s = 0
			} else {
				s = cs.Hist.EstimateEq(cr.eqs[0])
			}
		case len(cr.eqs) == 1:
			if cr.eqs[0] < cr.lo || cr.eqs[0] > cr.hi {
				s = 0
			} else {
				s = cs.Hist.EstimateEq(cr.eqs[0])
			}
		default:
			s = cs.Hist.EstimateRange(cr.lo, cr.hi)
		}
		for _, ne := range cr.nes {
			s *= clamp01(1 - cs.Hist.EstimateEq(ne))
		}
		out.foldAnd(leaf(s))
	}
	for i := range sc.children {
		out.foldAnd(sc.children[i].eval(ps))
	}
	if math.IsInf(out.minSel, 1) {
		out.minSel = 1
	}
	if out.indep > out.upper {
		out.indep = out.upper
	}
	return out
}

// sel mirrors selEstimator.clauseSel on a compiled clause.
func (cl *selClauseC) sel(ps *PartitionStats) float64 {
	if cl.ci < 0 {
		return 1
	}
	cs := &ps.Cols[cl.ci]
	if cl.numeric {
		switch cl.op {
		case query.OpEq:
			return cs.Hist.EstimateEq(cl.num)
		case query.OpNe:
			return clamp01(1 - cs.Hist.EstimateEq(cl.num))
		case query.OpLt, query.OpLe:
			return cs.Hist.EstimateRange(math.Inf(-1), cl.num)
		case query.OpGt, query.OpGe:
			return cs.Hist.EstimateRange(cl.num, math.Inf(1))
		default:
			return 1
		}
	}
	var sum float64
	for _, code := range cl.codes {
		if code < 0 {
			// Value exists nowhere in the table: frequency 0 (adding 0 to a
			// non-negative sum is a bitwise no-op, so skipping it keeps sums
			// identical to the reference).
			continue
		}
		sum += catCodeFreq(cs, uint32(code))
	}
	sum = clamp01(sum)
	if cl.op == query.OpNe {
		return clamp01(1 - sum)
	}
	return sum
}

// catCodeFreq is catValueFreq with the dictionary lookup already done:
// exact dictionary first, then heavy hitters, then the 1/ndv fallback that
// never returns 0 (preserving perfect recall of selectivity_upper).
func catCodeFreq(cs *ColumnStats, code uint32) float64 {
	if f, ok := cs.Dict.Freq(code); ok {
		return f
	}
	for _, item := range cs.HH.Items() {
		if item.ID == uint64(code) {
			return item.Freq
		}
	}
	ndv := cs.AKMV.DistinctEstimate()
	if ndv < 1 {
		ndv = 1
	}
	return 1 / ndv
}
