package stats

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ps3/internal/query"
	"ps3/internal/table"
)

// buildTestTable creates a small table with one numeric column "x"
// (partition i holds values centered at i*10), one positive numeric column
// "y", and one categorical column "cat" whose value distribution varies per
// partition: partition 0 holds only "rare"; the rest mix "a" and "b".
func buildTestTable(t testing.TB, parts, rowsPer int) *table.Table {
	t.Helper()
	schema := table.MustSchema(
		table.Column{Name: "x", Kind: table.Numeric},
		table.Column{Name: "y", Kind: table.Numeric, Positive: true},
		table.Column{Name: "cat", Kind: table.Categorical},
	)
	b, err := table.NewBuilder(schema, rowsPer)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for p := 0; p < parts; p++ {
		for r := 0; r < rowsPer; r++ {
			x := float64(p*10) + rng.Float64()
			y := 1 + rng.Float64()*5
			cat := "a"
			if p == 0 {
				cat = "rare"
			} else if r%3 == 0 {
				cat = "b"
			}
			if err := b.Append([]float64{x, y, 0}, []string{"", "", cat}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return b.Finish()
}

func buildStats(t testing.TB, tbl *table.Table) *TableStats {
	t.Helper()
	ts, err := Build(tbl, Options{GroupableCols: []string{"cat"}})
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestBuildRejectsUnknownGroupableColumn(t *testing.T) {
	tbl := buildTestTable(t, 2, 10)
	if _, err := Build(tbl, Options{GroupableCols: []string{"nope"}}); err == nil {
		t.Fatal("want error for unknown groupable column")
	}
}

func TestBuildProducesStatsPerPartition(t *testing.T) {
	tbl := buildTestTable(t, 5, 20)
	ts := buildStats(t, tbl)
	if len(ts.Parts) != 5 {
		t.Fatalf("got %d partition stats, want 5", len(ts.Parts))
	}
	for i, ps := range ts.Parts {
		if ps.Rows != 20 {
			t.Fatalf("partition %d reports %d rows, want 20", i, ps.Rows)
		}
		if len(ps.Cols) != 3 {
			t.Fatalf("partition %d has %d column stats, want 3", i, len(ps.Cols))
		}
		// Numeric columns carry measures; categorical does not.
		if ps.Cols[0].Measures == nil || ps.Cols[1].Measures == nil {
			t.Fatalf("partition %d missing measures on numeric columns", i)
		}
		if ps.Cols[2].Measures != nil {
			t.Fatalf("partition %d has measures on a categorical column", i)
		}
		if ps.Cols[2].Dict == nil {
			t.Fatalf("partition %d missing exact dict on categorical column", i)
		}
	}
}

func TestMeasuresMatchData(t *testing.T) {
	tbl := buildTestTable(t, 3, 50)
	ts := buildStats(t, tbl)
	// Partition 2's x values are in [20, 21).
	m := ts.Parts[2].Cols[0].Measures
	if m.Min < 20 || m.Max >= 21 {
		t.Fatalf("partition 2 x range [%v, %v], want within [20,21)", m.Min, m.Max)
	}
	if mean := m.Mean(); mean < 20 || mean > 21 {
		t.Fatalf("partition 2 x mean %v out of range", mean)
	}
}

func TestGlobalHeavyHittersRanked(t *testing.T) {
	tbl := buildTestTable(t, 6, 30)
	ts := buildStats(t, tbl)
	ci := tbl.Schema.ColIndex("cat")
	hh := ts.GlobalHH[ci]
	if len(hh) == 0 {
		t.Fatal("no global heavy hitters for groupable column")
	}
	// "a" dominates the dataset → must be the first (most frequent) hitter.
	if got := tbl.Dict.Value(hh[0]); got != "a" {
		t.Fatalf("top global HH = %q, want \"a\"", got)
	}
}

func TestOccurrenceBitmapsDifferentiateRarePartition(t *testing.T) {
	tbl := buildTestTable(t, 6, 30)
	ts := buildStats(t, tbl)
	ci := tbl.Schema.ColIndex("cat")
	bm0 := ts.Parts[0].Bitmap[ci]
	bm1 := ts.Parts[1].Bitmap[ci]
	if bm0 == bm1 {
		t.Fatalf("partition 0 (only \"rare\") and partition 1 share bitmap %b", bm0)
	}
}

func TestFeatureSpaceLayout(t *testing.T) {
	tbl := buildTestTable(t, 4, 20)
	ts := buildStats(t, tbl)
	fs := ts.Space
	// 4 selectivity + 3 cols × 17 + bitmap bits.
	wantMin := 4 + 3*17
	if fs.Dim() < wantMin {
		t.Fatalf("feature dim %d < structural minimum %d", fs.Dim(), wantMin)
	}
	u, i, mn, mx := fs.SelectivitySlots()
	if u != 0 || i != 1 || mn != 2 || mx != 3 {
		t.Fatalf("selectivity slots = %d,%d,%d,%d", u, i, mn, mx)
	}
	for j, meta := range fs.Meta {
		if meta.Col >= 3 {
			t.Fatalf("meta[%d] references column %d beyond schema", j, meta.Col)
		}
	}
}

func TestFeaturesMaskUnusedColumns(t *testing.T) {
	tbl := buildTestTable(t, 4, 20)
	ts := buildStats(t, tbl)
	// Query uses only column x.
	q := &query.Query{Aggs: []query.Aggregate{{Kind: query.Sum, Expr: query.Col("x")}}}
	rows := ts.Features(q)
	if len(rows) != 4 {
		t.Fatalf("got %d feature rows, want 4", len(rows))
	}
	xIdx := tbl.Schema.ColIndex("x")
	for _, row := range rows {
		for j, meta := range ts.Space.Meta {
			if meta.Col >= 0 && meta.Col != xIdx && row[j] != 0 {
				t.Fatalf("feature %d (col %d, kind %v) not masked: %v", j, meta.Col, meta.Kind, row[j])
			}
		}
	}
}

func TestFeaturesNoPredicateSelectivityIsOne(t *testing.T) {
	tbl := buildTestTable(t, 4, 20)
	ts := buildStats(t, tbl)
	q := &query.Query{Aggs: []query.Aggregate{{Kind: query.Count}}}
	rows := ts.Features(q)
	for i, row := range rows {
		if row[0] != 1 || row[1] != 1 {
			t.Fatalf("partition %d selectivity upper/indep = %v/%v, want 1/1 with no predicate", i, row[0], row[1])
		}
	}
}

func TestSelectivityUpperPerfectRecall(t *testing.T) {
	// §3.2: selectivity_upper > 0 must never be false-negative. Check across
	// many random predicates against exact per-partition pass counts.
	tbl := buildTestTable(t, 8, 40)
	ts := buildStats(t, tbl)
	gen, err := query.NewGenerator(query.Workload{
		GroupableCols: []string{"cat"},
		PredicateCols: []string{"x", "y", "cat"},
		AggCols:       []string{"x", "y"},
	}, tbl, 99)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 60; trial++ {
		q := gen.Sample()
		c, err := query.Compile(q, tbl)
		if err != nil {
			t.Fatal(err)
		}
		rows := ts.Features(q)
		_, perPart := c.GroundTruth(tbl)
		for i, pa := range perPart {
			hasRows := pa.NumGroups() > 0
			if hasRows && rows[i][0] <= 0 {
				t.Fatalf("query %v: partition %d has matching rows but selectivity_upper = %v",
					q, i, rows[i][0])
			}
		}
	}
}

func TestSelectivityOrderingInvariants(t *testing.T) {
	// min ≤ indep ≤ upper and all within [0,1] for random predicates.
	tbl := buildTestTable(t, 6, 40)
	ts := buildStats(t, tbl)
	gen, err := query.NewGenerator(query.Workload{
		GroupableCols: []string{"cat"},
		PredicateCols: []string{"x", "y", "cat"},
		AggCols:       []string{"x"},
	}, tbl, 5)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 80; trial++ {
		q := gen.Sample()
		if q.Pred == nil {
			continue
		}
		rows := ts.Features(q)
		for i, row := range rows {
			up, ind, mn, mx := row[0], row[1], row[2], row[3]
			for slot, v := range []float64{up, ind, mn, mx} {
				if v < 0 || v > 1 || math.IsNaN(v) {
					t.Fatalf("query %v partition %d selectivity slot %d out of [0,1]: %v", q, i, slot, v)
				}
			}
			if mn > mx+1e-12 {
				t.Fatalf("query %v partition %d: selectivity_min %v > selectivity_max %v", q, i, mn, mx)
			}
		}
	}
}

func TestNormalizeWithoutFitAppliesTransformOnly(t *testing.T) {
	tbl := buildTestTable(t, 3, 10)
	ts := buildStats(t, tbl)
	raw := make([]float64, ts.Space.Dim())
	raw[0] = 0.8 // selectivity slot → cube root
	raw[4] = 100 // measure slot → log1p
	got := ts.Space.Normalize(raw)
	if math.Abs(got[0]-math.Cbrt(0.8)) > 1e-12 {
		t.Fatalf("selectivity transform = %v, want cbrt", got[0])
	}
	if math.Abs(got[4]-math.Log1p(100)) > 1e-12 {
		t.Fatalf("measure transform = %v, want log1p", got[4])
	}
}

func TestNormalizeNegativeValuesSignedLog(t *testing.T) {
	tbl := buildTestTable(t, 3, 10)
	ts := buildStats(t, tbl)
	raw := make([]float64, ts.Space.Dim())
	raw[4] = -100
	got := ts.Space.Normalize(raw)
	if math.Abs(got[4]+math.Log1p(100)) > 1e-12 {
		t.Fatalf("negative transform = %v, want -log1p(100)", got[4])
	}
}

func TestFitScalesFeatures(t *testing.T) {
	tbl := buildTestTable(t, 6, 30)
	ts := buildStats(t, tbl)
	q := &query.Query{Aggs: []query.Aggregate{{Kind: query.Sum, Expr: query.Col("x")}}}
	rows := ts.Features(q)
	ts.Space.Fit(rows)
	if ts.Space.Scale == nil {
		t.Fatal("Fit did not set Scale")
	}
	for j, s := range ts.Space.Scale {
		if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			t.Fatalf("scale[%d] = %v", j, s)
		}
	}
	// Paper normalization: each feature divided by its training average, so
	// the normalized mean magnitude of an active feature is ≈1.
	xIdx := tbl.Schema.ColIndex("x")
	slot := -1
	for j, meta := range ts.Space.Meta {
		if meta.Col == xIdx && meta.Kind == KMean {
			slot = j
		}
	}
	if slot < 0 {
		t.Fatal("x mean slot not found")
	}
	var sumAbs float64
	for _, r := range rows {
		sumAbs += math.Abs(ts.Space.Normalize(r)[slot])
	}
	if mean := sumAbs / float64(len(rows)); math.Abs(mean-1) > 1e-9 {
		t.Fatalf("normalized x-mean magnitude = %v, want 1", mean)
	}
}

func TestSizesPositiveAndAdditive(t *testing.T) {
	tbl := buildTestTable(t, 5, 40)
	ts := buildStats(t, tbl)
	b := ts.Sizes()
	if b.Total <= 0 || b.Histogram <= 0 || b.HH <= 0 || b.AKMV <= 0 || b.Measure <= 0 {
		t.Fatalf("size breakdown has non-positive entries: %+v", b)
	}
	if math.Abs(b.Total-(b.Histogram+b.HH+b.AKMV+b.Measure)) > 1e-9 {
		t.Fatalf("total %v != sum of parts %+v", b.Total, b)
	}
}

func TestKindStringAndCategoryTotal(t *testing.T) {
	for _, k := range AllKinds() {
		if k.String() == "" {
			t.Fatalf("kind %d has empty name", k)
		}
		c := CategoryOf(k)
		if c.String() == "" {
			t.Fatalf("category of %v has empty name", k)
		}
	}
	if len(AllKinds()) != int(numKinds) {
		t.Fatalf("AllKinds returned %d kinds, want %d", len(AllKinds()), numKinds)
	}
}

func TestCategoryAssignments(t *testing.T) {
	cases := map[Kind]Category{
		KSelUpper: CatSelectivity,
		KSelMax:   CatSelectivity,
		KBitmap:   CatHH,
		KNumHH:    CatHH,
		KNumDV:    CatDV,
		KSumDV:    CatDV,
		KMean:     CatMeasure,
		KLogMax:   CatMeasure,
	}
	for k, want := range cases {
		if got := CategoryOf(k); got != want {
			t.Fatalf("CategoryOf(%v) = %v, want %v", k, got, want)
		}
	}
}

func TestIdenticalPartitionsGetIdenticalFeatures(t *testing.T) {
	// Two partitions with identical content must produce identical feature
	// vectors (§4.2: identical partitions have identical summary statistics).
	schema := table.MustSchema(
		table.Column{Name: "v", Kind: table.Numeric},
		table.Column{Name: "c", Kind: table.Categorical},
	)
	b, err := table.NewBuilder(schema, 10)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 2; p++ {
		for r := 0; r < 10; r++ {
			if err := b.Append([]float64{float64(r), 0}, []string{"", fmt.Sprint(r % 3)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	tbl := b.Finish()
	ts, err := Build(tbl, Options{GroupableCols: []string{"c"}})
	if err != nil {
		t.Fatal(err)
	}
	q := &query.Query{
		Aggs: []query.Aggregate{{Kind: query.Sum, Expr: query.Col("v")}},
		Pred: &query.Clause{Col: "v", Op: query.OpGe, Num: 3},
	}
	rows := ts.Features(q)
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for j := range rows[0] {
		if rows[0][j] != rows[1][j] {
			t.Fatalf("identical partitions differ at feature %d (%v): %v vs %v",
				j, ts.Space.Meta[j].Kind, rows[0][j], rows[1][j])
		}
	}
}

func TestFeatureMatrixDimensionsProperty(t *testing.T) {
	tbl := buildTestTable(t, 5, 20)
	ts := buildStats(t, tbl)
	gen, err := query.NewGenerator(query.Workload{
		GroupableCols: []string{"cat"},
		PredicateCols: []string{"x", "y", "cat"},
		AggCols:       []string{"x", "y"},
	}, tbl, 3)
	if err != nil {
		t.Fatal(err)
	}
	f := func(n uint8) bool {
		q := gen.Sample()
		rows := ts.Features(q)
		if len(rows) != 5 {
			return false
		}
		for _, r := range rows {
			if len(r) != ts.Space.Dim() {
				return false
			}
			for _, v := range r {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildParallelismMatchesSerial(t *testing.T) {
	tbl := buildTestTable(t, 8, 25)
	a, err := Build(tbl, Options{GroupableCols: []string{"cat"}, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(tbl, Options{GroupableCols: []string{"cat"}, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	q := &query.Query{Aggs: []query.Aggregate{{Kind: query.Count}}, GroupBy: []string{"cat"}}
	ra, rb := a.Features(q), b.Features(q)
	for i := range ra {
		for j := range ra[i] {
			if ra[i][j] != rb[i][j] {
				t.Fatalf("parallel build differs at part %d feature %d", i, j)
			}
		}
	}
}
