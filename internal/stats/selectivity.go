package stats

import (
	"math"
	"sort"

	"ps3/internal/query"
)

// selEstimator evaluates a query predicate against per-partition sketches to
// produce the four selectivity features of §3.2:
//
//	selectivity_upper — sound upper bound (perfect recall as a 0/!0 filter)
//	selectivity_indep — estimate assuming clause independence
//	selectivity_min / selectivity_max — min and max over individual clauses
//
// Clauses over the same column inside a conjunction are evaluated jointly by
// intersecting their ranges against the column histogram.
type selEstimator struct {
	ts   *TableStats
	pred query.Pred
}

func newSelEstimator(ts *TableStats, pred query.Pred) *selEstimator {
	return &selEstimator{ts: ts, pred: pred}
}

// estimate returns (upper, indep, min, max) for one partition.
func (se *selEstimator) estimate(ps *PartitionStats) (upper, indep, minS, maxS float64) {
	if se.pred == nil {
		return 1, 1, 1, 1
	}
	node := se.evalNode(se.pred, ps)
	return node.upper, node.indep, node.minSel, node.maxSel
}

// selNode carries the four statistics through the recursive evaluation.
type selNode struct {
	upper, indep   float64
	minSel, maxSel float64
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func leaf(s float64) selNode {
	s = clamp01(s)
	return selNode{upper: s, indep: s, minSel: s, maxSel: s}
}

func (se *selEstimator) evalNode(p query.Pred, ps *PartitionStats) selNode {
	switch n := p.(type) {
	case *query.Clause:
		return leaf(se.clauseSel(n, ps))
	case *query.Not:
		if c, ok := n.Child.(*query.Clause); ok {
			return leaf(1 - se.clauseSel(c, ps))
		}
		child := se.evalNode(n.Child, ps)
		s := clamp01(1 - child.indep)
		// A sound upper bound for a general negation needs a lower bound on
		// the child, which we do not track; fall back to 1.
		return selNode{upper: 1, indep: s, minSel: s, maxSel: s}
	case *query.And:
		return se.evalAnd(n, ps)
	case *query.Or:
		out := selNode{upper: 0, indep: 1, minSel: math.Inf(1), maxSel: 0}
		for _, c := range n.Children {
			ch := se.evalNode(c, ps)
			// For ORs: upper = min(1, Σ uppers); indep = min of the
			// children (following §3.2 verbatim).
			out.upper += ch.upper
			if ch.indep < out.indep {
				out.indep = ch.indep
			}
			if ch.minSel < out.minSel {
				out.minSel = ch.minSel
			}
			if ch.maxSel > out.maxSel {
				out.maxSel = ch.maxSel
			}
		}
		out.upper = clamp01(out.upper)
		if math.IsInf(out.minSel, 1) {
			out.minSel = 0
		}
		// An OR is at least as selective as its most selective child; keep
		// upper sound by also lower-bounding it with maxSel's upper.
		if out.upper < out.maxSel {
			out.upper = out.maxSel
		}
		return out
	default:
		return leaf(1)
	}
}

// evalAnd merges numeric clauses per column into joint range estimates, then
// combines with the remaining children: upper = min, indep = product.
func (se *selEstimator) evalAnd(n *query.And, ps *PartitionStats) selNode {
	type colRange struct {
		lo, hi  float64
		eqs     []float64 // equality points
		nes     []float64 // inequality points
		clauses int
	}
	ranges := make(map[int]*colRange)
	var rest []query.Pred
	for _, child := range n.Children {
		c, ok := child.(*query.Clause)
		if !ok {
			rest = append(rest, child)
			continue
		}
		ci := se.ts.Schema.ColIndex(c.Col)
		if ci < 0 || !se.ts.Schema.Col(ci).IsNumeric() {
			rest = append(rest, child)
			continue
		}
		cr, ok := ranges[ci]
		if !ok {
			cr = &colRange{lo: math.Inf(-1), hi: math.Inf(1)}
			ranges[ci] = cr
		}
		cr.clauses++
		switch c.Op {
		case query.OpLt, query.OpLe:
			if c.Num < cr.hi {
				cr.hi = c.Num
			}
		case query.OpGt, query.OpGe:
			if c.Num > cr.lo {
				cr.lo = c.Num
			}
		case query.OpEq:
			cr.eqs = append(cr.eqs, c.Num)
		case query.OpNe:
			cr.nes = append(cr.nes, c.Num)
		}
	}

	out := selNode{upper: 1, indep: 1, minSel: math.Inf(1), maxSel: 0}
	fold := func(ch selNode) {
		if ch.upper < out.upper {
			out.upper = ch.upper
		}
		out.indep *= ch.indep
		if ch.minSel < out.minSel {
			out.minSel = ch.minSel
		}
		if ch.maxSel > out.maxSel {
			out.maxSel = ch.maxSel
		}
	}
	// Fold columns in schema order: indep is a float product, so the merge
	// order must not depend on map iteration for features to be
	// deterministic.
	cols := make([]int, 0, len(ranges))
	for ci := range ranges {
		cols = append(cols, ci)
	}
	sort.Ints(cols)
	for _, ci := range cols {
		cr := ranges[ci]
		cs := &ps.Cols[ci]
		var s float64
		switch {
		case len(cr.eqs) > 1:
			// Two different equality points conflict.
			same := true
			for _, e := range cr.eqs[1:] {
				if e != cr.eqs[0] {
					same = false
					break
				}
			}
			if !same {
				s = 0
			} else if cr.eqs[0] < cr.lo || cr.eqs[0] > cr.hi {
				s = 0
			} else {
				s = cs.Hist.EstimateEq(cr.eqs[0])
			}
		case len(cr.eqs) == 1:
			if cr.eqs[0] < cr.lo || cr.eqs[0] > cr.hi {
				s = 0
			} else {
				s = cs.Hist.EstimateEq(cr.eqs[0])
			}
		default:
			s = cs.Hist.EstimateRange(cr.lo, cr.hi)
		}
		for _, ne := range cr.nes {
			s *= clamp01(1 - cs.Hist.EstimateEq(ne))
		}
		fold(leaf(s))
	}
	for _, child := range rest {
		fold(se.evalNode(child, ps))
	}
	if math.IsInf(out.minSel, 1) {
		out.minSel = 1
	}
	// Independence estimate can never exceed the upper bound.
	if out.indep > out.upper {
		out.indep = out.upper
	}
	return out
}

// clauseSel estimates the selectivity of a single clause on one partition.
func (se *selEstimator) clauseSel(c *query.Clause, ps *PartitionStats) float64 {
	ci := se.ts.Schema.ColIndex(c.Col)
	if ci < 0 {
		return 1
	}
	cs := &ps.Cols[ci]
	if se.ts.Schema.Col(ci).IsNumeric() {
		switch c.Op {
		case query.OpEq:
			return cs.Hist.EstimateEq(c.Num)
		case query.OpNe:
			return clamp01(1 - cs.Hist.EstimateEq(c.Num))
		case query.OpLt, query.OpLe:
			return cs.Hist.EstimateRange(math.Inf(-1), c.Num)
		case query.OpGt, query.OpGe:
			return cs.Hist.EstimateRange(c.Num, math.Inf(1))
		default:
			return 1
		}
	}
	// Categorical clause: sum per-value frequencies.
	var sum float64
	for _, v := range c.Strs {
		sum += se.catValueFreq(cs, v)
	}
	sum = clamp01(sum)
	if c.Op == query.OpNe {
		return clamp01(1 - sum)
	}
	return sum
}

// catValueFreq estimates the fraction of partition rows equal to value v:
// dictionary lookup, then the shared per-partition frequency chain
// (catCodeFreq in selprogram.go) used by both the reference estimator and
// the compiled program.
func (se *selEstimator) catValueFreq(cs *ColumnStats, v string) float64 {
	code, ok := se.ts.Dict.Lookup(v)
	if !ok {
		// Value does not exist anywhere in the table.
		return 0
	}
	return catCodeFreq(cs, code)
}
