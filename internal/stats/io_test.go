package stats

import (
	"bytes"
	"testing"

	"ps3/internal/query"
)

func TestStatsRoundTrip(t *testing.T) {
	tbl := buildTestTable(t, 6, 30)
	orig := buildStats(t, tbl)

	// Fit normalization so Scale round-trips too.
	q := &query.Query{
		Aggs:    []query.Aggregate{{Kind: query.Sum, Expr: query.Col("x")}},
		GroupBy: []string{"cat"},
	}
	orig.Space.Fit(orig.Features(q))

	var buf bytes.Buffer
	n, err := orig.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}

	back, err := ReadStats(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Parts) != len(orig.Parts) {
		t.Fatalf("round trip: %d parts, want %d", len(back.Parts), len(orig.Parts))
	}
	if back.Space.Dim() != orig.Space.Dim() {
		t.Fatalf("round trip: dim %d, want %d", back.Space.Dim(), orig.Space.Dim())
	}

	// The restored store must produce byte-identical feature matrices for
	// arbitrary queries — that is what the picker consumes.
	gen, err := query.NewGenerator(query.Workload{
		GroupableCols: []string{"cat"},
		PredicateCols: []string{"x", "y", "cat"},
		AggCols:       []string{"x", "y"},
	}, tbl, 77)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 25; trial++ {
		tq := gen.Sample()
		fo := orig.Features(tq)
		fb := back.Features(tq)
		for i := range fo {
			for j := range fo[i] {
				if fo[i][j] != fb[i][j] {
					t.Fatalf("query %v: feature [%d][%d] differs after round trip: %v vs %v",
						tq, i, j, fo[i][j], fb[i][j])
				}
			}
		}
	}

	// Normalization survives.
	row := orig.Features(q)[0]
	no := orig.Space.Normalize(row)
	nb := back.Space.Normalize(row)
	for j := range no {
		if no[j] != nb[j] {
			t.Fatalf("normalized feature %d differs: %v vs %v", j, no[j], nb[j])
		}
	}

	// Sizes (Table 4 accounting) survive.
	so, sb := orig.Sizes(), back.Sizes()
	if so != sb {
		t.Fatalf("size breakdown changed: %+v vs %+v", so, sb)
	}
}

func TestReadStatsGarbage(t *testing.T) {
	if _, err := ReadStats(bytes.NewReader([]byte("not a stats store"))); err == nil {
		t.Fatal("want error decoding garbage")
	}
}

func TestStatsRoundTripWithoutFit(t *testing.T) {
	tbl := buildTestTable(t, 3, 15)
	orig := buildStats(t, tbl)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadStats(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Space.Scale != nil {
		t.Fatalf("unfitted store came back with scale %v", back.Space.Scale)
	}
}
