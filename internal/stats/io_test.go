package stats

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"

	"ps3/internal/query"
	"ps3/internal/table"
)

func TestStatsRoundTrip(t *testing.T) {
	tbl := buildTestTable(t, 6, 30)
	orig := buildStats(t, tbl)

	// Fit normalization so Scale round-trips too.
	q := &query.Query{
		Aggs:    []query.Aggregate{{Kind: query.Sum, Expr: query.Col("x")}},
		GroupBy: []string{"cat"},
	}
	orig.Space.Fit(orig.Features(q))

	var buf bytes.Buffer
	n, err := orig.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}

	back, err := ReadStats(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Parts) != len(orig.Parts) {
		t.Fatalf("round trip: %d parts, want %d", len(back.Parts), len(orig.Parts))
	}
	if back.Space.Dim() != orig.Space.Dim() {
		t.Fatalf("round trip: dim %d, want %d", back.Space.Dim(), orig.Space.Dim())
	}

	// The restored store must produce byte-identical feature matrices for
	// arbitrary queries — that is what the picker consumes.
	gen, err := query.NewGenerator(query.Workload{
		GroupableCols: []string{"cat"},
		PredicateCols: []string{"x", "y", "cat"},
		AggCols:       []string{"x", "y"},
	}, tbl, 77)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 25; trial++ {
		tq := gen.Sample()
		fo := orig.Features(tq)
		fb := back.Features(tq)
		for i := range fo {
			for j := range fo[i] {
				if fo[i][j] != fb[i][j] {
					t.Fatalf("query %v: feature [%d][%d] differs after round trip: %v vs %v",
						tq, i, j, fo[i][j], fb[i][j])
				}
			}
		}
	}

	// Normalization survives.
	row := orig.Features(q)[0]
	no := orig.Space.Normalize(row)
	nb := back.Space.Normalize(row)
	for j := range no {
		if no[j] != nb[j] {
			t.Fatalf("normalized feature %d differs: %v vs %v", j, no[j], nb[j])
		}
	}

	// Sizes (Table 4 accounting) survive.
	so, sb := orig.Sizes(), back.Sizes()
	if so != sb {
		t.Fatalf("size breakdown changed: %+v vs %+v", so, sb)
	}
}

func TestReadStatsGarbage(t *testing.T) {
	if _, err := ReadStats(bytes.NewReader([]byte("not a stats store"))); err == nil {
		t.Fatal("want error decoding garbage")
	}
}

// mutateWire round-trips a valid store through its wire form, applies a
// corruption, and re-encodes — the shape of every decode-validation test.
func mutateWire(t *testing.T, ts *TableStats, mutate func(*statsWire)) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if _, err := ts.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var wire statsWire
	if err := gob.NewDecoder(&buf).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	mutate(&wire)
	var out bytes.Buffer
	if err := gob.NewEncoder(&out).Encode(&wire); err != nil {
		t.Fatal(err)
	}
	return &out
}

func TestReadStatsRejectsCorruption(t *testing.T) {
	tbl := buildTestTable(t, 4, 20)
	ts := buildStats(t, tbl)
	q := &query.Query{
		Aggs:    []query.Aggregate{{Kind: query.Sum, Expr: query.Col("x")}},
		GroupBy: []string{"cat"},
	}
	ts.Space.Fit(ts.Features(q))

	cases := []struct {
		name   string
		mutate func(*statsWire)
		msg    string
	}{
		{"scale length mismatch", func(w *statsWire) {
			w.Scale = w.Scale[:3]
		}, "normalization scale"},
		{"column sketch count mismatch", func(w *statsWire) {
			w.Parts[0].Cols = w.Parts[0].Cols[:1]
		}, "column sketch sets"},
		{"negative partition rows", func(w *statsWire) {
			w.Parts[1].Rows = -5
		}, "negative row count"},
		{"global hh column out of range", func(w *statsWire) {
			w.GlobalHH[99] = []uint32{1, 2}
		}, "schema has"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadStats(mutateWire(t, ts, c.mutate))
			if err == nil {
				t.Fatal("want error for corrupted stats store")
			}
			if !strings.Contains(err.Error(), c.msg) {
				t.Fatalf("error %q does not mention %q", err, c.msg)
			}
		})
	}
}

// TestStatsRoundTripDegenerateStore covers the gob empty-map pitfall: a
// store with no groupable columns has empty GlobalHH and Bitmap maps, which
// gob decodes as nil. The reader must re-materialize them so downstream
// bitmap writes and lookups see maps, not nil.
func TestStatsRoundTripDegenerateStore(t *testing.T) {
	tbl := buildTestTable(t, 3, 10)
	ts, err := Build(tbl, Options{}) // no groupable columns
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ts.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadStats(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.GlobalHH == nil {
		t.Fatal("GlobalHH decoded as nil map")
	}
	for i, ps := range back.Parts {
		if ps.Bitmap == nil {
			t.Fatalf("partition %d Bitmap decoded as nil map", i)
		}
	}
	if back.Space.Dim() != ts.Space.Dim() {
		t.Fatalf("degenerate store dim %d, want %d", back.Space.Dim(), ts.Space.Dim())
	}
	// Feature extraction still works end to end.
	q := &query.Query{Aggs: []query.Aggregate{{Kind: query.Count}}}
	if got, want := len(back.Features(q)), len(tbl.Parts); got != want {
		t.Fatalf("features for %d partitions, want %d", got, want)
	}
}

// FuzzReadStats feeds arbitrary bytes to the decoder: every accepted store
// must support the full planning surface (feature extraction, sizes) without
// panicking — the decoder's validation is the only guard, since the wire
// data never reaches the builder's invariants.
func FuzzReadStats(f *testing.F) {
	schema := table.MustSchema(
		table.Column{Name: "x", Kind: table.Numeric},
		table.Column{Name: "y", Kind: table.Numeric, Positive: true},
		table.Column{Name: "cat", Kind: table.Categorical},
	)
	b, err := table.NewBuilder(schema, 10)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		cat := "a"
		if i%4 == 0 {
			cat = "b"
		}
		if err := b.Append([]float64{float64(i), 1 + float64(i%5), 0}, []string{"", "", cat}); err != nil {
			f.Fatal(err)
		}
	}
	ts, err := Build(b.Finish(), Options{GroupableCols: []string{"cat"}})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ts.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("garbage"))
	f.Add([]byte{})
	mut := append([]byte(nil), valid...)
	for i := len(mut) / 3; i < len(mut)/3+8 && i < len(mut); i++ {
		mut[i] ^= 0x55
	}
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		back, err := ReadStats(bytes.NewReader(data))
		if err != nil {
			return
		}
		_ = back.Sizes()
		q := &query.Query{Aggs: []query.Aggregate{{Kind: query.Count}}}
		feats := back.Features(q)
		for _, row := range feats {
			_ = back.Space.Normalize(row)
		}
	})
}

func TestStatsRoundTripWithoutFit(t *testing.T) {
	tbl := buildTestTable(t, 3, 15)
	orig := buildStats(t, tbl)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadStats(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Space.Scale != nil {
		t.Fatalf("unfitted store came back with scale %v", back.Space.Scale)
	}
}
