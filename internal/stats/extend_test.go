package stats

import (
	"reflect"
	"testing"

	"ps3/internal/dataset"
	"ps3/internal/table"
)

// extendFixture builds stats over the first split partitions of a dataset
// table and hands back the remaining partitions (whose IDs are already the
// global positions the extension requires).
func extendFixture(t *testing.T, split int) (*TableStats, []*table.Partition, *table.Table) {
	t.Helper()
	ds, err := dataset.Aria(dataset.Config{Rows: 6000, Parts: 12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	base := &table.Table{Schema: ds.Table.Schema, Dict: ds.Table.Dict, Parts: ds.Table.Parts[:split]}
	ts, err := Build(base, Options{GroupableCols: ds.Workload.GroupableCols})
	if err != nil {
		t.Fatal(err)
	}
	return ts, ds.Table.Parts[split:], ds.Table
}

// TestExtendedWithSharesBase pins the sharing contract: old partition
// sketches by pointer, the fitted feature space and frozen global heavy
// hitters by identity, and the base matrix extended without retouching the
// existing rows.
func TestExtendedWithSharesBase(t *testing.T) {
	ts, rest, _ := extendFixture(t, 8)
	ext, err := ts.ExtendedWith(nil, rest, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ext.Parts) != len(ts.Parts)+len(rest) {
		t.Fatalf("extension has %d partitions, want %d", len(ext.Parts), len(ts.Parts)+len(rest))
	}
	for i := range ts.Parts {
		if ext.Parts[i] != ts.Parts[i] {
			t.Fatalf("partition %d stats were copied, want shared pointer", i)
		}
	}
	if ext.Space != ts.Space {
		t.Fatal("feature space must be shared by identity (picker rebind depends on it)")
	}
	if !reflect.DeepEqual(ext.GlobalHH, ts.GlobalHH) {
		t.Fatal("global heavy hitters must stay frozen at the base build")
	}
	m := ts.Space.Dim()
	if !reflect.DeepEqual(ext.base[:len(ts.Parts)*m], ts.base) {
		t.Fatal("existing base-matrix rows changed during extension")
	}
	if len(ext.base) != len(ext.Parts)*m {
		t.Fatalf("base matrix has %d values, want %d", len(ext.base), len(ext.Parts)*m)
	}
	// ts itself untouched.
	if len(ts.Parts) != 8 || len(ts.base) != 8*m {
		t.Fatal("extension mutated the receiver")
	}
}

// TestExtendedWithIncrementalConsistency: extending one partition at a time
// must land bit-identically with extending all at once — the property that
// lets the ingest pipeline cut segments at arbitrary flush boundaries.
func TestExtendedWithIncrementalConsistency(t *testing.T) {
	ts, rest, _ := extendFixture(t, 8)
	all, err := ts.ExtendedWith(nil, rest, 0)
	if err != nil {
		t.Fatal(err)
	}
	step := ts
	for _, p := range rest {
		if step, err = step.ExtendedWith(nil, []*table.Partition{p}, 1); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(step.base, all.base) {
		t.Fatal("one-at-a-time extension diverges from all-at-once in the base matrix")
	}
	for i := range all.Parts {
		if !reflect.DeepEqual(step.Parts[i].Bitmap, all.Parts[i].Bitmap) {
			t.Fatalf("partition %d bitmap diverges between extension orders", i)
		}
	}
}

// TestExtendedWithDuplicatePartition: re-appending a copy of an existing
// partition must reproduce its feature row and bitmap exactly — sketches
// and features are functions of the rows and the frozen global state only.
func TestExtendedWithDuplicatePartition(t *testing.T) {
	ts, _, full := extendFixture(t, 8)
	dup := *full.Parts[3]
	dup.ID = len(ts.Parts)
	ext, err := ts.ExtendedWith(nil, []*table.Partition{&dup}, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := ts.Space.Dim()
	origRow := ts.base[3*m : 4*m]
	dupRow := ext.base[len(ts.Parts)*m : (len(ts.Parts)+1)*m]
	if !reflect.DeepEqual(origRow, dupRow) {
		t.Fatal("duplicated partition's feature row differs from the original")
	}
	if !reflect.DeepEqual(ext.Parts[len(ts.Parts)].Bitmap, ts.Parts[3].Bitmap) {
		t.Fatal("duplicated partition's heavy-hitter bitmap differs from the original")
	}
}

// TestExtendedWithParallelismInvariance: the extension must be bit-identical
// at any parallelism (determinism contract of the whole codebase).
func TestExtendedWithParallelismInvariance(t *testing.T) {
	ts, rest, _ := extendFixture(t, 8)
	seq, err := ts.ExtendedWith(nil, rest, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ts.ExtendedWith(nil, rest, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.base, par.base) {
		t.Fatal("base matrix depends on parallelism")
	}
	for i := range seq.Parts {
		if !reflect.DeepEqual(seq.Parts[i].Bitmap, par.Parts[i].Bitmap) {
			t.Fatalf("partition %d bitmap depends on parallelism", i)
		}
	}
}

func TestExtendedWithRejectsMisnumberedPartition(t *testing.T) {
	ts, rest, _ := extendFixture(t, 8)
	bad := *rest[0]
	bad.ID = 99
	if _, err := ts.ExtendedWith(nil, []*table.Partition{&bad}, 1); err == nil {
		t.Fatal("partition with non-positional ID must be rejected")
	}
}
