package core

import (
	"fmt"

	"ps3/internal/stats"
	"ps3/internal/table"
)

// MutableSource is the capability a live, append-path partition source
// (internal/ingest's pipeline) offers on top of serving reads. core keeps
// only the interface, so the facade can expose Ingest/Freeze without
// depending on the WAL and segment machinery.
type MutableSource interface {
	table.PartitionSource
	// AppendRow ingests one row, returning once it is durably logged.
	// num[c] is consulted for numeric columns and cat[c] for categorical
	// ones, mirroring table.Builder.Append.
	AppendRow(num []float64, cat []string) error
	// AppendRows ingests a batch of rows as one durability unit: when it
	// returns nil, every row survives a crash.
	AppendRows(num [][]float64, cat [][]string) error
	// FreezeSource flushes everything buffered into immutable segments and
	// seals the source; further appends fail.
	FreezeSource() error
}

// Ingest appends one row through the system's source. It requires a
// mutable source (an ingest pipeline); systems over plain tables or paged
// stores are immutable and return an error.
//
// Appended rows are immediately visible to exact scans over the live
// source. Approximate answers keep reflecting the statistics the system
// was built with until a new snapshot is published (the ingest pipeline's
// flush does that); that staleness window is the documented semantics of
// live ingest, not a bug.
func (s *System) Ingest(num []float64, cat []string) error {
	m, ok := s.Source.(MutableSource)
	if !ok {
		return fmt.Errorf("core: source %T is immutable; serve the table through an ingest pipeline to append", s.Source)
	}
	return m.AppendRow(num, cat)
}

// IngestBatch appends a batch of rows as one durability unit through the
// system's source; see Ingest.
func (s *System) IngestBatch(num [][]float64, cat [][]string) error {
	m, ok := s.Source.(MutableSource)
	if !ok {
		return fmt.Errorf("core: source %T is immutable; serve the table through an ingest pipeline to append", s.Source)
	}
	return m.AppendRows(num, cat)
}

// Freeze seals a system over a mutable source: buffered rows flush into a
// final (possibly short) segment and the source becomes read-only. A
// system over an immutable source returns an error.
func (s *System) Freeze() error {
	m, ok := s.Source.(MutableSource)
	if !ok {
		return fmt.Errorf("core: source %T is immutable; nothing to freeze", s.Source)
	}
	return m.FreezeSource()
}

// Rebind derives a System serving src with ts, carrying s's trained picker
// (and LSS baseline) across by swapping their statistics binding. It is
// the publish step of live ingest: the stats extension (ExtendedWith)
// shares the trained feature space, so the regressors, thresholds and
// fitted normalization remain valid over the grown partition set — new
// partitions become pickable without retraining.
//
// ts must share s's fitted FeatureSpace (pointer identity): a stats store
// built independently has its own layout and scale, and silently rebinding
// a picker to it would misread every feature slot. s is not mutated; the
// returned system shares the immutable trained artifacts.
func (s *System) Rebind(src table.PartitionSource, ts *stats.TableStats) (*System, error) {
	if s.Stats != nil && ts.Space != s.Stats.Space {
		return nil, fmt.Errorf("core: rebind requires stats sharing the system's feature space; extend the system's stats instead of rebuilding")
	}
	ns, err := NewFromStats(src, ts, s.Opts)
	if err != nil {
		return nil, err
	}
	if s.Picker != nil {
		p := *s.Picker
		p.TS = ts
		ns.Picker = &p
	}
	if s.LSS != nil {
		l := *s.LSS
		l.TS = ts
		ns.LSS = &l
	}
	return ns, nil
}
