package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"ps3/internal/picker"
	"ps3/internal/stats"
	"ps3/internal/table"
)

// This file persists a trained System as one self-describing snapshot: the
// statistics store plus the trained picker (and optional LSS baseline) plus
// the options they were built with. Together with the separately-persisted
// table data (table.Table.WriteTo), a snapshot is everything a serving
// process needs to cold-start: OpenSnapshot restores a System that produces
// bit-identical Pick selections and Run answers to the in-process trained
// one, with zero retraining (the deployment model of Fig 1, §2.3.1).
//
// Layout: a single gob stream holding systemWire. The inner stores keep
// their own formats (stats/io.go, picker/io.go) and are nested as opaque
// byte blobs, so each layer versions and validates independently.

// snapshotMagic identifies a PS3 system snapshot.
const snapshotMagic = "PS3SNAPSHOT"

// snapshotVersion is bumped on incompatible changes to systemWire.
const snapshotVersion = 1

// systemWire is the serialized form of a trained System (minus the table
// data, which is persisted separately and re-bound at open).
type systemWire struct {
	Magic   string
	Version int
	Opts    Options
	Stats   []byte
	Picker  []byte // empty when the system was never trained
	LSS     []byte // empty when no LSS baseline was fitted
}

// WriteTo serializes the system — options, statistics store, trained picker
// and LSS baseline — to w. The table data is not included: it is persisted
// separately (and may be far larger, or live in a different store entirely).
func (s *System) WriteTo(w io.Writer) (int64, error) {
	wire := systemWire{Magic: snapshotMagic, Version: snapshotVersion, Opts: s.Opts}
	var buf bytes.Buffer
	if _, err := s.Stats.WriteTo(&buf); err != nil {
		return 0, fmt.Errorf("core: snapshot stats: %w", err)
	}
	wire.Stats = append([]byte(nil), buf.Bytes()...)
	if s.Picker != nil {
		buf.Reset()
		if _, err := s.Picker.WriteTo(&buf); err != nil {
			return 0, fmt.Errorf("core: snapshot picker: %w", err)
		}
		wire.Picker = append([]byte(nil), buf.Bytes()...)
	}
	if s.LSS != nil {
		buf.Reset()
		if _, err := s.LSS.WriteTo(&buf); err != nil {
			return 0, fmt.Errorf("core: snapshot lss: %w", err)
		}
		wire.LSS = append([]byte(nil), buf.Bytes()...)
	}
	cw := &countingWriter{w: w}
	if err := gob.NewEncoder(cw).Encode(&wire); err != nil {
		return cw.n, fmt.Errorf("core: encode snapshot: %w", err)
	}
	return cw.n, nil
}

// OpenSnapshot restores a System from a snapshot written with WriteTo and
// binds it to src, the partition source holding the data the system was
// built on — a resident *table.Table, or a paged store reader for
// out-of-core serving where only picked partitions are ever loaded. The
// statistics store is validated against the source (as in NewFromStats) and
// the picker against the store's feature space, so a snapshot cannot
// silently open against the wrong data. A snapshot of a trained system
// opens trained: no call to Train is needed before Run.
func OpenSnapshot(r io.Reader, src table.PartitionSource) (*System, error) {
	var wire systemWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("core: decode snapshot: %w", err)
	}
	if wire.Magic != snapshotMagic {
		return nil, fmt.Errorf("core: not a PS3 system snapshot (magic %q)", wire.Magic)
	}
	if wire.Version != snapshotVersion {
		return nil, fmt.Errorf("core: snapshot version %d, this build reads %d", wire.Version, snapshotVersion)
	}
	if len(wire.Stats) == 0 {
		return nil, fmt.Errorf("core: corrupt snapshot: missing statistics store")
	}
	ts, err := stats.ReadStats(bytes.NewReader(wire.Stats))
	if err != nil {
		return nil, err
	}
	sys, err := NewFromStats(src, ts, wire.Opts)
	if err != nil {
		return nil, err
	}
	if len(wire.Picker) != 0 {
		p, err := picker.ReadPicker(bytes.NewReader(wire.Picker), ts)
		if err != nil {
			return nil, err
		}
		sys.Picker = p
	}
	if len(wire.LSS) != 0 {
		l, err := picker.ReadLSS(bytes.NewReader(wire.LSS), ts)
		if err != nil {
			return nil, err
		}
		sys.LSS = l
	}
	return sys, nil
}

// countingWriter tracks bytes written.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
