package core

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"testing"

	"ps3/internal/fault"
	"ps3/internal/query"
	"ps3/internal/store"
)

// storeBackedWithInjector restores a trained system over an on-disk store
// opened through a fault injector, alongside a healthy twin over the same
// bytes for reference answers.
func storeBackedWithInjector(t *testing.T) (faulty, healthy *System, test []*query.Query, inj *fault.Injector) {
	t.Helper()
	sys, _, test := buildSystem(t, 20)
	path := filepath.Join(t.TempDir(), "t.ps3")
	if _, err := store.WriteFile(path, sys.Table); err != nil {
		t.Fatal(err)
	}
	var snapBuf bytes.Buffer
	if _, err := sys.WriteTo(&snapBuf); err != nil {
		t.Fatal(err)
	}
	snap := snapBuf.Bytes()

	inj = fault.NewInjector(fault.OS, 1)
	r, err := store.OpenFS(inj, path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	faulty, err = OpenSnapshot(bytes.NewReader(snap), r)
	if err != nil {
		t.Fatal(err)
	}

	r2, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r2.Close() })
	healthy, err = OpenSnapshot(bytes.NewReader(snap), r2)
	if err != nil {
		t.Fatal(err)
	}
	return faulty, healthy, test, inj
}

// quarantinePart deterministically fences one partition of the system's
// reader: corrupt every read, touch exactly that partition (load + retry
// both see bad bytes → quarantine), then clear the schedule.
func quarantinePart(t *testing.T, s *System, inj *fault.Injector, part int) {
	t.Helper()
	inj.AddRule(&fault.Rule{Op: fault.OpRead, FailAt: 1, Corrupt: true})
	if _, err := s.Source.Read(part); !errors.Is(err, store.ErrQuarantined) {
		t.Fatalf("quarantining part %d: err = %v, want ErrQuarantined", part, err)
	}
	inj.ClearRules()
}

// TestRunSelectionCtxDegradesOnQuarantine: a selection containing a
// quarantined partition serves the survivors with Degraded=true and
// SkippedParts naming the fenced partition — and the degraded values are
// bit-identical to honestly scanning the filtered selection on a healthy
// reader. Never a silently wrong answer: the degradation is exact and
// declared.
func TestRunSelectionCtxDegradesOnQuarantine(t *testing.T) {
	faulty, healthy, test, inj := storeBackedWithInjector(t)
	q := test[0]

	sel, err := faulty.Pick(q, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) < 2 {
		t.Fatalf("selection of %d partitions is too small for the test", len(sel))
	}
	victim := sel[len(sel)/2].Part
	quarantinePart(t, faulty, inj, victim)

	c, err := faulty.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := faulty.RunSelectionCtx(context.Background(), c, sel)
	if err != nil {
		t.Fatalf("degraded run: %v", err)
	}
	if !res.Degraded {
		t.Fatal("Degraded = false for a selection with a quarantined partition")
	}
	if len(res.SkippedParts) != 1 || res.SkippedParts[0] != victim {
		t.Fatalf("SkippedParts = %v, want [%d]", res.SkippedParts, victim)
	}
	if res.PartsRead != len(sel)-1 {
		t.Fatalf("PartsRead = %d, want %d", res.PartsRead, len(sel)-1)
	}

	// Reference: the same filtered selection on the healthy twin.
	filtered := make([]query.WeightedPartition, 0, len(sel)-1)
	for _, wp := range sel {
		if wp.Part != victim {
			filtered = append(filtered, wp)
		}
	}
	hc, err := healthy.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := healthy.RunSelection(hc, filtered)
	if err != nil {
		t.Fatal(err)
	}
	if want.Degraded {
		t.Fatal("healthy reference run reported Degraded")
	}
	if len(res.Values) != len(want.Values) {
		t.Fatalf("degraded run has %d groups, filtered reference %d", len(res.Values), len(want.Values))
	}
	for g, wv := range want.Values {
		gv, ok := res.Values[g]
		if !ok {
			t.Fatalf("group %q missing from degraded run", want.Labels[g])
		}
		for j := range wv {
			if gv[j] != wv[j] {
				t.Fatalf("group %q agg %d: degraded %v, filtered reference %v (must be bit-identical)",
					want.Labels[g], j, gv[j], wv[j])
			}
		}
	}
}

// TestRunSelectionCtxAllQuarantined: nothing left to serve is an error,
// not an empty answer.
func TestRunSelectionCtxAllQuarantined(t *testing.T) {
	faulty, _, test, inj := storeBackedWithInjector(t)
	q := test[1]
	sel, err := faulty.Pick(q, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for _, wp := range sel {
		quarantinePart(t, faulty, inj, wp.Part)
	}
	c, err := faulty.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := faulty.RunSelectionCtx(context.Background(), c, sel); !errors.Is(err, store.ErrQuarantined) {
		t.Fatalf("fully quarantined selection: err = %v, want ErrQuarantined", err)
	}
}

// TestRunExactCtxFailsOnQuarantine: exact runs refuse to degrade.
func TestRunExactCtxFailsOnQuarantine(t *testing.T) {
	faulty, _, test, inj := storeBackedWithInjector(t)
	quarantinePart(t, faulty, inj, 0)
	if _, err := faulty.RunExactCtx(context.Background(), test[0]); !errors.Is(err, store.ErrQuarantined) {
		t.Fatalf("exact over quarantined store: err = %v, want ErrQuarantined", err)
	}
}

// TestRunCompiledCtxHonoursCancellation: a pre-cancelled context returns
// context.Canceled without serving.
func TestRunCompiledCtxHonoursCancellation(t *testing.T) {
	faulty, _, test, _ := storeBackedWithInjector(t)
	c, err := faulty.Compile(test[0])
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := faulty.RunCompiledCtx(ctx, c, 0.2); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunCtxMatchesRun: with a background context, the ctx path is
// bit-identical to the context-free one.
func TestRunCtxMatchesRun(t *testing.T) {
	_, healthy, test, _ := storeBackedWithInjector(t)
	for _, q := range test[:3] {
		want, err := healthy.Run(q, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		got, err := healthy.RunCtx(context.Background(), q, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		for g, wv := range want.Values {
			gv, ok := got.Values[g]
			if !ok {
				t.Fatalf("query %s: group %q missing from ctx run", q, want.Labels[g])
			}
			for j := range wv {
				if gv[j] != wv[j] {
					t.Fatalf("query %s group %q agg %d: %v vs %v", q, want.Labels[g], j, gv[j], wv[j])
				}
			}
		}
	}
}
