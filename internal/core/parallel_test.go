package core

import (
	"math"
	"runtime"
	"testing"

	"ps3/internal/dataset"
	"ps3/internal/query"
)

// parallelFixture builds an untrained system plus a query sample at the
// given parallelism.
func parallelFixture(t *testing.T, parallelism int) (*System, []*query.Query) {
	t.Helper()
	ds, err := dataset.Aria(dataset.Config{Rows: 8000, Parts: 40, Seed: 3})
	if err != nil {
		t.Fatalf("dataset: %v", err)
	}
	sys, err := New(ds.Table, Options{Workload: ds.Workload, Seed: 7, Parallelism: parallelism})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	gen, err := query.NewGenerator(ds.Workload, ds.Table, 21)
	if err != nil {
		t.Fatalf("generator: %v", err)
	}
	return sys, gen.SampleN(12)
}

// requireIdenticalValues asserts two FinalValues maps agree bit-for-bit.
func requireIdenticalValues(t *testing.T, label string, want, got map[string][]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d groups, want %d", label, len(got), len(want))
	}
	for g, wv := range want {
		gv, ok := got[g]
		if !ok {
			t.Fatalf("%s: missing group %x", label, g)
		}
		for j := range wv {
			if math.Float64bits(gv[j]) != math.Float64bits(wv[j]) {
				t.Fatalf("%s: group %x agg %d: %v != %v", label, g, j, gv[j], wv[j])
			}
		}
	}
}

// TestMakeExamplesParallelEquivalence checks the offline training pass
// produces byte-identical examples at parallelism 1, 2, and GOMAXPROCS.
func TestMakeExamplesParallelEquivalence(t *testing.T) {
	seq, queries := parallelFixture(t, 1)
	want, err := seq.MakeExamples(queries)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, runtime.GOMAXPROCS(0)} {
		sys, _ := parallelFixture(t, par)
		got, err := sys.MakeExamples(queries)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("par=%d: %d examples, want %d", par, len(got), len(want))
		}
		for i := range want {
			label := queries[i].String()
			requireIdenticalValues(t, label, want[i].TruthVals, got[i].TruthVals)
			if len(got[i].Contrib) != len(want[i].Contrib) {
				t.Fatalf("%s: contrib length %d, want %d", label, len(got[i].Contrib), len(want[i].Contrib))
			}
			for j := range want[i].Contrib {
				if math.Float64bits(got[i].Contrib[j]) != math.Float64bits(want[i].Contrib[j]) {
					t.Fatalf("%s: contrib[%d] = %v, want %v", label, j, got[i].Contrib[j], want[i].Contrib[j])
				}
			}
			for j := range want[i].Features {
				for k := range want[i].Features[j] {
					if got[i].Features[j][k] != want[i].Features[j][k] {
						t.Fatalf("%s: feature [%d][%d] differs", label, j, k)
					}
				}
			}
		}
	}
}

// TestRunExactParallelEquivalence checks the exact execution path end to
// end across parallelism levels.
func TestRunExactParallelEquivalence(t *testing.T) {
	seq, queries := parallelFixture(t, 1)
	for _, par := range []int{2, runtime.GOMAXPROCS(0)} {
		sys, _ := parallelFixture(t, par)
		for _, q := range queries {
			want, err := seq.RunExact(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sys.RunExact(q)
			if err != nil {
				t.Fatal(err)
			}
			requireIdenticalValues(t, q.String(), want.Values, got.Values)
		}
	}
}

// TestTrainedRunParallelEquivalence trains two systems that differ only in
// parallelism and checks Run returns identical selections and values (the
// pick RNG is seeded, so the whole online path must be deterministic).
func TestTrainedRunParallelEquivalence(t *testing.T) {
	seq, queries := parallelFixture(t, 1)
	if err := seq.Train(queries, nil); err != nil {
		t.Fatal(err)
	}
	par, _ := parallelFixture(t, runtime.GOMAXPROCS(0))
	if err := par.Train(queries, nil); err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		want, err := seq.Run(q, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		got, err := par.Run(q, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Selection) != len(want.Selection) {
			t.Fatalf("%s: selection size %d, want %d", q, len(got.Selection), len(want.Selection))
		}
		for i := range want.Selection {
			if got.Selection[i] != want.Selection[i] {
				t.Fatalf("%s: selection[%d] = %+v, want %+v", q, i, got.Selection[i], want.Selection[i])
			}
		}
		requireIdenticalValues(t, q.String(), want.Values, got.Values)
	}
}

// TestMakeExamplesErrorMatchesSequential checks the parallel fan-out
// reports the same (first-by-index) error a sequential loop would.
func TestMakeExamplesErrorMatchesSequential(t *testing.T) {
	sys, queries := parallelFixture(t, runtime.GOMAXPROCS(0))
	bad := &query.Query{Aggs: []query.Aggregate{{Kind: query.Sum, Expr: query.Col("no_such_col")}}}
	mixed := append([]*query.Query{queries[0], bad}, queries[1:]...)
	_, err := sys.MakeExamples(mixed)
	if err == nil {
		t.Fatal("expected error for unknown column")
	}
	want := "core: preparing query \"" + bad.String() + "\""
	if got := err.Error(); len(got) < len(want) || got[:len(want)] != want {
		t.Fatalf("error %q does not name the failing query %q", got, bad)
	}
}
