package core

import (
	"strings"
	"testing"

	"ps3/internal/dataset"
	"ps3/internal/query"
	"ps3/internal/stats"
	"ps3/internal/table"
)

// TestIngestOnImmutableSourceErrors: systems over plain tables have no
// append path; the facade must say so rather than panic or no-op.
func TestIngestOnImmutableSourceErrors(t *testing.T) {
	ds, err := dataset.Aria(dataset.Config{Rows: 2000, Parts: 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(ds.Table, Options{Workload: ds.Workload, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Ingest(nil, nil); err == nil || !strings.Contains(err.Error(), "immutable") {
		t.Fatalf("Ingest on immutable source: %v, want immutable-source error", err)
	}
	if err := sys.IngestBatch(nil, nil); err == nil || !strings.Contains(err.Error(), "immutable") {
		t.Fatalf("IngestBatch on immutable source: %v, want immutable-source error", err)
	}
	if err := sys.Freeze(); err == nil || !strings.Contains(err.Error(), "immutable") {
		t.Fatalf("Freeze on immutable source: %v, want immutable-source error", err)
	}
}

// TestRebindCarriesTrainedPicker: the publish step must keep the trained
// picker and LSS working over the extended stats without retraining, and
// the rebound system must answer queries over the grown partition set.
func TestRebindCarriesTrainedPicker(t *testing.T) {
	ds, err := dataset.Aria(dataset.Config{Rows: 8000, Parts: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	base := &table.Table{Schema: ds.Table.Schema, Dict: ds.Table.Dict, Parts: ds.Table.Parts[:15]}
	sys, ts, queries := trainedOver(t, base, ds)

	ext, err := ts.ExtendedWith(nil, ds.Table.Parts[15:], 0)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := sys.Rebind(ds.Table, ext)
	if err != nil {
		t.Fatal(err)
	}
	if grown.Picker == nil {
		t.Fatal("rebind dropped the trained picker")
	}
	if grown.Picker == sys.Picker {
		t.Fatal("rebind must copy the picker, not alias it (the original keeps its stats binding)")
	}
	if grown.Picker.TS != ext {
		t.Fatal("rebound picker still reads the old stats")
	}
	if sys.Picker.TS != ts {
		t.Fatal("rebind mutated the original system's picker")
	}
	for _, q := range queries {
		res, err := grown.Run(q, 0.25)
		if err != nil {
			t.Fatalf("Run over rebound system: %v", err)
		}
		if res.PartsRead == 0 && len(res.Values) > 0 {
			t.Fatal("rebound system answered without reading partitions")
		}
	}
	// Exact answers over the rebound system see all 20 partitions.
	if grown.Source.NumParts() != 20 {
		t.Fatalf("rebound source has %d partitions, want 20", grown.Source.NumParts())
	}
}

// TestRebindRejectsForeignStats: stats built independently have their own
// feature space; silently rebinding a picker to them would misread every
// slot, so Rebind must refuse.
func TestRebindRejectsForeignStats(t *testing.T) {
	ds, err := dataset.Aria(dataset.Config{Rows: 4000, Parts: 10, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	sys, _, _ := trainedOver(t, ds.Table, ds)
	foreign, err := stats.Build(ds.Table, stats.Options{GroupableCols: ds.Workload.GroupableCols})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Rebind(ds.Table, foreign); err == nil {
		t.Fatal("rebind to independently built stats must be rejected")
	}
}

// trainedOver builds and trains a system over tbl using ds's workload.
func trainedOver(t *testing.T, tbl *table.Table, ds *dataset.Dataset) (*System, *stats.TableStats, []*query.Query) {
	t.Helper()
	sys, err := New(tbl, Options{Workload: ds.Workload, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := query.NewGenerator(ds.Workload, tbl, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Train(gen.SampleN(15), nil); err != nil {
		t.Fatal(err)
	}
	return sys, sys.Stats, gen.SampleN(6)
}
