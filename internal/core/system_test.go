package core

import (
	"math/rand"
	"testing"

	"ps3/internal/dataset"
	"ps3/internal/metrics"
	"ps3/internal/picker"
	"ps3/internal/query"
)

// buildSystem creates a small Aria dataset and a trained system shared by
// the package tests.
func buildSystem(t *testing.T, trainN int) (*System, *dataset.Dataset, []*query.Query) {
	t.Helper()
	ds, err := dataset.Aria(dataset.Config{Rows: 20000, Parts: 50, Seed: 1})
	if err != nil {
		t.Fatalf("dataset: %v", err)
	}
	sys, err := New(ds.Table, Options{Workload: ds.Workload, TrainLSS: false, Seed: 7})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	gen, err := query.NewGenerator(ds.Workload, ds.Table, 42)
	if err != nil {
		t.Fatalf("generator: %v", err)
	}
	train := gen.SampleN(trainN)
	test := gen.SampleN(10)
	if err := sys.Train(train, nil); err != nil {
		t.Fatalf("Train: %v", err)
	}
	return sys, ds, test
}

func TestSystemEndToEnd(t *testing.T) {
	sys, _, test := buildSystem(t, 30)
	for _, q := range test {
		res, err := sys.Run(q, 0.2)
		if err != nil {
			t.Fatalf("Run(%s): %v", q, err)
		}
		if res.PartsRead == 0 && len(res.Values) > 0 {
			t.Errorf("query %s: got values without reading partitions", q)
		}
		if res.FracRead > 0.35 {
			t.Errorf("query %s: read %.2f of partitions, budget was 0.20 (+outliers)", q, res.FracRead)
		}
	}
}

func TestSystemBeatsRandomOnAverage(t *testing.T) {
	sys, _, test := buildSystem(t, 40)
	rng := rand.New(rand.NewSource(5))
	var ps3Err, randErr float64
	n := 0
	for _, q := range test {
		ex, err := sys.MakeExample(q)
		if err != nil {
			t.Fatalf("MakeExample: %v", err)
		}
		if len(ex.TruthVals) == 0 {
			continue
		}
		budget := sys.Table.NumParts() / 10
		sel, err := sys.Pick(q, 0.1)
		if err != nil {
			t.Fatalf("Pick: %v", err)
		}
		est := picker.EstimateFromPerPart(ex.Compiled, ex.PerPart, sel)
		ps3Err += metrics.Compare(ex.TruthVals, est).AvgRelErr
		// Average several random draws.
		var r float64
		const runs = 5
		for k := 0; k < runs; k++ {
			rsel := picker.Uniform(sys.Table.NumParts(), budget, rng)
			rest := picker.EstimateFromPerPart(ex.Compiled, ex.PerPart, rsel)
			r += metrics.Compare(ex.TruthVals, rest).AvgRelErr
		}
		randErr += r / runs
		n++
	}
	if n == 0 {
		t.Fatal("no test queries produced answers")
	}
	ps3Err /= float64(n)
	randErr /= float64(n)
	t.Logf("avg rel err over %d queries at 10%% budget: PS3=%.4f random=%.4f", n, ps3Err, randErr)
	if ps3Err > randErr {
		t.Errorf("PS3 (%.4f) should not be worse than uniform random (%.4f) on a sorted layout", ps3Err, randErr)
	}
}

func TestRunExactMatchesGroundTruth(t *testing.T) {
	sys, _, test := buildSystem(t, 20)
	q := test[0]
	res, err := sys.RunExact(q)
	if err != nil {
		t.Fatalf("RunExact: %v", err)
	}
	// Running with budget 1.0 must equal exact evaluation.
	full, err := sys.Run(q, 1.0)
	if err != nil {
		t.Fatalf("Run(1.0): %v", err)
	}
	if len(res.Values) != len(full.Values) {
		t.Fatalf("full-budget run has %d groups, exact has %d", len(full.Values), len(res.Values))
	}
	for g, tv := range res.Values {
		fv, ok := full.Values[g]
		if !ok {
			t.Fatalf("group %s missing from full-budget run", res.Labels[g])
		}
		for j := range tv {
			if diff := tv[j] - fv[j]; diff > 1e-6 || diff < -1e-6 {
				t.Errorf("group %s agg %d: exact %g vs full-budget %g", res.Labels[g], j, tv[j], fv[j])
			}
		}
	}
}

func TestNewFromStatsRoundTrip(t *testing.T) {
	sys, ds, test := buildSystem(t, 20)
	bound, err := NewFromStats(ds.Table, sys.Stats, sys.Opts)
	if err != nil {
		t.Fatalf("NewFromStats: %v", err)
	}
	if err := bound.Train(test[:5], nil); err != nil {
		t.Fatalf("Train on rebound system: %v", err)
	}
	if _, err := bound.Run(test[5], 0.2); err != nil {
		t.Fatalf("Run on rebound system: %v", err)
	}
}

func TestNewFromStatsRejectsMismatchedShapes(t *testing.T) {
	sys, ds, _ := buildSystem(t, 10)
	// Different partition count.
	other, err := ds.WithPartitions(25)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFromStats(other.Table, sys.Stats, sys.Opts); err == nil {
		t.Fatal("want error for partition-count mismatch")
	}
	// Different schema.
	kdd, err := dataset.KDD(dataset.Config{Rows: 5000, Parts: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFromStats(kdd.Table, sys.Stats, sys.Opts); err == nil {
		t.Fatal("want error for schema mismatch")
	}
}

func TestTrainWithLSS(t *testing.T) {
	ds, err := dataset.Aria(dataset.Config{Rows: 8000, Parts: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(ds.Table, Options{Workload: ds.Workload, TrainLSS: true,
		LSSBudgets: []float64{0.2, 0.5}, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := query.NewGenerator(ds.Workload, ds.Table, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Train(gen.SampleN(15), nil); err != nil {
		t.Fatal(err)
	}
	if sys.LSS == nil {
		t.Fatal("TrainLSS did not fit the LSS baseline")
	}
}

func TestPickBeforeTrainErrors(t *testing.T) {
	ds, err := dataset.Aria(dataset.Config{Rows: 4000, Parts: 10, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(ds.Table, Options{Workload: ds.Workload})
	if err != nil {
		t.Fatal(err)
	}
	q := &query.Query{Aggs: []query.Aggregate{{Kind: query.Count}}}
	if _, err := sys.Pick(q, 0.1); err == nil {
		t.Fatal("Pick before Train should fail")
	}
}

func TestBudgetParts(t *testing.T) {
	cases := []struct {
		frac  float64
		total int
		want  int
	}{
		{0, 10, 1},
		{0.04, 10, 1}, // rounds to 0, floored to 1
		{0.25, 10, 3}, // rounds to nearest
		{1, 10, 10},
		{5, 10, 10}, // capped
	}
	for _, c := range cases {
		if got := budgetParts(c.frac, c.total); got != c.want {
			t.Fatalf("budgetParts(%v, %d) = %d, want %d", c.frac, c.total, got, c.want)
		}
	}
}

func TestMakeExamplesPropagatesCompileErrors(t *testing.T) {
	sys, _, _ := buildSystem(t, 10)
	bad := &query.Query{Aggs: []query.Aggregate{{Kind: query.Sum, Expr: query.Col("no_such_col")}}}
	if _, err := sys.MakeExamples([]*query.Query{bad}); err == nil {
		t.Fatal("want error for unknown column")
	}
}

func TestRunChargesIOAccounting(t *testing.T) {
	sys, ds, test := buildSystem(t, 15)
	ds.Table.ResetIO()
	res, err := sys.Run(test[0], 0.2)
	if err != nil {
		t.Fatal(err)
	}
	parts, bytes := ds.Table.IOStats()
	if int(parts) != res.PartsRead {
		t.Fatalf("I/O accountant saw %d reads, result says %d", parts, res.PartsRead)
	}
	if res.PartsRead > 0 && bytes <= 0 {
		t.Fatal("bytes read not accounted")
	}
}
