// Package core is PS3's public facade: it ties the statistics builder
// (internal/stats), the partition picker (internal/picker) and the query
// engine (internal/query) into the two-phase system of Fig 1:
//
//	sys, _ := core.New(tbl, core.Options{Workload: wl})
//	_ = sys.Train(trainQueries, nil)             // offline, once per workload
//	res, _ := sys.Run(q, 0.01)                   // online: read 1% of partitions
//	fmt.Println(res.Values, res.PartsRead)
//
// Run replaces the table in the query plan with a weighted set of partition
// choices; partial answers combine linearly per §2.4.
package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"ps3/internal/exec"
	"ps3/internal/picker"
	"ps3/internal/query"
	"ps3/internal/sketch"
	"ps3/internal/stats"
	"ps3/internal/table"
)

// Options configures a System.
type Options struct {
	// Workload declares the aggregate functions and group-by columnsets the
	// picker is trained for (§2.1 "Generalization").
	Workload query.Workload
	// Stats configures the statistics builder; GroupableCols is filled from
	// the workload when empty.
	Stats stats.Options
	// Picker configures the partition picker.
	Picker picker.Config
	// TrainLSS additionally fits the LSS baseline during Train.
	TrainLSS bool
	// LSSBudgets are the budget fractions LSS sweeps strata sizes for.
	LSSBudgets []float64
	// Seed drives query-time randomness.
	Seed int64
	// Parallelism bounds the worker goroutines of every partition scan the
	// system performs — ground truth, estimation, selectivity, and the
	// per-query fan-out of MakeExamples (0 = GOMAXPROCS, matching
	// stats.Options.Parallelism). Answers are bit-identical at every
	// setting.
	Parallelism int
}

// execOpts converts the concurrency knob into engine options.
func (o Options) execOpts() exec.Options { return exec.Options{Parallelism: o.Parallelism} }

// errNotResident is returned by training entry points on a store-backed
// system: the offline pass scans every partition once per training query,
// which through a bounded page cache would thrash — materialize the store
// into a resident table first (store.Reader.Materialize).
var errNotResident = errors.New("core: training requires a resident table, not a paged source; materialize the store first")

// System is a PS3 instance bound to one partition source and workload.
type System struct {
	// Source is what query execution reads partitions from: a fully
	// resident *table.Table, or a paged store.Reader that faults picked
	// partitions in through a bounded cache.
	Source table.PartitionSource
	// Table is the resident table when the source is one, nil when the
	// system is store-backed. Training (MakeExamples/Train) requires it:
	// the offline pass repeatedly scans every partition, so it is run over
	// materialized data, never through the page cache.
	Table *table.Table
	Stats *stats.TableStats
	Opts  Options

	Picker *picker.Picker
	LSS    *picker.LSS
}

// New builds the summary statistics for t (the offline "stats builder" pass
// of Fig 1). Training is a separate step.
func New(t *table.Table, opts Options) (*System, error) {
	if len(opts.Stats.GroupableCols) == 0 {
		opts.Stats.GroupableCols = opts.Workload.GroupableCols
	}
	if opts.Stats.Parallelism == 0 {
		opts.Stats.Parallelism = opts.Parallelism
	}
	ts, err := stats.Build(t, opts.Stats)
	if err != nil {
		return nil, err
	}
	return &System{Source: t, Table: t, Stats: ts, Opts: opts}, nil
}

// NewFromStats binds a System to a partition source using a pre-built
// statistics store — typically one restored with stats.ReadStats, matching
// the paper's deployment where sketches are computed at ingest and persisted
// separately from the data. The store's schema must match the source's. The
// source may be a resident *table.Table or a paged store reader.
func NewFromStats(src table.PartitionSource, ts *stats.TableStats, opts Options) (*System, error) {
	schema := src.TableSchema()
	if len(ts.Parts) != src.NumParts() {
		return nil, fmt.Errorf("core: stats cover %d partitions, table has %d", len(ts.Parts), src.NumParts())
	}
	if got, want := len(ts.Schema.Cols), len(schema.Cols); got != want {
		return nil, fmt.Errorf("core: stats schema has %d columns, table has %d", got, want)
	}
	for i, c := range ts.Schema.Cols {
		if schema.Cols[i] != c {
			return nil, fmt.Errorf("core: stats column %d is %+v, table has %+v", i, c, schema.Cols[i])
		}
	}
	s := &System{Source: src, Stats: ts, Opts: opts}
	if t, ok := src.(*table.Table); ok {
		s.Table = t
	}
	return s, nil
}

// MakeExamples prepares training/evaluation examples for a set of queries:
// feature matrices, exact per-partition answers, ground truth, and partition
// contributions. This is the expensive offline pass (one full scan per
// query); examples are reusable across training and evaluation. The scans
// run in parallel across queries — the dominant offline cost — with each
// query's own scan kept sequential so the pool is not oversubscribed.
func (s *System) MakeExamples(queries []*query.Query) ([]picker.Example, error) {
	if s.Table == nil {
		return nil, errNotResident
	}
	return exec.MapErr(len(queries), s.Opts.execOpts(), func(i int) (picker.Example, error) {
		ex, err := s.makeExample(queries[i], exec.Options{Parallelism: 1})
		if err != nil {
			return picker.Example{}, fmt.Errorf("core: preparing query %q: %w", queries[i], err)
		}
		return ex, nil
	})
}

// MakeExample prepares one example, parallelizing its full scan across
// partitions.
func (s *System) MakeExample(q *query.Query) (picker.Example, error) {
	if s.Table == nil {
		return picker.Example{}, errNotResident
	}
	return s.makeExample(q, s.Opts.execOpts())
}

func (s *System) makeExample(q *query.Query, eo exec.Options) (picker.Example, error) {
	c, err := query.Compile(q, s.Table)
	if err != nil {
		return picker.Example{}, err
	}
	c.Exec = eo
	total, perPart := c.GroundTruth(s.Table)
	// The compiled query outlives this scan inside the example; later scans
	// through it (e.g. selectivity bucketing in experiments) should use the
	// system's parallelism, not the fan-out-local setting.
	c.Exec = s.Opts.execOpts()
	return picker.Example{
		Query:     q,
		Compiled:  c,
		Features:  s.Stats.Features(q),
		Contrib:   picker.Contribution(c, perPart, total),
		PerPart:   perPart,
		TruthVals: c.FinalValues(total),
	}, nil
}

// compile binds q to the system's source and threads the concurrency knob
// into the scan engine.
func (s *System) compile(q *query.Query) (*query.Compiled, error) {
	c, err := query.Compile(q, s.Source)
	if err != nil {
		return nil, err
	}
	c.Exec = s.Opts.execOpts()
	return c, nil
}

// Train fits the picker (and optionally the LSS baseline) on the given
// training queries. Pre-built examples may be passed to avoid recomputing
// ground truth; pass nil to have Train build them, which requires a
// resident table (store-backed systems restore a trained snapshot or
// materialize first).
func (s *System) Train(queries []*query.Query, examples []picker.Example) error {
	if examples == nil {
		var err error
		examples, err = s.MakeExamples(queries)
		if err != nil {
			return err
		}
	}
	p, err := picker.Train(s.Stats, examples, s.Opts.Picker)
	if err != nil {
		return err
	}
	s.Picker = p
	if s.Opts.TrainLSS {
		budgets := s.Opts.LSSBudgets
		if len(budgets) == 0 {
			budgets = []float64{0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
		}
		l, err := picker.TrainLSS(s.Stats, examples, budgets, s.Opts.Seed+7)
		if err != nil {
			return err
		}
		s.LSS = l
	}
	return nil
}

// Pick selects a weighted partition sample for q at the given budget
// (fraction of partitions to read). The system must be trained. Picking
// runs on the batched inference path: features are computed into pooled
// scratch (in parallel across partition blocks, bounded by
// Options.Parallelism) and the funnel regressors evaluate whole groups on
// their compiled flat form — bit-identical to the reference
// Features+Pick pipeline at every parallelism setting.
func (s *System) Pick(q *query.Query, budgetFrac float64) ([]query.WeightedPartition, error) {
	sel, _, err := s.PickWithStats(q, budgetFrac)
	return sel, err
}

// PickWithStats is Pick with the picker's timing breakdown (total,
// featurization, clustering) for latency accounting.
func (s *System) PickWithStats(q *query.Query, budgetFrac float64) ([]query.WeightedPartition, picker.PickStats, error) {
	return s.PickParts(q, s.PartsForBudget(budgetFrac))
}

// PartsForBudget resolves a fractional budget to the partition count Pick
// reads (≥1, ≤ the partition count). The serve layer keys its pick-result
// cache on this resolved count, so budgets that round to the same count
// share cache entries.
func (s *System) PartsForBudget(frac float64) int {
	return budgetParts(frac, s.Source.NumParts())
}

// PickParts is Pick for an already-resolved partition count. The randomness
// stream depends only on the system seed and the query text (pickRNG), so
// repeated calls with equal arguments return identical selections — which is
// what makes pick results cacheable.
func (s *System) PickParts(q *query.Query, n int) ([]query.WeightedPartition, picker.PickStats, error) {
	if s.Picker == nil {
		return nil, picker.PickStats{}, fmt.Errorf("core: system is not trained; call Train first")
	}
	sel, st := s.Picker.PickBatchWithStats(q, n, s.pickRNG(q), s.Opts.execOpts())
	return sel, st, nil
}

// pickRNG derives the query-time randomness stream: the system seed mixed
// with a hash of the full query text, so distinct queries get independent
// streams (length alone collides — every equal-length query would share one
// stream) while repeated runs of the same query stay deterministic. Each
// call returns a fresh generator, which is what makes Pick and Run safe to
// invoke from concurrent requests.
func (s *System) pickRNG(q *query.Query) *rand.Rand {
	return rand.New(rand.NewSource(s.Opts.Seed ^ int64(sketch.HashString(q.String()))))
}

// Result is the outcome of an approximate query execution.
type Result struct {
	// Values maps group keys to final aggregate values.
	Values map[string][]float64
	// Labels maps group keys to human-readable group labels.
	Labels map[string]string
	// Selection is the weighted partition sample that was read.
	Selection []query.WeightedPartition
	// PartsRead and FracRead account the I/O spent.
	PartsRead int
	FracRead  float64
	// PickTime and ScanTime split the execution latency into partition
	// selection (featurization + funnel + clustering) and the weighted
	// partition scan; the serve layer aggregates them into its /stats
	// breakdown. Zero on RunExact, which does not pick.
	PickTime time.Duration
	ScanTime time.Duration
	// Degraded reports that quarantined partitions were dropped from the
	// selection before scanning: the answer covers less data than the
	// picker chose, and SkippedParts lists what was excluded. A degraded
	// answer is never silently wrong — callers surface the flag (the serve
	// layer returns it per response) so the client can decide whether a
	// partial answer is acceptable. Always false on RunExact, which fails
	// rather than degrade.
	Degraded     bool
	SkippedParts []int
}

// Compile binds q to the system's table, ready for repeated execution via
// RunCompiled. The serve layer caches the result per canonical query text so
// sustained traffic skips predicate compilation; a Compiled is safe for
// concurrent use.
func (s *System) Compile(q *query.Query) (*query.Compiled, error) {
	return s.compile(q)
}

// Run picks partitions for q at the budget, reads them through the I/O
// accountant, and returns the combined approximate answer.
func (s *System) Run(q *query.Query, budgetFrac float64) (*Result, error) {
	c, err := s.compile(q)
	if err != nil {
		return nil, err
	}
	return s.RunCompiled(c, budgetFrac)
}

// RunCompiled is Run for a pre-compiled query. It is safe for concurrent
// callers: picking derives a fresh per-request RNG, and evaluation state
// lives in per-call (or pooled per-worker) buffers. On a store-backed
// system the picked partitions are faulted in through the page cache.
func (s *System) RunCompiled(c *query.Compiled, budgetFrac float64) (*Result, error) {
	sel, pickStats, err := s.PickWithStats(c.Q, budgetFrac)
	if err != nil {
		return nil, err
	}
	res, err := s.RunSelection(c, sel)
	if err != nil {
		return nil, err
	}
	res.PickTime = pickStats.Total
	return res, nil
}

// RunSelection scans an already-picked weighted partition sample and combines
// the partial answers — the second half of RunCompiled. The serve layer calls
// it directly when its pick-result cache already holds the selection for
// (query, budget), skipping partition selection entirely. The selection is
// read, never mutated. PickTime is zero: no picking happened here.
func (s *System) RunSelection(c *query.Compiled, sel []query.WeightedPartition) (*Result, error) {
	return s.RunSelectionCtx(context.Background(), c, sel)
}

// RunExact evaluates q exactly over every partition (the baseline a user
// compares against). On a resident table this is the uncharged offline
// oracle scan; on a store-backed system every partition is read through the
// source — an exact scan over paged data is real I/O. Both paths combine
// per-partition answers in partition order, so the results are
// bit-identical (weight-1 accumulation equals plain summation in IEEE-754).
func (s *System) RunExact(q *query.Query) (*Result, error) {
	return s.RunExactCtx(context.Background(), q)
}

// uncachedReader is the optional capability a paged source offers for
// full scans that must not disturb its partition cache (store.Reader's
// ReadUncached).
type uncachedReader interface {
	ReadUncached(i int) (*table.Partition, error)
}

// exactScanSource routes an exact scan's reads around the source's
// partition cache when the source supports it: one RunExact over a paged
// store must not evict the approximate-serving working set. Sources
// without the capability (resident tables) pass through unchanged.
func exactScanSource(src table.PartitionSource) table.PartitionSource {
	if u, ok := src.(uncachedReader); ok {
		return &uncachedSource{PartitionSource: src, u: u}
	}
	return src
}

// uncachedSource is a PartitionSource whose Read bypasses the cache.
type uncachedSource struct {
	table.PartitionSource
	u uncachedReader
}

func (s *uncachedSource) Read(i int) (*table.Partition, error) { return s.u.ReadUncached(i) }

// budgetParts converts a fractional budget to a partition count (≥1).
func budgetParts(frac float64, total int) int {
	n := int(frac*float64(total) + 0.5)
	if n < 1 {
		n = 1
	}
	if n > total {
		n = total
	}
	return n
}
