package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"ps3/internal/query"
	"ps3/internal/store"
)

// This file holds the context-aware run path and its graceful-degradation
// policy. Cancellation granularity: the pick phase checks the context at
// entry (picking is CPU-bound and short — sub-millisecond at serving
// budgets); the scan phase observes it between partitions through
// exec.MapErrWithCtx. Degradation policy: quarantined partitions (blocks
// whose bytes failed CRC/decode twice — see store.ErrQuarantined) are
// dropped from the selection and the remainder is served with an explicit
// Degraded flag. Every other error fails the request: transient I/O is
// retryable by the caller, and a wrong answer is never served silently.

// RunCtx is Run under a context deadline.
func (s *System) RunCtx(ctx context.Context, q *query.Query, budgetFrac float64) (*Result, error) {
	c, err := s.compile(q)
	if err != nil {
		return nil, err
	}
	return s.RunCompiledCtx(ctx, c, budgetFrac)
}

// RunCompiledCtx is RunCompiled under a context deadline.
func (s *System) RunCompiledCtx(ctx context.Context, c *query.Compiled, budgetFrac float64) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sel, pickStats, err := s.PickWithStats(c.Q, budgetFrac)
	if err != nil {
		return nil, err
	}
	res, err := s.RunSelectionCtx(ctx, c, sel)
	if err != nil {
		return nil, err
	}
	res.PickTime = pickStats.Total
	return res, nil
}

// RunSelectionCtx is RunSelection under a context deadline, with the
// degradation loop: when the scan hits a quarantined partition, that
// partition — and any others the source has already fenced — is dropped
// from the selection and the scan retries over the survivors. The result
// carries Degraded=true and the dropped ids in SkippedParts; weights are
// not rescaled, so a degraded answer covers strictly less data than the
// picker chose and the client is told so. If every selected partition is
// quarantined there is nothing left to serve and the call errors.
func (s *System) RunSelectionCtx(ctx context.Context, c *query.Compiled, sel []query.WeightedPartition) (*Result, error) {
	scanStart := time.Now()
	cur := sel
	var skipped []int
	for {
		ans, err := c.EstimateCtx(ctx, s.Source, cur)
		if err == nil {
			vals := c.FinalValues(ans)
			labels := make(map[string]string, len(vals))
			for g := range vals { //lint:mapiter-ok independent per-key map-to-map transform; order-free
				labels[g] = c.GroupLabel(g)
			}
			sort.Ints(skipped)
			return &Result{
				Values:       vals,
				Labels:       labels,
				Selection:    cur,
				PartsRead:    len(cur),
				FracRead:     float64(len(cur)) / float64(s.Source.NumParts()),
				ScanTime:     time.Since(scanStart),
				Degraded:     len(skipped) > 0,
				SkippedParts: skipped,
			}, nil
		}
		var qe *store.QuarantineError
		if !errors.As(err, &qe) {
			return nil, err
		}
		// Drop the partition the scan tripped on plus everything the source
		// has already fenced — one pass usually clears the whole set, so the
		// retry does not trip partition-by-partition.
		drop := map[int]bool{qe.Part: true}
		if h, ok := s.Source.(healthReporter); ok {
			for _, p := range h.Health().QuarantinedParts {
				drop[p] = true
			}
		}
		next := make([]query.WeightedPartition, 0, len(cur))
		for _, wp := range cur {
			if drop[wp.Part] {
				skipped = append(skipped, wp.Part)
			} else {
				next = append(next, wp)
			}
		}
		if len(next) == 0 {
			return nil, fmt.Errorf("core: every selected partition is quarantined: %w", err)
		}
		if len(next) == len(cur) {
			// The quarantine error named a partition outside the selection —
			// nothing to drop, so retrying would loop forever.
			return nil, err
		}
		cur = next
	}
}

// RunExactCtx is RunExact under a context deadline. Exact means exact:
// a quarantined partition fails the call rather than degrading it — there
// is no honest partial answer to an exact query.
func (s *System) RunExactCtx(ctx context.Context, q *query.Query) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c, err := s.compile(q)
	if err != nil {
		return nil, err
	}
	var total *query.Answer
	if s.Table != nil {
		total, _ = c.GroundTruth(s.Table)
	} else {
		all := make([]query.WeightedPartition, s.Source.NumParts())
		for i := range all {
			all[i] = query.WeightedPartition{Part: i, Weight: 1}
		}
		total, err = c.EstimateCtx(ctx, exactScanSource(s.Source), all)
		if err != nil {
			return nil, err
		}
	}
	vals := c.FinalValues(total)
	labels := make(map[string]string, len(vals))
	for g := range vals { //lint:mapiter-ok independent per-key map-to-map transform; order-free
		labels[g] = c.GroupLabel(g)
	}
	return &Result{
		Values:    vals,
		Labels:    labels,
		PartsRead: s.Source.NumParts(),
		FracRead:  1,
	}, nil
}

// healthReporter is the optional capability a source offers for reporting
// quarantine state (store.Reader.Health; ingest's multi-segment source
// aggregates its segments').
type healthReporter interface {
	Health() store.HealthStats
}
