package core

import (
	"bytes"
	"strings"
	"testing"

	"ps3/internal/dataset"
	"ps3/internal/query"
	"ps3/internal/store"
	"ps3/internal/table"
)

// restoreFresh round-trips both the table and the system snapshot through
// bytes, simulating a cold start in a fresh process: nothing is shared with
// the original but the serialized artifacts.
func restoreFresh(t *testing.T, sys *System) *System {
	t.Helper()
	var tblBuf, snapBuf bytes.Buffer
	if _, err := sys.Table.WriteTo(&tblBuf); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.WriteTo(&snapBuf); err != nil {
		t.Fatal(err)
	}
	tbl, err := table.ReadTable(&tblBuf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := OpenSnapshot(&snapBuf, tbl)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func TestSnapshotRoundTripBitIdentical(t *testing.T) {
	sys, _, test := buildSystem(t, 25)
	back := restoreFresh(t, sys)
	if back.Picker == nil {
		t.Fatal("restored system is not trained")
	}

	for _, q := range test {
		for _, budget := range []float64{0.05, 0.2, 0.5} {
			selA, err := sys.Pick(q, budget)
			if err != nil {
				t.Fatal(err)
			}
			selB, err := back.Pick(q, budget)
			if err != nil {
				t.Fatal(err)
			}
			if len(selA) != len(selB) {
				t.Fatalf("query %s budget %v: %d vs %d partitions picked", q, budget, len(selA), len(selB))
			}
			for i := range selA {
				if selA[i] != selB[i] {
					t.Fatalf("query %s budget %v: selection %d differs: %+v vs %+v", q, budget, i, selA[i], selB[i])
				}
			}

			resA, err := sys.Run(q, budget)
			if err != nil {
				t.Fatal(err)
			}
			resB, err := back.Run(q, budget)
			if err != nil {
				t.Fatal(err)
			}
			if len(resA.Values) != len(resB.Values) {
				t.Fatalf("query %s budget %v: %d vs %d groups", q, budget, len(resA.Values), len(resB.Values))
			}
			for g, va := range resA.Values {
				vb, ok := resB.Values[g]
				if !ok {
					t.Fatalf("query %s budget %v: group %q missing after restore", q, budget, resA.Labels[g])
				}
				for j := range va {
					if va[j] != vb[j] {
						t.Fatalf("query %s budget %v group %q agg %d: %v vs %v (must be bit-identical)",
							q, budget, resA.Labels[g], j, va[j], vb[j])
					}
				}
			}
		}
	}
}

// TestSnapshotStoreBacked opens a snapshot over a paged store reader: Run
// must produce bit-identical answers to the resident restore, and the
// training entry points must refuse (training is a full-scan workload that
// belongs on materialized data).
func TestSnapshotStoreBacked(t *testing.T) {
	sys, _, test := buildSystem(t, 25)
	var storeBuf, snapBuf bytes.Buffer
	if _, err := store.Write(&storeBuf, sys.Table); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.WriteTo(&snapBuf); err != nil {
		t.Fatal(err)
	}
	r, err := store.NewReaderAt(bytes.NewReader(storeBuf.Bytes()), int64(storeBuf.Len()), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	back, err := OpenSnapshot(&snapBuf, r)
	if err != nil {
		t.Fatal(err)
	}
	if back.Table != nil {
		t.Fatal("store-backed restore must not claim a resident table")
	}
	for _, q := range test[:4] {
		want, err := sys.Run(q, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		got, err := back.Run(q, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		if len(want.Values) != len(got.Values) {
			t.Fatalf("query %s: %d vs %d groups", q, len(want.Values), len(got.Values))
		}
		for g, wv := range want.Values {
			gv, ok := got.Values[g]
			if !ok {
				t.Fatalf("query %s: group %q missing from store-backed run", q, want.Labels[g])
			}
			for j := range wv {
				if wv[j] != gv[j] {
					t.Fatalf("query %s group %q agg %d: %v vs %v", q, want.Labels[g], j, wv[j], gv[j])
				}
			}
		}
		exactWant, err := sys.RunExact(q)
		if err != nil {
			t.Fatal(err)
		}
		exactGot, err := back.RunExact(q)
		if err != nil {
			t.Fatal(err)
		}
		for g, wv := range exactWant.Values {
			gv := exactGot.Values[g]
			for j := range wv {
				if wv[j] != gv[j] {
					t.Fatalf("query %s exact group %q agg %d: %v vs %v", q, exactWant.Labels[g], j, wv[j], gv[j])
				}
			}
		}
	}
	// An exact scan reads around the partition cache: it must not evict
	// (or populate) the approximate-serving working set.
	before := r.CacheStats()
	if _, err := back.RunExact(test[0]); err != nil {
		t.Fatal(err)
	}
	if after := r.CacheStats(); after != before {
		t.Fatalf("RunExact disturbed the partition cache: %+v -> %+v", before, after)
	}
	if err := back.Train(test, nil); err == nil || !strings.Contains(err.Error(), "resident") {
		t.Fatalf("Train on a paged system: err = %v, want resident-table error", err)
	}
	if _, err := back.MakeExample(test[0]); err == nil {
		t.Fatal("MakeExample on a paged system should fail")
	}
}

func TestSnapshotRoundTripWithLSS(t *testing.T) {
	ds, err := dataset.Aria(dataset.Config{Rows: 8000, Parts: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(ds.Table, Options{Workload: ds.Workload, TrainLSS: true,
		LSSBudgets: []float64{0.2, 0.5}, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := query.NewGenerator(ds.Workload, ds.Table, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Train(gen.SampleN(15), nil); err != nil {
		t.Fatal(err)
	}
	back := restoreFresh(t, sys)
	if back.LSS == nil {
		t.Fatal("LSS baseline lost in round trip")
	}
	if len(back.LSS.StrataSize) != len(sys.LSS.StrataSize) {
		t.Fatalf("LSS strata: %d entries, want %d", len(back.LSS.StrataSize), len(sys.LSS.StrataSize))
	}
}

func TestSnapshotUntrainedSystem(t *testing.T) {
	ds, err := dataset.Aria(dataset.Config{Rows: 4000, Parts: 10, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(ds.Table, Options{Workload: ds.Workload, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	back := restoreFresh(t, sys)
	if back.Picker != nil || back.LSS != nil {
		t.Fatal("untrained snapshot came back trained")
	}
	// Still usable: train after restore.
	gen, err := query.NewGenerator(ds.Workload, back.Table, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Train(gen.SampleN(8), nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpenSnapshotRejectsGarbageAndMismatch(t *testing.T) {
	sys, ds, _ := buildSystem(t, 10)
	if _, err := OpenSnapshot(bytes.NewReader([]byte("not a snapshot")), ds.Table); err == nil {
		t.Fatal("want error decoding garbage")
	}
	var snap bytes.Buffer
	if _, err := sys.WriteTo(&snap); err != nil {
		t.Fatal(err)
	}
	// Opening against a table with a different partition count must fail.
	other, err := ds.WithPartitions(25)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSnapshot(bytes.NewReader(snap.Bytes()), other.Table); err == nil {
		t.Fatal("want error for partition-count mismatch")
	}
	// ... and against a different schema entirely.
	kdd, err := dataset.KDD(dataset.Config{Rows: 5000, Parts: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSnapshot(bytes.NewReader(snap.Bytes()), kdd.Table); err == nil {
		t.Fatal("want error for schema mismatch")
	}
}

// TestPickSeedDistinguishesEqualLengthQueries is the regression test for the
// seed-collision bug: the RNG used to be seeded with Seed ^ len(q.String()),
// so every equal-length query shared one randomness stream.
func TestPickSeedDistinguishesEqualLengthQueries(t *testing.T) {
	sys, _, _ := buildSystem(t, 20)
	// Two structurally different queries with identical text length.
	qa := &query.Query{Aggs: []query.Aggregate{{Kind: query.Sum, Expr: query.Col("olsize")}}}
	qb := &query.Query{Aggs: []query.Aggregate{{Kind: query.Avg, Expr: query.Col("olsize")}}}
	if len(qa.String()) != len(qb.String()) {
		t.Fatalf("test queries must have equal-length text: %q vs %q", qa, qb)
	}
	ra := sys.pickRNG(qa)
	rb := sys.pickRNG(qb)
	same := true
	for i := 0; i < 16; i++ {
		if ra.Int63() != rb.Int63() {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("equal-length queries %q and %q share a randomness stream", qa, qb)
	}
}

// TestPickDeterministicPerQuery asserts the flip side: the same query always
// gets the same stream, so repeated picks are reproducible.
func TestPickDeterministicPerQuery(t *testing.T) {
	sys, _, test := buildSystem(t, 20)
	for _, q := range test[:4] {
		a, err := sys.Pick(q, 0.15)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sys.Pick(q, 0.15)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("query %s: repeated picks differ in size: %d vs %d", q, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %s: repeated pick entry %d differs: %+v vs %+v", q, i, a[i], b[i])
			}
		}
	}
}
