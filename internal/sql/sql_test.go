package sql

import (
	"math/rand"
	"strings"
	"testing"

	"ps3/internal/query"
	"ps3/internal/table"
)

func parseOK(t *testing.T, src string) (*query.Query, string) {
	t.Helper()
	q, tbl, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q, tbl
}

func TestParseMinimal(t *testing.T) {
	q, tbl := parseOK(t, "SELECT COUNT(*) FROM logs")
	if tbl != "logs" {
		t.Fatalf("table = %q", tbl)
	}
	if len(q.Aggs) != 1 || q.Aggs[0].Kind != query.Count {
		t.Fatalf("aggs = %+v", q.Aggs)
	}
	if q.Pred != nil || len(q.GroupBy) != 0 {
		t.Fatalf("unexpected predicate/group-by: %v", q)
	}
}

func TestParseFullQuery(t *testing.T) {
	q, _ := parseOK(t, `
		SELECT region, SUM(price) AS revenue, AVG(price + tax), COUNT(*)
		FROM sales
		WHERE price > 10 AND region IN ('east', 'west') OR NOT qty <= 5
		GROUP BY region`)
	if len(q.Aggs) != 3 {
		t.Fatalf("%d aggregates, want 3", len(q.Aggs))
	}
	if q.Aggs[0].Name != "revenue" {
		t.Fatalf("alias = %q", q.Aggs[0].Name)
	}
	if q.Aggs[1].Kind != query.Avg {
		t.Fatalf("agg1 kind = %v", q.Aggs[1].Kind)
	}
	if got := len(q.GroupBy); got != 1 || q.GroupBy[0] != "region" {
		t.Fatalf("group by = %v", q.GroupBy)
	}
	// Predicate tree: OR(AND(price>10, region IN ...), NOT(qty<=5)).
	or, ok := q.Pred.(*query.Or)
	if !ok {
		t.Fatalf("top-level predicate is %T, want Or", q.Pred)
	}
	if len(or.Children) != 2 {
		t.Fatalf("OR has %d children", len(or.Children))
	}
	if _, ok := or.Children[1].(*query.Not); !ok {
		t.Fatalf("second OR child is %T, want Not", or.Children[1])
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	q, _ := parseOK(t, "select sum(x) from t where x >= 1 group by g")
	_ = q
	q2, _ := parseOK(t, "SELECT SUM(x) FROM t WHERE x >= 1 GROUP BY g")
	if q.String() != q2.String() {
		t.Fatalf("case-sensitivity leak: %q vs %q", q, q2)
	}
}

func TestParsePrecedenceAndParens(t *testing.T) {
	// AND binds tighter than OR.
	q, _ := parseOK(t, "SELECT COUNT(*) FROM t WHERE a = 1 OR b = 2 AND c = 3")
	or, ok := q.Pred.(*query.Or)
	if !ok || len(or.Children) != 2 {
		t.Fatalf("precedence broken: %v", q.Pred)
	}
	if _, ok := or.Children[1].(*query.And); !ok {
		t.Fatalf("b=2 AND c=3 not grouped: %T", or.Children[1])
	}
	// Parens override.
	q2, _ := parseOK(t, "SELECT COUNT(*) FROM t WHERE (a = 1 OR b = 2) AND c = 3")
	and, ok := q2.Pred.(*query.And)
	if !ok || len(and.Children) != 2 {
		t.Fatalf("parens broken: %v", q2.Pred)
	}
	if _, ok := and.Children[0].(*query.Or); !ok {
		t.Fatalf("(a OR b) not grouped: %T", and.Children[0])
	}
}

func TestParseBetween(t *testing.T) {
	q, _ := parseOK(t, "SELECT COUNT(*) FROM t WHERE x BETWEEN 1 AND 10")
	and, ok := q.Pred.(*query.And)
	if !ok || len(and.Children) != 2 {
		t.Fatalf("BETWEEN desugar: %v", q.Pred)
	}
	lo := and.Children[0].(*query.Clause)
	hi := and.Children[1].(*query.Clause)
	if lo.Op != query.OpGe || lo.Num != 1 || hi.Op != query.OpLe || hi.Num != 10 {
		t.Fatalf("BETWEEN bounds: %v / %v", lo, hi)
	}
}

func TestParseNotIn(t *testing.T) {
	q, _ := parseOK(t, "SELECT COUNT(*) FROM t WHERE c NOT IN ('a', 'b')")
	not, ok := q.Pred.(*query.Not)
	if !ok {
		t.Fatalf("NOT IN: %T", q.Pred)
	}
	in := not.Child.(*query.Clause)
	if in.Op != query.OpIn || len(in.Strs) != 2 {
		t.Fatalf("IN clause: %v", in)
	}
}

func TestParseNumericIn(t *testing.T) {
	q, _ := parseOK(t, "SELECT COUNT(*) FROM t WHERE x IN (1, 2, 3)")
	or, ok := q.Pred.(*query.Or)
	if !ok || len(or.Children) != 3 {
		t.Fatalf("numeric IN should desugar to OR of =: %v", q.Pred)
	}
	for i, c := range or.Children {
		cl := c.(*query.Clause)
		if cl.Op != query.OpEq || cl.Num != float64(i+1) {
			t.Fatalf("child %d: %v", i, cl)
		}
	}
}

func TestParseStringEqualityAndInequality(t *testing.T) {
	q, _ := parseOK(t, "SELECT COUNT(*) FROM t WHERE c = 'x'")
	cl := q.Pred.(*query.Clause)
	if cl.Op != query.OpEq || cl.Strs[0] != "x" {
		t.Fatalf("string eq: %v", cl)
	}
	q2, _ := parseOK(t, "SELECT COUNT(*) FROM t WHERE c != 'x'")
	if _, ok := q2.Pred.(*query.Not); !ok {
		t.Fatalf("string != should desugar to NOT(=): %T", q2.Pred)
	}
	q3, _ := parseOK(t, "SELECT COUNT(*) FROM t WHERE c <> 'x'")
	if q2.Pred.String() != q3.Pred.String() {
		t.Fatal("<> and != differ")
	}
}

func TestParseQuotedStringEscapes(t *testing.T) {
	q, _ := parseOK(t, "SELECT COUNT(*) FROM t WHERE c = 'it''s'")
	cl := q.Pred.(*query.Clause)
	if cl.Strs[0] != "it's" {
		t.Fatalf("escaped quote: %q", cl.Strs[0])
	}
}

func TestParseFilterClause(t *testing.T) {
	q, _ := parseOK(t, "SELECT SUM(price) FILTER (WHERE promo = 'yes') AS promo_rev FROM t")
	if q.Aggs[0].Filter == nil {
		t.Fatal("FILTER predicate missing")
	}
	if q.Aggs[0].Name != "promo_rev" {
		t.Fatalf("alias = %q", q.Aggs[0].Name)
	}
}

func TestParseLinearExpressions(t *testing.T) {
	q, _ := parseOK(t, "SELECT SUM(a + b - c), SUM(x - 1), SUM(-y + 2) FROM t")
	if len(q.Aggs) != 3 {
		t.Fatal("aggregates missing")
	}
	cols0 := q.Aggs[0].Expr.Columns()
	if len(cols0) != 3 {
		t.Fatalf("expr columns: %v", cols0)
	}
	if q.Aggs[1].Expr.Const != -1 {
		t.Fatalf("const = %v, want -1", q.Aggs[1].Expr.Const)
	}
	if q.Aggs[2].Expr.Const != 2 {
		t.Fatalf("const = %v, want 2", q.Aggs[2].Expr.Const)
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	q, _ := parseOK(t, "SELECT COUNT(*) FROM t WHERE x > -5")
	cl := q.Pred.(*query.Clause)
	if cl.Num != -5 {
		t.Fatalf("negative literal: %v", cl.Num)
	}
}

func TestParseGroupByMultiple(t *testing.T) {
	q, _ := parseOK(t, "SELECT a, b, COUNT(*) FROM t GROUP BY a, b")
	if len(q.GroupBy) != 2 {
		t.Fatalf("group by: %v", q.GroupBy)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                                         // empty
		"SELECT FROM t",                            // no select list
		"SELECT COUNT(*)",                          // no FROM
		"SELECT x FROM t",                          // bare column not in GROUP BY
		"SELECT x, COUNT(*) FROM t",                // ditto with aggregate present
		"SELECT region FROM t GROUP BY region",     // no aggregate at all
		"SELECT MAX(x) FROM t",                     // MAX out of scope (parsed as function call → error)
		"SELECT COUNT(*) FROM t WHERE",             // dangling WHERE
		"SELECT COUNT(*) FROM t WHERE x >",         // dangling comparison
		"SELECT COUNT(*) FROM t WHERE x > 'a'",     // ordered comparison on string
		"SELECT COUNT(*) FROM t WHERE c NOT = 1",   // NOT without IN/BETWEEN
		"SELECT COUNT(*) FROM t WHERE x IN ()",     // empty IN list
		"SELECT COUNT(*) FROM t WHERE x BETWEEN 1", // dangling BETWEEN
		"SELECT SUM() FROM t",                      // empty aggregate expression
		"SELECT COUNT(*) FROM t trailing",          // trailing tokens
		"SELECT COUNT(*) FROM t WHERE c = 'unterm", // unterminated string
		"SELECT COUNT(*) FROM t WHERE a ! b",       // bad operator
	}
	for _, src := range cases {
		if _, _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParsedQueriesCompileAndRun(t *testing.T) {
	// End-to-end: parse → compile → evaluate against a real table.
	schema := table.MustSchema(
		table.Column{Name: "price", Kind: table.Numeric, Positive: true},
		table.Column{Name: "qty", Kind: table.Numeric},
		table.Column{Name: "region", Kind: table.Categorical},
	)
	b, err := table.NewBuilder(schema, 50)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	regions := []string{"east", "west"}
	for i := 0; i < 500; i++ {
		if err := b.Append(
			[]float64{rng.Float64() * 100, float64(rng.Intn(10)), 0},
			[]string{"", "", regions[i%2]},
		); err != nil {
			t.Fatal(err)
		}
	}
	tbl := b.Finish()

	queries := []string{
		"SELECT COUNT(*) FROM t",
		"SELECT SUM(price) FROM t WHERE price > 50",
		"SELECT region, AVG(price) FROM t GROUP BY region",
		"SELECT region, SUM(price + qty) FROM t WHERE region = 'east' OR qty >= 5 GROUP BY region",
		"SELECT SUM(price) FILTER (WHERE qty > 3) FROM t WHERE price BETWEEN 10 AND 90",
		"SELECT COUNT(*) FROM t WHERE region NOT IN ('north')",
		"SELECT COUNT(*) FROM t WHERE NOT (price < 10 AND qty = 0)",
	}
	for _, src := range queries {
		q, _, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		c, err := query.Compile(q, tbl)
		if err != nil {
			t.Fatalf("Compile(%q): %v", src, err)
		}
		total, _ := c.GroundTruth(tbl)
		if total.NumGroups() == 0 && !strings.Contains(src, "north") {
			// Only the NOT IN ('north') query could plausibly be empty (it
			// isn't — all rows pass), so any empty answer is a bug.
			t.Fatalf("%q produced no groups", src)
		}
	}
}

func TestParsedPredicateMatchesHandBuilt(t *testing.T) {
	parsed, _ := parseOK(t, "SELECT COUNT(*) FROM t WHERE a >= 3 AND b = 'x'")
	hand := &query.Query{
		Aggs: []query.Aggregate{{Kind: query.Count}},
		Pred: query.NewAnd(
			&query.Clause{Col: "a", Op: query.OpGe, Num: 3},
			&query.Clause{Col: "b", Op: query.OpEq, Strs: []string{"x"}},
		),
	}
	if parsed.String() != hand.String() {
		t.Fatalf("parsed %q != hand-built %q", parsed, hand)
	}
}

func TestMustParsePanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic")
		}
	}()
	MustParse("not sql")
}
