package sql

import (
	"fmt"
	"strconv"
	"strings"

	"ps3/internal/query"
)

// Parse parses one SQL statement into a PS3 query. The table name in FROM
// is returned alongside (PS3 queries are single-table; the caller binds the
// name to a concrete table).
func Parse(src string) (*query.Query, string, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, "", err
	}
	p := &parser{toks: toks, src: src}
	q, table, err := p.parseSelect()
	if err != nil {
		return nil, "", err
	}
	if !p.at(tokEOF) {
		return nil, "", p.errorf("trailing input %q", p.cur().text)
	}
	return q, table, nil
}

// MustParse is Parse that panics on error; for static queries in tests and
// examples.
func MustParse(src string) *query.Query {
	q, _, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	i    int
	src  string
}

func (p *parser) cur() token               { return p.toks[p.i] }
func (p *parser) at(k tokKind) bool        { return p.cur().kind == k }
func (p *parser) atKeyword(kw string) bool { return p.cur().keyword(kw) }

func (p *parser) advance() token {
	t := p.cur()
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) expect(k tokKind, what string) (token, error) {
	if !p.at(k) {
		return token{}, p.errorf("expected %s, found %q", what, p.cur().text)
	}
	return p.advance(), nil
}

func (p *parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return p.errorf("expected %s, found %q", strings.ToUpper(kw), p.cur().text)
	}
	p.advance()
	return nil
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("sql: offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

// selectItem is one entry of the select list before group-by resolution.
type selectItem struct {
	agg *query.Aggregate
	col string // plain column reference
}

// parseSelect parses SELECT ... FROM ident [WHERE pred] [GROUP BY cols].
func (p *parser) parseSelect() (*query.Query, string, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, "", err
	}
	var items []selectItem
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, "", err
		}
		items = append(items, item)
		if !p.at(tokComma) {
			break
		}
		p.advance()
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, "", err
	}
	tbl, err := p.expect(tokIdent, "table name")
	if err != nil {
		return nil, "", err
	}

	q := &query.Query{}
	if p.atKeyword("where") {
		p.advance()
		pred, err := p.parseOr()
		if err != nil {
			return nil, "", err
		}
		q.Pred = pred
	}
	if p.atKeyword("group") {
		p.advance()
		if err := p.expectKeyword("by"); err != nil {
			return nil, "", err
		}
		for {
			c, err := p.expect(tokIdent, "group-by column")
			if err != nil {
				return nil, "", err
			}
			q.GroupBy = append(q.GroupBy, c.text)
			if !p.at(tokComma) {
				break
			}
			p.advance()
		}
	}

	// Resolve select items: plain columns must appear in GROUP BY (they are
	// group labels, not aggregates); aggregates carry over directly.
	inGroupBy := map[string]bool{}
	for _, g := range q.GroupBy {
		inGroupBy[g] = true
	}
	for _, item := range items {
		if item.agg != nil {
			q.Aggs = append(q.Aggs, *item.agg)
			continue
		}
		if !inGroupBy[item.col] {
			return nil, "", fmt.Errorf("sql: column %q in SELECT is neither aggregated nor in GROUP BY", item.col)
		}
	}
	if len(q.Aggs) == 0 {
		return nil, "", fmt.Errorf("sql: query has no aggregates (scope requires SUM/COUNT/AVG)")
	}
	return q, tbl.text, nil
}

// parseSelectItem parses one select-list entry: a plain column, or
// SUM(expr) / COUNT(*) / AVG(expr) with optional FILTER (WHERE pred) and
// optional AS alias.
func (p *parser) parseSelectItem() (selectItem, error) {
	if !p.at(tokIdent) {
		return selectItem{}, p.errorf("expected column or aggregate, found %q", p.cur().text)
	}
	name := p.cur().text
	var kind query.AggKind
	isAgg := true
	switch {
	case strings.EqualFold(name, "sum"):
		kind = query.Sum
	case strings.EqualFold(name, "count"):
		kind = query.Count
	case strings.EqualFold(name, "avg"):
		kind = query.Avg
	default:
		isAgg = false
	}
	if !isAgg || p.toks[p.i+1].kind != tokLParen {
		// Plain column reference.
		p.advance()
		return selectItem{col: name}, nil
	}
	p.advance() // aggregate name
	p.advance() // (
	agg := query.Aggregate{Kind: kind}
	if kind == query.Count {
		if _, err := p.expect(tokStar, "* in COUNT(*)"); err != nil {
			return selectItem{}, err
		}
	} else {
		expr, err := p.parseLinearExpr()
		if err != nil {
			return selectItem{}, err
		}
		agg.Expr = expr
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return selectItem{}, err
	}
	// FILTER (WHERE pred) — the §2.2 CASE rewrite.
	if p.atKeyword("filter") {
		p.advance()
		if _, err := p.expect(tokLParen, "( after FILTER"); err != nil {
			return selectItem{}, err
		}
		if err := p.expectKeyword("where"); err != nil {
			return selectItem{}, err
		}
		pred, err := p.parseOr()
		if err != nil {
			return selectItem{}, err
		}
		if _, err := p.expect(tokRParen, ") after FILTER predicate"); err != nil {
			return selectItem{}, err
		}
		agg.Filter = pred
	}
	if p.atKeyword("as") {
		p.advance()
		alias, err := p.expect(tokIdent, "alias")
		if err != nil {
			return selectItem{}, err
		}
		agg.Name = alias.text
	}
	return selectItem{agg: &agg}, nil
}

// parseLinearExpr parses a ±-linear combination of columns and numeric
// constants: `a + b - 2`, `price`, `3 + tax`.
func (p *parser) parseLinearExpr() (query.LinearExpr, error) {
	var e query.LinearExpr
	sign := 1.0
	if p.at(tokMinus) {
		sign = -1
		p.advance()
	} else if p.at(tokPlus) {
		p.advance()
	}
	for {
		switch {
		case p.at(tokIdent):
			t := p.advance()
			term := query.Col(t.text)
			if sign < 0 {
				e = e.Sub(term)
			} else {
				e = e.Add(term)
			}
		case p.at(tokNumber):
			t := p.advance()
			v, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return e, p.errorf("bad number %q", t.text)
			}
			e.Const += sign * v
		default:
			return e, p.errorf("expected column or number in expression, found %q", p.cur().text)
		}
		switch {
		case p.at(tokPlus):
			sign = 1
			p.advance()
		case p.at(tokMinus):
			sign = -1
			p.advance()
		default:
			return e, nil
		}
	}
}

// parseOr parses pred OR pred OR ... (lowest precedence).
func (p *parser) parseOr() (query.Pred, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	children := []query.Pred{left}
	for p.atKeyword("or") {
		p.advance()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		children = append(children, right)
	}
	return query.NewOr(children...), nil
}

// parseAnd parses pred AND pred AND ...
func (p *parser) parseAnd() (query.Pred, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	children := []query.Pred{left}
	for p.atKeyword("and") {
		p.advance()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		children = append(children, right)
	}
	return query.NewAnd(children...), nil
}

// parseUnary parses NOT pred, a parenthesized predicate, or a clause.
func (p *parser) parseUnary() (query.Pred, error) {
	if p.atKeyword("not") {
		p.advance()
		child, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &query.Not{Child: child}, nil
	}
	if p.at(tokLParen) {
		p.advance()
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return p.parseClause()
}

// parseClause parses col op value, col IN (v, ...), col BETWEEN a AND b,
// or col NOT IN (...).
func (p *parser) parseClause() (query.Pred, error) {
	colTok, err := p.expect(tokIdent, "column name")
	if err != nil {
		return nil, err
	}
	col := colTok.text

	negate := false
	if p.atKeyword("not") {
		// col NOT IN (...) / col NOT BETWEEN a AND b
		p.advance()
		negate = true
	}

	switch {
	case p.atKeyword("in"):
		p.advance()
		if _, err := p.expect(tokLParen, "( after IN"); err != nil {
			return nil, err
		}
		var strs []string
		var nums []float64
		numeric := false
		for {
			switch {
			case p.at(tokString):
				strs = append(strs, p.advance().text)
			case p.at(tokNumber):
				numeric = true
				v, perr := strconv.ParseFloat(p.advance().text, 64)
				if perr != nil {
					return nil, p.errorf("bad number in IN list")
				}
				nums = append(nums, v)
			default:
				return nil, p.errorf("expected literal in IN list, found %q", p.cur().text)
			}
			if !p.at(tokComma) {
				break
			}
			p.advance()
		}
		if _, err := p.expect(tokRParen, ") after IN list"); err != nil {
			return nil, err
		}
		var pred query.Pred
		if numeric {
			// Numeric IN desugars to OR of equalities.
			var eqs []query.Pred
			for _, v := range nums {
				eqs = append(eqs, &query.Clause{Col: col, Op: query.OpEq, Num: v})
			}
			pred = query.NewOr(eqs...)
		} else {
			pred = &query.Clause{Col: col, Op: query.OpIn, Strs: strs}
		}
		if negate {
			pred = &query.Not{Child: pred}
		}
		return pred, nil

	case p.atKeyword("between"):
		p.advance()
		lo, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		var pred query.Pred = query.NewAnd(
			&query.Clause{Col: col, Op: query.OpGe, Num: lo},
			&query.Clause{Col: col, Op: query.OpLe, Num: hi},
		)
		if negate {
			pred = &query.Not{Child: pred}
		}
		return pred, nil
	}

	if negate {
		return nil, p.errorf("expected IN or BETWEEN after NOT")
	}
	opTok, err := p.expect(tokOp, "comparison operator")
	if err != nil {
		return nil, err
	}
	var op query.Op
	switch opTok.text {
	case "=":
		op = query.OpEq
	case "!=":
		op = query.OpNe
	case "<":
		op = query.OpLt
	case "<=":
		op = query.OpLe
	case ">":
		op = query.OpGt
	case ">=":
		op = query.OpGe
	}
	switch {
	case p.at(tokNumber), p.at(tokMinus):
		v, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		return &query.Clause{Col: col, Op: op, Num: v}, nil
	case p.at(tokString):
		s := p.advance().text
		switch op {
		case query.OpEq:
			return &query.Clause{Col: col, Op: query.OpEq, Strs: []string{s}}, nil
		case query.OpNe:
			return &query.Not{Child: &query.Clause{Col: col, Op: query.OpEq, Strs: []string{s}}}, nil
		default:
			return nil, p.errorf("operator %s not supported on string literals (scope: equality and IN)", opTok.text)
		}
	default:
		return nil, p.errorf("expected literal after %s, found %q", opTok.text, p.cur().text)
	}
}

// parseNumber parses a possibly negated numeric literal.
func (p *parser) parseNumber() (float64, error) {
	sign := 1.0
	if p.at(tokMinus) {
		sign = -1
		p.advance()
	}
	t, err := p.expect(tokNumber, "number")
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, p.errorf("bad number %q", t.text)
	}
	return sign * v, nil
}
