// Package sql parses SQL text into PS3's query model. The dialect covers
// exactly the query scope of paper §2.2:
//
//	SELECT <group-cols and aggregates> FROM <table>
//	[WHERE <predicate>] [GROUP BY <cols>]
//
// with SUM/COUNT(*)/AVG aggregates over ±-linear column expressions
// (optionally FILTER (WHERE <pred>) — the CASE-condition rewrite), and
// predicates that are AND/OR/NOT combinations of single-column comparisons
// (=, !=, <>, <, <=, >, >=, IN, BETWEEN).
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates lexical token kinds.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString // single-quoted literal
	tokLParen
	tokRParen
	tokComma
	tokStar
	tokPlus
	tokMinus
	tokOp // comparison: = != <> < <= > >=
)

// token is one lexical token with its source position for error messages.
type token struct {
	kind tokKind
	text string
	pos  int
}

// lexer scans SQL text into tokens.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole input up front.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{tokLParen, "(", start}, nil
	case c == ')':
		l.pos++
		return token{tokRParen, ")", start}, nil
	case c == ',':
		l.pos++
		return token{tokComma, ",", start}, nil
	case c == '*':
		l.pos++
		return token{tokStar, "*", start}, nil
	case c == '+':
		l.pos++
		return token{tokPlus, "+", start}, nil
	case c == '-':
		l.pos++
		return token{tokMinus, "-", start}, nil
	case c == '=':
		l.pos++
		return token{tokOp, "=", start}, nil
	case c == '!':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{tokOp, "!=", start}, nil
		}
		return token{}, fmt.Errorf("sql: unexpected %q at offset %d", c, start)
	case c == '<':
		if l.pos+1 < len(l.src) {
			switch l.src[l.pos+1] {
			case '=':
				l.pos += 2
				return token{tokOp, "<=", start}, nil
			case '>':
				l.pos += 2
				return token{tokOp, "!=", start}, nil
			}
		}
		l.pos++
		return token{tokOp, "<", start}, nil
	case c == '>':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{tokOp, ">=", start}, nil
		}
		l.pos++
		return token{tokOp, ">", start}, nil
	case c == '\'':
		l.pos++
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, fmt.Errorf("sql: unterminated string starting at offset %d", start)
			}
			if l.src[l.pos] == '\'' {
				// '' escapes a quote inside the literal.
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					sb.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return token{tokString, sb.String(), start}, nil
			}
			sb.WriteByte(l.src[l.pos])
			l.pos++
		}
	case isDigit(c) || c == '.':
		for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.' ||
			l.src[l.pos] == 'e' || l.src[l.pos] == 'E' ||
			((l.src[l.pos] == '+' || l.src[l.pos] == '-') && l.pos > start &&
				(l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E'))) {
			l.pos++
		}
		return token{tokNumber, l.src[start:l.pos], start}, nil
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		return token{tokIdent, l.src[start:l.pos], start}, nil
	default:
		return token{}, fmt.Errorf("sql: unexpected %q at offset %d", c, start)
	}
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || unicode.IsLetter(rune(c)) }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) }

// keyword reports whether t is the given keyword, case-insensitively.
func (t token) keyword(kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
