package sql

import "testing"

// FuzzParseSQL hardens the lexer and recursive-descent parser against
// crashing inputs: Parse may reject anything, but must never panic, loop, or
// return a nil query without an error.
func FuzzParseSQL(f *testing.F) {
	seeds := []string{
		"",
		"SELECT COUNT(*) FROM t",
		"SELECT cat, SUM(x) FROM t GROUP BY cat",
		"SELECT SUM(x + y) AS s, AVG(y - x) FROM t WHERE x < 10 AND cat = 'a'",
		"SELECT COUNT(*) FILTER (WHERE y >= 2) FROM t WHERE NOT (a = 1 OR b != 2)",
		"SELECT SUM(x) FROM t WHERE cat IN ('a', 'b') GROUP BY cat, d",
		"SELECT AVG(x) FROM t WHERE d BETWEEN 3 AND 9",
		"SELECT SUM(2*x - 0.5) FROM lineitem WHERE price <> 1e9",
		"select sum(x) from t where x<=-1.5e-3",
		"SELECT",
		"SELECT )( FROM",
		"SELECT COUNT(*) FROM t WHERE",
		"SELECT COUNT(*) FROM t GROUP BY",
		"SELECT SUM( FROM t",
		"SELECT COUNT(*) FROM t WHERE cat IN (",
		"SELECT COUNT(*) FROM t WHERE x = 'unterminated",
		"SELECT COUNT(*) FROM t trailing garbage",
		"\x00\xff\xfe",
		"SELECT COUNT(*) FROM t WHERE ((((((x=1))))))",
		"SELECT COUNT(*) FILTER (WHERE NOT NOT NOT x = 1) FROM t",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, table, err := Parse(src)
		if err == nil && q == nil {
			t.Fatalf("Parse(%q) returned nil query without error", src)
		}
		if err == nil && table == "" {
			t.Fatalf("Parse(%q) returned empty table name without error", src)
		}
	})
}
