// Package fault is the injectable filesystem seam under PS3's persistence
// layers. Everything internal/store and internal/ingest do to disk — open,
// create, read, write, fsync, rename, remove, truncate, directory scans —
// goes through the FS interface, which has exactly two implementations:
//
//   - OS, the passthrough over the os package. This is the default
//     everywhere, adds one interface dispatch per call (the readers already
//     held their files behind io.ReaderAt), and is what production runs.
//   - Injector, a deterministic seeded fault injector wrapping another FS.
//     Chaos tests use it to script disk failures — fail the Nth matching
//     op, fail with probability p, tear a write, corrupt the bytes a read
//     returns, add latency — and then assert the system degrades instead of
//     lying: no acknowledged row lost, no silently wrong answer.
//
// The seam exists because the robustness contracts of the WAL, the flush
// protocol and the block-CRC quarantine path are unfalsifiable without a
// way to make the disk misbehave on demand. Injection is a test-only
// concern, but the seam is production code: the passthrough must stay thin.
package fault

import (
	"io"
	"os"
)

// File is the per-handle surface the store and ingest layers use. *os.File
// implements it directly; the injector wraps one.
type File interface {
	io.Reader
	io.ReaderAt
	io.Writer
	io.Seeker
	io.Closer
	// Sync flushes the file to stable storage (fsync).
	Sync() error
	// Stat returns the file's metadata.
	Stat() (os.FileInfo, error)
}

// FS is the filesystem seam: the operations PS3's persistence layers
// perform, and nothing more. Implementations must be safe for concurrent
// use.
type FS interface {
	// Open opens the named file (or directory — syncDir opens and fsyncs
	// directories) for reading.
	Open(name string) (File, error)
	// Create truncates or creates the named file for writing.
	Create(name string) (File, error)
	// OpenFile is the generalized open (the WAL appends with
	// O_CREATE|O_WRONLY|O_APPEND).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically moves oldpath to newpath (the segment-flush commit
	// point).
	Rename(oldpath, newpath string) error
	// Remove deletes the named file.
	Remove(name string) error
	// Truncate resizes the named file (WAL torn-tail truncation).
	Truncate(name string, size int64) error
	// Stat returns metadata for the named file.
	Stat(name string) (os.FileInfo, error)
	// ReadDir lists a directory (ingest recovery's inventory scan).
	ReadDir(name string) ([]os.DirEntry, error)
	// MkdirAll creates a directory tree.
	MkdirAll(name string, perm os.FileMode) error
}

// OS is the passthrough FS over the real filesystem — the production
// default.
var OS FS = osFS{}

// osFS delegates every call to the os package.
type osFS struct{}

// file lifts an (*os.File, error) pair into the File interface without
// wrapping a nil pointer in a non-nil interface on error.
func file(f *os.File, err error) (File, error) {
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Open(name string) (File, error)   { return file(os.Open(name)) }
func (osFS) Create(name string) (File, error) { return file(os.Create(name)) }
func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return file(os.OpenFile(name, flag, perm))
}
func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) Truncate(name string, size int64) error     { return os.Truncate(name, size) }
func (osFS) Stat(name string) (os.FileInfo, error)      { return os.Stat(name) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }
func (osFS) MkdirAll(name string, perm os.FileMode) error {
	return os.MkdirAll(name, perm)
}
