package fault

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestOSPassthrough exercises the full FS surface against the real
// filesystem: the passthrough must behave exactly like the os package.
func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "a.bin")

	f, err := OS.Create(name)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	payload := []byte("hello, fault seam")
	if n, err := f.Write(payload); err != nil || n != len(payload) {
		t.Fatalf("Write = (%d, %v), want (%d, nil)", n, err, len(payload))
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	g, err := OS.Open(name)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	got := make([]byte, len(payload))
	if _, err := g.ReadAt(got, 0); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("ReadAt = %q, want %q", got, payload)
	}
	if fi, err := g.Stat(); err != nil || fi.Size() != int64(len(payload)) {
		t.Fatalf("Stat = (%v, %v), want size %d", fi, err, len(payload))
	}
	g.Close()

	if err := OS.Truncate(name, 5); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	if fi, err := OS.Stat(name); err != nil || fi.Size() != 5 {
		t.Fatalf("Stat after truncate = (%v, %v), want size 5", fi, err)
	}
	name2 := filepath.Join(dir, "b.bin")
	if err := OS.Rename(name, name2); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	ents, err := OS.ReadDir(dir)
	if err != nil || len(ents) != 1 || ents[0].Name() != "b.bin" {
		t.Fatalf("ReadDir = (%v, %v), want [b.bin]", ents, err)
	}
	if err := OS.MkdirAll(filepath.Join(dir, "x/y"), 0o755); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	if err := OS.Remove(name2); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := OS.Open(name2); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("Open removed file: err = %v, want ErrNotExist", err)
	}
}

// TestOSCreateErrorReturnsNilInterface guards the typed-nil trap: an
// *os.File nil pointer must not leak into a non-nil File interface.
func TestOSCreateErrorReturnsNilInterface(t *testing.T) {
	f, err := OS.Create(filepath.Join(t.TempDir(), "no/such/dir/f"))
	if err == nil {
		t.Fatal("Create in missing dir succeeded")
	}
	if f != nil {
		t.Fatalf("Create error returned non-nil File %#v", f)
	}
}

// TestFailAtNth: the rule fires on exactly the Nth matching op, and every
// matching op from then on.
func TestFailAtNth(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "w.bin")
	inj := NewInjector(OS, 1, &Rule{Op: OpWrite, FailAt: 3})

	f, err := inj.Create(name)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer f.Close()
	for i := 1; i <= 2; i++ {
		if _, err := f.Write([]byte("ok")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if _, err := f.Write([]byte("boom")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write 3: err = %v, want ErrInjected", err)
	}
	if _, err := f.Write([]byte("still")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write 4: err = %v, want ErrInjected (FailAt is sticky)", err)
	}
	if ops, fired := inj.Stats(); fired != 2 {
		t.Fatalf("Stats = (%d ops, %d fired), want 2 fired", ops, fired)
	}
}

// TestMaxFiresWindow: FailAt + MaxFires fires on ops [N, N+MaxFires) only.
func TestMaxFiresWindow(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS, 1, &Rule{Op: OpSync, FailAt: 2, MaxFires: 1})
	f, err := inj.Create(filepath.Join(dir, "s.bin"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 1: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync 2: err = %v, want ErrInjected", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 3 (rule exhausted): %v", err)
	}
}

// TestTornWrite: a torn write persists a strict prefix of the buffer and
// still reports the injected error.
func TestTornWrite(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "torn.bin")
	inj := NewInjector(OS, 1, &Rule{Op: OpWrite, FailAt: 1, Torn: true})

	f, err := inj.Create(name)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	payload := []byte("0123456789abcdef")
	n, err := f.Write(payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write: err = %v, want ErrInjected", err)
	}
	if n <= 0 || n >= len(payload) {
		t.Fatalf("torn write persisted %d bytes, want a strict prefix", n)
	}
	f.Close()

	got, err := os.ReadFile(name)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !bytes.Equal(got, payload[:n]) {
		t.Fatalf("on disk %q, want prefix %q", got, payload[:n])
	}
}

// TestCorruptRead: a Corrupt rule lets the read succeed but damages
// exactly one bit; the file itself is untouched and a clean re-read
// returns the original bytes.
func TestCorruptRead(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "c.bin")
	payload := bytes.Repeat([]byte{0xAA}, 64)
	if err := os.WriteFile(name, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(OS, 7, &Rule{Op: OpRead, FailAt: 1, MaxFires: 1})
	inj.ClearRules()
	inj.AddRule(&Rule{Op: OpRead, FailAt: 1, MaxFires: 1, Corrupt: true})

	f, err := inj.Open(name)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer f.Close()

	got := make([]byte, len(payload))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatalf("corrupt ReadAt returned error %v, want silent corruption", err)
	}
	diff := 0
	for i := range got {
		if got[i] != payload[i] {
			diff += popcount(got[i] ^ payload[i])
		}
	}
	if diff != 1 {
		t.Fatalf("corruption flipped %d bits, want exactly 1", diff)
	}

	// Rule exhausted: the next read is clean.
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatalf("second ReadAt: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("second ReadAt still corrupted after MaxFires exhausted")
	}
}

func popcount(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

// TestProbDeterminism: the same seed and operation sequence produce the
// same fault sequence.
func TestProbDeterminism(t *testing.T) {
	run := func(seed int64) []bool {
		dir := t.TempDir()
		inj := NewInjector(OS, seed, &Rule{Op: OpWrite, Prob: 0.5})
		f, err := inj.Create(filepath.Join(dir, "p.bin"))
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		defer f.Close()
		outcomes := make([]bool, 40)
		for i := range outcomes {
			_, err := f.Write([]byte{byte(i)})
			outcomes[i] = errors.Is(err, ErrInjected)
		}
		return outcomes
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d: seed-42 runs disagree (%v vs %v)", i, a[i], b[i])
		}
	}
	anyFired, anyClean := false, false
	for _, v := range a {
		if v {
			anyFired = true
		} else {
			anyClean = true
		}
	}
	if !anyFired || !anyClean {
		t.Fatalf("p=0.5 over 40 ops produced fired=%v clean=%v, want both", anyFired, anyClean)
	}
}

// TestPathFilter: rules scoped by path substring leave other files alone.
func TestPathFilter(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS, 1, &Rule{Op: OpCreate, Path: "wal", FailAt: 1})
	if _, err := inj.Create(filepath.Join(dir, "seg-000001.ps3")); err != nil {
		t.Fatalf("unrelated create failed: %v", err)
	}
	if _, err := inj.Create(filepath.Join(dir, "wal-000002.log")); !errors.Is(err, ErrInjected) {
		t.Fatalf("wal create: err = %v, want ErrInjected", err)
	}
}

// TestCustomErrAndDelay: a rule's Err is wrapped (both ErrInjected and the
// custom error match) and Delay actually stalls the op.
func TestCustomErrAndDelay(t *testing.T) {
	dir := t.TempDir()
	errDisk := errors.New("disk on fire")
	inj := NewInjector(OS, 1,
		&Rule{Op: OpRename, FailAt: 1, Err: errDisk, Delay: 20 * time.Millisecond})
	src := filepath.Join(dir, "a")
	if err := os.WriteFile(src, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := inj.Rename(src, filepath.Join(dir, "b"))
	if !errors.Is(err, ErrInjected) || !errors.Is(err, errDisk) {
		t.Fatalf("err = %v, want both ErrInjected and errDisk", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("rename returned after %v, want >= ~20ms delay", d)
	}
	if _, err := os.Stat(src); err != nil {
		t.Fatalf("failed rename must leave source intact: %v", err)
	}
}

// TestSequentialReadThroughInjector: plain Read (not ReadAt) flows through
// the schedule too — ingest WAL replay uses sequential reads.
func TestSequentialReadThroughInjector(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "r.bin")
	if err := os.WriteFile(name, []byte("abcdef"), 0o644); err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(OS, 1, &Rule{Op: OpRead, FailAt: 2})
	f, err := inj.Open(name)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer f.Close()
	buf := make([]byte, 3)
	if _, err := f.Read(buf); err != nil {
		t.Fatalf("read 1: %v", err)
	}
	if _, err := f.Read(buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("read 2: err = %v, want ErrInjected", err)
	}
}
