package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the sentinel every injector-made error wraps. Tests match
// it with errors.Is to tell scripted faults apart from real IO problems.
var ErrInjected = errors.New("fault: injected error")

// Op names a filesystem operation a Rule can match.
type Op int

const (
	OpAny Op = iota // matches every operation
	OpOpen
	OpCreate
	OpRead  // File.Read, File.ReadAt
	OpWrite // File.Write
	OpSync
	OpRename
	OpRemove
	OpTruncate
	OpStat
	OpReadDir
	OpMkdir
)

var opNames = [...]string{"any", "open", "create", "read", "write", "sync",
	"rename", "remove", "truncate", "stat", "readdir", "mkdir"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Rule describes one scripted fault. A rule fires when an operation matches
// Op and Path and its trigger (FailAt or Prob) says so; what firing does is
// governed by Err/Torn/Corrupt/Delay. Zero-valued fields are permissive:
// zero Op matches everything, empty Path matches every file, zero MaxFires
// means unlimited.
type Rule struct {
	// Op restricts the rule to one operation kind (OpAny matches all).
	Op Op
	// Path, when non-empty, must be a substring of the operation's file
	// path. Ops without a path (none currently) never match a non-empty
	// Path.
	Path string
	// FailAt, when > 0, fires the rule on exactly the Nth matching
	// operation (1-based) and not before. Combines with MaxFires to fire
	// on a range starting at the Nth.
	FailAt int64
	// Prob, when > 0, fires the rule on each matching operation with this
	// probability, drawn from the injector's seeded RNG. Ignored when
	// FailAt is set.
	Prob float64
	// MaxFires, when > 0, caps how many times the rule fires; afterwards
	// it goes inert.
	MaxFires int64
	// Err is the error returned when the rule fires (wrapped so that
	// errors.Is(err, ErrInjected) holds). Nil defaults to a generic
	// injected error. Ignored by Corrupt rules, which let the operation
	// succeed with damaged data.
	Err error
	// Torn, on a Write, writes only a prefix (roughly half) of the buffer
	// before returning the error — a torn write, as after a crash
	// mid-append.
	Torn bool
	// Corrupt, on a Read/ReadAt, lets the call succeed but flips one bit
	// in the returned buffer — silent media corruption, which the store's
	// block CRCs must catch.
	Corrupt bool
	// Delay, when > 0, sleeps before performing the operation (whether or
	// not an error fires). Models slow devices for deadline tests.
	Delay time.Duration

	matched int64 // operations that matched Op+Path (guarded by Injector.mu)
	fired   int64 // times the rule actually fired
}

// verdict is what the rule engine decided for one operation.
type verdict struct {
	delay   time.Duration
	err     error // non-nil: fail the op with this error
	torn    bool  // write a prefix first, then return err
	corrupt bool  // succeed but flip a bit in the read buffer
}

// Injector is an FS that applies a scripted fault schedule on top of an
// inner FS. Matching and RNG draws happen under a mutex so a fixed seed
// plus a fixed operation sequence yields a fixed fault sequence.
type Injector struct {
	inner FS

	mu    sync.Mutex
	rng   *rand.Rand
	rules []*Rule
	ops   int64 // total operations seen
	fired int64 // total faults fired (errors + corruptions)
}

// NewInjector wraps inner with a deterministic fault schedule. The seed
// drives probabilistic rules; rules are evaluated in order and the first
// one that fires wins (delays accumulate across all matching rules).
func NewInjector(inner FS, seed int64, rules ...*Rule) *Injector {
	return &Injector{
		inner: inner,
		rng:   rand.New(rand.NewSource(seed)),
		rules: rules,
	}
}

// AddRule appends a rule to a live injector (chaos tests escalate
// schedules mid-run).
func (in *Injector) AddRule(r *Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = append(in.rules, r)
}

// ClearRules drops every rule, turning the injector into a passthrough.
// Counters are kept.
func (in *Injector) ClearRules() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = nil
}

// Stats reports how many operations the injector has seen and how many
// faults it fired.
func (in *Injector) Stats() (ops, fired int64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops, in.fired
}

// decide evaluates the schedule for one operation. The sleep (if any)
// happens in the caller, outside the lock.
func (in *Injector) decide(op Op, path string) verdict {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.ops++
	var v verdict
	for _, r := range in.rules {
		if r.Op != OpAny && r.Op != op {
			continue
		}
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		r.matched++
		v.delay += r.Delay
		if v.err != nil || v.corrupt {
			continue // a fault already fired; later rules only add delay
		}
		if r.MaxFires > 0 && r.fired >= r.MaxFires {
			continue
		}
		fire := false
		switch {
		case r.FailAt > 0:
			fire = r.matched >= r.FailAt
		case r.Prob > 0:
			fire = in.rng.Float64() < r.Prob
		}
		if !fire {
			continue
		}
		r.fired++
		in.fired++
		if r.Corrupt {
			v.corrupt = true
			continue
		}
		v.torn = r.Torn
		if r.Err != nil {
			v.err = fmt.Errorf("%s %s: %w: %w", op, path, ErrInjected, r.Err)
		} else {
			v.err = fmt.Errorf("%s %s: %w", op, path, ErrInjected)
		}
	}
	return v
}

// apply runs the verdict's delay and returns its error (nil when the op
// should proceed).
func (v verdict) apply() error {
	if v.delay > 0 {
		time.Sleep(v.delay)
	}
	return v.err
}

func (in *Injector) Open(name string) (File, error) {
	if err := in.decide(OpOpen, name).apply(); err != nil {
		return nil, err
	}
	f, err := in.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f, name: name}, nil
}

func (in *Injector) Create(name string) (File, error) {
	if err := in.decide(OpCreate, name).apply(); err != nil {
		return nil, err
	}
	f, err := in.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f, name: name}, nil
}

func (in *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err := in.decide(OpOpen, name).apply(); err != nil {
		return nil, err
	}
	f, err := in.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f, name: name}, nil
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if err := in.decide(OpRename, newpath).apply(); err != nil {
		return err
	}
	return in.inner.Rename(oldpath, newpath)
}

func (in *Injector) Remove(name string) error {
	if err := in.decide(OpRemove, name).apply(); err != nil {
		return err
	}
	return in.inner.Remove(name)
}

func (in *Injector) Truncate(name string, size int64) error {
	if err := in.decide(OpTruncate, name).apply(); err != nil {
		return err
	}
	return in.inner.Truncate(name, size)
}

func (in *Injector) Stat(name string) (os.FileInfo, error) {
	if err := in.decide(OpStat, name).apply(); err != nil {
		return nil, err
	}
	return in.inner.Stat(name)
}

func (in *Injector) ReadDir(name string) ([]os.DirEntry, error) {
	if err := in.decide(OpReadDir, name).apply(); err != nil {
		return nil, err
	}
	return in.inner.ReadDir(name)
}

func (in *Injector) MkdirAll(name string, perm os.FileMode) error {
	if err := in.decide(OpMkdir, name).apply(); err != nil {
		return err
	}
	return in.inner.MkdirAll(name, perm)
}

// injFile applies the schedule to per-handle operations.
type injFile struct {
	in   *Injector
	f    File
	name string
}

func (g *injFile) Read(p []byte) (int, error) {
	v := g.in.decide(OpRead, g.name)
	if err := v.apply(); err != nil {
		return 0, err
	}
	n, err := g.f.Read(p)
	if v.corrupt && n > 0 {
		corruptByte(g.in, p[:n])
	}
	return n, err
}

func (g *injFile) ReadAt(p []byte, off int64) (int, error) {
	v := g.in.decide(OpRead, g.name)
	if err := v.apply(); err != nil {
		return 0, err
	}
	n, err := g.f.ReadAt(p, off)
	if v.corrupt && n > 0 {
		corruptByte(g.in, p[:n])
	}
	return n, err
}

func (g *injFile) Write(p []byte) (int, error) {
	v := g.in.decide(OpWrite, g.name)
	if v.delay > 0 {
		time.Sleep(v.delay)
	}
	if v.err != nil {
		if v.torn && len(p) > 1 {
			n, werr := g.f.Write(p[:len(p)/2])
			if werr != nil {
				return n, werr
			}
			return n, v.err
		}
		return 0, v.err
	}
	return g.f.Write(p)
}

func (g *injFile) Seek(offset int64, whence int) (int64, error) {
	return g.f.Seek(offset, whence)
}

func (g *injFile) Sync() error {
	if err := g.in.decide(OpSync, g.name).apply(); err != nil {
		return err
	}
	return g.f.Sync()
}

func (g *injFile) Stat() (os.FileInfo, error) { return g.f.Stat() }
func (g *injFile) Close() error               { return g.f.Close() }

// corruptByte flips one pseudo-randomly chosen bit in buf, drawing the
// position from the injector's seeded RNG so corruption is reproducible.
func corruptByte(in *Injector, buf []byte) {
	in.mu.Lock()
	i := in.rng.Intn(len(buf))
	bit := uint(in.rng.Intn(8))
	in.mu.Unlock()
	buf[i] ^= 1 << bit
}
