// Package gbt implements gradient-boosted regression trees from scratch — a
// stdlib-only substitute for the XGBoost regressor the paper uses as the
// base model of the importance funnel (§4.3, Appendix B.2). It provides:
//
//   - squared-error gradient boosting with shrinkage,
//   - histogram-based split finding over pre-binned features with
//     second-order (Newton) leaf weights and L2 regularization,
//   - per-feature "gain" importance, used to reproduce Fig 5.
package gbt

import "sort"

// node is one tree node; leaves have feature == -1.
type node struct {
	feature int
	thresh  float64
	left    int
	right   int
	value   float64
}

// tree is a regression tree over dense float64 feature vectors.
type tree struct {
	nodes []node
}

// goesRight is the single traversal rule shared by the pointer-tree and flat
// evaluators: a row descends right iff its feature value does NOT satisfy
// x <= thresh. Spelled with the negation so the NaN case is a defined part of
// the contract rather than incidental comparison semantics: NaN fails every
// ordered comparison, so NaN features always descend right; -Inf always goes
// left and +Inf always goes right (unless the threshold is itself +Inf).
func goesRight(x, thresh float64) bool { return !(x <= thresh) }

// predict returns the tree's output for x.
func (t *tree) predict(x []float64) float64 {
	i := 0
	for {
		n := &t.nodes[i]
		if n.feature < 0 {
			return n.value
		}
		if goesRight(x[n.feature], n.thresh) {
			i = n.right
		} else {
			i = n.left
		}
	}
}

// binCuts computes up to maxBins-1 candidate thresholds for one feature from
// quantiles of the training data.
func binCuts(xs [][]float64, feature, maxBins int) []float64 {
	vals := make([]float64, 0, len(xs))
	for _, row := range xs {
		vals = append(vals, row[feature])
	}
	sort.Float64s(vals)
	cuts := make([]float64, 0, maxBins)
	n := len(vals)
	for b := 1; b < maxBins; b++ {
		q := vals[b*n/maxBins]
		if len(cuts) == 0 || q > cuts[len(cuts)-1] {
			cuts = append(cuts, q)
		}
	}
	// Drop a trailing cut equal to the max: splitting there is vacuous.
	if len(cuts) > 0 && cuts[len(cuts)-1] >= vals[n-1] {
		cuts = cuts[:len(cuts)-1]
	}
	return cuts
}

// binMatrix pre-bins every value into its cut bucket so split search is a
// direct histogram accumulation (bin b means value <= cuts[b], the last bin
// means value > all cuts).
func binMatrix(xs [][]float64, cuts [][]float64) [][]uint8 {
	n := len(xs)
	m := len(cuts)
	codes := make([][]uint8, n)
	for i := 0; i < n; i++ {
		row := make([]uint8, m)
		for f := 0; f < m; f++ {
			row[f] = uint8(sort.SearchFloat64s(cuts[f], xs[i][f]))
		}
		codes[i] = row
	}
	return codes
}

// splitCtx carries shared state while growing one tree.
type splitCtx struct {
	xs      [][]float64
	codes   [][]uint8
	cuts    [][]float64
	active  []bool // feature participation this round (column sampling)
	grad    []float64
	hess    []float64
	lambda  float64
	minLeaf int
	gamma   float64
	// importance accumulates split gain per feature.
	importance []float64
	// scratch histograms, reused across nodes.
	gBin, hBin []float64
	nBin       []int
}

// leafValue is the Newton-step optimal leaf weight -G/(H+λ).
func (c *splitCtx) leafValue(idx []int) float64 {
	var g, h float64
	for _, i := range idx {
		g += c.grad[i]
		h += c.hess[i]
	}
	return -g / (h + c.lambda)
}

// scoreGain computes the XGBoost split gain for a candidate partition of
// gradients.
func scoreGain(gl, hl, gr, hr, lambda float64) float64 {
	score := func(g, h float64) float64 { return g * g / (h + lambda) }
	return 0.5 * (score(gl, hl) + score(gr, hr) - score(gl+gr, hl+hr))
}

// bestSplit finds the best (feature, bin-threshold) for the rows in idx, or
// ok=false if no split improves the objective beyond gamma.
func (c *splitCtx) bestSplit(idx []int) (feat int, thresh float64, gain float64, ok bool) {
	var gTot, hTot float64
	for _, i := range idx {
		gTot += c.grad[i]
		hTot += c.hess[i]
	}
	bestGain := c.gamma
	for f := range c.cuts {
		if !c.active[f] {
			continue
		}
		cuts := c.cuts[f]
		nb := len(cuts) + 1
		if nb < 2 {
			continue
		}
		gBin := c.gBin[:nb]
		hBin := c.hBin[:nb]
		nBin := c.nBin[:nb]
		for b := 0; b < nb; b++ {
			gBin[b], hBin[b], nBin[b] = 0, 0, 0
		}
		for _, i := range idx {
			b := c.codes[i][f]
			gBin[b] += c.grad[i]
			hBin[b] += c.hess[i]
			nBin[b]++
		}
		var gl, hl float64
		nl := 0
		for b := 0; b < len(cuts); b++ {
			gl += gBin[b]
			hl += hBin[b]
			nl += nBin[b]
			nr := len(idx) - nl
			if nl < c.minLeaf || nr < c.minLeaf {
				continue
			}
			g := scoreGain(gl, hl, gTot-gl, hTot-hl, c.lambda)
			if g > bestGain {
				bestGain, feat, thresh, ok = g, f, cuts[b], true
			}
		}
	}
	return feat, thresh, bestGain, ok
}

// grow builds a tree of at most maxDepth on the rows in idx.
func (c *splitCtx) grow(idx []int, maxDepth int) *tree {
	t := &tree{}
	var build func(idx []int, depth int) int
	build = func(idx []int, depth int) int {
		id := len(t.nodes)
		t.nodes = append(t.nodes, node{feature: -1})
		if depth >= maxDepth || len(idx) < 2*c.minLeaf {
			t.nodes[id].value = c.leafValue(idx)
			return id
		}
		f, th, gain, ok := c.bestSplit(idx)
		if !ok {
			t.nodes[id].value = c.leafValue(idx)
			return id
		}
		c.importance[f] += gain
		var left, right []int
		for _, i := range idx {
			if c.xs[i][f] <= th {
				left = append(left, i)
			} else {
				right = append(right, i)
			}
		}
		if len(left) == 0 || len(right) == 0 {
			t.nodes[id].value = c.leafValue(idx)
			return id
		}
		l := build(left, depth+1)
		r := build(right, depth+1)
		t.nodes[id] = node{feature: f, thresh: th, left: l, right: r}
		return id
	}
	build(idx, 0)
	return t
}
