package gbt

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// trainRandomModel fits a small ensemble on noisy random data so trees have
// real depth and varied topology.
func trainRandomModel(t testing.TB, seed int64, n, dim int) (*Model, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		row := make([]float64, dim)
		for j := range row {
			row[j] = rng.NormFloat64() * float64(j+1)
		}
		xs[i] = row
		ys[i] = row[0]*2 - row[dim-1] + rng.NormFloat64()*0.1
	}
	m, err := Train(xs, ys, Params{Trees: 25, MaxDepth: 5, Subsample: 0.9, ColSample: 0.9, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return m, xs
}

// TestFlatMatchesReferenceBitIdentical is the core equivalence contract: the
// compiled flat engine must reproduce the pointer-tree reference evaluator
// bit for bit, on training rows and on fresh random rows.
func TestFlatMatchesReferenceBitIdentical(t *testing.T) {
	for _, seed := range []int64{1, 2, 7, 42} {
		m, xs := trainRandomModel(t, seed, 300, 6)
		rng := rand.New(rand.NewSource(seed + 100))
		probe := append([][]float64(nil), xs...)
		for i := 0; i < 200; i++ {
			row := make([]float64, 6)
			for j := range row {
				row[j] = rng.NormFloat64() * 50
			}
			probe = append(probe, row)
		}
		dst := make([]float64, len(probe))
		m.PredictBatch(dst, probe)
		for i, x := range probe {
			ref := m.PredictReference(x)
			if got := m.Predict(x); got != ref {
				t.Fatalf("seed %d row %d: Predict %v != reference %v", seed, i, got, ref)
			}
			if dst[i] != ref {
				t.Fatalf("seed %d row %d: PredictBatch %v != reference %v", seed, i, dst[i], ref)
			}
		}
	}
}

// TestPredictFlatMatchesBatch checks the row-major entry point against the
// slice-of-rows one, including a stride wider than the model dimension.
func TestPredictFlatMatchesBatch(t *testing.T) {
	m, xs := trainRandomModel(t, 3, 200, 5)
	for _, stride := range []int{5, 8} {
		flat := make([]float64, len(xs)*stride)
		for i, row := range xs {
			copy(flat[i*stride:], row)
		}
		want := make([]float64, len(xs))
		m.PredictBatch(want, xs)
		got := make([]float64, len(xs))
		m.PredictFlat(got, flat, stride)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("stride %d: PredictFlat diverges from PredictBatch", stride)
		}
	}
}

// TestNaNGoesRight pins the defined non-finite traversal rule: NaN features
// descend right at every split, in both evaluators, and ±Inf behave as
// ordered extremes. The rule is goesRight(x, t) = !(x <= t).
func TestNaNGoesRight(t *testing.T) {
	nan := math.NaN()
	if !goesRight(nan, 0) || !goesRight(nan, math.Inf(1)) || !goesRight(nan, math.Inf(-1)) {
		t.Fatal("NaN must descend right at every split")
	}
	if goesRight(math.Inf(-1), 0) {
		t.Fatal("-Inf must descend left of any finite threshold")
	}
	if !goesRight(math.Inf(1), 0) {
		t.Fatal("+Inf must descend right of any finite threshold")
	}
	if goesRight(math.Inf(1), math.Inf(1)) {
		t.Fatal("+Inf <= +Inf: must descend left")
	}

	// End to end: non-finite feature vectors evaluate identically (bitwise)
	// on the reference and flat paths, and produce finite outputs (leaves are
	// finite, traversal is total).
	m, _ := trainRandomModel(t, 11, 300, 4)
	rng := rand.New(rand.NewSource(12))
	specials := []float64{nan, math.Inf(1), math.Inf(-1), 0, -1e300, 1e300}
	var probe [][]float64
	for i := 0; i < 500; i++ {
		row := make([]float64, 4)
		for j := range row {
			if rng.Intn(2) == 0 {
				row[j] = specials[rng.Intn(len(specials))]
			} else {
				row[j] = rng.NormFloat64() * 10
			}
		}
		probe = append(probe, row)
		ref := m.PredictReference(row)
		if got := m.Predict(row); got != ref {
			t.Fatalf("non-finite row %v: flat %v != reference %v", row, got, ref)
		}
		if math.IsNaN(ref) || math.IsInf(ref, 0) {
			t.Fatalf("non-finite prediction %v for row %v", ref, row)
		}
	}
	// The batch tables route non-finite features identically.
	batch := make([]float64, len(probe))
	m.PredictBatch(batch, probe)
	for i, row := range probe {
		if ref := m.PredictReference(row); batch[i] != ref {
			t.Fatalf("non-finite row %v: batch %v != reference %v", row, batch[i], ref)
		}
	}

	// A NaN feature must take the right subtree of a split on that feature:
	// build a deterministic one-split model via snapshot.
	s := ModelSnapshot{
		Params: Params{LearningRate: 1},
		Base:   0,
		Dim:    1,
		Trees: []TreeSnapshot{{Nodes: []NodeSnapshot{
			{Feature: 0, Thresh: 0.5, Left: 1, Right: 2},
			{Feature: -1, Value: -1}, // left
			{Feature: -1, Value: +1}, // right
		}}},
	}
	sm, err := FromSnapshot(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := sm.Predict([]float64{nan}); got != 1 {
		t.Fatalf("NaN routed to value %v, want right leaf (+1)", got)
	}
	if got := sm.PredictReference([]float64{nan}); got != 1 {
		t.Fatalf("reference routed NaN to value %v, want right leaf (+1)", got)
	}
}

// TestSnapshotRoundTripsThroughFlatCompiler is the golden guarantee for
// PR-3/PR-4 snapshots: restoring a snapshot and compiling it flat yields
// exactly the arrays of the original model's flat form, and bit-identical
// predictions.
func TestSnapshotRoundTripsThroughFlatCompiler(t *testing.T) {
	m, xs := trainRandomModel(t, 21, 250, 5)
	back, err := FromSnapshot(m.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.flat, back.flat) {
		t.Fatal("flat compile of restored snapshot differs from original")
	}
	a := make([]float64, len(xs))
	b := make([]float64, len(xs))
	m.PredictBatch(a, xs)
	back.PredictBatch(b, xs)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("restored snapshot predicts differently through the flat engine")
	}
}

// TestFlatTopologyCounts sanity-checks the compiled layout: every tree
// contributes nodes+leaves matching its pointer form, and single-leaf trees
// compile to a negative root.
func TestFlatTopologyCounts(t *testing.T) {
	m, _ := trainRandomModel(t, 5, 300, 4)
	splits, leaves := 0, 0
	for _, tr := range m.trees {
		for _, n := range tr.nodes {
			if n.feature < 0 {
				leaves++
			} else {
				splits++
			}
		}
	}
	if m.flat.NumNodes() != splits {
		t.Fatalf("flat has %d split nodes, trees have %d", m.flat.NumNodes(), splits)
	}
	if m.flat.NumLeaves() != leaves {
		t.Fatalf("flat has %d leaves, trees have %d", m.flat.NumLeaves(), leaves)
	}
	// Every child reference is either a valid node index or a valid negative
	// leaf reference.
	for j := 0; j < m.flat.NumNodes(); j++ {
		for _, ref := range []int32{m.flat.left[j], m.flat.right[j]} {
			if ref >= 0 && int(ref) >= m.flat.NumNodes() {
				t.Fatalf("node %d links to out-of-range node %d", j, ref)
			}
			if ref < 0 && int(-ref-1) >= m.flat.NumLeaves() {
				t.Fatalf("node %d links to out-of-range leaf %d", j, -ref-1)
			}
		}
	}

	// Single-leaf tree: constant target keeps later trees leaf-only.
	xs := [][]float64{{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}, {9}, {10}}
	ys := []float64{3, 3, 3, 3, 3, 3, 3, 3, 3, 3}
	cm, err := Train(xs, ys, Params{Trees: 3})
	if err != nil {
		t.Fatal(err)
	}
	foundLeafRoot := false
	for _, r := range cm.flat.roots {
		if r < 0 {
			foundLeafRoot = true
		}
	}
	if !foundLeafRoot {
		t.Fatal("constant model compiled no single-leaf tree")
	}
	for _, x := range xs {
		if got, want := cm.Predict(x), cm.PredictReference(x); got != want {
			t.Fatalf("single-leaf tree: flat %v != reference %v", got, want)
		}
	}
}

// TestPredictBatchZeroAllocs asserts the steady-state allocation contract of
// the batch entry points: reusing dst (and the row-major matrix), repeated
// batch predictions allocate nothing.
func TestPredictBatchZeroAllocs(t *testing.T) {
	m, xs := trainRandomModel(t, 9, 256, 6)
	dst := make([]float64, len(xs))
	if allocs := testing.AllocsPerRun(20, func() { m.PredictBatch(dst, xs) }); allocs != 0 {
		t.Fatalf("PredictBatch allocates %.0f objects per run, want 0", allocs)
	}
	stride := 6
	flat := make([]float64, len(xs)*stride)
	for i, row := range xs {
		copy(flat[i*stride:], row)
	}
	if allocs := testing.AllocsPerRun(20, func() { m.PredictFlat(dst, flat, stride) }); allocs != 0 {
		t.Fatalf("PredictFlat allocates %.0f objects per run, want 0", allocs)
	}
}

// BenchmarkPredictBatch compares the pointer-tree reference against the flat
// batch engine on one partition-batch-sized matrix; the flat sub-benchmark
// reports its in-run speedup over the reference.
func BenchmarkPredictBatch(b *testing.B) {
	m, _ := trainRandomModel(b, 13, 400, 24)
	rng := rand.New(rand.NewSource(14))
	const rows = 512
	xs := make([][]float64, rows)
	for i := range xs {
		row := make([]float64, 24)
		for j := range row {
			row[j] = rng.NormFloat64() * 10
		}
		xs[i] = row
	}
	dst := make([]float64, rows)

	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j, x := range xs {
				dst[j] = m.PredictReference(x)
			}
		}
	})
	b.Run("flat", func(b *testing.B) {
		b.ReportAllocs()
		const refIters = 20
		refStart := time.Now()
		for i := 0; i < refIters; i++ {
			for j, x := range xs {
				dst[j] = m.PredictReference(x)
			}
		}
		refPer := time.Since(refStart) / refIters
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.PredictBatch(dst, xs)
		}
		b.StopTimer()
		flatPer := b.Elapsed() / time.Duration(b.N)
		b.ReportMetric(float64(refPer)/float64(flatPer), "speedup")
	})
}
