package gbt

import (
	"fmt"
	"math/rand"
)

// Params configures a boosted ensemble. Zero values take the defaults noted
// on each field.
type Params struct {
	// Trees is the number of boosting rounds (default 50).
	Trees int
	// MaxDepth per tree (default 4).
	MaxDepth int
	// LearningRate (shrinkage, default 0.2).
	LearningRate float64
	// Lambda is the L2 regularizer on leaf weights (default 1).
	Lambda float64
	// Gamma is the minimum split gain (default 1e-6).
	Gamma float64
	// MinLeaf is the minimum rows per leaf (default 5).
	MinLeaf int
	// MaxBins caps histogram bins per feature (default 32).
	MaxBins int
	// Subsample is the row sampling rate per round (default 1.0).
	Subsample float64
	// ColSample is the feature sampling rate per round (default 1.0).
	ColSample float64
	// Seed drives row/column subsampling.
	Seed int64
}

func (p Params) withDefaults() Params {
	if p.Trees <= 0 {
		p.Trees = 50
	}
	if p.MaxDepth <= 0 {
		p.MaxDepth = 4
	}
	if p.LearningRate <= 0 {
		p.LearningRate = 0.2
	}
	if p.Lambda <= 0 {
		p.Lambda = 1
	}
	if p.Gamma <= 0 {
		p.Gamma = 1e-6
	}
	if p.MinLeaf <= 0 {
		p.MinLeaf = 5
	}
	if p.MaxBins <= 0 {
		p.MaxBins = 32
	}
	if p.Subsample <= 0 || p.Subsample > 1 {
		p.Subsample = 1
	}
	if p.ColSample <= 0 || p.ColSample > 1 {
		p.ColSample = 1
	}
	return p
}

// Model is a trained gradient-boosted regression ensemble. The pointer trees
// are the training-time representation and the reference evaluator; every
// trained or restored model also carries a compiled flat struct-of-arrays
// form (flat.go) that the prediction entry points run on.
type Model struct {
	params     Params
	base       float64
	trees      []*tree
	importance []float64
	dim        int
	flat       *Flat
}

// compile builds the flat inference form; called once at the end of Train
// and FromSnapshot, so every usable Model has a non-nil flat engine.
func (m *Model) compile() { m.flat = compileFlat(m.base, m.params.LearningRate, m.dim, m.trees) }

// Train fits a squared-loss gradient-boosted ensemble on xs (N×M) and
// targets ys (N).
func Train(xs [][]float64, ys []float64, params Params) (*Model, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, fmt.Errorf("gbt: need equal, non-zero xs (%d) and ys (%d)", len(xs), len(ys))
	}
	p := params.withDefaults()
	dim := len(xs[0])
	for i, row := range xs {
		if len(row) != dim {
			return nil, fmt.Errorf("gbt: row %d has %d features, want %d", i, len(row), dim)
		}
	}
	rng := rand.New(rand.NewSource(p.Seed))

	// Base score: mean target.
	var base float64
	for _, y := range ys {
		base += y
	}
	base /= float64(len(ys))

	m := &Model{params: p, base: base, importance: make([]float64, dim), dim: dim}
	pred := make([]float64, len(ys))
	for i := range pred {
		pred[i] = base
	}
	grad := make([]float64, len(ys))
	hess := make([]float64, len(ys))

	// Precompute cut candidates and the binned matrix once.
	allCuts := make([][]float64, dim)
	for f := 0; f < dim; f++ {
		allCuts[f] = binCuts(xs, f, p.MaxBins)
	}
	codes := binMatrix(xs, allCuts)

	allIdx := make([]int, len(ys))
	for i := range allIdx {
		allIdx[i] = i
	}
	ctx := &splitCtx{
		xs: xs, codes: codes, cuts: allCuts,
		grad: grad, hess: hess,
		lambda: p.Lambda, minLeaf: p.MinLeaf, gamma: p.Gamma,
		importance: m.importance,
		gBin:       make([]float64, p.MaxBins+1),
		hBin:       make([]float64, p.MaxBins+1),
		nBin:       make([]int, p.MaxBins+1),
		active:     make([]bool, dim),
	}

	for round := 0; round < p.Trees; round++ {
		// Squared loss: g = pred - y, h = 1.
		for i := range ys {
			grad[i] = pred[i] - ys[i]
			hess[i] = 1
		}
		idx := allIdx
		if p.Subsample < 1 {
			idx = sampleIdx(allIdx, p.Subsample, rng)
		}
		anyActive := false
		for f := 0; f < dim; f++ {
			ctx.active[f] = p.ColSample >= 1 || rng.Float64() < p.ColSample
			anyActive = anyActive || ctx.active[f]
		}
		if !anyActive {
			ctx.active[rng.Intn(dim)] = true
		}
		t := ctx.grow(idx, p.MaxDepth)
		m.trees = append(m.trees, t)
		for i := range pred {
			pred[i] += p.LearningRate * t.predict(xs[i])
		}
	}
	m.compile()
	return m, nil
}

func sampleIdx(idx []int, rate float64, rng *rand.Rand) []int {
	out := make([]int, 0, int(rate*float64(len(idx)))+1)
	for _, i := range idx {
		if rng.Float64() < rate {
			out = append(out, i)
		}
	}
	if len(out) == 0 {
		out = append(out, idx[rng.Intn(len(idx))])
	}
	return out
}

// Predict returns the model output for one feature vector, evaluated on the
// compiled flat form. Bit-identical to PredictReference.
func (m *Model) Predict(x []float64) float64 { return m.flat.predictRow(x) }

// PredictReference is the retained pointer-tree evaluator: it walks the
// training-time node structs tree by tree. It exists as the independent
// reference implementation the flat engine is equivalence-tested against;
// hot paths use Predict / PredictBatch / PredictFlat.
func (m *Model) PredictReference(x []float64) float64 {
	v := m.base
	for _, t := range m.trees {
		v += m.params.LearningRate * t.predict(x)
	}
	return v
}

// PredictBatch fills dst[i] with the model output for xs[i], evaluating all
// trees over the whole batch in tight array sweeps. dst and xs must have
// equal length. It performs zero allocations, so callers can reuse dst across
// batches; per-row results are bit-identical to Predict.
func (m *Model) PredictBatch(dst []float64, xs [][]float64) {
	if len(dst) != len(xs) {
		panic("gbt: PredictBatch dst/xs length mismatch")
	}
	m.flat.predictBatch(dst, xs)
}

// PredictFlat is PredictBatch over a row-major feature matrix: row i is
// x[i*stride : i*stride+Dim()], and len(dst) rows are evaluated. Zero
// allocations; this is the entry point for batch featurization scratch
// buffers.
func (m *Model) PredictFlat(dst []float64, x []float64, stride int) {
	if stride < m.dim {
		panic("gbt: PredictFlat stride smaller than model dimension")
	}
	if len(dst) > 0 && (len(dst)-1)*stride+m.dim > len(x) {
		panic("gbt: PredictFlat matrix shorter than dst rows require")
	}
	m.flat.predictFlat(dst, x, stride)
}

// Importance returns per-feature total split gain ("gain" importance, the
// metric of Fig 5). The slice aliases internal state; callers must not
// mutate it.
func (m *Model) Importance() []float64 { return m.importance }

// NumTrees returns the number of boosting rounds performed.
func (m *Model) NumTrees() int { return len(m.trees) }

// Dim returns the feature dimension the model was trained on.
func (m *Model) Dim() int { return m.dim }
