package gbt

import "math/bits"

// BatchScorer is a per-query specialization of an ensemble's feature-major
// batch tables (flat.go). Callers that evaluate many rows sharing fixed
// feature values — the picker's funnel, where every feature column the query
// does not use is masked to the same zero in every row — bind the scorer
// once per query: conditions on fixed features are evaluated at bind time
// and their masks folded into per-tree base bitvectors, so per-row scoring
// scans only the conditions of varying features. Masks commute under AND,
// so the specialized result is bit-identical to the unspecialized sweep.
//
// A BatchScorer owns reusable buffers and is not safe for concurrent use;
// callers pool scorers alongside their batch scratch. The zero value is
// ready to Bind.
type BatchScorer struct {
	m       *Model
	ok      bool
	entries []qsEntry
	// feats/off list only the varying features that carry conditions:
	// feats[i]'s entries are entries[off[i]:off[i+1]]. Rows scan this
	// compact list instead of every feature dimension.
	feats []int32
	off   []int32
	bv0   []uint64
	bv    []uint64
}

// Bind specializes the scorer to m with per-feature value ranges: rangeOf(j)
// returns (lo, hi, true) when feature j is guaranteed to lie in [lo, hi] for
// every row of the batches to come — lo == hi declares a fixed value — and
// (_, _, false) when nothing is known. Conditions decidable from the range
// alone are resolved at bind time: a threshold ≥ hi always holds (the
// condition is dropped; thresholds are scanned ascending, so the rest of
// the feature's conditions drop with it), a threshold < lo always fails
// (its mask folds into the base bitvectors). Bind may be called repeatedly
// to re-specialize (buffers are reused).
func (s *BatchScorer) Bind(m *Model, rangeOf func(j int) (lo, hi float64, ok bool)) {
	s.m = m
	f := m.flat
	if !f.qsOK {
		s.ok = false
		return
	}
	s.ok = true
	trees := len(f.roots)
	if cap(s.bv0) < trees {
		s.bv0 = make([]uint64, trees)
		s.bv = make([]uint64, trees)
	}
	s.bv0 = s.bv0[:trees]
	s.bv = s.bv[:trees]
	for t := range s.bv0 {
		s.bv0[t] = ^uint64(0)
	}
	s.entries = s.entries[:0]
	s.feats = s.feats[:0]
	s.off = s.off[:0]
	for fi := 0; fi < f.dim; fi++ {
		eLo, eHi := f.qsFeatOff[fi], f.qsFeatOff[fi+1]
		if eLo == eHi {
			continue
		}
		vLo, vHi, known := rangeOf(fi)
		if known && vLo == vHi {
			// Fixed value: evaluate this feature's conditions now; failed
			// ones fold into the base bitvectors.
			for e := eLo; e < eHi; e++ {
				if vLo <= f.qsEntries[e].thresh {
					break
				}
				s.bv0[f.qsEntries[e].tree] &= f.qsEntries[e].mask
			}
			continue
		}
		mark := len(s.entries)
		for e := eLo; e < eHi; e++ {
			t := f.qsEntries[e].thresh
			if known && vHi <= t {
				// x ≤ vHi ≤ t for every row: this condition — and all later
				// (larger) thresholds — always hold.
				break
			}
			if known && !(vLo <= t) {
				// t < vLo ≤ x for every row: always fails.
				s.bv0[f.qsEntries[e].tree] &= f.qsEntries[e].mask
				continue
			}
			s.entries = append(s.entries, f.qsEntries[e])
		}
		if len(s.entries) > mark {
			s.feats = append(s.feats, int32(fi))
			s.off = append(s.off, int32(mark))
		}
	}
	s.off = append(s.off, int32(len(s.entries)))
}

// Predict fills dst[i] with the bound model's output for xs[i],
// bit-identical to Model.PredictBatch. Rows must agree with the fixed
// values declared at Bind time (varying slots are read; fixed slots are
// not). Zero allocations after Bind.
func (s *BatchScorer) Predict(dst []float64, xs [][]float64) {
	if len(dst) != len(xs) {
		panic("gbt: BatchScorer.Predict dst/xs length mismatch")
	}
	if !s.ok {
		s.m.flat.predictBatch(dst, xs)
		return
	}
	f := s.m.flat
	entries, feats, off := s.entries, s.feats, s.off
	bv, bv0 := s.bv, s.bv0
	leafOff, leafVal := f.qsLeafOff, f.qsLeafVal
	for i, x := range xs {
		copy(bv, bv0)
		for k, fi := range feats {
			xv := x[fi]
			for e := off[k]; e < off[k+1]; e++ {
				if xv <= entries[e].thresh {
					break
				}
				bv[entries[e].tree] &= entries[e].mask
			}
		}
		v := f.base
		for t := range bv {
			v += f.lr * leafVal[leafOff[t]+int32(bits.TrailingZeros64(bv[t]))]
		}
		dst[i] = v
	}
}
