package gbt

import "math/bits"

// This file is the flat, struct-of-arrays inference engine for trained
// ensembles. The index-linked node structs that training builds (tree.go)
// are the reference evaluator; before serving, every model is compiled into
// a Flat form with two complementary representations:
//
//  1. Flattened traversal arrays — feature index, threshold, left child,
//     right child in contiguous parallel slices shared by the whole
//     ensemble, leaf weights in a fifth slice, negative child references
//     -r encoding leaf r-1. Single-row Predict walks these (24 bytes per
//     split node against 40 for the training-time struct).
//
//  2. Feature-major batch tables (buildScorer) — every split condition of
//     every tree regrouped by feature with thresholds ascending, each entry
//     carrying a bitmask over its tree's leaves. Batch prediction keeps one
//     live-leaf bitvector per tree: scanning a feature's entries stops at
//     the first threshold ≥ the row's value (all later conditions hold),
//     and each failed condition clears the leaves of its node's left
//     subtree. The exit leaf of every tree is then the lowest surviving
//     bit. This replaces O(trees × depth) dependent loads and
//     unpredictable branches per row with a short run of independent
//     bitmask ANDs, which is what makes whole-matrix funnel evaluation fast.
//
// The bitmask evaluation is exact (the QuickScorer insight): a root-to-leaf
// descent goes right exactly at the ancestors whose conditions fail, and
// clearing each failed node's left-subtree leaves removes precisely the
// leaves left of the true exit path, so the leftmost survivor is the exit
// leaf. Conditions failing in other parts of the tree only clear leaves
// that are not the exit leaf.
//
// Determinism contract: for every row, both forms accumulate
// base + Σ_t lr·leaf_t in tree order — exactly the order of
// Model.PredictReference — so flat predictions are bit-identical to the
// pointer walk. The traversal arrays use the shared goesRight rule (NaN
// descends right); the batch tables inherit it because NaN satisfies no
// "value ≤ threshold" condition, fails every mask test, and therefore exits
// at the rightmost reachable leaf, exactly like the walk.

// Flat is the compiled form of a trained ensemble. It is immutable after
// compile and safe for concurrent use.
type Flat struct {
	base float64
	lr   float64
	dim  int
	// roots[t] is tree t's root reference: a node index, or a negative leaf
	// reference for single-leaf trees.
	roots []int32
	// Parallel split-node arrays; entry i is one internal node.
	feat   []int32
	thresh []float64
	left   []int32
	right  []int32
	// leafVal[r] is the weight of leaf r; reference -(r+1) points at it.
	leafVal []float64

	// Feature-major batch tables; present (qsOK) when every tree has at
	// most qsMaxLeaves leaves and the ensemble at most qsMaxTrees trees.
	qsOK      bool
	qsEntries []qsEntry
	qsFeatOff []int32   // entries of feature f: qsEntries[qsFeatOff[f]:qsFeatOff[f+1]]
	qsLeafVal []float64 // per-tree leaf weights, leaves numbered left→right
	qsLeafOff []int32   // tree t's leaves: qsLeafVal[qsLeafOff[t]:qsLeafOff[t+1]]
}

// qsEntry is one split condition in the batch tables: if a row's value of
// the owning feature exceeds thresh (condition false, row descends right),
// mask clears the leaves of the node's left subtree from the tree's
// live-leaf bitvector.
type qsEntry struct {
	thresh float64
	tree   int32
	mask   uint64
}

const (
	// qsMaxLeaves bounds per-tree leaves so a tree's live-leaf set fits one
	// uint64 (trees up to depth 6; the picker's funnel trains depth 4).
	qsMaxLeaves = 64
	// qsMaxTrees bounds the per-row bitvector so it stays in a fixed-size
	// stack array in the batch loops.
	qsMaxTrees = 128
)

// compileFlat flattens pointer trees into the struct-of-arrays layout and
// builds the feature-major batch tables. Trees are concatenated in ensemble
// order; within a tree, split nodes and leaves are numbered in the preorder
// the grower emitted them in.
func compileFlat(base, lr float64, dim int, trees []*tree) *Flat {
	f := &Flat{base: base, lr: lr, dim: dim, roots: make([]int32, 0, len(trees))}
	for _, t := range trees {
		// First pass: assign every node of this tree its global slot.
		ref := make([]int32, len(t.nodes))
		for i, n := range t.nodes {
			if n.feature < 0 {
				f.leafVal = append(f.leafVal, n.value)
				ref[i] = -int32(len(f.leafVal)) // leaf r ↦ -(r+1)
			} else {
				ref[i] = int32(len(f.feat))
				f.feat = append(f.feat, int32(n.feature))
				f.thresh = append(f.thresh, n.thresh)
				f.left = append(f.left, 0)
				f.right = append(f.right, 0)
			}
		}
		// Second pass: rewrite child links as references.
		for i, n := range t.nodes {
			if n.feature < 0 {
				continue
			}
			f.left[ref[i]] = ref[n.left]
			f.right[ref[i]] = ref[n.right]
		}
		f.roots = append(f.roots, ref[0])
	}
	f.buildScorer(trees)
	return f
}

// buildScorer derives the feature-major batch tables from the trees.
func (f *Flat) buildScorer(trees []*tree) {
	if len(trees) > qsMaxTrees {
		return
	}
	// Left-to-right leaf numbering and per-node (firstLeaf, leafCount) via
	// in-order recursion; bail out on trees too leafy for one uint64.
	type cond struct {
		feature int32
		thresh  float64
		tree    int32
		mask    uint64
	}
	var conds []cond
	for ti, t := range trees {
		var walk func(i int) (first, count int)
		nLeaves := 0
		ok := true
		walk = func(i int) (int, int) {
			n := &t.nodes[i]
			if n.feature < 0 {
				id := nLeaves
				nLeaves++
				f.qsLeafVal = append(f.qsLeafVal, n.value)
				return id, 1
			}
			lf, lc := walk(n.left)
			_, rc := walk(n.right)
			if lc+rc > qsMaxLeaves {
				ok = false
				return lf, lc + rc
			}
			// Condition false (value > thresh) ⇒ clear the left subtree's
			// leaves [lf, lf+lc).
			mask := ^(((uint64(1) << uint(lc)) - 1) << uint(lf))
			conds = append(conds, cond{feature: int32(n.feature), thresh: n.thresh, tree: int32(ti), mask: mask})
			return lf, lc + rc
		}
		start := len(f.qsLeafVal)
		f.qsLeafOff = append(f.qsLeafOff, int32(start))
		if _, total := walk(0); !ok || total > qsMaxLeaves {
			f.qsLeafVal = f.qsLeafVal[:0]
			f.qsLeafOff = f.qsLeafOff[:0]
			return
		}
	}
	f.qsLeafOff = append(f.qsLeafOff, int32(len(f.qsLeafVal)))

	// Bucket conditions by feature, thresholds ascending (ties in any order:
	// masks commute, and the scan stops before every tied threshold at once).
	perFeat := make([][]cond, f.dim)
	for _, c := range conds {
		perFeat[c.feature] = append(perFeat[c.feature], c)
	}
	f.qsFeatOff = make([]int32, f.dim+1)
	for fi, cs := range perFeat {
		f.qsFeatOff[fi] = int32(len(f.qsEntries))
		for i := 1; i < len(cs); i++ {
			for j := i; j > 0 && cs[j].thresh < cs[j-1].thresh; j-- {
				cs[j], cs[j-1] = cs[j-1], cs[j]
			}
		}
		for _, c := range cs {
			f.qsEntries = append(f.qsEntries, qsEntry{thresh: c.thresh, tree: c.tree, mask: c.mask})
		}
	}
	f.qsFeatOff[f.dim] = int32(len(f.qsEntries))
	f.qsOK = true
}

// predictRow evaluates one feature vector through every tree by direct
// traversal. The array slices are hoisted into locals so the compiler keeps
// them in registers across the walk.
func (f *Flat) predictRow(x []float64) float64 {
	feat, thresh, left, right, leafVal := f.feat, f.thresh, f.left, f.right, f.leafVal
	v := f.base
	for _, ref := range f.roots {
		for ref >= 0 {
			if goesRight(x[feat[ref]], thresh[ref]) {
				ref = right[ref]
			} else {
				ref = left[ref]
			}
		}
		v += f.lr * leafVal[-ref-1]
	}
	return v
}

// scoreRow evaluates one row through the feature-major batch tables: bv must
// hold len(roots) bitvectors and is clobbered.
func (f *Flat) scoreRow(x []float64, bv []uint64) float64 {
	entries, featOff := f.qsEntries, f.qsFeatOff
	for t := range bv {
		bv[t] = ^uint64(0)
	}
	for fi := 0; fi < len(featOff)-1; fi++ {
		lo, hi := featOff[fi], featOff[fi+1]
		if lo == hi {
			continue
		}
		xv := x[fi]
		for e := lo; e < hi; e++ {
			// NaN satisfies no condition, so it falls through every mask —
			// the bitvector analogue of "NaN descends right".
			if xv <= entries[e].thresh {
				break
			}
			bv[entries[e].tree] &= entries[e].mask
		}
	}
	v := f.base
	leafOff, leafVal := f.qsLeafOff, f.qsLeafVal
	for t := range bv {
		v += f.lr * leafVal[leafOff[t]+int32(bits.TrailingZeros64(bv[t]))]
	}
	return v
}

// predictBatch fills dst[i] with the prediction for xs[i], via the batch
// tables when available. It allocates nothing (the per-tree bitvectors live
// in a fixed stack array), and per-row results are bit-identical to
// predictRow.
func (f *Flat) predictBatch(dst []float64, xs [][]float64) {
	if f.qsOK {
		var bvArr [qsMaxTrees]uint64
		bv := bvArr[:len(f.roots)]
		for i, x := range xs {
			dst[i] = f.scoreRow(x, bv)
		}
		return
	}
	for i, x := range xs {
		dst[i] = f.predictRow(x)
	}
}

// predictFlat is predictBatch over a row-major matrix: row i of the batch is
// x[i*stride : i*stride+dim], and len(dst) rows are evaluated. This is the
// entry point for callers that keep features in one contiguous scratch
// buffer (the picker's per-worker feature matrix).
func (f *Flat) predictFlat(dst []float64, x []float64, stride int) {
	if f.qsOK {
		var bvArr [qsMaxTrees]uint64
		bv := bvArr[:len(f.roots)]
		off := 0
		for i := range dst {
			dst[i] = f.scoreRow(x[off:off+f.dim], bv)
			off += stride
		}
		return
	}
	off := 0
	for i := range dst {
		dst[i] = f.predictRow(x[off : off+f.dim])
		off += stride
	}
}

// NumNodes returns the total split-node count across all trees (the length
// of the flattened node arrays).
func (f *Flat) NumNodes() int { return len(f.feat) }

// NumLeaves returns the total leaf count across all trees.
func (f *Flat) NumLeaves() int { return len(f.leafVal) }
