package gbt

import (
	"math/rand"
	"testing"
)

// trainTestModel fits a small ensemble on a learnable synthetic target.
func trainTestModel(t *testing.T) (*Model, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	n, dim := 300, 5
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		row := make([]float64, dim)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		xs[i] = row
		ys[i] = 2*row[0] - row[2] + 0.1*rng.NormFloat64()
	}
	m, err := Train(xs, ys, Params{Trees: 20, Seed: 3, Subsample: 0.9, ColSample: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	return m, xs
}

func TestSnapshotRoundTripBitIdentical(t *testing.T) {
	m, xs := trainTestModel(t)
	back, err := FromSnapshot(m.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTrees() != m.NumTrees() {
		t.Fatalf("round trip: %d trees, want %d", back.NumTrees(), m.NumTrees())
	}
	if back.Dim() != m.Dim() {
		t.Fatalf("round trip: dim %d, want %d", back.Dim(), m.Dim())
	}
	for i, x := range xs {
		if got, want := back.Predict(x), m.Predict(x); got != want {
			t.Fatalf("row %d: restored model predicts %v, original %v", i, got, want)
		}
	}
	io, ib := m.Importance(), back.Importance()
	for j := range io {
		if io[j] != ib[j] {
			t.Fatalf("importance %d differs: %v vs %v", j, io[j], ib[j])
		}
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	m, xs := trainTestModel(t)
	s := m.Snapshot()
	want := m.Predict(xs[0])
	// Mutating the snapshot must not reach back into the model.
	for i := range s.Trees[0].Nodes {
		s.Trees[0].Nodes[i].Value += 100
	}
	s.Importance[0] += 100
	if got := m.Predict(xs[0]); got != want {
		t.Fatalf("mutating a snapshot changed the source model: %v vs %v", got, want)
	}
}

func TestFromSnapshotRejectsCorruption(t *testing.T) {
	m, _ := trainTestModel(t)
	cases := []struct {
		name   string
		mutate func(*ModelSnapshot)
	}{
		{"zero dim", func(s *ModelSnapshot) { s.Dim = 0 }},
		{"importance length", func(s *ModelSnapshot) { s.Importance = s.Importance[:2] }},
		{"feature out of range", func(s *ModelSnapshot) {
			for i := range s.Trees[0].Nodes {
				if s.Trees[0].Nodes[i].Feature >= 0 {
					s.Trees[0].Nodes[i].Feature = s.Dim + 3
					return
				}
			}
			t.Skip("tree 0 has no split nodes")
		}},
		{"child cycle", func(s *ModelSnapshot) {
			for i := range s.Trees[0].Nodes {
				if s.Trees[0].Nodes[i].Feature >= 0 {
					s.Trees[0].Nodes[i].Left = i // self-loop would hang predict
					return
				}
			}
			t.Skip("tree 0 has no split nodes")
		}},
		{"child out of range", func(s *ModelSnapshot) {
			for i := range s.Trees[0].Nodes {
				if s.Trees[0].Nodes[i].Feature >= 0 {
					s.Trees[0].Nodes[i].Right = len(s.Trees[0].Nodes) + 5
					return
				}
			}
			t.Skip("tree 0 has no split nodes")
		}},
		{"empty tree", func(s *ModelSnapshot) { s.Trees[0].Nodes = nil }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := m.Snapshot()
			c.mutate(&s)
			if _, err := FromSnapshot(s); err == nil {
				t.Fatal("want error for corrupted snapshot")
			}
		})
	}
}

func TestFromSnapshotAcceptsMissingImportance(t *testing.T) {
	m, xs := trainTestModel(t)
	s := m.Snapshot()
	s.Importance = nil
	back, err := FromSnapshot(s)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := back.Predict(xs[0]), m.Predict(xs[0]); got != want {
		t.Fatalf("prediction differs without importance: %v vs %v", got, want)
	}
	if len(back.Importance()) != m.Dim() {
		t.Fatalf("restored importance has %d entries, want %d", len(back.Importance()), m.Dim())
	}
}
