package gbt

import (
	"math"
	"math/rand"
	"testing"
)

// TestBatchScorerMatchesPredictBatch: a scorer bound with fixed values and
// value ranges must reproduce PredictBatch bit for bit on rows honoring
// those declarations.
func TestBatchScorerMatchesPredictBatch(t *testing.T) {
	const dim = 8
	m, _ := trainRandomModel(t, 31, 400, dim)
	rng := rand.New(rand.NewSource(32))

	// Fixed values for some features, ranges for others, nothing for the rest.
	fixedVal := map[int]float64{1: 0, 4: 2.5}
	ranged := map[int][2]float64{2: {-3, 3}, 6: {0, 40}}
	rows := make([][]float64, 300)
	for i := range rows {
		row := make([]float64, dim)
		for j := range row {
			row[j] = rng.NormFloat64() * float64(j+1) * 3
		}
		for j, v := range fixedVal {
			row[j] = v
		}
		for j, r := range ranged {
			row[j] = r[0] + rng.Float64()*(r[1]-r[0])
		}
		rows[i] = row
	}

	want := make([]float64, len(rows))
	m.PredictBatch(want, rows)

	var s BatchScorer
	s.Bind(m, func(j int) (float64, float64, bool) {
		if v, ok := fixedVal[j]; ok {
			return v, v, true
		}
		if r, ok := ranged[j]; ok {
			return r[0], r[1], true
		}
		return 0, 0, false
	})
	got := make([]float64, len(rows))
	s.Predict(got, rows)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: scorer %v != PredictBatch %v", i, got[i], want[i])
		}
	}

	// Re-binding with no knowledge at all must also match.
	s.Bind(m, func(int) (float64, float64, bool) { return 0, 0, false })
	s.Predict(got, rows)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("unspecialized row %d: scorer %v != PredictBatch %v", i, got[i], want[i])
		}
	}
}

// TestBatchScorerInfiniteRanges: ±Inf range endpoints must behave as "no
// information" on that side without breaking bind-time folding.
func TestBatchScorerInfiniteRanges(t *testing.T) {
	m, xs := trainRandomModel(t, 33, 300, 5)
	want := make([]float64, len(xs))
	m.PredictBatch(want, xs)
	var s BatchScorer
	s.Bind(m, func(j int) (float64, float64, bool) {
		return math.Inf(-1), math.Inf(1), true
	})
	got := make([]float64, len(xs))
	s.Predict(got, xs)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: scorer with (-Inf,+Inf) ranges %v != %v", i, got[i], want[i])
		}
	}
}

// TestBatchScorerFallback: models whose trees exceed the batch-table leaf
// bound still predict correctly through the scorer (walking fallback).
func TestBatchScorerFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	n := 3000
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		ys[i] = xs[i][0]*xs[i][1] + math.Sin(xs[i][2]*3)
	}
	// Depth 8 trees can exceed 64 leaves, disabling the batch tables.
	m, err := Train(xs, ys, Params{Trees: 6, MaxDepth: 8, MinLeaf: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if m.flat.qsOK {
		t.Skip("trees stayed small enough for batch tables; fallback not exercised")
	}
	var s BatchScorer
	s.Bind(m, func(int) (float64, float64, bool) { return 0, 0, false })
	got := make([]float64, 50)
	s.Predict(got, xs[:50])
	for i := range got {
		if want := m.PredictReference(xs[i]); got[i] != want {
			t.Fatalf("fallback row %d: %v != %v", i, got[i], want)
		}
	}
}

// TestBatchScorerZeroAllocsAfterBind: repeated Predict calls on a bound
// scorer allocate nothing.
func TestBatchScorerZeroAllocsAfterBind(t *testing.T) {
	m, xs := trainRandomModel(t, 35, 256, 6)
	var s BatchScorer
	s.Bind(m, func(j int) (float64, float64, bool) { return 0, 0, j == 3 })
	for i := range xs {
		xs[i][3] = 0
	}
	dst := make([]float64, len(xs))
	if allocs := testing.AllocsPerRun(20, func() { s.Predict(dst, xs) }); allocs != 0 {
		t.Fatalf("BatchScorer.Predict allocates %.0f objects per run, want 0", allocs)
	}
}
