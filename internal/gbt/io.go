package gbt

import "fmt"

// This file provides snapshot/restore support for trained ensembles so the
// picker's funnel regressors can be persisted with the rest of a trained
// system (the deployment model of §2.3.1: train once offline, serve from the
// stored artifact). Snapshots are plain exported structs suitable for
// encoding/gob; FromSnapshot validates the wire data so a corrupted snapshot
// fails with an error instead of sending predict into a panic or an
// infinite node walk.

// NodeSnapshot is the wire form of one tree node; leaves have Feature == -1.
type NodeSnapshot struct {
	Feature int
	Thresh  float64
	Left    int
	Right   int
	Value   float64
}

// TreeSnapshot is the wire form of one regression tree.
type TreeSnapshot struct {
	Nodes []NodeSnapshot
}

// ModelSnapshot is the wire form of a trained Model. Tree structure and
// float64 leaf weights round-trip exactly, so a restored model predicts
// bit-identically to the original.
type ModelSnapshot struct {
	Params     Params
	Base       float64
	Trees      []TreeSnapshot
	Importance []float64
	Dim        int
}

// Snapshot captures the trained ensemble.
func (m *Model) Snapshot() ModelSnapshot {
	s := ModelSnapshot{
		Params:     m.params,
		Base:       m.base,
		Importance: append([]float64(nil), m.importance...),
		Dim:        m.dim,
	}
	for _, t := range m.trees {
		ts := TreeSnapshot{Nodes: make([]NodeSnapshot, len(t.nodes))}
		for i, n := range t.nodes {
			ts.Nodes[i] = NodeSnapshot{Feature: n.feature, Thresh: n.thresh, Left: n.left, Right: n.right, Value: n.value}
		}
		s.Trees = append(s.Trees, ts)
	}
	return s
}

// FromSnapshot reconstructs a trained model, validating the tree topology:
// split features must lie inside the feature dimension and child links must
// point strictly forward (grow builds trees in preorder, so parents always
// precede children), which guarantees predict terminates.
func FromSnapshot(s ModelSnapshot) (*Model, error) {
	if s.Dim <= 0 {
		return nil, fmt.Errorf("gbt: snapshot has non-positive feature dimension %d", s.Dim)
	}
	if len(s.Importance) != 0 && len(s.Importance) != s.Dim {
		return nil, fmt.Errorf("gbt: snapshot importance has %d entries for dimension %d", len(s.Importance), s.Dim)
	}
	m := &Model{
		params:     s.Params,
		base:       s.Base,
		importance: append([]float64(nil), s.Importance...),
		dim:        s.Dim,
	}
	if m.importance == nil {
		m.importance = make([]float64, s.Dim)
	}
	for ti, ts := range s.Trees {
		if len(ts.Nodes) == 0 {
			return nil, fmt.Errorf("gbt: snapshot tree %d has no nodes", ti)
		}
		t := &tree{nodes: make([]node, len(ts.Nodes))}
		for i, ns := range ts.Nodes {
			if ns.Feature >= 0 {
				if ns.Feature >= s.Dim {
					return nil, fmt.Errorf("gbt: snapshot tree %d node %d splits on feature %d, dimension is %d",
						ti, i, ns.Feature, s.Dim)
				}
				if ns.Left <= i || ns.Left >= len(ts.Nodes) || ns.Right <= i || ns.Right >= len(ts.Nodes) {
					return nil, fmt.Errorf("gbt: snapshot tree %d node %d has invalid children %d/%d (must be in (%d, %d))",
						ti, i, ns.Left, ns.Right, i, len(ts.Nodes))
				}
			}
			t.nodes[i] = node{feature: ns.Feature, thresh: ns.Thresh, left: ns.Left, right: ns.Right, value: ns.Value}
		}
		m.trees = append(m.trees, t)
	}
	m.compile()
	return m, nil
}
