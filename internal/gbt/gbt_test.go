package gbt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTrainRejectsEmptyInput(t *testing.T) {
	if _, err := Train(nil, nil, Params{}); err == nil {
		t.Fatal("want error on empty training set")
	}
	if _, err := Train([][]float64{{1}}, []float64{1, 2}, Params{}); err == nil {
		t.Fatal("want error on xs/ys length mismatch")
	}
}

func TestTrainRejectsRaggedRows(t *testing.T) {
	xs := [][]float64{{1, 2}, {3}}
	if _, err := Train(xs, []float64{1, 2}, Params{}); err == nil {
		t.Fatal("want error on ragged feature rows")
	}
}

func TestConstantTargetPredictsConstant(t *testing.T) {
	xs := make([][]float64, 50)
	ys := make([]float64, 50)
	rng := rand.New(rand.NewSource(1))
	for i := range xs {
		xs[i] = []float64{rng.Float64(), rng.Float64()}
		ys[i] = 7.5
	}
	m, err := Train(xs, ys, Params{Trees: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xs {
		if got := m.Predict(x); math.Abs(got-7.5) > 1e-9 {
			t.Fatalf("Predict = %v, want 7.5", got)
		}
	}
}

func TestFitsStepFunction(t *testing.T) {
	// y = 10 if x0 > 0.5 else 0; plenty of data, single informative feature.
	rng := rand.New(rand.NewSource(2))
	n := 400
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x0 := rng.Float64()
		xs[i] = []float64{x0, rng.Float64(), rng.Float64()}
		if x0 > 0.5 {
			ys[i] = 10
		}
	}
	m, err := Train(xs, ys, Params{Trees: 60, MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	mse := 0.0
	for i, x := range xs {
		d := m.Predict(x) - ys[i]
		mse += d * d
	}
	mse /= float64(n)
	if mse > 0.5 {
		t.Fatalf("train MSE %v too high for a learnable step function", mse)
	}
}

func TestFitsLinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 600
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		a, b := rng.Float64(), rng.Float64()
		xs[i] = []float64{a, b}
		ys[i] = 3*a - 2*b + 1
	}
	m, err := Train(xs, ys, Params{Trees: 120, MaxDepth: 4, LearningRate: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	var mse float64
	for i, x := range xs {
		d := m.Predict(x) - ys[i]
		mse += d * d
	}
	mse /= float64(n)
	// Trees approximate smooth functions piecewise; generous but meaningful.
	if mse > 0.05 {
		t.Fatalf("train MSE %v too high for a linear target", mse)
	}
}

func TestImportanceConcentratesOnInformativeFeature(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 300
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x0 := rng.Float64()
		xs[i] = []float64{x0, rng.Float64(), rng.Float64(), rng.Float64()}
		ys[i] = 5 * x0
	}
	m, err := Train(xs, ys, Params{Trees: 40})
	if err != nil {
		t.Fatal(err)
	}
	imp := m.Importance()
	if len(imp) != 4 {
		t.Fatalf("importance dim %d, want 4", len(imp))
	}
	var total float64
	for _, v := range imp {
		if v < 0 {
			t.Fatalf("negative gain importance %v", v)
		}
		total += v
	}
	if total <= 0 {
		t.Fatal("no split gain recorded at all")
	}
	if imp[0]/total < 0.9 {
		t.Fatalf("feature 0 carries only %.0f%% of gain; want ≥ 90%%", 100*imp[0]/total)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 100
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = []float64{rng.Float64(), rng.Float64()}
		ys[i] = xs[i][0] * 2
	}
	p := Params{Trees: 20, Subsample: 0.8, ColSample: 0.8, Seed: 99}
	m1, err := Train(xs, ys, p)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(xs, ys, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xs {
		if m1.Predict(x) != m2.Predict(x) {
			t.Fatal("same seed, different predictions")
		}
	}
}

func TestSubsamplingStillLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 500
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x0 := rng.Float64()
		xs[i] = []float64{x0}
		if x0 > 0.3 {
			ys[i] = 1
		}
	}
	m, err := Train(xs, ys, Params{Trees: 50, Subsample: 0.5, ColSample: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Check classification-style separation via sign of centered prediction.
	correct := 0
	for i, x := range xs {
		pred := m.Predict(x)
		if (pred > 0.5) == (ys[i] == 1) {
			correct++
		}
	}
	if frac := float64(correct) / float64(n); frac < 0.95 {
		t.Fatalf("accuracy %v with subsampling; want ≥ 0.95", frac)
	}
}

func TestPredictBatchMatchesPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([][]float64, 30)
	ys := make([]float64, 30)
	for i := range xs {
		xs[i] = []float64{rng.Float64(), rng.Float64()}
		ys[i] = xs[i][0] + xs[i][1]
	}
	m, err := Train(xs, ys, Params{Trees: 10})
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]float64, len(xs))
	m.PredictBatch(batch, xs)
	for i, x := range xs {
		if batch[i] != m.Predict(x) {
			t.Fatalf("batch[%d] = %v, Predict = %v", i, batch[i], m.Predict(x))
		}
	}
}

func TestModelAccessors(t *testing.T) {
	xs := [][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}, {9, 10}, {11, 12}}
	ys := []float64{1, 2, 3, 4, 5, 6}
	m, err := Train(xs, ys, Params{Trees: 7})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumTrees() != 7 {
		t.Fatalf("NumTrees = %d, want 7", m.NumTrees())
	}
	if m.Dim() != 2 {
		t.Fatalf("Dim = %d, want 2", m.Dim())
	}
}

func TestBinCutsStrictlyIncreasing(t *testing.T) {
	xs := [][]float64{{1}, {1}, {1}, {2}, {2}, {3}, {4}, {4}, {5}, {9}}
	cuts := binCuts(xs, 0, 8)
	for i := 1; i < len(cuts); i++ {
		if cuts[i] <= cuts[i-1] {
			t.Fatalf("cuts not strictly increasing: %v", cuts)
		}
	}
	// No cut at or above the max (splitting there is vacuous).
	if len(cuts) > 0 && cuts[len(cuts)-1] >= 9 {
		t.Fatalf("trailing vacuous cut in %v", cuts)
	}
}

func TestBinCutsConstantColumn(t *testing.T) {
	xs := [][]float64{{5}, {5}, {5}, {5}}
	cuts := binCuts(xs, 0, 8)
	if len(cuts) != 0 {
		t.Fatalf("constant column produced cuts %v", cuts)
	}
}

func TestConstantFeatureNeverSplit(t *testing.T) {
	// Feature 1 is constant — it must receive zero importance.
	rng := rand.New(rand.NewSource(8))
	n := 200
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x0 := rng.Float64()
		xs[i] = []float64{x0, 42}
		ys[i] = x0
	}
	m, err := Train(xs, ys, Params{Trees: 20})
	if err != nil {
		t.Fatal(err)
	}
	if imp := m.Importance(); imp[1] != 0 {
		t.Fatalf("constant feature got importance %v", imp[1])
	}
}

func TestScoreGainSymmetricAndNonNegativeAtOptimum(t *testing.T) {
	// Splitting a homogeneous node yields zero gain.
	if g := scoreGain(5, 10, 5, 10, 1); g > 1e-12 {
		t.Fatalf("homogeneous split gain %v, want ~0", g)
	}
	// A perfectly separating split yields positive gain.
	if g := scoreGain(-10, 10, 10, 10, 1); g <= 0 {
		t.Fatalf("separating split gain %v, want > 0", g)
	}
}

func TestPredictionsAlwaysFinite(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 10
		rng := rand.New(rand.NewSource(seed))
		xs := make([][]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = []float64{rng.NormFloat64() * 100, rng.NormFloat64()}
			ys[i] = rng.NormFloat64() * 10
		}
		m, err := Train(xs, ys, Params{Trees: 5, Seed: seed})
		if err != nil {
			return false
		}
		for _, x := range xs {
			if v := m.Predict(x); math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMoreTreesNeverHurtTrainMSE(t *testing.T) {
	// Squared-loss boosting on the training set is monotone non-increasing
	// in rounds (with full sampling); verify on a fixed dataset.
	rng := rand.New(rand.NewSource(9))
	n := 200
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x0 := rng.Float64()
		xs[i] = []float64{x0, rng.Float64()}
		ys[i] = math.Sin(6*x0) * 3
	}
	mseAt := func(trees int) float64 {
		m, err := Train(xs, ys, Params{Trees: trees, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		var s float64
		for i, x := range xs {
			d := m.Predict(x) - ys[i]
			s += d * d
		}
		return s / float64(n)
	}
	m5, m50 := mseAt(5), mseAt(50)
	if m50 > m5+1e-9 {
		t.Fatalf("50 trees MSE %v worse than 5 trees MSE %v", m50, m5)
	}
}
