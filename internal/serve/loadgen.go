package serve

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ps3/internal/query"
)

// LoadReport summarizes one load-generation run against a server.
type LoadReport struct {
	Requests  int64
	Failures  int64
	Duration  time.Duration
	QPS       float64
	AvgMs     float64
	P50Ms     float64
	P95Ms     float64
	P99Ms     float64
	MaxMs     float64
	PartsRead int64
	// AvgPickMs / AvgScanMs are the pick vs scan latency split of this
	// run's own successful requests (summed from their responses), so a
	// load run reports where its serving time went even when the server is
	// handling other traffic concurrently.
	AvgPickMs float64
	AvgScanMs float64
	// PickCacheHits counts this run's successful requests whose partition
	// selection came from the server's pick-result cache; PickCacheHitRate
	// is their share of successful requests. Round-robin traffic revisits
	// each template once per cycle; Zipf traffic concentrates on hot
	// templates and drives this toward 1.
	PickCacheHits    int64
	PickCacheHitRate float64
	// Appends / AppendFailures / AvgAppendMs / P99AppendMs describe the
	// write half of a mixed run (LoadGenMixed); zero on query-only runs.
	// Append latency includes the WAL group-commit wait, so it reflects
	// the durability cost the write path actually pays.
	Appends        int64
	AppendFailures int64
	AvgAppendMs    float64
	P99AppendMs    float64
}

// String renders the report for logs.
func (r LoadReport) String() string {
	s := fmt.Sprintf("%d requests (%d failed) in %v: %.0f qps, latency avg %.2fms p50 %.2fms p95 %.2fms p99 %.2fms max %.2fms (pick %.2fms scan %.2fms), %d partition reads, pick-cache hit rate %.1f%%",
		r.Requests, r.Failures, r.Duration.Round(time.Millisecond), r.QPS, r.AvgMs, r.P50Ms, r.P95Ms, r.P99Ms, r.MaxMs, r.AvgPickMs, r.AvgScanMs, r.PartsRead, 100*r.PickCacheHitRate)
	if r.Appends > 0 {
		s += fmt.Sprintf("; %d appends (%d failed) avg %.2fms p99 %.2fms", r.Appends, r.AppendFailures, r.AvgAppendMs, r.P99AppendMs)
	}
	return s
}

// LoadGen drives total requests through the server from concurrency workers,
// cycling round-robin over the given queries, and reports sustained
// throughput and latency. It exercises the full serving path — caches,
// admission control, picking and weighted scans — and is what `ps3serve
// -loadgen` and the serve benchmark run.
func (s *Server) LoadGen(queries []*query.Query, budget float64, concurrency, total int) (LoadReport, error) {
	return s.loadGen(queries, budget, concurrency, total, nil)
}

// LoadGenZipf drives total requests whose template popularity follows a Zipf
// distribution with exponent zipfS > 1 over the query pool (rank 1 = the
// first query, the hottest), seeded deterministically. Repeated-template
// traffic is what the pick-result cache is for: the report's
// PickCacheHitRate shows how much of the pick work the cache absorbed.
func (s *Server) LoadGenZipf(queries []*query.Query, budget float64, concurrency, total int, zipfS float64, seed int64) (LoadReport, error) {
	if zipfS <= 1 {
		return LoadReport{}, fmt.Errorf("serve: zipf exponent must be > 1, got %v", zipfS)
	}
	if len(queries) == 0 {
		return LoadReport{}, fmt.Errorf("serve: loadgen needs at least one query")
	}
	// Each worker draws from its own deterministic stream: the run is
	// reproducible per (seed, concurrency) and workers never contend on a
	// shared rng.
	pick := func(worker int) func(i int) int {
		rng := rand.New(rand.NewSource(seed + int64(worker)))
		z := rand.NewZipf(rng, zipfS, 1, uint64(len(queries)-1))
		return func(int) int { return int(z.Uint64()) }
	}
	return s.loadGen(queries, budget, concurrency, total, pick)
}

// LoadGenMixed drives a read/write mix: every appendEvery-th operation is
// a row-batch append through the server's append sink (nextBatch supplies
// batches and must be safe for concurrent use), the rest are round-robin
// queries. It exercises serving under live ingest — snapshot swaps land
// mid-run — and reports query and append latency separately.
func (s *Server) LoadGenMixed(queries []*query.Query, budget float64, concurrency, total, appendEvery int, nextBatch func() (num [][]float64, cat [][]string)) (LoadReport, error) {
	if appendEvery < 2 {
		return LoadReport{}, fmt.Errorf("serve: appendEvery must be >= 2 (every appendEvery-th op is an append), got %d", appendEvery)
	}
	if nextBatch == nil {
		return LoadReport{}, fmt.Errorf("serve: mixed loadgen needs a batch source")
	}
	if s.Appender() == nil {
		return LoadReport{}, fmt.Errorf("serve: mixed loadgen needs an append sink; start the server with ingest enabled")
	}
	return s.loadGenMixed(queries, budget, concurrency, total, appendEvery, nextBatch)
}

// loadGen is the shared driver. pick, when non-nil, builds a per-worker
// template chooser; nil means round-robin over the request index.
func (s *Server) loadGen(queries []*query.Query, budget float64, concurrency, total int, pick func(worker int) func(i int) int) (LoadReport, error) {
	if len(queries) == 0 {
		return LoadReport{}, fmt.Errorf("serve: loadgen needs at least one query")
	}
	if concurrency <= 0 {
		concurrency = 1
	}
	if total <= 0 {
		total = len(queries)
	}
	var (
		next     atomic.Int64
		failures atomic.Int64
		parts    atomic.Int64
		pickUs   atomic.Int64
		scanUs   atomic.Int64
		pickHits atomic.Int64
		wg       sync.WaitGroup
	)
	lats := make([][]time.Duration, concurrency)
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			choose := func(i int) int { return i % len(queries) }
			if pick != nil {
				choose = pick(w)
			}
			mine := make([]time.Duration, 0, total/concurrency+1)
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					break
				}
				t0 := time.Now()
				resp, err := s.Query(queries[choose(i)], budget)
				if err != nil {
					failures.Add(1)
					continue
				}
				mine = append(mine, time.Since(t0))
				parts.Add(int64(resp.PartsRead))
				pickUs.Add(int64(resp.PickMs * 1000))
				scanUs.Add(int64(resp.ScanMs * 1000))
				if resp.PickCached {
					pickHits.Add(1)
				}
			}
			lats[w] = mine
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	rep := LoadReport{
		Requests:      int64(total),
		Failures:      failures.Load(),
		Duration:      elapsed,
		PartsRead:     parts.Load(),
		PickCacheHits: pickHits.Load(),
	}
	if elapsed > 0 {
		rep.QPS = float64(total) / elapsed.Seconds()
	}
	if len(all) > 0 {
		var sum time.Duration
		for _, d := range all {
			sum += d
		}
		rep.AvgMs = float64(sum) / float64(len(all)) / float64(time.Millisecond)
		rep.P50Ms = float64(all[len(all)/2]) / float64(time.Millisecond)
		rep.P95Ms = float64(all[len(all)*95/100]) / float64(time.Millisecond)
		rep.P99Ms = float64(all[len(all)*99/100]) / float64(time.Millisecond)
		rep.MaxMs = float64(all[len(all)-1]) / float64(time.Millisecond)
	}
	// Pick vs scan split over this run, summed from this run's own
	// responses so concurrent foreign traffic is never attributed to it.
	if ok := int64(total) - failures.Load(); ok > 0 {
		rep.AvgPickMs = float64(pickUs.Load()) / 1000 / float64(ok)
		rep.AvgScanMs = float64(scanUs.Load()) / 1000 / float64(ok)
		rep.PickCacheHitRate = float64(rep.PickCacheHits) / float64(ok)
	}
	return rep, nil
}

// loadGenMixed is the read/write driver behind LoadGenMixed.
func (s *Server) loadGenMixed(queries []*query.Query, budget float64, concurrency, total, appendEvery int, nextBatch func() ([][]float64, [][]string)) (LoadReport, error) {
	if len(queries) == 0 {
		return LoadReport{}, fmt.Errorf("serve: loadgen needs at least one query")
	}
	if concurrency <= 0 {
		concurrency = 1
	}
	if total <= 0 {
		total = len(queries)
	}
	var (
		next        atomic.Int64
		failures    atomic.Int64
		parts       atomic.Int64
		pickUs      atomic.Int64
		scanUs      atomic.Int64
		pickHits    atomic.Int64
		appends     atomic.Int64
		appendFails atomic.Int64
		wg          sync.WaitGroup
	)
	qlats := make([][]time.Duration, concurrency)
	alats := make([][]time.Duration, concurrency)
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var qmine, amine []time.Duration
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					break
				}
				if i%appendEvery == appendEvery-1 {
					num, cat := nextBatch()
					appends.Add(1)
					t0 := time.Now()
					if err := s.Append(num, cat); err != nil {
						appendFails.Add(1)
						continue
					}
					amine = append(amine, time.Since(t0))
					continue
				}
				t0 := time.Now()
				resp, err := s.Query(queries[i%len(queries)], budget)
				if err != nil {
					failures.Add(1)
					continue
				}
				qmine = append(qmine, time.Since(t0))
				parts.Add(int64(resp.PartsRead))
				pickUs.Add(int64(resp.PickMs * 1000))
				scanUs.Add(int64(resp.ScanMs * 1000))
				if resp.PickCached {
					pickHits.Add(1)
				}
			}
			qlats[w] = qmine
			alats[w] = amine
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var qs, as []time.Duration
	for w := range qlats {
		qs = append(qs, qlats[w]...)
		as = append(as, alats[w]...)
	}
	sort.Slice(qs, func(a, b int) bool { return qs[a] < qs[b] })
	sort.Slice(as, func(a, b int) bool { return as[a] < as[b] })
	rep := LoadReport{
		Requests:       int64(total) - appends.Load(),
		Failures:       failures.Load(),
		Duration:       elapsed,
		PartsRead:      parts.Load(),
		PickCacheHits:  pickHits.Load(),
		Appends:        appends.Load(),
		AppendFailures: appendFails.Load(),
	}
	if elapsed > 0 {
		rep.QPS = float64(total) / elapsed.Seconds()
	}
	if len(qs) > 0 {
		var sum time.Duration
		for _, d := range qs {
			sum += d
		}
		rep.AvgMs = float64(sum) / float64(len(qs)) / float64(time.Millisecond)
		rep.P50Ms = float64(qs[len(qs)/2]) / float64(time.Millisecond)
		rep.P95Ms = float64(qs[len(qs)*95/100]) / float64(time.Millisecond)
		rep.P99Ms = float64(qs[len(qs)*99/100]) / float64(time.Millisecond)
		rep.MaxMs = float64(qs[len(qs)-1]) / float64(time.Millisecond)
	}
	if len(as) > 0 {
		var sum time.Duration
		for _, d := range as {
			sum += d
		}
		rep.AvgAppendMs = float64(sum) / float64(len(as)) / float64(time.Millisecond)
		rep.P99AppendMs = float64(as[len(as)*99/100]) / float64(time.Millisecond)
	}
	if ok := rep.Requests - rep.Failures; ok > 0 {
		rep.AvgPickMs = float64(pickUs.Load()) / 1000 / float64(ok)
		rep.AvgScanMs = float64(scanUs.Load()) / 1000 / float64(ok)
		rep.PickCacheHitRate = float64(rep.PickCacheHits) / float64(ok)
	}
	return rep, nil
}
