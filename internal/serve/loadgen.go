package serve

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ps3/internal/query"
)

// LoadReport summarizes one load-generation run against a server.
type LoadReport struct {
	Requests  int64
	Failures  int64
	Duration  time.Duration
	QPS       float64
	AvgMs     float64
	P50Ms     float64
	P95Ms     float64
	P99Ms     float64
	MaxMs     float64
	PartsRead int64
	// AvgPickMs / AvgScanMs are the pick vs scan latency split of this
	// run's own successful requests (summed from their responses), so a
	// load run reports where its serving time went even when the server is
	// handling other traffic concurrently.
	AvgPickMs float64
	AvgScanMs float64
	// PickCacheHits counts this run's successful requests whose partition
	// selection came from the server's pick-result cache; PickCacheHitRate
	// is their share of successful requests. Round-robin traffic revisits
	// each template once per cycle; Zipf traffic concentrates on hot
	// templates and drives this toward 1.
	PickCacheHits    int64
	PickCacheHitRate float64
}

// String renders the report for logs.
func (r LoadReport) String() string {
	return fmt.Sprintf("%d requests (%d failed) in %v: %.0f qps, latency avg %.2fms p50 %.2fms p95 %.2fms p99 %.2fms max %.2fms (pick %.2fms scan %.2fms), %d partition reads, pick-cache hit rate %.1f%%",
		r.Requests, r.Failures, r.Duration.Round(time.Millisecond), r.QPS, r.AvgMs, r.P50Ms, r.P95Ms, r.P99Ms, r.MaxMs, r.AvgPickMs, r.AvgScanMs, r.PartsRead, 100*r.PickCacheHitRate)
}

// LoadGen drives total requests through the server from concurrency workers,
// cycling round-robin over the given queries, and reports sustained
// throughput and latency. It exercises the full serving path — caches,
// admission control, picking and weighted scans — and is what `ps3serve
// -loadgen` and the serve benchmark run.
func (s *Server) LoadGen(queries []*query.Query, budget float64, concurrency, total int) (LoadReport, error) {
	return s.loadGen(queries, budget, concurrency, total, nil)
}

// LoadGenZipf drives total requests whose template popularity follows a Zipf
// distribution with exponent zipfS > 1 over the query pool (rank 1 = the
// first query, the hottest), seeded deterministically. Repeated-template
// traffic is what the pick-result cache is for: the report's
// PickCacheHitRate shows how much of the pick work the cache absorbed.
func (s *Server) LoadGenZipf(queries []*query.Query, budget float64, concurrency, total int, zipfS float64, seed int64) (LoadReport, error) {
	if zipfS <= 1 {
		return LoadReport{}, fmt.Errorf("serve: zipf exponent must be > 1, got %v", zipfS)
	}
	if len(queries) == 0 {
		return LoadReport{}, fmt.Errorf("serve: loadgen needs at least one query")
	}
	// Each worker draws from its own deterministic stream: the run is
	// reproducible per (seed, concurrency) and workers never contend on a
	// shared rng.
	pick := func(worker int) func(i int) int {
		rng := rand.New(rand.NewSource(seed + int64(worker)))
		z := rand.NewZipf(rng, zipfS, 1, uint64(len(queries)-1))
		return func(int) int { return int(z.Uint64()) }
	}
	return s.loadGen(queries, budget, concurrency, total, pick)
}

// loadGen is the shared driver. pick, when non-nil, builds a per-worker
// template chooser; nil means round-robin over the request index.
func (s *Server) loadGen(queries []*query.Query, budget float64, concurrency, total int, pick func(worker int) func(i int) int) (LoadReport, error) {
	if len(queries) == 0 {
		return LoadReport{}, fmt.Errorf("serve: loadgen needs at least one query")
	}
	if concurrency <= 0 {
		concurrency = 1
	}
	if total <= 0 {
		total = len(queries)
	}
	var (
		next     atomic.Int64
		failures atomic.Int64
		parts    atomic.Int64
		pickUs   atomic.Int64
		scanUs   atomic.Int64
		pickHits atomic.Int64
		wg       sync.WaitGroup
	)
	lats := make([][]time.Duration, concurrency)
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			choose := func(i int) int { return i % len(queries) }
			if pick != nil {
				choose = pick(w)
			}
			mine := make([]time.Duration, 0, total/concurrency+1)
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					break
				}
				t0 := time.Now()
				resp, err := s.Query(queries[choose(i)], budget)
				if err != nil {
					failures.Add(1)
					continue
				}
				mine = append(mine, time.Since(t0))
				parts.Add(int64(resp.PartsRead))
				pickUs.Add(int64(resp.PickMs * 1000))
				scanUs.Add(int64(resp.ScanMs * 1000))
				if resp.PickCached {
					pickHits.Add(1)
				}
			}
			lats[w] = mine
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	rep := LoadReport{
		Requests:      int64(total),
		Failures:      failures.Load(),
		Duration:      elapsed,
		PartsRead:     parts.Load(),
		PickCacheHits: pickHits.Load(),
	}
	if elapsed > 0 {
		rep.QPS = float64(total) / elapsed.Seconds()
	}
	if len(all) > 0 {
		var sum time.Duration
		for _, d := range all {
			sum += d
		}
		rep.AvgMs = float64(sum) / float64(len(all)) / float64(time.Millisecond)
		rep.P50Ms = float64(all[len(all)/2]) / float64(time.Millisecond)
		rep.P95Ms = float64(all[len(all)*95/100]) / float64(time.Millisecond)
		rep.P99Ms = float64(all[len(all)*99/100]) / float64(time.Millisecond)
		rep.MaxMs = float64(all[len(all)-1]) / float64(time.Millisecond)
	}
	// Pick vs scan split over this run, summed from this run's own
	// responses so concurrent foreign traffic is never attributed to it.
	if ok := int64(total) - failures.Load(); ok > 0 {
		rep.AvgPickMs = float64(pickUs.Load()) / 1000 / float64(ok)
		rep.AvgScanMs = float64(scanUs.Load()) / 1000 / float64(ok)
		rep.PickCacheHitRate = float64(rep.PickCacheHits) / float64(ok)
	}
	return rep, nil
}
