package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ps3/internal/query"
)

// LoadReport summarizes one load-generation run against a server.
type LoadReport struct {
	Requests  int64
	Failures  int64
	Duration  time.Duration
	QPS       float64
	AvgMs     float64
	P50Ms     float64
	P95Ms     float64
	P99Ms     float64
	MaxMs     float64
	PartsRead int64
	// AvgPickMs / AvgScanMs are the pick vs scan latency split of this
	// run's own successful requests (summed from their responses), so a
	// load run reports where its serving time went even when the server is
	// handling other traffic concurrently.
	AvgPickMs float64
	AvgScanMs float64
}

// String renders the report for logs.
func (r LoadReport) String() string {
	return fmt.Sprintf("%d requests (%d failed) in %v: %.0f qps, latency avg %.2fms p50 %.2fms p95 %.2fms p99 %.2fms max %.2fms (pick %.2fms scan %.2fms), %d partition reads",
		r.Requests, r.Failures, r.Duration.Round(time.Millisecond), r.QPS, r.AvgMs, r.P50Ms, r.P95Ms, r.P99Ms, r.MaxMs, r.AvgPickMs, r.AvgScanMs, r.PartsRead)
}

// LoadGen drives total requests through the server from concurrency workers,
// cycling round-robin over the given queries, and reports sustained
// throughput and latency. It exercises the full serving path — cache,
// admission control, picking and weighted scans — and is what `ps3serve
// -loadgen` and the serve benchmark run.
func (s *Server) LoadGen(queries []*query.Query, budget float64, concurrency, total int) (LoadReport, error) {
	if len(queries) == 0 {
		return LoadReport{}, fmt.Errorf("serve: loadgen needs at least one query")
	}
	if concurrency <= 0 {
		concurrency = 1
	}
	if total <= 0 {
		total = len(queries)
	}
	var (
		next     atomic.Int64
		failures atomic.Int64
		parts    atomic.Int64
		pickUs   atomic.Int64
		scanUs   atomic.Int64
		wg       sync.WaitGroup
	)
	lats := make([][]time.Duration, concurrency)
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := make([]time.Duration, 0, total/concurrency+1)
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					break
				}
				t0 := time.Now()
				resp, err := s.Query(queries[i%len(queries)], budget)
				if err != nil {
					failures.Add(1)
					continue
				}
				mine = append(mine, time.Since(t0))
				parts.Add(int64(resp.PartsRead))
				pickUs.Add(int64(resp.PickMs * 1000))
				scanUs.Add(int64(resp.ScanMs * 1000))
			}
			lats[w] = mine
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	rep := LoadReport{
		Requests:  int64(total),
		Failures:  failures.Load(),
		Duration:  elapsed,
		PartsRead: parts.Load(),
	}
	if elapsed > 0 {
		rep.QPS = float64(total) / elapsed.Seconds()
	}
	if len(all) > 0 {
		var sum time.Duration
		for _, d := range all {
			sum += d
		}
		rep.AvgMs = float64(sum) / float64(len(all)) / float64(time.Millisecond)
		rep.P50Ms = float64(all[len(all)/2]) / float64(time.Millisecond)
		rep.P95Ms = float64(all[len(all)*95/100]) / float64(time.Millisecond)
		rep.P99Ms = float64(all[len(all)*99/100]) / float64(time.Millisecond)
		rep.MaxMs = float64(all[len(all)-1]) / float64(time.Millisecond)
	}
	// Pick vs scan split over this run, summed from this run's own
	// responses so concurrent foreign traffic is never attributed to it.
	if ok := int64(total) - failures.Load(); ok > 0 {
		rep.AvgPickMs = float64(pickUs.Load()) / 1000 / float64(ok)
		rep.AvgScanMs = float64(scanUs.Load()) / 1000 / float64(ok)
	}
	return rep, nil
}
