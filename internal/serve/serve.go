// Package serve is PS3's online serving layer: a long-lived, concurrency-safe
// query service over a trained (typically snapshot-restored) core.System.
// It is the process shape of the paper's deployment model (Fig 1, §2.3.1):
// statistics and picker training happen once offline, the trained artifact is
// persisted (core.System.WriteTo), and any number of serving processes
// restore it (core.OpenSnapshot) and answer approximate queries without
// retraining.
//
// The server adds what sustained concurrent traffic needs on top of
// System.Run:
//
//   - a compiled-query cache keyed by canonical query text (an LRU), so hot
//     queries skip SQL parsing's downstream compilation work;
//   - a pick-result cache (picker.SelectionCache): partition selection is
//     deterministic per (system seed, query text, budget), so repeated
//     queries reuse the weighted selection instead of re-running
//     featurization, the funnel and clustering — with single-flight
//     population so a burst of one hot query picks once;
//   - per-request randomness: each request derives its own RNG from the
//     system seed and a hash of the query text (core.System.Pick), so
//     concurrent requests never share a randomness stream and answers stay
//     deterministic per query;
//   - bounded in-flight execution: a semaphore caps concurrent partition
//     scans so a traffic burst degrades to queueing instead of
//     oversubscribing the scan engine;
//   - live snapshot replacement: Swap atomically installs a retrained
//     system; both caches are invalidated with it, so no post-swap request
//     can observe a pre-swap compilation or selection;
//   - request, cache and latency counters for operational visibility.
//
// Answers are identical to calling System.Run directly — caching and
// admission control never change results.
package serve

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ps3/internal/core"
	"ps3/internal/picker"
	"ps3/internal/query"
	"ps3/internal/sql"
	"ps3/internal/store"
)

// Typed serving errors. The HTTP layer maps them to status codes; embedded
// callers match them with errors.Is.
var (
	// ErrShed reports load shedding: the in-flight bound and the admission
	// queue are both full, so the request was rejected immediately rather
	// than queued behind work the server cannot keep up with. Clients
	// should back off and retry (HTTP: 503 + Retry-After).
	ErrShed = errors.New("serve: overloaded, request shed")
	// ErrDraining reports that the server is shutting down and no longer
	// admits queries; in-flight requests are completing. Clients should
	// retry against another replica.
	ErrDraining = errors.New("serve: draining, not admitting requests")
	// ErrReadOnly reports that the write path is disabled because the
	// ingest pipeline is poisoned (a WAL or flush failure made further
	// durable appends impossible). Queries keep serving.
	ErrReadOnly = errors.New("serve: ingest degraded, server is read-only")
)

// Config tunes the server; zero values take the defaults noted per field.
type Config struct {
	// DefaultBudget is the budget fraction used when a request does not
	// specify one (default 0.05).
	DefaultBudget float64
	// CacheSize caps the compiled-query LRU (default 256 entries).
	CacheSize int
	// PickCacheSize caps the pick-result cache (default 512 entries;
	// negative disables pick caching).
	PickCacheSize int
	// MaxInFlight bounds concurrently executing partition scans; further
	// requests queue (default 2 × GOMAXPROCS).
	MaxInFlight int
	// MaxQueue bounds requests waiting for an in-flight slot; beyond it the
	// server sheds (typed ErrShed, HTTP 503 + Retry-After) instead of
	// building an unbounded backlog whose requests would all miss their
	// deadlines anyway. Default 4 × MaxInFlight; negative means unbounded
	// (the pre-shedding behavior).
	MaxQueue int
	// RequestTimeout is the per-request serving deadline applied inside
	// QueryCtx on top of whatever deadline the caller's context carries
	// (the earlier one wins). Zero means no server-imposed deadline.
	// Cancellation is observed while queued for admission and between
	// partitions during the scan.
	RequestTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.DefaultBudget <= 0 {
		c.DefaultBudget = 0.05
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.PickCacheSize == 0 {
		c.PickCacheSize = 512
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 4 * c.MaxInFlight
	}
	return c
}

// snapState bundles everything bound to one installed snapshot: the system
// and both caches, whose contents are only valid against that system. Swap
// replaces the whole bundle atomically, so a request that loaded a state
// keeps a mutually consistent (system, compiled queries, selections) view
// for its entire lifetime, and no request can pair a new system with a stale
// cache entry or vice versa.
type snapState struct {
	sys   *core.System
	picks *picker.SelectionCache // nil when pick caching is disabled
	// version numbers the installed snapshot: 1 for the system the server
	// started with, incremented by every Swap. Responses carry it so a
	// client (or a test) can tell which snapshot answered.
	version int64

	// mu guards the compiled-query LRU (entries map + recency list).
	mu      sync.Mutex
	entries map[string]*list.Element
	recency *list.List // front = most recently used
}

// Server is a concurrency-safe query service over one trained System. All
// methods are safe for concurrent use.
type Server struct {
	cfg   Config
	state atomic.Pointer[snapState]

	// swapMu serializes Swap so snapshot versions are assigned
	// monotonically even when swaps race.
	swapMu sync.Mutex

	// appender, when set, accepts live row appends (POST /append); nil
	// servers are read-only.
	appender atomic.Pointer[RowAppender]

	// sem bounds in-flight scans.
	sem chan struct{}

	// draining, once set, makes every new query shed with ErrDraining;
	// in-flight and queued requests complete. Set by StartDrain during
	// graceful shutdown, never cleared.
	draining atomic.Bool

	requests    atomic.Int64
	failures    atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	partsRead   atomic.Int64
	inFlight    atomic.Int64
	queued      atomic.Int64
	sheds       atomic.Int64
	deadlines   atomic.Int64
	degraded    atomic.Int64
	latencyNs   atomic.Int64
	maxLatency  atomic.Int64
	pickNs      atomic.Int64
	scanNs      atomic.Int64
	swaps       atomic.Int64

	appends        atomic.Int64
	appendFailures atomic.Int64
	appendedRows   atomic.Int64
	appendNs       atomic.Int64
}

// cacheEntry is one LRU slot.
type cacheEntry struct {
	key string
	c   *query.Compiled
}

// newSnapState builds the per-snapshot bundle.
func newSnapState(sys *core.System, cfg Config, version int64) *snapState {
	st := &snapState{
		sys:     sys,
		version: version,
		entries: make(map[string]*list.Element, cfg.CacheSize),
		recency: list.New(),
	}
	if cfg.PickCacheSize >= 0 {
		st.picks = picker.NewSelectionCache(cfg.PickCacheSize)
	}
	return st
}

// New returns a server over sys, which must already be trained (a serving
// process restores a trained system from a snapshot; it never trains).
func New(sys *core.System, cfg Config) (*Server, error) {
	if sys.Picker == nil {
		return nil, fmt.Errorf("serve: system is not trained; restore a trained snapshot or call Train first")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg: cfg,
		sem: make(chan struct{}, cfg.MaxInFlight),
	}
	s.state.Store(newSnapState(sys, cfg, 1))
	return s, nil
}

// RowAppender is the server's hook into a live write path: ingest's
// pipeline implements it. Kept as a one-method interface so serve depends
// on the capability, not on the WAL machinery.
type RowAppender interface {
	AppendRows(num [][]float64, cat [][]string) error
}

// AppendHealth is the optional capability an appender offers for reporting
// a sticky failure (ingest's pipeline: a poisoned WAL or failed flush).
// When Err is non-nil the server flips the write path to read-only —
// /append answers 503 while queries keep serving — instead of letting
// every append fail with a raw I/O error.
type AppendHealth interface {
	Err() error
}

// SetAppender installs (or, with nil, removes) the live append sink behind
// POST /append.
func (s *Server) SetAppender(a RowAppender) {
	if a == nil {
		s.appender.Store(nil)
		return
	}
	s.appender.Store(&a)
}

// Appender returns the installed append sink, or nil on a read-only
// server.
func (s *Server) Appender() RowAppender {
	if p := s.appender.Load(); p != nil {
		return *p
	}
	return nil
}

// System returns the currently installed system (read-only use).
func (s *Server) System() *core.System { return s.state.Load().sys }

// Swap atomically replaces the served system with a retrained one — the
// deployment move when a new snapshot lands. The compiled-query and
// pick-result caches are bound to the snapshot bundle and are replaced with
// it, and the outgoing pick cache is invalidated, so once Swap returns no
// request — not even one joining a selection computed mid-swap — can observe
// a pre-swap compilation or selection. Requests already executing against
// the old system finish coherently against it.
func (s *Server) Swap(sys *core.System) error {
	if sys.Picker == nil {
		return fmt.Errorf("serve: swapped-in system is not trained")
	}
	s.swapMu.Lock()
	old := s.state.Swap(newSnapState(sys, s.cfg, s.state.Load().version+1))
	s.swapMu.Unlock()
	if old.picks != nil {
		// Fail-fast for in-flight waiters on the outgoing cache: flights
		// finishing after the swap are dropped, not adopted.
		old.picks.Invalidate()
	}
	s.swaps.Add(1)
	return nil
}

// Append ingests a batch of rows through the installed appender, counting
// it in the server's metrics. Read-only servers return an error; a
// poisoned pipeline returns ErrReadOnly (wrapped with the root cause) so
// the transport can answer 503 instead of a generic failure.
func (s *Server) Append(num [][]float64, cat [][]string) error {
	a := s.Appender()
	if a == nil {
		s.appendFailures.Add(1)
		return fmt.Errorf("serve: server is read-only; no append sink installed")
	}
	if h, ok := a.(AppendHealth); ok {
		if herr := h.Err(); herr != nil {
			s.appendFailures.Add(1)
			return fmt.Errorf("%w: %w", ErrReadOnly, herr)
		}
	}
	start := time.Now()
	s.appends.Add(1)
	if err := a.AppendRows(num, cat); err != nil {
		s.appendFailures.Add(1)
		// The failure may have poisoned the pipeline between our health
		// probe and the write; report it as the read-only flip if so.
		if h, ok := a.(AppendHealth); ok && h.Err() != nil {
			return fmt.Errorf("%w: %w", ErrReadOnly, err)
		}
		return err
	}
	s.appendedRows.Add(int64(len(num)))
	s.appendNs.Add(int64(time.Since(start)))
	return nil
}

// ReadOnly reports whether the write path is degraded to read-only (a
// poisoned ingest pipeline) and why. Servers with no appender at all are
// not "read-only" in this sense — they never had a write path.
func (s *Server) ReadOnly() (bool, string) {
	a := s.Appender()
	if a == nil {
		return false, ""
	}
	if h, ok := a.(AppendHealth); ok {
		if err := h.Err(); err != nil {
			return true, err.Error()
		}
	}
	return false, ""
}

// StartDrain flips the server into drain mode: every query from now on is
// shed with ErrDraining (and /readyz reports not-ready, so load balancers
// stop routing here) while queued and in-flight requests complete. It is
// the first step of graceful shutdown and is never undone.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain blocks until no request is queued or in flight, or until ctx
// expires (returning its error with work still pending). Call StartDrain
// first; otherwise new arrivals can keep the server busy indefinitely.
func (s *Server) Drain(ctx context.Context) error {
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.inFlight.Load() == 0 && s.queued.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// SnapshotVersion returns the version of the snapshot currently serving.
func (s *Server) SnapshotVersion() int64 { return s.state.Load().version }

// Response is one served answer, shaped for JSON transport: groups are
// label-sorted so responses are stable and diffable.
type Response struct {
	Query     string   `json:"query"`
	Budget    float64  `json:"budget"`
	Groups    []Group  `json:"groups"`
	Aggs      []string `json:"aggs"`
	PartsRead int      `json:"parts_read"`
	FracRead  float64  `json:"frac_read"`
	Cached    bool     `json:"cached"`
	// SnapshotVersion identifies the installed snapshot that answered: 1
	// for the boot system, +1 per Swap.
	SnapshotVersion int64 `json:"snapshot_version"`
	// PickCached reports that the partition selection came from the
	// pick-result cache (or joined an in-flight pick) instead of being
	// computed by this request. The answer is identical either way.
	PickCached bool    `json:"pick_cached"`
	LatencyMs  float64 `json:"latency_ms"`
	// PickMs / ScanMs split the request's latency into partition selection
	// and the weighted partition scan.
	PickMs float64 `json:"pick_ms"`
	ScanMs float64 `json:"scan_ms"`
	// Degraded reports that quarantined partitions were excluded from the
	// scan: the answer honestly covers less data than the picker chose.
	// SkippedParts lists the excluded partition ids. Absent (false/empty)
	// on healthy responses.
	Degraded     bool  `json:"degraded,omitempty"`
	SkippedParts []int `json:"skipped_parts,omitempty"`
}

// Group is one group's aggregate values under its human-readable label.
type Group struct {
	Label  string    `json:"label"`
	Values []float64 `json:"values"`
}

// QuerySQL parses SQL text, executes it at the budget fraction (0 = the
// server default) and returns the transport-shaped response.
func (s *Server) QuerySQL(sqlText string, budget float64) (*Response, error) {
	return s.QuerySQLCtx(context.Background(), sqlText, budget)
}

// QuerySQLCtx is QuerySQL under the caller's context (the HTTP layer
// passes the request context, so a disconnected client cancels its scan).
func (s *Server) QuerySQLCtx(ctx context.Context, sqlText string, budget float64) (*Response, error) {
	q, _, err := sql.Parse(sqlText)
	if err != nil {
		s.requests.Add(1)
		s.failures.Add(1)
		return nil, err
	}
	return s.QueryCtx(ctx, q, budget)
}

// Query executes q at the budget fraction (0 = the server default). The
// result is identical to sys.Run(q, budget): the caches and admission
// control are invisible in the answer — a pick-cache hit returns the
// byte-identical selection a cold pick would compute, because picking is
// deterministic per (seed, query text, budget).
func (s *Server) Query(q *query.Query, budget float64) (*Response, error) {
	return s.QueryCtx(context.Background(), q, budget)
}

// admit acquires an in-flight slot under the admission policy: immediate
// grant when a slot is free; otherwise the request queues, bounded by
// MaxQueue (beyond it, ErrShed) and by the context (deadline or
// disconnect while queued returns ctx.Err()). The returned release
// function must be called exactly once.
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	release = func() {
		s.inFlight.Add(-1)
		<-s.sem
	}
	select {
	case s.sem <- struct{}{}:
		s.inFlight.Add(1)
		return release, nil
	default:
	}
	if max := int64(s.cfg.MaxQueue); max >= 0 && s.queued.Load() >= max {
		return nil, ErrShed
	}
	s.queued.Add(1)
	defer s.queued.Add(-1)
	select {
	case s.sem <- struct{}{}:
		s.inFlight.Add(1)
		return release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// QueryCtx is Query under a context: the deadline (the caller's, tightened
// by Config.RequestTimeout) is observed while queued for admission and
// between partitions during the scan. Degraded answers — quarantined
// partitions dropped by core's degradation loop — are declared in the
// response, never silent. Shed and deadline outcomes are counted
// separately from other failures in the metrics.
func (s *Server) QueryCtx(ctx context.Context, q *query.Query, budget float64) (*Response, error) {
	start := time.Now()
	s.requests.Add(1)
	if s.draining.Load() {
		s.failures.Add(1)
		s.sheds.Add(1)
		return nil, ErrDraining
	}
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	if budget <= 0 {
		budget = s.cfg.DefaultBudget
	}
	st := s.state.Load()
	key := q.String()
	c, cached, err := s.compiled(st, key, q)
	if err != nil {
		s.failures.Add(1)
		return nil, err
	}

	// Bound in-flight work: a burst beyond MaxInFlight queues here, bounded
	// by MaxQueue and the deadline. Picking (cached or not) and scanning
	// both count against the bound. The release is deferred so a panic
	// during evaluation (recovered per request by net/http) can't leak the
	// slot and wedge the server.
	res, pickHit, err := func() (*core.Result, bool, error) {
		release, err := s.admit(ctx)
		if err != nil {
			return nil, false, err
		}
		defer release()
		n := st.sys.PartsForBudget(budget)
		var pickStats picker.PickStats
		pick := func() ([]query.WeightedPartition, error) {
			sel, ps, err := st.sys.PickParts(q, n)
			pickStats = ps
			return sel, err
		}
		var (
			sel []query.WeightedPartition
			hit bool
		)
		if st.picks != nil {
			sel, hit, err = st.picks.GetOrCompute(picker.SelectionKey{Query: key, N: n}, pick)
		} else {
			sel, err = pick()
		}
		if err != nil {
			return nil, false, err
		}
		res, err := st.sys.RunSelectionCtx(ctx, c, sel)
		if err != nil {
			return nil, false, err
		}
		// Zero when the selection came from the cache: no picking happened
		// in this request.
		res.PickTime = pickStats.Total
		return res, hit, nil
	}()

	if err != nil {
		s.failures.Add(1)
		switch {
		case errors.Is(err, ErrShed) || errors.Is(err, ErrDraining):
			s.sheds.Add(1)
		case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
			s.deadlines.Add(1)
		}
		return nil, err
	}
	if res.Degraded {
		s.degraded.Add(1)
	}
	lat := time.Since(start)
	s.latencyNs.Add(int64(lat))
	updateMax(&s.maxLatency, int64(lat))
	s.partsRead.Add(int64(res.PartsRead))
	s.pickNs.Add(int64(res.PickTime))
	s.scanNs.Add(int64(res.ScanTime))

	resp := &Response{
		Query:           key,
		Budget:          budget,
		PartsRead:       res.PartsRead,
		FracRead:        res.FracRead,
		Cached:          cached,
		PickCached:      pickHit,
		SnapshotVersion: st.version,
		LatencyMs:       float64(lat) / float64(time.Millisecond),
		PickMs:          float64(res.PickTime) / float64(time.Millisecond),
		ScanMs:          float64(res.ScanTime) / float64(time.Millisecond),
		Degraded:        res.Degraded,
		SkippedParts:    res.SkippedParts,
	}
	for _, a := range q.Aggs {
		resp.Aggs = append(resp.Aggs, a.String())
	}
	for g, vals := range res.Values { //lint:mapiter-ok groups are fully sorted by label immediately below
		resp.Groups = append(resp.Groups, Group{Label: res.Labels[g], Values: vals})
	}
	sort.Slice(resp.Groups, func(a, b int) bool { return resp.Groups[a].Label < resp.Groups[b].Label })
	return resp, nil
}

// compiled resolves q through the state's LRU, compiling on miss. When two
// requests race on the same uncached query, the second insert loses and
// adopts the winner's compilation, so the cache never holds duplicate keys.
func (s *Server) compiled(st *snapState, key string, q *query.Query) (c *query.Compiled, hit bool, err error) {
	st.mu.Lock()
	if el, ok := st.entries[key]; ok {
		st.recency.MoveToFront(el)
		c = el.Value.(*cacheEntry).c
		st.mu.Unlock()
		s.cacheHits.Add(1)
		return c, true, nil
	}
	st.mu.Unlock()

	// Compile outside the lock: compilation cost must not serialize cache
	// hits of other queries.
	c, err = st.sys.Compile(q)
	if err != nil {
		return nil, false, err
	}
	s.cacheMisses.Add(1)
	st.mu.Lock()
	defer st.mu.Unlock()
	if el, ok := st.entries[key]; ok {
		st.recency.MoveToFront(el)
		return el.Value.(*cacheEntry).c, false, nil
	}
	st.entries[key] = st.recency.PushFront(&cacheEntry{key: key, c: c})
	if st.recency.Len() > s.cfg.CacheSize {
		last := st.recency.Back()
		st.recency.Remove(last)
		delete(st.entries, last.Value.(*cacheEntry).key)
	}
	return c, false, nil
}

// CacheLen returns the number of cached compiled queries.
func (s *Server) CacheLen() int {
	st := s.state.Load()
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.recency.Len()
}

// PickCacheStats snapshots the current snapshot's pick-result cache counters
// (zero value when pick caching is disabled).
func (s *Server) PickCacheStats() picker.SelectionCacheStats {
	if p := s.state.Load().picks; p != nil {
		return p.Stats()
	}
	return picker.SelectionCacheStats{}
}

// Metrics is a point-in-time snapshot of the server's counters.
type Metrics struct {
	Requests    int64 `json:"requests"`
	Failures    int64 `json:"failures"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	CacheLen    int   `json:"cache_len"`
	PartsRead   int64 `json:"parts_read"`
	InFlight    int64 `json:"in_flight"`
	Queued      int64 `json:"queued"`
	Swaps       int64 `json:"swaps"`
	// Sheds counts requests rejected by admission control (queue full or
	// draining); Deadlines counts requests that missed their deadline or
	// were cancelled — queued or mid-scan. Both are included in Failures.
	Sheds     int64 `json:"sheds"`
	Deadlines int64 `json:"deadlines"`
	// Degraded counts successful responses that carried degraded: true
	// (quarantined partitions excluded from the scan).
	Degraded int64 `json:"degraded"`
	// Draining reports drain mode (shutting down, shedding new queries);
	// ReadOnly reports a poisoned write path (appends 503, queries fine),
	// with the cause in ReadOnlyReason.
	Draining       bool   `json:"draining,omitempty"`
	ReadOnly       bool   `json:"read_only,omitempty"`
	ReadOnlyReason string `json:"read_only_reason,omitempty"`
	// SnapshotVersion is the currently installed snapshot's version.
	SnapshotVersion int64 `json:"snapshot_version"`
	// Appends / AppendFailures / AppendedRows / AvgAppendMs count live
	// ingest traffic through the server's append sink (zero on read-only
	// servers). AvgAppendMs is per successful append batch and includes
	// the WAL group-commit wait.
	Appends        int64   `json:"appends"`
	AppendFailures int64   `json:"append_failures"`
	AppendedRows   int64   `json:"appended_rows"`
	AvgAppendMs    float64 `json:"avg_append_ms"`
	AvgLatencyMs   float64 `json:"avg_latency_ms"`
	MaxLatencyMs   float64 `json:"max_latency_ms"`
	// AvgPickMs / AvgScanMs split the served latency into partition
	// selection (the learned picker's batched inference) and the weighted
	// partition scans, per successful request; PickFrac is pick time as a
	// share of pick+scan. Compiled-query cache hits make the remainder
	// (request latency minus pick minus scan) essentially transport.
	AvgPickMs float64 `json:"avg_pick_ms"`
	AvgScanMs float64 `json:"avg_scan_ms"`
	PickFrac  float64 `json:"pick_frac"`
	// PickCache carries the pick-result cache counters of the installed
	// snapshot (nil when pick caching is disabled): hits, misses,
	// single-flight shares, evictions and mean hit age.
	PickCache *picker.SelectionCacheStats `json:"pick_cache,omitempty"`
	// Store carries the partition-cache counters when the system serves
	// from a paged store (nil on fully-resident systems): physical loads,
	// hits, evictions, and resident bytes vs budget.
	Store *store.CacheStats `json:"store,omitempty"`
	// StoreEncoding carries the store's block-encoding counters (nil on
	// fully-resident systems): compression ratio and how many encoded
	// columns had to be materialized anyway.
	StoreEncoding *store.EncodingStats `json:"store_encoding,omitempty"`
	// StoreHealth carries the source's quarantine state when it reports one
	// (paged stores and ingest's multi-segment source): fenced partitions
	// and corrupt-load retries. Nil when the source offers no health
	// report; zero-valued when healthy.
	StoreHealth *store.HealthStats `json:"store_health,omitempty"`
	// EncodedKernelEvals counts predicate clauses evaluated directly on
	// encoded columns (process-wide) — the work the encodings let scans
	// skip.
	EncodedKernelEvals int64 `json:"encoded_kernel_evals"`
}

// Stats snapshots the counters. Averages are over successful requests.
func (s *Server) Stats() Metrics {
	st := s.state.Load()
	m := Metrics{
		Requests:    s.requests.Load(),
		Failures:    s.failures.Load(),
		CacheHits:   s.cacheHits.Load(),
		CacheMisses: s.cacheMisses.Load(),
		CacheLen:    s.CacheLen(),
		PartsRead:   s.partsRead.Load(),
		InFlight:    s.inFlight.Load(),
		Queued:      s.queued.Load(),
		Swaps:       s.swaps.Load(),
		Sheds:       s.sheds.Load(),
		Deadlines:   s.deadlines.Load(),
		Degraded:    s.degraded.Load(),
		Draining:    s.draining.Load(),

		SnapshotVersion: st.version,
		Appends:         s.appends.Load(),
		AppendFailures:  s.appendFailures.Load(),
		AppendedRows:    s.appendedRows.Load(),
	}
	if ok := m.Appends - m.AppendFailures; ok > 0 {
		m.AvgAppendMs = float64(s.appendNs.Load()) / float64(ok) / float64(time.Millisecond)
	}
	pickNs, scanNs := s.pickNs.Load(), s.scanNs.Load()
	if ok := m.Requests - m.Failures; ok > 0 {
		m.AvgLatencyMs = float64(s.latencyNs.Load()) / float64(ok) / float64(time.Millisecond)
		m.AvgPickMs = float64(pickNs) / float64(ok) / float64(time.Millisecond)
		m.AvgScanMs = float64(scanNs) / float64(ok) / float64(time.Millisecond)
	}
	if total := pickNs + scanNs; total > 0 {
		m.PickFrac = float64(pickNs) / float64(total)
	}
	m.MaxLatencyMs = float64(s.maxLatency.Load()) / float64(time.Millisecond)
	if st.picks != nil {
		ps := st.picks.Stats()
		m.PickCache = &ps
	}
	if cs, ok := st.sys.Source.(interface{ CacheStats() store.CacheStats }); ok {
		cst := cs.CacheStats()
		m.Store = &cst
	}
	if es, ok := st.sys.Source.(interface{ EncodingStats() store.EncodingStats }); ok {
		est := es.EncodingStats()
		m.StoreEncoding = &est
	}
	if hs, ok := st.sys.Source.(interface{ Health() store.HealthStats }); ok {
		h := hs.Health()
		m.StoreHealth = &h
	}
	m.ReadOnly, m.ReadOnlyReason = s.ReadOnly()
	m.EncodedKernelEvals = query.EncodedKernelEvals()
	return m
}

// updateMax raises *a to v if v is larger (lock-free max).
func updateMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}
