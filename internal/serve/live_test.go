package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"ps3/internal/core"
	"ps3/internal/dataset"
	"ps3/internal/ingest"
	"ps3/internal/query"
	"ps3/internal/table"
)

// liveFixture builds a trained system over the first baseRows rows of a
// dataset and hands back the remaining rows in append wire form.
func liveFixture(t testing.TB) (sys *core.System, num [][]float64, cat [][]string, queries []*query.Query) {
	t.Helper()
	ds, err := dataset.Aria(dataset.Config{Rows: 6000, Parts: 15, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	w := len(ds.Table.Schema.Cols)
	for _, p := range ds.Table.Parts {
		for r := 0; r < p.Rows(); r++ {
			nr := make([]float64, w)
			cr := make([]string, w)
			for c, col := range ds.Table.Schema.Cols {
				if col.IsNumeric() {
					nr[c] = p.NumCol(c)[r]
				} else {
					cr[c] = ds.Table.Dict.Value(p.CatCol(c)[r])
				}
			}
			num = append(num, nr)
			cat = append(cat, cr)
		}
	}
	const baseRows, rowsPerPart = 2400, 400
	b, err := table.NewBuilder(ds.Table.Schema, rowsPerPart)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < baseRows; i++ {
		if err := b.Append(num[i], cat[i]); err != nil {
			t.Fatal(err)
		}
	}
	baseTable := b.Finish()
	sys, err = core.New(baseTable, core.Options{Workload: ds.Workload, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := query.NewGenerator(ds.Workload, baseTable, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Train(gen.SampleN(15), nil); err != nil {
		t.Fatal(err)
	}
	return sys, num[baseRows:], cat[baseRows:], gen.SampleN(6)
}

// TestServeSwapUnderAppendTraffic is the live-ingest acceptance test for
// the serving layer: sustained concurrent query traffic while writers
// append through the server and flushes hot-swap snapshots in. Every
// response must be byte-identical to re-running its query against a frozen
// copy of the exact snapshot version that answered it, and each reader must
// observe monotonically non-decreasing snapshot versions.
func TestServeSwapUnderAppendTraffic(t *testing.T) {
	sys, num, cat, queries := liveFixture(t)
	srv, err := New(sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var frozenMu sync.Mutex
	frozen := map[int64]*core.System{1: sys}
	pipe, err := ingest.Open(ingest.Config{
		Dir:          t.TempDir(),
		RowsPerPart:  400,
		CommitWindow: 200 * time.Microsecond,
		OnPublish: func(snap *core.System, version int) {
			if err := srv.Swap(snap); err != nil {
				t.Errorf("swap: %v", err)
				return
			}
			// Publishes are serialized by the pipeline's flush lock, so the
			// serve version right after Swap is the one snap serves under.
			frozenMu.Lock()
			frozen[srv.SnapshotVersion()] = snap
			frozenMu.Unlock()
		},
	}, sys)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	srv.SetAppender(pipe)

	type obs struct {
		q       int
		version int64
		groups  []Group
	}
	var (
		wg       sync.WaitGroup
		obsMu    sync.Mutex
		observed []obs
	)
	// Writers: two goroutines streaming disjoint halves of the append set
	// through the server's sink.
	half := len(num) / 2
	for w, span := range [][2]int{{0, half}, {half, len(num)}} {
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i += 60 {
				end := i + 60
				if end > hi {
					end = hi
				}
				if err := srv.Append(num[i:end], cat[i:end]); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w, span[0], span[1])
	}
	// Readers: four goroutines hammering queries, recording which snapshot
	// version answered and what it said.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var last int64
			for i := 0; i < 40; i++ {
				qi := (r + i) % len(queries)
				resp, err := srv.Query(queries[qi], 0.25)
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if resp.SnapshotVersion < last {
					t.Errorf("reader %d: snapshot version went backwards: %d after %d", r, resp.SnapshotVersion, last)
					return
				}
				last = resp.SnapshotVersion
				obsMu.Lock()
				observed = append(observed, obs{q: qi, version: resp.SnapshotVersion, groups: resp.Groups})
				obsMu.Unlock()
			}
		}(r)
	}
	wg.Wait()
	if err := pipe.FreezeSource(); err != nil {
		t.Fatal(err)
	}

	if got, want := srv.SnapshotVersion(), int64(1+srv.Stats().Swaps); got != want {
		t.Fatalf("final snapshot version %d, want 1+%d swaps", got, want-1)
	}
	if srv.Stats().Swaps == 0 {
		t.Fatal("no snapshot swaps happened under traffic; the test exercised nothing")
	}

	// Byte-identity: replay every observation against a fresh server over
	// the frozen snapshot that answered it.
	replay := make(map[[2]int64][]Group)
	for _, o := range observed {
		key := [2]int64{o.version, int64(o.q)}
		want, ok := replay[key]
		if !ok {
			frozenMu.Lock()
			snap := frozen[o.version]
			frozenMu.Unlock()
			if snap == nil {
				t.Fatalf("observed version %d was never published", o.version)
			}
			ref, err := New(snap, Config{})
			if err != nil {
				t.Fatal(err)
			}
			resp, err := ref.Query(queries[o.q], 0.25)
			if err != nil {
				t.Fatal(err)
			}
			want = resp.Groups
			replay[key] = want
		}
		if !reflect.DeepEqual(o.groups, want) {
			t.Fatalf("query %d at version %d: served answer differs from the frozen snapshot's", o.q, o.version)
		}
	}
	// Every acknowledged row is visible after freeze: the final snapshot
	// serves base + appended.
	if got, want := srv.System().Source.NumRows(), sys.Source.NumRows()+len(num); got != want {
		t.Fatalf("final snapshot serves %d rows, want %d", got, want)
	}
}

// TestHTTPAppend drives the POST /append endpoint end to end against a real
// ingest pipeline: durable acknowledgement, cell-type validation, and 409
// on a read-only server.
func TestHTTPAppend(t *testing.T) {
	sys, num, cat, _ := liveFixture(t)
	srv, err := New(sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(body string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/append", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp, buf.String()
	}

	// Read-only server: 409.
	if resp, _ := post(`{"rows": [[1, "x"]]}`); resp.StatusCode != http.StatusConflict {
		t.Fatalf("append to read-only server: status %d, want 409", resp.StatusCode)
	}

	pipe, err := ingest.Open(ingest.Config{Dir: t.TempDir(), RowsPerPart: 400}, sys)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	srv.SetAppender(pipe)

	// A valid batch of three rows, cells positional in schema order.
	rows := make([][]any, 3)
	for i := range rows {
		row := make([]any, len(num[i]))
		for c, col := range sys.Source.TableSchema().Cols {
			if col.IsNumeric() {
				row[c] = num[i][c]
			} else {
				row[c] = cat[i][c]
			}
		}
		rows[i] = row
	}
	body, err := json.Marshal(map[string]any{"rows": rows})
	if err != nil {
		t.Fatal(err)
	}
	resp, out := post(string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append: status %d: %s", resp.StatusCode, out)
	}
	var ack appendResponse
	if err := json.Unmarshal([]byte(out), &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Appended != 3 {
		t.Fatalf("acknowledged %d rows, want 3", ack.Appended)
	}
	if got := pipe.Stats().RowsAppended; got != 3 {
		t.Fatalf("pipeline recorded %d rows, want 3", got)
	}

	// Validation: wrong width, wrong cell types, empty batch.
	for _, bad := range []string{
		`{"rows": [[1]]}`,
		fmt.Sprintf(`{"rows": [%s]}`, badCellRow(sys, "string-for-number")),
		fmt.Sprintf(`{"rows": [%s]}`, badCellRow(sys, "number-for-string")),
		`{"rows": []}`,
		`{not json`,
	} {
		if resp, out := post(bad); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d (%s), want 400", bad, resp.StatusCode, out)
		}
	}
	if got := pipe.Stats().RowsAppended; got != 3 {
		t.Fatalf("rejected batches changed the pipeline: %d rows", got)
	}

	// Null decodes as NaN for numeric cells.
	nullRow := make([]any, len(rows[0]))
	copy(nullRow, rows[0])
	for c, col := range sys.Source.TableSchema().Cols {
		if col.IsNumeric() {
			nullRow[c] = nil
			break
		}
	}
	body, _ = json.Marshal(map[string]any{"rows": [][]any{nullRow}})
	if resp, out := post(string(body)); resp.StatusCode != http.StatusOK {
		t.Fatalf("null numeric cell: status %d: %s", resp.StatusCode, out)
	}
}

// badCellRow renders one JSON row with a deliberately mistyped cell for the
// named failure shape, valid cells elsewhere.
func badCellRow(sys *core.System, shape string) string {
	schema := sys.Source.TableSchema()
	cells := make([]string, len(schema.Cols))
	doneBad := false
	for c, col := range schema.Cols {
		if col.IsNumeric() {
			if shape == "string-for-number" && !doneBad {
				cells[c] = `"oops"`
				doneBad = true
			} else {
				cells[c] = "1"
			}
		} else {
			if shape == "number-for-string" && !doneBad {
				cells[c] = "7"
				doneBad = true
			} else {
				cells[c] = `"v"`
			}
		}
	}
	return "[" + joinComma(cells) + "]"
}

func joinComma(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ","
		}
		out += p
	}
	return out
}

// TestLoadGenMixed exercises the mixed read/write load generator: the
// append cadence, the separate append latency accounting, and that the
// report's totals add up.
func TestLoadGenMixed(t *testing.T) {
	sys, num, cat, queries := liveFixture(t)
	srv, err := New(sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := ingest.Open(ingest.Config{Dir: t.TempDir(), RowsPerPart: 400}, sys)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()

	// Misconfigurations first: no appender, bad cadence, nil batch source.
	next := func() ([][]float64, [][]string) { return num[:8], cat[:8] }
	if _, err := srv.LoadGenMixed(queries, 0.2, 4, 40, 4, next); err == nil {
		t.Fatal("mixed loadgen without an appender must fail")
	}
	srv.SetAppender(pipe)
	if _, err := srv.LoadGenMixed(queries, 0.2, 4, 40, 1, next); err == nil {
		t.Fatal("appendEvery < 2 must be rejected")
	}
	if _, err := srv.LoadGenMixed(queries, 0.2, 4, 40, 4, nil); err == nil {
		t.Fatal("nil batch source must be rejected")
	}

	const total, every = 60, 4
	rep, err := srv.LoadGenMixed(queries, 0.2, 4, total, every, next)
	if err != nil {
		t.Fatal(err)
	}
	wantAppends := int64(total / every)
	if rep.Appends != wantAppends {
		t.Fatalf("report counts %d appends, want %d", rep.Appends, wantAppends)
	}
	if rep.Requests != int64(total)-wantAppends {
		t.Fatalf("report counts %d query requests, want %d", rep.Requests, int64(total)-wantAppends)
	}
	if rep.Appends > 0 && rep.AvgAppendMs < 0 {
		t.Fatal("append latency must be non-negative")
	}
	if got := pipe.Stats().RowsAppended; got != wantAppends*8 {
		t.Fatalf("pipeline saw %d rows, want %d", got, wantAppends*8)
	}
	if rep.Failures != 0 {
		t.Fatalf("%d failures in mixed loadgen", rep.Failures)
	}
	if s := rep.String(); s == "" {
		t.Fatal("empty report string")
	}
}
