package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ps3/internal/core"
	"ps3/internal/fault"
	"ps3/internal/ingest"
	"ps3/internal/testutil"
)

// The chaos suite drives the full serve+ingest stack under randomized disk
// fault schedules with concurrent append and query load, and asserts the
// robustness contracts end to end:
//
//   - no acknowledged row is lost: whatever the faults did, a clean reopen
//     of the ingest directory recovers every row Append acknowledged;
//   - never a silently wrong answer: every successful response is
//     bit-identical to replaying its query against the frozen snapshot
//     version that answered it, and every failure is a typed, expected
//     error (injected I/O, shed, draining, deadline);
//   - snapshot versions are monotonic per reader;
//   - no goroutine leaks once the stack shuts down.
//
// `make chaos-smoke` runs exactly this suite under -race.

// isExpectedChaosErr reports whether a query failure under fault injection
// is one of the declared degraded-mode outcomes rather than a surprise.
func isExpectedChaosErr(err error) bool {
	return errors.Is(err, fault.ErrInjected) ||
		errors.Is(err, ErrShed) ||
		errors.Is(err, ErrDraining) ||
		errors.Is(err, ErrReadOnly) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled)
}

// TestChaosTransientFaultsUnderLoad: concurrent writers and readers while a
// scheduler injects transient read faults and latency into the segment
// files. Transient faults never corrupt — so no response may be degraded,
// successful answers must replay bit-identically, and acknowledged rows must
// survive a crash-consistent close and clean recovery.
func TestChaosTransientFaultsUnderLoad(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	sys, num, cat, queries := liveFixture(t)
	srv, err := New(sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(fault.OS, 17)
	var frozenMu sync.Mutex
	frozen := map[int64]*core.System{1: sys}
	dir := t.TempDir()
	pipe, err := ingest.Open(ingest.Config{
		Dir:          dir,
		RowsPerPart:  400,
		CommitWindow: 200 * time.Microsecond,
		CacheBytes:   1, // force every segment read to disk, where the faults live
		FS:           inj,
		OnPublish: func(snap *core.System, version int) {
			if err := srv.Swap(snap); err != nil {
				t.Errorf("swap: %v", err)
				return
			}
			frozenMu.Lock()
			frozen[srv.SnapshotVersion()] = snap
			frozenMu.Unlock()
		},
	}, sys)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	srv.SetAppender(pipe)

	type obs struct {
		q       int
		version int64
		groups  []Group
	}
	var (
		wg        sync.WaitGroup
		obsMu     sync.Mutex
		observed  []obs
		acked     atomic.Int64
		submitted atomic.Int64
	)

	// Fault scheduler: windows of probabilistic transient read errors and
	// latency on the segment files, low-probability WAL fsync and flush
	// rename failures (which poison the write path — writers stop, readers
	// keep serving, the acknowledged rows must still recover), interleaved
	// with healthy windows. The schedule is seeded, so a failure reproduces.
	stop := make(chan struct{})
	var schedWG sync.WaitGroup
	schedWG.Add(1)
	go func() { //lint:nakedgo-ok test chaos scheduler, joined via schedWG below
		defer schedWG.Done()
		rng := rand.New(rand.NewSource(23))
		for round := 0; ; round++ {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			switch round % 6 {
			case 0, 3:
				inj.AddRule(&fault.Rule{Op: fault.OpRead, Path: "segment-", Prob: 0.3 + 0.4*rng.Float64(), MaxFires: 1 + rng.Int63n(6)})
			case 1:
				inj.AddRule(&fault.Rule{Op: fault.OpRead, Path: "segment-", Prob: 0.5, Delay: time.Duration(rng.Intn(300)) * time.Microsecond})
			case 4:
				inj.AddRule(&fault.Rule{Op: fault.OpSync, Path: "wal-", Prob: 0.05, MaxFires: 1})
				inj.AddRule(&fault.Rule{Op: fault.OpRename, Path: "segment-", Prob: 0.1, MaxFires: 1})
			case 2, 5:
				inj.ClearRules()
			}
		}
	}()

	// Writers: two goroutines streaming disjoint halves through the sink,
	// stopping at the first failure (a fault mid-flush poisons the pipeline
	// and flips the server read-only — writers stopping is the contract).
	half := len(num) / 2
	for w, span := range [][2]int{{0, half}, {half, len(num)}} {
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i += 60 {
				end := i + 60
				if end > hi {
					end = hi
				}
				submitted.Add(int64(end - i))
				if err := srv.Append(num[i:end], cat[i:end]); err != nil {
					if !isExpectedChaosErr(err) && !errors.Is(err, fault.ErrInjected) {
						t.Errorf("writer %d: unexpected append error: %v", w, err)
					}
					return
				}
				acked.Add(int64(end - i))
			}
		}(w, span[0], span[1])
	}

	// Readers: queries either succeed (recorded for replay) or fail with a
	// typed, expected error. Versions must never go backwards.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var last int64
			for i := 0; i < 60; i++ {
				qi := (r + i) % len(queries)
				resp, err := srv.Query(queries[qi], 0.3)
				if err != nil {
					if !isExpectedChaosErr(err) {
						t.Errorf("reader %d: unexpected query error: %v", r, err)
						return
					}
					continue
				}
				if resp.Degraded {
					t.Errorf("reader %d: degraded response under purely transient faults (nothing was corrupt)", r)
					return
				}
				if resp.SnapshotVersion < last {
					t.Errorf("reader %d: snapshot version went backwards: %d after %d", r, resp.SnapshotVersion, last)
					return
				}
				last = resp.SnapshotVersion
				obsMu.Lock()
				observed = append(observed, obs{q: qi, version: resp.SnapshotVersion, groups: resp.Groups})
				obsMu.Unlock()
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	schedWG.Wait()
	inj.ClearRules()

	if len(observed) == 0 {
		t.Fatal("no query succeeded; the fault schedule drowned the test")
	}

	// Byte-identity replay: with the faults cleared, every observation must
	// match a fresh server over the frozen snapshot that answered it.
	replay := make(map[[2]int64][]Group)
	for _, o := range observed {
		key := [2]int64{o.version, int64(o.q)}
		want, ok := replay[key]
		if !ok {
			frozenMu.Lock()
			snap := frozen[o.version]
			frozenMu.Unlock()
			if snap == nil {
				t.Fatalf("observed version %d was never published", o.version)
			}
			ref, err := New(snap, Config{})
			if err != nil {
				t.Fatal(err)
			}
			resp, err := ref.Query(queries[o.q], 0.3)
			if err != nil {
				t.Fatal(err)
			}
			want = resp.Groups
			replay[key] = want
		}
		if !reflect.DeepEqual(o.groups, want) {
			t.Fatalf("query %d at version %d: served answer differs from the frozen snapshot's", o.q, o.version)
		}
	}

	// No acknowledged row lost: crash-consistent close, then recovery on a
	// clean filesystem. The reopened pipeline may hold more than the
	// acknowledged rows (a batch that failed only at the durability step can
	// reappear — the write-ahead caveat) but never fewer.
	ackedRows := int(acked.Load())
	if err := pipe.Close(); err != nil {
		t.Fatalf("crash-consistent close: %v", err)
	}
	p2, err := ingest.Open(ingest.Config{Dir: dir, RowsPerPart: 400, ManualFlush: true}, sys)
	if err != nil {
		t.Fatalf("recovery after chaos: %v", err)
	}
	defer p2.Close()
	base := sys.Source.NumRows()
	got := p2.NumRows() - base
	if got < ackedRows {
		t.Fatalf("recovered %d appended rows, acknowledged %d: acknowledged rows were lost", got, ackedRows)
	}
	if max := int(submitted.Load()); got > max {
		t.Fatalf("recovered %d appended rows, only %d were ever submitted", got, max)
	}
}

// TestChaosQuarantineDegradedServing: a corrupt segment partition is
// quarantined and served around — the response declares degraded with the
// fenced partition listed, the metrics count it, and /stats surfaces the
// quarantine through StoreHealth.
func TestChaosQuarantineDegradedServing(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	sys, num, cat, queries := liveFixture(t)
	srv, err := New(sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(fault.OS, 5)
	pipe, err := ingest.Open(ingest.Config{
		Dir:         t.TempDir(),
		RowsPerPart: 400,
		ManualFlush: true,
		CacheBytes:  1,
		FS:          inj,
		OnPublish: func(snap *core.System, _ int) {
			if err := srv.Swap(snap); err != nil {
				t.Errorf("swap: %v", err)
			}
		},
	}, sys)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	srv.SetAppender(pipe)
	if err := srv.Append(num[:800], cat[:800]); err != nil {
		t.Fatal(err)
	}
	if err := pipe.Flush(); err != nil {
		t.Fatal(err)
	}
	if srv.SnapshotVersion() != 2 {
		t.Fatalf("snapshot version %d after one flush, want 2", srv.SnapshotVersion())
	}

	// Quarantine the segment's first partition: corrupt its reads, touch it
	// once (load + retry both see bad bytes), clear the fault. Global id =
	// the base partition count.
	victim := sys.Source.NumParts()
	inj.AddRule(&fault.Rule{Op: fault.OpRead, Path: "segment-", FailAt: 1, Corrupt: true})
	if _, err := srv.System().Source.Read(victim); err == nil {
		t.Fatal("corrupt read succeeded")
	}
	inj.ClearRules()

	// Full-budget query: the selection covers every partition, so the
	// quarantined one must be dropped and declared.
	resp, err := srv.Query(queries[0], 1.0)
	if err != nil {
		t.Fatalf("degraded query: %v", err)
	}
	if !resp.Degraded {
		t.Fatal("response over a quarantined partition is not marked degraded")
	}
	found := false
	for _, p := range resp.SkippedParts {
		if p == victim {
			found = true
		}
	}
	if !found {
		t.Fatalf("SkippedParts = %v does not name the quarantined partition %d", resp.SkippedParts, victim)
	}

	m := srv.Stats()
	if m.Degraded < 1 {
		t.Fatalf("Metrics.Degraded = %d, want >= 1", m.Degraded)
	}
	if m.StoreHealth == nil {
		t.Fatal("Metrics.StoreHealth is nil for a paged multi-segment source")
	}
	foundHealth := false
	for _, p := range m.StoreHealth.QuarantinedParts {
		if p == victim {
			foundHealth = true
		}
	}
	if !foundHealth {
		t.Fatalf("StoreHealth.QuarantinedParts = %v does not name %d", m.StoreHealth.QuarantinedParts, victim)
	}
}

// TestChaosWALPoisonFlipsReadOnly: a WAL fsync failure poisons the write
// path. Appends answer ErrReadOnly (HTTP 503 + Retry-After), queries keep
// serving, /readyz stays ready, and /stats declares the degradation.
func TestChaosWALPoisonFlipsReadOnly(t *testing.T) {
	sys, num, cat, queries := liveFixture(t)
	srv, err := New(sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(fault.OS, 7)
	pipe, err := ingest.Open(ingest.Config{
		Dir:         t.TempDir(),
		RowsPerPart: 400,
		ManualFlush: true,
		FS:          inj,
	}, sys)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	srv.SetAppender(pipe)

	if ro, _ := srv.ReadOnly(); ro {
		t.Fatal("healthy server reports read-only")
	}
	inj.AddRule(&fault.Rule{Op: fault.OpSync, Path: "wal-", FailAt: 1})
	if err := srv.Append(num[:10], cat[:10]); err == nil {
		t.Fatal("append across a failed fsync was acknowledged")
	}
	inj.ClearRules()

	ro, reason := srv.ReadOnly()
	if !ro || reason == "" {
		t.Fatalf("ReadOnly() = %v, %q after a poisoned WAL", ro, reason)
	}
	if err := srv.Append(num[:10], cat[:10]); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("append on poisoned pipeline: err = %v, want ErrReadOnly", err)
	}
	if _, err := srv.Query(queries[0], 0.3); err != nil {
		t.Fatalf("query on a read-only server: %v", err)
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	// A well-formed single-row batch: the rejection must come from the
	// poisoned write path, not from request parsing.
	row := make([]any, len(num[0]))
	for c, col := range sys.Source.TableSchema().Cols {
		if col.IsNumeric() {
			row[c] = num[0][c]
		} else {
			row[c] = cat[0][c]
		}
	}
	body, err := json.Marshal(map[string]any{"rows": [][]any{row}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/append", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST /append on read-only server: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 append response carries no Retry-After")
	}
	ready, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	ready.Body.Close()
	if ready.StatusCode != http.StatusOK {
		t.Fatalf("GET /readyz on read-only (but serving) server: status %d, want 200", ready.StatusCode)
	}
	if m := srv.Stats(); !m.ReadOnly || m.ReadOnlyReason == "" {
		t.Fatalf("Metrics = {ReadOnly: %v, Reason: %q}, want the poisoned write path declared", m.ReadOnly, m.ReadOnlyReason)
	}
}

// TestChaosDrainSheds: during graceful shutdown, queued requests complete,
// new arrivals shed with ErrDraining, and Drain returns once the server is
// idle — with no goroutines left behind.
func TestChaosDrainSheds(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	sys, _, _, queries := liveFixture(t)
	srv, err := New(sys, Config{MaxInFlight: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Occupy every in-flight slot, then queue one request behind them.
	for i := 0; i < 2; i++ {
		srv.sem <- struct{}{}
	}
	queuedErr := make(chan error, 1)
	queuedStarted := make(chan struct{})
	go func() { //lint:nakedgo-ok test helper issuing one blocking query, joined via queuedErr
		close(queuedStarted)
		_, err := srv.Query(queries[0], 0.2)
		queuedErr <- err
	}()
	<-queuedStarted
	deadline := time.Now().Add(2 * time.Second)
	for srv.queued.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	srv.StartDrain()
	if _, err := srv.Query(queries[1], 0.2); !errors.Is(err, ErrDraining) {
		t.Fatalf("query during drain: err = %v, want ErrDraining", err)
	}

	// Free the slots: the queued request (admitted before drain began) must
	// complete successfully.
	<-srv.sem
	<-srv.sem
	if err := <-queuedErr; err != nil {
		t.Fatalf("queued request failed during drain: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	m := srv.Stats()
	if !m.Draining || m.Sheds < 1 {
		t.Fatalf("Metrics = {Draining: %v, Sheds: %d}, want draining with >= 1 shed", m.Draining, m.Sheds)
	}
}

// TestChaosDeadlineMidScan: a tight per-request deadline with injected read
// latency fails with DeadlineExceeded (counted as such), and the same query
// succeeds once the latency clears — cancellation never wedges a slot.
func TestChaosDeadlineMidScan(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	sys, num, cat, queries := liveFixture(t)
	srv, err := New(sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(fault.OS, 11)
	pipe, err := ingest.Open(ingest.Config{
		Dir:         t.TempDir(),
		RowsPerPart: 400,
		ManualFlush: true,
		CacheBytes:  1,
		FS:          inj,
		OnPublish: func(snap *core.System, _ int) {
			if err := srv.Swap(snap); err != nil {
				t.Errorf("swap: %v", err)
			}
		},
	}, sys)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	srv.SetAppender(pipe)
	if err := srv.Append(num[:800], cat[:800]); err != nil {
		t.Fatal(err)
	}
	if err := pipe.Flush(); err != nil {
		t.Fatal(err)
	}

	inj.AddRule(&fault.Rule{Op: fault.OpRead, Path: "segment-", Delay: 20 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := srv.QueryCtx(ctx, queries[0], 1.0); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("slow scan under a 5ms deadline: err = %v, want DeadlineExceeded", err)
	}
	if m := srv.Stats(); m.Deadlines < 1 {
		t.Fatalf("Metrics.Deadlines = %d, want >= 1", m.Deadlines)
	}
	inj.ClearRules()
	if _, err := srv.Query(queries[0], 1.0); err != nil {
		t.Fatalf("same query after the latency cleared: %v", err)
	}
	if got := srv.Stats().InFlight; got != 0 {
		t.Fatalf("InFlight = %d after all requests returned: a cancelled request leaked its slot", got)
	}
}
