package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"ps3/internal/core"
	"ps3/internal/dataset"
	"ps3/internal/query"
	"ps3/internal/store"
	"ps3/internal/table"
)

// fixtureConfig is the dataset every serving fixture builds from;
// fixtureSizes derives cache budgets from the same config.
var fixtureConfig = dataset.Config{Rows: 16000, Parts: 40, Seed: 1}

// restoredSystem trains a small system, snapshots it together with its
// table, and restores both from bytes — the serving deployment shape: the
// server always fronts a snapshot-restored system, never the process that
// trained.
func restoredSystem(t testing.TB, trainN int) (*core.System, []*query.Query) {
	t.Helper()
	ds, err := dataset.Aria(fixtureConfig)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.New(ds.Table, core.Options{Workload: ds.Workload, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := query.NewGenerator(ds.Workload, ds.Table, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Train(gen.SampleN(trainN), nil); err != nil {
		t.Fatal(err)
	}

	var tblBuf, snapBuf bytes.Buffer
	if _, err := ds.Table.WriteTo(&tblBuf); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.WriteTo(&snapBuf); err != nil {
		t.Fatal(err)
	}
	tbl, err := table.ReadTable(&tblBuf)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := core.OpenSnapshot(&snapBuf, tbl)
	if err != nil {
		t.Fatal(err)
	}
	return restored, gen.SampleN(12)
}

// residentAndPagedSystems trains one system and restores its snapshot
// twice: once over the resident table, once over the same data re-written
// in the paged store format and opened with the given cache budget. The
// pair is the equivalence fixture for out-of-core serving.
func residentAndPagedSystems(t testing.TB, trainN int, cacheBytes int64) (resident, paged *core.System, r *store.Reader, queries []*query.Query) {
	t.Helper()
	sys, queries := restoredSystem(t, trainN)

	var storeBuf, snapBuf bytes.Buffer
	if _, err := store.Write(&storeBuf, sys.Table); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.WriteTo(&snapBuf); err != nil {
		t.Fatal(err)
	}
	r, err := store.NewReaderAt(bytes.NewReader(storeBuf.Bytes()), int64(storeBuf.Len()), store.Options{CacheBytes: cacheBytes})
	if err != nil {
		t.Fatal(err)
	}
	paged, err = core.OpenSnapshot(&snapBuf, r)
	if err != nil {
		t.Fatal(err)
	}
	if paged.Table != nil {
		t.Fatal("store-backed system must not hold a resident table")
	}
	return sys, paged, r, queries
}

func TestNewRequiresTrainedSystem(t *testing.T) {
	ds, err := dataset.Aria(dataset.Config{Rows: 2000, Parts: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.New(ds.Table, core.Options{Workload: ds.Workload})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(sys, Config{}); err == nil {
		t.Fatal("want error for untrained system")
	}
}

func TestServeMatchesDirectRun(t *testing.T) {
	sys, queries := restoredSystem(t, 20)
	srv, err := New(sys, Config{DefaultBudget: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		direct, err := sys.Run(q, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := srv.Query(q, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if resp.PartsRead != direct.PartsRead {
			t.Fatalf("query %s: served %d parts, direct %d", q, resp.PartsRead, direct.PartsRead)
		}
		if len(resp.Groups) != len(direct.Values) {
			t.Fatalf("query %s: served %d groups, direct %d", q, len(resp.Groups), len(direct.Values))
		}
		want := make(map[string][]float64, len(direct.Values))
		for g, vals := range direct.Values {
			want[direct.Labels[g]] = vals
		}
		for _, grp := range resp.Groups {
			if !reflect.DeepEqual(want[grp.Label], grp.Values) {
				t.Fatalf("query %s group %q: served %v, direct %v", q, grp.Label, grp.Values, want[grp.Label])
			}
		}
	}
}

func TestServeCacheHitsAndEviction(t *testing.T) {
	sys, queries := restoredSystem(t, 15)
	srv, err := New(sys, Config{CacheSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	q := queries[0]
	if _, err := srv.Query(q, 0.1); err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Query(q, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Fatal("second execution of the same query missed the cache")
	}
	m := srv.Stats()
	if m.CacheHits != 1 || m.CacheMisses != 1 {
		t.Fatalf("cache counters: %d hits / %d misses, want 1/1", m.CacheHits, m.CacheMisses)
	}
	// Fill past capacity; the LRU must stay bounded.
	for _, qq := range queries[1:] {
		if _, err := srv.Query(qq, 0.1); err != nil {
			t.Fatal(err)
		}
	}
	if got := srv.CacheLen(); got > 3 {
		t.Fatalf("cache grew to %d entries, cap is 3", got)
	}
	// SQL text canonicalization: differently-formatted SQL for the same
	// query shares one cache entry.
	srv2, err := New(sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv2.QuerySQL("SELECT COUNT(*) FROM t", 0.1); err != nil {
		t.Fatal(err)
	}
	resp2, err := srv2.QuerySQL("select   count(*)   from t", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !resp2.Cached {
		t.Fatal("canonically equal SQL text missed the cache")
	}
}

func TestServeHTTP(t *testing.T) {
	sys, _ := restoredSystem(t, 15)
	srv, err := New(sys, Config{DefaultBudget: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp, buf.Bytes()
	}

	resp, body := post(`{"sql": "SELECT TenantId, COUNT(*) FROM t GROUP BY TenantId", "budget": 0.2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query returned %d: %s", resp.StatusCode, body)
	}
	var qr Response
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("bad response JSON: %v\n%s", err, body)
	}
	if qr.PartsRead == 0 || len(qr.Groups) == 0 {
		t.Fatalf("empty served answer: %+v", qr)
	}

	if resp, body = post(`{"sql": ""}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing sql returned %d: %s", resp.StatusCode, body)
	}
	if resp, body = post(`{"sql": "SELECT", "budget": 0.1}`); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unparsable sql returned %d: %s", resp.StatusCode, body)
	}
	if resp, body = post(`{"sql": "SELECT COUNT(*) FROM t", "budget": 7}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range budget returned %d: %s", resp.StatusCode, body)
	}
	if resp, body = post(`{bad json`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json returned %d: %s", resp.StatusCode, body)
	}

	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(sresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Requests == 0 {
		t.Fatalf("stats show no requests: %+v", m)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz returned %d", hresp.StatusCode)
	}
}

// TestConcurrentServingMatchesSequentialBaseline is the serving-layer race
// test: N goroutines fan requests over one restored system through both the
// server and System.Run directly, and every concurrent answer must equal
// the sequential baseline computed up front. Run under -race (make race).
func TestConcurrentServingMatchesSequentialBaseline(t *testing.T) {
	sys, queries := restoredSystem(t, 20)
	srv, err := New(sys, Config{MaxInFlight: 4, CacheSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	const budget = 0.15

	// Sequential baseline.
	type baseline struct {
		values map[string][]float64
		parts  int
	}
	want := make([]baseline, len(queries))
	for i, q := range queries {
		res, err := sys.Run(q, budget)
		if err != nil {
			t.Fatal(err)
		}
		vals := make(map[string][]float64, len(res.Values))
		for g, v := range res.Values {
			vals[res.Labels[g]] = v
		}
		want[i] = baseline{values: vals, parts: res.PartsRead}
	}

	const workers = 8
	const rounds = 5
	var wg sync.WaitGroup
	// Sends must never block: a broad regression reports one error per
	// mismatching group — far more than one per request — and a full
	// channel would deadlock the workers before wg.Wait returns. Errors
	// beyond the buffer are dropped; the survivors are plenty to fail on.
	errs := make(chan error, workers*rounds*len(queries))
	report := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i, q := range queries {
					// Alternate between the serve path and the direct
					// System.Run path, as the satellite task specifies.
					if (w+r+i)%2 == 0 {
						resp, err := srv.Query(q, budget)
						if err != nil {
							report(err)
							continue
						}
						if resp.PartsRead != want[i].parts {
							report(fmt.Errorf("query %d: served %d parts, baseline %d", i, resp.PartsRead, want[i].parts))
						}
						for _, grp := range resp.Groups {
							if !reflect.DeepEqual(want[i].values[grp.Label], grp.Values) {
								report(fmt.Errorf("query %d group %q: served %v, baseline %v",
									i, grp.Label, grp.Values, want[i].values[grp.Label]))
							}
						}
					} else {
						res, err := sys.Run(q, budget)
						if err != nil {
							report(err)
							continue
						}
						if res.PartsRead != want[i].parts {
							report(fmt.Errorf("query %d: direct %d parts, baseline %d", i, res.PartsRead, want[i].parts))
						}
						for g, v := range res.Values {
							if !reflect.DeepEqual(want[i].values[res.Labels[g]], v) {
								report(fmt.Errorf("query %d group %q: direct %v, baseline %v",
									i, res.Labels[g], v, want[i].values[res.Labels[g]]))
							}
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	m := srv.Stats()
	if m.Failures != 0 {
		t.Fatalf("server recorded %d failures", m.Failures)
	}
	if m.InFlight != 0 {
		t.Fatalf("in-flight gauge did not drain: %d", m.InFlight)
	}
}

// TestServePagedMatchesResident is the acceptance contract for out-of-core
// serving: a store-backed server must answer bit-identically to the
// fully-resident server for the same snapshot and seed — the partition
// cache and block decode are invisible in the results.
func TestServePagedMatchesResident(t *testing.T) {
	resident, paged, r, queries := residentAndPagedSystems(t, 20, -1)
	srvR, err := New(resident, Config{})
	if err != nil {
		t.Fatal(err)
	}
	srvP, err := New(paged, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		want, err := srvR.Query(q, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := srvP.Query(q, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if got.PartsRead != want.PartsRead || got.FracRead != want.FracRead {
			t.Fatalf("query %s: paged read %d parts, resident %d", q, got.PartsRead, want.PartsRead)
		}
		if !reflect.DeepEqual(got.Groups, want.Groups) {
			t.Fatalf("query %s:\npaged    %v\nresident %v", q, got.Groups, want.Groups)
		}
	}
	if m := srvR.Stats(); m.Store != nil {
		t.Fatal("resident server must not report store cache counters")
	}
	m := srvP.Stats()
	if m.Store == nil {
		t.Fatal("paged server must report store cache counters")
	}
	if m.Store.Misses == 0 || m.Store.LoadedBytes == 0 {
		t.Fatalf("paged serving recorded no physical loads: %+v", *m.Store)
	}
	if got := r.CacheStats(); got.Misses != m.Store.Misses {
		t.Fatalf("stats snapshot disagrees with reader: %+v vs %+v", m.Store, got)
	}
}

// fixtureSizes reports the byte sizes of the restoredSystem dataset without
// the cost of building and training a full system (both build from
// fixtureConfig).
func fixtureSizes(t testing.TB) (totalBytes, partSize int64) {
	t.Helper()
	ds, err := dataset.Aria(fixtureConfig)
	if err != nil {
		t.Fatal(err)
	}
	return int64(ds.Table.TotalBytes()), int64(ds.Table.Parts[0].SizeBytes())
}

// TestServePagedBoundedCacheLoadsOnlyPicked asserts the memory-model flip:
// with a cache budget far below TotalBytes, serving stays within budget and
// the physical bytes faulted in are bounded by what the picker selected,
// not by the dataset.
func TestServePagedBoundedCacheLoadsOnlyPicked(t *testing.T) {
	totalBytes, partSize := fixtureSizes(t)
	budget := totalBytes / 8 // ~5 of 40 partitions
	_, paged, r, queries := residentAndPagedSystems(t, 15, budget)
	if int64(r.TotalBytes()) <= budget {
		t.Fatalf("fixture defeats the test: budget %d covers the %d-byte dataset", budget, r.TotalBytes())
	}
	srv, err := New(paged, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var logicalReads int64
	for _, q := range queries {
		resp, err := srv.Query(q, 0.05) // 2 of 40 partitions per request
		if err != nil {
			t.Fatal(err)
		}
		logicalReads += int64(resp.PartsRead)
	}
	parts, _ := r.IOStats()
	if parts != logicalReads {
		t.Fatalf("reader charged %d logical reads, responses say %d", parts, logicalReads)
	}
	st := r.CacheStats()
	if st.ResidentBytes > budget {
		t.Fatalf("cache holds %d bytes, budget %d", st.ResidentBytes, budget)
	}
	if st.LoadedBytes > logicalReads*partSize {
		t.Fatalf("loaded %d physical bytes for %d picked partition reads of ≤%d bytes each",
			st.LoadedBytes, logicalReads, partSize)
	}
	if st.LoadedBytes >= int64(r.TotalBytes()) {
		t.Fatalf("picked-set serving faulted in the whole dataset: %d of %d bytes",
			st.LoadedBytes, r.TotalBytes())
	}
}

// TestConcurrentPagedServingMatchesResidentBaseline is the out-of-core half
// of the serving race contract: concurrent requests against a store-backed
// server with a thrashing cache must reproduce the resident sequential
// baseline bit for bit. Run under -race (make race-serve).
func TestConcurrentPagedServingMatchesResidentBaseline(t *testing.T) {
	_, partSize := fixtureSizes(t)
	// Room for ~3 partitions: every scan evicts, exercising reload + single
	// flight under contention.
	resident, paged, _, queries := residentAndPagedSystems(t, 20, 3*partSize)
	srv, err := New(paged, Config{MaxInFlight: 4, CacheSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	const budget = 0.15
	want := make([]map[string][]float64, len(queries))
	for i, q := range queries {
		res, err := resident.Run(q, budget)
		if err != nil {
			t.Fatal(err)
		}
		vals := make(map[string][]float64, len(res.Values))
		for g, v := range res.Values {
			vals[res.Labels[g]] = v
		}
		want[i] = vals
	}
	const workers = 8
	const rounds = 4
	var wg sync.WaitGroup
	// Non-blocking sends, as in the resident concurrent test: errors
	// beyond the buffer are dropped rather than deadlocking workers.
	errs := make(chan error, workers*rounds*len(queries))
	report := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i, q := range queries {
					resp, err := srv.Query(q, budget)
					if err != nil {
						report(err)
						continue
					}
					for _, grp := range resp.Groups {
						if !reflect.DeepEqual(want[i][grp.Label], grp.Values) {
							report(fmt.Errorf("query %d group %q: paged %v, baseline %v",
								i, grp.Label, grp.Values, want[i][grp.Label]))
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if m := srv.Stats(); m.Failures != 0 {
		t.Fatalf("server recorded %d failures", m.Failures)
	}
}

func TestLoadGen(t *testing.T) {
	sys, queries := restoredSystem(t, 15)
	srv, err := New(sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := srv.LoadGen(queries[:4], 0.1, 4, 40)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 40 || rep.Failures != 0 {
		t.Fatalf("loadgen report: %+v", rep)
	}
	if rep.QPS <= 0 || rep.MaxMs <= 0 {
		t.Fatalf("loadgen produced empty timings: %+v", rep)
	}
	if _, err := srv.LoadGen(nil, 0.1, 2, 10); err == nil {
		t.Fatal("want error with no queries")
	}
}

// TestLoadGenPercentilesAndBreakdown checks the latency percentile ladder
// and the pick-vs-scan latency split the load generator and /stats report.
func TestLoadGenPercentilesAndBreakdown(t *testing.T) {
	sys, queries := restoredSystem(t, 15)
	srv, err := New(sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := srv.LoadGen(queries[:4], 0.1, 4, 60)
	if err != nil {
		t.Fatal(err)
	}
	if rep.P50Ms <= 0 || rep.P50Ms > rep.P95Ms || rep.P95Ms > rep.P99Ms || rep.P99Ms > rep.MaxMs {
		t.Fatalf("percentile ladder broken: p50 %.3f p95 %.3f p99 %.3f max %.3f",
			rep.P50Ms, rep.P95Ms, rep.P99Ms, rep.MaxMs)
	}
	if rep.AvgPickMs <= 0 || rep.AvgScanMs <= 0 {
		t.Fatalf("pick/scan breakdown missing from load report: %+v", rep)
	}
	m := srv.Stats()
	if m.AvgPickMs <= 0 || m.AvgScanMs <= 0 {
		t.Fatalf("pick/scan breakdown missing from /stats metrics: %+v", m)
	}
	if m.PickFrac <= 0 || m.PickFrac >= 1 {
		t.Fatalf("PickFrac = %v, want in (0, 1)", m.PickFrac)
	}
	if m.AvgPickMs+m.AvgScanMs > m.AvgLatencyMs+0.5 {
		t.Fatalf("pick %.3fms + scan %.3fms exceeds avg latency %.3fms", m.AvgPickMs, m.AvgScanMs, m.AvgLatencyMs)
	}
}

// BenchmarkServeThroughput measures sustained concurrent serving throughput
// over a restored snapshot (make serve-bench records this).
func BenchmarkServeThroughput(b *testing.B) {
	sys, queries := restoredSystem(b, 15)
	srv, err := New(sys, Config{})
	if err != nil {
		b.Fatal(err)
	}
	// Warm the cache so the steady state is measured.
	for _, q := range queries {
		if _, err := srv.Query(q, 0.1); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := srv.Query(queries[i%len(queries)], 0.1); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
	b.StopTimer()
	m := srv.Stats()
	b.ReportMetric(float64(m.CacheHits)/float64(m.Requests), "cache-hit-ratio")
}

// pickFingerprint serializes the answer-bearing fields of a response —
// everything except latencies and cache markers — for byte-identity checks.
func pickFingerprint(t *testing.T, r *Response) string {
	t.Helper()
	c := *r
	c.LatencyMs, c.PickMs, c.ScanMs = 0, 0, 0
	c.Cached, c.PickCached = false, false
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestServePickCacheHitsAreIdentical pins the cache's core contract: a
// pick-cache hit serves the byte-identical answer a cold pick computes.
func TestServePickCacheHitsAreIdentical(t *testing.T) {
	sys, queries := restoredSystem(t, 15)
	srv, err := New(sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries[:6] {
		cold, err := srv.Query(q, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if cold.PickCached {
			t.Fatalf("query %s: first execution claims a pick-cache hit", q)
		}
		hot, err := srv.Query(q, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if !hot.PickCached {
			t.Fatalf("query %s: repeat execution missed the pick cache", q)
		}
		if hot.PickMs != 0 {
			t.Fatalf("query %s: cached pick reports %.3fms pick time, want 0", q, hot.PickMs)
		}
		if got, want := pickFingerprint(t, hot), pickFingerprint(t, cold); got != want {
			t.Fatalf("query %s: cached response differs from cold response:\n cold %s\n  hot %s", q, want, got)
		}
	}
	m := srv.Stats()
	if m.PickCache == nil {
		t.Fatal("metrics missing pick-cache counters")
	}
	if m.PickCache.Hits != 6 || m.PickCache.Misses != 6 {
		t.Fatalf("pick cache counters: %+v, want 6 hits / 6 misses", *m.PickCache)
	}
	if m.PickCache.AvgHitAgeMs < 0 {
		t.Fatalf("negative hit age: %+v", *m.PickCache)
	}
	// Distinct budgets are distinct selections: no false sharing.
	r5, err := srv.Query(queries[0], 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if r5.PickCached {
		t.Fatal("different budget hit the cache entry of another budget")
	}
}

// TestServePickCacheDisabled: negative PickCacheSize turns the cache off.
func TestServePickCacheDisabled(t *testing.T) {
	sys, queries := restoredSystem(t, 15)
	srv, err := New(sys, Config{PickCacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		resp, err := srv.Query(queries[0], 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if resp.PickCached {
			t.Fatal("disabled pick cache reported a hit")
		}
		if resp.PickMs <= 0 {
			t.Fatal("uncached pick reported zero pick time")
		}
	}
	if m := srv.Stats(); m.PickCache != nil {
		t.Fatalf("metrics report pick-cache counters while disabled: %+v", *m.PickCache)
	}
}

// retrainedSystem builds a second trained system over the same data with a
// different system seed, so its pick decisions (and thus answers) diverge
// from restoredSystem's — distinguishable enough to observe a swap.
func retrainedSystem(t testing.TB) *core.System {
	t.Helper()
	ds, err := dataset.Aria(fixtureConfig)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.New(ds.Table, core.Options{Workload: ds.Workload, Seed: 1234})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := query.NewGenerator(ds.Workload, ds.Table, 43)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Train(gen.SampleN(10), nil); err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestServeSwap: Swap atomically installs a retrained system; both caches
// are invalidated with it, and post-swap answers come from the new system.
func TestServeSwap(t *testing.T) {
	sys, queries := restoredSystem(t, 15)
	newSys := retrainedSystem(t)
	srv, err := New(sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	q := queries[0]
	// Warm both caches on the old system.
	if _, err := srv.Query(q, 0.1); err != nil {
		t.Fatal(err)
	}
	warm, err := srv.Query(q, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached || !warm.PickCached {
		t.Fatalf("warm request not cached: %+v", warm)
	}

	// An untrained system must be rejected without disturbing the server.
	ds, err := dataset.Aria(dataset.Config{Rows: 2000, Parts: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	untrained, err := core.New(ds.Table, core.Options{Workload: ds.Workload})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Swap(untrained); err == nil {
		t.Fatal("want error swapping in an untrained system")
	}
	if srv.System() != sys {
		t.Fatal("rejected swap replaced the system")
	}

	if err := srv.Swap(newSys); err != nil {
		t.Fatal(err)
	}
	if srv.System() != newSys {
		t.Fatal("System() does not return the swapped-in system")
	}
	post, err := srv.Query(q, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if post.Cached || post.PickCached {
		t.Fatalf("post-swap request served from pre-swap caches: %+v", post)
	}
	// The post-swap answer is the new system's answer.
	direct, err := newSys.Run(q, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string][]float64, len(direct.Values))
	for g, vals := range direct.Values {
		want[direct.Labels[g]] = vals
	}
	for _, grp := range post.Groups {
		if !reflect.DeepEqual(want[grp.Label], grp.Values) {
			t.Fatalf("post-swap group %q: served %v, new system %v", grp.Label, grp.Values, want[grp.Label])
		}
	}
	// And it repopulates the new caches.
	again, err := srv.Query(q, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || !again.PickCached {
		t.Fatalf("post-swap repeat not cached: %+v", again)
	}
	if got, want := pickFingerprint(t, again), pickFingerprint(t, post); got != want {
		t.Fatalf("post-swap cached response differs from cold response:\n cold %s\n  hot %s", want, got)
	}
	if m := srv.Stats(); m.Swaps != 1 {
		t.Fatalf("swaps counter = %d, want 1", m.Swaps)
	}
}

// TestServeSwapUnderConcurrentTraffic swaps mid-traffic (run under -race):
// every response must match one of the two systems' direct answers — never a
// mix — and requests joining in-flight pre-swap picks must not be served
// post-swap selections.
func TestServeSwapUnderConcurrentTraffic(t *testing.T) {
	sys, queries := restoredSystem(t, 15)
	newSys := retrainedSystem(t)
	srv, err := New(sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	qs := queries[:3]
	type expect struct{ old, new string }
	wants := make(map[string]expect, len(qs))
	for _, q := range qs {
		oldR, err := sys.Run(q, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		newR, err := newSys.Run(q, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		fp := func(r *core.Result) string {
			labels := make([]string, 0, len(r.Values))
			for g := range r.Values {
				labels = append(labels, r.Labels[g]+fmt.Sprint(r.Values[g]))
			}
			sort.Strings(labels)
			return strings.Join(labels, "|")
		}
		wants[q.String()] = expect{old: fp(oldR), new: fp(newR)}
	}
	respFP := func(r *Response) string {
		labels := make([]string, 0, len(r.Groups))
		for _, g := range r.Groups {
			labels = append(labels, g.Label+fmt.Sprint(g.Values))
		}
		sort.Strings(labels)
		return strings.Join(labels, "|")
	}

	var wg sync.WaitGroup
	swapped := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				q := qs[(w+i)%len(qs)]
				resp, err := srv.Query(q, 0.1)
				if err != nil {
					t.Error(err)
					return
				}
				got := respFP(resp)
				want := wants[q.String()]
				if got != want.old && got != want.new {
					t.Errorf("query %s: response matches neither system\n got %s\n old %s\n new %s", q, got, want.old, want.new)
					return
				}
				if i == 30 && w == 0 {
					if err := srv.Swap(newSys); err != nil {
						t.Error(err)
						return
					}
					close(swapped)
				}
				// After the swap completes, answers must come from the new
				// system only.
				select {
				case <-swapped:
					if got != want.new {
						// The request may have loaded the old state before the
						// swap finished; only requests started after are
						// guaranteed new. Re-issue to check the guarantee.
						resp2, err := srv.Query(q, 0.1)
						if err != nil {
							t.Error(err)
							return
						}
						if g2 := respFP(resp2); g2 != want.new {
							t.Errorf("query %s: post-swap response from old system\n got %s\n new %s", q, g2, want.new)
							return
						}
					}
				default:
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestLoadGenZipf: the skewed-traffic mode reports the pick-cache hit rate
// repeated templates earn.
func TestLoadGenZipf(t *testing.T) {
	sys, queries := restoredSystem(t, 15)
	srv, err := New(sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := srv.LoadGenZipf(queries[:6], 0.1, 4, 80, 1.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 80 || rep.Failures != 0 {
		t.Fatalf("zipf loadgen report: %+v", rep)
	}
	// 80 requests over ≤6 templates: at most 6 cold picks, everything else
	// must hit the pick cache.
	if rep.PickCacheHits < 80-6 {
		t.Fatalf("zipf traffic earned only %d pick-cache hits of %d requests", rep.PickCacheHits, rep.Requests)
	}
	if rep.PickCacheHitRate < float64(80-6)/80 || rep.PickCacheHitRate > 1 {
		t.Fatalf("hit rate %v inconsistent with %d hits", rep.PickCacheHitRate, rep.PickCacheHits)
	}
	if !strings.Contains(rep.String(), "pick-cache hit rate") {
		t.Fatalf("report string omits the hit rate: %s", rep)
	}
	// Bad exponent is rejected.
	if _, err := srv.LoadGenZipf(queries[:2], 0.1, 1, 4, 1.0, 7); err == nil {
		t.Fatal("want error for zipf exponent <= 1")
	}
}
