package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"ps3/internal/core"
	"ps3/internal/dataset"
	"ps3/internal/query"
	"ps3/internal/table"
)

// restoredSystem trains a small system, snapshots it together with its
// table, and restores both from bytes — the serving deployment shape: the
// server always fronts a snapshot-restored system, never the process that
// trained.
func restoredSystem(t testing.TB, trainN int) (*core.System, []*query.Query) {
	t.Helper()
	ds, err := dataset.Aria(dataset.Config{Rows: 16000, Parts: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.New(ds.Table, core.Options{Workload: ds.Workload, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := query.NewGenerator(ds.Workload, ds.Table, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Train(gen.SampleN(trainN), nil); err != nil {
		t.Fatal(err)
	}

	var tblBuf, snapBuf bytes.Buffer
	if _, err := ds.Table.WriteTo(&tblBuf); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.WriteTo(&snapBuf); err != nil {
		t.Fatal(err)
	}
	tbl, err := table.ReadTable(&tblBuf)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := core.OpenSnapshot(&snapBuf, tbl)
	if err != nil {
		t.Fatal(err)
	}
	return restored, gen.SampleN(12)
}

func TestNewRequiresTrainedSystem(t *testing.T) {
	ds, err := dataset.Aria(dataset.Config{Rows: 2000, Parts: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.New(ds.Table, core.Options{Workload: ds.Workload})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(sys, Config{}); err == nil {
		t.Fatal("want error for untrained system")
	}
}

func TestServeMatchesDirectRun(t *testing.T) {
	sys, queries := restoredSystem(t, 20)
	srv, err := New(sys, Config{DefaultBudget: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		direct, err := sys.Run(q, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := srv.Query(q, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if resp.PartsRead != direct.PartsRead {
			t.Fatalf("query %s: served %d parts, direct %d", q, resp.PartsRead, direct.PartsRead)
		}
		if len(resp.Groups) != len(direct.Values) {
			t.Fatalf("query %s: served %d groups, direct %d", q, len(resp.Groups), len(direct.Values))
		}
		want := make(map[string][]float64, len(direct.Values))
		for g, vals := range direct.Values {
			want[direct.Labels[g]] = vals
		}
		for _, grp := range resp.Groups {
			if !reflect.DeepEqual(want[grp.Label], grp.Values) {
				t.Fatalf("query %s group %q: served %v, direct %v", q, grp.Label, grp.Values, want[grp.Label])
			}
		}
	}
}

func TestServeCacheHitsAndEviction(t *testing.T) {
	sys, queries := restoredSystem(t, 15)
	srv, err := New(sys, Config{CacheSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	q := queries[0]
	if _, err := srv.Query(q, 0.1); err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Query(q, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Fatal("second execution of the same query missed the cache")
	}
	m := srv.Stats()
	if m.CacheHits != 1 || m.CacheMisses != 1 {
		t.Fatalf("cache counters: %d hits / %d misses, want 1/1", m.CacheHits, m.CacheMisses)
	}
	// Fill past capacity; the LRU must stay bounded.
	for _, qq := range queries[1:] {
		if _, err := srv.Query(qq, 0.1); err != nil {
			t.Fatal(err)
		}
	}
	if got := srv.CacheLen(); got > 3 {
		t.Fatalf("cache grew to %d entries, cap is 3", got)
	}
	// SQL text canonicalization: differently-formatted SQL for the same
	// query shares one cache entry.
	srv2, err := New(sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv2.QuerySQL("SELECT COUNT(*) FROM t", 0.1); err != nil {
		t.Fatal(err)
	}
	resp2, err := srv2.QuerySQL("select   count(*)   from t", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !resp2.Cached {
		t.Fatal("canonically equal SQL text missed the cache")
	}
}

func TestServeHTTP(t *testing.T) {
	sys, _ := restoredSystem(t, 15)
	srv, err := New(sys, Config{DefaultBudget: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp, buf.Bytes()
	}

	resp, body := post(`{"sql": "SELECT TenantId, COUNT(*) FROM t GROUP BY TenantId", "budget": 0.2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query returned %d: %s", resp.StatusCode, body)
	}
	var qr Response
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("bad response JSON: %v\n%s", err, body)
	}
	if qr.PartsRead == 0 || len(qr.Groups) == 0 {
		t.Fatalf("empty served answer: %+v", qr)
	}

	if resp, body = post(`{"sql": ""}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing sql returned %d: %s", resp.StatusCode, body)
	}
	if resp, body = post(`{"sql": "SELECT", "budget": 0.1}`); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unparsable sql returned %d: %s", resp.StatusCode, body)
	}
	if resp, body = post(`{"sql": "SELECT COUNT(*) FROM t", "budget": 7}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range budget returned %d: %s", resp.StatusCode, body)
	}
	if resp, body = post(`{bad json`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json returned %d: %s", resp.StatusCode, body)
	}

	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(sresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Requests == 0 {
		t.Fatalf("stats show no requests: %+v", m)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz returned %d", hresp.StatusCode)
	}
}

// TestConcurrentServingMatchesSequentialBaseline is the serving-layer race
// test: N goroutines fan requests over one restored system through both the
// server and System.Run directly, and every concurrent answer must equal
// the sequential baseline computed up front. Run under -race (make race).
func TestConcurrentServingMatchesSequentialBaseline(t *testing.T) {
	sys, queries := restoredSystem(t, 20)
	srv, err := New(sys, Config{MaxInFlight: 4, CacheSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	const budget = 0.15

	// Sequential baseline.
	type baseline struct {
		values map[string][]float64
		parts  int
	}
	want := make([]baseline, len(queries))
	for i, q := range queries {
		res, err := sys.Run(q, budget)
		if err != nil {
			t.Fatal(err)
		}
		vals := make(map[string][]float64, len(res.Values))
		for g, v := range res.Values {
			vals[res.Labels[g]] = v
		}
		want[i] = baseline{values: vals, parts: res.PartsRead}
	}

	const workers = 8
	const rounds = 5
	var wg sync.WaitGroup
	errs := make(chan error, workers*rounds*len(queries))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i, q := range queries {
					// Alternate between the serve path and the direct
					// System.Run path, as the satellite task specifies.
					if (w+r+i)%2 == 0 {
						resp, err := srv.Query(q, budget)
						if err != nil {
							errs <- err
							continue
						}
						if resp.PartsRead != want[i].parts {
							errs <- fmt.Errorf("query %d: served %d parts, baseline %d", i, resp.PartsRead, want[i].parts)
						}
						for _, grp := range resp.Groups {
							if !reflect.DeepEqual(want[i].values[grp.Label], grp.Values) {
								errs <- fmt.Errorf("query %d group %q: served %v, baseline %v",
									i, grp.Label, grp.Values, want[i].values[grp.Label])
							}
						}
					} else {
						res, err := sys.Run(q, budget)
						if err != nil {
							errs <- err
							continue
						}
						if res.PartsRead != want[i].parts {
							errs <- fmt.Errorf("query %d: direct %d parts, baseline %d", i, res.PartsRead, want[i].parts)
						}
						for g, v := range res.Values {
							if !reflect.DeepEqual(want[i].values[res.Labels[g]], v) {
								errs <- fmt.Errorf("query %d group %q: direct %v, baseline %v",
									i, res.Labels[g], v, want[i].values[res.Labels[g]])
							}
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	m := srv.Stats()
	if m.Failures != 0 {
		t.Fatalf("server recorded %d failures", m.Failures)
	}
	if m.InFlight != 0 {
		t.Fatalf("in-flight gauge did not drain: %d", m.InFlight)
	}
}

func TestLoadGen(t *testing.T) {
	sys, queries := restoredSystem(t, 15)
	srv, err := New(sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := srv.LoadGen(queries[:4], 0.1, 4, 40)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 40 || rep.Failures != 0 {
		t.Fatalf("loadgen report: %+v", rep)
	}
	if rep.QPS <= 0 || rep.MaxMs <= 0 {
		t.Fatalf("loadgen produced empty timings: %+v", rep)
	}
	if _, err := srv.LoadGen(nil, 0.1, 2, 10); err == nil {
		t.Fatal("want error with no queries")
	}
}

// BenchmarkServeThroughput measures sustained concurrent serving throughput
// over a restored snapshot (make serve-bench records this).
func BenchmarkServeThroughput(b *testing.B) {
	sys, queries := restoredSystem(b, 15)
	srv, err := New(sys, Config{})
	if err != nil {
		b.Fatal(err)
	}
	// Warm the cache so the steady state is measured.
	for _, q := range queries {
		if _, err := srv.Query(q, 0.1); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := srv.Query(queries[i%len(queries)], 0.1); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
	b.StopTimer()
	m := srv.Stats()
	b.ReportMetric(float64(m.CacheHits)/float64(m.Requests), "cache-hit-ratio")
}
