package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// HTTP transport for the server: a small JSON API suitable for fronting with
// any load balancer.
//
//	POST /query    {"sql": "...", "budget": 0.05}  → Response
//	GET  /stats    → Metrics
//	GET  /healthz  → 200 "ok"

// queryRequest is the POST /query body.
type queryRequest struct {
	SQL    string  `json:"sql"`
	Budget float64 `json:"budget"`
}

// errorResponse is the JSON error body.
type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the HTTP API over the server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	if req.SQL == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing \"sql\" field"})
		return
	}
	if req.Budget < 0 || req.Budget > 1 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "budget must be in (0, 1]"})
		return
	}
	resp, err := s.QuerySQL(req.SQL, req.Budget)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
