package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
)

// HTTP transport for the server: a small JSON API suitable for fronting with
// any load balancer.
//
//	POST /query    {"sql": "...", "budget": 0.05}  → Response
//	POST /append   {"rows": [[cell, ...], ...]}    → appendResponse
//	GET  /stats    → Metrics
//	GET  /healthz  → 200 "ok" (liveness: the process answers)
//	GET  /readyz   → readyResponse (readiness: route traffic here or not)
//
// An append row lists one cell per schema column in schema order: a JSON
// number (or null, decoded as NaN — JSON has no NaN literal) for numeric
// columns, a string for categorical ones. The call returns after the rows
// are durably logged; 409 on a server with no write path.
//
// Failure-mode status codes (see DESIGN.md "Failure model & degraded
// modes"): 503 + Retry-After when shed (queue full), draining, or the
// write path is read-only (poisoned ingest); 504 when the request missed
// its deadline. A response with "degraded": true is a 200 — the answer is
// honest about covering less data, and the client decides.

// queryRequest is the POST /query body.
type queryRequest struct {
	SQL    string  `json:"sql"`
	Budget float64 `json:"budget"`
}

// appendRequest is the POST /append body.
type appendRequest struct {
	Rows [][]any `json:"rows"`
}

// appendResponse acknowledges a durable append.
type appendResponse struct {
	Appended int `json:"appended"`
	// SnapshotVersion is the version serving at acknowledgement time;
	// the appended rows appear in queries no later than the next version.
	SnapshotVersion int64 `json:"snapshot_version"`
}

// errorResponse is the JSON error body.
type errorResponse struct {
	Error string `json:"error"`
}

// readyResponse is the GET /readyz body: whether a load balancer should
// route traffic here, and the degraded-mode flags behind that verdict.
type readyResponse struct {
	Ready    bool `json:"ready"`
	Draining bool `json:"draining,omitempty"`
	// ReadOnly + ReadOnlyReason report a poisoned write path. The server
	// stays ready — queries serve fine — but writers should go elsewhere.
	ReadOnly       bool   `json:"read_only,omitempty"`
	ReadOnlyReason string `json:"read_only_reason,omitempty"`
}

// Handler returns the HTTP API over the server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /append", s.handleAppend)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	return mux
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	resp := readyResponse{Draining: s.Draining()}
	resp.ReadOnly, resp.ReadOnlyReason = s.ReadOnly()
	resp.Ready = !resp.Draining
	status := http.StatusOK
	if !resp.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

// writeQueryError maps a serving error to its transport shape: shed and
// draining answers are 503 with a Retry-After hint (retry is the right
// client move — elsewhere or later), deadline misses are 504, everything
// else is the generic 422.
func writeQueryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrShed) || errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: err.Error()})
	default:
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	if req.SQL == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing \"sql\" field"})
		return
	}
	if req.Budget < 0 || req.Budget > 1 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "budget must be in (0, 1]"})
		return
	}
	resp, err := s.QuerySQLCtx(r.Context(), req.SQL, req.Budget)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	if s.Appender() == nil {
		writeJSON(w, http.StatusConflict, errorResponse{Error: "server is read-only; start with -ingest to accept appends"})
		return
	}
	var req appendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	if len(req.Rows) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing \"rows\" field"})
		return
	}
	schema := s.System().Source.TableSchema()
	num := make([][]float64, len(req.Rows))
	cat := make([][]string, len(req.Rows))
	for i, row := range req.Rows {
		if len(row) != len(schema.Cols) {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("row %d has %d cells, schema has %d columns", i, len(row), len(schema.Cols))})
			return
		}
		nr := make([]float64, len(schema.Cols))
		cr := make([]string, len(schema.Cols))
		for c, col := range schema.Cols {
			cell := row[c]
			if col.IsNumeric() {
				switch v := cell.(type) {
				case float64:
					nr[c] = v
				case nil:
					nr[c] = math.NaN()
				default:
					writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("row %d column %q: want a number or null, got %T", i, col.Name, cell)})
					return
				}
				continue
			}
			v, ok := cell.(string)
			if !ok {
				writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("row %d column %q: want a string, got %T", i, col.Name, cell)})
				return
			}
			cr[c] = v
		}
		num[i] = nr
		cat[i] = cr
	}
	if err := s.Append(num, cat); err != nil {
		if errors.Is(err, ErrReadOnly) {
			// The pipeline is poisoned: this won't clear until an operator
			// intervenes, so hint a long retry.
			w.Header().Set("Retry-After", "30")
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, appendResponse{Appended: len(req.Rows), SnapshotVersion: s.SnapshotVersion()})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
