// Package sketch implements the lightweight, one-pass, mergeable data
// sketches PS3 maintains per partition per column (paper §3.1, Table 1):
//
//   - Measures: min/max and first/second moments, plus the same over
//     log-transformed values for positive columns.
//   - Histogram: equal-depth histograms (10 buckets by default).
//   - AKMV: a K-Minimum-Values distinct-value sketch that also tracks the
//     multiplicity of each retained hash (k=128 by default).
//   - HeavyHitter: lossy counting with 1% support (≤100 tracked items).
//   - ExactDict: exact value→frequency map for low-cardinality string
//     columns, enabling precise equality/IN selectivity.
//
// Every sketch is built incrementally in one pass at ingest time, can be
// merged across partitions, and reports its serialized storage footprint so
// experiments can reproduce the paper's Table 4.
package sketch

import "math"

// Measures tracks min, max, count and the first two moments of a numeric
// column, and optionally the same statistics over log(x) when the column is
// strictly positive (paper Table 2).
type Measures struct {
	Count  int64
	Min    float64
	Max    float64
	Sum    float64
	SumSq  float64
	HasLog bool
	LogMin float64
	LogMax float64
	LogSum float64
	LogSSq float64
}

// NewMeasures returns an empty Measures sketch. If positive is true the
// sketch also maintains log-transformed moments.
func NewMeasures(positive bool) *Measures {
	return &Measures{
		Min: math.Inf(1), Max: math.Inf(-1),
		HasLog: positive,
		LogMin: math.Inf(1), LogMax: math.Inf(-1),
	}
}

// Add observes one value.
func (m *Measures) Add(x float64) {
	m.Count++
	if x < m.Min {
		m.Min = x
	}
	if x > m.Max {
		m.Max = x
	}
	m.Sum += x
	m.SumSq += x * x
	if m.HasLog {
		if x <= 0 {
			// The column claimed positivity but isn't; disable log stats
			// rather than producing -Inf moments.
			m.HasLog = false
			return
		}
		l := math.Log(x)
		if l < m.LogMin {
			m.LogMin = l
		}
		if l > m.LogMax {
			m.LogMax = l
		}
		m.LogSum += l
		m.LogSSq += l * l
	}
}

// Merge folds other into m.
func (m *Measures) Merge(other *Measures) {
	if other.Count == 0 {
		return
	}
	m.Count += other.Count
	if other.Min < m.Min {
		m.Min = other.Min
	}
	if other.Max > m.Max {
		m.Max = other.Max
	}
	m.Sum += other.Sum
	m.SumSq += other.SumSq
	if m.HasLog && other.HasLog {
		if other.LogMin < m.LogMin {
			m.LogMin = other.LogMin
		}
		if other.LogMax > m.LogMax {
			m.LogMax = other.LogMax
		}
		m.LogSum += other.LogSum
		m.LogSSq += other.LogSSq
	} else {
		m.HasLog = false
	}
}

// Mean returns the average value, or 0 for an empty sketch.
func (m *Measures) Mean() float64 {
	if m.Count == 0 {
		return 0
	}
	return m.Sum / float64(m.Count)
}

// MeanSq returns the average of x^2 (the raw second moment x̄² of Table 2).
func (m *Measures) MeanSq() float64 {
	if m.Count == 0 {
		return 0
	}
	return m.SumSq / float64(m.Count)
}

// Std returns the population standard deviation.
func (m *Measures) Std() float64 {
	if m.Count == 0 {
		return 0
	}
	v := m.MeanSq() - m.Mean()*m.Mean()
	if v < 0 {
		v = 0 // guard tiny negative values from float cancellation
	}
	return math.Sqrt(v)
}

// LogMean returns the average of log(x), or 0 when log stats are disabled.
func (m *Measures) LogMean() float64 {
	if !m.HasLog || m.Count == 0 {
		return 0
	}
	return m.LogSum / float64(m.Count)
}

// LogMeanSq returns the average of log(x)^2, or 0 when log stats are
// disabled.
func (m *Measures) LogMeanSq() float64 {
	if !m.HasLog || m.Count == 0 {
		return 0
	}
	return m.LogSSq / float64(m.Count)
}

// SizeBytes returns the serialized footprint: ten float64/int64 words.
func (m *Measures) SizeBytes() int { return 10 * 8 }
