package sketch

// Hash64 is a 64-bit mix hash (splitmix64 finalizer) used to hash categorical
// codes and numeric bit patterns for the AKMV sketch and categorical
// histograms. It is deterministic across runs, which keeps experiments
// reproducible.
func Hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashString hashes a string with FNV-1a then mixes, for use when a value has
// no dictionary code.
func HashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return Hash64(h)
}
