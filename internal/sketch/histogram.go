package sketch

import (
	"math"
	"sort"
)

// DefaultHistogramBuckets matches the paper's default of 10 buckets.
const DefaultHistogramBuckets = 10

// Bucket is one histogram bucket. Lo == Hi denotes a singleton bucket that
// holds exactly the value Lo; otherwise the bucket covers [Lo, Hi] with its
// mass assumed uniform.
type Bucket struct {
	Lo, Hi float64
	Count  int64
}

// Histogram is an equal-depth (equi-height) histogram over a numeric column
// or over string hashes for categorical columns. Values whose frequency
// reaches a full bucket depth get their own singleton bucket, so heavily
// repeated values (zero-inflated columns, defaults) estimate accurately.
//
// The sketch buffers values during construction (partitions are bounded, so
// this stays within the one-pass budget of the ingest path) and seals into
// buckets on Finalize; only the sealed form is stored.
type Histogram struct {
	buckets int
	buf     []float64
	sealed  bool
	Buckets []Bucket
	Total   int64
}

// NewHistogram returns a histogram with the given bucket budget (0 means
// DefaultHistogramBuckets).
func NewHistogram(buckets int) *Histogram {
	if buckets <= 0 {
		buckets = DefaultHistogramBuckets
	}
	return &Histogram{buckets: buckets}
}

// Add observes one value. Must not be called after Finalize.
func (h *Histogram) Add(x float64) {
	h.buf = append(h.buf, x)
}

// Finalize seals the histogram. Calling it again is a no-op.
func (h *Histogram) Finalize() {
	if h.sealed {
		return
	}
	h.sealed = true
	n := len(h.buf)
	h.Total = int64(n)
	if n == 0 {
		h.buf = nil
		return
	}
	sort.Float64s(h.buf)
	depth := n / h.buckets
	if depth < 1 {
		depth = 1
	}
	var cur *Bucket
	i := 0
	for i < n {
		// Measure the run of equal values starting at i.
		j := i
		v := h.buf[i]
		for j < n && h.buf[j] == v {
			j++
		}
		runLen := j - i
		if runLen >= depth {
			// Heavy value: its own singleton bucket.
			h.Buckets = append(h.Buckets, Bucket{Lo: v, Hi: v, Count: int64(runLen)})
			cur = nil
		} else {
			if cur == nil {
				h.Buckets = append(h.Buckets, Bucket{Lo: v, Hi: v})
				cur = &h.Buckets[len(h.Buckets)-1]
			}
			cur.Hi = v
			cur.Count += int64(runLen)
			if cur.Count >= int64(depth) {
				cur = nil // close the bucket at this value
			}
		}
		i = j
	}
	h.buf = nil
}

// EstimateRange estimates the fraction of rows with lo <= x <= hi, assuming
// uniformity within range buckets. Open-ended ranges use ±Inf. The histogram
// must be finalized.
func (h *Histogram) EstimateRange(lo, hi float64) float64 {
	if !h.sealed || h.Total == 0 || len(h.Buckets) == 0 {
		return 0
	}
	if hi < lo {
		return 0
	}
	var rows float64
	for _, b := range h.Buckets {
		if hi < b.Lo {
			// Buckets are sorted ascending and non-overlapping (Finalize), so
			// no later bucket can intersect [lo, hi] either.
			break
		}
		if lo > b.Hi {
			continue
		}
		cnt := float64(b.Count)
		if b.Hi == b.Lo {
			rows += cnt
			continue
		}
		ovLo := math.Max(lo, b.Lo)
		ovHi := math.Min(hi, b.Hi)
		width := b.Hi - b.Lo
		frac := 1.0
		if !math.IsInf(width, 0) && width > 0 {
			frac = (ovHi - ovLo) / width
		}
		if frac < 0 || math.IsNaN(frac) {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		// A non-empty overlapping bucket always contributes at least a
		// trace of mass: the overlap may contain actual rows even when the
		// width ratio underflows, and the filter relies on non-zero
		// estimates for perfect recall.
		contribution := cnt * frac
		if contribution == 0 {
			contribution = math.SmallestNonzeroFloat64
		}
		rows += contribution
	}
	est := rows / float64(h.Total)
	if est > 1 {
		est = 1
	}
	if est == 0 && rows > 0 {
		// Guard denormal underflow: overlapping non-empty buckets must keep
		// the estimate strictly positive for filter recall.
		est = math.SmallestNonzeroFloat64
	}
	return est
}

// EstimateEq estimates the fraction of rows equal to x. Singleton buckets
// answer exactly; range buckets spread their mass across their width. The
// estimate is never zero for a value inside a non-empty bucket (recall
// safety for the selectivity filter).
func (h *Histogram) EstimateEq(x float64) float64 {
	if !h.sealed || h.Total == 0 || len(h.Buckets) == 0 {
		return 0
	}
	for _, b := range h.Buckets {
		if x < b.Lo || x > b.Hi {
			continue
		}
		cnt := float64(b.Count)
		if b.Hi == b.Lo {
			return cnt / float64(h.Total)
		}
		width := b.Hi - b.Lo
		est := cnt / float64(h.Total)
		if !math.IsInf(width, 0) && width > 1 {
			est = cnt / width / float64(h.Total)
		}
		if est <= 0 {
			est = math.SmallestNonzeroFloat64
		}
		if est > cnt/float64(h.Total) {
			est = cnt / float64(h.Total)
		}
		return est
	}
	return 0
}

// Min returns the smallest observed value (0 for empty histograms).
func (h *Histogram) Min() float64 {
	if len(h.Buckets) == 0 {
		return 0
	}
	return h.Buckets[0].Lo
}

// Max returns the largest observed value (0 for empty histograms).
func (h *Histogram) Max() float64 {
	if len(h.Buckets) == 0 {
		return 0
	}
	return h.Buckets[len(h.Buckets)-1].Hi
}

// SizeBytes returns the sealed storage footprint: two bounds and a counter
// per bucket.
func (h *Histogram) SizeBytes() int { return 24 * len(h.Buckets) }
