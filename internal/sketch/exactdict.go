package sketch

import "sort"

// DefaultExactDictCap bounds how many distinct values an ExactDict tracks
// before giving up. The paper stores all distinct values and frequencies
// exactly for string columns with few distinct values (§3.2, "Selectivity
// Estimates"); beyond the cap the sketch marks itself overflowed and
// selectivity estimation falls back to histograms over hashes.
const DefaultExactDictCap = 256

// ExactDict tracks exact frequencies of distinct categorical codes while the
// number of distinct values stays within cap.
type ExactDict struct {
	cap      int
	counts   map[uint32]int64
	rows     int64
	Overflow bool
}

// NewExactDict returns a dictionary sketch with the given capacity (0 means
// DefaultExactDictCap).
func NewExactDict(capacity int) *ExactDict {
	if capacity <= 0 {
		capacity = DefaultExactDictCap
	}
	return &ExactDict{cap: capacity, counts: make(map[uint32]int64)}
}

// Add observes one dictionary code.
func (d *ExactDict) Add(code uint32) {
	d.rows++
	if d.Overflow {
		return
	}
	if _, ok := d.counts[code]; !ok && len(d.counts) >= d.cap {
		d.Overflow = true
		d.counts = nil
		return
	}
	d.counts[code]++
}

// Freq returns the exact fraction of rows holding code, and ok=false when
// the sketch overflowed and cannot answer.
func (d *ExactDict) Freq(code uint32) (float64, bool) {
	if d.Overflow || d.rows == 0 {
		return 0, false
	}
	return float64(d.counts[code]) / float64(d.rows), true
}

// Distinct returns the exact distinct count, and ok=false on overflow.
func (d *ExactDict) Distinct() (int, bool) {
	if d.Overflow {
		return 0, false
	}
	return len(d.counts), true
}

// Rows returns the number of observations.
func (d *ExactDict) Rows() int64 { return d.rows }

// Codes returns the tracked codes in ascending order, or nil on overflow.
// Sorted so that callers folding over the set stay deterministic for free.
func (d *ExactDict) Codes() []uint32 {
	if d.Overflow {
		return nil
	}
	out := make([]uint32, 0, len(d.counts))
	for c := range d.counts { //lint:mapiter-ok keys are sorted immediately below
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SizeBytes returns the storage footprint: 4-byte code + 8-byte count per
// tracked value (0 after overflow).
func (d *ExactDict) SizeBytes() int {
	if d.Overflow {
		return 0
	}
	return 12 * len(d.counts)
}
