package sketch

import "fmt"

// This file provides snapshot/restore support so that finalized sketches
// can be persisted separately from the data partitions — the deployment
// model of the paper (§2.3.1: "the sketches are stored separately from the
// partitions" and consulted at query-optimization time without touching raw
// data). Snapshots are plain exported structs suitable for encoding/gob.

// HistogramSnapshot is the wire form of a finalized Histogram.
type HistogramSnapshot struct {
	Budget  int
	Buckets []Bucket
	Total   int64
}

// Snapshot captures the histogram's state. The histogram must be finalized.
func (h *Histogram) Snapshot() (HistogramSnapshot, error) {
	if !h.sealed {
		return HistogramSnapshot{}, fmt.Errorf("sketch: cannot snapshot an unsealed histogram")
	}
	return HistogramSnapshot{Budget: h.buckets, Buckets: h.Buckets, Total: h.Total}, nil
}

// HistogramFromSnapshot reconstructs a finalized histogram.
func HistogramFromSnapshot(s HistogramSnapshot) *Histogram {
	return &Histogram{buckets: s.Budget, sealed: true, Buckets: s.Buckets, Total: s.Total}
}

// AKMVSnapshot is the wire form of an AKMV sketch.
type AKMVSnapshot struct {
	K       int
	Entries map[uint64]int64
	Rows    int64
}

// Snapshot captures the AKMV state.
func (a *AKMV) Snapshot() AKMVSnapshot {
	entries := make(map[uint64]int64, len(a.entries))
	for k, v := range a.entries { //lint:mapiter-ok map-to-map copy; key set and values are order-free
		entries[k] = v
	}
	return AKMVSnapshot{K: a.K, Entries: entries, Rows: a.rows}
}

// AKMVFromSnapshot reconstructs an AKMV sketch; the cached k-th minimum
// hash is recomputed from the entries.
func AKMVFromSnapshot(s AKMVSnapshot) *AKMV {
	a := &AKMV{K: s.K, entries: make(map[uint64]int64, len(s.Entries)), rows: s.Rows}
	for k, v := range s.Entries { //lint:mapiter-ok map-to-map copy plus order-free max over keys
		a.entries[k] = v
		if k > a.maxHash {
			a.maxHash = k
		}
	}
	return a
}

// HeavyHitterSnapshot is the wire form of a finalized HeavyHitter sketch.
type HeavyHitterSnapshot struct {
	Support float64
	Rows    int64
	Items   []HHItem
}

// Snapshot captures the heavy-hitter state. The sketch must be finalized.
func (hh *HeavyHitter) Snapshot() (HeavyHitterSnapshot, error) {
	if !hh.sealed {
		return HeavyHitterSnapshot{}, fmt.Errorf("sketch: cannot snapshot an unsealed heavy-hitter sketch")
	}
	return HeavyHitterSnapshot{Support: hh.support, Rows: hh.n, Items: hh.items}, nil
}

// HeavyHitterFromSnapshot reconstructs a finalized heavy-hitter sketch.
func HeavyHitterFromSnapshot(s HeavyHitterSnapshot) *HeavyHitter {
	return &HeavyHitter{support: s.Support, n: s.Rows, sealed: true, items: s.Items}
}

// ExactDictSnapshot is the wire form of an ExactDict.
type ExactDictSnapshot struct {
	Cap      int
	Counts   map[uint32]int64
	Rows     int64
	Overflow bool
}

// Snapshot captures the dictionary state.
func (d *ExactDict) Snapshot() ExactDictSnapshot {
	counts := make(map[uint32]int64, len(d.counts))
	for k, v := range d.counts { //lint:mapiter-ok map-to-map copy; key set and values are order-free
		counts[k] = v
	}
	return ExactDictSnapshot{Cap: d.cap, Counts: counts, Rows: d.rows, Overflow: d.Overflow}
}

// ExactDictFromSnapshot reconstructs an ExactDict.
func ExactDictFromSnapshot(s ExactDictSnapshot) *ExactDict {
	d := &ExactDict{cap: s.Cap, counts: make(map[uint32]int64, len(s.Counts)), rows: s.Rows, Overflow: s.Overflow}
	for k, v := range s.Counts { //lint:mapiter-ok map-to-map copy; key set and values are order-free
		d.counts[k] = v
	}
	return d
}
