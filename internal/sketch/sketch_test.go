package sketch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeasuresBasic(t *testing.T) {
	m := NewMeasures(true)
	for _, v := range []float64{1, 2, 3, 4} {
		m.Add(v)
	}
	if m.Count != 4 {
		t.Fatalf("Count = %d, want 4", m.Count)
	}
	if m.Mean() != 2.5 {
		t.Errorf("Mean = %g, want 2.5", m.Mean())
	}
	if m.Min != 1 || m.Max != 4 {
		t.Errorf("Min/Max = %g/%g, want 1/4", m.Min, m.Max)
	}
	if got, want := m.MeanSq(), (1.0+4+9+16)/4; got != want {
		t.Errorf("MeanSq = %g, want %g", got, want)
	}
	wantStd := math.Sqrt(m.MeanSq() - 2.5*2.5)
	if math.Abs(m.Std()-wantStd) > 1e-12 {
		t.Errorf("Std = %g, want %g", m.Std(), wantStd)
	}
	if !m.HasLog {
		t.Fatal("positive column should keep log stats")
	}
	if math.Abs(m.LogMean()-(math.Log(1)+math.Log(2)+math.Log(3)+math.Log(4))/4) > 1e-12 {
		t.Errorf("LogMean wrong: %g", m.LogMean())
	}
}

func TestMeasuresLogDisabledOnNonPositive(t *testing.T) {
	m := NewMeasures(true)
	m.Add(5)
	m.Add(-1)
	if m.HasLog {
		t.Error("observing a non-positive value must disable log stats")
	}
	if m.LogMean() != 0 {
		t.Error("LogMean must be 0 when log stats are disabled")
	}
}

func TestMeasuresEmpty(t *testing.T) {
	m := NewMeasures(false)
	if m.Mean() != 0 || m.Std() != 0 || m.MeanSq() != 0 {
		t.Error("empty measures must report zeros")
	}
}

func TestMeasuresMerge(t *testing.T) {
	a, b, all := NewMeasures(true), NewMeasures(true), NewMeasures(true)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		v := rng.Float64()*50 + 1
		all.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(b)
	if a.Count != all.Count {
		t.Fatalf("merged count %d, want %d", a.Count, all.Count)
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 || math.Abs(a.Std()-all.Std()) > 1e-9 {
		t.Error("merged moments differ from bulk")
	}
	if a.Min != all.Min || a.Max != all.Max || a.LogMax != all.LogMax {
		t.Error("merged extrema differ from bulk")
	}
}

// Property: Measures.Add order never matters and Std is non-negative.
func TestMeasuresProperty(t *testing.T) {
	f := func(vals []float64) bool {
		m := NewMeasures(false)
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				return true // skip pathological inputs
			}
			m.Add(v)
		}
		return m.Std() >= 0 && m.Count == int64(len(vals))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramEqualDepth(t *testing.T) {
	h := NewHistogram(10)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i))
	}
	h.Finalize()
	if len(h.Buckets) == 0 || len(h.Buckets) > 21 {
		t.Fatalf("bad histogram shape: %d buckets", len(h.Buckets))
	}
	for i, b := range h.Buckets {
		if b.Count < 50 || b.Count > 200 {
			t.Errorf("bucket %d count %d: equal-depth buckets on uniform data should be ~100", i, b.Count)
		}
	}
	if got := h.EstimateRange(0, 999); math.Abs(got-1) > 1e-9 {
		t.Errorf("full range estimate = %g, want 1", got)
	}
	if got := h.EstimateRange(0, 499); math.Abs(got-0.5) > 0.05 {
		t.Errorf("half range estimate = %g, want ~0.5", got)
	}
	if got := h.EstimateRange(2000, 3000); got != 0 {
		t.Errorf("out-of-range estimate = %g, want 0", got)
	}
	if got := h.EstimateRange(5, 3); got != 0 {
		t.Errorf("inverted range estimate = %g, want 0", got)
	}
}

func TestHistogramSkewedData(t *testing.T) {
	h := NewHistogram(10)
	// 90% of mass at 0, the rest spread out.
	for i := 0; i < 900; i++ {
		h.Add(0)
	}
	for i := 0; i < 100; i++ {
		h.Add(float64(i + 1))
	}
	h.Finalize()
	if got := h.EstimateEq(0); got < 0.5 {
		t.Errorf("EstimateEq(0) = %g on 90%%-zero data, want >= 0.5", got)
	}
	if got := h.EstimateRange(1, 100); got < 0.05 || got > 0.2 {
		t.Errorf("tail range estimate = %g, want ~0.1", got)
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram(10)
	for i := 0; i < 50; i++ {
		h.Add(42)
	}
	h.Finalize()
	if got := h.EstimateEq(42); math.Abs(got-1) > 1e-9 {
		t.Errorf("EstimateEq(42) = %g, want 1", got)
	}
	if got := h.EstimateEq(41); got != 0 {
		t.Errorf("EstimateEq(41) = %g, want 0", got)
	}
	if h.Min() != 42 || h.Max() != 42 {
		t.Errorf("Min/Max = %g/%g, want 42/42", h.Min(), h.Max())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(10)
	h.Finalize()
	if got := h.EstimateRange(math.Inf(-1), math.Inf(1)); got != 0 {
		t.Errorf("empty histogram estimate = %g, want 0", got)
	}
}

// Property: selectivity estimates are always within [0,1] and a value
// present in the data always has a non-zero equality estimate (the
// perfect-recall requirement of the selectivity filter).
func TestHistogramRecallProperty(t *testing.T) {
	f := func(raw []float64, probe uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, 0, len(raw))
		h := NewHistogram(10)
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			vals = append(vals, v)
			h.Add(v)
		}
		if len(vals) == 0 {
			return true
		}
		h.Finalize()
		target := vals[int(probe)%len(vals)]
		eq := h.EstimateEq(target)
		if eq <= 0 || eq > 1 {
			return false
		}
		r := h.EstimateRange(target, math.Inf(1))
		return r > 0 && r <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAKMVExactBelowK(t *testing.T) {
	a := NewAKMV(128)
	for i := 0; i < 50; i++ {
		a.Add(Hash64(uint64(i % 10)))
	}
	if got := a.DistinctEstimate(); got != 10 {
		t.Errorf("DistinctEstimate = %g, want exactly 10 (below k)", got)
	}
	avg, maxF, minF, sum := a.FreqStats()
	if avg != 5 || maxF != 5 || minF != 5 || sum != 50 {
		t.Errorf("FreqStats = %g/%g/%g/%g, want 5/5/5/50", avg, maxF, minF, sum)
	}
}

func TestAKMVEstimateAboveK(t *testing.T) {
	a := NewAKMV(128)
	const distinct = 10000
	for i := 0; i < distinct; i++ {
		a.Add(Hash64(uint64(i)))
	}
	got := a.DistinctEstimate()
	if got < distinct*0.7 || got > distinct*1.3 {
		t.Errorf("DistinctEstimate = %g, want within 30%% of %d", got, distinct)
	}
	if a.Retained() != 128 {
		t.Errorf("Retained = %d, want 128", a.Retained())
	}
}

func TestAKMVMerge(t *testing.T) {
	a, b := NewAKMV(64), NewAKMV(64)
	for i := 0; i < 2000; i++ {
		a.Add(Hash64(uint64(i)))
	}
	for i := 1000; i < 3000; i++ {
		b.Add(Hash64(uint64(i)))
	}
	a.Merge(b)
	if a.Retained() > 64 {
		t.Fatalf("merge kept %d hashes, cap is 64", a.Retained())
	}
	if a.Rows() != 4000 {
		t.Fatalf("merged rows = %d, want 4000", a.Rows())
	}
	got := a.DistinctEstimate()
	if got < 3000*0.6 || got > 3000*1.4 {
		t.Errorf("merged estimate = %g, want within 40%% of 3000", got)
	}
}

// Property: AKMV distinct estimate is exact when distinct count <= k.
func TestAKMVPropertyExactSmall(t *testing.T) {
	f := func(vals []uint16) bool {
		a := NewAKMV(0) // default k=128
		distinct := map[uint16]bool{}
		for _, v := range vals {
			v = v % 100 // at most 100 distinct < k
			distinct[v] = true
			a.Add(Hash64(uint64(v)))
		}
		return a.DistinctEstimate() == float64(len(distinct))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHeavyHitterFindsFrequentItems(t *testing.T) {
	hh := NewHeavyHitter(0.01)
	// Item 1: 30%, item 2: 10%, 6000 unique fillers.
	for i := 0; i < 10000; i++ {
		switch {
		case i%10 < 3:
			hh.Add(1)
		case i%10 == 3:
			hh.Add(2)
		default:
			hh.Add(uint64(1000 + i))
		}
	}
	hh.Finalize()
	if !hh.Contains(1) || !hh.Contains(2) {
		t.Fatalf("heavy hitters 1,2 not found; items=%v", hh.Items())
	}
	items := hh.Items()
	if items[0].ID != 1 {
		t.Errorf("top item = %d, want 1", items[0].ID)
	}
	if math.Abs(items[0].Freq-0.3) > 0.02 {
		t.Errorf("item 1 freq = %g, want ~0.3", items[0].Freq)
	}
	num, avgF, maxF := hh.Stats()
	if num != len(items) || maxF < avgF {
		t.Errorf("Stats inconsistent: num=%d avg=%g max=%g", num, avgF, maxF)
	}
}

func TestHeavyHitterBounded(t *testing.T) {
	hh := NewHeavyHitter(0.01)
	for i := 0; i < 100000; i++ {
		hh.Add(uint64(i)) // all unique: no heavy hitters
	}
	hh.Finalize()
	if n := len(hh.Items()); n != 0 {
		t.Errorf("all-unique stream produced %d heavy hitters", n)
	}
}

// Property (lossy counting guarantee): every item with true frequency
// >= support is reported.
func TestHeavyHitterRecallProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		hh := NewHeavyHitter(0.05)
		counts := map[uint64]int{}
		const n = 5000
		for i := 0; i < n; i++ {
			var id uint64
			if rng.Float64() < 0.5 {
				id = uint64(rng.Intn(5)) // frequent candidates
			} else {
				id = uint64(100 + rng.Intn(2000))
			}
			counts[id]++
			hh.Add(id)
		}
		hh.Finalize()
		for id, c := range counts {
			if float64(c) >= 0.05*n && !hh.Contains(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestExactDictExact(t *testing.T) {
	d := NewExactDict(10)
	for i := 0; i < 100; i++ {
		d.Add(uint32(i % 4))
	}
	f, ok := d.Freq(0)
	if !ok || f != 0.25 {
		t.Errorf("Freq(0) = %g/%v, want 0.25/true", f, ok)
	}
	n, ok := d.Distinct()
	if !ok || n != 4 {
		t.Errorf("Distinct = %d/%v, want 4/true", n, ok)
	}
	if got := len(d.Codes()); got != 4 {
		t.Errorf("Codes len = %d, want 4", got)
	}
}

func TestExactDictOverflow(t *testing.T) {
	d := NewExactDict(5)
	for i := 0; i < 100; i++ {
		d.Add(uint32(i))
	}
	if !d.Overflow {
		t.Fatal("dict should overflow past its capacity")
	}
	if _, ok := d.Freq(1); ok {
		t.Error("overflowed dict must not answer Freq")
	}
	if d.SizeBytes() != 0 {
		t.Error("overflowed dict should report zero storage")
	}
	if d.Rows() != 100 {
		t.Errorf("Rows = %d, want 100 (still counted after overflow)", d.Rows())
	}
}

func TestHashDeterminism(t *testing.T) {
	if Hash64(12345) != Hash64(12345) {
		t.Error("Hash64 must be deterministic")
	}
	if Hash64(1) == Hash64(2) {
		t.Error("Hash64(1) == Hash64(2): suspicious collision")
	}
	if HashString("abc") != HashString("abc") {
		t.Error("HashString must be deterministic")
	}
	if HashString("abc") == HashString("abd") {
		t.Error("HashString collision on near strings")
	}
}

func TestSizeBytesReported(t *testing.T) {
	m := NewMeasures(true)
	m.Add(1)
	if m.SizeBytes() != 80 {
		t.Errorf("Measures.SizeBytes = %d, want 80", m.SizeBytes())
	}
	h := NewHistogram(10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	h.Finalize()
	if h.SizeBytes() <= 0 {
		t.Error("Histogram.SizeBytes must be positive after finalize")
	}
	a := NewAKMV(16)
	a.Add(1)
	if a.SizeBytes() != 16 {
		t.Errorf("AKMV.SizeBytes = %d, want 16 for one entry", a.SizeBytes())
	}
}
