package sketch

import "sort"

// DefaultHHSupport matches the paper's default: track items appearing in at
// least 1% of rows, so at most 100 dictionary entries.
const DefaultHHSupport = 0.01

// HeavyHitter finds frequent items with the lossy counting algorithm (Manku
// & Motwani, VLDB'02). Items are identified by their dictionary code (or any
// stable uint64 id). After Finalize, Items returns every value whose true
// frequency is at least support*N, possibly with a few false positives whose
// frequency is at least (support-ε)*N with ε = support/10.
type HeavyHitter struct {
	support float64
	// lossy counting state
	width   int64 // bucket width ceil(1/ε)
	n       int64 // items seen
	current int64 // current bucket id
	counts  map[uint64]*lcEntry
	sealed  bool
	items   []HHItem
}

type lcEntry struct {
	count int64
	delta int64
}

// HHItem is one heavy hitter: its id and observed frequency (count / N).
type HHItem struct {
	ID    uint64
	Count int64
	Freq  float64
}

// NewHeavyHitter returns a sketch tracking items with frequency >= support
// (0 means DefaultHHSupport).
func NewHeavyHitter(support float64) *HeavyHitter {
	if support <= 0 {
		support = DefaultHHSupport
	}
	eps := support / 10
	w := int64(1/eps) + 1
	return &HeavyHitter{
		support: support,
		width:   w,
		counts:  make(map[uint64]*lcEntry),
	}
}

// Add observes one item.
func (hh *HeavyHitter) Add(id uint64) {
	hh.n++
	if e, ok := hh.counts[id]; ok {
		e.count++
	} else {
		hh.counts[id] = &lcEntry{count: 1, delta: hh.current}
	}
	if hh.n%hh.width == 0 {
		hh.current++
		//lint:mapiter-ok each key is kept or evicted on its own count alone, independent of visit order
		for k, e := range hh.counts {
			if e.count+e.delta <= hh.current {
				delete(hh.counts, k)
			}
		}
	}
}

// Finalize prunes to items meeting the support threshold and caches the
// result sorted by descending count.
func (hh *HeavyHitter) Finalize() {
	if hh.sealed {
		return
	}
	hh.sealed = true
	if hh.n == 0 {
		return
	}
	thresh := int64(hh.support * float64(hh.n))
	//lint:mapiter-ok survivors are fully sorted by (count, id) immediately below
	for id, e := range hh.counts {
		if e.count >= thresh && e.count > 0 {
			hh.items = append(hh.items, HHItem{
				ID:    id,
				Count: e.count,
				Freq:  float64(e.count) / float64(hh.n),
			})
		}
	}
	sort.Slice(hh.items, func(i, j int) bool {
		if hh.items[i].Count != hh.items[j].Count {
			return hh.items[i].Count > hh.items[j].Count
		}
		return hh.items[i].ID < hh.items[j].ID
	})
	hh.counts = nil
}

// Items returns the heavy hitters (descending frequency). Finalize first.
func (hh *HeavyHitter) Items() []HHItem { return hh.items }

// Contains reports whether id is among the finalized heavy hitters.
func (hh *HeavyHitter) Contains(id uint64) bool {
	for _, it := range hh.items {
		if it.ID == id {
			return true
		}
	}
	return false
}

// Rows returns the number of observations.
func (hh *HeavyHitter) Rows() int64 { return hh.n }

// Stats returns the count of heavy hitters and the average and max frequency
// among them (Table 2's "# hh, avg/max freq of hh").
func (hh *HeavyHitter) Stats() (num int, avgFreq, maxFreq float64) {
	num = len(hh.items)
	if num == 0 {
		return 0, 0, 0
	}
	var sum float64
	for _, it := range hh.items {
		sum += it.Freq
		if it.Freq > maxFreq {
			maxFreq = it.Freq
		}
	}
	return num, sum / float64(num), maxFreq
}

// SizeBytes returns the sealed storage footprint: id + count per item.
func (hh *HeavyHitter) SizeBytes() int { return 16 * len(hh.items) }
