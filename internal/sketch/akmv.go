package sketch

import (
	"math"
	"sort"
)

// DefaultAKMVK matches the paper's default of k = 128 minimum hashed values.
const DefaultAKMVK = 128

// AKMV is an Augmented K-Minimum-Values sketch (Beyer et al., SIGMOD'07): it
// retains the k smallest 64-bit hashes of the values observed, each with the
// number of times that hash appeared. From the retained set it estimates the
// number of distinct values in the column, and the frequency statistics of
// distinct values (avg / max / min / sum of the multiplicities) used as
// features in Table 2.
type AKMV struct {
	K int
	// entries maps hash -> multiplicity for retained hashes.
	entries map[uint64]int64
	// maxHash caches the current k-th smallest (i.e. largest retained) hash.
	maxHash uint64
	rows    int64
}

// NewAKMV returns an empty sketch with budget k (0 means DefaultAKMVK).
func NewAKMV(k int) *AKMV {
	if k <= 0 {
		k = DefaultAKMVK
	}
	return &AKMV{K: k, entries: make(map[uint64]int64, k)}
}

// Add observes one pre-hashed value.
func (a *AKMV) Add(h uint64) {
	a.rows++
	if c, ok := a.entries[h]; ok {
		a.entries[h] = c + 1
		return
	}
	if len(a.entries) < a.K {
		a.entries[h] = 1
		if h > a.maxHash {
			a.maxHash = h
		}
		return
	}
	if h >= a.maxHash {
		return
	}
	// Evict current max, insert h.
	delete(a.entries, a.maxHash)
	a.entries[h] = 1
	a.maxHash = 0
	for e := range a.entries { //lint:mapiter-ok max over the key set is order-free
		if e > a.maxHash {
			a.maxHash = e
		}
	}
}

// Merge folds other into a, keeping the k smallest hashes of the union and
// summing multiplicities of shared hashes.
func (a *AKMV) Merge(other *AKMV) {
	a.rows += other.rows
	for h, c := range other.entries { //lint:mapiter-ok independent integer adds into disjoint keys, order-free
		a.entries[h] += c
	}
	if len(a.entries) > a.K {
		hashes := make([]uint64, 0, len(a.entries))
		for h := range a.entries {
			hashes = append(hashes, h)
		}
		sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })
		for _, h := range hashes[a.K:] {
			delete(a.entries, h)
		}
	}
	a.maxHash = 0
	for h := range a.entries { //lint:mapiter-ok max over the key set is order-free
		if h > a.maxHash {
			a.maxHash = h
		}
	}
}

// Retained returns the number of hashes currently stored (≤ k).
func (a *AKMV) Retained() int { return len(a.entries) }

// Rows returns the number of values observed.
func (a *AKMV) Rows() int64 { return a.rows }

// DistinctEstimate returns the estimated number of distinct values. When
// fewer than k hashes are retained the count is exact; otherwise the standard
// KMV estimator (k-1)/U_(k) normalized to the hash range is used.
func (a *AKMV) DistinctEstimate() float64 {
	n := len(a.entries)
	if n == 0 {
		return 0
	}
	if n < a.K {
		return float64(n)
	}
	u := float64(a.maxHash) / float64(math.MaxUint64)
	if u <= 0 {
		return float64(n)
	}
	return float64(a.K-1) / u
}

// FreqStats returns the average, max, min and sum of the multiplicities of
// the retained distinct values. These approximate the per-distinct-value
// frequency statistics of the whole partition (the retained hashes are a
// uniform sample of distinct values).
func (a *AKMV) FreqStats() (avg, maxF, minF, sum float64) {
	if len(a.entries) == 0 {
		return 0, 0, 0, 0
	}
	minF = math.Inf(1)
	//lint:mapiter-ok min/max are order-free and the sum adds integer-valued float64s below 2^53, which is exact in any order
	for _, c := range a.entries {
		f := float64(c)
		sum += f
		if f > maxF {
			maxF = f
		}
		if f < minF {
			minF = f
		}
	}
	avg = sum / float64(len(a.entries))
	// Scale the sum from the retained sample of distinct values up to the
	// estimated total number of distinct values.
	if d := a.DistinctEstimate(); d > float64(len(a.entries)) {
		sum *= d / float64(len(a.entries))
	}
	return avg, maxF, minF, sum
}

// SizeBytes returns the storage footprint: 8-byte hash + 8-byte count per
// retained entry. This is why AKMV dominates Table 4's per-partition budget.
func (a *AKMV) SizeBytes() int { return 16 * len(a.entries) }
