package sketch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHistogramSnapshotRequiresFinalize(t *testing.T) {
	h := NewHistogram(8)
	h.Add(1)
	if _, err := h.Snapshot(); err == nil {
		t.Fatal("want error snapshotting unsealed histogram")
	}
}

func TestHistogramSnapshotRoundTrip(t *testing.T) {
	h := NewHistogram(8)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		h.Add(rng.NormFloat64() * 10)
	}
	h.Finalize()
	snap, err := h.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	back := HistogramFromSnapshot(snap)
	for _, probe := range []struct{ lo, hi float64 }{{-5, 5}, {0, 100}, {-100, -20}} {
		if a, b := h.EstimateRange(probe.lo, probe.hi), back.EstimateRange(probe.lo, probe.hi); a != b {
			t.Fatalf("EstimateRange(%v,%v) differs: %v vs %v", probe.lo, probe.hi, a, b)
		}
	}
	if h.Min() != back.Min() || h.Max() != back.Max() {
		t.Fatal("min/max differ after round trip")
	}
	if h.SizeBytes() != back.SizeBytes() {
		t.Fatal("size accounting differs after round trip")
	}
}

func TestAKMVSnapshotRoundTrip(t *testing.T) {
	a := NewAKMV(32)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		a.Add(Hash64(uint64(rng.Intn(300))))
	}
	back := AKMVFromSnapshot(a.Snapshot())
	if a.DistinctEstimate() != back.DistinctEstimate() {
		t.Fatalf("distinct estimate differs: %v vs %v", a.DistinctEstimate(), back.DistinctEstimate())
	}
	av1, mx1, mn1, s1 := a.FreqStats()
	av2, mx2, mn2, s2 := back.FreqStats()
	if av1 != av2 || mx1 != mx2 || mn1 != mn2 || s1 != s2 {
		t.Fatal("freq stats differ after round trip")
	}
	if a.Rows() != back.Rows() || a.Retained() != back.Retained() {
		t.Fatal("rows/retained differ after round trip")
	}
	// The restored sketch must keep absorbing values consistently: adding
	// the same stream to both keeps them identical.
	for i := 0; i < 500; i++ {
		h := Hash64(uint64(rng.Intn(300) + 1000))
		a.Add(h)
		back.Add(h)
	}
	if a.DistinctEstimate() != back.DistinctEstimate() {
		t.Fatal("restored AKMV diverged on further adds (maxHash not rebuilt?)")
	}
}

func TestHeavyHitterSnapshotRoundTrip(t *testing.T) {
	hh := NewHeavyHitter(0.05)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		// Two dominant items + noise.
		switch {
		case rng.Float64() < 0.4:
			hh.Add(1)
		case rng.Float64() < 0.4:
			hh.Add(2)
		default:
			hh.Add(uint64(rng.Intn(10000) + 10))
		}
	}
	hh.Finalize()
	snap, err := hh.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	back := HeavyHitterFromSnapshot(snap)
	if len(hh.Items()) != len(back.Items()) {
		t.Fatalf("item counts differ: %d vs %d", len(hh.Items()), len(back.Items()))
	}
	if !back.Contains(1) || !back.Contains(2) {
		t.Fatal("restored sketch lost the dominant items")
	}
	n1, a1, m1 := hh.Stats()
	n2, a2, m2 := back.Stats()
	if n1 != n2 || a1 != a2 || m1 != m2 {
		t.Fatal("stats differ after round trip")
	}
}

func TestHeavyHitterSnapshotRequiresFinalize(t *testing.T) {
	hh := NewHeavyHitter(0.01)
	hh.Add(1)
	if _, err := hh.Snapshot(); err == nil {
		t.Fatal("want error snapshotting unsealed sketch")
	}
}

func TestExactDictSnapshotRoundTrip(t *testing.T) {
	d := NewExactDict(100)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		d.Add(uint32(rng.Intn(30)))
	}
	back := ExactDictFromSnapshot(d.Snapshot())
	if d.Rows() != back.Rows() {
		t.Fatal("rows differ")
	}
	do, okO := d.Distinct()
	db, okB := back.Distinct()
	if do != db || okO != okB {
		t.Fatal("distinct differs")
	}
	for c := uint32(0); c < 30; c++ {
		fo, oko := d.Freq(c)
		fb, okb := back.Freq(c)
		if fo != fb || oko != okb {
			t.Fatalf("freq(%d) differs: %v/%v vs %v/%v", c, fo, oko, fb, okb)
		}
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	// Mutating the original after Snapshot must not affect the snapshot.
	a := NewAKMV(16)
	for i := 0; i < 100; i++ {
		a.Add(Hash64(uint64(i)))
	}
	snap := a.Snapshot()
	before := AKMVFromSnapshot(snap).DistinctEstimate()
	for i := 100; i < 5000; i++ {
		a.Add(Hash64(uint64(i)))
	}
	if after := AKMVFromSnapshot(snap).DistinctEstimate(); after != before {
		t.Fatalf("snapshot mutated by later adds: %v vs %v", before, after)
	}
}

func TestAKMVSnapshotProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(kRaw%64) + 1
		a := NewAKMV(k)
		n := int(nRaw) + 1
		for i := 0; i < n; i++ {
			a.Add(Hash64(uint64(rng.Intn(50))))
		}
		back := AKMVFromSnapshot(a.Snapshot())
		return a.DistinctEstimate() == back.DistinctEstimate() &&
			a.Rows() == back.Rows() && a.SizeBytes() == back.SizeBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
