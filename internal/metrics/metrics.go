// Package metrics implements the error metrics of paper §5.1.4: missed
// groups, average relative error, and absolute error over true, plus the
// area-under-error-curve summary used by the clustering comparisons
// (Table 6/7).
package metrics

import (
	"math"
	"sort"
)

// Errors summarizes the quality of an approximate answer against the truth.
type Errors struct {
	// MissedGroups is the fraction of true groups absent from the estimate.
	MissedGroups float64
	// AvgRelErr averages |est-true|/|true| across every aggregate of every
	// true group; aggregates of missed groups count as error 1.
	AvgRelErr float64
	// AbsOverTrue averages, per aggregate, mean|est-true| across groups
	// divided by mean|true| across groups, then averages over aggregates.
	AbsOverTrue float64
}

// Compare scores an estimated answer against the true answer. Both maps are
// group-key → aggregate values of equal dimension. Extra groups in the
// estimate (possible only with buggy selection, since estimates are built
// from real partitions) are ignored, matching the paper's metrics which are
// defined over true groups.
func Compare(truth, est map[string][]float64) Errors {
	var e Errors
	if len(truth) == 0 {
		return e
	}
	d := 0
	//lint:mapiter-ok reads the aggregate dimension off one arbitrary entry; every value slice has the same length
	for _, v := range truth {
		d = len(v)
		break
	}
	missed := 0
	var relSum float64
	relCnt := 0
	absErr := make([]float64, d)
	absTrue := make([]float64, d)
	// Fold groups in sorted key order: the sums are float accumulations, so
	// iterating the map directly would leave low-order bits dependent on map
	// iteration order — enough to flip near-tie comparisons downstream (e.g.
	// greedy feature selection) and break run-to-run determinism.
	keys := make([]string, 0, len(truth))
	for g := range truth {
		keys = append(keys, g)
	}
	sort.Strings(keys)
	for _, g := range keys {
		tv := truth[g]
		ev, ok := est[g]
		if !ok {
			missed++
		}
		for j := 0; j < d; j++ {
			tj := tv[j]
			var ej float64
			if ok {
				ej = ev[j]
			}
			// Relative error; missed groups count as 1 per the paper.
			switch {
			case !ok:
				relSum++
			case tj == 0:
				if ej != 0 {
					relSum++
				}
			default:
				r := math.Abs(ej-tj) / math.Abs(tj)
				if r > 1 {
					r = 1
				}
				relSum += r
			}
			relCnt++
			absErr[j] += math.Abs(ej - tj)
			absTrue[j] += math.Abs(tj)
		}
	}
	e.MissedGroups = float64(missed) / float64(len(truth))
	if relCnt > 0 {
		e.AvgRelErr = relSum / float64(relCnt)
	}
	var aotSum float64
	aotCnt := 0
	for j := 0; j < d; j++ {
		if absTrue[j] > 0 {
			aotSum += absErr[j] / absTrue[j]
			aotCnt++
		}
	}
	if aotCnt > 0 {
		e.AbsOverTrue = aotSum / float64(aotCnt)
	}
	return e
}

// Mean averages a slice of Errors component-wise.
func Mean(errs []Errors) Errors {
	var m Errors
	if len(errs) == 0 {
		return m
	}
	for _, e := range errs {
		m.MissedGroups += e.MissedGroups
		m.AvgRelErr += e.AvgRelErr
		m.AbsOverTrue += e.AbsOverTrue
	}
	n := float64(len(errs))
	m.MissedGroups /= n
	m.AvgRelErr /= n
	m.AbsOverTrue /= n
	return m
}

// AUC computes the area under an error curve sampled at the given fractional
// budgets (trapezoid rule). Budgets must be ascending in [0,1]; the result
// is scaled by 100 to match the paper's Table 6 magnitudes.
func AUC(budgets, errs []float64) float64 {
	if len(budgets) != len(errs) || len(budgets) < 2 {
		return 0
	}
	var area float64
	for i := 1; i < len(budgets); i++ {
		w := budgets[i] - budgets[i-1]
		area += w * (errs[i] + errs[i-1]) / 2
	}
	return area * 100
}
