package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCompareExactEstimateIsZeroError(t *testing.T) {
	truth := map[string][]float64{
		"a": {10, 20},
		"b": {-5, 0},
	}
	e := Compare(truth, truth)
	if e.MissedGroups != 0 || e.AvgRelErr != 0 || e.AbsOverTrue != 0 {
		t.Fatalf("exact estimate scored %+v, want zeros", e)
	}
}

func TestCompareEmptyTruth(t *testing.T) {
	e := Compare(nil, map[string][]float64{"x": {1}})
	if e != (Errors{}) {
		t.Fatalf("empty truth scored %+v, want zero value", e)
	}
}

func TestCompareMissedGroupCountsAsOne(t *testing.T) {
	truth := map[string][]float64{
		"a": {10},
		"b": {20},
	}
	est := map[string][]float64{"a": {10}}
	e := Compare(truth, est)
	if e.MissedGroups != 0.5 {
		t.Fatalf("MissedGroups = %v, want 0.5", e.MissedGroups)
	}
	// One aggregate exact (0), one missed (1) → average 0.5.
	if e.AvgRelErr != 0.5 {
		t.Fatalf("AvgRelErr = %v, want 0.5", e.AvgRelErr)
	}
}

func TestCompareRelativeErrorCappedAtOne(t *testing.T) {
	truth := map[string][]float64{"a": {1}}
	est := map[string][]float64{"a": {1000}}
	e := Compare(truth, est)
	if e.AvgRelErr != 1 {
		t.Fatalf("AvgRelErr = %v, want capped at 1", e.AvgRelErr)
	}
}

func TestCompareZeroTruthValue(t *testing.T) {
	truth := map[string][]float64{"a": {0}}
	// Exact zero estimate → no relative error charged.
	if e := Compare(truth, map[string][]float64{"a": {0}}); e.AvgRelErr != 0 {
		t.Fatalf("zero-true exact estimate AvgRelErr = %v, want 0", e.AvgRelErr)
	}
	// Nonzero estimate of a zero true value → full error.
	if e := Compare(truth, map[string][]float64{"a": {3}}); e.AvgRelErr != 1 {
		t.Fatalf("zero-true wrong estimate AvgRelErr = %v, want 1", e.AvgRelErr)
	}
}

func TestCompareAbsOverTrue(t *testing.T) {
	// One aggregate: |5-10| + |15-20| = 10 abs error, true mass 30.
	truth := map[string][]float64{"a": {10}, "b": {20}}
	est := map[string][]float64{"a": {5}, "b": {15}}
	e := Compare(truth, est)
	want := 10.0 / 30.0
	if math.Abs(e.AbsOverTrue-want) > 1e-12 {
		t.Fatalf("AbsOverTrue = %v, want %v", e.AbsOverTrue, want)
	}
}

func TestCompareAbsOverTruePerAggregateThenAveraged(t *testing.T) {
	// Aggregate 0 exact, aggregate 1 off by 100% → average 0.5.
	truth := map[string][]float64{"a": {10, 1}}
	est := map[string][]float64{"a": {10, 2}}
	e := Compare(truth, est)
	if math.Abs(e.AbsOverTrue-0.5) > 1e-12 {
		t.Fatalf("AbsOverTrue = %v, want 0.5", e.AbsOverTrue)
	}
}

func TestCompareIgnoresExtraEstimateGroups(t *testing.T) {
	truth := map[string][]float64{"a": {1}}
	est := map[string][]float64{"a": {1}, "ghost": {999}}
	e := Compare(truth, est)
	if e.MissedGroups != 0 || e.AvgRelErr != 0 {
		t.Fatalf("extra estimate group affected errors: %+v", e)
	}
}

func TestCompareOverestimateAndUnderestimateSymmetric(t *testing.T) {
	truth := map[string][]float64{"a": {10}}
	over := Compare(truth, map[string][]float64{"a": {12}})
	under := Compare(truth, map[string][]float64{"a": {8}})
	if over.AvgRelErr != under.AvgRelErr {
		t.Fatalf("asymmetric relative error: over %v vs under %v", over.AvgRelErr, under.AvgRelErr)
	}
}

func TestMean(t *testing.T) {
	errs := []Errors{
		{MissedGroups: 0.2, AvgRelErr: 0.4, AbsOverTrue: 0.6},
		{MissedGroups: 0.4, AvgRelErr: 0.8, AbsOverTrue: 1.0},
	}
	m := Mean(errs)
	if math.Abs(m.MissedGroups-0.3) > 1e-12 ||
		math.Abs(m.AvgRelErr-0.6) > 1e-12 ||
		math.Abs(m.AbsOverTrue-0.8) > 1e-12 {
		t.Fatalf("Mean = %+v", m)
	}
}

func TestMeanEmpty(t *testing.T) {
	if m := Mean(nil); m != (Errors{}) {
		t.Fatalf("Mean(nil) = %+v, want zero value", m)
	}
}

func TestAUCTrapezoid(t *testing.T) {
	budgets := []float64{0, 0.5, 1}
	errs := []float64{1, 0.5, 0}
	// Trapezoid: 0.5*(1+0.5)/2 + 0.5*(0.5+0)/2 = 0.375+0.125 = 0.5, ×100.
	if got := AUC(budgets, errs); math.Abs(got-50) > 1e-12 {
		t.Fatalf("AUC = %v, want 50", got)
	}
}

func TestAUCDegenerateInputs(t *testing.T) {
	if got := AUC([]float64{0.5}, []float64{1}); got != 0 {
		t.Fatalf("single-point AUC = %v, want 0", got)
	}
	if got := AUC([]float64{0, 1}, []float64{1}); got != 0 {
		t.Fatalf("mismatched AUC = %v, want 0", got)
	}
}

func TestAUCZeroError(t *testing.T) {
	if got := AUC([]float64{0, 1}, []float64{0, 0}); got != 0 {
		t.Fatalf("zero-error AUC = %v, want 0", got)
	}
}

// --- properties ---

func randomAnswer(rng *rand.Rand, groups, d int) map[string][]float64 {
	out := make(map[string][]float64, groups)
	for g := 0; g < groups; g++ {
		v := make([]float64, d)
		for j := range v {
			v[j] = rng.NormFloat64() * 100
		}
		out[string(rune('a'+g))] = v
	}
	return out
}

func TestCompareBoundsProperty(t *testing.T) {
	f := func(seed int64, gRaw, dRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		groups := int(gRaw%10) + 1
		d := int(dRaw%4) + 1
		truth := randomAnswer(rng, groups, d)
		est := randomAnswer(rng, int(rng.Int31n(int32(groups)+1)), d)
		e := Compare(truth, est)
		return e.MissedGroups >= 0 && e.MissedGroups <= 1 &&
			e.AvgRelErr >= 0 && e.AvgRelErr <= 1 &&
			e.AbsOverTrue >= 0 &&
			!math.IsNaN(e.AbsOverTrue)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCompareSelfIsAlwaysZeroProperty(t *testing.T) {
	f := func(seed int64, gRaw, dRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		truth := randomAnswer(rng, int(gRaw%8)+1, int(dRaw%3)+1)
		e := Compare(truth, truth)
		return e == Errors{}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAUCMonotoneInErrorProperty(t *testing.T) {
	// Pointwise-larger error curves have larger AUC.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5
		budgets := make([]float64, n)
		lo := make([]float64, n)
		hi := make([]float64, n)
		for i := range budgets {
			budgets[i] = float64(i) / float64(n-1)
			lo[i] = rng.Float64()
			hi[i] = lo[i] + rng.Float64()
		}
		return AUC(budgets, hi) >= AUC(budgets, lo)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Compare folds float sums over the groups of a map; this pins down that the
// fold is independent of map iteration order (sorted keys), so repeated
// calls are bit-identical — near-tie comparisons downstream (greedy feature
// selection) depend on it.
func TestCompareDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	truth := make(map[string][]float64)
	est := make(map[string][]float64)
	for i := 0; i < 200; i++ {
		g := fmt.Sprintf("g%03d", i)
		tv := []float64{rng.NormFloat64() * math.Exp(rng.NormFloat64()*6), rng.Float64()}
		truth[g] = tv
		if i%3 != 0 {
			est[g] = []float64{tv[0] * (1 + rng.NormFloat64()*0.1), tv[1] * (1 + rng.NormFloat64()*0.1)}
		}
	}
	first := Compare(truth, est)
	for k := 0; k < 50; k++ {
		if got := Compare(truth, est); got != first {
			t.Fatalf("run %d: Compare = %+v, want %+v", k, got, first)
		}
	}
}
