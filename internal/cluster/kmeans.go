// Package cluster implements the clustering-based sample selection of paper
// §4.2: k-means++ and hierarchical agglomerative clustering (single and Ward
// linkage) over normalized partition feature vectors, exemplar selection
// (biased closest-to-median or unbiased random member, Appendix D), and the
// greedy leave-one-out feature selection of Algorithm 3.
//
// Two k-means implementations share the k-means++ seeding and the in-place
// Lloyd center update: KMeansReference is the frozen exact sweep (every
// point scans every center each iteration), and KMeans is the
// triangle-inequality-bounded production path (bounded.go) that skips the
// vast majority of those scans while assigning identical labels whenever
// nearest centers are unique.
package cluster

import (
	"math"
	"math/rand"
)

// Assignment maps each input point to a cluster id in [0, K).
type Assignment struct {
	Labels []int
	K      int
}

// Members returns the point indexes of each cluster.
func (a Assignment) Members() [][]int {
	out := make([][]int, a.K)
	for i, l := range a.Labels {
		out[l] = append(out[l], i)
	}
	return out
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// sqDistBounded is sqDist with early abandoning: once the partial sum
// reaches bound, it returns immediately. The accumulation order is
// identical to sqDist, and adding non-negative terms is monotone
// non-decreasing under IEEE round-to-nearest, so "partial ≥ bound ⇒ full
// sum ≥ bound" holds exactly: a caller testing d < bound takes the same
// branch as with the full distance, making this a bit-exact drop-in for
// nearest-neighbor searches. The bound check runs every 8 dimensions to
// keep the common case cheap.
func sqDistBounded(a, b []float64, bound float64) float64 {
	var s float64
	i := 0
	for i < len(a) {
		end := i + 8
		if end > len(a) {
			end = len(a)
		}
		for ; i < end; i++ {
			d := a[i] - b[i]
			s += d * d
		}
		if s >= bound {
			return s
		}
	}
	return s
}

// seedKMeansPP fills centers (k rows, each len(points[0]) wide) with the
// k-means++ seeds. The rng consumption sequence — one Intn for the first
// seed, then per additional seed either an Intn (degenerate all-zero
// distance mass) or a Float64 — and every floating-point comparison are
// exactly those of the historical inline seeding, so both k-means
// implementations start from bit-identical centers given the same rng.
// d2 is caller-provided scratch of len(points).
//
// When labels is non-nil (all zeros on entry), it receives the index of
// each point's nearest seed. Per point, the seeding's running-min updates
// are exactly the first Lloyd sweep's scan over the final centers —
// center 0 exact, then each added center early-abandoned at the running
// best with a strict-< improvement test — so on return labels and d2 ARE
// that sweep's assignment and best squared distances, bit for bit, without
// computing a single extra distance.
//
// When lbsq is non-nil (n×k row-major), entry [i*k+c] receives the partial
// sum the scan of center c accumulated — a valid lower bound on the true
// squared distance, and the exact distance whenever the scan completed.
// Seeds never move once placed, so these bounds hold for the final seed
// positions; the bounded path turns them into its initial lower-bound
// matrix for free.
//
// When seedScr is non-nil (len ≥ k scratch; requires labels and lbsq), the
// per-point scans are additionally pruned with the triangle inequality:
// each new seed first measures its distance to every prior seed, and a point
// whose nearest seed a satisfies d(seed, a) ≥ 2·d(p, a) is skipped outright
// — d(p, seed) ≥ d(seed, a) − d(p, a) ≥ d(p, a), so the strict-< running-min
// update could not fire, and d2/labels are unchanged; lbsq banks d2[i],
// which the same inequality proves is a valid (squared) lower bound. The
// comparison runs on rounded sums, so in principle a skip decision can
// differ from the computed distance by ulps when d(seed, a) sits exactly at
// 2·d(p, a); like movement-delta drift this is an ulp-level tie-break-only
// effect, covered by the documented divergence contract of KMeansBounded.
// The reference path (seedScr == nil) is untouched.
func seedKMeansPP(points [][]float64, k int, rng *rand.Rand, centers [][]float64, d2 []float64, labels []int, lbsq, seedScr []float64) {
	n := len(points)
	first := rng.Intn(n)
	copy(centers[0], points[first])
	for i := range d2 {
		d2[i] = sqDist(points[i], centers[0])
		if lbsq != nil {
			lbsq[i*k] = d2[i]
		}
	}
	for c := 1; c < k; c++ {
		var sum float64
		for _, d := range d2 {
			sum += d
		}
		var pick int
		if sum <= 0 {
			pick = rng.Intn(n)
		} else {
			r := rng.Float64() * sum
			acc := 0.0
			pick = n - 1
			for i, d := range d2 {
				acc += d
				if acc >= r {
					pick = i
					break
				}
			}
		}
		copy(centers[c], points[pick])
		if seedScr != nil {
			// seedScr[s] = ¼·d²(new seed, seed s): the skip test
			// d(seed, a) ≥ 2·d(p, a) in squared form is seedScr[a] ≥ d2[i]
			// (both scalings by powers of two are exact).
			for s := 0; s < c; s++ {
				seedScr[s] = 0.25 * sqDist(centers[c], centers[s])
			}
			for i := range d2 {
				if seedScr[labels[i]] >= d2[i] {
					lbsq[i*k+c] = d2[i]
					continue
				}
				d := sqDistBounded(points[i], centers[c], d2[i])
				lbsq[i*k+c] = d
				if d < d2[i] {
					d2[i] = d
					labels[i] = c
				}
			}
			continue
		}
		for i := range d2 {
			d := sqDistBounded(points[i], centers[c], d2[i])
			if lbsq != nil {
				lbsq[i*k+c] = d
			}
			if d < d2[i] {
				d2[i] = d
				if labels != nil {
					labels[i] = c
				}
			}
		}
	}
}

// updateCenters recomputes centers in place as the mean of their members
// (accumulating in point order, so the arithmetic is reproducible), and
// re-seeds any empty cluster at the point farthest from its current center,
// relabeling that point. The farthest-point search compares exact distances
// with a strict > (ties keep the earliest point), so the selected point is
// well-defined; early abandoning is useless for a max search (every loser
// scans all dimensions anyway) and is deliberately not used. Returns the
// indexes of re-seeded (relabeled) points, if any.
//
// The scan deliberately mirrors the historical in-place update: clusters
// before c hold finalized means while clusters after c still hold raw sums
// when c's re-seed scan runs. Both k-means implementations share it, which
// is what keeps their center trajectories bit-identical.
func updateCenters(points [][]float64, labels []int, centers [][]float64, counts []int) (reseeded []int) {
	if len(points) == 0 {
		return nil
	}
	dim := len(points[0])
	for c := range counts {
		counts[c] = 0
	}
	for c := range centers {
		for j := 0; j < dim; j++ {
			centers[c][j] = 0
		}
	}
	for i, p := range points {
		c := labels[i]
		counts[c]++
		row := centers[c]
		for j, v := range p {
			row[j] += v
		}
	}
	// dcache memoizes each point's squared distance to its cluster's center
	// across the call's re-seed scans: between two scans only the clusters
	// divided in between (stale) and the relabeled point change, so later
	// scans refresh just those entries. Allocated only when a re-seed
	// happens.
	var dcache []float64
	var stale []bool
	for c := range centers {
		if counts[c] == 0 {
			// Re-seed empty cluster at the farthest point (exact distances,
			// strict >, so ties keep the earliest point).
			if dcache == nil {
				dcache = make([]float64, len(points))
				stale = make([]bool, len(centers))
				for i, p := range points {
					dcache[i] = sqDist(p, centers[labels[i]])
				}
			} else {
				for i, p := range points {
					if stale[labels[i]] {
						dcache[i] = sqDist(p, centers[labels[i]])
					}
				}
				clear(stale)
			}
			far, farD := 0, -1.0
			for i, d := range dcache {
				if d > farD {
					far, farD = i, d
				}
			}
			copy(centers[c], points[far])
			labels[far] = c
			dcache[far] = 0 // sqDist(p, p) is exactly zero
			reseeded = append(reseeded, far)
			continue
		}
		inv := 1 / float64(counts[c])
		for j := range centers[c] {
			centers[c][j] *= inv
		}
		if stale != nil {
			stale[c] = true
		}
	}
	return reseeded
}

// KMeansReference clusters points into k clusters with k-means++ seeding and
// exact Lloyd iterations: every point computes its distance to every center
// each iteration. Deterministic given rng. k is clamped to len(points).
//
// This is the frozen baseline the bounded production path (KMeans) is
// equivalence-tested against; serving never calls it.
func KMeansReference(points [][]float64, k int, rng *rand.Rand, maxIter int) Assignment {
	n := len(points)
	if k > n {
		k = n
	}
	if k <= 0 || n == 0 {
		return Assignment{Labels: make([]int, n), K: max(k, 1)}
	}
	if maxIter <= 0 {
		maxIter = 25
	}
	dim := len(points[0])

	centers := make([][]float64, k)
	for c := range centers {
		centers[c] = make([]float64, dim)
	}
	seedKMeansPP(points, k, rng, centers, make([]float64, n), nil, nil, nil)

	labels := make([]int, n)
	counts := make([]int, k)
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c := range centers {
				if d := sqDistBounded(p, centers[c], bestD); d < bestD {
					best, bestD = c, d
				}
			}
			if labels[i] != best {
				labels[i] = best
				changed = true
			}
		}
		if iter > 0 && !changed {
			// The centers are already the means of these labels (computed
			// by the previous iteration's update, whose reseeds would have
			// set changed), so the update would recompute them bit for bit.
			break
		}
		if len(updateCenters(points, labels, centers, counts)) > 0 {
			changed = true
		}
		if !changed {
			break
		}
	}
	return Assignment{Labels: labels, K: k}
}

// KMeans clusters points into k clusters on the triangle-inequality-bounded
// production path with default options. Deterministic given rng. k is
// clamped to len(points). See KMeansBounded for the bounds machinery and
// the (tie-break-only) divergence contract against KMeansReference.
func KMeans(points [][]float64, k int, rng *rand.Rand, maxIter int) Assignment {
	return KMeansBounded(points, k, rng, KMeansOpts{MaxIter: maxIter})
}
