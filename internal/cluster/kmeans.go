// Package cluster implements the clustering-based sample selection of paper
// §4.2: k-means++ and hierarchical agglomerative clustering (single and Ward
// linkage) over normalized partition feature vectors, exemplar selection
// (biased closest-to-median or unbiased random member, Appendix D), and the
// greedy leave-one-out feature selection of Algorithm 3.
package cluster

import (
	"math"
	"math/rand"
)

// Assignment maps each input point to a cluster id in [0, K).
type Assignment struct {
	Labels []int
	K      int
}

// Members returns the point indexes of each cluster.
func (a Assignment) Members() [][]int {
	out := make([][]int, a.K)
	for i, l := range a.Labels {
		out[l] = append(out[l], i)
	}
	return out
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// sqDistBounded is sqDist with early abandoning: once the partial sum
// reaches bound, it returns immediately. The accumulation order is
// identical to sqDist, and adding non-negative terms is monotone
// non-decreasing under IEEE round-to-nearest, so "partial ≥ bound ⇒ full
// sum ≥ bound" holds exactly: a caller testing d < bound takes the same
// branch as with the full distance, making this a bit-exact drop-in for
// nearest-neighbor searches. The bound check runs every 8 dimensions to
// keep the common case cheap.
func sqDistBounded(a, b []float64, bound float64) float64 {
	var s float64
	i := 0
	for i < len(a) {
		end := i + 8
		if end > len(a) {
			end = len(a)
		}
		for ; i < end; i++ {
			d := a[i] - b[i]
			s += d * d
		}
		if s >= bound {
			return s
		}
	}
	return s
}

// KMeans clusters points into k clusters with k-means++ seeding and Lloyd
// iterations. Deterministic given rng. k is clamped to len(points).
func KMeans(points [][]float64, k int, rng *rand.Rand, maxIter int) Assignment {
	n := len(points)
	if k > n {
		k = n
	}
	if k <= 0 || n == 0 {
		return Assignment{Labels: make([]int, n), K: maxInt(k, 1)}
	}
	if maxIter <= 0 {
		maxIter = 25
	}
	dim := len(points[0])

	// k-means++ seeding.
	centers := make([][]float64, 0, k)
	first := rng.Intn(n)
	centers = append(centers, append([]float64(nil), points[first]...))
	d2 := make([]float64, n)
	for i := range d2 {
		d2[i] = sqDist(points[i], centers[0])
	}
	for len(centers) < k {
		var sum float64
		for _, d := range d2 {
			sum += d
		}
		var pick int
		if sum <= 0 {
			pick = rng.Intn(n)
		} else {
			r := rng.Float64() * sum
			acc := 0.0
			pick = n - 1
			for i, d := range d2 {
				acc += d
				if acc >= r {
					pick = i
					break
				}
			}
		}
		c := append([]float64(nil), points[pick]...)
		centers = append(centers, c)
		for i := range d2 {
			if d := sqDistBounded(points[i], c, d2[i]); d < d2[i] {
				d2[i] = d
			}
		}
	}

	labels := make([]int, n)
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c := range centers {
				if d := sqDistBounded(p, centers[c], bestD); d < bestD {
					best, bestD = c, d
				}
			}
			if labels[i] != best {
				labels[i] = best
				changed = true
			}
		}
		// Recompute centers.
		counts := make([]int, k)
		for c := range centers {
			for j := 0; j < dim; j++ {
				centers[c][j] = 0
			}
		}
		for i, p := range points {
			c := labels[i]
			counts[c]++
			for j, v := range p {
				centers[c][j] += v
			}
		}
		for c := range centers {
			if counts[c] == 0 {
				// Re-seed empty cluster at the farthest point.
				far, farD := 0, -1.0
				for i, p := range points {
					if d := sqDist(p, centers[labels[i]]); d > farD {
						far, farD = i, d
					}
				}
				copy(centers[c], points[far])
				labels[far] = c
				changed = true
				continue
			}
			inv := 1 / float64(counts[c])
			for j := range centers[c] {
				centers[c][j] *= inv
			}
		}
		if !changed {
			break
		}
	}
	return Assignment{Labels: labels, K: k}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
