package cluster

import (
	"container/heap"
	"math"
)

// Linkage selects the HAC merge criterion.
type Linkage uint8

const (
	// Single linkage merges the pair of clusters with the smallest minimum
	// inter-point distance.
	Single Linkage = iota
	// Ward linkage merges the pair minimizing the increase in total
	// within-cluster variance.
	Ward
)

func (l Linkage) String() string {
	if l == Single {
		return "single"
	}
	return "ward"
}

// HAC performs bottom-up hierarchical agglomerative clustering down to k
// clusters using the Lance–Williams update for the chosen linkage. Intended
// for the picker's per-group budgets (hundreds of points); complexity is
// O(n² log n).
func HAC(points [][]float64, k int, linkage Linkage) Assignment {
	n := len(points)
	if k > n {
		k = n
	}
	if n == 0 || k <= 0 {
		return Assignment{Labels: make([]int, n), K: max(k, 1)}
	}
	// dist holds current inter-cluster distances; active marks live
	// clusters; size their cardinalities.
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var d float64
			if linkage == Ward {
				// Ward over singletons starts from squared Euclidean / 2 *
				// (constant factors don't change merge order; use the
				// standard d² form).
				d = sqDist(points[i], points[j])
			} else {
				d = math.Sqrt(sqDist(points[i], points[j]))
			}
			dist[i][j] = d
			dist[j][i] = d
		}
	}
	active := make([]bool, n)
	size := make([]int, n)
	parent := make([]int, n)
	for i := range active {
		active[i] = true
		size[i] = 1
		parent[i] = i
	}

	pq := &pairHeap{}
	heap.Init(pq)
	version := make([]int, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			heap.Push(pq, pairItem{d: dist[i][j], a: i, b: j, va: 0, vb: 0})
		}
	}

	clusters := n
	for clusters > k && pq.Len() > 0 {
		it := heap.Pop(pq).(pairItem)
		a, b := it.a, it.b
		if !active[a] || !active[b] || version[a] != it.va || version[b] != it.vb {
			continue
		}
		// Merge b into a via Lance–Williams.
		na, nb := float64(size[a]), float64(size[b])
		for x := 0; x < n; x++ {
			if !active[x] || x == a || x == b {
				continue
			}
			var nd float64
			switch linkage {
			case Single:
				nd = math.Min(dist[a][x], dist[b][x])
			case Ward:
				nx := float64(size[x])
				t := na + nb + nx
				nd = ((na+nx)*dist[a][x] + (nb+nx)*dist[b][x] - nx*dist[a][b]) / t
			}
			dist[a][x] = nd
			dist[x][a] = nd
		}
		active[b] = false
		parent[b] = a
		size[a] += size[b]
		version[a]++
		clusters--
		for x := 0; x < n; x++ {
			if active[x] && x != a {
				heap.Push(pq, pairItem{d: dist[a][x], a: min(a, x), b: max(a, x),
					va: versionOf(version, min(a, x)), vb: versionOf(version, max(a, x))})
			}
		}
	}

	// Compress parents to roots, then relabel densely.
	find := func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	labelOf := map[int]int{}
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		r := find(i)
		l, ok := labelOf[r]
		if !ok {
			l = len(labelOf)
			labelOf[r] = l
		}
		labels[i] = l
	}
	return Assignment{Labels: labels, K: len(labelOf)}
}

func versionOf(v []int, i int) int { return v[i] }

// pairItem is a candidate merge with version stamps for lazy invalidation.
type pairItem struct {
	d      float64
	a, b   int
	va, vb int
}

type pairHeap []pairItem

func (h pairHeap) Len() int            { return len(h) }
func (h pairHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h pairHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pairHeap) Push(x interface{}) { *h = append(*h, x.(pairItem)) }
func (h *pairHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
