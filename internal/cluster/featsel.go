package cluster

import "math/rand"

// GreedyFeatureSelection implements Algorithm 3 of the paper: a greedy
// leave-one-out search for a set of feature kinds to *exclude* from
// clustering. candidates are opaque feature-kind ids; eval returns the
// clustering error achieved when the given set is excluded (lower is
// better). The search greedily excludes features while the error improves,
// restarting `restarts` times with shuffled candidate orders (10 in the
// paper), and returns the best exclusion set found.
func GreedyFeatureSelection(candidates []int, eval func(excluded map[int]bool) float64, restarts int, rng *rand.Rand) []int {
	if restarts <= 0 {
		restarts = 10
	}
	var best []int
	bestErr := eval(map[int]bool{})

	order := append([]int(nil), candidates...)
	for r := 0; r < restarts; r++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var excluded []int
		curErr := eval(toSet(excluded))
		// Greedily remove features until a local optimum: keep sweeping the
		// remaining candidates as long as any removal improves the error.
		for improved := true; improved; {
			improved = false
			inSet := toSet(excluded)
			for _, f := range order {
				if inSet[f] {
					continue
				}
				trial := append(append([]int(nil), excluded...), f)
				if e := eval(toSet(trial)); e < curErr {
					excluded = trial
					inSet[f] = true
					curErr = e
					improved = true
				}
			}
		}
		if curErr < bestErr {
			bestErr = curErr
			best = excluded
		}
	}
	return best
}

func toSet(ids []int) map[int]bool {
	s := make(map[int]bool, len(ids))
	for _, id := range ids {
		s[id] = true
	}
	return s
}
